package satcell_test

import (
	"bytes"
	"strings"
	"testing"

	"satcell"
)

func TestWorldEndToEnd(t *testing.T) {
	world := satcell.NewWorld(7)
	ds := world.GenerateDataset(satcell.DatasetOptions{Scale: 0.03})
	if len(ds.Tests) == 0 {
		t.Fatal("no tests generated")
	}
	fig := world.Figure(ds, "fig3b", satcell.FigureOptions{})
	if fig == nil || fig.KPI("mob_mean_mbps") <= 0 {
		t.Fatal("fig3b KPI missing")
	}
	if world.Figure(ds, "nope", satcell.FigureOptions{}) != nil {
		t.Fatal("unknown figure should be nil")
	}
}

func TestWorldDeterminism(t *testing.T) {
	a := satcell.NewWorld(11).GenerateDataset(satcell.DatasetOptions{Scale: 0.02})
	b := satcell.NewWorld(11).GenerateDataset(satcell.DatasetOptions{Scale: 0.02})
	if len(a.Tests) != len(b.Tests) {
		t.Fatal("dataset generation not deterministic")
	}
	for i := range a.Tests {
		if a.Tests[i].ThroughputMbps != b.Tests[i].ThroughputMbps {
			t.Fatalf("test %d differs", i)
		}
	}
}

func TestExperimentsFacade(t *testing.T) {
	world := satcell.NewWorld(5)
	ds := world.GenerateDataset(satcell.DatasetOptions{Scale: 0.05})
	figs := world.Figures(ds, satcell.FigureOptions{
		MultipathWindowSeconds: 60, MultipathWindows: 1,
	})
	if len(satcell.FigureIDs(figs)) < 13 {
		t.Fatalf("missing figures: %v", satcell.FigureIDs(figs))
	}
	rows := satcell.Experiments(figs)
	if len(rows) < 20 {
		t.Fatalf("experiment record too short: %d", len(rows))
	}
	md := satcell.RenderExperiments(rows)
	if !strings.Contains(md, "| Figure | Claim |") {
		t.Fatal("markdown render broken")
	}
}

func TestTraceCSVFacade(t *testing.T) {
	world := satcell.NewWorld(3)
	ds := world.GenerateDataset(satcell.DatasetOptions{Scale: 0.02})
	tr := ds.Drives[0].Trace(satcell.StarlinkMobility)
	var buf bytes.Buffer
	if err := satcell.WriteTraceCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := satcell.ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(tr.Samples) {
		t.Fatal("round trip lost samples")
	}
	var mm bytes.Buffer
	if err := satcell.WriteMahimahi(&mm, tr, false); err != nil {
		t.Fatal(err)
	}
	if mm.Len() == 0 {
		t.Fatal("empty mahimahi trace")
	}
}
