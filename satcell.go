// Package satcell reproduces "LEO Satellite vs. Cellular Networks:
// Exploring the Potential for Synergistic Integration" (CoNEXT
// Companion 2023) as a Go library: a synthetic five-state drive world
// with Starlink-like LEO and cellular channel models, the paper's
// measurement toolkit (iPerf-style throughput tests, UDP-Ping, a
// tracker), a Mahimahi/MpShell-style emulator with TCP and MPTCP
// transports, and an analysis harness that regenerates every figure of
// the paper's evaluation.
//
// Quick start:
//
//	world := satcell.NewWorld(42)
//	ds := world.GenerateDataset(satcell.DatasetOptions{Scale: 0.1})
//	figs := world.Figures(ds, satcell.FigureOptions{})
//	fmt.Println(figs["fig3a"].Render())
//
// The heavy lifting lives in the internal packages (internal/leo,
// internal/cell, internal/emu, internal/tcp, internal/mptcp, ...); this
// package is the stable entry point used by the example programs, the
// command-line tools and the benchmark harness.
package satcell

import (
	"context"
	"io"

	"satcell/internal/cell"
	"satcell/internal/channel"
	"satcell/internal/core"
	"satcell/internal/dataset"
	"satcell/internal/leo"
	"satcell/internal/networks"
	"satcell/internal/obs"
	"satcell/internal/trace"
)

// Re-exported core types, so callers only import this package.
type (
	// Dataset is the generated driving dataset (tests + drive traces).
	Dataset = dataset.Dataset
	// Test is one network test of the campaign.
	Test = dataset.Test
	// Figure is one reproduced paper figure with its KPIs.
	Figure = core.Figure
	// ExperimentRow is one line of the paper-vs-measured record.
	ExperimentRow = core.ExperimentRow
	// Completeness is the ingestion certificate of a streamed figure
	// run: shards planned/scanned/retried/quarantined, itemised.
	Completeness = core.Completeness
	// NetworkID identifies one measured service: a catalog id like
	// "RM" or "MOB", open to custom registrations.
	NetworkID = channel.NetworkID
	// Network is the historical name of NetworkID.
	//
	// Deprecated: use NetworkID.
	Network = channel.NetworkID
	// Catalog is an ordered registry of network specs; DefaultCatalog
	// holds the paper's five built-ins plus custom registrations.
	Catalog = channel.Catalog
	// NetworkSpec describes one catalog entry (id, display name,
	// class, seed offset, model factory).
	NetworkSpec = channel.Spec
	// Scenario declares a measurement campaign: network subset, route
	// mix, test matrix and seed. The zero value is the paper's campaign.
	Scenario = dataset.Scenario
	// SatellitePlan parameterizes a Starlink-style service plan for
	// custom satellite networks.
	SatellitePlan = leo.Plan
	// Carrier parameterizes a cellular operator for custom networks.
	Carrier = cell.Carrier
	// Trace is a time series of channel conditions for one network.
	Trace = channel.Trace
)

// The five measured networks.
const (
	StarlinkRoam     = channel.StarlinkRoam
	StarlinkMobility = channel.StarlinkMobility
	ATT              = channel.ATT
	TMobile          = channel.TMobile
	Verizon          = channel.Verizon
)

// DefaultCatalog returns the process-wide network catalog: the built-in
// five with their model factories attached, plus everything registered
// through RegisterSatellitePlan / RegisterCellularCarrier. Clone it to
// experiment without mutating global state.
func DefaultCatalog() *Catalog { return networks.Default() }

// RoamPlan returns the built-in Starlink Roam plan parameters, a
// convenient base for custom satellite plans.
func RoamPlan() SatellitePlan { return leo.RoamPlan() }

// MobilityPlan returns the built-in Starlink Mobility plan parameters.
func MobilityPlan() SatellitePlan { return leo.MobilityPlan() }

// Carriers returns the built-in cellular carrier parameter sets, a
// convenient base for custom carriers.
func Carriers() []Carrier { return cell.Carriers() }

// RegisterSatellitePlan registers a custom satellite network in cat
// (nil means the default catalog). The plan's Network field is the new
// catalog id; seedOffset separates the network's random streams from
// every other network of a campaign — pick a value well clear of the
// built-ins (>= 1000).
func RegisterSatellitePlan(cat *Catalog, name string, plan SatellitePlan, seedOffset int64) error {
	return networks.RegisterSatellite(cat, name, plan, seedOffset)
}

// RegisterCellularCarrier registers a custom cellular network in cat
// (nil means the default catalog).
func RegisterCellularCarrier(cat *Catalog, name string, carrier Carrier, seedOffset int64) error {
	return networks.RegisterCellular(cat, name, carrier, seedOffset)
}

// ParseNetworks parses a comma-separated network-id list ("RM,MOB")
// against cat (nil means the default catalog).
func ParseNetworks(cat *Catalog, spec string) ([]NetworkID, error) {
	return dataset.ParseNetworks(cat, spec)
}

// ParseScenario parses the declarative scenario grammar
// ("networks=RM,MOB;kinds=udp-down;seed=7;name=x") against cat (nil
// means the default catalog). The returned scenario is validated.
func ParseScenario(cat *Catalog, spec string) (*Scenario, error) {
	return dataset.ParseScenario(cat, nil, spec)
}

// World is a reproducible instance of the study: everything derives
// deterministically from its seed.
type World struct {
	seed int64
}

// NewWorld creates a world from a seed.
func NewWorld(seed int64) *World { return &World{seed: seed} }

// DatasetOptions tunes dataset generation.
type DatasetOptions struct {
	// Scale scales the campaign: 1.0 reproduces the paper's ~3,800 km
	// and ~1,239 tests; the default 0.1 generates a tenth of that.
	Scale float64
	// Scenario declares the campaign (network subset, routes, test
	// matrix, seed). Nil runs the paper's default campaign. Invalid
	// scenarios make GenerateDataset panic; validate user input with
	// Scenario.Validate (ParseScenario output is already validated).
	Scenario *Scenario
	// Workers bounds the goroutines simulating drives and evaluating
	// tests; 0 (the default) uses all available cores. The generated
	// dataset is bit-identical for every worker count.
	Workers int
	// Metrics, when non-nil, receives live generation progress
	// (totals, done counters, per-worker throughput, tests/sec, ETA) —
	// typically the registry behind a -debug-addr endpoint. It never
	// affects the generated data.
	Metrics *obs.Registry
}

// GenerateDataset runs the measurement campaign.
func (w *World) GenerateDataset(opts DatasetOptions) *Dataset {
	ds, err := w.GenerateDatasetContext(context.Background(), opts)
	if err != nil {
		// Background never cancels, and cancellation is the only error.
		panic(err)
	}
	return ds
}

// GenerateDatasetContext is GenerateDataset with cooperative
// cancellation: generation workers observe ctx between work items, and
// a cancelled context returns ctx.Err() instead of a dataset — the
// checkpoint-then-exit path of the interruptible CLIs.
func (w *World) GenerateDatasetContext(ctx context.Context, opts DatasetOptions) (*Dataset, error) {
	if opts.Scale <= 0 {
		opts.Scale = 0.1
	}
	return dataset.GenerateContext(ctx, dataset.Config{
		Seed: w.seed, Scale: opts.Scale, Scenario: opts.Scenario,
		Workers: opts.Workers, Metrics: opts.Metrics,
	})
}

// FigureOptions tunes the analysis harness.
type FigureOptions struct {
	// MultipathWindowSeconds is the replay length of the §6 MPTCP
	// experiments (default 300, the paper's 5-minute tests).
	MultipathWindowSeconds int
	// MultipathWindows is how many aligned windows to replay (default 3).
	MultipathWindows int
	// Catalog classifies the dataset's networks (nil means the default
	// catalog); pass the scenario's catalog when it was a clone.
	Catalog *Catalog
	// Workers > 0 computes the streamable analyses (every figure except
	// the packet-level fig10/fig11 replays) through the sharded
	// worker-pool pipeline with that many workers. The output is
	// bit-identical to the default in-memory path for every worker
	// count; only peak memory and wall-clock change. 0 keeps the
	// classic single-pass analyzer.
	Workers int
	// Metrics, when non-nil and Workers > 0, receives live streaming
	// progress (shard/row counters, per-worker attribution). It never
	// affects the figures.
	Metrics *obs.Registry
}

// ValidateWorkers normalises a worker-count flag: negative is an
// error, 0 means one worker per core (GOMAXPROCS), positive passes
// through. CLIs validate through this one gate so -workers means the
// same thing everywhere.
func ValidateWorkers(n int) (int, error) { return core.ValidateWorkers(n) }

// Figures regenerates every figure of the paper keyed by ID ("fig1",
// "fig3a", ..., "fig11", "eq1", "dataset").
func (w *World) Figures(ds *Dataset, opts FigureOptions) map[string]*Figure {
	figs, _ := w.FiguresStreamed(ds, opts)
	return figs
}

// FiguresStreamed is Figures plus the streaming pipeline's completeness
// certificate. The certificate is nil when the classic in-memory path
// ran (Workers == 0, or a malformed dataset forced the fallback): that
// path has no shards to certify.
func (w *World) FiguresStreamed(ds *Dataset, opts FigureOptions) (map[string]*Figure, *Completeness) {
	mp := core.MultipathConfig{
		WindowSeconds: opts.MultipathWindowSeconds,
		Windows:       opts.MultipathWindows,
	}
	if opts.Workers > 0 {
		figs, comp, err := core.AllFiguresStreaming(ds, mp, opts.Catalog, opts.Workers, opts.Metrics)
		if err == nil {
			return figs, comp
		}
		// Streaming an in-memory dataset only fails when the dataset is
		// malformed (a test claiming an out-of-range drive); the classic
		// path below ignores drive bookkeeping entirely, so it still
		// produces figures.
	}
	return core.AllFiguresCatalog(ds, mp, opts.Catalog), nil
}

// Figure regenerates a single figure by ID (cheaper than Figures when
// only one is needed; fig10/fig11 still run packet-level replays).
func (w *World) Figure(ds *Dataset, id string, opts FigureOptions) *Figure {
	a := core.NewAnalyzer(ds)
	a.Catalog = opts.Catalog
	mp := core.MultipathConfig{
		WindowSeconds: opts.MultipathWindowSeconds,
		Windows:       opts.MultipathWindows,
	}
	switch id {
	case "fig1":
		return a.Figure1()
	case "fig3a":
		return a.Figure3a()
	case "fig3b":
		return a.Figure3b()
	case "fig3c":
		return a.Figure3c()
	case "fig4":
		return a.Figure4()
	case "fig5":
		return a.Figure5()
	case "fig6":
		return a.Figure6()
	case "fig7":
		return a.Figure7()
	case "fig8":
		return a.Figure8()
	case "fig9":
		return a.Figure9()
	case "fig10":
		return a.Figure10(mp)
	case "fig11":
		return a.Figure11(mp)
	case "eq1":
		return a.Equation1()
	case "dataset":
		return a.DatasetSummary()
	default:
		return nil
	}
}

// Experiments evaluates the paper-vs-measured record over figures.
func Experiments(figs map[string]*Figure) []ExperimentRow {
	return core.Experiments(figs)
}

// RenderExperiments formats the record as a markdown table.
func RenderExperiments(rows []ExperimentRow) string {
	return core.RenderExperiments(rows)
}

// FigureIDs returns the sorted identifiers of a figure map.
func FigureIDs(figs map[string]*Figure) []string { return core.FigureIDs(figs) }

// WriteTraceCSV writes a channel trace in the satcell CSV format.
func WriteTraceCSV(w io.Writer, tr *Trace) error { return trace.WriteCSV(w, tr) }

// ReadTraceCSV reads a channel trace written by WriteTraceCSV.
func ReadTraceCSV(r io.Reader) (*Trace, error) { return trace.ReadCSV(r) }

// WriteMahimahi converts a trace to the Mahimahi delivery-opportunity
// format used by MpShell-style emulators.
func WriteMahimahi(w io.Writer, tr *Trace, uplink bool) error {
	return trace.WriteMahimahi(w, tr, uplink)
}
