// Benchmark harness: one benchmark per figure/table of the paper's
// evaluation. Each benchmark regenerates its figure from the shared
// campaign dataset and reports the headline numbers via b.ReportMetric,
// so `go test -bench=. -benchmem` prints the reproduced results next to
// the timing. EXPERIMENTS.md records these against the paper's values.
package satcell_test

import (
	"fmt"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"satcell"
	"satcell/internal/channel"
	"satcell/internal/core"
	"satcell/internal/dataset"
	"satcell/internal/emu"
	"satcell/internal/geo"
	"satcell/internal/leo"
	"satcell/internal/netem"
	"satcell/internal/obs"
	"satcell/internal/tcp"
)

// benchScale controls the campaign size used by the benchmarks: 0.25
// generates ~950 km of driving and ~300 tests, enough for stable
// statistics while keeping a full -bench=. run in minutes. Set to 1.0
// to regenerate the paper's full ~3,800 km campaign.
const benchScale = 0.25

var (
	benchOnce sync.Once
	benchDS   *dataset.Dataset
	benchAn   *core.Analyzer
)

func benchSetup(b *testing.B) *core.Analyzer {
	b.Helper()
	benchOnce.Do(func() {
		benchDS = dataset.Generate(dataset.Config{Seed: 42, Scale: benchScale})
		benchAn = core.NewAnalyzer(benchDS)
	})
	return benchAn
}

// reportKPIs attaches a figure's KPIs to the benchmark output.
func reportKPIs(b *testing.B, f *core.Figure, keys ...string) {
	for _, k := range keys {
		b.ReportMetric(f.KPI(k), k)
	}
}

func BenchmarkDatasetCampaign(b *testing.B) {
	// §3.3: the campaign bookkeeping (tests / minutes / km) at scale.
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.DatasetSummary()
	}
	reportKPIs(b, f, "tests", "trace_minutes", "distance_km", "states")
}

func BenchmarkFigure1(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure1()
	}
	reportKPIs(b, f, "mean_MOB", "mean_VZ", "mean_TM", "mean_ATT")
}

func BenchmarkFigure3a(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure3a()
	}
	reportKPIs(b, f, "mob_udp_mean_mbps", "mob_tcp_mean_mbps", "mob_udp_tcp_ratio", "cell_udp_tcp_ratio")
}

func BenchmarkFigure3b(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure3b()
	}
	reportKPIs(b, f, "mob_median_mbps", "mob_mean_mbps", "rm_median_mbps", "rm_mean_mbps")
}

func BenchmarkFigure3c(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure3c()
	}
	reportKPIs(b, f, "down_mean_mbps", "up_mean_mbps", "down_up_ratio")
}

func BenchmarkFigure4(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure4()
	}
	reportKPIs(b, f, "median_ms_RM", "median_ms_MOB", "median_ms_ATT", "median_ms_TM", "median_ms_VZ")
}

func BenchmarkFigure5(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure5()
	}
	reportKPIs(b, f, "retrans_down_MOB", "retrans_down_RM", "retrans_down_VZ", "retrans_up_MOB")
}

func BenchmarkFigure6(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure6()
	}
	reportKPIs(b, f, "speed_dev_MOB", "speed_dev_VZ", "speed_dev_ATT")
}

func BenchmarkFigure7(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure7()
	}
	reportKPIs(b, f, "rm_4p_gain_pct", "rm_8p_gain_pct", "cell_4p_gain_pct", "cell_8p_gain_pct")
}

func BenchmarkFigure8(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure8()
	}
	reportKPIs(b, f,
		"mean_Cellular_urban", "mean_Cellular_rural",
		"mean_MOB_urban", "mean_MOB_rural",
		"share_urban", "share_suburban", "share_rural")
}

func BenchmarkFigure9(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure9()
	}
	reportKPIs(b, f, "MOB_high", "RM_high", "ATT_high", "TM_high", "VZ_high", "BestCL_high", "RM+CL_high", "MOB+CL_high")
}

// multipathBenchConfig keeps the packet-level replays affordable in the
// default benchmark run; the paper's full 5-minute windows are used
// when WindowSeconds is raised to 300.
var multipathBenchConfig = core.MultipathConfig{WindowSeconds: 150, Windows: 2}

func BenchmarkFigure10(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure10(multipathBenchConfig)
	}
	reportKPIs(b, f,
		"gain_over_best_mob_att_pct", "gain_over_best_mob_vz_pct",
		"gain_untuned_mob_att_pct", "gain_untuned_mob_vz_pct",
		"bandwidth_utilization_pct")
}

func BenchmarkFigure11(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.Figure11(multipathBenchConfig)
	}
	reportKPIs(b, f, "mean_MPTCP(a)", "mean_MOB(a)", "mean_ATT(a)", "mean_MPTCP(b)", "mean_VZ(b)", "peak_mptcp_b")
}

func BenchmarkEquation1(b *testing.B) {
	var ms float64
	for i := 0; i < b.N; i++ {
		ms = leo.OneWayPropagation(550).Seconds() * 1000
	}
	b.ReportMetric(ms, "latency_550km_ms")
}

// BenchmarkAblationMPTCP exercises the DESIGN.md ablations: scheduler
// choice, coupled congestion control and buffer tuning over the same
// replayed windows.
func BenchmarkAblationMPTCP(b *testing.B) {
	a := benchSetup(b)
	var f *core.Figure
	for i := 0; i < b.N; i++ {
		f = a.MultipathAblation(multipathBenchConfig)
	}
	reportKPIs(b, f, "blest-tuned", "minrtt-tuned", "rr-tuned", "redundant-tuned", "leoaware-tuned", "blest-untuned", "blest-lia")
}

// BenchmarkGenerateDataset measures raw campaign generation throughput.
func BenchmarkGenerateDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := dataset.Generate(dataset.Config{Seed: int64(i), Scale: 0.02})
		if len(ds.Tests) == 0 {
			b.Fatal("empty dataset")
		}
	}
}

// BenchmarkGenerate compares serial and parallel campaign generation at
// the benchmark scale (0.25 ≈ 950 km, ~400 tests). Output is
// bit-identical across worker counts (TestGenerateWorkersBitIdentical),
// so the sub-benchmarks measure pure pipeline speedup; EXPERIMENTS.md
// records the ratio.
func BenchmarkGenerate(b *testing.B) {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds := dataset.Generate(dataset.Config{Seed: 42, Scale: benchScale, Workers: workers})
				if len(ds.Tests) == 0 {
					b.Fatal("empty dataset")
				}
			}
		})
	}
}

// BenchmarkFacade measures the public-API path end to end at tiny scale.
func BenchmarkFacade(b *testing.B) {
	for i := 0; i < b.N; i++ {
		world := satcell.NewWorld(int64(i))
		ds := world.GenerateDataset(satcell.DatasetOptions{Scale: 0.01})
		f := world.Figure(ds, "fig3b", satcell.FigureOptions{})
		if f == nil {
			b.Fatal("no figure")
		}
	}
}

// BenchmarkAblationObstruction isolates the urban obstruction effect:
// Starlink Mobility urban capacity with street clutter on vs off.
func BenchmarkAblationObstruction(b *testing.B) {
	cons := leo.NewConstellation(leo.StarlinkShell())
	run := func(scale float64) float64 {
		plan := leo.MobilityPlan()
		plan.ClutterScale = scale
		m := leo.NewModel(plan, cons, 33)
		pos := geo.LatLon{Lat: 41.88, Lon: -87.63}
		sum := 0.0
		const secs = 900
		for i := 0; i < secs; i++ {
			env := channel.Env{
				At:       time.Duration(i) * time.Second,
				Pos:      geo.Destination(pos, 90, float64(i)*0.01),
				SpeedKmh: 36,
				Area:     geo.Urban,
			}
			sum += m.Sample(env).DownMbps
		}
		return sum / secs
	}
	var on, off float64
	for i := 0; i < b.N; i++ {
		on = run(1)
		off = run(-1)
	}
	b.ReportMetric(on, "urban_mean_clutter_on")
	b.ReportMetric(off, "urban_mean_clutter_off")
}

// ablationWindow extracts a healthy (non-urban-outage) Starlink window
// from the benchmark dataset for the transport ablations, stripping
// random loss like the MpShell replay does.
func ablationWindow(net channel.Network, strip bool) *channel.Trace {
	for _, d := range benchDS.Drives {
		full := d.Trace(net)
		for off := time.Duration(0); off+300*time.Second <= full.Duration(); off += 300 * time.Second {
			w := full.Slice(off, off+300*time.Second)
			outage, sum := 0, 0.0
			for _, smp := range w.Samples {
				if smp.Outage {
					outage++
				}
				sum += smp.DownMbps
			}
			if float64(outage)/float64(len(w.Samples)) > 0.1 || sum/float64(len(w.Samples)) < 50 {
				continue
			}
			if !strip {
				return w
			}
			out := &channel.Trace{Network: w.Network}
			last := 50 * time.Millisecond
			for _, smp := range w.Samples {
				smp.LossDown, smp.LossUp, smp.Burst = 0, 0, false
				if smp.RTT == 0 {
					smp.RTT = last
				}
				last = smp.RTT
				out.Samples = append(out.Samples, smp)
			}
			return out
		}
	}
	return benchDS.Drives[0].Trace(net)
}

// BenchmarkAblationCC compares NewReno and CUBIC single-path TCP over
// the same replayed Starlink window (the DESIGN.md CC ablation).
func BenchmarkAblationCC(b *testing.B) {
	benchSetup(b)
	tr := ablationWindow(satcell.StarlinkMobility, true).Slice(0, 120*time.Second)
	run := func(cubic bool) float64 {
		eng := emu.NewEngine()
		dp := emu.NewDuplexPath(eng, tr, emu.PathConfig{Seed: 9, QueueBytes: 3 << 20 / 2})
		cfg := tcp.Config{}
		if cubic {
			cfg.CC = func() tcp.CongestionControl { return tcp.NewCubic(eng.Now) }
		}
		c := tcp.NewDownload(eng, dp, 1, cfg)
		c.Start()
		eng.RunUntil(120 * time.Second)
		c.Stop()
		return c.MeanGoodputMbps(120 * time.Second)
	}
	var reno, cubic float64
	for i := 0; i < b.N; i++ {
		reno = run(false)
		cubic = run(true)
	}
	b.ReportMetric(reno, "newreno_mbps")
	b.ReportMetric(cubic, "cubic_mbps")
}

// BenchmarkRelayObsOverhead measures the observability tax on the live
// relay hot path end to end: one request/echo round trip through a UDP
// relay over loopback, uninstrumented vs fully instrumented (counters,
// queue histogram, event ring). The per-packet instrumentation cost is
// a handful of atomic adds plus one mutex-guarded ring write, against
// several socket syscalls — EXPERIMENTS.md records the measured delta
// (budget: <5% on ns/op).
func BenchmarkRelayObsOverhead(b *testing.B) {
	run := func(b *testing.B, instrument bool) {
		server, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			b.Fatal(err)
		}
		defer server.Close()
		go func() {
			buf := make([]byte, 64<<10)
			for {
				n, from, err := server.ReadFromUDP(buf)
				if err != nil {
					return
				}
				server.WriteToUDP(buf[:n], from)
			}
		}()
		// 10 Gbps, zero delay, zero loss: packets pass straight through
		// the pacer, so the round trip is pure relay path + syscalls.
		shape := netem.ConstantShape(10000, 0, 0)
		relay, err := netem.NewUDPRelay("127.0.0.1:0", server.LocalAddr().String(), shape, shape, 1)
		if err != nil {
			b.Fatal(err)
		}
		defer relay.Close()
		if instrument {
			relay.Instrument(obs.NewRegistry(), obs.NewTracer(8192))
		}
		conn, err := net.DialUDP("udp", nil, relay.Addr())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		pkt := make([]byte, 1024)
		buf := make([]byte, 2048)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := conn.Write(pkt); err != nil {
				b.Fatal(err)
			}
			conn.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := conn.Read(buf); err != nil {
				b.Fatalf("round trip %d: %v", i, err)
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, false) })
	b.Run("instrumented", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationParallelism sweeps parallel TCP stream counts over
// one Roam window (the DESIGN.md parallelism ablation, extending the
// paper's 1/4/8 to 16).
func BenchmarkAblationParallelism(b *testing.B) {
	benchSetup(b)
	tr := ablationWindow(satcell.StarlinkRoam, false)
	results := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, p := range []int{1, 2, 4, 8, 16} {
			res := dataset.FluidTCP{Flows: p}.Run(tr, rand.New(rand.NewSource(5)))
			results[p] = res.MeanGoodputMbps
		}
	}
	for _, p := range []int{1, 2, 4, 8, 16} {
		b.ReportMetric(results[p], fmt.Sprintf("p%d_mbps", p))
	}
}
