// satcell-tracker plays the role of 5G Tracker (§3.2): it samples the
// modem/dish state of one simulated device driving a route and writes
// JSONL records (time, GPS, speed, network type, signal, serving cell
// or satellite).
//
//	satcell-tracker -network MOB -route i94-eauclaire -out trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"satcell/internal/channel"
	"satcell/internal/geo"
	"satcell/internal/meas/tracker"
	"satcell/internal/mobility"
	"satcell/internal/networks"
	"satcell/internal/obs"
	"satcell/internal/store"
)

var logger = obs.NewLogger("satcell-tracker")

// driveProvider adapts a drive + channel model to tracker.Provider.
type driveProvider struct {
	network channel.NetworkID
	fixes   []mobility.Fix
	model   channel.Model
}

// Info implements tracker.Provider.
func (p *driveProvider) Info(at time.Duration) (tracker.Record, error) {
	idx := int(at / time.Second)
	if idx >= len(p.fixes) {
		return tracker.Record{}, fmt.Errorf("drive ended at %ds", len(p.fixes))
	}
	f := p.fixes[idx]
	s := p.model.Sample(channel.Env{At: f.At, Pos: f.Pos, SpeedKmh: f.SpeedKmh, Area: f.Area})
	return tracker.Record{
		Network:  p.network.String(),
		NetType:  p.network.Class().String(),
		Lat:      f.Pos.Lat,
		Lon:      f.Pos.Lon,
		SpeedKmh: f.SpeedKmh,
		SignalDB: s.SignalDB,
		Serving:  s.Serving,
		Outage:   s.Outage,
	}, nil
}

func main() {
	cat := networks.Default()
	var (
		network = flag.String("network", channel.StarlinkMobility.String(),
			fmt.Sprintf("device network: one of %v", cat.IDs()))
		route  = flag.String("route", "", "route name (default: first route of the corpus)")
		seed   = flag.Int64("seed", 42, "world seed")
		dur    = flag.Duration("t", 10*time.Minute, "tracking duration")
		period = flag.Duration("i", time.Second, "sampling period")
		out    = flag.String("out", "", "output JSONL file (default stdout)")
	)
	flag.Parse()

	n, err := cat.Parse(*network)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	r := pickRoute(*route)
	gaz := geo.DefaultGazetteer()
	fixes := mobility.Drive(r, gaz, mobility.DriveConfig{}, rand.New(rand.NewSource(*seed)))
	build, err := cat.Builder(n, *seed)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	model := build()

	tr := tracker.New(&driveProvider{network: n, fixes: fixes, model: model}, *period)
	maxDur := time.Duration(len(fixes)) * time.Second
	if *dur > maxDur {
		*dur = maxDur
	}
	if err := tr.SampleRange(*dur); err != nil {
		logger.Fatalf("%v", err)
	}

	// File output goes through the crash-safe store: atomic rename plus
	// checked close/flush, so ENOSPC (or any write failure) surfaces as
	// an error instead of a silently truncated trace with exit code 0.
	if *out != "" {
		err = store.WriteFileAtomic(*out, func(w io.Writer) error {
			return tr.WriteJSONL(w)
		})
	} else {
		err = tr.WriteJSONL(os.Stdout)
	}
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.Infof("%d records (%s on %s)", len(tr.Records()), n, r.Name)
}

func pickRoute(name string) *mobility.Route {
	routes := mobility.DefaultRoutes()
	if name == "" {
		return routes[0]
	}
	for _, r := range routes {
		if r.Name == name {
			return r
		}
	}
	names := make([]string, len(routes))
	for i, r := range routes {
		names[i] = r.Name
	}
	logger.Fatalf("unknown route %q (have %v)", name, names)
	return nil
}
