// drivegen generates the synthetic driving dataset: the five-network
// measurement campaign across the five-state drive world. It writes one
// channel-trace CSV per drive per network plus a tests.csv summary —
// the same shape as the artifact the paper released.
//
// Every artifact lands through the crash-safe store (internal/store):
// atomic temp-file + fsync + rename writes, an append-only CHECKPOINT
// journal while the export is in flight, and a trailing MANIFEST
// (schema version, per-file sha256, row counts) that certifies the
// directory complete. A killed run leaves a detectable partial
// campaign; -resume verifies the surviving shards and regenerates only
// the missing or corrupt ones, bit-identical to an uninterrupted run.
//
//	drivegen -scale 0.1 -seed 42 -out ./data
//	drivegen -scale 0.1 -seed 42 -out ./data -resume   # after a crash
//	satcell-analyze -fsck ./data                        # audit the result
//
// The campaign is declarative: -networks restricts the measured set
// ("RM,MOB,ATT"), and -scenario takes the full scenario grammar
// ("networks=RM,MOB;kinds=udp-down,udp-ping;seed=7;name=rural"). The
// default is the paper's five-network campaign.
//
// A long full-scale run can be watched live: -debug-addr serves
// /debug/vars with generation progress (tests done/total, per-worker
// throughput, tests/sec, ETA) and export progress (shards written/
// reused), plus pprof for profiling the worker pool.
//
// The output directory is guarded by an advisory LOCK file, so two
// writers (say, a drivegen and a drivegen -resume) cannot interleave in
// one directory; a lock whose holder is dead is taken over silently. A
// SIGINT or SIGTERM stops the run at the next durable boundary — every
// finished shard is already journalled — and exits 1 with a -resume
// hint.
package main

import (
	"context"
	"errors"
	"flag"
	"os"
	"os/signal"
	"syscall"

	"satcell"
	"satcell/internal/obs"
	"satcell/internal/store"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.1, "campaign scale (1.0 = the paper's ~3,800 km)")
		seed      = flag.Int64("seed", 42, "world seed")
		out       = flag.String("out", "data", "output directory")
		workers   = flag.Int("workers", 0, "generation worker goroutines (0 = all cores; output is identical for any value)")
		resume    = flag.Bool("resume", false, "resume an interrupted campaign: keep verified shards, regenerate missing/corrupt ones")
		debugAddr = flag.String("debug-addr", "", "serve /debug/vars (generation progress, ETA) and /debug/pprof/ on this address")
		netList   = flag.String("networks", "", "comma-separated network subset to measure (default: every catalog network)")
		scenario  = flag.String("scenario", "", "scenario spec, e.g. networks=RM,MOB;kinds=udp-down;seed=7;name=rural (overrides -networks)")
	)
	flag.Parse()
	logger := obs.NewLogger("drivegen")

	sc, err := scenarioFromFlags(*scenario, *netList)
	if err != nil {
		logger.Fatalf("%v", err)
	}

	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		srv, err := obs.ServeDebug(*debugAddr, reg, nil, map[string]func() any{
			"seed":  func() any { return *seed },
			"scale": func() any { return *scale },
			"out":   func() any { return *out },
		})
		if err != nil {
			logger.Fatalf("debug endpoint: %v", err)
		}
		defer srv.Close()
		logger.Infof("debug endpoint on http://%s/debug/vars", srv.Addr())
	}

	// The lock is advisory but load-bearing: two exports interleaving
	// atomic renames and checkpoint appends in one directory would
	// corrupt the journal's claims.
	lock, err := store.AcquireLock(nil, *out, "drivegen")
	if err != nil {
		logger.Fatalf("%v", err)
	}
	defer lock.Release()

	// SIGINT/SIGTERM cancel the context; generation and export observe
	// it at work-item boundaries, so every shard journalled before the
	// signal stays durable and -resume continues from it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	world := satcell.NewWorld(*seed)
	ds, err := world.GenerateDatasetContext(ctx, satcell.DatasetOptions{
		Scale: *scale, Scenario: sc, Workers: *workers, Metrics: reg,
	})
	if err != nil {
		lock.Release()
		logger.Fatalf("interrupted during generation: %v (rerun with -resume)", err)
	}

	stats, err := store.ExportDatasetContext(ctx, *out, ds, store.ExportOptions{
		Seed:    *seed,
		Scale:   *scale,
		Resume:  *resume,
		Metrics: reg,
	})
	if err != nil {
		lock.Release()
		if errors.Is(err, context.Canceled) {
			logger.Fatalf("interrupted: checkpoint is durable, rerun with -resume to continue from the last shard")
		}
		logger.Fatalf("%v (rerun with -resume to continue from the last durable shard)", err)
	}
	logger.Infof("%d drives, %d tests, %.0f km, %.0f trace-minutes -> %s (%d shards written, %d reused)",
		len(ds.Drives), len(ds.Tests), ds.TotalKm, ds.TotalTestMin, *out,
		stats.Written, stats.Reused)
}

// scenarioFromFlags builds the campaign scenario from -scenario (the
// full grammar) or -networks (just a subset); both empty means the
// default campaign (nil scenario).
func scenarioFromFlags(scenario, netList string) (*satcell.Scenario, error) {
	if scenario != "" {
		return satcell.ParseScenario(nil, scenario)
	}
	if netList == "" {
		return nil, nil
	}
	nets, err := satcell.ParseNetworks(nil, netList)
	if err != nil {
		return nil, err
	}
	return &satcell.Scenario{Networks: nets}, nil
}
