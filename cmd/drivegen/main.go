// drivegen generates the synthetic driving dataset: the five-network
// measurement campaign across the five-state drive world. It writes one
// channel-trace CSV per drive per network plus a tests.csv summary —
// the same shape as the artifact the paper released.
//
//	drivegen -scale 0.1 -seed 42 -out ./data
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"satcell"
	"satcell/internal/channel"
)

func main() {
	var (
		scale   = flag.Float64("scale", 0.1, "campaign scale (1.0 = the paper's ~3,800 km)")
		seed    = flag.Int64("seed", 42, "world seed")
		out     = flag.String("out", "data", "output directory")
		workers = flag.Int("workers", 0, "generation worker goroutines (0 = all cores; output is identical for any value)")
	)
	flag.Parse()

	world := satcell.NewWorld(*seed)
	ds := world.GenerateDataset(satcell.DatasetOptions{Scale: *scale, Workers: *workers})
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("drivegen: %v", err)
	}

	for di, d := range ds.Drives {
		for _, n := range channel.Networks {
			name := fmt.Sprintf("drive%03d_%s_%s.csv", di, d.Route, n)
			if err := writeTrace(filepath.Join(*out, name), d.Trace(n)); err != nil {
				log.Fatalf("drivegen: %v", err)
			}
		}
	}
	if err := writeTests(filepath.Join(*out, "tests.csv"), ds); err != nil {
		log.Fatalf("drivegen: %v", err)
	}
	fmt.Printf("drivegen: %d drives, %d tests, %.0f km, %.0f trace-minutes -> %s\n",
		len(ds.Drives), len(ds.Tests), ds.TotalKm, ds.TotalTestMin, *out)
}

func writeTrace(path string, tr *satcell.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return satcell.WriteTraceCSV(f, tr)
}

func writeTests(path string, ds *satcell.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{
		"id", "network", "kind", "route", "state", "start_s", "duration_s",
		"area", "mean_speed_kmh", "throughput_mbps", "loss_rate", "retrans_rate",
		"outcome",
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for i := range ds.Tests {
		t := &ds.Tests[i]
		rec := []string{
			strconv.Itoa(t.ID),
			t.Network.String(),
			t.Kind.String(),
			t.Route,
			t.State,
			strconv.FormatFloat(t.Start.Seconds(), 'f', 0, 64),
			strconv.FormatFloat(t.Duration.Seconds(), 'f', 0, 64),
			t.Area.String(),
			strconv.FormatFloat(t.MeanSpeedKmh, 'f', 1, 64),
			strconv.FormatFloat(t.ThroughputMbps, 'f', 2, 64),
			strconv.FormatFloat(t.LossRate, 'f', 5, 64),
			strconv.FormatFloat(t.RetransRate, 'f', 5, 64),
			t.Outcome.String(),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
