// satcell-analyze computes the paper's summary analyses from a
// tests.csv file (the drivegen export format, which a real field
// campaign would also produce): per-network throughput summaries,
// per-area breakdowns and performance-level coverage shares.
//
//	drivegen -scale 0.1 -out data
//	satcell-analyze -tests data/tests.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"

	"satcell/internal/report"
	"satcell/internal/stats"
)

// row is one parsed tests.csv record.
type row struct {
	network, kind, area string
	throughput          float64
	loss, retrans       float64
}

func main() {
	var (
		path = flag.String("tests", "data/tests.csv", "tests.csv produced by drivegen (or a field campaign)")
		kind = flag.String("kind", "udp-down", "test kind to analyse")
	)
	flag.Parse()

	rows, err := load(*path)
	if err != nil {
		log.Fatalf("satcell-analyze: %v", err)
	}
	fmt.Printf("loaded %d tests from %s\n\n", len(rows), *path)

	networks := []string{"RM", "MOB", "ATT", "TM", "VZ"}

	// Per-network summary for the selected kind.
	fmt.Printf("%-5s %6s %8s %8s %8s %8s   (kind=%s)\n",
		"net", "n", "mean", "median", "p75", "loss%", *kind)
	for _, n := range networks {
		var xs, losses []float64
		for _, r := range rows {
			if r.network == n && r.kind == *kind {
				xs = append(xs, r.throughput)
				losses = append(losses, r.loss)
			}
		}
		s := stats.Summarize(xs)
		fmt.Printf("%-5s %6d %8.1f %8.1f %8.1f %8.2f\n",
			n, s.N, s.Mean, s.Median, s.P75, stats.Mean(losses)*100)
	}

	// Per-area means (Fig. 8 style).
	fmt.Println()
	for _, area := range []string{"urban", "suburban", "rural"} {
		bars := make([]report.Bar, 0, len(networks))
		for _, n := range networks {
			var xs []float64
			for _, r := range rows {
				if r.network == n && r.kind == *kind && r.area == area {
					xs = append(xs, r.throughput)
				}
			}
			bars = append(bars, report.Bar{Label: n, Value: stats.Mean(xs)})
		}
		fmt.Print(report.BarChart("mean throughput, "+area+" (Mbps)", "", 40, bars))
	}

	// Coverage shares (Fig. 9 style, per-test granularity).
	fmt.Println()
	cols := make([]report.Stacked, 0, len(networks))
	for _, n := range networks {
		var counts [4]int
		total := 0
		for _, r := range rows {
			if r.network != n || r.kind != *kind {
				continue
			}
			total++
			switch {
			case r.throughput < 20:
				counts[0]++
			case r.throughput < 50:
				counts[1]++
			case r.throughput < 100:
				counts[2]++
			default:
				counts[3]++
			}
		}
		if total == 0 {
			continue
		}
		shares := make([]float64, 4)
		for i, c := range counts {
			shares[i] = float64(c) / float64(total)
		}
		cols = append(cols, report.Stacked{Label: n, Shares: shares})
	}
	fmt.Print(report.StackedChart("performance-level coverage",
		[]string{"very-low", "low", "medium", "high"}, 50, cols))
}

func load(path string) ([]row, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	col := map[string]int{}
	for i, name := range header {
		col[name] = i
	}
	for _, need := range []string{"network", "kind", "area", "throughput_mbps", "loss_rate", "retrans_rate"} {
		if _, ok := col[need]; !ok {
			return nil, fmt.Errorf("missing column %q", need)
		}
	}
	var rows []row
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		tput, err := strconv.ParseFloat(rec[col["throughput_mbps"]], 64)
		if err != nil {
			return nil, fmt.Errorf("bad throughput %q: %w", rec[col["throughput_mbps"]], err)
		}
		loss, _ := strconv.ParseFloat(rec[col["loss_rate"]], 64)
		retr, _ := strconv.ParseFloat(rec[col["retrans_rate"]], 64)
		rows = append(rows, row{
			network:    rec[col["network"]],
			kind:       rec[col["kind"]],
			area:       rec[col["area"]],
			throughput: tput,
			loss:       loss,
			retrans:    retr,
		})
	}
	return rows, nil
}
