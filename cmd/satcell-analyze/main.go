// satcell-analyze computes the paper's summary analyses from a
// tests.csv file (the drivegen export format, which a real field
// campaign would also produce): per-network throughput summaries,
// per-area breakdowns and performance-level coverage shares.
//
// Ingestion is validating: by default malformed or truncated rows are
// skipped and counted into a data-health report (lenient mode) instead
// of aborting the whole load; -strict fails on the first bad row. The
// -fsck mode audits a dataset directory written by drivegen — manifest
// checksums, torn renames, schema, row counts, timestamp monotonicity —
// and exits non-zero on any finding.
//
// The -events mode renders a JSONL event trace exported by a live run
// (mpshell -events-out) as a per-second timeline: relay traffic,
// scheduled fault windows, session markers.
//
// The -stream mode analyses a whole dataset directory (trace shards +
// tests.csv) through the sharded streaming pipeline: shards are scanned
// in MANIFEST order by -workers goroutines, partial aggregates merge in
// a fixed order, and the full figure set prints without the directory
// ever being resident in memory at once. Output is identical for every
// -workers value. The run degrades instead of aborting: shards with
// transient I/O errors are retried, shards that stay bad are
// quarantined, and every run prints a completeness certificate. A
// SIGINT cancels the scan cleanly and still flushes the event ring.
//
// Exit codes for -stream: 0 = complete analysis, 1 = fatal (structural
// error, strict-mode abort, interrupt), 3 = partial analysis with
// quarantined shards (figures rendered, certificate itemises the loss).
//
// The -telemetry mode replays a campaign run directory's TELEMETRY
// journal (the satcell-campaign flight recorder) into a span waterfall,
// incident timeline and per-worker utilization; -telemetry-json emits
// the machine-readable run summary instead. With -stream, -debug-addr
// serves the live shard counters (/debug/vars, Prometheus
// /debug/metrics, /debug/events, /debug/pprof/) while the scan runs.
//
//	drivegen -scale 0.1 -out data
//	satcell-analyze -tests data/tests.csv
//	satcell-analyze -stream data -workers 4
//	satcell-analyze -fsck data
//	satcell-analyze -events run.jsonl
//	satcell-analyze -telemetry run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"satcell/internal/campaign"
	"satcell/internal/core"
	"satcell/internal/dataset"
	"satcell/internal/networks"
	"satcell/internal/obs"
	"satcell/internal/report"
	"satcell/internal/stats"
	"satcell/internal/store"
)

var logger = obs.NewLogger("satcell-analyze")

func main() {
	var (
		path      = flag.String("tests", "data/tests.csv", "tests.csv produced by drivegen (or a field campaign)")
		kind      = flag.String("kind", "udp-down", "test kind to analyse")
		strict    = flag.Bool("strict", false, "abort on the first malformed row instead of skip-and-count")
		fsck      = flag.String("fsck", "", "verify a dataset directory (manifest, checksums, schema, timestamps) and exit")
		events    = flag.String("events", "", "render a JSONL event trace (mpshell -events-out) as a timeline and exit")
		stream    = flag.String("stream", "", "stream a dataset directory (drivegen -out) through the sharded figure pipeline and exit")
		workers   = flag.Int("workers", 0, "worker goroutines for -stream; 0 = one per core (GOMAXPROCS), negative is rejected; figures are identical for any value")
		eventsOut = flag.String("events-out", "", "with -stream: write the run's event trace (retries, quarantines) as JSONL to this file on shutdown, SIGINT included")
		telemetry = flag.String("telemetry", "", "replay a campaign run directory's TELEMETRY journal as a flight report (waterfall, incidents, worker utilization) and exit")
		telJSON   = flag.Bool("telemetry-json", false, "with -telemetry: emit the machine-readable run summary JSON instead")
		debugAddr = flag.String("debug-addr", "", "with -stream: serve /debug/vars (live shard progress), /debug/metrics (Prometheus), /debug/events and /debug/pprof/ on this address")
	)
	flag.Parse()

	if *fsck != "" {
		runFsck(*fsck)
		return
	}
	if *events != "" {
		runEvents(*events)
		return
	}
	if *telemetry != "" {
		os.Exit(runTelemetry(*telemetry, *telJSON))
	}

	mode := store.Lenient
	if *strict {
		mode = store.Strict
	}
	if *stream != "" {
		w, err := core.ValidateWorkers(*workers)
		if err != nil {
			logger.Fatalf("stream: %v", err)
		}
		os.Exit(runStream(*stream, mode, w, *eventsOut, *debugAddr))
	}
	rows, rep, err := store.LoadTests(*path, mode)
	if err != nil {
		logger.Fatalf("%v", err)
	}

	// Data-health KPIs first: skipped rows and failed tests frame every
	// number below them.
	outcomes := make(map[string]int)
	for _, r := range rows {
		outcomes[r.Outcome]++
	}
	fmt.Print(core.DataHealthFigure(rep.Files, rep.Rows, rep.Skipped, outcomes).Render())
	for _, re := range rep.Errors {
		fmt.Printf("  skipped %s:%d: %s\n", re.File, re.Line, re.Err)
	}
	fmt.Println()

	// Failed tests measured nothing; keep them out of the distributions
	// (they are accounted for in the outcome KPIs above).
	failed := dataset.OutcomeFailed.String()
	usable := rows[:0:0]
	for _, r := range rows {
		if r.Outcome != failed {
			usable = append(usable, r)
		}
	}
	fmt.Printf("loaded %d tests from %s (%d usable for analysis)\n\n", len(rows), *path, len(usable))

	networks := analyzedNetworks(usable)

	// Per-network summary for the selected kind.
	fmt.Printf("%-5s %6s %8s %8s %8s %8s   (kind=%s)\n",
		"net", "n", "mean", "median", "p75", "loss%", *kind)
	for _, n := range networks {
		var xs, losses []float64
		for _, r := range usable {
			if r.Network == n && r.Kind == *kind {
				xs = append(xs, r.ThroughputMbps)
				losses = append(losses, r.LossRate)
			}
		}
		s := stats.Summarize(xs)
		fmt.Printf("%-5s %6d %8.1f %8.1f %8.1f %8.2f\n",
			n, s.N, s.Mean, s.Median, s.P75, stats.Mean(losses)*100)
	}

	// Per-area means (Fig. 8 style).
	fmt.Println()
	for _, area := range []string{"urban", "suburban", "rural"} {
		bars := make([]report.Bar, 0, len(networks))
		for _, n := range networks {
			var xs []float64
			for _, r := range usable {
				if r.Network == n && r.Kind == *kind && r.Area == area {
					xs = append(xs, r.ThroughputMbps)
				}
			}
			bars = append(bars, report.Bar{Label: n, Value: stats.Mean(xs)})
		}
		fmt.Print(report.BarChart("mean throughput, "+area+" (Mbps)", "", 40, bars))
	}

	// Coverage shares (Fig. 9 style, per-test granularity).
	fmt.Println()
	cols := make([]report.Stacked, 0, len(networks))
	for _, n := range networks {
		var counts [4]int
		total := 0
		for _, r := range usable {
			if r.Network != n || r.Kind != *kind {
				continue
			}
			total++
			switch {
			case r.ThroughputMbps < 20:
				counts[0]++
			case r.ThroughputMbps < 50:
				counts[1]++
			case r.ThroughputMbps < 100:
				counts[2]++
			default:
				counts[3]++
			}
		}
		if total == 0 {
			continue
		}
		shares := make([]float64, 4)
		for i, c := range counts {
			shares[i] = float64(c) / float64(total)
		}
		cols = append(cols, report.Stacked{Label: n, Shares: shares})
	}
	fmt.Print(report.StackedChart("performance-level coverage",
		[]string{"very-low", "low", "medium", "high"}, 50, cols))
}

// analyzedNetworks derives the report's network column order from the
// data: catalog networks first (registration order), then any ids the
// rows carry that this build's catalog does not know, in first-seen
// order — a field campaign's tests.csv may include networks registered
// only in the binary that generated it.
func analyzedNetworks(rows []store.TestRow) []string {
	seen := make(map[string]bool, 8)
	for _, r := range rows {
		seen[r.Network] = true
	}
	var out []string
	for _, id := range networks.Default().IDs() {
		if seen[string(id)] {
			out = append(out, string(id))
			delete(seen, string(id))
		}
	}
	for _, r := range rows {
		if seen[r.Network] {
			out = append(out, r.Network)
			delete(seen, r.Network)
		}
	}
	return out
}

// runStream analyses a dataset directory with the sharded streaming
// pipeline and prints the full figure set, the scan's data-health line
// and the run's completeness certificate. The returned exit code is 0
// for a complete run, 3 for a partial run with quarantined shards and
// 1 for a fatal error (including an interrupt). A SIGINT cancels the
// supervisor's context — workers drain, nothing leaks — and the event
// ring still flushes to -events-out.
func runStream(dir string, mode store.Mode, workers int, eventsOut, debugAddr string) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	reg := obs.NewRegistry()
	events := obs.NewTracer(0)
	if debugAddr != "" {
		srv, err := obs.ServeDebug(debugAddr, reg, events, map[string]func() any{
			"dir":     func() any { return dir },
			"workers": func() any { return workers },
		})
		if err != nil {
			logger.Errorf("debug endpoint: %v", err)
			return 1
		}
		defer srv.Close()
		logger.Infof("debug endpoint on http://%s/debug/vars", srv.Addr())
	}
	flushEvents := func() {
		if eventsOut == "" {
			return
		}
		f, err := os.Create(eventsOut)
		if err != nil {
			logger.Errorf("events: %v", err)
			return
		}
		if err := events.WriteJSONL(f); err != nil {
			f.Close()
			logger.Errorf("events: %v", err)
			return
		}
		if err := f.Close(); err != nil {
			logger.Errorf("events: %v", err)
			return
		}
		logger.Infof("event trace: %d events -> %s (%d overwritten by ring wrap)",
			events.Total()-events.Dropped(), eventsOut, events.Dropped())
	}

	src, err := core.OpenStoreSource(dir, mode)
	if err != nil {
		logger.Errorf("stream: %v", err)
		return 1
	}
	sa, err := core.StreamAnalyzeContext(ctx, src, core.StreamOptions{
		Workers: workers,
		Strict:  mode == store.Strict,
		Metrics: reg,
		Events:  events,
	})
	if err != nil {
		flushEvents()
		if ctx.Err() != nil {
			logger.Warnf("stream: interrupted, scan cancelled cleanly: %v", err)
		} else {
			logger.Errorf("stream: %v", err)
		}
		return 1
	}
	figs := sa.Figures()
	for _, id := range core.FigureIDs(figs) {
		fmt.Print(figs[id].Render())
		fmt.Println()
	}
	comp := sa.Completeness()
	fmt.Print(core.CompletenessFigure(comp).Render())
	fmt.Println()
	fmt.Printf("streamed %d rows (%d skipped) with %d workers: %s\n",
		src.Report.Rows, src.Report.Skipped, workers, comp)
	for _, re := range src.Report.Errors {
		fmt.Printf("  skipped %s:%d: %s\n", re.File, re.Line, re.Err)
	}
	flushEvents()
	if !comp.Complete() {
		logger.Warnf("stream: partial analysis: %v", comp.Err())
		return 3
	}
	return 0
}

// runTelemetry replays a campaign run directory's TELEMETRY journal —
// the run's black box — into the flight report (or, with asJSON, the
// machine-readable summary). Read-only: it works on finished, crashed
// and still-running campaigns alike.
func runTelemetry(dir string, asJSON bool) int {
	meta, log, err := campaign.ReadTelemetry(nil, dir)
	if err != nil {
		logger.Errorf("telemetry: %v", err)
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(obs.Summarize(log)); err != nil {
			logger.Errorf("telemetry: %v", err)
			return 1
		}
		return 0
	}
	fmt.Printf("campaign %s: seed %d, scale %g\n", dir, meta.Seed, meta.Scale)
	fmt.Print(obs.RenderFlightReport(log))
	return 0
}

// runFsck audits a dataset directory and exits non-zero on findings.
func runFsck(dir string) {
	rep, err := store.Fsck(dir)
	if err != nil {
		logger.Fatalf("fsck: %v", err)
	}
	fmt.Print(rep)
	if !rep.OK() {
		os.Exit(1)
	}
}

// runEvents renders an exported event trace as a timeline figure.
func runEvents(path string) {
	f, err := os.Open(path)
	if err != nil {
		logger.Fatalf("events: %v", err)
	}
	evs, err := obs.ReadJSONL(f)
	f.Close()
	if err != nil {
		logger.Fatalf("events: %v", err)
	}
	if len(evs) == 0 {
		logger.Fatalf("events: %s holds no events", path)
	}
	fmt.Print(obs.RenderTimeline(evs))
}
