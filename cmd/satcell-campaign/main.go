// satcell-campaign runs the whole measurement campaign end to end —
// plan, generate+export, fsck-verify, streaming-analyze, render — as a
// crash-only supervised pipeline (internal/campaign). Every completed
// stage lands in the run directory's append-only CAMPAIGN journal, so
// the process can be killed at any instant and rerun with -resume to
// continue from the last durable stage, converging on artifacts and
// figures byte-identical to an uninterrupted run.
//
//	satcell-campaign -out run -scale 0.1
//	satcell-campaign -out run -scale 0.1 -resume    # after any crash
//
// Supervision: a watchdog fed by the live progress counters (shards
// exported, rows scanned) cancels a stage whose progress stops for
// -stall-window and retries it with capped jittered backoff
// (-stage-retries attempts). Failures degrade instead of aborting:
// generation quarantines panicking drives, analysis quarantines poison
// shards, and the final certificate itemises both ledgers.
//
// Exit codes follow satcell-analyze -stream: 0 = complete campaign,
// 1 = fatal error or interrupt (the journal is durable; rerun with
// -resume), 3 = partial campaign (figures rendered, certificate
// itemises the quarantined loss).
//
// A SIGINT or SIGTERM checkpoints-then-exits: the current stage is
// cancelled at the next work-item boundary and everything journalled
// stays durable.
//
// For fault drills, -iofaults injects scripted disk faults into every
// stage ("write-err:drive001*:x2", "write-stall:tests.csv:+500ms"; see
// internal/faults); -events-out captures the supervisor's stage and
// shard events as JSONL for satcell-analyze -events.
//
// Every run also keeps a black box: the TELEMETRY journal (span tree,
// periodic metrics snapshots, post-mortem pointers), appended fsync-
// durably beside CAMPAIGN. `satcell-campaign -out run -report` replays
// it into a span waterfall, incident timeline and per-worker
// utilization — across every resume of the run — and -report-json
// emits the machine-readable summary. Stalls and quarantines leave
// automatic post-mortems under run/postmortem/.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"satcell"
	"satcell/internal/campaign"
	"satcell/internal/faults"
	"satcell/internal/netem"
	"satcell/internal/obs"
	"satcell/internal/store"
	"satcell/internal/vsession"
)

var logger = obs.NewLogger("satcell-campaign")

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out          = flag.String("out", "run", "run directory (journal + lock at its root, dataset in data/, figure CSVs in figures/)")
		scale        = flag.Float64("scale", 0.1, "campaign scale (1.0 = the paper's ~3,800 km)")
		seed         = flag.Int64("seed", 42, "world seed")
		workers      = flag.Int("workers", 0, "worker goroutines for generation and analysis (0 = one per core; artifacts are identical for any value)")
		resume       = flag.Bool("resume", false, "resume an interrupted campaign from its CAMPAIGN journal")
		netList      = flag.String("networks", "", "comma-separated network subset to measure (default: every catalog network)")
		scenario     = flag.String("scenario", "", "scenario spec, e.g. networks=RM,MOB;kinds=udp-down;seed=7;name=rural (overrides -networks)")
		stallWindow  = flag.Duration("stall-window", 30*time.Second, "cancel a stage whose progress counters stop moving for this long")
		stageRetries = flag.Int("stage-retries", 2, "retries per failed or stalled stage (negative = none)")
		sampleEvery  = flag.Duration("sample-interval", time.Second, "flight-recorder metrics sampling period for the TELEMETRY journal (negative disables)")
		report       = flag.Bool("report", false, "replay the run directory's TELEMETRY journal as a flight report (waterfall, incidents, worker utilization) and exit")
		reportJSON   = flag.Bool("report-json", false, "like -report but emit the machine-readable run summary JSON")
		debugAddr    = flag.String("debug-addr", "", "serve /debug/vars (stage + shard progress), /debug/metrics (Prometheus), /debug/health (stage + watchdog age) and /debug/pprof/ on this address")
		eventsOut    = flag.String("events-out", "", "write the run's event trace (stage transitions, retries, quarantines) as JSONL to this file on shutdown, SIGINT included")
		ioFaults     = flag.String("iofaults", "", "comma-separated scripted disk-fault rules for fault drills, e.g. write-stall:drive001*:x2:+500ms")
		ioFaultSeed  = flag.Int64("iofault-seed", 1, "seed of the -iofaults probability decisions")
		vsess        = flag.Bool("vsession", false, "append the vsession stage: replay a deterministic virtual transport session into figures/vsession.csv")
		vsessRate    = flag.Float64("vsession-rate", 20, "virtual session link capacity in Mbps")
		vsessDelay   = flag.Duration("vsession-delay", 25*time.Millisecond, "virtual session one-way delay")
		vsessLoss    = flag.Float64("vsession-loss", 0.001, "virtual session datagram loss probability")
		vsessDur     = flag.Duration("vsession-duration", 30*time.Second, "virtual session length (virtual time)")
		vsessFaults  = flag.String("vsession-faults", "", "fault spec applied to the virtual session's path (faults.ParseSpec grammar)")
	)
	flag.Parse()

	if *report || *reportJSON {
		return renderReport(*out, *reportJSON)
	}

	sc, err := scenarioFromFlags(*scenario, *netList)
	if err != nil {
		logger.Errorf("%v", err)
		return 1
	}

	reg := obs.NewRegistry()
	events := obs.NewTracer(0)
	flushEvents := func() {
		if *eventsOut == "" {
			return
		}
		f, err := os.Create(*eventsOut)
		if err != nil {
			logger.Errorf("events: %v", err)
			return
		}
		if err := events.WriteJSONL(f); err != nil {
			f.Close()
			logger.Errorf("events: %v", err)
			return
		}
		if err := f.Close(); err != nil {
			logger.Errorf("events: %v", err)
			return
		}
		logger.Infof("event trace: %d events -> %s (%d overwritten by ring wrap)",
			events.Total()-events.Dropped(), *eventsOut, events.Dropped())
	}
	defer flushEvents()

	status := &campaign.Status{}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, reg, events, map[string]func() any{
			"seed":     func() any { return *seed },
			"scale":    func() any { return *scale },
			"out":      func() any { return *out },
			"campaign": func() any { return status.Snapshot() },
		})
		if err != nil {
			logger.Errorf("debug endpoint: %v", err)
			return 1
		}
		defer srv.Close()
		logger.Infof("debug endpoint on http://%s/debug/vars", srv.Addr())
	}

	var fsys store.FS
	if *ioFaults != "" {
		sched, err := faults.ParseIOSpec(*ioFaults, *ioFaultSeed)
		if err != nil {
			logger.Errorf("iofaults: %v", err)
			return 1
		}
		ffs := store.NewFaultFS(nil, sched)
		fsys = ffs
		logger.Infof("injecting disk faults (schedule digest %s)", sched.Digest())
		defer func() { logger.Infof("fault stats: %v", ffs.Stats()) }()
	}

	// The vsession knob replays a deterministic virtual transport
	// session (sim stack, virtual time) after render; its seed follows
	// the campaign's effective seed so the whole run replays from one
	// number.
	var vcfg *vsession.Config
	if *vsess {
		spec := vsession.PathSpec{
			Name: "primary",
			Down: netem.ConstantShape(*vsessRate, *vsessDelay, *vsessLoss),
			Up:   netem.ConstantShape(*vsessRate, *vsessDelay, *vsessLoss),
		}
		if *vsessFaults != "" {
			fs, err := faults.ParseSpec(*vsessFaults, *seed)
			if err != nil {
				logger.Errorf("vsession-faults: %v", err)
				return 1
			}
			spec.Faults = &fs
		}
		vcfg = &vsession.Config{Paths: []vsession.PathSpec{spec}, Duration: *vsessDur}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	res, err := campaign.Run(ctx, campaign.Config{
		Dir: *out, Seed: *seed, Scale: *scale, Scenario: sc,
		Workers: *workers, Resume: *resume,
		StallWindow: *stallWindow, StageRetries: *stageRetries,
		SampleInterval: *sampleEvery, Status: status,
		Metrics: reg, Events: events, FS: fsys,
		Log: logger, VSession: vcfg,
	})
	if err != nil {
		if ctx.Err() != nil {
			logger.Warnf("interrupted: completed stages are journalled; rerun with -resume to continue: %v", err)
		} else {
			logger.Errorf("%v (rerun with -resume to continue from the last journalled stage)", err)
		}
		return 1
	}

	for _, id := range satcell.FigureIDs(res.Figures) {
		fmt.Print(res.Figures[id].Render())
		fmt.Println()
	}
	fmt.Print(res.Certificate())
	logger.Infof("campaign %s: %d shards written, %d reused, %d stage retries, %d stalls -> data in %s, figures in %s",
		res.Completeness.String(), res.Written, res.Reused, res.Retries, res.Stalls, res.DataDir, res.FiguresDir)
	if code := res.ExitCode(); code != 0 {
		logger.Warnf("partial campaign: %v", res.Completeness.Err())
		return code
	}
	return 0
}

// renderReport replays the run directory's TELEMETRY journal — the
// run's black box — without touching the lock or the journals' write
// paths, so it works on a finished run, a crashed one, or one still in
// flight. asJSON selects the machine-readable summary.
func renderReport(dir string, asJSON bool) int {
	meta, log, err := campaign.ReadTelemetry(nil, dir)
	if err != nil {
		logger.Errorf("%v", err)
		return 1
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(obs.Summarize(log)); err != nil {
			logger.Errorf("%v", err)
			return 1
		}
		return 0
	}
	fmt.Printf("campaign %s: seed %d, scale %g\n", dir, meta.Seed, meta.Scale)
	fmt.Print(obs.RenderFlightReport(log))
	return 0
}

// scenarioFromFlags builds the campaign scenario from -scenario (the
// full grammar) or -networks (just a subset); both empty means the
// default campaign (nil scenario).
func scenarioFromFlags(scenario, netList string) (*satcell.Scenario, error) {
	if scenario != "" {
		return satcell.ParseScenario(nil, scenario)
	}
	if netList == "" {
		return nil, nil
	}
	nets, err := satcell.ParseNetworks(nil, netList)
	if err != nil {
		return nil, err
	}
	return &satcell.Scenario{Networks: nets}, nil
}
