package main

import (
	"fmt"
	"os"
	"time"

	"satcell/internal/channel"
	"satcell/internal/faults"
	"satcell/internal/netem"
	"satcell/internal/obs"
	"satcell/internal/trace"
	"satcell/internal/vsession"
)

// runVirtual executes the shaped session in virtual time instead of
// relaying sockets: the same shape/fault flags drive the sim-stack
// driver, the per-second series goes to stdout as CSV, and the summary
// line carries the session digest. Repeating the command replays the
// session bit-identically, however loaded the host is.
func runVirtual(logger *obs.Logger, down, up netem.Shape, sched *faults.Schedule,
	seed int64, duration time.Duration, trace2 string) {
	cfg := vsession.Config{
		Paths: []vsession.PathSpec{{
			Name:   "primary",
			Down:   down,
			Up:     up,
			Faults: sched,
		}},
		Duration: duration,
		Seed:     seed,
	}
	if trace2 != "" {
		tr2, err := readTrace(trace2)
		if err != nil {
			logger.Fatalf("second trace: %v", err)
		}
		cfg.Paths = append(cfg.Paths, vsession.PathSpec{
			Name: "secondary",
			Down: netem.FromTrace(tr2, false),
			Up:   netem.FromTrace(tr2, true),
		})
		logger.Infof("MPTCP replay: secondary path from %s (%d samples)", trace2, len(tr2.Samples))
	}

	start := time.Now()
	res, err := vsession.Run(cfg)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	fmt.Print(res.CSV())
	logger.Infof("%s (wall %s)", res.Summary(), time.Since(start).Round(time.Millisecond))
}

// readTrace loads a satcell channel trace CSV.
func readTrace(path string) (*channel.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadCSV(f)
}
