// mpshell is the trace-driven network shaper of the toolkit: a
// userspace stand-in for the paper's MpShell (a Mahimahi variant). It
// relays UDP or TCP traffic toward a target while pacing, delaying and
// (for UDP) dropping packets according to a replayed channel trace or
// constant conditions, so the real measurement tools experience
// emulated Starlink/cellular networks.
//
//	mpshell -listen 127.0.0.1:6000 -target 127.0.0.1:5201 -trace mob.csv
//	mpshell -proto tcp -listen :6000 -target :5201 -rate 50 -delay 30ms -loss 0.005
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"satcell/internal/netem"
	"satcell/internal/trace"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:6000", "client-facing address")
		target  = flag.String("target", "", "server address to forward to (required)")
		proto   = flag.String("proto", "udp", "relay protocol: udp or tcp")
		tracePt = flag.String("trace", "", "channel trace CSV to replay (satcell format)")
		rate    = flag.Float64("rate", 100, "constant capacity in Mbps (when no trace)")
		delay   = flag.Duration("delay", 20*time.Millisecond, "constant one-way delay (when no trace)")
		loss    = flag.Float64("loss", 0, "constant datagram loss probability (when no trace)")
		seed    = flag.Int64("seed", 1, "loss RNG seed")
	)
	flag.Parse()
	if *target == "" {
		log.Fatal("mpshell: -target is required")
	}

	var up, down netem.Shape
	if *tracePt != "" {
		f, err := os.Open(*tracePt)
		if err != nil {
			log.Fatalf("mpshell: %v", err)
		}
		tr, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatalf("mpshell: read trace: %v", err)
		}
		down = netem.FromTrace(tr, false)
		up = netem.FromTrace(tr, true)
		fmt.Printf("mpshell: replaying %s trace (%d samples, %s)\n",
			tr.Network, len(tr.Samples), tr.Duration())
	} else {
		down = netem.ConstantShape(*rate, *delay, *loss)
		up = netem.ConstantShape(*rate, *delay, *loss)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	switch *proto {
	case "udp":
		relay, err := netem.NewUDPRelay(*listen, *target, up, down, *seed)
		if err != nil {
			log.Fatalf("mpshell: %v", err)
		}
		defer relay.Close()
		fmt.Printf("mpshell: udp %s -> %s\n", relay.Addr(), *target)
	case "tcp":
		relay, err := netem.NewTCPRelay(*listen, *target, up, down)
		if err != nil {
			log.Fatalf("mpshell: %v", err)
		}
		defer relay.Close()
		fmt.Printf("mpshell: tcp %s -> %s (loss not emulated for streams)\n", relay.Addr(), *target)
	default:
		log.Fatalf("mpshell: unknown proto %q", *proto)
	}
	<-ctx.Done()
}
