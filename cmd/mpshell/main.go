// mpshell is the trace-driven network shaper of the toolkit: a
// userspace stand-in for the paper's MpShell (a Mahimahi variant). It
// relays UDP or TCP traffic toward a target while pacing, delaying and
// (for UDP) dropping packets according to a replayed channel trace or
// constant conditions, so the real measurement tools experience
// emulated Starlink/cellular networks.
//
//	mpshell -listen 127.0.0.1:6000 -target 127.0.0.1:5201 -trace mob.csv
//	mpshell -proto tcp -listen :6000 -target :5201 -rate 50 -delay 30ms -loss 0.005
//
// A deterministic fault scenario can be layered on top of the shaping
// with -faults (see internal/faults.ParseSpec for the grammar):
//
//	mpshell -target :5201 -faults 'blackout@5s+800ms;auto=4/60s;corrupt=0.001' -faultseed 7
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"sync"
	"time"

	"satcell/internal/faults"
	"satcell/internal/netem"
	"satcell/internal/trace"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:6000", "client-facing address")
		target  = flag.String("target", "", "server address to forward to (required)")
		proto   = flag.String("proto", "udp", "relay protocol: udp or tcp")
		tracePt = flag.String("trace", "", "channel trace CSV to replay (satcell format)")
		rate    = flag.Float64("rate", 100, "constant capacity in Mbps (when no trace)")
		delay   = flag.Duration("delay", 20*time.Millisecond, "constant one-way delay (when no trace)")
		loss    = flag.Float64("loss", 0, "constant datagram loss probability (when no trace)")
		seed    = flag.Int64("seed", 1, "loss RNG seed")
		faultsF = flag.String("faults", "", "fault scenario spec (e.g. 'blackout@5s+800ms;auto=4/60s;corrupt=0.001')")
		fseed   = flag.Int64("faultseed", 1, "fault schedule seed (replays bit-identically)")
	)
	flag.Parse()
	if *target == "" {
		log.Fatal("mpshell: -target is required")
	}

	var gate *faults.Injector
	if *faultsF != "" {
		sched, err := faults.ParseSpec(*faultsF, *fseed)
		if err != nil {
			log.Fatalf("mpshell: %v", err)
		}
		gate = faults.NewInjector(sched)
		fmt.Printf("mpshell: %s digest=%s\n", sched.String(), sched.Digest()[:12])
	}

	var up, down netem.Shape
	if *tracePt != "" {
		f, err := os.Open(*tracePt)
		if err != nil {
			log.Fatalf("mpshell: %v", err)
		}
		tr, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatalf("mpshell: read trace: %v", err)
		}
		down = netem.FromTrace(tr, false)
		up = netem.FromTrace(tr, true)
		fmt.Printf("mpshell: replaying %s trace (%d samples, %s)\n",
			tr.Network, len(tr.Samples), tr.Duration())
	} else {
		down = netem.ConstantShape(*rate, *delay, *loss)
		up = netem.ConstantShape(*rate, *delay, *loss)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The relay is created through a closure so the fault schedule's
	// restart windows can kill it and bring it back on the same port.
	var (
		start func(addr string) (io.Closer, string, error)
		fgate netem.FaultGate
	)
	if gate != nil {
		fgate = gate
	}
	switch *proto {
	case "udp":
		start = func(addr string) (io.Closer, string, error) {
			r, err := netem.NewUDPRelayFaulty(addr, *target, up, down, *seed, fgate)
			if err != nil {
				return nil, "", err
			}
			return r, r.Addr().String(), nil
		}
	case "tcp":
		start = func(addr string) (io.Closer, string, error) {
			r, err := netem.NewTCPRelayFaulty(addr, *target, up, down, fgate)
			if err != nil {
				return nil, "", err
			}
			return r, r.Addr().String(), nil
		}
	default:
		log.Fatalf("mpshell: unknown proto %q", *proto)
	}

	relay, addr, err := start(*listen)
	if err != nil {
		log.Fatalf("mpshell: %v", err)
	}
	fmt.Printf("mpshell: %s %s -> %s\n", *proto, addr, *target)

	var mu sync.Mutex
	if gate != nil && len(gate.Schedule().Restarts) > 0 {
		sup := faults.Supervise(gate.Schedule().Restarts,
			func() {
				mu.Lock()
				relay.Close()
				mu.Unlock()
				fmt.Println("mpshell: relay killed (restart window)")
			},
			func() {
				r2, _, err := start(addr)
				if err != nil {
					fmt.Printf("mpshell: relay restart failed: %v\n", err)
					return
				}
				mu.Lock()
				relay = r2
				mu.Unlock()
				fmt.Println("mpshell: relay restored")
			})
		defer sup.Stop()
	}

	<-ctx.Done()
	mu.Lock()
	relay.Close()
	mu.Unlock()
	if gate != nil {
		st := gate.Stats()
		fmt.Printf("mpshell: faults applied: %d blackout drops, %d corrupted, %d truncated, %d dials refused\n",
			st.BlackoutDrops, st.Corrupted, st.Truncated, st.DialsRefused)
	}
}
