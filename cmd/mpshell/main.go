// mpshell is the trace-driven network shaper of the toolkit: a
// userspace stand-in for the paper's MpShell (a Mahimahi variant). It
// relays UDP or TCP traffic toward a target while pacing, delaying and
// (for UDP) dropping packets according to a replayed channel trace or
// constant conditions, so the real measurement tools experience
// emulated Starlink/cellular networks.
//
//	mpshell -listen 127.0.0.1:6000 -target 127.0.0.1:5201 -trace mob.csv
//	mpshell -proto tcp -listen :6000 -target :5201 -rate 50 -delay 30ms -loss 0.005
//
// A deterministic fault scenario can be layered on top of the shaping
// with -faults (see internal/faults.ParseSpec for the grammar):
//
//	mpshell -target :5201 -faults 'blackout@5s+800ms;auto=4/60s;corrupt=0.001' -faultseed 7
//
// While shaping, -debug-addr serves live introspection — metrics
// (/debug/vars), the event ring (/debug/events), pprof
// (/debug/pprof/) and health (/debug/health) — and -events-out saves
// the event trace as JSONL on shutdown, renderable with
// satcell-analyze -events.
package main

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"sync"
	"time"

	"satcell/internal/faults"
	"satcell/internal/netem"
	"satcell/internal/obs"
	"satcell/internal/trace"
)

// shapedRelay is what mpshell needs from either relay flavour: the
// lifecycle, observability attachment and the shutdown-summary totals.
type shapedRelay interface {
	Close() error
	Instrument(reg *obs.Registry, tr *obs.Tracer)
	Counters() netem.Counters
}

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:6000", "client-facing address")
		target    = flag.String("target", "", "server address to forward to (required)")
		proto     = flag.String("proto", "udp", "relay protocol: udp or tcp")
		tracePt   = flag.String("trace", "", "channel trace CSV to replay (satcell format)")
		rate      = flag.Float64("rate", 100, "constant capacity in Mbps (when no trace)")
		delay     = flag.Duration("delay", 20*time.Millisecond, "constant one-way delay (when no trace)")
		loss      = flag.Float64("loss", 0, "constant datagram loss probability (when no trace)")
		seed      = flag.Int64("seed", 1, "loss RNG seed")
		faultsF   = flag.String("faults", "", "fault scenario spec (e.g. 'blackout@5s+800ms;auto=4/60s;corrupt=0.001')")
		fseed     = flag.Int64("faultseed", 1, "fault schedule seed (replays bit-identically)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/vars, /debug/events, /debug/pprof/ and /debug/health on this address")
		eventsOut = flag.String("events-out", "", "write the event trace as JSONL to this file on shutdown")
		vtime     = flag.Bool("vtime", false, "run the shaped session in virtual time on the sim stack (no sockets): per-second CSV on stdout, deterministic per seed")
		vtimeDur  = flag.Duration("vtime-duration", 30*time.Second, "virtual session length (with -vtime)")
		vtimeTr2  = flag.String("vtime-trace2", "", "second-path trace CSV: runs an MPTCP replay across both paths (with -vtime)")
	)
	flag.Parse()
	logger := obs.NewLogger("mpshell")
	if *target == "" && !*vtime {
		logger.Fatalf("-target is required")
	}

	// The registry and tracer live for the whole process: supervised
	// restarts re-instrument the replacement relay on the same series,
	// so counters accumulate across kill/restore cycles.
	reg := obs.NewRegistry()
	events := obs.NewTracer(0)

	var gate *faults.Injector
	var fsched *faults.Schedule
	var schedDigest string
	if *faultsF != "" {
		sched, err := faults.ParseSpec(*faultsF, *fseed)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		fsched = &sched
		gate = faults.NewInjector(sched)
		gate.Instrument(reg, events)
		schedDigest = sched.Digest()[:12]
		logger.Infof("%s digest=%s", sched.String(), schedDigest)
	}

	var up, down netem.Shape
	if *tracePt != "" {
		f, err := os.Open(*tracePt)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		tr, err := trace.ReadCSV(f)
		f.Close()
		if err != nil {
			logger.Fatalf("read trace: %v", err)
		}
		down = netem.FromTrace(tr, false)
		up = netem.FromTrace(tr, true)
		logger.Infof("replaying %s trace (%d samples, %s)",
			tr.Network, len(tr.Samples), tr.Duration())
	} else {
		down = netem.ConstantShape(*rate, *delay, *loss)
		up = netem.ConstantShape(*rate, *delay, *loss)
	}

	if *vtime {
		runVirtual(logger, down, up, fsched, *seed, *vtimeDur, *vtimeTr2)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The relay is created through a closure so the fault schedule's
	// restart windows can kill it and bring it back on the same port;
	// each incarnation is instrumented on the shared registry.
	var (
		start func(addr string) (shapedRelay, string, error)
		fgate netem.FaultGate
	)
	if gate != nil {
		fgate = gate
	}
	switch *proto {
	case "udp":
		start = func(addr string) (shapedRelay, string, error) {
			r, err := netem.NewUDPRelayFaulty(addr, *target, up, down, *seed, fgate)
			if err != nil {
				return nil, "", err
			}
			r.Instrument(reg, events)
			return r, r.Addr().String(), nil
		}
	case "tcp":
		start = func(addr string) (shapedRelay, string, error) {
			r, err := netem.NewTCPRelayFaulty(addr, *target, up, down, fgate)
			if err != nil {
				return nil, "", err
			}
			r.Instrument(reg, events)
			return r, r.Addr().String(), nil
		}
	default:
		logger.Fatalf("unknown proto %q", *proto)
	}

	relay, addr, err := start(*listen)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	logger.Infof("%s %s -> %s", *proto, addr, *target)

	startedAt := time.Now()
	if *debugAddr != "" {
		health := map[string]func() any{
			"proto":      func() any { return *proto },
			"listen":     func() any { return addr },
			"target":     func() any { return *target },
			"uptime_sec": func() any { return time.Since(startedAt).Seconds() },
		}
		if schedDigest != "" {
			health["fault_digest"] = func() any { return schedDigest }
		}
		srv, err := obs.ServeDebug(*debugAddr, reg, events, health)
		if err != nil {
			logger.Fatalf("debug endpoint: %v", err)
		}
		defer srv.Close()
		logger.Infof("debug endpoint on http://%s/debug/vars", srv.Addr())
	}

	var mu sync.Mutex
	if gate != nil && len(gate.Schedule().Restarts) > 0 {
		sup := faults.Supervise(gate.Schedule().Restarts,
			func() {
				mu.Lock()
				relay.Close()
				mu.Unlock()
				logger.Warnf("relay killed (restart window)")
			},
			func() {
				r2, _, err := start(addr)
				if err != nil {
					logger.Errorf("relay restart failed: %v", err)
					return
				}
				mu.Lock()
				relay = r2
				mu.Unlock()
				logger.Infof("relay restored")
			})
		defer sup.Stop()
	}

	<-ctx.Done()
	mu.Lock()
	relay.Close()
	c := relay.Counters()
	mu.Unlock()

	// Structured shutdown summary: what actually moved through the
	// shaped link, per direction, plus what the fault scenario did.
	logger.Infof("shutdown summary: uptime=%s sessions=%d "+
		"up_bytes=%d up_pkts=%d up_drops=%d down_bytes=%d down_pkts=%d down_drops=%d",
		time.Since(startedAt).Round(time.Millisecond), c.Sessions,
		c.UpBytes, c.UpPkts, c.UpDrops, c.DownBytes, c.DownPkts, c.DownDrops)
	if gate != nil {
		st := gate.Stats()
		logger.Infof("faults applied: blackout_drops=%d corrupted=%d truncated=%d dials_refused=%d",
			st.BlackoutDrops, st.Corrupted, st.Truncated, st.DialsRefused)
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			logger.Fatalf("events: %v", err)
		}
		if err := events.WriteJSONL(f); err != nil {
			f.Close()
			logger.Fatalf("events: %v", err)
		}
		if err := f.Close(); err != nil {
			logger.Fatalf("events: %v", err)
		}
		logger.Infof("event trace: %d events -> %s (%d overwritten by ring wrap)",
			events.Total()-events.Dropped(), *eventsOut, events.Dropped())
	}
}
