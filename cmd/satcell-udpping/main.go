// satcell-udpping reimplements the paper's UDP-Ping latency tool
// (§3.2): 1024-byte UDP probes, per-probe RTTs and loss accounting.
//
// Server:  satcell-udpping -server -addr 127.0.0.1:5301
// Client:  satcell-udpping -addr 127.0.0.1:5301 -c 20 -i 200ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"satcell/internal/meas/udpping"
	"satcell/internal/obs"
	"satcell/internal/stats"
)

var logger = obs.NewLogger("satcell-udpping")

func main() {
	var (
		server   = flag.Bool("server", false, "run in echo-server mode")
		addr     = flag.String("addr", "127.0.0.1:5301", "address to listen on / probe")
		count    = flag.Int("c", 10, "number of probes")
		interval = flag.Duration("i", 200*time.Millisecond, "probe interval")
		timeout  = flag.Duration("w", 2*time.Second, "trailing reply timeout")
	)
	flag.Parse()

	if *server {
		srv, err := udpping.NewServer(*addr)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		defer srv.Close()
		fmt.Printf("satcell-udpping echo server on %s\n", srv.Addr())
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		<-ctx.Done()
		return
	}

	res, err := udpping.Run(context.Background(), udpping.Config{
		Addr: *addr, Count: *count, Interval: *interval, Timeout: *timeout,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}
	for _, p := range res.Probes {
		if p.Lost {
			fmt.Printf("seq=%d lost\n", p.Seq)
		} else {
			fmt.Printf("seq=%d rtt=%.3f ms\n", p.Seq, p.RTT.Seconds()*1000)
		}
	}
	rtts := res.RTTsMs()
	sum := stats.Summarize(rtts)
	fmt.Printf("--- %s ---\n", *addr)
	fmt.Printf("%d sent, %d received, %.1f%% loss\n",
		res.Sent, res.Received, res.LossRate()*100)
	if len(rtts) > 0 {
		fmt.Printf("rtt min/median/p90/max = %.3f/%.3f/%.3f/%.3f ms\n",
			sum.Min, sum.Median, sum.P90, sum.Max)
	}
}
