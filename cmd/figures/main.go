// figures regenerates the paper's evaluation: every figure (Fig. 1-11,
// Eq. 1, dataset summary) plus the paper-vs-measured experiments table.
//
//	figures -scale 0.25                 # all figures as text
//	figures -figure fig9 -csv           # one figure's data as CSV
//	figures -experiments                # only the markdown record
//	figures -out figs                   # also write per-figure CSV artifacts
//
// With -out, each figure's data lands as a CSV file through the
// crash-safe store: atomic writes plus a MANIFEST, so the artifact
// directory is verifiable with satcell-analyze -fsck like the dataset
// itself.
package main

import (
	"flag"
	"fmt"
	"os"

	"satcell"
	"satcell/internal/obs"
	"satcell/internal/store"
)

var logger = obs.NewLogger("figures")

func main() {
	var (
		scale     = flag.Float64("scale", 0.25, "campaign scale (1.0 = the paper's ~3,800 km)")
		seed      = flag.Int64("seed", 42, "world seed")
		only      = flag.String("figure", "", "render a single figure (e.g. fig3a)")
		asCSV     = flag.Bool("csv", false, "emit the figure's data as CSV instead of text")
		expOnly   = flag.Bool("experiments", false, "print only the paper-vs-measured table")
		mpWin     = flag.Int("mp-window", 300, "MPTCP replay window (seconds)")
		mpN       = flag.Int("mp-windows", 3, "MPTCP replay window count")
		workers   = flag.Int("workers", 0, "worker goroutines for generation and the streaming analysis phase; 0 = one per core (GOMAXPROCS) for generation with the classic in-memory analyzer, >0 also streams the analysis, negative is rejected; output is identical for any value")
		outDir    = flag.String("out", "", "also write figure data as manifested CSV artifacts into this directory")
		netList   = flag.String("networks", "", "comma-separated network subset to measure (default: every catalog network)")
		scenario  = flag.String("scenario", "", "scenario spec, e.g. networks=RM,MOB;kinds=udp-down;seed=7 (overrides -networks)")
		debugAddr = flag.String("debug-addr", "", "serve /debug/vars (live generation/analysis progress), /debug/metrics (Prometheus) and /debug/pprof/ on this address")
	)
	flag.Parse()

	sc, err := scenarioFromFlags(*scenario, *netList)
	if err != nil {
		logger.Fatalf("%v", err)
	}

	// Instrumentation is opt-in: a registry only exists when there is a
	// debug endpoint to read it, and it never alters the rendered bytes.
	var reg *obs.Registry
	if *debugAddr != "" {
		reg = obs.NewRegistry()
		srv, err := obs.ServeDebug(*debugAddr, reg, nil, map[string]func() any{
			"seed":  func() any { return *seed },
			"scale": func() any { return *scale },
		})
		if err != nil {
			logger.Fatalf("debug endpoint: %v", err)
		}
		defer srv.Close()
		logger.Infof("debug endpoint on http://%s/debug/vars", srv.Addr())
	}
	// Validate only: 0 keeps its classic-analyzer meaning here, so the
	// normalised value is not substituted back.
	if _, err := satcell.ValidateWorkers(*workers); err != nil {
		logger.Fatalf("%v", err)
	}
	world := satcell.NewWorld(*seed)
	fmt.Fprintf(os.Stderr, "generating dataset (scale %.2f)...\n", *scale)
	ds := world.GenerateDataset(satcell.DatasetOptions{Scale: *scale, Scenario: sc, Workers: *workers, Metrics: reg})
	opts := satcell.FigureOptions{MultipathWindowSeconds: *mpWin, MultipathWindows: *mpN, Workers: *workers, Metrics: reg}

	if *only != "" {
		f := world.Figure(ds, *only, opts)
		if f == nil {
			logger.Fatalf("unknown figure %q", *only)
		}
		if *outDir != "" {
			writeArtifacts(*outDir, *seed, *scale, map[string]*satcell.Figure{*only: f})
		}
		if *asCSV {
			fmt.Print(f.CSV())
		} else {
			fmt.Print(f.Render())
		}
		return
	}

	fmt.Fprintln(os.Stderr, "running analyses (fig10/fig11 replay packet-level transfers)...")
	figs := world.Figures(ds, opts)
	if *outDir != "" {
		writeArtifacts(*outDir, *seed, *scale, figs)
	}
	if !*expOnly {
		for _, id := range satcell.FigureIDs(figs) {
			fmt.Print(figs[id].Render())
			fmt.Println()
		}
	}
	fmt.Println("== Paper vs measured ==")
	fmt.Print(satcell.RenderExperiments(satcell.Experiments(figs)))
}

// scenarioFromFlags builds the campaign scenario from -scenario (the
// full grammar) or -networks (just a subset); both empty means the
// default campaign (nil scenario).
func scenarioFromFlags(scenario, netList string) (*satcell.Scenario, error) {
	if scenario != "" {
		return satcell.ParseScenario(nil, scenario)
	}
	if netList == "" {
		return nil, nil
	}
	nets, err := satcell.ParseNetworks(nil, netList)
	if err != nil {
		return nil, err
	}
	return &satcell.Scenario{Networks: nets}, nil
}

// writeArtifacts persists each figure's data as <id>.csv through the
// crash-safe store (atomic writes + trailing MANIFEST).
func writeArtifacts(dir string, seed int64, scale float64, figs map[string]*satcell.Figure) {
	files := make(map[string]string, len(figs))
	for id, f := range figs {
		files[id+".csv"] = f.CSV()
	}
	if err := store.ExportFigures(dir, seed, scale, files); err != nil {
		logger.Fatalf("%v", err)
	}
	logger.Infof("wrote %d figure CSVs -> %s", len(files), dir)
}
