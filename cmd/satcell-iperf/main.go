// satcell-iperf is the iPerf-style throughput tool of the toolkit: it
// runs TCP/UDP upload and download tests with optional parallel streams
// against a satcell-iperf server, printing per-interval reports and a
// JSON summary — the same tests the paper runs while driving (§3.2).
//
// Server:  satcell-iperf -server -addr 127.0.0.1:5201
// Client:  satcell-iperf -addr 127.0.0.1:5201 -proto udp -dir down -rate 200 -t 10s
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"satcell/internal/meas/iperf"
	"satcell/internal/obs"
)

var logger = obs.NewLogger("satcell-iperf")

func main() {
	var (
		server   = flag.Bool("server", false, "run in server mode")
		addr     = flag.String("addr", "127.0.0.1:5201", "address to listen on / connect to")
		proto    = flag.String("proto", "tcp", "protocol: tcp or udp")
		dir      = flag.String("dir", "down", "direction from the client: down or up")
		dur      = flag.Duration("t", 10*time.Second, "test duration")
		parallel = flag.Int("P", 1, "parallel TCP streams")
		rate     = flag.Float64("rate", 100, "UDP target rate (Mbps)")
		asJSON   = flag.Bool("json", false, "print the full result as JSON")
	)
	flag.Parse()

	if *server {
		runServer(*addr)
		return
	}

	cfg := iperf.ClientConfig{
		Addr:     *addr,
		Proto:    iperf.Proto(*proto),
		Dir:      iperf.Direction(*dir),
		Duration: *dur,
		Parallel: *parallel,
		RateMbps: *rate,
	}
	res, err := iperf.Run(context.Background(), cfg)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			logger.Fatalf("%v", err)
		}
		return
	}
	for _, iv := range res.Intervals {
		fmt.Printf("[%4.0f-%4.0fs] %8.2f Mbps\n",
			iv.Start.Seconds(), iv.Start.Seconds()+1, iv.Mbps)
	}
	fmt.Printf("total: %.2f Mbps (%s %s, %d stream(s))\n",
		res.TotalMbps, res.Proto, res.Dir, res.Parallel)
	if res.Proto == iperf.UDP {
		fmt.Printf("loss: %.2f%%  jitter: %.3f ms  (%d/%d datagrams)\n",
			res.LossRate*100, res.JitterMs, res.Received, res.Sent)
	}
}

func runServer(addr string) {
	srv, err := iperf.NewServer(addr)
	if err != nil {
		logger.Fatalf("%v", err)
	}
	defer srv.Close()
	fmt.Printf("satcell-iperf server listening on %s (tcp+udp)\n", srv.Addr())
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	<-ctx.Done()
}
