// Streaming-pipeline benchmarks: BenchmarkStreamingFigures sweeps the
// worker-pool size over the shared campaign dataset (the figures are
// bit-identical for every count, so the sub-benchmarks measure pure
// pipeline scaling), and TestStreamingBenchJSON emits the same sweep as
// a machine-readable BENCH_streaming.json for `make bench-json` / CI.
package satcell_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"satcell/internal/core"
	"satcell/internal/dataset"
	"satcell/internal/obs"
)

// streamBenchWorkers is the sweep recorded in EXPERIMENTS.md.
var streamBenchWorkers = []int{1, 2, 4, 8}

// streamRows counts the pipeline's unit of work over the benchmark
// dataset: every trace record of every network plus every test row.
func streamRows() int64 {
	rows := 0
	for i := range benchDS.Drives {
		for _, recs := range benchDS.Drives[i].Observed {
			rows += len(recs)
		}
	}
	return int64(rows + len(benchDS.Tests))
}

// BenchmarkStreamingFigures runs the full streamable figure set through
// the sharded pipeline at each worker count. rows/s is the end-to-end
// aggregation throughput; compare the workers=N timings for the scaling
// ratio (on a single-core host they collapse to the same number, since
// the pipeline is CPU-bound).
func BenchmarkStreamingFigures(b *testing.B) {
	benchSetup(b)
	rows := streamRows()
	for _, workers := range streamBenchWorkers {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var figs map[string]*core.Figure
			for i := 0; i < b.N; i++ {
				sa, err := core.StreamAnalyze(&core.DatasetSource{DS: benchDS},
					core.StreamOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				figs = sa.Figures()
			}
			if len(figs) == 0 {
				b.Fatal("no figures")
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			reportKPIs(b, figs["dataset"], "tests", "distance_km")
		})
	}
}

// heapProbeSource samples live heap after each shard load (loads run
// concurrently in workers, hence the atomic), the same probe the core
// memory-bound test uses, here feeding the JSON report's peak-heap
// column.
type heapProbeSource struct {
	inner core.ShardSource
	peak  atomic.Uint64
}

func (h *heapProbeSource) Info() (core.SourceInfo, error) { return h.inner.Info() }

func (h *heapProbeSource) Plan() ([]core.ShardRef, error) { return h.inner.Plan() }

func (h *heapProbeSource) Load(ref core.ShardRef) (*core.Shard, error) {
	sh, err := h.inner.Load(ref)
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		old := h.peak.Load()
		if ms.HeapAlloc <= old || h.peak.CompareAndSwap(old, ms.HeapAlloc) {
			break
		}
	}
	return sh, err
}

// streamBenchRecord is one row of BENCH_streaming.json.
type streamBenchRecord struct {
	Workers       int     `json:"workers"`
	NsPerOp       int64   `json:"ns_per_op"`
	RowsPerSec    float64 `json:"rows_per_sec"`
	SpeedupVsOne  float64 `json:"speedup_vs_workers_1"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	ShardsDone    int64   `json:"shards_done"`
	RowsDone      int64   `json:"rows_done"`
}

// streamBenchReport is the BENCH_streaming.json document.
type streamBenchReport struct {
	Scale      float64             `json:"scale"`
	Rows       int64               `json:"rows"`
	GOMAXPROCS int                 `json:"gomaxprocs"`
	Sweep      []streamBenchRecord `json:"sweep"`
}

// TestStreamingBenchJSON writes the worker sweep as JSON to the path in
// $BENCH_STREAMING_JSON (skipped when unset, so a plain `go test` run
// never benchmarks). `make bench-json` sets it to BENCH_streaming.json.
func TestStreamingBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_STREAMING_JSON")
	if out == "" {
		t.Skip("BENCH_STREAMING_JSON not set")
	}
	benchOnce.Do(func() {
		benchDS = dataset.Generate(dataset.Config{Seed: 42, Scale: benchScale})
		benchAn = core.NewAnalyzer(benchDS)
	})
	rows := streamRows()
	report := streamBenchReport{Scale: benchScale, Rows: rows, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	var baseNs int64
	for _, workers := range streamBenchWorkers {
		reg := obs.NewRegistry()
		probe := &heapProbeSource{inner: &core.DatasetSource{DS: benchDS}}
		start := time.Now()
		sa, err := core.StreamAnalyze(probe, core.StreamOptions{Workers: workers, Metrics: reg})
		if err != nil {
			t.Fatal(err)
		}
		if n := len(sa.Figures()); n == 0 {
			t.Fatal("no figures")
		}
		ns := time.Since(start).Nanoseconds()
		if workers == streamBenchWorkers[0] {
			baseNs = ns
		}
		report.Sweep = append(report.Sweep, streamBenchRecord{
			Workers:       workers,
			NsPerOp:       ns,
			RowsPerSec:    float64(rows) / (float64(ns) / 1e9),
			SpeedupVsOne:  float64(baseNs) / float64(ns),
			PeakHeapBytes: probe.peak.Load(),
			ShardsDone:    reg.Counter("stream.shards_done").Value(),
			RowsDone:      reg.Counter("stream.rows_done").Value(),
		})
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
