package faults

import "time"

// BackoffDelay is the shared capped-jittered retry policy of the
// degrading supervisors (the streaming shard pipeline, the campaign
// stage runner, the generation unit retries): the wait before retry
// attempt n of work item index. Growth is exponential in the attempt,
// capped at 20x the base, plus a jitter hashed from (index, attempt)
// rather than drawn from a shared RNG — so replays and different worker
// interleavings back off identically, preserving the subsystem-wide
// determinism contract.
func BackoffDelay(base time.Duration, index, attempt int) time.Duration {
	if base <= 0 {
		base = time.Millisecond
	}
	if attempt < 1 {
		attempt = 1
	}
	d := base << (attempt - 1)
	if ceil := base * 20; d > ceil || d <= 0 {
		d = ceil
	}
	h := uint64(index+1)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	h *= 0x94d049bb133111eb
	h ^= h >> 28
	return d + time.Duration(h%uint64(d/2+1))
}
