// Package faults is the deterministic fault-injection subsystem for
// the live-measurement path. The paper's field campaign (§3.3) is
// defined by failure — Starlink drops out at 15 s reallocation epochs,
// in tunnels and behind obstructions — and related measurement studies
// (Mohan et al.; Laniewski et al.) report sub-second to multi-second
// outages as the norm. This package turns those conditions into a
// seeded, replayable script: link blackout windows, component
// kill-and-restart windows, dial-failure windows, and per-datagram
// corruption/truncation probabilities.
//
// A Schedule is a pure value derived entirely from its Config (or spec
// string) and seed: the same seed always yields a bit-identical
// schedule (see Digest), so any outage scenario can be replayed
// exactly. Schedules plug into three layers:
//
//   - netem.Shape via Schedule.MaskRate / MaskLoss (or netem.Degraded),
//     for the wall-clock relays and pipes;
//   - the in-process emulator (internal/emu) via the same MaskRate —
//     emu.RateFunc shares the underlying func signature;
//   - the relays' datagram path via Injector, which netem consults per
//     packet (blackout drops, corruption, truncation, dial refusal).
//
// Wall-clock components (relays, servers) are killed and restored by
// Supervise, which executes the schedule's restart windows in real
// time.
package faults

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Window is one fault interval: the fault is active in the half-open
// range [Start, Start+Dur).
type Window struct {
	Start time.Duration
	Dur   time.Duration
}

// End returns the first instant after the window.
func (w Window) End() time.Duration { return w.Start + w.Dur }

// Contains reports whether t falls inside the window.
func (w Window) Contains(t time.Duration) bool { return t >= w.Start && t < w.End() }

// Schedule is one deterministic fault script. The zero value is a
// healthy world: no windows, no corruption.
type Schedule struct {
	// Seed derives every random decision tied to the schedule (window
	// placement in Generate, the Injector's per-datagram draws).
	Seed int64
	// Horizon is the scenario length the windows were drawn over; it
	// bounds density computations and is informational otherwise.
	Horizon time.Duration

	// Blackouts are link outage windows: zero capacity, total datagram
	// loss. Both directions of a link go down together, the way a
	// Starlink reallocation gap or tunnel kills the whole dish.
	Blackouts []Window
	// Restarts are component kill windows: the supervised component is
	// killed at Start and restored at End.
	Restarts []Window
	// DialFails are windows during which new connections/sessions are
	// refused even though the link is otherwise up.
	DialFails []Window

	// CorruptProb is the per-datagram probability of payload corruption.
	CorruptProb float64
	// TruncateProb is the per-datagram probability of truncation.
	TruncateProb float64
}

// activeAt reports whether any window in ws contains t. Windows are
// kept sorted by Start; len(ws) is small, so a linear scan is fine.
func activeAt(ws []Window, t time.Duration) bool {
	for _, w := range ws {
		if w.Start > t {
			return false
		}
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// BlackoutAt reports whether the link is blacked out at elapsed time t.
func (s *Schedule) BlackoutAt(t time.Duration) bool { return activeAt(s.Blackouts, t) }

// DialFailAt reports whether dials fail at elapsed time t (restart
// windows also refuse dials: the component is down).
func (s *Schedule) DialFailAt(t time.Duration) bool {
	return activeAt(s.DialFails, t) || activeAt(s.Restarts, t)
}

// ComponentDownAt reports whether a restart window has the component
// down at elapsed time t. Virtual sessions use it to approximate a
// restart as link downtime (a dead relay forwards nothing), since there
// is no process to kill inside the emulator.
func (s *Schedule) ComponentDownAt(t time.Duration) bool {
	return activeAt(s.Restarts, t)
}

// BlackoutFraction returns the share of the horizon spent in blackout —
// the scenario's outage density.
func (s *Schedule) BlackoutFraction() float64 {
	if s.Horizon <= 0 {
		return 0
	}
	var down time.Duration
	for _, w := range s.Blackouts {
		d := w.Dur
		if w.Start+d > s.Horizon {
			d = s.Horizon - w.Start
		}
		if d > 0 {
			down += d
		}
	}
	return float64(down) / float64(s.Horizon)
}

// MaskRate wraps a rate function so capacity is zero inside blackout
// windows. The signature matches both netem.Shape.RateMbps and
// emu.RateFunc, so one schedule degrades wall-clock relays and the
// discrete-event links alike.
func (s *Schedule) MaskRate(base func(time.Duration) float64) func(time.Duration) float64 {
	return func(t time.Duration) float64 {
		if s.BlackoutAt(t) {
			return 0
		}
		return base(t)
	}
}

// MaskLoss wraps a loss-probability function so datagrams are certainly
// lost inside blackout windows.
func (s *Schedule) MaskLoss(base func(time.Duration) float64) func(time.Duration) float64 {
	return func(t time.Duration) float64 {
		if s.BlackoutAt(t) {
			return 1
		}
		return base(t)
	}
}

// Digest hashes every field of the schedule; two schedules share a
// digest iff they are bit-identical. This is the replayability gate:
// Generate and ParseSpec must produce the same digest for the same
// inputs, run after run.
func (s *Schedule) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "seed=%d horizon=%v corrupt=%v truncate=%v\n",
		s.Seed, s.Horizon, s.CorruptProb, s.TruncateProb)
	for _, w := range s.Blackouts {
		fmt.Fprintf(h, "blackout %v %v\n", w.Start, w.Dur)
	}
	for _, w := range s.Restarts {
		fmt.Fprintf(h, "restart %v %v\n", w.Start, w.Dur)
	}
	for _, w := range s.DialFails {
		fmt.Fprintf(h, "dialfail %v %v\n", w.Start, w.Dur)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// String summarises the schedule for logs.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults(seed=%d", s.Seed)
	if s.Horizon > 0 {
		fmt.Fprintf(&b, ", horizon=%v", s.Horizon)
	}
	if n := len(s.Blackouts); n > 0 {
		fmt.Fprintf(&b, ", %d blackouts (%.1f%% down)", n, 100*s.BlackoutFraction())
	}
	if n := len(s.Restarts); n > 0 {
		fmt.Fprintf(&b, ", %d restarts", n)
	}
	if n := len(s.DialFails); n > 0 {
		fmt.Fprintf(&b, ", %d dial-fail windows", n)
	}
	if s.CorruptProb > 0 {
		fmt.Fprintf(&b, ", corrupt=%.3g", s.CorruptProb)
	}
	if s.TruncateProb > 0 {
		fmt.Fprintf(&b, ", truncate=%.3g", s.TruncateProb)
	}
	b.WriteString(")")
	return b.String()
}

// sortWindows orders windows by start time (stable for equal starts).
func sortWindows(ws []Window) {
	sort.SliceStable(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
}

// Config describes a randomly generated outage scenario. Every draw
// comes from the seed, so the same Config always generates the same
// Schedule.
type Config struct {
	Seed    int64
	Horizon time.Duration // scenario length; default 60 s

	// Blackouts is the number of outage windows to place; their
	// durations are exponential around BlackoutMean (default 800 ms,
	// the sub-second-to-seconds band the measurement studies report),
	// clamped to [50 ms, 4×mean].
	Blackouts    int
	BlackoutMean time.Duration

	// Restarts is the number of kill-and-restart windows; each keeps
	// the component down for RestartDown (default 2 s).
	Restarts    int
	RestartDown time.Duration

	// DialFails is the number of dial-refusal windows of DialFailMean
	// duration (default 1 s).
	DialFails    int
	DialFailMean time.Duration

	CorruptProb  float64
	TruncateProb float64
}

// Generate draws a schedule from the config's seed. Windows of each
// kind are placed uniformly over the horizon with the configured
// durations and sorted by start; the draw order is fixed (blackouts,
// restarts, dial-fails), so the output is bit-identical per seed.
func Generate(cfg Config) Schedule {
	if cfg.Horizon <= 0 {
		cfg.Horizon = 60 * time.Second
	}
	if cfg.BlackoutMean <= 0 {
		cfg.BlackoutMean = 800 * time.Millisecond
	}
	if cfg.RestartDown <= 0 {
		cfg.RestartDown = 2 * time.Second
	}
	if cfg.DialFailMean <= 0 {
		cfg.DialFailMean = time.Second
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := Schedule{
		Seed:         cfg.Seed,
		Horizon:      cfg.Horizon,
		CorruptProb:  cfg.CorruptProb,
		TruncateProb: cfg.TruncateProb,
	}
	place := func(n int, dur func() time.Duration) []Window {
		ws := make([]Window, 0, n)
		for i := 0; i < n; i++ {
			start := time.Duration(rng.Int63n(int64(cfg.Horizon)))
			ws = append(ws, Window{Start: start, Dur: dur()})
		}
		sortWindows(ws)
		return ws
	}
	expDur := func(mean time.Duration) func() time.Duration {
		return func() time.Duration {
			d := time.Duration(rng.ExpFloat64() * float64(mean))
			if d < 50*time.Millisecond {
				d = 50 * time.Millisecond
			}
			if max := 4 * mean; d > max {
				d = max
			}
			return d
		}
	}
	if cfg.Blackouts > 0 {
		s.Blackouts = place(cfg.Blackouts, expDur(cfg.BlackoutMean))
	}
	if cfg.Restarts > 0 {
		s.Restarts = place(cfg.Restarts, func() time.Duration { return cfg.RestartDown })
	}
	if cfg.DialFails > 0 {
		s.DialFails = place(cfg.DialFails, expDur(cfg.DialFailMean))
	}
	return s
}
