package faults

import (
	"bytes"
	"testing"
	"time"

	"satcell/internal/emu"
)

func TestWindowContains(t *testing.T) {
	w := Window{Start: time.Second, Dur: 500 * time.Millisecond}
	if w.End() != 1500*time.Millisecond {
		t.Fatalf("End = %v", w.End())
	}
	for _, c := range []struct {
		at   time.Duration
		want bool
	}{
		{999 * time.Millisecond, false},
		{time.Second, true},
		{1499 * time.Millisecond, true},
		{1500 * time.Millisecond, false}, // half-open
	} {
		if got := w.Contains(c.at); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.at, got, c.want)
		}
	}
}

// TestGenerateBitIdentical is the replayability gate: the same config
// must generate the same schedule, digest-for-digest, run after run,
// while different seeds must diverge.
func TestGenerateBitIdentical(t *testing.T) {
	cfg := Config{Seed: 42, Horizon: 30 * time.Second, Blackouts: 6, Restarts: 2, DialFails: 3,
		CorruptProb: 0.01, TruncateProb: 0.005}
	a := Generate(cfg)
	b := Generate(cfg)
	if a.Digest() != b.Digest() {
		t.Fatalf("same config, different schedules:\n%s\n%s", a.String(), b.String())
	}
	cfg.Seed = 43
	if c := Generate(cfg); c.Digest() == a.Digest() {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateWindowBounds(t *testing.T) {
	s := Generate(Config{Seed: 7, Horizon: 10 * time.Second, Blackouts: 50,
		BlackoutMean: 400 * time.Millisecond})
	if len(s.Blackouts) != 50 {
		t.Fatalf("got %d windows", len(s.Blackouts))
	}
	var prev time.Duration
	for _, w := range s.Blackouts {
		if w.Start < 0 || w.Start >= 10*time.Second {
			t.Fatalf("window start %v outside horizon", w.Start)
		}
		if w.Dur < 50*time.Millisecond || w.Dur > 4*400*time.Millisecond {
			t.Fatalf("window duration %v outside clamp", w.Dur)
		}
		if w.Start < prev {
			t.Fatal("windows not sorted by start")
		}
		prev = w.Start
	}
	if s.BlackoutFraction() <= 0 {
		t.Fatal("blackout fraction should be positive")
	}
}

func TestScheduleQueries(t *testing.T) {
	s := Schedule{
		Horizon:   10 * time.Second,
		Blackouts: []Window{{Start: time.Second, Dur: time.Second}},
		Restarts:  []Window{{Start: 4 * time.Second, Dur: time.Second}},
		DialFails: []Window{{Start: 7 * time.Second, Dur: time.Second}},
	}
	if !s.BlackoutAt(1500 * time.Millisecond) {
		t.Fatal("inside blackout not detected")
	}
	if s.BlackoutAt(3 * time.Second) {
		t.Fatal("false blackout")
	}
	// Dial fails both in explicit windows and while restarting.
	if !s.DialFailAt(7500*time.Millisecond) || !s.DialFailAt(4500*time.Millisecond) {
		t.Fatal("dial-fail windows not honoured")
	}
	if s.DialFailAt(2 * time.Second) {
		t.Fatal("false dial failure")
	}
	if f := s.BlackoutFraction(); f != 0.1 {
		t.Fatalf("BlackoutFraction = %v, want 0.1", f)
	}
}

func TestMaskRateAndLoss(t *testing.T) {
	s := Schedule{Blackouts: []Window{{Start: time.Second, Dur: time.Second}}}
	rate := s.MaskRate(func(time.Duration) float64 { return 20 })
	loss := s.MaskLoss(func(time.Duration) float64 { return 0.02 })
	if rate(500*time.Millisecond) != 20 || loss(500*time.Millisecond) != 0.02 {
		t.Fatal("mask altered healthy period")
	}
	if rate(1500*time.Millisecond) != 0 || loss(1500*time.Millisecond) != 1 {
		t.Fatal("mask did not apply blackout")
	}
}

func TestParseSpecExplicit(t *testing.T) {
	s, err := ParseSpec("blackout@1s+500ms; restart@3s+2s; dialfail@6s+1s; corrupt=0.01; truncate=0.02", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Blackouts) != 1 || s.Blackouts[0] != (Window{Start: time.Second, Dur: 500 * time.Millisecond}) {
		t.Fatalf("blackouts = %+v", s.Blackouts)
	}
	if len(s.Restarts) != 1 || len(s.DialFails) != 1 {
		t.Fatalf("restarts/dialfails = %+v / %+v", s.Restarts, s.DialFails)
	}
	if s.CorruptProb != 0.01 || s.TruncateProb != 0.02 {
		t.Fatalf("probs = %v / %v", s.CorruptProb, s.TruncateProb)
	}
	// Horizon defaults to the last window end (dialfail ends at 7s).
	if s.Horizon != 7*time.Second {
		t.Fatalf("Horizon = %v, want 7s", s.Horizon)
	}
}

func TestParseSpecAutoDeterministic(t *testing.T) {
	a, err := ParseSpec("auto=5/20s; blackout@1s+200ms", 99)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParseSpec("auto=5/20s; blackout@1s+200ms", 99)
	if a.Digest() != b.Digest() {
		t.Fatal("same (spec, seed) parsed to different schedules")
	}
	if len(a.Blackouts) != 6 {
		t.Fatalf("auto + explicit = %d windows, want 6", len(a.Blackouts))
	}
	if a.Horizon != 20*time.Second {
		t.Fatalf("Horizon = %v, want 20s", a.Horizon)
	}
	c, _ := ParseSpec("auto=5/20s; blackout@1s+200ms", 100)
	if c.Digest() == a.Digest() {
		t.Fatal("different seeds parsed to identical schedules")
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"blackout@1s",      // missing +DUR
		"blackout@-1s+1s",  // negative start
		"corrupt=1.5",      // prob outside [0,1]
		"corrupt=x",        // not a number
		"auto=5",           // missing horizon
		"auto=0/10s",       // zero count
		"meteor@1s+1s",     // unknown kind
		"restart@1s+junk",  // bad duration
		"dialfail@junk+1s", // bad start
	} {
		if _, err := ParseSpec(spec, 1); err == nil {
			t.Errorf("spec %q: want error", spec)
		}
	}
	if s, err := ParseSpec("  ;; ", 1); err != nil || s.Digest() != (&Schedule{Seed: 1}).Digest() {
		t.Fatal("empty spec must parse to the healthy schedule")
	}
}

// TestInjectorDatagramDeterministic feeds two injectors built from the
// same schedule an identical packet sequence: the mangled outputs and
// the fault counters must match byte for byte.
func TestInjectorDatagramDeterministic(t *testing.T) {
	s := Schedule{Seed: 21, CorruptProb: 0.3, TruncateProb: 0.3}
	a, b := NewInjector(s), NewInjector(s)
	for i := 0; i < 500; i++ {
		pkt := make([]byte, 64)
		for j := range pkt {
			pkt[j] = byte(i + j)
		}
		cp := append([]byte(nil), pkt...)
		outA, dropA := a.Datagram(0, pkt)
		outB, dropB := b.Datagram(0, cp)
		if dropA != dropB || !bytes.Equal(outA, outB) {
			t.Fatalf("packet %d diverged: drop %v/%v len %d/%d", i, dropA, dropB, len(outA), len(outB))
		}
	}
	sa, sb := a.Stats(), b.Stats()
	if sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	if sa.Corrupted == 0 || sa.Truncated == 0 {
		t.Fatalf("faults never fired: %+v", sa)
	}
}

func TestInjectorNilTolerant(t *testing.T) {
	var in *Injector
	if in.LinkDown(0) || in.DialFails(0) {
		t.Fatal("nil injector reported faults")
	}
	pkt := []byte{1, 2, 3}
	out, drop := in.Datagram(0, pkt)
	if drop || !bytes.Equal(out, pkt) {
		t.Fatal("nil injector touched the datagram")
	}
	if in.Stats() != (Stats{}) {
		t.Fatal("nil injector has stats")
	}
}

func TestInjectorCountsBlackoutAndDials(t *testing.T) {
	in := NewInjector(Schedule{
		Blackouts: []Window{{Start: 0, Dur: time.Second}},
		DialFails: []Window{{Start: 0, Dur: time.Second}},
	})
	if !in.LinkDown(100*time.Millisecond) || !in.DialFails(100*time.Millisecond) {
		t.Fatal("faults not active inside windows")
	}
	if in.LinkDown(2*time.Second) || in.DialFails(2*time.Second) {
		t.Fatal("faults active outside windows")
	}
	st := in.Stats()
	if st.BlackoutDrops != 1 || st.DialsRefused != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSupervisorRunsWindows(t *testing.T) {
	var mu []string
	var lock = make(chan struct{}, 1)
	lock <- struct{}{}
	record := func(s string) {
		<-lock
		mu = append(mu, s)
		lock <- struct{}{}
	}
	sup := Supervise(
		[]Window{{Start: 20 * time.Millisecond, Dur: 30 * time.Millisecond},
			{Start: 100 * time.Millisecond, Dur: 20 * time.Millisecond}},
		func() { record("kill") }, func() { record("restore") })
	time.Sleep(200 * time.Millisecond)
	sup.Stop()
	kills, restores := sup.Counts()
	if kills != 2 || restores != 2 {
		t.Fatalf("kills/restores = %d/%d, want 2/2", kills, restores)
	}
	<-lock
	want := []string{"kill", "restore", "kill", "restore"}
	if len(mu) != 4 {
		t.Fatalf("events = %v", mu)
	}
	for i := range want {
		if mu[i] != want[i] {
			t.Fatalf("events = %v, want %v", mu, want)
		}
	}
}

// TestSupervisorStopMidWindowRestores stops the supervisor while the
// component is down: restore must still run, so nothing is left dead.
func TestSupervisorStopMidWindowRestores(t *testing.T) {
	killed := make(chan struct{})
	restored := make(chan struct{})
	sup := Supervise(
		[]Window{{Start: 10 * time.Millisecond, Dur: 10 * time.Second}},
		func() { close(killed) }, func() { close(restored) })
	<-killed
	sup.Stop()
	select {
	case <-restored:
	default:
		t.Fatal("Stop left the component dead mid-window")
	}
	if kills, restores := sup.Counts(); kills != 1 || restores != 1 {
		t.Fatalf("kills/restores = %d/%d", kills, restores)
	}
	sup.Stop() // idempotent
}

// TestEmuLinkBlackout drives the in-process emulator with a masked rate
// function: packets sent during a blackout window are held (the link
// polls for capacity) and delivered only after the window passes —
// virtual time, no wall-clock sleeping, fully deterministic.
func TestEmuLinkBlackout(t *testing.T) {
	s := Schedule{Blackouts: []Window{{Start: 100 * time.Millisecond, Dur: 200 * time.Millisecond}}}
	eng := emu.NewEngine()
	var deliveredAt []time.Duration
	link := emu.NewLink(eng, emu.LinkConfig{
		Rate: emu.RateFunc(s.MaskRate(emu.ConstantRate(10))),
	}, func(p *emu.Packet) {
		deliveredAt = append(deliveredAt, eng.Now())
	})
	// One packet before the window, one during.
	eng.Schedule(10*time.Millisecond, func() { link.Send(&emu.Packet{Seq: 0, Size: 1500}) })
	eng.Schedule(150*time.Millisecond, func() { link.Send(&emu.Packet{Seq: 1, Size: 1500}) })
	eng.Run()

	if len(deliveredAt) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(deliveredAt))
	}
	// Packet 0: 1500 B at 10 Mbps is 1.2 ms — well before the blackout.
	if deliveredAt[0] > 100*time.Millisecond {
		t.Fatalf("pre-blackout packet delivered at %v", deliveredAt[0])
	}
	// Packet 1 entered a dead link and must wait out the window.
	if deliveredAt[1] < 300*time.Millisecond {
		t.Fatalf("blackout packet delivered at %v, before the window ended", deliveredAt[1])
	}

	// Replay: the identical virtual-time run delivers at identical times.
	eng2 := emu.NewEngine()
	var replay []time.Duration
	link2 := emu.NewLink(eng2, emu.LinkConfig{
		Rate: emu.RateFunc(s.MaskRate(emu.ConstantRate(10))),
	}, func(p *emu.Packet) { replay = append(replay, eng2.Now()) })
	eng2.Schedule(10*time.Millisecond, func() { link2.Send(&emu.Packet{Seq: 0, Size: 1500}) })
	eng2.Schedule(150*time.Millisecond, func() { link2.Send(&emu.Packet{Seq: 1, Size: 1500}) })
	eng2.Run()
	if len(replay) != 2 || replay[0] != deliveredAt[0] || replay[1] != deliveredAt[1] {
		t.Fatalf("replay diverged: %v vs %v", replay, deliveredAt)
	}
}
