// Chaos suite: the measurement tools run against live relays while the
// fault subsystem blacks out links, kills and restarts relays on their
// own ports, refuses dials and mangles datagrams — the failure modes a
// drive test meets in tunnels and at reallocation epochs. Every test
// asserts graceful degradation (partial results, never a wedged run)
// and checks for goroutine leaks. Run via `make chaos` or
// `go test -race -run Chaos ./internal/faults/`.
package faults

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"satcell/internal/meas/iperf"
	"satcell/internal/meas/udpping"
	"satcell/internal/netem"
	"satcell/internal/testutil"
)

// chaosSettle waits for the goroutine count to return to (near) the
// baseline and fails the test on a leak.
func chaosSettle(t *testing.T, baseline int) {
	t.Helper()
	var n int
	for i := 0; i < 150; i++ {
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", baseline, n)
}

// TestChaosIperfTCPBlackouts runs a TCP download through a relay whose
// link blacks out twice mid-test. TCP stalls and resumes (the kernel
// retransmits under the relay), so the run must finish with a usable
// partial or full result — never an error, never a hang.
func TestChaosIperfTCPBlackouts(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := iperf.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	in := NewInjector(Schedule{
		Seed: 1,
		Blackouts: []Window{
			{Start: 300 * time.Millisecond, Dur: 250 * time.Millisecond},
			{Start: 1100 * time.Millisecond, Dur: 250 * time.Millisecond},
		},
	})
	relay, err := netem.NewTCPRelayFaulty("127.0.0.1:0", srv.Addr().String(),
		netem.ConstantShape(40, 2*time.Millisecond, 0),
		netem.ConstantShape(40, 2*time.Millisecond, 0), in)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	res, err := iperf.Run(context.Background(), iperf.ClientConfig{
		Addr: relay.Addr().String(), Proto: iperf.TCP, Dir: iperf.Download,
		Duration: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("blackouts must degrade, not error: %v", err)
	}
	if res.Outcome == iperf.Failed {
		t.Fatalf("Outcome = %v with a live link between windows", res.Outcome)
	}
	if res.TotalMbps <= 0 {
		t.Fatal("no goodput measured between blackouts")
	}
	if in.Stats().BlackoutDrops == 0 {
		t.Fatal("injector never saw the blackout windows")
	}

	relay.Close()
	srv.Close()
	testutil.SettleGoroutines(t, baseline)
}

// TestChaosIperfUDPBlackouts runs a UDP download through a relay that
// swallows datagrams for ~25% of the test: the measured loss must show
// the outage, and the result must still carry the surviving seconds.
func TestChaosIperfUDPBlackouts(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := iperf.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	in := NewInjector(Schedule{
		Seed:      2,
		Horizon:   2 * time.Second,
		Blackouts: []Window{{Start: 700 * time.Millisecond, Dur: 500 * time.Millisecond}},
	})
	relay, err := netem.NewUDPRelayFaulty("127.0.0.1:0", srv.Addr().String(),
		netem.ConstantShape(200, time.Millisecond, 0),
		netem.ConstantShape(200, time.Millisecond, 0), 3, in)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	res, err := iperf.Run(context.Background(), iperf.ClientConfig{
		Addr: relay.Addr().String(), Proto: iperf.UDP, Dir: iperf.Download,
		Duration: 2 * time.Second, RateMbps: 10,
	})
	if err != nil {
		t.Fatalf("blackout must degrade, not error: %v", err)
	}
	if res.Received == 0 {
		t.Fatal("nothing received outside the blackout window")
	}
	if res.LossRate <= 0.05 {
		t.Fatalf("LossRate = %v, a 25%% blackout must show up as loss", res.LossRate)
	}
	if res.LossRate >= 0.9 {
		t.Fatalf("LossRate = %v, the link was up 75%% of the test", res.LossRate)
	}
	if in.Stats().BlackoutDrops == 0 {
		t.Fatal("injector never dropped a datagram")
	}

	relay.Close()
	srv.Close()
	testutil.SettleGoroutines(t, baseline)
}

// TestChaosUDPPingRelayRestart kills the relay mid-ping and restarts it
// on the same port via Supervise: probes during the outage are lost,
// probes after the restore answer again, and the run returns a partial
// Result with loss strictly between 0 and 1.
func TestChaosUDPPingRelayRestart(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := udpping.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	relay, err := netem.NewUDPRelay("127.0.0.1:0", srv.Addr().String(),
		netem.ConstantShape(100, time.Millisecond, 0),
		netem.ConstantShape(100, time.Millisecond, 0), 4)
	if err != nil {
		t.Fatal(err)
	}
	addr := relay.Addr().String()

	var mu sync.Mutex // guards relay across supervisor + test goroutine
	sup := Supervise(
		[]Window{{Start: 400 * time.Millisecond, Dur: 500 * time.Millisecond}},
		func() {
			mu.Lock()
			relay.Close()
			mu.Unlock()
		},
		func() {
			r2, err := netem.NewUDPRelay(addr, srv.Addr().String(),
				netem.ConstantShape(100, time.Millisecond, 0),
				netem.ConstantShape(100, time.Millisecond, 0), 4)
			if err != nil {
				return // port momentarily busy: probes stay lost
			}
			mu.Lock()
			relay = r2
			mu.Unlock()
		})

	res, err := udpping.Run(context.Background(), udpping.Config{
		Addr: addr, Count: 16, Interval: 100 * time.Millisecond,
		Timeout: 500 * time.Millisecond,
	})
	sup.Stop()
	if err != nil {
		t.Fatalf("relay restart must degrade, not error: %v", err)
	}
	if kills, restores := sup.Counts(); kills != 1 || restores != 1 {
		t.Fatalf("kills/restores = %d/%d", kills, restores)
	}
	if res.Sent != 16 {
		t.Fatalf("Sent = %d, want 16", res.Sent)
	}
	if res.Received == 0 {
		t.Fatal("probes outside the outage should have answered")
	}
	if lr := res.LossRate(); lr <= 0 || lr >= 1 {
		t.Fatalf("LossRate = %v, want partial loss from the restart window", lr)
	}

	mu.Lock()
	relay.Close()
	mu.Unlock()
	srv.Close()
	testutil.SettleGoroutines(t, baseline)
}

// TestChaosIperfTCPReconnectAfterRestart kills the TCP relay, then
// restores it on the same port while a client with dial retries keeps
// attempting: the jittered backoff must carry the test across the
// outage and produce data once the relay is back.
func TestChaosIperfTCPReconnectAfterRestart(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := iperf.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	relay, err := netem.NewTCPRelay("127.0.0.1:0", srv.Addr().String(),
		netem.ConstantShape(40, time.Millisecond, 0),
		netem.ConstantShape(40, time.Millisecond, 0))
	if err != nil {
		t.Fatal(err)
	}
	addr := relay.Addr().String()

	killed := make(chan struct{})
	var mu sync.Mutex
	sup := Supervise(
		[]Window{{Start: 0, Dur: 500 * time.Millisecond}},
		func() {
			mu.Lock()
			relay.Close()
			mu.Unlock()
			close(killed)
		},
		func() {
			r2, err := netem.NewTCPRelay(addr, srv.Addr().String(),
				netem.ConstantShape(40, time.Millisecond, 0),
				netem.ConstantShape(40, time.Millisecond, 0))
			if err != nil {
				return
			}
			mu.Lock()
			relay = r2
			mu.Unlock()
		})
	defer sup.Stop()

	<-killed // start dialing only once the relay is certainly down
	res, err := iperf.Run(context.Background(), iperf.ClientConfig{
		Addr: addr, Proto: iperf.TCP, Dir: iperf.Download,
		Duration:    500 * time.Millisecond,
		DialRetries: 10, RetryBackoff: 100 * time.Millisecond, Seed: 6,
	})
	if err != nil {
		t.Fatalf("retries should have outlasted the restart: %v", err)
	}
	if res.TotalMbps <= 0 {
		t.Fatal("no data after reconnect")
	}

	sup.Stop()
	mu.Lock()
	relay.Close()
	mu.Unlock()
	srv.Close()
	testutil.SettleGoroutines(t, baseline)
}

// TestChaosDialFailWindowRefusesSessions pings through a UDP relay that
// refuses new sessions for the first 300 ms: the early probes die, the
// session established after the window answers the rest.
func TestChaosDialFailWindowRefusesSessions(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := udpping.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	in := NewInjector(Schedule{
		Seed:      7,
		DialFails: []Window{{Start: 0, Dur: 300 * time.Millisecond}},
	})
	relay, err := netem.NewUDPRelayFaulty("127.0.0.1:0", srv.Addr().String(),
		netem.ConstantShape(100, time.Millisecond, 0),
		netem.ConstantShape(100, time.Millisecond, 0), 8, in)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	res, err := udpping.Run(context.Background(), udpping.Config{
		Addr: relay.Addr().String(), Count: 10, Interval: 80 * time.Millisecond,
		Timeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatal("post-window probes should have a session")
	}
	if res.Received == res.Sent {
		t.Fatal("dial-fail window should have cost the early probes")
	}
	if in.Stats().DialsRefused == 0 {
		t.Fatal("injector never refused a session")
	}

	relay.Close()
	srv.Close()
	testutil.SettleGoroutines(t, baseline)
}

// TestChaosDatagramCorruptionPath runs pings through a relay with heavy
// corruption/truncation: mangled probes are discarded by the tools'
// magic checks (loss, not crashes), intact ones still answer, and the
// injector's counters show the datagram path was exercised end to end.
func TestChaosDatagramCorruptionPath(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := udpping.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	in := NewInjector(Schedule{Seed: 8, CorruptProb: 0.4, TruncateProb: 0.2})
	relay, err := netem.NewUDPRelayFaulty("127.0.0.1:0", srv.Addr().String(),
		netem.ConstantShape(100, time.Millisecond, 0),
		netem.ConstantShape(100, time.Millisecond, 0), 9, in)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	res, err := udpping.Run(context.Background(), udpping.Config{
		Addr: relay.Addr().String(), Count: 20, Interval: 20 * time.Millisecond,
		Timeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatal("some probes should survive 40% corruption")
	}
	st := in.Stats()
	if st.Corrupted == 0 && st.Truncated == 0 {
		t.Fatalf("datagram faults never fired: %+v", st)
	}

	relay.Close()
	srv.Close()
	testutil.SettleGoroutines(t, baseline)
}

// TestChaosUDPUploadThroughBlackout drives a UDP upload while the link
// blacks out mid-test: write errors are tolerated, the stats exchange
// retries once the window passes, and the loss reflects the outage.
func TestChaosUDPUploadThroughBlackout(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := iperf.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	in := NewInjector(Schedule{
		Seed:      10,
		Blackouts: []Window{{Start: 400 * time.Millisecond, Dur: 400 * time.Millisecond}},
	})
	relay, err := netem.NewUDPRelayFaulty("127.0.0.1:0", srv.Addr().String(),
		netem.ConstantShape(200, time.Millisecond, 0),
		netem.ConstantShape(200, time.Millisecond, 0), 11, in)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	res, err := iperf.Run(context.Background(), iperf.ClientConfig{
		Addr: relay.Addr().String(), Proto: iperf.UDP, Dir: iperf.Upload,
		Duration: 1200 * time.Millisecond, RateMbps: 10,
	})
	if err != nil {
		t.Fatalf("blackout must degrade, not error: %v", err)
	}
	if res.Outcome == iperf.Failed {
		t.Fatal("stats exchange should recover after the window")
	}
	if res.Received == 0 || res.LossRate <= 0 {
		t.Fatalf("received=%d loss=%v: the outage should cost datagrams but not all",
			res.Received, res.LossRate)
	}

	relay.Close()
	srv.Close()
	testutil.SettleGoroutines(t, baseline)
}
