package faults

import (
	"sync"
	"testing"
	"time"
)

func TestIOScheduleDigestReplayGate(t *testing.T) {
	spec := "read-err:drive002_*:x1;bitflip:*.csv:@0.001;stall:*:+5ms"
	a, err := ParseIOSpec(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseIOSpec(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Error("same (spec, seed) produced different digests")
	}
	c, err := ParseIOSpec(spec, 43)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == c.Digest() {
		t.Error("different seeds share a digest")
	}
	d, err := ParseIOSpec("read-err:drive002_*:x2;bitflip:*.csv:@0.001;stall:*:+5ms", 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == d.Digest() {
		t.Error("different rule counts share a digest")
	}
}

func TestParseIOSpec(t *testing.T) {
	s, err := ParseIOSpec("read-err:drive00*:x3;enospc:tests.csv;short-write:*:@0.5;stall:*.csv:+250ms", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rules) != 4 {
		t.Fatalf("%d rules, want 4", len(s.Rules))
	}
	want := []IORule{
		{Kind: IOReadErr, Path: "drive00*", Count: 3},
		{Kind: IOWriteErr, Path: "tests.csv"},
		{Kind: IOShortWrite, Path: "*", Prob: 0.5},
		{Kind: IOStall, Path: "*.csv", Stall: 250 * time.Millisecond},
	}
	for i, r := range s.Rules {
		if r != want[i] {
			t.Errorf("rule %d = %+v, want %+v", i, r, want[i])
		}
	}

	for _, bad := range []string{
		"read-err",                // no glob
		"melt:*",                  // unknown kind
		"read-err:[",              // malformed glob
		"read-err:*:x0",           // zero count
		"read-err:*:xq",           // non-numeric count
		"read-err:*:@2",           // probability out of range
		"stall:*",                 // stall without duration
		"stall:*:+bogus",          // malformed duration
		"read-err:*:frobnicate=1", // unknown modifier
	} {
		if _, err := ParseIOSpec(bad, 7); err == nil {
			t.Errorf("ParseIOSpec(%q) accepted", bad)
		}
	}

	empty, err := ParseIOSpec("  ;; ", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Rules) != 0 {
		t.Errorf("blank spec parsed %d rules", len(empty.Rules))
	}
}

// TestIOInjectorCountLimitedIsPerFile locks the transient-fault
// contract: an xN rule fails each matching file's first N matching
// operations, independently per file, then stays quiet — which is what
// makes a retry (re-reading the file from scratch) succeed.
func TestIOInjectorCountLimitedIsPerFile(t *testing.T) {
	sched, err := ParseIOSpec("read-err:drive*:x2", 1)
	if err != nil {
		t.Fatal(err)
	}
	j := NewIOInjector(sched)
	for _, file := range []string{"drive000_I5_ATT.csv", "drive001_I5_ATT.csv"} {
		for op := 0; op < 5; op++ {
			d := j.Decide(IOOpRead, file)
			if want := op < 2; (d.Kind == IOReadErr) != want {
				t.Errorf("%s op %d: fired=%v, want %v", file, op, d.Kind == IOReadErr, want)
			}
		}
	}
	if d := j.Decide(IOOpRead, "tests.csv"); d.Kind != IONone {
		t.Errorf("non-matching file drew %v", d.Kind)
	}
	if got := j.Stats().ReadErrs; got != 4 {
		t.Errorf("ReadErrs = %d, want 4", got)
	}
}

// TestIOInjectorInterleavingIndependence runs the same per-file
// operation sequences through two injectors with the file order
// interleaved differently; every (file, op index) decision must agree.
// This is the property that makes disk-fault chaos runs reproducible
// across worker counts.
func TestIOInjectorInterleavingIndependence(t *testing.T) {
	sched, err := ParseIOSpec("bitflip:*:@0.3;read-err:drive0*:@0.2", 99)
	if err != nil {
		t.Fatal(err)
	}
	files := []string{"drive000_a.csv", "drive001_b.csv", "tests.csv"}
	const ops = 64

	decide := func(order []int) map[string][]IODecision {
		j := NewIOInjector(sched)
		out := make(map[string][]IODecision)
		for op := 0; op < ops; op++ {
			for _, fi := range order {
				f := files[fi]
				out[f] = append(out[f], j.Decide(IOOpRead, f))
			}
		}
		return out
	}
	a := decide([]int{0, 1, 2})
	b := decide([]int{2, 1, 0})
	fired := 0
	for _, f := range files {
		for i := range a[f] {
			if a[f][i] != b[f][i] {
				t.Fatalf("%s op %d: %+v vs %+v under different interleavings", f, i, a[f][i], b[f][i])
			}
			if a[f][i].Kind != IONone {
				fired++
			}
		}
	}
	if fired == 0 {
		t.Error("probabilistic rules never fired in 192 draws")
	}
}

// TestIOInjectorConcurrentUse hammers one injector from several
// goroutines (the streaming workers' usage); the race detector checks
// the locking, the counts check no decision was lost.
func TestIOInjectorConcurrentUse(t *testing.T) {
	sched, err := ParseIOSpec("read-err:*:x10", 3)
	if err != nil {
		t.Fatal(err)
	}
	j := NewIOInjector(sched)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			file := []string{"a.csv", "b.csv", "c.csv", "d.csv"}[w%4]
			for op := 0; op < 50; op++ {
				j.Decide(IOOpRead, file)
			}
		}()
	}
	wg.Wait()
	// 4 files, x10 each: exactly 40 fires across 400 decisions.
	if got := j.Stats().ReadErrs; got != 40 {
		t.Errorf("ReadErrs = %d, want 40", got)
	}
}

func TestIOKindOpRouting(t *testing.T) {
	j := NewIOInjector(IOSchedule{Rules: []IORule{{Kind: IOWriteErr, Path: "*"}}})
	if d := j.Decide(IOOpRead, "x.csv"); d.Kind != IONone {
		t.Errorf("write rule fired on a read: %v", d.Kind)
	}
	if d := j.Decide(IOOpWrite, "x.csv"); d.Kind != IOWriteErr {
		t.Errorf("write rule did not fire on a write: %v", d.Kind)
	}
}
