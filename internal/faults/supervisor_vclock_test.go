package faults

import (
	"fmt"
	"testing"
	"time"

	"satcell/internal/vclock"
)

// Under a SimClock the supervisor schedules kill/restore as events, so
// every firing lands on its exact virtual instant — no wall tolerance.
func TestSupervisorVirtualClockExactInstants(t *testing.T) {
	c := vclock.NewSim()
	var events []string
	log := func(tag string) {
		events = append(events, fmt.Sprintf("%s@%v", tag, c.Elapsed()))
	}
	sup := SuperviseClock(
		[]Window{
			{Start: 10 * time.Second, Dur: time.Second},
			{Start: 2 * time.Second, Dur: 3 * time.Second}, // sorted by the supervisor
		},
		func() { log("kill") }, func() { log("restore") }, c)
	c.RunUntil(20 * time.Second)
	sup.Stop()
	want := []string{"kill@2s", "restore@5s", "kill@10s", "restore@11s"}
	if fmt.Sprint(events) != fmt.Sprint(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	if kills, restores := sup.Counts(); kills != 2 || restores != 2 {
		t.Fatalf("kills/restores = %d/%d", kills, restores)
	}
}

func TestSupervisorVirtualClockStopMidWindowRestores(t *testing.T) {
	c := vclock.NewSim()
	kills, restores := 0, 0
	sup := SuperviseClock(
		[]Window{{Start: time.Second, Dur: time.Hour}},
		func() { kills++ }, func() { restores++ }, c)
	c.RunUntil(2 * time.Second) // inside the window: component is down
	sup.Stop()
	if kills != 1 || restores != 1 {
		t.Fatalf("kills/restores = %d/%d, want 1/1 (restored on Stop)", kills, restores)
	}
	c.RunUntil(2 * time.Hour) // cancelled restore event must not fire
	if restores != 1 {
		t.Fatalf("restore fired after Stop: %d", restores)
	}
	sup.Stop() // idempotent
}
