package faults

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"path"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file extends the fault subsystem from the network path to the
// disk path. PR 2 made the live tools survive a scripted network
// (blackouts, corruption, dial refusals); the streaming analyzer reads
// campaigns from disk, where the equivalent failure modes are read
// errors, short reads, bit rot, ENOSPC, torn renames and latency
// stalls. An IOSchedule scripts those per file and per operation, with
// the same replayability contract as Schedule: a schedule is a pure
// value, and Digest gates bit-identical replay.
//
// Determinism under concurrency is the hard requirement here: the
// streaming pipeline scans shards from several workers, so decisions
// must not depend on global operation order. Every decision therefore
// derives from (seed, rule, file name, per-file operation index) — a
// file's fault script is fixed no matter which worker touches it or
// when, and retries of the same file continue its op count (which is
// what makes "fail the first N reads" transient faults meaningful).

// IOFaultKind classifies one injectable disk fault.
type IOFaultKind int

const (
	// IONone is the absence of a fault.
	IONone IOFaultKind = iota
	// IOReadErr fails a Read call with an injected I/O error.
	IOReadErr
	// IOShortRead truncates a Read mid-buffer; the file reads as EOF
	// from then on, emulating a file cut short under the reader.
	IOShortRead
	// IOBitFlip flips one bit of a Read's returned buffer (disk bit rot
	// surviving into page cache).
	IOBitFlip
	// IOWriteErr fails a Write call with ENOSPC.
	IOWriteErr
	// IOShortWrite writes only half the buffer, then fails with ENOSPC.
	IOShortWrite
	// IOTornRename truncates the source file to half its size before a
	// (successful) rename — the on-disk artifact of a crash landing
	// between a partial flush and the rename.
	IOTornRename
	// IOStall delays a Read by the rule's Stall duration (a seeking
	// disk, a hiccuping network filesystem).
	IOStall
	// IOWriteStall delays a Write by the rule's Stall duration — the
	// write-path sibling of IOStall (a congested disk, a throttled
	// network filesystem). The campaign stall-watchdog chaos suite uses
	// it to wedge a shard export deterministically.
	IOWriteStall
)

var ioKindNames = map[IOFaultKind]string{
	IONone: "none", IOReadErr: "read-err", IOShortRead: "short-read",
	IOBitFlip: "bitflip", IOWriteErr: "enospc", IOShortWrite: "short-write",
	IOTornRename: "torn-rename", IOStall: "stall", IOWriteStall: "write-stall",
}

// String names the kind the way ParseIOSpec spells it.
func (k IOFaultKind) String() string {
	if s, ok := ioKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("IOFaultKind(%d)", int(k))
}

// IOOp classifies the operation an injector is consulted about.
type IOOp int

const (
	// IOOpRead is one Read call on an open file.
	IOOpRead IOOp = iota
	// IOOpWrite is one Write call on an open file.
	IOOpWrite
	// IOOpRename is one rename of a finished temp file into place.
	IOOpRename
)

// op returns the operation class a fault kind fires on.
func (k IOFaultKind) op() IOOp {
	switch k {
	case IOWriteErr, IOShortWrite, IOWriteStall:
		return IOOpWrite
	case IOTornRename:
		return IOOpRename
	default:
		return IOOpRead
	}
}

// IORule scripts one fault: fire Kind on operations against files whose
// base name matches Path (path.Match glob; empty matches everything).
type IORule struct {
	Kind IOFaultKind
	// Path is a glob matched against the file's base name.
	Path string
	// Count fires the fault on each matching file's first Count
	// matching operations; 0 fires on every one (a permanent fault).
	// Count-limited faults are the transient half of the taxonomy: a
	// retry that re-reads the file gets past them.
	Count int
	// Prob, when > 0, fires the fault on each matching operation with
	// this probability instead of unconditionally. Draws are seeded
	// hashes of (seed, rule, file, op index), so they replay exactly
	// and are independent of worker interleaving.
	Prob float64
	// Stall is the injected delay for IOStall rules.
	Stall time.Duration
}

// IOSchedule is one deterministic disk-fault script: a seed plus an
// ordered rule list. The zero value is a healthy disk.
type IOSchedule struct {
	Seed  int64
	Rules []IORule
}

// Digest hashes every field of the schedule; two schedules share a
// digest iff they are bit-identical. Same replay gate as
// Schedule.Digest: a logged digest pins the exact fault scenario a run
// saw.
func (s *IOSchedule) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "ioseed=%d\n", s.Seed)
	for _, r := range s.Rules {
		fmt.Fprintf(h, "rule %s path=%q count=%d prob=%v stall=%v\n",
			r.Kind, r.Path, r.Count, r.Prob, r.Stall)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// String summarises the schedule for logs.
func (s *IOSchedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "iofaults(seed=%d", s.Seed)
	for _, r := range s.Rules {
		fmt.Fprintf(&b, ", %s:%s", r.Kind, r.Path)
		if r.Count > 0 {
			fmt.Fprintf(&b, "x%d", r.Count)
		}
		if r.Prob > 0 {
			fmt.Fprintf(&b, "@%.3g", r.Prob)
		}
		if r.Stall > 0 {
			fmt.Fprintf(&b, "+%v", r.Stall)
		}
	}
	b.WriteString(")")
	return b.String()
}

// ParseIOSpec builds an I/O schedule from a compact scenario string.
// Entries are ';'-separated, each "kind:glob[:mod[:mod...]]" where kind
// is one of read-err, short-read, bitflip, enospc, short-write,
// torn-rename, stall, write-stall; glob matches file base names ("*"
// for all); and
// mods are "xN" (fire on each file's first N matching ops; default
// every op), "@P" (fire with probability P per op) and "+DUR" (stall
// duration, stall rules only):
//
//	read-err:drive002_*:x1          first read of each drive002 shard fails
//	bitflip:*.csv:@0.001            one read in a thousand is bit-flipped
//	stall:*:+5ms                    every read stalls 5 ms
//	enospc:tests.csv:x1             first tests.csv write fails ENOSPC
//
// The same (spec, seed) pair always parses to a bit-identical schedule
// (see Digest).
func ParseIOSpec(spec string, seed int64) (IOSchedule, error) {
	s := IOSchedule{Seed: seed}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 2 {
			return IOSchedule{}, fmt.Errorf("faults: %q: want kind:glob[:mods]", entry)
		}
		var kind IOFaultKind
		found := false
		for k, name := range ioKindNames {
			if k != IONone && name == parts[0] {
				kind, found = k, true
				break
			}
		}
		if !found {
			return IOSchedule{}, fmt.Errorf("faults: %q: unknown fault kind %q", entry, parts[0])
		}
		r := IORule{Kind: kind, Path: parts[1]}
		if _, err := path.Match(r.Path, "probe"); err != nil {
			return IOSchedule{}, fmt.Errorf("faults: %q: bad glob %q", entry, r.Path)
		}
		for _, mod := range parts[2:] {
			switch {
			case strings.HasPrefix(mod, "x"):
				n, err := strconv.Atoi(mod[1:])
				if err != nil || n <= 0 {
					return IOSchedule{}, fmt.Errorf("faults: %q: bad count %q", entry, mod)
				}
				r.Count = n
			case strings.HasPrefix(mod, "@"):
				p, err := parseProb(mod[1:])
				if err != nil {
					return IOSchedule{}, fmt.Errorf("faults: %q: %w", entry, err)
				}
				r.Prob = p
			case strings.HasPrefix(mod, "+"):
				d, err := time.ParseDuration(mod[1:])
				if err != nil || d <= 0 {
					return IOSchedule{}, fmt.Errorf("faults: %q: bad stall %q", entry, mod)
				}
				r.Stall = d
			default:
				return IOSchedule{}, fmt.Errorf("faults: %q: unknown modifier %q", entry, mod)
			}
		}
		if (r.Kind == IOStall || r.Kind == IOWriteStall) && r.Stall <= 0 {
			return IOSchedule{}, fmt.Errorf("faults: %q: stall rules need a +DUR modifier", entry)
		}
		s.Rules = append(s.Rules, r)
	}
	return s, nil
}

// IODecision is one injector verdict: the fault to apply to the
// operation (IONone for a healthy op) and, for stalls, how long.
type IODecision struct {
	Kind  IOFaultKind
	Stall time.Duration
	// Salt is a seeded per-decision value fault implementations use for
	// their own draws (which byte to flip, and which of its bits).
	Salt uint64
}

// IOInjector executes an IOSchedule: it tracks per-(rule, file)
// operation counts and answers, deterministically, whether a given
// operation faults. Safe for concurrent use; decisions depend only on
// (seed, rule, file, per-file op index), never on cross-file ordering.
type IOInjector struct {
	sched IOSchedule

	mu    sync.Mutex
	ops   map[ioKey]int // operations seen per (rule, file)
	stats IOStats
}

type ioKey struct {
	rule int
	file string
}

// IOStats counts the faults an injector actually fired, by kind.
type IOStats struct {
	ReadErrs, ShortReads, BitFlips int64
	WriteErrs, ShortWrites         int64
	TornRenames, Stalls            int64
}

// Total sums all fired faults.
func (s IOStats) Total() int64 {
	return s.ReadErrs + s.ShortReads + s.BitFlips + s.WriteErrs +
		s.ShortWrites + s.TornRenames + s.Stalls
}

// String renders the counts for logs.
func (s IOStats) String() string {
	return fmt.Sprintf(
		"read_errs=%d short_reads=%d bitflips=%d write_errs=%d short_writes=%d torn_renames=%d stalls=%d",
		s.ReadErrs, s.ShortReads, s.BitFlips, s.WriteErrs, s.ShortWrites, s.TornRenames, s.Stalls)
}

// NewIOInjector starts executing a schedule from a clean slate.
func NewIOInjector(s IOSchedule) *IOInjector {
	return &IOInjector{sched: s, ops: make(map[ioKey]int)}
}

// Schedule returns the schedule the injector executes.
func (j *IOInjector) Schedule() IOSchedule { return j.sched }

// Stats snapshots the fired-fault counts.
func (j *IOInjector) Stats() IOStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Decide consults the schedule for one operation on the file named
// base (a base name, no directory). The first matching rule that fires
// wins; rule order is the schedule's.
func (j *IOInjector) Decide(op IOOp, base string) IODecision {
	if j == nil || len(j.sched.Rules) == 0 {
		return IODecision{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	for ri, r := range j.sched.Rules {
		if r.Kind.op() != op {
			continue
		}
		if r.Path != "" {
			if ok, _ := path.Match(r.Path, base); !ok {
				continue
			}
		}
		key := ioKey{ri, base}
		n := j.ops[key]
		j.ops[key] = n + 1
		if r.Count > 0 && n >= r.Count {
			continue // transient fault exhausted for this file
		}
		if r.Prob > 0 && !ioDraw(j.sched.Seed, ri, base, n, r.Prob) {
			continue
		}
		j.count(r.Kind)
		return IODecision{Kind: r.Kind, Stall: r.Stall, Salt: ioHash(j.sched.Seed, ri, base, n)}
	}
	return IODecision{}
}

func (j *IOInjector) count(k IOFaultKind) {
	switch k {
	case IOReadErr:
		j.stats.ReadErrs++
	case IOShortRead:
		j.stats.ShortReads++
	case IOBitFlip:
		j.stats.BitFlips++
	case IOWriteErr:
		j.stats.WriteErrs++
	case IOShortWrite:
		j.stats.ShortWrites++
	case IOTornRename:
		j.stats.TornRenames++
	case IOStall, IOWriteStall:
		j.stats.Stalls++
	}
}

// ioHash mixes (seed, rule, file, op index) into a uniform 64-bit value
// — the splitmix64 finalizer over an FNV-ish accumulation, plenty for
// fault placement and cheap enough per operation.
func ioHash(seed int64, rule int, file string, n int) uint64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(rule)*0xBF58476D1CE4E5B9 + uint64(n)
	for i := 0; i < len(file); i++ {
		h = (h ^ uint64(file[i])) * 0x100000001B3
	}
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// ioDraw is a deterministic Bernoulli draw with probability p.
func ioDraw(seed int64, rule int, file string, n int, p float64) bool {
	return float64(ioHash(seed, rule, file, n))/float64(^uint64(0)) < p
}
