package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec builds a schedule from a compact scenario string — the
// format behind mpshell's -faults flag. Entries are ';'-separated:
//
//	blackout@START+DUR   one blackout window, e.g. blackout@5s+800ms
//	restart@START+DUR    kill the component at START, restore at +DUR
//	dialfail@START+DUR   refuse new dials/sessions in the window
//	corrupt=P            per-datagram corruption probability
//	truncate=P           per-datagram truncation probability
//	auto=N/HORIZON       N seeded random blackouts over HORIZON
//
// Explicit windows and auto entries combine; seed drives the auto
// placement and the injector's per-datagram draws. The same (spec,
// seed) pair always parses to a bit-identical schedule.
func ParseSpec(spec string, seed int64) (Schedule, error) {
	s := Schedule{Seed: seed}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		switch {
		case strings.HasPrefix(entry, "blackout@"):
			w, err := parseWindow(strings.TrimPrefix(entry, "blackout@"))
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: %q: %w", entry, err)
			}
			s.Blackouts = append(s.Blackouts, w)
		case strings.HasPrefix(entry, "restart@"):
			w, err := parseWindow(strings.TrimPrefix(entry, "restart@"))
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: %q: %w", entry, err)
			}
			s.Restarts = append(s.Restarts, w)
		case strings.HasPrefix(entry, "dialfail@"):
			w, err := parseWindow(strings.TrimPrefix(entry, "dialfail@"))
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: %q: %w", entry, err)
			}
			s.DialFails = append(s.DialFails, w)
		case strings.HasPrefix(entry, "corrupt="):
			p, err := parseProb(strings.TrimPrefix(entry, "corrupt="))
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: %q: %w", entry, err)
			}
			s.CorruptProb = p
		case strings.HasPrefix(entry, "truncate="):
			p, err := parseProb(strings.TrimPrefix(entry, "truncate="))
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: %q: %w", entry, err)
			}
			s.TruncateProb = p
		case strings.HasPrefix(entry, "auto="):
			n, horizon, err := parseAuto(strings.TrimPrefix(entry, "auto="))
			if err != nil {
				return Schedule{}, fmt.Errorf("faults: %q: %w", entry, err)
			}
			gen := Generate(Config{Seed: seed, Horizon: horizon, Blackouts: n})
			s.Blackouts = append(s.Blackouts, gen.Blackouts...)
			if horizon > s.Horizon {
				s.Horizon = horizon
			}
		default:
			return Schedule{}, fmt.Errorf("faults: unknown spec entry %q", entry)
		}
	}
	sortWindows(s.Blackouts)
	sortWindows(s.Restarts)
	sortWindows(s.DialFails)
	if s.Horizon == 0 {
		s.Horizon = lastEnd(&s)
	}
	return s, nil
}

// lastEnd returns the latest window end across all kinds.
func lastEnd(s *Schedule) time.Duration {
	var end time.Duration
	for _, ws := range [][]Window{s.Blackouts, s.Restarts, s.DialFails} {
		for _, w := range ws {
			if w.End() > end {
				end = w.End()
			}
		}
	}
	return end
}

// parseWindow parses "START+DUR" (both time.ParseDuration syntax).
func parseWindow(v string) (Window, error) {
	start, dur, ok := strings.Cut(v, "+")
	if !ok {
		return Window{}, fmt.Errorf("want START+DUR")
	}
	st, err := time.ParseDuration(start)
	if err != nil {
		return Window{}, err
	}
	d, err := time.ParseDuration(dur)
	if err != nil {
		return Window{}, err
	}
	if st < 0 || d <= 0 {
		return Window{}, fmt.Errorf("window must have start >= 0 and dur > 0")
	}
	return Window{Start: st, Dur: d}, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", p)
	}
	return p, nil
}

// parseAuto parses "N/HORIZON", e.g. "4/60s".
func parseAuto(v string) (int, time.Duration, error) {
	count, horizon, ok := strings.Cut(v, "/")
	if !ok {
		return 0, 0, fmt.Errorf("want N/HORIZON")
	}
	n, err := strconv.Atoi(count)
	if err != nil {
		return 0, 0, err
	}
	h, err := time.ParseDuration(horizon)
	if err != nil {
		return 0, 0, err
	}
	if n <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("want positive count and horizon")
	}
	return n, h, nil
}
