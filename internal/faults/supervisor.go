package faults

import (
	"sync"
	"time"

	"satcell/internal/vclock"
)

// Supervisor executes a schedule's restart windows against one
// wall-clock component: at each window's start it calls kill, at the
// window's end it calls restore. It is how chaos scenarios cycle a
// relay or measurement server the way a field deployment loses its
// gateway and gets it back.
type Supervisor struct {
	clk  vclock.Clock
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	mu            sync.Mutex
	kills         int
	resets        int
	timers        []vclock.Timer // event-mode pending kill/restore firings
	restoreOnStop func()
}

// Supervise starts executing the windows (sorted by start; overlapping
// windows are merged into their union of downtime by construction of
// the kill/restore pairing — each window runs to completion before the
// next is considered). kill and restore run on the supervisor's
// goroutine, so they may touch non-thread-safe component state as long
// as nothing else does.
func Supervise(windows []Window, kill, restore func()) *Supervisor {
	return SuperviseClock(windows, kill, restore, vclock.Wall)
}

// SuperviseClock is Supervise on an explicit clock. On the wall clock
// it runs the classic supervisor goroutine (prompt Stop via channel
// select). On a virtual clock that coordinates goroutines (a
// vclock.SimClock) the kill/restore calls are instead scheduled as
// AfterFunc events, so they fire at their exact virtual instants on the
// single-threaded event loop — still serialized, still never leaving
// the component dead after Stop.
func SuperviseClock(windows []Window, kill, restore func(), clk vclock.Clock) *Supervisor {
	s := &Supervisor{clk: vclock.Or(clk), stop: make(chan struct{})}
	ws := append([]Window(nil), windows...)
	sortWindows(ws)
	if _, virtual := s.clk.(interface{ Go(func()) }); virtual {
		s.superviseEvents(ws, kill, restore)
		return s
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		begin := s.clk.Now()
		for _, w := range ws {
			if !s.sleepUntil(begin.Add(w.Start)) {
				return
			}
			kill()
			s.mu.Lock()
			s.kills++
			s.mu.Unlock()
			if !s.sleepUntil(begin.Add(w.End())) {
				restore() // leave the component up on early stop
				s.mu.Lock()
				s.resets++
				s.mu.Unlock()
				return
			}
			restore()
			s.mu.Lock()
			s.resets++
			s.mu.Unlock()
		}
	}()
	return s
}

// superviseEvents schedules each window's kill and restore as clock
// events. The windows arrive sorted, so the event-loop execution order
// matches the goroutine version for non-overlapping windows.
func (s *Supervisor) superviseEvents(ws []Window, kill, restore func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range ws {
		s.timers = append(s.timers,
			s.clk.AfterFunc(w.Start, func() {
				kill()
				s.mu.Lock()
				s.kills++
				s.mu.Unlock()
			}),
			s.clk.AfterFunc(w.End(), func() {
				restore()
				s.mu.Lock()
				s.resets++
				s.mu.Unlock()
			}))
	}
	s.restoreOnStop = restore
}

// sleepUntil waits for the deadline; it reports false when the
// supervisor was stopped first.
func (s *Supervisor) sleepUntil(at time.Time) bool {
	d := at.Sub(s.clk.Now())
	if d <= 0 {
		return true
	}
	t := s.clk.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C():
		return true
	case <-s.stop:
		return false
	}
}

// Counts returns how many kill and restore calls have run.
func (s *Supervisor) Counts() (kills, restores int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kills, s.resets
}

// Stop cancels outstanding windows and waits for the supervisor
// goroutine to exit. If the component was down mid-window, restore is
// called before Stop returns, so the component is never left dead.
func (s *Supervisor) Stop() {
	s.once.Do(func() {
		close(s.stop)
		s.mu.Lock()
		for _, t := range s.timers {
			t.Stop()
		}
		s.timers = nil
		// Event mode only: the wall goroutine restores on early stop
		// itself, so restoreOnStop is nil there.
		restore := s.restoreOnStop
		down := restore != nil && s.kills > s.resets
		if down {
			s.resets++
		}
		s.mu.Unlock()
		if down {
			restore()
		}
	})
	s.wg.Wait()
}
