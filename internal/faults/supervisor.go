package faults

import (
	"sync"
	"time"
)

// Supervisor executes a schedule's restart windows against one
// wall-clock component: at each window's start it calls kill, at the
// window's end it calls restore. It is how chaos scenarios cycle a
// relay or measurement server the way a field deployment loses its
// gateway and gets it back.
type Supervisor struct {
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	mu     sync.Mutex
	kills  int
	resets int
}

// Supervise starts executing the windows (sorted by start; overlapping
// windows are merged into their union of downtime by construction of
// the kill/restore pairing — each window runs to completion before the
// next is considered). kill and restore run on the supervisor's
// goroutine, so they may touch non-thread-safe component state as long
// as nothing else does.
func Supervise(windows []Window, kill, restore func()) *Supervisor {
	s := &Supervisor{stop: make(chan struct{})}
	ws := append([]Window(nil), windows...)
	sortWindows(ws)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		begin := time.Now()
		for _, w := range ws {
			if !s.sleepUntil(begin.Add(w.Start)) {
				return
			}
			kill()
			s.mu.Lock()
			s.kills++
			s.mu.Unlock()
			if !s.sleepUntil(begin.Add(w.End())) {
				restore() // leave the component up on early stop
				s.mu.Lock()
				s.resets++
				s.mu.Unlock()
				return
			}
			restore()
			s.mu.Lock()
			s.resets++
			s.mu.Unlock()
		}
	}()
	return s
}

// sleepUntil waits for the deadline; it reports false when the
// supervisor was stopped first.
func (s *Supervisor) sleepUntil(at time.Time) bool {
	d := time.Until(at)
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stop:
		return false
	}
}

// Counts returns how many kill and restore calls have run.
func (s *Supervisor) Counts() (kills, restores int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kills, s.resets
}

// Stop cancels outstanding windows and waits for the supervisor
// goroutine to exit. If the component was down mid-window, restore is
// called before Stop returns, so the component is never left dead.
func (s *Supervisor) Stop() {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
}
