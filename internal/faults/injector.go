package faults

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"satcell/internal/obs"
	"satcell/internal/vclock"
)

// Stats counts what an Injector did to live traffic.
type Stats struct {
	BlackoutDrops int64 // datagrams swallowed by blackout windows
	Corrupted     int64
	Truncated     int64
	DialsRefused  int64
}

// Injector executes a Schedule against wall-clock traffic. It
// implements netem.FaultGate: the relays consult it per datagram and
// per dial. All methods are safe for concurrent use and nil-tolerant,
// so a nil *Injector means "no faults".
//
// The schedule itself is deterministic; the injector's per-datagram
// corruption/truncation draws come from a RNG derived from the
// schedule seed, so a fixed packet sequence sees a fixed fault
// sequence.
type Injector struct {
	sched Schedule
	clk   vclock.Clock
	start time.Time

	mu  sync.Mutex
	rng *rand.Rand

	blackoutDrops atomic.Int64
	corrupted     atomic.Int64
	truncated     atomic.Int64
	dialsRefused  atomic.Int64
}

// NewInjector starts a schedule's wall clock now.
func NewInjector(s Schedule) *Injector {
	return NewInjectorClock(s, vclock.Wall)
}

// NewInjectorClock is NewInjector with an explicit clock, so a virtual
// run's Elapsed (and therefore every window decision) tracks virtual
// time.
func NewInjectorClock(s Schedule, clk vclock.Clock) *Injector {
	clk = vclock.Or(clk)
	return &Injector{
		sched: s,
		clk:   clk,
		start: clk.Now(),
		rng:   rand.New(rand.NewSource(s.Seed*0x9E3779B9 + 1)),
	}
}

// Schedule returns the injector's script.
func (in *Injector) Schedule() Schedule { return in.sched }

// Elapsed returns the time since the injector started.
func (in *Injector) Elapsed() time.Duration { return in.clk.Since(in.start) }

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		BlackoutDrops: in.blackoutDrops.Load(),
		Corrupted:     in.corrupted.Load(),
		Truncated:     in.truncated.Load(),
		DialsRefused:  in.dialsRefused.Load(),
	}
}

// Instrument exposes the injector's live fault counters on reg
// (injections by kind, plus which window kinds are active right now,
// sampled at scrape time) and pins the schedule's fault windows into tr
// as fault-open/fault-close events at their scheduled offsets. The
// windows are deterministic — known before any traffic flows — so they
// are pinned up front rather than detected from the packet path: an
// exported trace always carries the full scenario script, and the
// timeline renderer can cross-check observed drops against it. Either
// argument may be nil; a nil injector is a no-op.
func (in *Injector) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	if in == nil {
		return
	}
	reg.RegisterFunc("faults.blackout_drops", func() float64 { return float64(in.blackoutDrops.Load()) })
	reg.RegisterFunc("faults.corrupted", func() float64 { return float64(in.corrupted.Load()) })
	reg.RegisterFunc("faults.truncated", func() float64 { return float64(in.truncated.Load()) })
	reg.RegisterFunc("faults.dials_refused", func() float64 { return float64(in.dialsRefused.Load()) })
	reg.RegisterFunc("faults.blackout_active", func() float64 {
		if in.sched.BlackoutAt(in.Elapsed()) {
			return 1
		}
		return 0
	})
	reg.RegisterFunc("faults.dialfail_active", func() float64 {
		if in.sched.DialFailAt(in.Elapsed()) {
			return 1
		}
		return 0
	})
	for kind, windows := range map[string][]Window{
		"blackout":  in.sched.Blackouts,
		"restart":   in.sched.Restarts,
		"dial-fail": in.sched.DialFails,
	} {
		for _, w := range windows {
			tr.PinSpan(w.Start, obs.EvFaultOpen, "faults", kind)
			tr.PinSpan(w.End(), obs.EvFaultClose, "faults", kind)
		}
	}
}

// LinkDown reports whether the link is blacked out at the given elapsed
// time, counting a dropped datagram when it is.
func (in *Injector) LinkDown(elapsed time.Duration) bool {
	if in == nil {
		return false
	}
	if in.sched.BlackoutAt(elapsed) {
		in.blackoutDrops.Add(1)
		return true
	}
	return false
}

// DialFails reports whether a new connection/session attempt at the
// given elapsed time must be refused.
func (in *Injector) DialFails(elapsed time.Duration) bool {
	if in == nil {
		return false
	}
	if in.sched.DialFailAt(elapsed) {
		in.dialsRefused.Add(1)
		return true
	}
	return false
}

// Datagram applies the per-packet faults to pkt (in place) and returns
// the possibly shortened payload plus whether the datagram must be
// dropped entirely. The caller must own pkt (the relays pass their
// per-packet copy).
func (in *Injector) Datagram(elapsed time.Duration, pkt []byte) ([]byte, bool) {
	if in == nil || (in.sched.CorruptProb <= 0 && in.sched.TruncateProb <= 0) || len(pkt) == 0 {
		return pkt, false
	}
	in.mu.Lock()
	corrupt := in.rng.Float64() < in.sched.CorruptProb
	truncate := in.rng.Float64() < in.sched.TruncateProb
	var off, cut int
	if corrupt {
		off = in.rng.Intn(len(pkt))
	}
	if truncate {
		cut = in.rng.Intn(len(pkt))
	}
	in.mu.Unlock()
	if corrupt {
		pkt[off] ^= 0xFF
		in.corrupted.Add(1)
	}
	if truncate {
		pkt = pkt[:cut]
		in.truncated.Add(1)
		if cut == 0 {
			return pkt, true // truncated to nothing: the wire ate it
		}
	}
	return pkt, false
}
