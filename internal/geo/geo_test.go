package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	// Chicago -> Minneapolis is roughly 570 km great-circle.
	chi := LatLon{41.8781, -87.6298}
	msp := LatLon{44.9778, -93.2650}
	d := DistanceKm(chi, msp)
	if d < 540 || d > 600 {
		t.Fatalf("Chicago-Minneapolis = %v km, want ~570", d)
	}
	if DistanceKm(chi, chi) != 0 {
		t.Fatal("distance to self should be 0")
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := LatLon{math.Mod(lat1, 90), math.Mod(lon1, 180)}
		b := LatLon{math.Mod(lat2, 90), math.Mod(lon2, 180)}
		if math.IsNaN(a.Lat) || math.IsNaN(a.Lon) || math.IsNaN(b.Lat) || math.IsNaN(b.Lon) {
			return true
		}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	start := LatLon{42.0, -85.0}
	for _, bearing := range []float64{0, 45, 90, 180, 270} {
		for _, dist := range []float64{1, 10, 100} {
			end := Destination(start, bearing, dist)
			got := DistanceKm(start, end)
			if math.Abs(got-dist) > 0.01*dist+1e-6 {
				t.Errorf("bearing %v dist %v: travelled %v", bearing, dist, got)
			}
		}
	}
}

func TestDestinationNorth(t *testing.T) {
	start := LatLon{40, -90}
	end := Destination(start, 0, 111.195) // ~1 degree of latitude
	if math.Abs(end.Lat-41) > 0.01 {
		t.Fatalf("northward travel lat = %v, want ~41", end.Lat)
	}
	if math.Abs(end.Lon-(-90)) > 0.01 {
		t.Fatalf("northward travel lon = %v, want -90", end.Lon)
	}
}

func TestBearing(t *testing.T) {
	a := LatLon{40, -90}
	if b := Bearing(a, LatLon{41, -90}); math.Abs(b-0) > 0.5 && math.Abs(b-360) > 0.5 {
		t.Fatalf("north bearing = %v", b)
	}
	if b := Bearing(a, LatLon{40, -89}); math.Abs(b-90) > 1 {
		t.Fatalf("east bearing = %v", b)
	}
}

func TestPolylineInterpolation(t *testing.T) {
	pts := []LatLon{
		{42, -85},
		Destination(LatLon{42, -85}, 90, 10),
		Destination(Destination(LatLon{42, -85}, 90, 10), 90, 10),
	}
	pl, err := NewPolyline(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pl.LengthKm()-20) > 0.1 {
		t.Fatalf("length = %v, want ~20", pl.LengthKm())
	}
	mid := pl.At(10)
	if d := DistanceKm(mid, pts[1]); d > 0.1 {
		t.Fatalf("At(10) is %v km from expected vertex", d)
	}
	// Clamping.
	if pl.At(-5) != pts[0] {
		t.Fatal("At(-5) should clamp to start")
	}
	if pl.At(1000) != pts[2] {
		t.Fatal("At(+inf) should clamp to end")
	}
}

func TestPolylineMonotoneProperty(t *testing.T) {
	pts := []LatLon{{42, -85}}
	p := pts[0]
	for i := 0; i < 20; i++ {
		p = Destination(p, float64(i*37%360), 3)
		pts = append(pts, p)
	}
	pl, err := NewPolyline(pts)
	if err != nil {
		t.Fatal(err)
	}
	f := func(d1, d2 float64) bool {
		d1 = math.Abs(math.Mod(d1, pl.LengthKm()))
		d2 = math.Abs(math.Mod(d2, pl.LengthKm()))
		if math.IsNaN(d1) || math.IsNaN(d2) {
			return true
		}
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		// Travelling further along the line cannot move you further than
		// the extra path distance (triangle inequality on the path).
		a, b := pl.At(d1), pl.At(d2)
		return DistanceKm(a, b) <= (d2-d1)+0.05
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPolylineErrors(t *testing.T) {
	if _, err := NewPolyline([]LatLon{{1, 1}}); err == nil {
		t.Fatal("expected error for single-point polyline")
	}
}

func TestPolylineSegmentIndex(t *testing.T) {
	pts := []LatLon{
		{42, -85},
		Destination(LatLon{42, -85}, 90, 10),
		Destination(Destination(LatLon{42, -85}, 90, 10), 90, 10),
	}
	pl, _ := NewPolyline(pts)
	if got := pl.SegmentIndex(5); got != 0 {
		t.Fatalf("SegmentIndex(5) = %d", got)
	}
	if got := pl.SegmentIndex(15); got != 1 {
		t.Fatalf("SegmentIndex(15) = %d", got)
	}
	if got := pl.SegmentIndex(-1); got != 0 {
		t.Fatalf("SegmentIndex(-1) = %d", got)
	}
	if got := pl.SegmentIndex(100); got != 1 {
		t.Fatalf("SegmentIndex(100) = %d", got)
	}
}

func TestAreaTypeString(t *testing.T) {
	if Urban.String() != "urban" || Suburban.String() != "suburban" || Rural.String() != "rural" {
		t.Fatal("AreaType names wrong")
	}
	if AreaType(99).String() != "unknown" {
		t.Fatal("unknown AreaType should stringify as unknown")
	}
}

func TestGazetteerClassify(t *testing.T) {
	g := DefaultGazetteer()
	chicago := LatLon{41.8781, -87.6298}
	if got := g.Classify(chicago); got != Urban {
		t.Fatalf("downtown Chicago = %v, want urban", got)
	}
	// ~25 km west of Chicago: inside the metro suburban belt.
	suburb := Destination(chicago, 270, 25)
	if got := g.Classify(suburb); got != Suburban {
		t.Fatalf("Chicago suburb = %v, want suburban", got)
	}
	// Middle of nowhere in central Wisconsin farmland.
	rural := LatLon{44.35, -90.8}
	if got := g.Classify(rural); got != Rural {
		t.Fatalf("central WI = %v, want rural", got)
	}
}

func TestGazetteerNearest(t *testing.T) {
	g := DefaultGazetteer()
	city, d, ok := g.Nearest(LatLon{42.28, -83.74})
	if !ok || city.Name != "Ann Arbor" {
		t.Fatalf("nearest = %v (ok=%v)", city.Name, ok)
	}
	if d > 1 {
		t.Fatalf("distance to Ann Arbor = %v", d)
	}
	empty := NewGazetteer(nil)
	if _, _, ok := empty.Nearest(LatLon{0, 0}); ok {
		t.Fatal("empty gazetteer should report !ok")
	}
	if got := empty.Classify(LatLon{0, 0}); got != Rural {
		t.Fatalf("empty gazetteer classification = %v, want rural", got)
	}
}

func TestGazetteerStates(t *testing.T) {
	g := DefaultGazetteer()
	states := g.States()
	if len(states) != 5 {
		t.Fatalf("states = %v, want 5 states", states)
	}
	want := []string{"IL", "IN", "MI", "MN", "WI"}
	for i, s := range want {
		if states[i] != s {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}
}

func TestSmallTownFootprint(t *testing.T) {
	g := DefaultGazetteer()
	// Tomah, WI is a small town: its centre is urban only within ~2 km.
	tomah := LatLon{43.9786, -90.5040}
	if got := g.Classify(tomah); got != Urban {
		t.Fatalf("Tomah centre = %v, want urban", got)
	}
	if got := g.Classify(Destination(tomah, 0, 5)); got != Suburban {
		t.Fatalf("5 km out of Tomah = %v, want suburban", got)
	}
}
