// Package geo provides the geographic primitives for the synthetic drive
// world: lat/lon points, great-circle distance, polyline routes, a city
// gazetteer, and the paper's area-type classification (urban / suburban /
// rural by distance to the nearest city, §5.1 of the paper).
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used by Haversine.
const EarthRadiusKm = 6371.0

// LatLon is a WGS84-style coordinate in degrees.
type LatLon struct {
	Lat float64
	Lon float64
}

func (p LatLon) String() string { return fmt.Sprintf("(%.5f, %.5f)", p.Lat, p.Lon) }

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// DistanceKm returns the great-circle (haversine) distance between a and b
// in kilometres.
func DistanceKm(a, b LatLon) float64 {
	la1, lo1 := deg2rad(a.Lat), deg2rad(a.Lon)
	la2, lo2 := deg2rad(b.Lat), deg2rad(b.Lon)
	dLat := la2 - la1
	dLon := lo2 - lo1
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(la1)*math.Cos(la2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Destination returns the point reached by travelling distKm kilometres
// from p along the given initial bearing (degrees clockwise from north).
func Destination(p LatLon, bearingDeg, distKm float64) LatLon {
	delta := distKm / EarthRadiusKm
	theta := deg2rad(bearingDeg)
	phi1 := deg2rad(p.Lat)
	lam1 := deg2rad(p.Lon)
	phi2 := math.Asin(math.Sin(phi1)*math.Cos(delta) +
		math.Cos(phi1)*math.Sin(delta)*math.Cos(theta))
	lam2 := lam1 + math.Atan2(
		math.Sin(theta)*math.Sin(delta)*math.Cos(phi1),
		math.Cos(delta)-math.Sin(phi1)*math.Sin(phi2))
	// Normalize longitude to [-180, 180).
	lon := math.Mod(rad2deg(lam2)+540, 360) - 180
	return LatLon{Lat: rad2deg(phi2), Lon: lon}
}

// Bearing returns the initial great-circle bearing from a to b in degrees
// clockwise from north, normalised to [0, 360).
func Bearing(a, b LatLon) float64 {
	phi1 := deg2rad(a.Lat)
	phi2 := deg2rad(b.Lat)
	dLon := deg2rad(b.Lon - a.Lon)
	y := math.Sin(dLon) * math.Cos(phi2)
	x := math.Cos(phi1)*math.Sin(phi2) - math.Sin(phi1)*math.Cos(phi2)*math.Cos(dLon)
	return math.Mod(rad2deg(math.Atan2(y, x))+360, 360)
}

// Polyline is a sequence of points with precomputed cumulative distances,
// supporting interpolation by travelled distance.
type Polyline struct {
	pts []LatLon
	cum []float64 // cumulative distance in km, cum[0] == 0
}

// NewPolyline builds a polyline from at least two points.
func NewPolyline(pts []LatLon) (*Polyline, error) {
	if len(pts) < 2 {
		return nil, fmt.Errorf("geo: polyline needs at least 2 points, got %d", len(pts))
	}
	cp := make([]LatLon, len(pts))
	copy(cp, pts)
	cum := make([]float64, len(pts))
	for i := 1; i < len(pts); i++ {
		cum[i] = cum[i-1] + DistanceKm(pts[i-1], pts[i])
	}
	return &Polyline{pts: cp, cum: cum}, nil
}

// LengthKm returns the total polyline length.
func (pl *Polyline) LengthKm() float64 { return pl.cum[len(pl.cum)-1] }

// Points returns the polyline's vertices.
func (pl *Polyline) Points() []LatLon { return pl.pts }

// At returns the interpolated position after travelling distKm along the
// polyline from its start. Distances outside [0, Length] are clamped.
func (pl *Polyline) At(distKm float64) LatLon {
	if distKm <= 0 {
		return pl.pts[0]
	}
	last := len(pl.cum) - 1
	if distKm >= pl.cum[last] {
		return pl.pts[last]
	}
	// Binary search for the segment containing distKm.
	lo, hi := 0, last
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if pl.cum[mid] <= distKm {
			lo = mid
		} else {
			hi = mid
		}
	}
	segLen := pl.cum[hi] - pl.cum[lo]
	if segLen <= 0 {
		return pl.pts[lo]
	}
	frac := (distKm - pl.cum[lo]) / segLen
	a, b := pl.pts[lo], pl.pts[hi]
	// Linear interpolation in lat/lon is fine at drive-segment scales.
	return LatLon{
		Lat: a.Lat + frac*(b.Lat-a.Lat),
		Lon: a.Lon + frac*(b.Lon-a.Lon),
	}
}

// SegmentIndex returns the index of the segment containing distKm
// (0-based, clamped to the valid range).
func (pl *Polyline) SegmentIndex(distKm float64) int {
	last := len(pl.cum) - 1
	if distKm <= 0 {
		return 0
	}
	if distKm >= pl.cum[last] {
		return last - 1
	}
	lo, hi := 0, last
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if pl.cum[mid] <= distKm {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
