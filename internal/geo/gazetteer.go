package geo

import "sort"

// AreaType is the paper's three-way geography classification (§5.1).
type AreaType int

const (
	Urban AreaType = iota
	Suburban
	Rural
)

// String returns the lower-case name of the area type.
func (a AreaType) String() string {
	switch a {
	case Urban:
		return "urban"
	case Suburban:
		return "suburban"
	case Rural:
		return "rural"
	default:
		return "unknown"
	}
}

// AreaTypes lists the three classifications in order.
var AreaTypes = []AreaType{Urban, Suburban, Rural}

// ParseArea converts an area-type name back to an AreaType.
func ParseArea(s string) (AreaType, bool) {
	for _, a := range AreaTypes {
		if a.String() == s {
			return a, true
		}
	}
	return 0, false
}

// City is a gazetteer entry. Population drives the urban-distance
// thresholds: a data point near a big city counts as urban out to a
// larger radius than one near a small town.
type City struct {
	Name       string
	State      string
	Pos        LatLon
	Population int
}

// urbanRadiusKm returns the distance within which points near the city
// classify as urban, scaled with population (a metro core has a larger
// urban footprint than a small town).
func (c City) urbanRadiusKm() float64 {
	switch {
	case c.Population >= 1_000_000:
		return 10
	case c.Population >= 250_000:
		return 7
	case c.Population >= 50_000:
		return 4
	default:
		return 2
	}
}

// suburbanRadiusKm returns the distance within which points near the city
// classify as suburban: the belt scales with the city's footprint (a
// metro's commuter belt is wide; a small town's is a few km).
func (c City) suburbanRadiusKm() float64 {
	return c.urbanRadiusKm()*2.5 + 10
}

// Gazetteer is the list of cities and towns passed through during the
// drive campaign; the paper compiles exactly such a list and classifies
// each data point by distance to the nearest entry.
type Gazetteer struct {
	cities []City
}

// NewGazetteer builds a gazetteer from the given cities. The slice is
// copied.
func NewGazetteer(cities []City) *Gazetteer {
	cp := make([]City, len(cities))
	copy(cp, cities)
	return &Gazetteer{cities: cp}
}

// Cities returns the gazetteer entries.
func (g *Gazetteer) Cities() []City { return g.cities }

// Nearest returns the nearest city to p and its distance in km.
// ok is false when the gazetteer is empty.
func (g *Gazetteer) Nearest(p LatLon) (city City, distKm float64, ok bool) {
	if len(g.cities) == 0 {
		return City{}, 0, false
	}
	best := 0
	bestD := DistanceKm(p, g.cities[0].Pos)
	for i := 1; i < len(g.cities); i++ {
		if d := DistanceKm(p, g.cities[i].Pos); d < bestD {
			best, bestD = i, d
		}
	}
	return g.cities[best], bestD, true
}

// Classify implements the paper's method: compute the distance from the
// data point to every listed city/town, take the smallest, and classify
// with predetermined thresholds. Points in an empty gazetteer are rural.
//
// The classification additionally considers the footprint of *every*
// city, not just the nearest one, so a point 3 km from a small town but
// 12 km from a metro core is still suburban with respect to the metro.
func (g *Gazetteer) Classify(p LatLon) AreaType {
	result := Rural
	for _, c := range g.cities {
		d := DistanceKm(p, c.Pos)
		switch {
		case d <= c.urbanRadiusKm():
			return Urban
		case d <= c.suburbanRadiusKm():
			result = Suburban
		}
	}
	return result
}

// States returns the sorted distinct states present in the gazetteer.
func (g *Gazetteer) States() []string {
	seen := make(map[string]bool)
	for _, c := range g.cities {
		seen[c.State] = true
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
