package geo

// DefaultGazetteer returns the synthetic drive-world gazetteer: the
// cities and towns along a Michigan → Minnesota corridor spanning five
// US states (MI, IN, IL, WI, MN), mirroring the paper's five-state field
// trip. Coordinates approximate the real places; populations are rounded
// and only drive the urban/suburban footprint radii.
func DefaultGazetteer() *Gazetteer {
	return NewGazetteer([]City{
		// Michigan
		{Name: "Detroit", State: "MI", Pos: LatLon{42.3314, -83.0458}, Population: 1_500_000},
		{Name: "Ann Arbor", State: "MI", Pos: LatLon{42.2808, -83.7430}, Population: 120_000},
		{Name: "Jackson", State: "MI", Pos: LatLon{42.2459, -84.4013}, Population: 31_000},
		{Name: "Battle Creek", State: "MI", Pos: LatLon{42.3212, -85.1797}, Population: 52_000},
		{Name: "Kalamazoo", State: "MI", Pos: LatLon{42.2917, -85.5872}, Population: 73_000},
		{Name: "Benton Harbor", State: "MI", Pos: LatLon{42.1167, -86.4542}, Population: 9_000},
		// Indiana
		{Name: "Michigan City", State: "IN", Pos: LatLon{41.7075, -86.8950}, Population: 31_000},
		{Name: "Gary", State: "IN", Pos: LatLon{41.5934, -87.3464}, Population: 68_000},
		// Illinois
		{Name: "Chicago", State: "IL", Pos: LatLon{41.8781, -87.6298}, Population: 2_700_000},
		{Name: "Rockford", State: "IL", Pos: LatLon{42.2711, -89.0940}, Population: 148_000},
		// Wisconsin
		{Name: "Milwaukee", State: "WI", Pos: LatLon{43.0389, -87.9065}, Population: 570_000},
		{Name: "Madison", State: "WI", Pos: LatLon{43.0731, -89.4012}, Population: 270_000},
		{Name: "Wisconsin Dells", State: "WI", Pos: LatLon{43.6275, -89.7710}, Population: 3_000},
		{Name: "Tomah", State: "WI", Pos: LatLon{43.9786, -90.5040}, Population: 9_000},
		{Name: "Eau Claire", State: "WI", Pos: LatLon{44.8113, -91.4985}, Population: 69_000},
		{Name: "Menomonie", State: "WI", Pos: LatLon{44.8755, -91.9193}, Population: 16_000},
		// Minnesota
		{Name: "Minneapolis", State: "MN", Pos: LatLon{44.9778, -93.2650}, Population: 1_200_000},
		{Name: "St. Paul", State: "MN", Pos: LatLon{44.9537, -93.0900}, Population: 310_000},
		{Name: "Rochester", State: "MN", Pos: LatLon{44.0121, -92.4802}, Population: 121_000},
		{Name: "St. Cloud", State: "MN", Pos: LatLon{45.5579, -94.1632}, Population: 69_000},
	})
}
