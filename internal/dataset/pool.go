package dataset

import (
	"sync"
	"sync/atomic"
)

// forEachIndex runs fn(0), ..., fn(n-1) across at most workers
// goroutines, pulling indices from an atomic counter so uneven work
// items (short urban drives vs long highway drives) balance out. Every
// fn(i) must be independent of the others: it may only read shared
// inputs and write state owned by index i. With workers <= 1 the call
// degenerates to a plain serial loop on the calling goroutine.
func forEachIndex(workers, n int, fn func(int)) {
	forEachIndexWorker(workers, n, func(_, i int) { fn(i) })
}

// forEachIndexWorker is forEachIndex with the worker slot id (0-based,
// stable for the goroutine's lifetime) passed alongside each index, so
// callers can keep per-worker accounting without any shared state. The
// slot id must not influence the work itself — determinism still
// requires fn's output to depend only on i.
func forEachIndexWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
