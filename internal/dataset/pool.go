package dataset

import (
	"sync"
	"sync/atomic"
)

// forEachIndex runs fn(0), ..., fn(n-1) across at most workers
// goroutines, pulling indices from an atomic counter so uneven work
// items (short urban drives vs long highway drives) balance out. Every
// fn(i) must be independent of the others: it may only read shared
// inputs and write state owned by index i. With workers <= 1 the call
// degenerates to a plain serial loop on the calling goroutine.
func forEachIndex(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
