package dataset

import (
	"fmt"

	"satcell/internal/channel"
)

// Failure taxonomy of a generation unit, mirroring the streaming
// analyzer's shard classes: transient failures (the injected I/O seam
// may answer differently next time) are retried, panics poison the
// drive and quarantine it at once — never the run.
const (
	FailTransient = "transient"
	FailPanic     = "panic"
)

// DriveFailure itemises one drive the campaign generator could not
// measure: a (drive, network) unit panicked or exhausted its retries,
// so the whole drive is quarantined — its slot stays in Dataset.Drives
// (indices are load-bearing shard names) but it carries no observations
// and contributes no tests. The export and the analyzer's completeness
// certificate both carry the record forward.
type DriveFailure struct {
	Drive    int               `json:"drive"`
	Route    string            `json:"route"`
	Network  channel.NetworkID `json:"network"`
	Attempts int               `json:"attempts"`
	Class    string            `json:"class"`
	Err      string            `json:"err"`
}

// String renders the failure for certificates and logs.
func (f DriveFailure) String() string {
	return fmt.Sprintf("drive%03d %s %s: %s after %d attempt(s): %s",
		f.Drive, f.Route, f.Network, f.Class, f.Attempts, f.Err)
}

// DriveQuarantined reports whether drive i was quarantined during
// generation (its Observed map is nil and it has no tests).
func (ds *Dataset) DriveQuarantined(i int) bool {
	for _, f := range ds.Quarantined {
		if f.Drive == i {
			return true
		}
	}
	return false
}

// unitPanic wraps a recovered generation-unit panic so the retry loop
// can tell it apart from an ordinary error.
type unitPanic struct {
	val any
}

func (p *unitPanic) Error() string { return fmt.Sprintf("panic: %v", p.val) }
