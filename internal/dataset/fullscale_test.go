package dataset

import (
	"math"
	"testing"
)

// TestFullScaleMatchesPaperHeadlines regenerates the complete campaign
// and checks the §3.3 headline numbers: ~1,239 tests, ~9,083 minutes of
// traces, >3,800 km across five states. Run with -short to skip.
func TestFullScaleMatchesPaperHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale campaign generation skipped in -short mode")
	}
	ds := Generate(Config{Seed: 42, Scale: 1.0})
	t.Logf("full scale: %d tests, %.0f trace-min, %.0f km, %d drives",
		len(ds.Tests), ds.TotalTestMin, ds.TotalKm, len(ds.Drives))

	if math.Abs(float64(len(ds.Tests))-PaperTests)/PaperTests > 0.20 {
		t.Errorf("tests = %d, paper %d (±20%%)", len(ds.Tests), PaperTests)
	}
	if math.Abs(ds.TotalTestMin-PaperTraceMin)/PaperTraceMin > 0.20 {
		t.Errorf("trace minutes = %.0f, paper %d (±20%%)", ds.TotalTestMin, PaperTraceMin)
	}
	if ds.TotalKm < PaperTotalKm {
		t.Errorf("distance = %.0f km, paper >%d", ds.TotalKm, PaperTotalKm)
	}
	states := map[string]bool{}
	for _, d := range ds.Drives {
		states[d.State] = true
	}
	if len(states) != 5 {
		t.Errorf("states = %d, want 5", len(states))
	}
}
