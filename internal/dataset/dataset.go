// Package dataset generates the synthetic equivalent of the paper's
// driving dataset (§3.3): five devices (Starlink Roam, Starlink
// Mobility, AT&T, T-Mobile, Verizon) measured side by side along drives
// across five states, yielding network tests (iPerf TCP/UDP up/down,
// parallel TCP, UDP-Ping) tagged with GPS, speed and area type. At full
// scale the campaign matches the paper's headline numbers: ~1,239
// tests, ~9,000 minutes of traces, >3,800 km driven.
package dataset

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"satcell/internal/channel"
	"satcell/internal/faults"
	"satcell/internal/geo"
	"satcell/internal/mobility"
	"satcell/internal/obs"
	"satcell/internal/stats"
)

// Kind is the type of one network test.
type Kind int

// Test kinds, mirroring the paper's §3.2 toolset.
const (
	UDPDown Kind = iota
	UDPUp
	TCPDown
	TCPDown4P
	TCPDown8P
	TCPUp
	Ping
)

// String returns the short name of the test kind.
func (k Kind) String() string {
	switch k {
	case UDPDown:
		return "udp-down"
	case UDPUp:
		return "udp-up"
	case TCPDown:
		return "tcp-down"
	case TCPDown4P:
		return "tcp-down-4p"
	case TCPDown8P:
		return "tcp-down-8p"
	case TCPUp:
		return "tcp-up"
	case Ping:
		return "udp-ping"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Parallel returns the number of parallel TCP streams of the kind.
func (k Kind) Parallel() int {
	switch k {
	case TCPDown4P:
		return 4
	case TCPDown8P:
		return 8
	default:
		return 1
	}
}

// Outcome classifies how one campaign test ended. The paper's field
// campaign (§3.3) loses tests to tunnels, obstructions and 15 s
// reallocation epochs; recording the outcome keeps those windows in
// the dataset as explicit partial/failed tests instead of silent rows
// of zeros that pollute the distributions.
type Outcome int

// Test outcomes.
const (
	// OutcomeComplete: the window had usable connectivity throughout
	// (outage share below the truncation threshold).
	OutcomeComplete Outcome = iota
	// OutcomeTruncated: a significant share of the window was in
	// outage; the recorded figures cover the surviving seconds.
	OutcomeTruncated
	// OutcomeFailed: the window produced no usable measurement at all
	// (no records, or every second in outage).
	OutcomeFailed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeComplete:
		return "complete"
	case OutcomeTruncated:
		return "truncated"
	case OutcomeFailed:
		return "failed"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// truncatedOutageShare is the outage fraction above which a test is
// classified truncated: a quarter of the window spent dark means the
// transport spent much of the test reconnecting, not measuring.
const truncatedOutageShare = 0.25

// classifyOutcome derives a test's outcome from its channel records.
// It is a pure function of the (deterministic) records, so the same
// campaign seed always yields the same classification.
func classifyOutcome(recs []channel.Record) Outcome {
	if len(recs) == 0 {
		return OutcomeFailed
	}
	outage := 0
	for _, r := range recs {
		if r.Sample.Outage {
			outage++
		}
	}
	switch {
	case outage == len(recs):
		return OutcomeFailed
	case float64(outage) >= truncatedOutageShare*float64(len(recs)):
		return OutcomeTruncated
	default:
		return OutcomeComplete
	}
}

// testRotation is the repeating order of test windows during a drive.
var testRotation = []Kind{
	UDPDown, TCPDown, Ping, UDPUp, UDPDown, TCPDown4P,
	TCPDown, UDPDown, TCPDown8P, Ping, TCPUp, UDPDown,
}

// Test is one per-device network test (the paper's unit: 1,239 of them).
type Test struct {
	ID      int
	Network channel.NetworkID
	Kind    Kind
	// Drive indexes the Dataset.Drives entry the test window was carved
	// from; the streaming analyzer shards the campaign on it.
	Drive    int
	Route    string
	State    string
	Start    time.Duration // offset into the drive
	Duration time.Duration

	// Environment summary over the test window.
	Area         geo.AreaType // majority area type
	MeanSpeedKmh float64

	// Outcome classifies the test: complete, truncated (significant
	// outage share) or failed (no usable measurement).
	Outcome Outcome

	// Channel observations (per second).
	Records []channel.Record

	// Results.
	ThroughputMbps float64   // goodput of the test's transport
	Series         []float64 // per-second goodput
	RTTsMs         []float64 // ping tests
	LossRate       float64
	RetransRate    float64 // TCP tests
}

// Drive is one route traversal with the channel observations of all
// five devices for its entire duration.
type Drive struct {
	Route    string
	State    string
	Fixes    []mobility.Fix
	Observed map[channel.NetworkID][]channel.Record
}

// Trace extracts the continuous channel trace of one network over the
// whole drive.
func (d *Drive) Trace(n channel.NetworkID) *channel.Trace {
	recs := d.Observed[n]
	tr := &channel.Trace{Network: n}
	for _, r := range recs {
		tr.Samples = append(tr.Samples, r.Sample)
	}
	return tr
}

// Dataset is the complete campaign output.
type Dataset struct {
	Drives []Drive
	Tests  []Test

	// Networks is the campaign's measured network set in iteration
	// order; consumers (analyses, export, reports) iterate this instead
	// of assuming the built-in five.
	Networks []channel.NetworkID
	// Scenario names the scenario the campaign ran (may be empty).
	Scenario string

	// Quarantined itemises the drives generation gave up on under
	// Config.Degrade (sorted by drive index). Their Drives slots remain
	// — indices name shards — but hold no observations and no tests.
	Quarantined []DriveFailure

	TotalKm      float64
	TotalTestMin float64
	Seed         int64
}

// Config controls campaign generation.
type Config struct {
	// Seed makes the whole campaign reproducible.
	Seed int64
	// Scale scales the campaign length: 1.0 reproduces the paper's
	// ~3,800 km / ~1,239 tests; smaller values generate proportionally
	// less. Default 0.05.
	Scale float64
	// Scenario declares the campaign: network subset (and the catalog
	// resolving it), route mix, test matrix and optionally the seed.
	// Nil means the default scenario — the paper's five networks over
	// the default routes with the §3.2 rotation — which reproduces the
	// seed dataset bit-identically. Generate panics on an invalid
	// scenario; callers taking user input should Validate first.
	Scenario *Scenario
	// Routes overrides the drive corpus (default: the scenario's
	// routes, then mobility.DefaultRoutes).
	Routes []*mobility.Route
	// Workers bounds the goroutines simulating drives and evaluating
	// tests; 0 (the default) uses runtime.GOMAXPROCS(0). The campaign
	// is bit-identical for every worker count.
	Workers int
	// Metrics, when non-nil, exposes generation progress: campaign
	// totals (dataset.drives_total / dataset.tests_total), live done
	// counters, per-worker throughput (dataset.worker.NN.tests), and
	// sampled dataset.tests_per_sec / dataset.eta_sec gauges — so a
	// long full-scale run can be watched from the debug endpoint.
	// Instrumentation never feeds back into generation: the campaign
	// stays bit-identical with or without it.
	Metrics *obs.Registry
	// Spans, when non-nil, is the flight-recorder parent under which
	// generation opens one child span per (drive, network) sampling unit
	// (worker-tagged, outcome ok/retried/quarantined/cancelled). Unit
	// granularity keeps the per-sample loop span-free, and — like
	// Metrics — spans observe generation without feeding back into it.
	Spans *obs.Span

	// Degrade turns on degrade-don't-abort generation: every (drive,
	// network) sampling unit runs behind a recover fence, transient
	// failures are retried with the shared backoff policy, and a unit
	// that panics or exhausts its retries quarantines its whole drive
	// (recorded in Dataset.Quarantined) instead of aborting the run.
	// Off by default: the fenceless path is the one the golden-digest
	// tests pin.
	Degrade bool
	// MaxUnitRetries bounds transient retries per generation unit under
	// Degrade; 0 means the default (2), negative means no retries.
	MaxUnitRetries int
	// UnitRetryBackoff is the base of the capped-jittered retry backoff
	// under Degrade; 0 means the default (5ms).
	UnitRetryBackoff time.Duration
	// BeforeUnit, if set, runs before each (drive, network) sampling
	// unit — the generation sibling of ExportOptions.BeforeFile. The
	// chaos tests use it to inject unit failures and crash points; an
	// error or panic from it is handled per the Degrade taxonomy.
	BeforeUnit func(drive int, network channel.NetworkID) error
}

// Paper-scale targets (§3.3).
const (
	PaperTotalKm  = 3800
	PaperTests    = 1239
	PaperTraceMin = 9083
)

// Campaign-pacing constants chosen so that a full-scale run reproduces
// the §3.3 headline numbers.
const (
	meanTestSeconds = 440 // ~7.3 min per test window
	meanGapSeconds  = 330 // idle time between windows
)

// Generate runs the campaign and produces the dataset in two passes: a
// cheap serial *planning* pass that fixes the random plan (route order,
// mobility fixes, window offsets/durations/kinds — everything drawn
// from the shared campaign RNG), and an expensive *execution* pass that
// fans channel sampling and per-test transport evaluation out across a
// worker pool. Every unit of execution work owns a derived RNG, so the
// output is bit-identical for every Config.Workers value — including
// the original single-threaded generator.
func Generate(cfg Config) *Dataset {
	ds, err := GenerateContext(context.Background(), cfg)
	if err != nil {
		// Background never cancels; GenerateContext has no other errors.
		panic(err)
	}
	return ds
}

// GenerateContext is Generate with cooperative cancellation: worker
// units observe ctx between items, and a cancelled context returns
// ctx.Err() instead of a dataset. Cancellation is the only error —
// invalid scenarios still panic, and Degrade failures degrade.
func GenerateContext(ctx context.Context, cfg Config) (*Dataset, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 0.05
	}
	sc := cfg.Scenario
	if sc == nil {
		sc = DefaultScenario()
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
	routes := cfg.Routes
	if len(routes) == 0 {
		routes = sc.routes()
	}
	nets := sc.networks()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	ds := &Dataset{Seed: cfg.Seed, Networks: nets, Scenario: sc.Name}
	drives, tests := planCampaign(cfg, routes, nets, sc.rotation(), ds)

	reg := cfg.Metrics
	reg.Gauge("dataset.drives_total").Set(float64(len(drives)))
	reg.Gauge("dataset.tests_total").Set(float64(len(tests)))
	testsDone := reg.Counter("dataset.tests_done")
	genStart := time.Now()
	// Rate and ETA are sampled at scrape time from the done counter.
	// After Generate returns the rate decays toward zero and the ETA
	// pins at zero — the natural reading for a finished campaign.
	reg.RegisterFunc("dataset.tests_per_sec", func() float64 {
		el := time.Since(genStart).Seconds()
		if el <= 0 {
			return 0
		}
		return float64(testsDone.Value()) / el
	})
	reg.RegisterFunc("dataset.eta_sec", func() float64 {
		done := testsDone.Value()
		el := time.Since(genStart).Seconds()
		if done <= 0 || el <= 0 {
			return 0
		}
		remaining := float64(len(tests)) - float64(done)
		if remaining <= 0 {
			return 0
		}
		return remaining / (float64(done) / el)
	})

	ds.Drives, ds.Quarantined = executeDrives(ctx, drives, nets, modelBuilders(sc, nets, cfg.Seed), workers, &cfg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Quarantined drives contribute no tests; surviving test IDs were
	// assigned at planning and do not shift.
	if len(ds.Quarantined) > 0 {
		kept := tests[:0]
		for _, t := range tests {
			if !ds.DriveQuarantined(t.drive) {
				kept = append(kept, t)
			}
		}
		tests = kept
	}
	ds.Tests = executeTests(ctx, tests, ds.Drives, cfg.Seed, workers, reg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}

// drivePlan is the planning-pass record of one route traversal: the
// mobility fixes consume the shared campaign RNG and determine the
// drive duration the windows are carved from.
type drivePlan struct {
	route *mobility.Route
	fixes []mobility.Fix
}

// testPlan schedules one test window of one network for execution.
type testPlan struct {
	id    int
	drive int
	net   channel.NetworkID
	kind  Kind
	start time.Duration
	dur   time.Duration
}

// planCampaign runs the serial planning pass. It consumes the shared
// campaign RNG in exactly the order the original serial generator did
// (per drive: mobility draws, then window offset/duration/gap draws),
// so the plan — and with it the whole dataset — is unchanged.
func planCampaign(cfg Config, routes []*mobility.Route, nets []channel.NetworkID, rotation []Kind, ds *Dataset) ([]drivePlan, []testPlan) {
	gaz := geo.DefaultGazetteer()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var drives []drivePlan
	var tests []testPlan
	targetKm := PaperTotalKm * cfg.Scale
	testID := 0
	for ri := 0; ds.TotalKm < targetKm; ri++ {
		route := routes[ri%len(routes)]
		fixes := mobility.Drive(route, gaz, mobility.DriveConfig{}, rng)
		ds.TotalKm += lastDist(fixes)
		duration := time.Duration(0)
		if len(fixes) > 0 {
			duration = fixes[len(fixes)-1].At
		}

		// Carve the drive into test windows.
		offset := time.Duration(rng.Intn(60)) * time.Second
		rot := 0
		for offset < duration {
			dur := time.Duration(float64(meanTestSeconds)*(0.6+0.8*rng.Float64())) * time.Second
			if offset+dur > duration {
				break
			}
			kind := rotation[rot%len(rotation)]
			rot++
			for _, n := range nets {
				tests = append(tests, testPlan{
					id: testID, drive: len(drives), net: n,
					kind: kind, start: offset, dur: dur,
				})
				testID++
				ds.TotalTestMin += dur.Minutes()
			}
			offset += dur + time.Duration(float64(meanGapSeconds)*(0.6+0.8*rng.Float64()))*time.Second
		}
		drives = append(drives, drivePlan{route: route, fixes: fixes})
	}
	return drives, tests
}

// modelBuilders resolves each scenario network to its channel-model
// builder through the catalog. Each spec's BuildFunc derives its model
// seed from the campaign seed plus the spec's offset — the built-in
// offsets reproduce the original generator's per-network seeds, so the
// default campaign is unchanged. Execution builds a fresh model per
// (drive, network) unit of work; because a fresh model starts its
// stream from the seed exactly like Reset() did between drives, the
// per-drive sample streams are unchanged too.
func modelBuilders(sc *Scenario, nets []channel.NetworkID, seed int64) map[channel.NetworkID]channel.Builder {
	cat := sc.catalog()
	builders := make(map[channel.NetworkID]channel.Builder, len(nets))
	for _, n := range nets {
		b, err := cat.Builder(n, seed)
		if err != nil {
			// Validate ran before planning; reaching this means the
			// catalog mutated mid-generation.
			panic(err)
		}
		builders[n] = b
	}
	return builders
}

// executeDrives samples every (drive, network) channel observation
// sequence across the worker pool. Under cfg.Degrade each unit runs
// behind a recover fence with transient retries; a unit that panics or
// exhausts its retries quarantines its whole drive, and the pool moves
// on. The fenceless default path is byte-for-byte the original one.
func executeDrives(ctx context.Context, plans []drivePlan, nets []channel.NetworkID, builders map[channel.NetworkID]channel.Builder, workers int, cfg *Config) ([]Drive, []DriveFailure) {
	reg := cfg.Metrics
	sampled := make([][][]channel.Record, len(plans))
	for i := range sampled {
		sampled[i] = make([][]channel.Record, len(nets))
	}
	unitsDone := reg.Counter("dataset.drive_units_done")
	// samplesDone ticks once per channel sample — fine-grained enough
	// that a stall watchdog can tell "one long unit, still sampling"
	// from "wedged" at any campaign scale.
	samplesDone := reg.Counter("dataset.samples_done")
	unitRetries := reg.Counter("dataset.unit_retries")
	drivesQuarantined := reg.Counter("dataset.drives_quarantined")

	var mu sync.Mutex
	quarantined := make(map[int]*DriveFailure)
	isQuarantined := func(di int) bool {
		mu.Lock()
		defer mu.Unlock()
		return quarantined[di] != nil
	}
	quarantine := func(f *DriveFailure) {
		mu.Lock()
		defer mu.Unlock()
		// First failure wins: a drive is quarantined once, whichever of
		// its units trips first in pool order.
		if quarantined[f.Drive] == nil {
			quarantined[f.Drive] = f
			drivesQuarantined.Inc()
		}
	}
	maxRetries := cfg.MaxUnitRetries
	if maxRetries == 0 {
		maxRetries = 2
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	backoff := cfg.UnitRetryBackoff
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}

	forEachIndexWorker(workers, len(plans)*len(nets), func(w, k int) {
		di, ni := k/len(nets), k%len(nets)
		if ctx.Err() != nil {
			return
		}
		n := nets[ni]
		// One flight-recorder span per sampling unit, worker-tagged so the
		// report can chart generation-pool utilization. The slot id feeds
		// only the span label, never the sampled bytes.
		span := cfg.Spans.Child(obs.SpanUnit,
			obs.WorkerPrefix(w)+fmt.Sprintf("drive%03d:%s", di, n))
		runUnit := func() error {
			if cfg.BeforeUnit != nil {
				if err := cfg.BeforeUnit(di, n); err != nil {
					return err
				}
			}
			m := builders[n]()
			fixes := plans[di].fixes
			recs := make([]channel.Record, len(fixes))
			for j, f := range fixes {
				env := channel.Env{At: f.At, Pos: f.Pos, SpeedKmh: f.SpeedKmh, Area: f.Area}
				recs[j] = channel.Record{Env: env, Sample: m.Sample(env)}
				samplesDone.Inc()
			}
			sampled[di][ni] = recs
			return nil
		}
		if !cfg.Degrade {
			if err := runUnit(); err != nil {
				// BeforeUnit is a degrade-mode seam; without the taxonomy
				// there is nowhere to degrade to, so fail loudly.
				panic(err)
			}
			span.End(obs.SpanOK, "")
			unitsDone.Inc()
			return
		}
		if isQuarantined(di) {
			span.End(obs.SpanQuarantined, "drive already quarantined")
			unitsDone.Inc()
			return
		}
		for attempt := 1; ; attempt++ {
			err := runFenced(runUnit)
			if err == nil {
				if attempt > 1 {
					span.End(obs.SpanRetried, fmt.Sprintf("ok after %d attempts", attempt))
				} else {
					span.End(obs.SpanOK, "")
				}
				break
			}
			if ctx.Err() != nil {
				// Cancellation mid-unit is the run stopping, not the drive
				// failing: leave no quarantine record behind.
				span.End(obs.SpanCancelled, ctx.Err().Error())
				return
			}
			var pe *unitPanic
			if errors.As(err, &pe) {
				quarantine(&DriveFailure{
					Drive: di, Route: plans[di].route.Name, Network: n,
					Attempts: attempt, Class: FailPanic, Err: err.Error(),
				})
				span.End(obs.SpanQuarantined, err.Error())
				break
			}
			if attempt > maxRetries {
				quarantine(&DriveFailure{
					Drive: di, Route: plans[di].route.Name, Network: n,
					Attempts: attempt, Class: FailTransient, Err: err.Error(),
				})
				span.End(obs.SpanQuarantined, err.Error())
				break
			}
			unitRetries.Inc()
			select {
			case <-ctx.Done():
				span.End(obs.SpanCancelled, ctx.Err().Error())
				return
			case <-time.After(faults.BackoffDelay(backoff, k, attempt)):
			}
		}
		unitsDone.Inc()
	})

	out := make([]Drive, len(plans))
	for i, p := range plans {
		d := Drive{Route: p.route.Name, State: p.route.State, Fixes: p.fixes}
		if quarantined[i] == nil {
			d.Observed = make(map[channel.NetworkID][]channel.Record, len(nets))
			for ni, n := range nets {
				d.Observed[n] = sampled[i][ni]
			}
		}
		out[i] = d
	}
	fails := make([]DriveFailure, 0, len(quarantined))
	for _, f := range quarantined {
		fails = append(fails, *f)
	}
	sort.Slice(fails, func(i, j int) bool { return fails[i].Drive < fails[j].Drive })
	return out, fails
}

// runFenced runs one generation unit behind a recover fence, converting
// a panic into a *unitPanic error for the taxonomy.
func runFenced(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &unitPanic{val: r}
		}
	}()
	return fn()
}

// executeTests evaluates every planned test window across the worker
// pool. Each test draws from its own derived RNG (seed ^ id), so the
// evaluation order cannot change results. Per-worker counters show how
// the pool's work balanced; they label worker slots, never steer them.
func executeTests(ctx context.Context, plans []testPlan, drives []Drive, seed int64, workers int, reg *obs.Registry) []Test {
	out := make([]Test, len(plans))
	done := reg.Counter("dataset.tests_done")
	perWorker := make([]*obs.Counter, workers)
	for w := range perWorker {
		perWorker[w] = reg.Counter(fmt.Sprintf("dataset.worker.%02d.tests", w))
	}
	forEachIndexWorker(workers, len(plans), func(w, i int) {
		if ctx.Err() != nil {
			return
		}
		p := plans[i]
		trng := rand.New(rand.NewSource(seed ^ int64(p.id+1)*0x9E3779B9))
		out[i] = buildTest(p.id, p.net, p.kind, drives[p.drive], p.start, p.dur, trng)
		out[i].Drive = p.drive
		done.Inc()
		perWorker[w].Inc()
	})
	return out
}

func (d *Drive) duration() time.Duration {
	if len(d.Fixes) == 0 {
		return 0
	}
	return d.Fixes[len(d.Fixes)-1].At
}

func lastDist(fixes []mobility.Fix) float64 {
	if len(fixes) == 0 {
		return 0
	}
	return fixes[len(fixes)-1].DistKm
}

// buildTest evaluates one test window for one device.
func buildTest(id int, n channel.NetworkID, kind Kind, drive Drive,
	start, dur time.Duration, rng *rand.Rand) Test {

	recs := window(drive.Observed[n], start, start+dur)
	t := Test{
		ID: id, Network: n, Kind: kind,
		Route: drive.Route, State: drive.State,
		Start: start, Duration: dur,
		Records: recs,
	}
	t.evaluate(rng)
	return t
}

// Reevaluate rederives the test's measured results (environment
// summary, outcome, series, RTTs, throughput, loss and retransmission
// rates) from its channel Records, reproducing the campaign generator's
// per-test derived RNG stream for the given campaign seed. The
// streaming store path uses it to rebuild full tests from persisted
// trace shards: given bit-identical Records it reproduces generation
// bit-identically, and it is deterministic in the records regardless of
// scan order or worker count.
func (t *Test) Reevaluate(seed int64) {
	t.evaluate(rand.New(rand.NewSource(seed ^ int64(t.ID+1)*0x9E3779B9)))
}

// evaluate computes a test's derived fields from t.Records, consuming
// rng exactly like the original generator (the transport simulations
// draw from it), so generation and replay share one code path.
func (t *Test) evaluate(rng *rand.Rand) {
	recs := t.Records
	kind, start := t.Kind, t.Start
	t.Area = majorityArea(recs)
	t.MeanSpeedKmh = meanSpeed(recs)
	t.Outcome = classifyOutcome(recs)
	t.Series, t.RTTsMs = nil, nil
	t.ThroughputMbps, t.LossRate, t.RetransRate = 0, 0, 0

	tr := &channel.Trace{Network: t.Network}
	for _, r := range recs {
		s := r.Sample
		s.At -= start
		tr.Samples = append(tr.Samples, s)
	}

	switch kind {
	case UDPDown:
		t.Series = tr.DownSeries()
		t.ThroughputMbps = stats.Mean(t.Series)
		t.LossRate = meanLoss(recs, false)
	case UDPUp:
		t.Series = tr.UpSeries()
		t.ThroughputMbps = stats.Mean(t.Series)
		t.LossRate = meanLoss(recs, true)
	case TCPDown, TCPDown4P, TCPDown8P:
		res := FluidTCP{Flows: kind.Parallel()}.Run(tr, rng)
		t.Series = res.GoodputMbps
		t.ThroughputMbps = res.MeanGoodputMbps
		t.RetransRate = res.RetransRate
		t.LossRate = meanLoss(recs, false)
	case TCPUp:
		up := flipTrace(tr)
		res := FluidTCP{Flows: 1}.Run(up, rng)
		t.Series = res.GoodputMbps
		t.ThroughputMbps = res.MeanGoodputMbps
		t.RetransRate = res.RetransRate
		t.LossRate = meanLoss(recs, true)
	case Ping:
		for _, r := range recs {
			if r.Sample.Outage || r.Sample.RTT == 0 {
				t.LossRate++
				continue
			}
			// Probe loss follows the channel loss of both directions.
			if rng.Float64() < r.Sample.LossUp+r.Sample.LossDown {
				t.LossRate++
				continue
			}
			t.RTTsMs = append(t.RTTsMs, r.Sample.RTT.Seconds()*1000)
		}
		if len(recs) > 0 {
			t.LossRate /= float64(len(recs))
		}
		// A ping window with every probe lost measured nothing.
		if len(t.RTTsMs) == 0 {
			t.Outcome = OutcomeFailed
		}
	}
}

// flipTrace swaps up and down so the fluid model (which reads DownMbps/
// LossDown) evaluates the uplink direction.
func flipTrace(tr *channel.Trace) *channel.Trace {
	out := &channel.Trace{Network: tr.Network}
	for _, s := range tr.Samples {
		s.DownMbps, s.UpMbps = s.UpMbps, s.DownMbps
		s.LossDown, s.LossUp = s.LossUp, s.LossDown
		out.Samples = append(out.Samples, s)
	}
	return out
}

func window(recs []channel.Record, from, to time.Duration) []channel.Record {
	out := make([]channel.Record, 0, int((to-from)/time.Second)+1)
	for _, r := range recs {
		if r.Env.At >= from && r.Env.At < to {
			out = append(out, r)
		}
	}
	return out
}

func majorityArea(recs []channel.Record) geo.AreaType {
	counts := map[geo.AreaType]int{}
	for _, r := range recs {
		counts[r.Env.Area]++
	}
	best := geo.Rural
	bestN := -1
	for _, a := range geo.AreaTypes {
		if counts[a] > bestN {
			best, bestN = a, counts[a]
		}
	}
	return best
}

func meanSpeed(recs []channel.Record) float64 {
	if len(recs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range recs {
		sum += r.Env.SpeedKmh
	}
	return sum / float64(len(recs))
}

func meanLoss(recs []channel.Record, uplink bool) float64 {
	if len(recs) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range recs {
		if uplink {
			sum += r.Sample.LossUp
		} else {
			sum += r.Sample.LossDown
		}
	}
	return sum / float64(len(recs))
}

// --- Query helpers used by the analyses ---

// Filter returns the tests matching every predicate.
func (ds *Dataset) Filter(preds ...func(*Test) bool) []*Test {
	var out []*Test
outer:
	for i := range ds.Tests {
		t := &ds.Tests[i]
		for _, p := range preds {
			if !p(t) {
				continue outer
			}
		}
		out = append(out, t)
	}
	return out
}

// ByNetwork filters on the measured network.
func ByNetwork(n channel.NetworkID) func(*Test) bool {
	return func(t *Test) bool { return t.Network == n }
}

// ByKind filters on the test kind.
func ByKind(kinds ...Kind) func(*Test) bool {
	return func(t *Test) bool {
		for _, k := range kinds {
			if t.Kind == k {
				return true
			}
		}
		return false
	}
}

// ByArea filters on the majority area type.
func ByArea(a geo.AreaType) func(*Test) bool {
	return func(t *Test) bool { return t.Area == a }
}

// ByOutcome filters on the test outcome.
func ByOutcome(o Outcome) func(*Test) bool {
	return func(t *Test) bool { return t.Outcome == o }
}

// OutcomeCounts tallies the campaign's tests per outcome.
func (ds *Dataset) OutcomeCounts() map[Outcome]int {
	counts := make(map[Outcome]int, 3)
	for i := range ds.Tests {
		counts[ds.Tests[i].Outcome]++
	}
	return counts
}

// Throughputs extracts the throughput of each test.
func Throughputs(tests []*Test) []float64 {
	out := make([]float64, len(tests))
	for i, t := range tests {
		out[i] = t.ThroughputMbps
	}
	return out
}

// SampleCountByArea counts per-second data points per area type across
// all drives (the paper's 29.78 / 34.30 / 35.91 % split).
func (ds *Dataset) SampleCountByArea() map[geo.AreaType]int {
	counts := make(map[geo.AreaType]int)
	for _, d := range ds.Drives {
		for _, f := range d.Fixes {
			counts[f.Area]++
		}
	}
	return counts
}
