package dataset

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"reflect"
	"testing"

	"satcell/internal/channel"
)

// datasetDigest hashes every field of the dataset — drive fixes, all
// per-network channel records, and every test including its per-second
// series — so two datasets share a digest iff they are bit-identical.
func datasetDigest(ds *Dataset) string {
	h := sha256.New()
	fmt.Fprintf(h, "seed=%d km=%v min=%v drives=%d tests=%d\n",
		ds.Seed, ds.TotalKm, ds.TotalTestMin, len(ds.Drives), len(ds.Tests))
	for i := range ds.Drives {
		d := &ds.Drives[i]
		fmt.Fprintf(h, "drive %s %s %v\n", d.Route, d.State, d.Fixes)
		for _, n := range channel.Networks {
			fmt.Fprintf(h, "obs %v %v\n", n, d.Observed[n])
		}
	}
	for i := range ds.Tests {
		fmt.Fprintf(h, "test %+v\n", ds.Tests[i])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestGenerateWorkersBitIdentical is the parallel-pipeline determinism
// gate: the same seed must produce bit-identical datasets (tests, KPIs,
// drive records) no matter how many workers execute the plan.
func TestGenerateWorkersBitIdentical(t *testing.T) {
	base := Generate(Config{Seed: 7, Scale: 0.05, Workers: 1})
	want := datasetDigest(base)
	for _, workers := range []int{2, 4, 8} {
		ds := Generate(Config{Seed: 7, Scale: 0.05, Workers: workers})
		if got := datasetDigest(ds); got != want {
			t.Fatalf("Workers=%d digest %s != Workers=1 digest %s", workers, got, want)
		}
	}

	// Spot-check structural equality too, so a digest-helper bug cannot
	// mask a real divergence.
	other := Generate(Config{Seed: 7, Scale: 0.05, Workers: 8})
	if len(other.Tests) != len(base.Tests) {
		t.Fatalf("test counts differ: %d vs %d", len(other.Tests), len(base.Tests))
	}
	for i := range base.Tests {
		if !reflect.DeepEqual(base.Tests[i], other.Tests[i]) {
			t.Fatalf("test %d differs between Workers=1 and Workers=8", i)
		}
	}
	if !reflect.DeepEqual(base.Drives, other.Drives) {
		t.Fatal("drive records differ between Workers=1 and Workers=8")
	}
}

// TestGenerateGoldenDigest pins the campaign output against the digest
// of the original single-threaded generator, guarding the guarantee
// that the planning/execution split changed nothing. Update the golden
// value only when an intentional model or campaign change lands.
// (Updated when Test.Outcome was added, and again when Test.Drive was
// added: the digest hashes every Test field, and both are part of the
// campaign output. The measured values themselves were unchanged both
// times.)
func TestGenerateGoldenDigest(t *testing.T) {
	const golden = "1d75d2d3292b23d6a0087f376388ef65c6f9bd6a768f2ef8499663816fb2b81f"
	ds := Generate(Config{Seed: 7, Scale: 0.02})
	if got := datasetDigest(ds); got != golden {
		t.Fatalf("seed=7 scale=0.02 digest = %s, want %s", got, golden)
	}
}
