package dataset

import (
	"math"
	"math/rand"

	"satcell/internal/channel"
	"satcell/internal/tcp"
)

// FluidTCP is a per-second fluid approximation of one or more parallel
// TCP flows over a channel trace: AIMD window dynamics driven by the
// trace's loss probability and capacity (queue overflow), with slow
// start and outage handling. It exists because simulating every one of
// the campaign's thousands of TCP tests at packet level would be
// needlessly slow; internal/tcp is the ground truth it is validated
// against (see TestFluidMatchesPacketLevel).
type FluidTCP struct {
	// Flows is the number of parallel connections (the paper's "P").
	Flows int
	// QueueBytes is the bottleneck buffer assumption (default 1 MB).
	QueueBytes int
}

// FluidResult summarises a fluid TCP run.
type FluidResult struct {
	MeanGoodputMbps float64
	GoodputMbps     []float64 // per trace sample
	RetransRate     float64
	sentPkts        float64
	lostPkts        float64
}

// Run evaluates the model over tr using rng for loss-event draws.
func (f FluidTCP) Run(tr *channel.Trace, rng *rand.Rand) FluidResult {
	flows := f.Flows
	if flows <= 0 {
		flows = 1
	}
	queue := float64(f.QueueBytes)
	if queue <= 0 {
		queue = 1 << 20
	}

	// Per-flow windows in bytes; slow-start thresholds; CUBIC-style
	// pre-loss window marks for concave catch-up growth.
	w := make([]float64, flows)
	ssthresh := make([]float64, flows)
	wMax := make([]float64, flows)
	for i := range w {
		w[i] = 10 * tcp.MSS
		ssthresh[i] = math.Inf(1)
	}

	var res FluidResult
	var sum float64
	for i, s := range tr.Samples {
		dt := 1.0
		if i+1 < len(tr.Samples) {
			dt = (tr.Samples[i+1].At - s.At).Seconds()
		}
		if dt <= 0 {
			continue
		}
		if s.Outage || s.DownMbps <= 0.05 {
			// Connection stalls; windows collapse to the minimum by
			// RTOs. Only the first outage second halves ssthresh (no
			// new flights time out while nothing is being sent); the
			// RTO probes show up in a tcpdump as retransmissions.
			for j := range w {
				if w[j] > 2*tcp.MSS {
					ssthresh[j] = math.Max(w[j]/2, 2*tcp.MSS)
					wMax[j] = w[j]
				}
				w[j] = 2 * tcp.MSS
				res.sentPkts += 5
				res.lostPkts += 4
			}
			res.GoodputMbps = append(res.GoodputMbps, 0)
			continue
		}
		rtt := s.RTT.Seconds()
		if rtt <= 0 {
			rtt = 0.05
		}
		capBps := s.DownMbps * 1e6 / 8 // bytes/s
		bdp := capBps * rtt

		// Queue overflow desynchronizes parallel flows: droptail hits
		// the flow bursting hardest, so only the largest window halves
		// (this is why parallelism keeps the pipe full, §4.2).
		total := 0.0
		victim := 0
		for j, wj := range w {
			total += wj
			if wj > w[victim] {
				victim = j
			}
		}
		if total > bdp+queue {
			wMax[victim] = w[victim]
			ssthresh[victim] = math.Max(w[victim]/2, 2*tcp.MSS)
			w[victim] = ssthresh[victim]
			res.lostPkts += 2
		}

		goodput := 0.0
		for j := range w {
			share := capBps / float64(flows)
			rate := math.Min(w[j]/rtt, share+math.Max(0, capBps-usedCap(w, rtt, capBps, j)))
			rate = math.Min(rate, capBps)
			pkts := rate * dt / tcp.MSS
			res.sentPkts += pkts

			// Random-loss episodes: all losses within one RTT collapse
			// into a single halving (SACK recovery). Episodes are drawn
			// sequentially because each halving reduces the rate and so
			// the chance of further losses within the same second. A
			// Burst second (handover gap) is exactly one episode.
			halvings := 0
			if s.Burst {
				halvings = 1
			} else if s.LossDown > 0 {
				remaining := dt
				wNow := w[j]
				for halvings < 6 {
					rateNow := math.Min(wNow/rtt, capBps)
					perRTT := 1 - math.Exp(-rateNow*rtt/tcp.MSS*s.LossDown)
					if perRTT <= 1e-9 {
						break
					}
					tNext := rtt / perRTT * rng.ExpFloat64()
					if tNext > remaining {
						break
					}
					remaining -= tNext
					wNow = math.Max(wNow/2, 2*tcp.MSS)
					halvings++
				}
			}
			res.lostPkts += pkts * s.LossDown

			switch {
			case halvings > 0:
				wMax[j] = w[j]
				for h := 0; h < halvings; h++ {
					ssthresh[j] = math.Max(w[j]/2, 2*tcp.MSS)
					w[j] = ssthresh[j]
				}
			case w[j] < ssthresh[j]:
				// Slow start: double per RTT, capped by ssthresh.
				w[j] = math.Min(w[j]*math.Pow(2, dt/rtt), ssthresh[j])
				if math.IsInf(ssthresh[j], 1) {
					// Delay-based exit once the BDP share is reached.
					limit := (bdp + 0.2*queue) / float64(flows)
					if w[j] > limit {
						w[j] = limit
						ssthresh[j] = limit
					}
				}
			default:
				// Congestion avoidance. Modern stacks (CUBIC) climb
				// back toward the pre-loss window concavely within a
				// few seconds, then probe Reno-style beyond it.
				growth := tcp.MSS * dt / rtt
				if w[j] < wMax[j] {
					catchUp := (wMax[j] - w[j]) * (1 - math.Exp(-dt/3))
					if catchUp > growth {
						growth = catchUp
					}
				}
				w[j] += growth
			}
			// The window cannot outgrow the pipe plus buffer share.
			w[j] = math.Min(w[j], (bdp+queue)/float64(flows)*1.5)
			goodput += rate * (1 - s.LossDown)
		}
		goodput = math.Min(goodput, capBps)
		mbps := goodput * 8 / 1e6
		res.GoodputMbps = append(res.GoodputMbps, mbps)
		sum += mbps * dt
	}
	if d := tr.Duration().Seconds(); d > 0 {
		res.MeanGoodputMbps = sum / d
	}
	if res.sentPkts > 0 {
		res.RetransRate = res.lostPkts / res.sentPkts
		if res.RetransRate > 1 {
			res.RetransRate = 1
		}
	}
	return res
}

// usedCap sums the offered rate of all flows except j.
func usedCap(w []float64, rtt, capBps float64, j int) float64 {
	used := 0.0
	for k, wk := range w {
		if k == j {
			continue
		}
		used += math.Min(wk/rtt, capBps)
	}
	return used
}
