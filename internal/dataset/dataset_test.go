package dataset

import (
	"math/rand"
	"testing"
	"time"

	"satcell/internal/channel"
	"satcell/internal/emu"
	"satcell/internal/geo"
	"satcell/internal/tcp"
)

func smallDataset(t *testing.T) *Dataset {
	t.Helper()
	return Generate(Config{Seed: 7, Scale: 0.02})
}

func TestGenerateBasicShape(t *testing.T) {
	ds := smallDataset(t)
	if len(ds.Drives) == 0 || len(ds.Tests) == 0 {
		t.Fatal("empty dataset")
	}
	if ds.TotalKm < PaperTotalKm*0.02 {
		t.Fatalf("distance %v below target", ds.TotalKm)
	}
	// All five networks must be measured.
	seen := map[channel.Network]int{}
	for i := range ds.Tests {
		seen[ds.Tests[i].Network]++
	}
	for _, n := range channel.Networks {
		if seen[n] == 0 {
			t.Fatalf("network %v has no tests", n)
		}
	}
	// Every test must carry per-second records and a result.
	for i := range ds.Tests {
		ts := &ds.Tests[i]
		if len(ts.Records) == 0 {
			t.Fatalf("test %d has no records", ts.ID)
		}
		if ts.Kind != Ping && ts.ThroughputMbps < 0 {
			t.Fatalf("test %d negative throughput", ts.ID)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 3, Scale: 0.01})
	b := Generate(Config{Seed: 3, Scale: 0.01})
	if len(a.Tests) != len(b.Tests) {
		t.Fatalf("test counts differ: %d vs %d", len(a.Tests), len(b.Tests))
	}
	for i := range a.Tests {
		if a.Tests[i].ThroughputMbps != b.Tests[i].ThroughputMbps {
			t.Fatalf("test %d differs between runs", i)
		}
	}
}

func TestScaleTracksPaperNumbers(t *testing.T) {
	scale := 0.05
	ds := Generate(Config{Seed: 11, Scale: scale})
	// Within a factor-two band of proportional paper numbers (route
	// granularity makes exact matching impossible at tiny scales).
	wantTests := float64(PaperTests) * scale
	if got := float64(len(ds.Tests)); got < wantTests*0.5 || got > wantTests*2.5 {
		t.Fatalf("tests = %v, want ~%v", got, wantTests)
	}
	wantMin := float64(PaperTraceMin) * scale
	if ds.TotalTestMin < wantMin*0.5 || ds.TotalTestMin > wantMin*2.5 {
		t.Fatalf("trace minutes = %v, want ~%v", ds.TotalTestMin, wantMin)
	}
}

func TestAreaMixHasAllThree(t *testing.T) {
	ds := Generate(Config{Seed: 5, Scale: 0.12})
	counts := ds.SampleCountByArea()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no samples")
	}
	for _, a := range geo.AreaTypes {
		frac := float64(counts[a]) / float64(total)
		if frac < 0.08 {
			t.Fatalf("area %v only %.1f%% of samples", a, frac*100)
		}
	}
}

func TestFilterHelpers(t *testing.T) {
	ds := smallDataset(t)
	mob := ds.Filter(ByNetwork(channel.StarlinkMobility), ByKind(UDPDown))
	if len(mob) == 0 {
		t.Fatal("no MOB UDP down tests")
	}
	for _, ts := range mob {
		if ts.Network != channel.StarlinkMobility || ts.Kind != UDPDown {
			t.Fatal("filter returned wrong tests")
		}
	}
	xs := Throughputs(mob)
	if len(xs) != len(mob) {
		t.Fatal("Throughputs length mismatch")
	}
	rural := ds.Filter(ByArea(geo.Rural))
	for _, ts := range rural {
		if ts.Area != geo.Rural {
			t.Fatal("ByArea filter broken")
		}
	}
}

func TestKindStringsAndParallel(t *testing.T) {
	if TCPDown4P.Parallel() != 4 || TCPDown8P.Parallel() != 8 || TCPDown.Parallel() != 1 {
		t.Fatal("Parallel() wrong")
	}
	names := map[Kind]string{
		UDPDown: "udp-down", UDPUp: "udp-up", TCPDown: "tcp-down",
		TCPDown4P: "tcp-down-4p", TCPDown8P: "tcp-down-8p",
		TCPUp: "tcp-up", Ping: "udp-ping",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d: %q != %q", k, k.String(), want)
		}
	}
}

func TestPingTestsHaveRTTs(t *testing.T) {
	ds := smallDataset(t)
	pings := ds.Filter(ByKind(Ping), ByNetwork(channel.Verizon))
	if len(pings) == 0 {
		t.Skip("no VZ ping windows at this scale")
	}
	total := 0
	for _, p := range pings {
		total += len(p.RTTsMs)
		for _, ms := range p.RTTsMs {
			if ms < 20 || ms > 500 {
				t.Fatalf("implausible RTT %v ms", ms)
			}
		}
	}
	if total == 0 {
		t.Fatal("no RTT samples collected")
	}
}

func TestDriveTraceExtraction(t *testing.T) {
	ds := smallDataset(t)
	d := ds.Drives[0]
	tr := d.Trace(channel.StarlinkMobility)
	if len(tr.Samples) != len(d.Fixes) {
		t.Fatalf("trace length %d != fixes %d", len(tr.Samples), len(d.Fixes))
	}
	if tr.Network != channel.StarlinkMobility {
		t.Fatal("trace network wrong")
	}
}

// flatTestTrace builds a constant trace for fluid-model validation.
func flatTestTrace(down float64, rtt time.Duration, loss float64, secs int) *channel.Trace {
	tr := &channel.Trace{Network: channel.StarlinkMobility}
	for i := 0; i <= secs; i++ {
		tr.Samples = append(tr.Samples, channel.Sample{
			At: time.Duration(i) * time.Second, DownMbps: down, UpMbps: down / 10,
			RTT: rtt, LossDown: loss, LossUp: loss / 2,
		})
	}
	return tr
}

// TestFluidMatchesPacketLevel validates the fluid approximation against
// the packet-level simulator across loss regimes: it must stay within a
// factor band, and preserve ordering in loss.
func TestFluidMatchesPacketLevel(t *testing.T) {
	cases := []struct {
		down float64
		rtt  time.Duration
		loss float64
	}{
		{100, 40 * time.Millisecond, 0},
		{100, 40 * time.Millisecond, 0.002},
		{200, 60 * time.Millisecond, 0.005},
		{150, 60 * time.Millisecond, 0.01},
	}
	prevFluid := 1e18
	for _, c := range cases {
		tr := flatTestTrace(c.down, c.rtt, c.loss, 40)
		// Packet level.
		eng := emu.NewEngine()
		dp := emu.NewDuplexPath(eng, tr, emu.PathConfig{Seed: 9, QueueBytes: 1 << 20})
		conn := tcp.NewDownload(eng, dp, 1, tcp.Config{})
		conn.Start()
		eng.RunUntil(30 * time.Second)
		conn.Stop()
		packet := conn.MeanGoodputMbps(30 * time.Second)
		// Fluid.
		fluid := FluidTCP{Flows: 1}.Run(tr, rand.New(rand.NewSource(9))).MeanGoodputMbps
		if fluid < packet/3 || fluid > packet*3 {
			t.Fatalf("loss=%v: fluid %v vs packet %v outside 3x band", c.loss, fluid, packet)
		}
		if c.loss > 0 && fluid > prevFluid*1.3 {
			t.Fatalf("fluid model not (roughly) monotone in loss: %v after %v", fluid, prevFluid)
		}
		prevFluid = fluid
	}
}

func TestFluidParallelismHelpsUnderLoss(t *testing.T) {
	tr := flatTestTrace(150, 60*time.Millisecond, 0.008, 120)
	one := FluidTCP{Flows: 1}.Run(tr, rand.New(rand.NewSource(1))).MeanGoodputMbps
	four := FluidTCP{Flows: 4}.Run(tr, rand.New(rand.NewSource(1))).MeanGoodputMbps
	eight := FluidTCP{Flows: 8}.Run(tr, rand.New(rand.NewSource(1))).MeanGoodputMbps
	if four < one*1.3 {
		t.Fatalf("4P (%v) should clearly beat 1P (%v) under loss", four, one)
	}
	if eight < four*1.05 {
		t.Fatalf("8P (%v) should beat 4P (%v)", eight, four)
	}
	if eight > 150 {
		t.Fatalf("8P (%v) exceeds capacity", eight)
	}
}

func TestFluidOutageCollapses(t *testing.T) {
	tr := &channel.Trace{Network: channel.StarlinkRoam}
	for i := 0; i <= 30; i++ {
		s := channel.Sample{At: time.Duration(i) * time.Second, DownMbps: 100, RTT: 50 * time.Millisecond}
		if i >= 10 && i < 20 {
			s.Outage = true
			s.DownMbps = 0
		}
		tr.Samples = append(tr.Samples, s)
	}
	res := FluidTCP{}.Run(tr, rand.New(rand.NewSource(2)))
	for i, g := range res.GoodputMbps {
		if i >= 10 && i < 20 && g != 0 {
			t.Fatalf("goodput %v during outage second %d", g, i)
		}
	}
	if res.MeanGoodputMbps <= 0 {
		t.Fatal("no goodput outside outage")
	}
}

func TestFluidRetransRateTracksLoss(t *testing.T) {
	tr := flatTestTrace(150, 60*time.Millisecond, 0.006, 120)
	res := FluidTCP{}.Run(tr, rand.New(rand.NewSource(3)))
	if res.RetransRate < 0.003 || res.RetransRate > 0.03 {
		t.Fatalf("retrans rate %v for 0.6%% loss", res.RetransRate)
	}
}
