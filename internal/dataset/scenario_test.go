package dataset

import (
	"strings"
	"testing"

	"satcell/internal/cell"
	"satcell/internal/channel"
	"satcell/internal/leo"
	"satcell/internal/mobility"
	"satcell/internal/networks"
)

func TestScenarioDefaults(t *testing.T) {
	sc := DefaultScenario()
	if err := sc.Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	nets := sc.networks()
	if len(nets) != len(channel.Networks) {
		t.Fatalf("default networks = %v", nets)
	}
	for i, n := range channel.Networks {
		if nets[i] != n {
			t.Fatalf("default network order %v, want %v", nets, channel.Networks)
		}
	}
	if len(sc.routes()) == 0 || len(sc.rotation()) == 0 {
		t.Fatal("default scenario resolved empty routes or rotation")
	}
	// The nil scenario resolves like the default one.
	var nilSc *Scenario
	if got := nilSc.networks(); len(got) != len(nets) {
		t.Fatalf("nil scenario networks = %v", got)
	}
}

func emptyCatalog(t *testing.T) *channel.Catalog {
	t.Helper()
	cat, err := channel.NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		want string // substring of the error, "" means valid
	}{
		{"default", Scenario{}, ""},
		{"subset", Scenario{Networks: []channel.NetworkID{channel.StarlinkRoam, channel.ATT}}, ""},
		{"unknown network", Scenario{Networks: []channel.NetworkID{"NOPE"}}, "unknown network"},
		{"duplicate network", Scenario{Networks: []channel.NetworkID{channel.ATT, channel.ATT}}, "twice"},
		{"invalid sentinel", Scenario{Networks: []channel.NetworkID{channel.NetworkInvalid}}, "unknown network"},
		{"empty catalog", Scenario{Catalog: emptyCatalog(t)}, "no networks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestScenarioValidateNoBuilder: identity-only specs (registered without
// a model factory) must be rejected before generation.
func TestScenarioValidateNoBuilder(t *testing.T) {
	cat := networks.Default().Clone()
	if err := cat.Register(channel.Spec{ID: "GHOST", Name: "Ghost", Class: channel.ClassCellular}); err != nil {
		t.Fatal(err)
	}
	sc := Scenario{Catalog: cat, Networks: []channel.NetworkID{"GHOST"}}
	if err := sc.Validate(); err == nil || !strings.Contains(err.Error(), "no model factory") {
		t.Fatalf("Validate() = %v, want no-model-factory error", err)
	}
}

func TestParseNetworksFlag(t *testing.T) {
	nets, err := ParseNetworks(nil, " RM , MOB,ATT")
	if err != nil {
		t.Fatal(err)
	}
	want := []channel.NetworkID{channel.StarlinkRoam, channel.StarlinkMobility, channel.ATT}
	if len(nets) != len(want) {
		t.Fatalf("nets = %v", nets)
	}
	for i := range want {
		if nets[i] != want[i] {
			t.Fatalf("nets = %v, want %v", nets, want)
		}
	}
	for _, bad := range []string{"", "   ", "RM,,MOB", "RM,NOPE", "RM,RM", ","} {
		if _, err := ParseNetworks(nil, bad); err == nil {
			t.Errorf("ParseNetworks(%q) accepted", bad)
		}
	}
}

func TestParseScenarioGrammar(t *testing.T) {
	routes := mobility.DefaultRoutes()
	sc, err := ParseScenario(nil, nil,
		"networks=MOB,ATT; kinds=udp-down,udp-ping ;seed=11;name=demo;routes="+routes[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "demo" || sc.Seed != 11 {
		t.Fatalf("parsed %+v", sc)
	}
	if len(sc.Networks) != 2 || sc.Networks[0] != channel.StarlinkMobility || sc.Networks[1] != channel.ATT {
		t.Fatalf("networks = %v", sc.Networks)
	}
	if len(sc.Kinds) != 2 || sc.Kinds[0] != UDPDown || sc.Kinds[1] != Ping {
		t.Fatalf("kinds = %v", sc.Kinds)
	}
	if len(sc.Routes) != 1 || sc.Routes[0].Name != routes[0].Name {
		t.Fatalf("routes = %v", sc.Routes)
	}

	// The empty spec is the default campaign.
	sc, err = ParseScenario(nil, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.networks()) != len(channel.Networks) {
		t.Fatalf("empty spec networks = %v", sc.networks())
	}

	for _, bad := range []string{
		"bogus=1",             // unknown key
		"networks",            // not key=value
		"networks=NOPE",       // unknown id
		"kinds=warp-drive",    // unknown kind
		"routes=nowhere",      // unknown route
		"seed=tuesday",        // not an int
		"seed=1;seed=2",       // duplicate clause
		"networks=RM,MOB,RM",  // duplicate id
		"networks=RM;kinds=,", // empty kind item
	} {
		if _, err := ParseScenario(nil, nil, bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted", bad)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("Kind(99)"); err == nil {
		t.Fatal("ParseKind accepted the invalid-kind formatting")
	}
}

// TestGenerateScenarioSubset: a scenario restricted to a network subset
// must produce a dataset whose drives and tests cover exactly that
// subset, and the scenario seed must override Config.Seed.
func TestGenerateScenarioSubset(t *testing.T) {
	sc := &Scenario{
		Name:     "subset",
		Networks: []channel.NetworkID{channel.StarlinkMobility, channel.Verizon},
		Kinds:    []Kind{UDPDown, Ping},
		Seed:     99,
	}
	ds := Generate(Config{Seed: 7, Scale: 0.005, Scenario: sc})
	if ds.Seed != 99 {
		t.Fatalf("Seed = %d, want scenario override 99", ds.Seed)
	}
	if ds.Scenario != "subset" {
		t.Fatalf("Scenario = %q", ds.Scenario)
	}
	if len(ds.Networks) != 2 || ds.Networks[0] != channel.StarlinkMobility || ds.Networks[1] != channel.Verizon {
		t.Fatalf("Networks = %v", ds.Networks)
	}
	want := map[channel.NetworkID]bool{channel.StarlinkMobility: true, channel.Verizon: true}
	for _, d := range ds.Drives {
		if len(d.Observed) != 2 {
			t.Fatalf("drive observed %d networks", len(d.Observed))
		}
		for n := range d.Observed {
			if !want[n] {
				t.Fatalf("drive observed %q", n)
			}
		}
	}
	for i := range ds.Tests {
		tst := &ds.Tests[i]
		if !want[tst.Network] {
			t.Fatalf("test %d network %q", tst.ID, tst.Network)
		}
		if tst.Kind != UDPDown && tst.Kind != Ping {
			t.Fatalf("test %d kind %v outside scenario rotation", tst.ID, tst.Kind)
		}
	}
}

// TestGenerateCustomNetwork: the acceptance gate — a network registered
// through the public catalog API alone must generate, with no edits
// under internal/leo, internal/cell, internal/dataset or internal/core.
func TestGenerateCustomNetwork(t *testing.T) {
	cat := networks.Default().Clone()
	plan := leo.RoamPlan()
	plan.Network = "SL3"
	if err := networks.RegisterSatellite(cat, "Starlink Gen3", plan, 2001); err != nil {
		t.Fatal(err)
	}
	carrier := cell.Carriers()[1]
	carrier.Network = "USC"
	if err := networks.RegisterCellular(cat, "US Cellular", carrier, 2002); err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{
		Catalog:  cat,
		Networks: []channel.NetworkID{channel.StarlinkRoam, "SL3", "USC"},
		Kinds:    []Kind{UDPDown},
	}
	ds := Generate(Config{Seed: 3, Scale: 0.005, Scenario: sc})
	seen := map[channel.NetworkID]int{}
	for i := range ds.Tests {
		seen[ds.Tests[i].Network]++
	}
	for _, n := range sc.Networks {
		if seen[n] == 0 {
			t.Fatalf("no tests for %q (seen %v)", n, seen)
		}
	}
	// Custom-network streams are independent of the built-in ones with
	// the same underlying plan: distinct seed offsets.
	var rm, sl3 *Drive
	if len(ds.Drives) > 0 {
		rm, sl3 = &ds.Drives[0], &ds.Drives[0]
		same := true
		for i, r := range rm.Observed[channel.StarlinkRoam] {
			if r.Sample != sl3.Observed["SL3"][i].Sample {
				same = false
				break
			}
		}
		if same {
			t.Fatal("SL3 stream identical to RM: seed offset not applied")
		}
	}
}

func TestGenerateInvalidScenarioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate accepted an invalid scenario")
		}
	}()
	Generate(Config{Seed: 1, Scale: 0.005, Scenario: &Scenario{
		Networks: []channel.NetworkID{"NOPE"},
	}})
}

// FuzzParseScenario: the -scenario grammar must never panic and must
// only ever return validated scenarios.
func FuzzParseScenario(f *testing.F) {
	for _, seed := range []string{
		"",
		"networks=RM,MOB",
		"networks=RM,MOB;kinds=udp-down,udp-ping;seed=7;name=x",
		"routes=i94-eauclaire;seed=-3",
		"networks=RM;networks=MOB",
		"seed=99999999999999999999",
		"kinds=tcp-down-8p",
		";;;",
		"networks=RM,",
		"name==odd",
		"networks=\"RM\"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		sc, err := ParseScenario(nil, nil, spec)
		if err != nil {
			return
		}
		if verr := sc.Validate(); verr != nil {
			t.Fatalf("ParseScenario(%q) returned invalid scenario: %v", spec, verr)
		}
	})
}

// FuzzParseNetworks: the -networks grammar must never panic; accepted
// lists must be duplicate-free catalog members.
func FuzzParseNetworks(f *testing.F) {
	for _, seed := range []string{"RM", "RM,MOB,ATT,TM,VZ", "", ",", "RM ,MOB", "rm", "RM,RM", "NOPE"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		nets, err := ParseNetworks(nil, spec)
		if err != nil {
			return
		}
		if len(nets) == 0 {
			t.Fatalf("ParseNetworks(%q) returned empty list without error", spec)
		}
		seen := map[channel.NetworkID]bool{}
		for _, n := range nets {
			if seen[n] {
				t.Fatalf("ParseNetworks(%q) returned duplicate %q", spec, n)
			}
			seen[n] = true
			if _, ok := networks.Default().Spec(n); !ok {
				t.Fatalf("ParseNetworks(%q) returned unknown %q", spec, n)
			}
		}
	})
}
