package dataset

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"satcell/internal/channel"
	"satcell/internal/mobility"
	"satcell/internal/networks"
)

// Scenario is a declarative campaign definition: which networks drive
// (a subset of a catalog), over which routes, running which test
// matrix, from which seed. The zero value — and DefaultScenario() — is
// the paper's campaign: all five built-in networks over the default
// five-state route corpus with the §3.2 test rotation. Every consumer
// of a dataset (generation, analyses, export, the cmd tools) iterates
// the scenario's networks instead of a closed enum, so a campaign like
// "MOB plus two custom carriers on rural routes" is a Scenario value,
// not a code change.
type Scenario struct {
	// Name labels the scenario in logs and manifests (optional).
	Name string
	// Catalog resolves network ids to model specs. Nil means the
	// default catalog (the built-in five plus everything registered
	// through the public API).
	Catalog *channel.Catalog
	// Networks is the ordered network subset to measure. Nil or empty
	// means every network of the catalog in registration order. Order
	// matters: it is the campaign iteration order, which the
	// determinism contract pins.
	Networks []channel.NetworkID
	// Routes is the drive corpus. Nil or empty means
	// mobility.DefaultRoutes().
	Routes []*mobility.Route
	// Kinds is the repeating test-window rotation. Nil or empty means
	// the paper's §3.2 rotation.
	Kinds []Kind
	// Seed, when non-zero, overrides Config.Seed so a scenario can pin
	// its campaign seed declaratively.
	Seed int64
}

// DefaultScenario returns the paper's campaign as a scenario value.
func DefaultScenario() *Scenario { return &Scenario{Name: "paper"} }

// catalog returns the scenario's catalog, defaulting to the global one
// (with the built-in model factories attached).
func (s *Scenario) catalog() *channel.Catalog {
	if s != nil && s.Catalog != nil {
		return s.Catalog
	}
	return networks.Default()
}

// networks resolves the ordered network list the campaign measures.
func (s *Scenario) networks() []channel.NetworkID {
	if s != nil && len(s.Networks) > 0 {
		out := make([]channel.NetworkID, len(s.Networks))
		copy(out, s.Networks)
		return out
	}
	return s.catalog().IDs()
}

// routes resolves the drive corpus.
func (s *Scenario) routes() []*mobility.Route {
	if s != nil && len(s.Routes) > 0 {
		return s.Routes
	}
	return mobility.DefaultRoutes()
}

// rotation resolves the test-window rotation.
func (s *Scenario) rotation() []Kind {
	if s != nil && len(s.Kinds) > 0 {
		return s.Kinds
	}
	return testRotation
}

// Validate checks the scenario against its catalog: every network must
// be registered with a model factory attached, the subset must be free
// of duplicates, and the resolved scenario must not be empty (an empty
// catalog, an empty route corpus or an empty rotation measures
// nothing). Generate panics on an invalid scenario, so callers taking
// user input should Validate first and surface the error.
func (s *Scenario) Validate() error {
	cat := s.catalog()
	nets := s.networks()
	if len(nets) == 0 {
		return fmt.Errorf("dataset: empty scenario: no networks (catalog is empty)")
	}
	seen := make(map[channel.NetworkID]bool, len(nets))
	for _, n := range nets {
		if seen[n] {
			return fmt.Errorf("dataset: scenario lists network %q twice", n)
		}
		seen[n] = true
		spec, ok := cat.Spec(n)
		if !ok {
			known := cat.IDs()
			sort.Slice(known, func(i, j int) bool { return known[i] < known[j] })
			return fmt.Errorf("dataset: scenario references unknown network %q (catalog has %v)", n, known)
		}
		if spec.Build == nil {
			return fmt.Errorf("dataset: network %q has no model factory attached", n)
		}
	}
	if len(s.routes()) == 0 {
		return fmt.Errorf("dataset: empty scenario: no routes")
	}
	if len(s.rotation()) == 0 {
		return fmt.Errorf("dataset: empty scenario: no test kinds")
	}
	return nil
}

// Kinds lists every test kind in rotation-table order (deduplicated),
// for flag grammars and docs.
var Kinds = []Kind{UDPDown, UDPUp, TCPDown, TCPDown4P, TCPDown8P, TCPUp, Ping}

// ParseKind converts a kind name ("udp-down") back to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("dataset: unknown test kind %q", s)
}

// ParseNetworks parses the -networks flag grammar: a comma-separated
// list of catalog ids ("RM,MOB,ATT"). Whitespace around ids is
// tolerated; empty items, unknown ids and duplicates are errors.
func ParseNetworks(cat *channel.Catalog, spec string) ([]channel.NetworkID, error) {
	if cat == nil {
		cat = networks.Default()
	}
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("dataset: empty network list")
	}
	parts := strings.Split(spec, ",")
	out := make([]channel.NetworkID, 0, len(parts))
	seen := make(map[channel.NetworkID]bool, len(parts))
	for _, p := range parts {
		id, err := cat.Parse(p)
		if err != nil {
			return nil, fmt.Errorf("dataset: network list %q: %w", spec, err)
		}
		if seen[id] {
			return nil, fmt.Errorf("dataset: network list %q repeats %q", spec, id)
		}
		seen[id] = true
		out = append(out, id)
	}
	return out, nil
}

// ParseScenario parses the -scenario flag grammar: semicolon-separated
// key=value clauses.
//
//	networks=RM,MOB,USC;routes=i94-eauclaire,i90-dells;kinds=udp-down,udp-ping;seed=7;name=rural
//
// Keys: networks (comma-separated catalog ids), routes (comma-separated
// route names resolved against corpus, default mobility.DefaultRoutes),
// kinds (comma-separated test-kind names), seed (int64), name. Every
// key is optional — an empty spec is the catalog's default campaign —
// and unknown keys, unknown names and duplicate clauses are errors. The
// returned scenario is already validated.
func ParseScenario(cat *channel.Catalog, corpus []*mobility.Route, spec string) (*Scenario, error) {
	if cat == nil {
		cat = networks.Default()
	}
	if len(corpus) == 0 {
		corpus = mobility.DefaultRoutes()
	}
	sc := &Scenario{Catalog: cat}
	seen := map[string]bool{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("dataset: scenario clause %q is not key=value", clause)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return nil, fmt.Errorf("dataset: scenario repeats clause %q", key)
		}
		seen[key] = true
		switch key {
		case "name":
			sc.Name = val
		case "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: scenario seed %q: %w", val, err)
			}
			sc.Seed = n
		case "networks":
			nets, err := ParseNetworks(cat, val)
			if err != nil {
				return nil, err
			}
			sc.Networks = nets
		case "kinds":
			for _, part := range strings.Split(val, ",") {
				k, err := ParseKind(strings.TrimSpace(part))
				if err != nil {
					return nil, err
				}
				sc.Kinds = append(sc.Kinds, k)
			}
		case "routes":
			byName := make(map[string]*mobility.Route, len(corpus))
			names := make([]string, 0, len(corpus))
			for _, r := range corpus {
				byName[r.Name] = r
				names = append(names, r.Name)
			}
			for _, part := range strings.Split(val, ",") {
				name := strings.TrimSpace(part)
				r, ok := byName[name]
				if !ok {
					return nil, fmt.Errorf("dataset: unknown route %q (corpus has %v)", name, names)
				}
				sc.Routes = append(sc.Routes, r)
			}
		default:
			return nil, fmt.Errorf("dataset: unknown scenario key %q", key)
		}
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}
