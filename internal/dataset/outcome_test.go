package dataset

import (
	"testing"

	"satcell/internal/channel"
)

func recsWithOutages(total, outage int) []channel.Record {
	recs := make([]channel.Record, total)
	for i := range recs {
		recs[i].Sample.DownMbps = 50
		recs[i].Sample.Outage = i < outage
	}
	return recs
}

func TestClassifyOutcome(t *testing.T) {
	cases := []struct {
		name   string
		total  int
		outage int
		want   Outcome
	}{
		{"no records", 0, 0, OutcomeFailed},
		{"clean window", 10, 0, OutcomeComplete},
		{"light outage", 10, 2, OutcomeComplete},
		{"quarter dark", 10, 3, OutcomeTruncated},
		{"mostly dark", 10, 8, OutcomeTruncated},
		{"fully dark", 10, 10, OutcomeFailed},
	}
	for _, c := range cases {
		if got := classifyOutcome(recsWithOutages(c.total, c.outage)); got != c.want {
			t.Errorf("%s: classifyOutcome = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if OutcomeComplete.String() != "complete" ||
		OutcomeTruncated.String() != "truncated" ||
		OutcomeFailed.String() != "failed" {
		t.Fatal("outcome names wrong")
	}
	if Outcome(42).String() == "" {
		t.Fatal("unknown outcome must still print")
	}
}

// TestCampaignOutcomesDeterministic regenerates the same campaign and
// checks every test's outcome classification matches bit-for-bit, and
// that the campaign actually exercises the degradation path (satellite
// obstruction windows must yield some non-complete tests).
func TestCampaignOutcomesDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 11, Scale: 0.03})
	b := Generate(Config{Seed: 11, Scale: 0.03})
	if len(a.Tests) != len(b.Tests) {
		t.Fatalf("test counts differ: %d vs %d", len(a.Tests), len(b.Tests))
	}
	for i := range a.Tests {
		if a.Tests[i].Outcome != b.Tests[i].Outcome {
			t.Fatalf("test %d outcome differs: %v vs %v",
				i, a.Tests[i].Outcome, b.Tests[i].Outcome)
		}
	}

	counts := a.OutcomeCounts()
	if counts[OutcomeComplete] == 0 {
		t.Fatal("campaign has no complete tests")
	}
	if counts[OutcomeTruncated]+counts[OutcomeFailed] == 0 {
		t.Fatal("campaign outage model produced no degraded tests at all")
	}
	// Degraded tests are the exception, not the rule.
	if counts[OutcomeComplete] < len(a.Tests)/2 {
		t.Fatalf("only %d/%d tests complete — outage model out of calibration",
			counts[OutcomeComplete], len(a.Tests))
	}

	// ByOutcome must partition the dataset exactly.
	sum := 0
	for _, o := range []Outcome{OutcomeComplete, OutcomeTruncated, OutcomeFailed} {
		sum += len(a.Filter(ByOutcome(o)))
	}
	if sum != len(a.Tests) {
		t.Fatalf("ByOutcome partitions %d of %d tests", sum, len(a.Tests))
	}
}
