package dataset

import "strconv"

// TestsCSVHeader is the column layout of the campaign's tests.csv
// artifact (the drivegen export format; a real field campaign would
// produce the same shape). internal/store reads and writes it.
var TestsCSVHeader = []string{
	"id", "network", "kind", "drive", "route", "state", "start_s", "duration_s",
	"area", "mean_speed_kmh", "throughput_mbps", "loss_rate", "retrans_rate",
	"outcome",
}

// CSVRecord renders the test as one tests.csv row, matching
// TestsCSVHeader column for column.
func (t *Test) CSVRecord() []string {
	return []string{
		strconv.Itoa(t.ID),
		t.Network.String(),
		t.Kind.String(),
		strconv.Itoa(t.Drive),
		t.Route,
		t.State,
		strconv.FormatFloat(t.Start.Seconds(), 'f', 0, 64),
		strconv.FormatFloat(t.Duration.Seconds(), 'f', 0, 64),
		t.Area.String(),
		strconv.FormatFloat(t.MeanSpeedKmh, 'f', 1, 64),
		strconv.FormatFloat(t.ThroughputMbps, 'f', 2, 64),
		strconv.FormatFloat(t.LossRate, 'f', 5, 64),
		strconv.FormatFloat(t.RetransRate, 'f', 5, 64),
		t.Outcome.String(),
	}
}

// Outcomes lists every test outcome in declaration order.
var Outcomes = []Outcome{OutcomeComplete, OutcomeTruncated, OutcomeFailed}

// ParseOutcome converts an outcome name back to an Outcome.
func ParseOutcome(s string) (Outcome, bool) {
	for _, o := range Outcomes {
		if o.String() == s {
			return o, true
		}
	}
	return 0, false
}
