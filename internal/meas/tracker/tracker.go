// Package tracker reimplements the role of 5G Tracker (§3.2): a
// periodic sampler that records network type, vehicle speed, GPS
// location and signal strength alongside the throughput tests. In the
// field it reads the modem; here the Provider interface abstracts the
// information source, and the simulation adapters feed it from the
// channel models.
package tracker

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Record is one tracker sample, serialised as JSONL.
type Record struct {
	AtMs     int64   `json:"at_ms"`
	Network  string  `json:"network"`
	NetType  string  `json:"net_type"` // network class, e.g. "satellite", "cellular"
	Lat      float64 `json:"lat"`
	Lon      float64 `json:"lon"`
	SpeedKmh float64 `json:"speed_kmh"`
	SignalDB float64 `json:"signal_db"`
	Serving  string  `json:"serving"`
	Outage   bool    `json:"outage"`
}

// Provider supplies the current state for a device being tracked.
type Provider interface {
	// Info returns the record for the given elapsed time offset.
	Info(at time.Duration) (Record, error)
}

// Tracker samples a Provider at a fixed period and writes JSONL records.
type Tracker struct {
	provider Provider
	period   time.Duration

	mu      sync.Mutex
	records []Record
}

// New builds a tracker sampling provider every period (default 1s).
func New(provider Provider, period time.Duration) *Tracker {
	if period <= 0 {
		period = time.Second
	}
	return &Tracker{provider: provider, period: period}
}

// SampleRange collects records covering [0, dur) at the tracker period.
// It is driven by a virtual clock, so it works identically for live
// and simulated providers.
func (t *Tracker) SampleRange(dur time.Duration) error {
	for at := time.Duration(0); at < dur; at += t.period {
		rec, err := t.provider.Info(at)
		if err != nil {
			return fmt.Errorf("tracker: sample at %v: %w", at, err)
		}
		rec.AtMs = at.Milliseconds()
		t.mu.Lock()
		t.records = append(t.records, rec)
		t.mu.Unlock()
	}
	return nil
}

// Records returns a copy of the collected records.
func (t *Tracker) Records() []Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Record, len(t.records))
	copy(out, t.records)
	return out
}

// WriteJSONL writes the collected records, one JSON object per line.
func (t *Tracker) WriteJSONL(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, r := range t.records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses records written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("tracker: decode: %w", err)
		}
		out = append(out, rec)
	}
}
