package tracker

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"satcell/internal/channel"
)

type fakeProvider struct{ fail bool }

func (f fakeProvider) Info(at time.Duration) (Record, error) {
	if f.fail {
		return Record{}, errors.New("modem unavailable")
	}
	return Record{
		Network: channel.StarlinkMobility.String(),
		NetType: channel.StarlinkMobility.Class().String(),
		Lat:     44.1, Lon: -90.2, SpeedKmh: 88,
		SignalDB: 8.5, Serving: "SL-01-02",
	}, nil
}

func TestSampleRangeAndRecords(t *testing.T) {
	tr := New(fakeProvider{}, 100*time.Millisecond)
	if err := tr.SampleRange(time.Second); err != nil {
		t.Fatal(err)
	}
	recs := tr.Records()
	if len(recs) != 10 {
		t.Fatalf("records = %d, want 10", len(recs))
	}
	if recs[3].AtMs != 300 {
		t.Fatalf("AtMs = %d", recs[3].AtMs)
	}
	if recs[0].Network != channel.StarlinkMobility.String() || recs[0].SpeedKmh != 88 {
		t.Fatalf("record contents wrong: %+v", recs[0])
	}
}

func TestSampleRangeError(t *testing.T) {
	tr := New(fakeProvider{fail: true}, time.Second)
	if err := tr.SampleRange(2 * time.Second); err == nil {
		t.Fatal("provider error should propagate")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := New(fakeProvider{}, time.Second)
	if err := tr.SampleRange(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Records()
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{bad json")); err == nil {
		t.Fatal("bad input should fail")
	}
}

func TestDefaultPeriod(t *testing.T) {
	tr := New(fakeProvider{}, 0)
	if tr.period != time.Second {
		t.Fatal("default period should be 1s")
	}
}
