// Package iperf is a self-contained iPerf-style throughput measurement
// engine over real sockets: TCP and UDP, uplink and downlink, with
// parallel streams (the paper's "P" parameter), paced UDP at a target
// rate, per-interval reports and JSON-friendly results. The paper runs
// exactly these tests against AWS servers while driving (§3.2); here
// the server end is a goroutine, optionally behind a netem relay.
package iperf

import (
	"encoding/binary"
	"time"
)

// Proto selects the transport.
type Proto string

// Transport protocols.
const (
	TCP Proto = "tcp"
	UDP Proto = "udp"
)

// Direction of the data transfer, from the client's perspective.
type Direction string

// Transfer directions.
const (
	Download Direction = "down" // server -> client
	Upload   Direction = "up"   // client -> server
)

// Outcome classifies how a test ended. The field campaign's reality
// (§3.3) is that tests die mid-run — reallocation epochs, tunnels,
// obstructions — so a run that produced partial data is a first-class
// result, not an error.
type Outcome string

// Test outcomes.
const (
	// Complete: the test ran its full duration on every stream.
	Complete Outcome = "complete"
	// Truncated: the test produced partial data, then lost one or more
	// streams (or ended early); throughput figures cover the surviving
	// portion only.
	Truncated Outcome = "truncated"
	// Failed: the test ran but produced no usable measurement.
	Failed Outcome = "failed"
)

// StreamResult summarises one stream of a test.
type StreamResult struct {
	ID       int
	Bytes    int64
	Duration time.Duration
	Mbps     float64
	// Truncated marks a stream that died before its full duration; its
	// Mbps covers the surviving portion (actual elapsed time).
	Truncated bool
}

// IntervalReport is one periodic progress sample.
type IntervalReport struct {
	Start time.Duration
	Bytes int64
	Mbps  float64
}

// Result is the outcome of one test.
type Result struct {
	Proto     Proto
	Dir       Direction
	Parallel  int
	Streams   []StreamResult
	Intervals []IntervalReport
	TotalMbps float64
	// Outcome classifies the run: Complete, Truncated (partial data —
	// some streams died or the test ended early) or Failed (ran but
	// measured nothing usable).
	Outcome Outcome
	// FailedStreams counts TCP streams that produced no data at all.
	FailedStreams int
	// UDP only:
	Sent     int64
	Received int64
	LossRate float64
	JitterMs float64
}

// Wire constants for the UDP data protocol.
const (
	udpMagic      = 0x5a7c
	udpTypeData   = 1
	udpTypeReq    = 2 // client requests a downlink stream
	udpTypeEnd    = 3 // end of data
	udpTypeStats  = 4 // server -> client stats report
	udpHeaderSize = 32
	udpPayload    = 1400
)

// udpHeader is the packed datagram header.
type udpHeader struct {
	Magic    uint16
	Type     uint8
	_        uint8
	TestID   uint32
	Seq      uint64
	SentNano uint64
	Extra    uint64 // rate (mbps*1000) for requests; received count for stats
}

func marshalHeader(h udpHeader, buf []byte) {
	binary.BigEndian.PutUint16(buf[0:], h.Magic)
	buf[2] = h.Type
	binary.BigEndian.PutUint32(buf[4:], h.TestID)
	binary.BigEndian.PutUint64(buf[8:], h.Seq)
	binary.BigEndian.PutUint64(buf[16:], h.SentNano)
	binary.BigEndian.PutUint64(buf[24:], h.Extra)
}

func unmarshalHeader(buf []byte) (udpHeader, bool) {
	if len(buf) < udpHeaderSize {
		return udpHeader{}, false
	}
	h := udpHeader{
		Magic:    binary.BigEndian.Uint16(buf[0:]),
		Type:     buf[2],
		TestID:   binary.BigEndian.Uint32(buf[4:]),
		Seq:      binary.BigEndian.Uint64(buf[8:]),
		SentNano: binary.BigEndian.Uint64(buf[16:]),
		Extra:    binary.BigEndian.Uint64(buf[24:]),
	}
	return h, h.Magic == udpMagic
}
