package iperf

import (
	"context"
	"testing"
	"time"

	"satcell/internal/netem"
)

func newServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestHeaderRoundTrip(t *testing.T) {
	h := udpHeader{Magic: udpMagic, Type: udpTypeData, TestID: 77, Seq: 123456, SentNano: 987654321, Extra: 42}
	buf := make([]byte, udpHeaderSize)
	marshalHeader(h, buf)
	got, ok := unmarshalHeader(buf)
	if !ok || got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
	if _, ok := unmarshalHeader(buf[:10]); ok {
		t.Fatal("short buffer should fail")
	}
	buf[0] = 0
	if _, ok := unmarshalHeader(buf); ok {
		t.Fatal("bad magic should fail")
	}
}

func TestTCPDownload(t *testing.T) {
	s := newServer(t)
	res, err := Run(context.Background(), ClientConfig{
		Addr: s.Addr().String(), Proto: TCP, Dir: Download,
		Duration: 600 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMbps < 100 {
		t.Fatalf("loopback TCP download only %v Mbps", res.TotalMbps)
	}
	if len(res.Streams) != 1 || res.Streams[0].Bytes == 0 {
		t.Fatalf("stream results: %+v", res.Streams)
	}
	if len(res.Intervals) == 0 {
		t.Fatal("no interval reports")
	}
}

func TestTCPUploadServerCount(t *testing.T) {
	s := newServer(t)
	res, err := Run(context.Background(), ClientConfig{
		Addr: s.Addr().String(), Proto: TCP, Dir: Upload,
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMbps < 50 {
		t.Fatalf("loopback TCP upload only %v Mbps", res.TotalMbps)
	}
}

func TestTCPParallelStreams(t *testing.T) {
	s := newServer(t)
	res, err := Run(context.Background(), ClientConfig{
		Addr: s.Addr().String(), Proto: TCP, Dir: Download,
		Duration: 500 * time.Millisecond, Parallel: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Streams) != 4 {
		t.Fatalf("want 4 streams, got %d", len(res.Streams))
	}
	if res.Parallel != 4 {
		t.Fatal("parallel field wrong")
	}
}

func TestUDPUploadWithLossReport(t *testing.T) {
	s := newServer(t)
	res, err := Run(context.Background(), ClientConfig{
		Addr: s.Addr().String(), Proto: UDP, Dir: Upload,
		Duration: 500 * time.Millisecond, RateMbps: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent == 0 || res.Received == 0 {
		t.Fatalf("no packets: %+v", res)
	}
	if res.LossRate > 0.05 {
		t.Fatalf("loopback loss %v too high", res.LossRate)
	}
	if res.TotalMbps < 15 || res.TotalMbps > 25 {
		t.Fatalf("UDP upload rate %v, want ~20", res.TotalMbps)
	}
}

func TestUDPDownload(t *testing.T) {
	s := newServer(t)
	res, err := Run(context.Background(), ClientConfig{
		Addr: s.Addr().String(), Proto: UDP, Dir: Download,
		Duration: 500 * time.Millisecond, RateMbps: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatal("nothing received")
	}
	if res.TotalMbps < 14 || res.TotalMbps > 26 {
		t.Fatalf("UDP download rate %v, want ~20", res.TotalMbps)
	}
}

func TestUDPThroughRelayIsShaped(t *testing.T) {
	s := newServer(t)
	relay, err := netem.NewUDPRelay("127.0.0.1:0", s.Addr().String(),
		netem.ConstantShape(1000, time.Millisecond, 0),
		netem.ConstantShape(5, time.Millisecond, 0), 9)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	res, err := Run(context.Background(), ClientConfig{
		Addr: relay.Addr().String(), Proto: UDP, Dir: Download,
		Duration: time.Second, RateMbps: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Offered 30, shaped to 5: measured goodput must track the shape
	// and the loss must be visible.
	if res.TotalMbps > 8 {
		t.Fatalf("relay-shaped download %v Mbps, want ~5", res.TotalMbps)
	}
	if res.LossRate < 0.5 {
		t.Fatalf("expected heavy loss from shaping, got %v", res.LossRate)
	}
}

func TestBadProto(t *testing.T) {
	if _, err := Run(context.Background(), ClientConfig{Addr: "127.0.0.1:1", Proto: "quic"}); err == nil {
		t.Fatal("unknown proto should fail")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPThroughRelayIsShaped(t *testing.T) {
	s := newServer(t)
	relay, err := netem.NewTCPRelay("127.0.0.1:0", s.Addr().String(),
		netem.ConstantShape(1000, time.Millisecond, 0),
		netem.ConstantShape(12, 5*time.Millisecond, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	res, err := Run(context.Background(), ClientConfig{
		Addr: relay.Addr().String(), Proto: TCP, Dir: Download,
		Duration: 1200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Shaped to 12 Mbps: far below loopback line rate.
	if res.TotalMbps > 30 {
		t.Fatalf("TCP download through 12 Mbps relay measured %v", res.TotalMbps)
	}
	if res.TotalMbps < 3 {
		t.Fatalf("relay nearly dead: %v Mbps", res.TotalMbps)
	}
}
