package iperf

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ClientConfig describes one test run.
type ClientConfig struct {
	Addr     string        // server address (host:port)
	Proto    Proto         // TCP or UDP
	Dir      Direction     // Download or Upload
	Duration time.Duration // test length; default 10 s
	Parallel int           // parallel TCP streams; default 1
	RateMbps float64       // UDP target rate; default 100
	Interval time.Duration // progress-report interval; default 1 s
}

func (c *ClientConfig) defaults() {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	if c.RateMbps <= 0 {
		c.RateMbps = 100
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Proto == "" {
		c.Proto = TCP
	}
	if c.Dir == "" {
		c.Dir = Download
	}
}

// Run executes one test against a Server.
func Run(ctx context.Context, cfg ClientConfig) (*Result, error) {
	cfg.defaults()
	switch cfg.Proto {
	case TCP:
		return runTCP(ctx, cfg)
	case UDP:
		return runUDP(ctx, cfg)
	default:
		return nil, fmt.Errorf("iperf: unknown proto %q", cfg.Proto)
	}
}

// intervalCounter tracks progress reports across streams.
type intervalCounter struct {
	mu       sync.Mutex
	start    time.Time
	interval time.Duration
	buckets  []int64
}

func newIntervalCounter(interval time.Duration) *intervalCounter {
	return &intervalCounter{start: time.Now(), interval: interval}
}

func (ic *intervalCounter) add(n int64) {
	ic.mu.Lock()
	idx := int(time.Since(ic.start) / ic.interval)
	for len(ic.buckets) <= idx {
		ic.buckets = append(ic.buckets, 0)
	}
	ic.buckets[idx] += n
	ic.mu.Unlock()
}

func (ic *intervalCounter) reports() []IntervalReport {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	out := make([]IntervalReport, len(ic.buckets))
	for i, b := range ic.buckets {
		out[i] = IntervalReport{
			Start: time.Duration(i) * ic.interval,
			Bytes: b,
			Mbps:  float64(b*8) / ic.interval.Seconds() / 1e6,
		}
	}
	return out
}

func runTCP(ctx context.Context, cfg ClientConfig) (*Result, error) {
	res := &Result{Proto: TCP, Dir: cfg.Dir, Parallel: cfg.Parallel}
	ic := newIntervalCounter(cfg.Interval)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		results  []StreamResult
		firstErr error
	)
	for i := 0; i < cfg.Parallel; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sr, err := runTCPStream(ctx, cfg, id, ic)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			results = append(results, sr)
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	total := 0.0
	for _, sr := range results {
		total += sr.Mbps
	}
	res.Streams = results
	res.TotalMbps = total
	res.Intervals = ic.reports()
	return res, nil
}

func runTCPStream(ctx context.Context, cfg ClientConfig, id int, ic *intervalCounter) (StreamResult, error) {
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", cfg.Addr)
	if err != nil {
		return StreamResult{}, fmt.Errorf("iperf: dial: %w", err)
	}
	defer conn.Close()
	hello, _ := json.Marshal(control{Dir: cfg.Dir, Duration: cfg.Duration, ID: id})
	if _, err := conn.Write(append(hello, '\n')); err != nil {
		return StreamResult{}, err
	}

	start := time.Now()
	var bytes int64
	switch cfg.Dir {
	case Download:
		buf := make([]byte, 128<<10)
		deadline := start.Add(cfg.Duration + 3*time.Second)
		for {
			if ctx.Err() != nil {
				break
			}
			conn.SetReadDeadline(minTime(deadline, time.Now().Add(2*time.Second)))
			n, err := conn.Read(buf)
			bytes += int64(n)
			ic.add(int64(n))
			if err != nil {
				break
			}
		}
	case Upload:
		buf := make([]byte, 128<<10)
		deadline := start.Add(cfg.Duration)
		for time.Now().Before(deadline) && ctx.Err() == nil {
			conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
			n, err := conn.Write(buf)
			bytes += int64(n)
			ic.add(int64(n))
			if err != nil {
				break
			}
		}
		// Half-close and read the server's count (authoritative).
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		line, err := bufio.NewReader(conn).ReadBytes('\n')
		if err == nil {
			var sum uploadSummary
			if json.Unmarshal(line, &sum) == nil && sum.Bytes > 0 {
				bytes = sum.Bytes
			}
		}
	}
	elapsed := time.Since(start)
	if elapsed > cfg.Duration {
		elapsed = cfg.Duration
	}
	return StreamResult{
		ID:       id,
		Bytes:    bytes,
		Duration: elapsed,
		Mbps:     float64(bytes*8) / cfg.Duration.Seconds() / 1e6,
	}, nil
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func runUDP(ctx context.Context, cfg ClientConfig) (*Result, error) {
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	testID := rand.Uint32()
	ic := newIntervalCounter(cfg.Interval)

	res := &Result{Proto: UDP, Dir: cfg.Dir, Parallel: 1}
	switch cfg.Dir {
	case Upload:
		err = runUDPUpload(ctx, conn, cfg, testID, ic, res)
	case Download:
		err = runUDPDownload(ctx, conn, cfg, testID, ic, res)
	}
	if err != nil {
		return nil, err
	}
	res.Intervals = ic.reports()
	return res, nil
}

func runUDPUpload(ctx context.Context, conn *net.UDPConn, cfg ClientConfig, testID uint32, ic *intervalCounter, res *Result) error {
	buf := make([]byte, udpPayload)
	interval := time.Duration(float64(udpPayload+28) * 8 / (cfg.RateMbps * 1e6) * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	deadline := time.Now().Add(cfg.Duration)
	next := time.Now()
	var seq uint64
	for time.Now().Before(deadline) && ctx.Err() == nil {
		marshalHeader(udpHeader{
			Magic: udpMagic, Type: udpTypeData, TestID: testID,
			Seq: seq, SentNano: uint64(time.Now().UnixNano()),
		}, buf)
		seq++
		if _, err := conn.Write(buf); err != nil {
			return err
		}
		ic.add(int64(len(buf)))
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	res.Sent = int64(seq)

	// Ask the server for its receive stats (retry a few times).
	end := make([]byte, udpHeaderSize)
	marshalHeader(udpHeader{Magic: udpMagic, Type: udpTypeEnd, TestID: testID, Seq: seq}, end)
	reply := make([]byte, 2048)
	for attempt := 0; attempt < 5; attempt++ {
		if _, err := conn.Write(end); err != nil {
			return err
		}
		conn.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
		n, err := conn.Read(reply)
		if err != nil {
			continue
		}
		if h, ok := unmarshalHeader(reply[:n]); ok && h.Type == udpTypeStats && h.TestID == testID {
			res.Received = int64(h.Extra)
			res.JitterMs = float64(h.Seq) / 1000
			if res.Sent > 0 {
				res.LossRate = 1 - float64(res.Received)/float64(res.Sent)
				if res.LossRate < 0 {
					res.LossRate = 0
				}
			}
			res.TotalMbps = float64(res.Received) * float64(udpPayload) * 8 / cfg.Duration.Seconds() / 1e6
			return nil
		}
	}
	return fmt.Errorf("iperf: no stats reply from server")
}

func runUDPDownload(ctx context.Context, conn *net.UDPConn, cfg ClientConfig, testID uint32, ic *intervalCounter, res *Result) error {
	req := make([]byte, udpHeaderSize)
	marshalHeader(udpHeader{
		Magic: udpMagic, Type: udpTypeReq, TestID: testID,
		SentNano: uint64(cfg.Duration), Extra: uint64(cfg.RateMbps * 1000),
	}, req)
	if _, err := conn.Write(req); err != nil {
		return err
	}
	buf := make([]byte, 64<<10)
	var (
		received, bytes int64
		maxSeq          uint64
		jitter          float64
		lastTx          uint64
		lastRx          time.Time
	)
	hardDeadline := time.Now().Add(cfg.Duration + 3*time.Second)
	for time.Now().Before(hardDeadline) && ctx.Err() == nil {
		conn.SetReadDeadline(time.Now().Add(time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			continue
		}
		h, ok := unmarshalHeader(buf[:n])
		if !ok || h.TestID != testID {
			continue
		}
		if h.Type == udpTypeEnd {
			maxSeq = h.Seq
			break
		}
		if h.Type != udpTypeData {
			continue
		}
		now := time.Now()
		received++
		bytes += int64(n)
		ic.add(int64(n))
		if h.Seq+1 > maxSeq {
			maxSeq = h.Seq + 1
		}
		if !lastRx.IsZero() {
			dTransit := float64(now.UnixNano()-int64(h.SentNano)) - float64(lastRx.UnixNano()-int64(lastTx))
			if dTransit < 0 {
				dTransit = -dTransit
			}
			jitter += (dTransit/1e9 - jitter) / 16
		}
		lastTx = h.SentNano
		lastRx = now
	}
	res.Sent = int64(maxSeq)
	res.Received = received
	if res.Sent > 0 {
		res.LossRate = 1 - float64(received)/float64(res.Sent)
		if res.LossRate < 0 {
			res.LossRate = 0
		}
	}
	res.JitterMs = jitter * 1000
	res.TotalMbps = float64(bytes*8) / cfg.Duration.Seconds() / 1e6
	return nil
}
