package iperf

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"satcell/internal/obs"
	"satcell/internal/vclock"
)

// ClientConfig describes one test run.
type ClientConfig struct {
	Addr     string        // server address (host:port)
	Proto    Proto         // TCP or UDP
	Dir      Direction     // Download or Upload
	Duration time.Duration // test length; default 10 s
	Parallel int           // parallel TCP streams; default 1
	RateMbps float64       // UDP target rate; default 100
	Interval time.Duration // progress-report interval; default 1 s

	// DialRetries is how many additional dial attempts each stream
	// makes after a failed connect, with exponential backoff and
	// seeded jitter — the reconnect loop a field client needs when the
	// dish is re-acquiring. Default 0: fail fast.
	DialRetries int
	// RetryBackoff is the backoff before the first retry; it doubles
	// per attempt and is jittered to [0.5, 1.5)x. Default 200 ms.
	RetryBackoff time.Duration
	// Seed derives the retry jitter (deterministic per stream).
	Seed int64

	// Metrics, when non-nil, receives live progress: iperf.bytes (bytes
	// moved so far), iperf.dial_retries, iperf.write_errors, and the
	// iperf.interval_mbps histogram of per-second throughput. Handles
	// are get-or-create, so repeated tests on one registry accumulate.
	Metrics *obs.Registry
	// Events, when non-nil, receives session-start/session-end events
	// for each test run, keyed by elapsed time since Run began.
	Events *obs.Tracer

	// Clock drives pacing, backoff sleeps, interval bucketing and
	// timestamps. Nil means the wall clock (identical behavior to before
	// the seam existed). Socket deadlines are derived from it too, so a
	// virtual clock only makes sense against virtual transports.
	Clock vclock.Clock
}

// clock resolves the configured clock, defaulting to the wall.
func (c *ClientConfig) clock() vclock.Clock { return vclock.Or(c.Clock) }

func (c *ClientConfig) defaults() {
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.Parallel <= 0 {
		c.Parallel = 1
	}
	if c.RateMbps <= 0 {
		c.RateMbps = 100
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 200 * time.Millisecond
	}
	if c.Proto == "" {
		c.Proto = TCP
	}
	if c.Dir == "" {
		c.Dir = Download
	}
}

// Run executes one test against a Server. A test that loses streams
// mid-run returns a partial Result with Outcome Truncated; an error is
// returned only when the test could not run at all (bad config, or
// every dial/stream failed outright).
func Run(ctx context.Context, cfg ClientConfig) (*Result, error) {
	cfg.defaults()
	clk := cfg.clock()
	start := clk.Now()
	detail := string(cfg.Proto) + "/" + string(cfg.Dir)
	cfg.Events.Span(0, obs.EvSessionStart, "iperf", detail)
	defer func() { cfg.Events.Span(clk.Since(start), obs.EvSessionEnd, "iperf", detail) }()
	switch cfg.Proto {
	case TCP:
		return runTCP(ctx, cfg)
	case UDP:
		return runUDP(ctx, cfg)
	default:
		return nil, fmt.Errorf("iperf: unknown proto %q", cfg.Proto)
	}
}

// dialRetry dials with cfg's retry budget: exponential backoff from
// RetryBackoff, jittered by a RNG derived from (Seed, id) so reruns of
// a scripted fault scenario reconnect on the same cadence.
func dialRetry(ctx context.Context, cfg ClientConfig, network string, id int) (net.Conn, error) {
	d := net.Dialer{}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(id+1)*0x9E3779B9))
	backoff := cfg.RetryBackoff
	var lastErr error
	retries := cfg.Metrics.Counter("iperf.dial_retries")
	for attempt := 0; attempt <= cfg.DialRetries; attempt++ {
		if attempt > 0 {
			retries.Inc()
			sleep := time.Duration(float64(backoff) * (0.5 + rng.Float64()))
			backoff *= 2
			t := cfg.clock().NewTimer(sleep)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			case <-t.C():
			}
		}
		conn, err := d.DialContext(ctx, network, cfg.Addr)
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("iperf: dial (%d attempts): %w", cfg.DialRetries+1, lastErr)
}

// intervalCounter tracks progress reports across streams. When built
// with a registry it also publishes live progress: iperf.bytes counts
// every byte as it moves (so a scrape mid-test sees the transfer
// advancing), and reports() folds each finished interval's throughput
// into the iperf.interval_mbps histogram.
type intervalCounter struct {
	mu       sync.Mutex
	clk      vclock.Clock
	start    time.Time
	interval time.Duration
	buckets  []int64
	progress *obs.Counter
	rate     *obs.Histogram
}

func newIntervalCounter(interval time.Duration, reg *obs.Registry, clk vclock.Clock) *intervalCounter {
	clk = vclock.Or(clk)
	return &intervalCounter{
		clk:      clk,
		start:    clk.Now(),
		interval: interval,
		progress: reg.Counter("iperf.bytes"),
		rate:     reg.Histogram("iperf.interval_mbps", obs.MbpsBuckets),
	}
}

func (ic *intervalCounter) add(n int64) {
	ic.progress.Add(n)
	ic.mu.Lock()
	idx := int(ic.clk.Since(ic.start) / ic.interval)
	for len(ic.buckets) <= idx {
		ic.buckets = append(ic.buckets, 0)
	}
	ic.buckets[idx] += n
	ic.mu.Unlock()
}

// reports builds the per-interval summary. It is called once, at the
// end of a run; that is also when the interval throughputs land in the
// histogram (a mid-run interval isn't complete, so it can't be observed
// yet without skewing the distribution low).
func (ic *intervalCounter) reports() []IntervalReport {
	ic.mu.Lock()
	defer ic.mu.Unlock()
	out := make([]IntervalReport, len(ic.buckets))
	for i, b := range ic.buckets {
		out[i] = IntervalReport{
			Start: time.Duration(i) * ic.interval,
			Bytes: b,
			Mbps:  float64(b*8) / ic.interval.Seconds() / 1e6,
		}
		ic.rate.Observe(out[i].Mbps)
	}
	return out
}

// runTCP fans the parallel streams out and aggregates every stream
// that produced data. One dead stream no longer discards the test: the
// survivors are summed and the result is marked Truncated. Only when
// every stream fails does the test error.
func runTCP(ctx context.Context, cfg ClientConfig) (*Result, error) {
	res := &Result{Proto: TCP, Dir: cfg.Dir, Parallel: cfg.Parallel}
	ic := newIntervalCounter(cfg.Interval, cfg.Metrics, cfg.Clock)
	type streamOut struct {
		sr  StreamResult
		err error
	}
	outs := make([]streamOut, cfg.Parallel)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Parallel; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sr, err := runTCPStream(ctx, cfg, id, ic)
			outs[id] = streamOut{sr: sr, err: err}
		}(i)
	}
	wg.Wait()

	var firstErr error
	truncated := false
	for _, o := range outs {
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			res.FailedStreams++
			truncated = true
			continue
		}
		if o.sr.Bytes == 0 && o.sr.Truncated {
			// Connected but never moved data: a failed stream.
			res.FailedStreams++
			truncated = true
			continue
		}
		if o.sr.Truncated {
			truncated = true
		}
		res.Streams = append(res.Streams, o.sr)
		res.TotalMbps += o.sr.Mbps
	}
	if len(res.Streams) == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("iperf: all %d streams produced no data", cfg.Parallel)
	}
	res.Outcome = Complete
	if truncated {
		res.Outcome = Truncated
	}
	res.Intervals = ic.reports()
	return res, nil
}

func runTCPStream(ctx context.Context, cfg ClientConfig, id int, ic *intervalCounter) (StreamResult, error) {
	conn, err := dialRetry(ctx, cfg, "tcp", id)
	if err != nil {
		return StreamResult{}, err
	}
	defer conn.Close()
	hello, _ := json.Marshal(control{Dir: cfg.Dir, Duration: cfg.Duration, ID: id})
	if _, err := conn.Write(append(hello, '\n')); err != nil {
		return StreamResult{}, err
	}

	clk := cfg.clock()
	start := clk.Now()
	var bytes int64
	var elapsed time.Duration
	switch cfg.Dir {
	case Download:
		buf := make([]byte, 128<<10)
		deadline := start.Add(cfg.Duration + 3*time.Second)
		for {
			if ctx.Err() != nil {
				break
			}
			conn.SetReadDeadline(minTime(deadline, clk.Now().Add(2*time.Second)))
			n, err := conn.Read(buf)
			bytes += int64(n)
			ic.add(int64(n))
			if err != nil {
				break
			}
		}
		elapsed = clk.Since(start)
	case Upload:
		buf := make([]byte, 128<<10)
		deadline := start.Add(cfg.Duration)
		for clk.Now().Before(deadline) && ctx.Err() == nil {
			conn.SetWriteDeadline(clk.Now().Add(2 * time.Second))
			n, err := conn.Write(buf)
			bytes += int64(n)
			ic.add(int64(n))
			if err != nil {
				break
			}
		}
		// The transfer window ends here: the summary exchange below can
		// block for seconds and must not dilute the rate denominator.
		elapsed = clk.Since(start)
		// Half-close and read the server's count (authoritative).
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		conn.SetReadDeadline(clk.Now().Add(3 * time.Second))
		line, err := bufio.NewReader(conn).ReadBytes('\n')
		if err == nil {
			var sum uploadSummary
			if json.Unmarshal(line, &sum) == nil && sum.Bytes > 0 {
				bytes = sum.Bytes
			}
		}
	}
	if elapsed > cfg.Duration {
		elapsed = cfg.Duration
	}
	if elapsed <= 0 {
		elapsed = time.Millisecond
	}
	// A stream that lost its connection well before the configured
	// duration carries a truncated (but still valid) sample.
	early := elapsed < cfg.Duration*9/10
	return StreamResult{
		ID:       id,
		Bytes:    bytes,
		Duration: elapsed,
		// Actual elapsed time, not the configured duration: a stream
		// that died at t=2s of 10s moved its bytes in 2s, and dividing
		// by 10 would under-report the link fivefold.
		Mbps:      float64(bytes*8) / elapsed.Seconds() / 1e6,
		Truncated: early,
	}, nil
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func runUDP(ctx context.Context, cfg ClientConfig) (*Result, error) {
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	testID := rand.Uint32()
	ic := newIntervalCounter(cfg.Interval, cfg.Metrics, cfg.Clock)

	res := &Result{Proto: UDP, Dir: cfg.Dir, Parallel: 1}
	switch cfg.Dir {
	case Upload:
		err = runUDPUpload(ctx, conn, cfg, testID, ic, res)
	case Download:
		err = runUDPDownload(ctx, conn, cfg, testID, ic, res)
	}
	if err != nil {
		return nil, err
	}
	res.Intervals = ic.reports()
	return res, nil
}

func runUDPUpload(ctx context.Context, conn *net.UDPConn, cfg ClientConfig, testID uint32, ic *intervalCounter, res *Result) error {
	clk := cfg.clock()
	buf := make([]byte, udpPayload)
	interval := time.Duration(float64(udpPayload+28) * 8 / (cfg.RateMbps * 1e6) * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	deadline := clk.Now().Add(cfg.Duration)
	next := clk.Now()
	var seq uint64
	writeErrs := 0
	werrCounter := cfg.Metrics.Counter("iperf.write_errors")
	for clk.Now().Before(deadline) && ctx.Err() == nil {
		marshalHeader(udpHeader{
			Magic: udpMagic, Type: udpTypeData, TestID: testID,
			Seq: seq, SentNano: uint64(clk.Now().UnixNano()),
		}, buf)
		seq++
		if _, err := conn.Write(buf); err != nil {
			// A write error means the far end is unreachable right now
			// (ICMP unreachable after a relay/server kill). Keep
			// pacing: the link may come back inside the test window.
			writeErrs++
			werrCounter.Inc()
			ic.add(0)
		} else {
			ic.add(int64(len(buf)))
		}
		next = next.Add(interval)
		if d := next.Sub(clk.Now()); d > 0 {
			clk.Sleep(d)
		}
	}
	res.Sent = int64(seq)

	// Ask the server for its receive stats (retry with backoff; the
	// link may still be in a blackout window).
	end := make([]byte, udpHeaderSize)
	marshalHeader(udpHeader{Magic: udpMagic, Type: udpTypeEnd, TestID: testID, Seq: seq}, end)
	reply := make([]byte, 2048)
	wait := 300 * time.Millisecond
	for attempt := 0; attempt < 6 && ctx.Err() == nil; attempt++ {
		conn.Write(end) // best effort: unreachable now may recover
		conn.SetReadDeadline(clk.Now().Add(wait))
		n, err := conn.Read(reply)
		if err != nil {
			if wait < 2*time.Second {
				wait += 150 * time.Millisecond
			}
			continue
		}
		if h, ok := unmarshalHeader(reply[:n]); ok && h.Type == udpTypeStats && h.TestID == testID {
			res.Received = int64(h.Extra)
			res.JitterMs = float64(h.Seq) / 1000
			if res.Sent > 0 {
				res.LossRate = 1 - float64(res.Received)/float64(res.Sent)
				if res.LossRate < 0 {
					res.LossRate = 0
				}
			}
			res.TotalMbps = float64(res.Received) * float64(udpPayload) * 8 / cfg.Duration.Seconds() / 1e6
			res.Outcome = Complete
			if writeErrs > 0 {
				res.Outcome = Truncated
			}
			return nil
		}
	}
	// No stats reply: the server never came back. The send side is
	// still a usable partial record (Sent, intervals), so degrade to a
	// Failed outcome rather than discarding the test.
	res.Outcome = Failed
	res.LossRate = 1
	return nil
}

func runUDPDownload(ctx context.Context, conn *net.UDPConn, cfg ClientConfig, testID uint32, ic *intervalCounter, res *Result) error {
	req := make([]byte, udpHeaderSize)
	marshalHeader(udpHeader{
		Magic: udpMagic, Type: udpTypeReq, TestID: testID,
		SentNano: uint64(cfg.Duration), Extra: uint64(cfg.RateMbps * 1000),
	}, req)
	if _, err := conn.Write(req); err != nil {
		return err
	}
	buf := make([]byte, 64<<10)
	var (
		received, bytes int64
		maxSeq          uint64
		jitter          float64
		lastTx          uint64
		lastRx          time.Time
	)
	clk := cfg.clock()
	start := clk.Now()
	sawEnd := false
	hardDeadline := start.Add(cfg.Duration + 3*time.Second)
	for clk.Now().Before(hardDeadline) && ctx.Err() == nil {
		conn.SetReadDeadline(clk.Now().Add(time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			// Timeouts and ICMP-unreachable bursts both land here; in
			// a blackout the stream resumes when the window passes.
			continue
		}
		h, ok := unmarshalHeader(buf[:n])
		if !ok || h.TestID != testID {
			continue
		}
		if h.Type == udpTypeEnd {
			maxSeq = h.Seq
			sawEnd = true
			break
		}
		if h.Type != udpTypeData {
			continue
		}
		now := clk.Now()
		received++
		bytes += int64(n)
		ic.add(int64(n))
		if h.Seq+1 > maxSeq {
			maxSeq = h.Seq + 1
		}
		if !lastRx.IsZero() {
			dTransit := float64(now.UnixNano()-int64(h.SentNano)) - float64(lastRx.UnixNano()-int64(lastTx))
			if dTransit < 0 {
				dTransit = -dTransit
			}
			jitter += (dTransit/1e9 - jitter) / 16
		}
		lastTx = h.SentNano
		lastRx = now
	}
	res.Sent = int64(maxSeq)
	res.Received = received
	if res.Sent > 0 {
		res.LossRate = 1 - float64(received)/float64(res.Sent)
		if res.LossRate < 0 {
			res.LossRate = 0
		}
	}
	res.JitterMs = jitter * 1000
	res.TotalMbps = float64(bytes*8) / cfg.Duration.Seconds() / 1e6
	switch {
	case received == 0:
		// The request or every reply vanished: nothing measured.
		res.Outcome = Failed
		res.LossRate = 1
	case sawEnd:
		res.Outcome = Complete
	case ctx.Err() != nil,
		lastRx.Sub(start) < cfg.Duration*3/4:
		// Cancelled mid-test, or the stream died well before the test
		// window ended (server killed, blackout to the end).
		res.Outcome = Truncated
	default:
		res.Outcome = Complete
	}
	return nil
}
