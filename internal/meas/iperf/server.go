package iperf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"satcell/internal/vclock"
)

// control is the JSON hello a client sends on each TCP data connection.
type control struct {
	Dir      Direction     `json:"dir"`
	Duration time.Duration `json:"duration"`
	ID       int           `json:"id"`
}

// uploadSummary is what the server returns after a TCP upload stream.
type uploadSummary struct {
	Bytes int64 `json:"bytes"`
}

// Server is an iPerf-style test server: a TCP listener and a UDP socket
// on the same port number.
type Server struct {
	ln  net.Listener
	udp *net.UDPConn
	clk vclock.Clock

	mu     sync.Mutex
	udpRx  map[uint32]*udpRxState
	closed chan struct{}
	wg     sync.WaitGroup
}

type udpRxState struct {
	received int64
	bytes    int64
	lastTx   uint64
	lastRx   time.Time
	jitter   float64
	client   *net.UDPAddr
}

// NewServer starts a server on addr (e.g. "127.0.0.1:0").
func NewServer(addr string) (*Server, error) {
	return NewServerClock(addr, vclock.Wall)
}

// NewServerClock is NewServer with an explicit clock for download
// pacing, duration cutoffs and jitter timestamps.
func NewServerClock(addr string, clk vclock.Clock) (*Server, error) {
	clk = vclock.Or(clk)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	tcpAddr := ln.Addr().(*net.TCPAddr)
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: tcpAddr.IP, Port: tcpAddr.Port})
	if err != nil {
		ln.Close()
		return nil, err
	}
	s := &Server{
		ln:     ln,
		udp:    udp,
		clk:    clk,
		udpRx:  make(map[uint32]*udpRxState),
		closed: make(chan struct{}),
	}
	s.wg.Add(2)
	go s.acceptLoop()
	go s.udpLoop()
	return s, nil
}

// Addr returns the server's TCP address (the UDP port is identical).
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close shuts the server down.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.ln.Close()
	s.udp.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleTCP(c)
		}()
	}
}

// handleTCP serves one data connection: reads the control hello, then
// either sinks an upload or sources a download.
func (s *Server) handleTCP(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return
	}
	var ctl control
	if err := json.Unmarshal(line, &ctl); err != nil {
		return
	}
	switch ctl.Dir {
	case Upload:
		// Sink until the client half-closes, then report the count.
		n, _ := io.Copy(io.Discard, br)
		sum, _ := json.Marshal(uploadSummary{Bytes: n})
		c.Write(append(sum, '\n'))
	case Download:
		// Source bytes for the requested duration, then close.
		buf := make([]byte, 128<<10)
		deadline := s.clk.Now().Add(ctl.Duration)
		for s.clk.Now().Before(deadline) {
			select {
			case <-s.closed:
				return
			default:
			}
			c.SetWriteDeadline(s.clk.Now().Add(2 * time.Second))
			if _, err := c.Write(buf); err != nil {
				return
			}
		}
	}
}

func (s *Server) udpLoop() {
	defer s.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, from, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		h, ok := unmarshalHeader(buf[:n])
		if !ok {
			continue
		}
		switch h.Type {
		case udpTypeData:
			s.onData(h, n, from)
		case udpTypeEnd:
			s.onEnd(h, from)
		case udpTypeReq:
			rate := float64(h.Extra) / 1000
			dur := time.Duration(h.SentNano)
			s.wg.Add(1)
			go func(to *net.UDPAddr, testID uint32) {
				defer s.wg.Done()
				s.serveUDPDownload(to, testID, rate, dur)
			}(from, h.TestID)
		}
	}
}

func (s *Server) onData(h udpHeader, n int, from *net.UDPAddr) {
	s.mu.Lock()
	st, ok := s.udpRx[h.TestID]
	if !ok {
		st = &udpRxState{client: from}
		s.udpRx[h.TestID] = st
	}
	now := s.clk.Now()
	st.received++
	st.bytes += int64(n)
	if !st.lastRx.IsZero() {
		dTransit := float64(now.UnixNano()-int64(h.SentNano)) - float64(st.lastRx.UnixNano()-int64(st.lastTx))
		if dTransit < 0 {
			dTransit = -dTransit
		}
		st.jitter += (dTransit/1e9 - st.jitter) / 16
	}
	st.lastTx = h.SentNano
	st.lastRx = now
	s.mu.Unlock()
}

// onEnd answers an end-of-test marker with the receive statistics.
func (s *Server) onEnd(h udpHeader, from *net.UDPAddr) {
	s.mu.Lock()
	st := s.udpRx[h.TestID]
	var received, jitterUs uint64
	if st != nil {
		received = uint64(st.received)
		jitterUs = uint64(st.jitter * 1e6)
	}
	s.mu.Unlock()
	out := make([]byte, udpHeaderSize)
	marshalHeader(udpHeader{
		Magic: udpMagic, Type: udpTypeStats, TestID: h.TestID,
		Seq: jitterUs, Extra: received,
	}, out)
	s.udp.WriteToUDP(out, from)
}

// serveUDPDownload paces datagrams toward the client at rateMbps.
func (s *Server) serveUDPDownload(to *net.UDPAddr, testID uint32, rateMbps float64, dur time.Duration) {
	if rateMbps <= 0 {
		rateMbps = 1
	}
	interval := time.Duration(float64(udpPayload+28) * 8 / (rateMbps * 1e6) * float64(time.Second))
	if interval <= 0 {
		interval = time.Microsecond
	}
	buf := make([]byte, udpPayload)
	deadline := s.clk.Now().Add(dur)
	next := s.clk.Now()
	var seq uint64
	for s.clk.Now().Before(deadline) {
		select {
		case <-s.closed:
			return
		default:
		}
		marshalHeader(udpHeader{
			Magic: udpMagic, Type: udpTypeData, TestID: testID,
			Seq: seq, SentNano: uint64(s.clk.Now().UnixNano()),
		}, buf)
		seq++
		if _, err := s.udp.WriteToUDP(buf, to); err != nil {
			return
		}
		next = next.Add(interval)
		if d := next.Sub(s.clk.Now()); d > 0 {
			s.clk.Sleep(d)
		}
	}
	// End markers so the client can stop promptly.
	for i := 0; i < 3; i++ {
		end := make([]byte, udpHeaderSize)
		marshalHeader(udpHeader{Magic: udpMagic, Type: udpTypeEnd, TestID: testID, Seq: seq}, end)
		s.udp.WriteToUDP(end, to)
		s.clk.Sleep(10 * time.Millisecond)
	}
}

// String describes the server.
func (s *Server) String() string { return fmt.Sprintf("iperf server on %s", s.Addr()) }
