package iperf

import (
	"context"
	"io"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// severProxy forwards TCP connections to target, killing connection
// number killIdx (0-based accept order) after killAfter. Other
// connections run untouched. Returns the proxy address.
func severProxy(t *testing.T, target string, killIdx int32, killAfter time.Duration) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var idx int32 = -1
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", target)
			if err != nil {
				c.Close()
				continue
			}
			i := atomic.AddInt32(&idx, 1)
			go io.Copy(up, c)
			go io.Copy(c, up)
			if i == killIdx {
				go func() {
					time.Sleep(killAfter)
					c.Close()
					up.Close()
				}()
			}
		}
	}()
	return ln.Addr().String()
}

// TestTCPStreamDeathTruncates kills the (only) download stream partway
// through: the run must return a partial Result marked Truncated — not
// an error — with throughput computed over the surviving window.
func TestTCPStreamDeathTruncates(t *testing.T) {
	s := newServer(t)
	addr := severProxy(t, s.Addr().String(), 0, 400*time.Millisecond)
	res, err := Run(context.Background(), ClientConfig{
		Addr: addr, Proto: TCP, Dir: Download, Duration: 2 * time.Second,
	})
	if err != nil {
		t.Fatalf("mid-test stream death must degrade, not error: %v", err)
	}
	if res.Outcome != Truncated {
		t.Fatalf("Outcome = %v, want %v", res.Outcome, Truncated)
	}
	if len(res.Streams) != 1 || res.Streams[0].Bytes == 0 {
		t.Fatalf("expected one surviving stream with data, got %+v", res.Streams)
	}
	sr := res.Streams[0]
	if !sr.Truncated {
		t.Fatal("stream not marked truncated")
	}
	// The rate denominator must be the actual transfer window (~0.4s),
	// not the configured 2s — a 5x dilution otherwise.
	if sr.Duration > time.Second {
		t.Fatalf("stream duration %v, want ~400ms", sr.Duration)
	}
	if sr.Mbps <= 0 {
		t.Fatalf("Mbps = %v, want > 0 over the surviving window", sr.Mbps)
	}
}

// TestTCPParallelSurvivorsAggregate kills one of three streams at
// accept time (before it moves data): the other two must be summed into
// a Truncated result with the dead stream counted, not discarded.
func TestTCPParallelSurvivorsAggregate(t *testing.T) {
	s := newServer(t)
	addr := severProxy(t, s.Addr().String(), 1, 0)
	res, err := Run(context.Background(), ClientConfig{
		Addr: addr, Proto: TCP, Dir: Download,
		Duration: time.Second, Parallel: 3,
	})
	if err != nil {
		t.Fatalf("one dead stream of three must not fail the test: %v", err)
	}
	if res.Outcome != Truncated {
		t.Fatalf("Outcome = %v, want %v", res.Outcome, Truncated)
	}
	if len(res.Streams) < 2 {
		t.Fatalf("expected >=2 surviving streams, got %d", len(res.Streams))
	}
	if res.FailedStreams < 1 {
		t.Fatalf("FailedStreams = %d, want >=1", res.FailedStreams)
	}
	if res.TotalMbps <= 0 {
		t.Fatal("survivors produced no aggregate throughput")
	}
}

// TestTCPAllStreamsDeadErrors is the boundary: when every stream fails
// the test has measured nothing and must error.
func TestTCPAllStreamsDeadErrors(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens: every dial is refused
	_, err = Run(context.Background(), ClientConfig{
		Addr: addr, Proto: TCP, Dir: Download,
		Duration: 500 * time.Millisecond, Parallel: 2,
	})
	if err == nil {
		t.Fatal("all-streams-failed test must return an error")
	}
}

// TestDialRetryReconnects starts the server only after the client's
// first dial attempts have failed: the jittered backoff retries must
// pick the connection up once the listener appears.
func TestDialRetryReconnects(t *testing.T) {
	// Reserve a port, free it, then bring the server up on it late.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	go func() {
		time.Sleep(300 * time.Millisecond)
		s, err := NewServer(addr)
		if err != nil {
			return
		}
		time.Sleep(5 * time.Second)
		s.Close()
	}()
	res, err := Run(context.Background(), ClientConfig{
		Addr: addr, Proto: TCP, Dir: Download,
		Duration:    500 * time.Millisecond,
		DialRetries: 8, RetryBackoff: 100 * time.Millisecond, Seed: 4,
	})
	if err != nil {
		t.Fatalf("retries should have reached the late server: %v", err)
	}
	if res.TotalMbps <= 0 {
		t.Fatal("no data after reconnect")
	}
}

// TestUDPUploadServerGoneDegrades sends an upload at a dead port: every
// write raises ICMP unreachable and no stats reply ever comes. The run
// must finish (no hang), returning a Failed partial record with the
// send side intact rather than an error.
func TestUDPUploadServerGoneDegrades(t *testing.T) {
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := c.LocalAddr().String()
	c.Close() // port now dead
	res, err := Run(context.Background(), ClientConfig{
		Addr: addr, Proto: UDP, Dir: Upload,
		Duration: 300 * time.Millisecond, RateMbps: 5,
	})
	if err != nil {
		t.Fatalf("dead server must degrade, not error: %v", err)
	}
	if res.Outcome != Failed {
		t.Fatalf("Outcome = %v, want %v", res.Outcome, Failed)
	}
	if res.Sent == 0 {
		t.Fatal("send side should still be recorded")
	}
	if res.LossRate != 1 {
		t.Fatalf("LossRate = %v, want 1", res.LossRate)
	}
}

// TestUDPDownloadServerGoneFails requests a download from a dead port:
// nothing is received, and the result must say so as a Failed outcome.
func TestUDPDownloadServerGoneFails(t *testing.T) {
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := c.LocalAddr().String()
	c.Close()
	res, err := Run(context.Background(), ClientConfig{
		Addr: addr, Proto: UDP, Dir: Download,
		Duration: 300 * time.Millisecond, RateMbps: 5,
	})
	if err != nil {
		t.Fatalf("dead server must degrade, not error: %v", err)
	}
	if res.Outcome != Failed || res.Received != 0 {
		t.Fatalf("got Outcome=%v Received=%d, want failed with nothing received",
			res.Outcome, res.Received)
	}
}

// TestTCPCompleteOutcome pins the healthy path: a clean run is
// Complete with zero failed streams.
func TestTCPCompleteOutcome(t *testing.T) {
	s := newServer(t)
	res, err := Run(context.Background(), ClientConfig{
		Addr: s.Addr().String(), Proto: TCP, Dir: Download,
		Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Complete || res.FailedStreams != 0 {
		t.Fatalf("healthy run: Outcome=%v FailedStreams=%d", res.Outcome, res.FailedStreams)
	}
}
