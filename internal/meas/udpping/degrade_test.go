package udpping

import (
	"context"
	"net"
	"testing"
	"time"
)

// TestPingDeadServerDegrades pings a port with nothing behind it: every
// probe raises ICMP unreachable on the connected socket. The run must
// complete without hanging, report total loss, and count the write
// errors instead of aborting.
func TestPingDeadServerDegrades(t *testing.T) {
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	addr := c.LocalAddr().String()
	c.Close() // dead port

	res, err := Run(context.Background(), Config{
		Addr: addr, Count: 6, Interval: 10 * time.Millisecond,
		Timeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("dead server must degrade, not error: %v", err)
	}
	if res.Sent != 6 || res.Received != 0 {
		t.Fatalf("sent/received = %d/%d, want 6/0", res.Sent, res.Received)
	}
	if res.LossRate() != 1 {
		t.Fatalf("LossRate = %v, want 1", res.LossRate())
	}
	if res.Interrupted {
		t.Fatal("run sent every probe: must not be marked interrupted")
	}
	// Connected-UDP sockets usually surface the unreachable as write
	// errors from the second probe on; at minimum the field exists and
	// never exceeds the probe count.
	if res.WriteErrors < 0 || res.WriteErrors > res.Sent {
		t.Fatalf("WriteErrors = %d out of %d sent", res.WriteErrors, res.Sent)
	}
}

// TestPingServerDiesMidRun kills the echo server halfway: early probes
// answer, late ones are lost, and the run still returns a full Result.
func TestPingServerDiesMidRun(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr().String()
	go func() {
		time.Sleep(120 * time.Millisecond)
		s.Close()
	}()
	res, err := Run(context.Background(), Config{
		Addr: addr, Count: 10, Interval: 30 * time.Millisecond,
		Timeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("mid-run server death must degrade, not error: %v", err)
	}
	if res.Sent != 10 {
		t.Fatalf("Sent = %d, want 10", res.Sent)
	}
	if res.Received == 0 {
		t.Fatal("early probes should have been answered")
	}
	if res.Received == 10 {
		t.Fatal("late probes should have been lost")
	}
	if lr := res.LossRate(); lr <= 0 || lr >= 1 {
		t.Fatalf("LossRate = %v, want partial", lr)
	}
}

// TestPingCancelMarksInterrupted cancels mid-run: the partial result
// must carry Interrupted with Sent reflecting the attempted probes.
func TestPingCancelMarksInterrupted(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, Config{
		Addr: s.Addr().String(), Count: 50, Interval: 30 * time.Millisecond,
		Timeout: time.Second,
	})
	if err != nil {
		t.Fatalf("cancellation must yield a partial result: %v", err)
	}
	if !res.Interrupted {
		t.Fatal("cancelled run not marked Interrupted")
	}
	if res.Sent == 0 || res.Sent >= 50 {
		t.Fatalf("Sent = %d, want partial progress", res.Sent)
	}
	if len(res.Probes) != res.Sent {
		t.Fatalf("Probes len %d != Sent %d", len(res.Probes), res.Sent)
	}
}
