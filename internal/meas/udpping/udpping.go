// Package udpping reimplements the paper's UDP-Ping tool (§3.2): the
// authors measure latency with 1024-byte UDP probes because ICMP is
// often blocked or deprioritised. The client stamps each probe with a
// sequence number and send time; the server echoes it back; the client
// reports per-probe RTTs and loss.
package udpping

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"time"

	"satcell/internal/obs"
	"satcell/internal/vclock"
)

// PayloadSize matches the paper: 1024 bytes per probe.
const PayloadSize = 1024

const (
	magic      = 0x70C9
	headerSize = 20
)

// Server echoes probes until closed.
type Server struct {
	conn   *net.UDPConn
	closed chan struct{}
	wg     sync.WaitGroup
}

// NewServer starts an echo server on addr (e.g. "127.0.0.1:0").
func NewServer(addr string) (*Server, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	s := &Server{conn: conn, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the server's address.
func (s *Server) Addr() *net.UDPAddr { return s.conn.LocalAddr().(*net.UDPAddr) }

// Close stops the server.
func (s *Server) Close() error {
	select {
	case <-s.closed:
		return nil
	default:
	}
	close(s.closed)
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) loop() {
	defer s.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, from, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < headerSize || binary.BigEndian.Uint16(buf) != magic {
			continue
		}
		s.conn.WriteToUDP(buf[:n], from)
	}
}

// Probe is one ping result.
type Probe struct {
	Seq  uint64
	RTT  time.Duration
	Lost bool
}

// Result summarises a ping run.
type Result struct {
	Sent     int
	Received int
	Probes   []Probe
	// WriteErrors counts probes whose send itself failed (ICMP
	// unreachable while the far end was down); they are recorded as
	// lost probes, not run-aborting errors.
	WriteErrors int
	// Interrupted marks a run cancelled before every probe was sent;
	// Sent reflects the probes actually attempted.
	Interrupted bool
}

// LossRate returns the fraction of unanswered probes.
func (r Result) LossRate() float64 {
	if r.Sent == 0 {
		return 0
	}
	return 1 - float64(r.Received)/float64(r.Sent)
}

// RTTsMs returns the answered probes' RTTs in milliseconds.
func (r Result) RTTsMs() []float64 {
	out := make([]float64, 0, r.Received)
	for _, p := range r.Probes {
		if !p.Lost {
			out = append(out, p.RTT.Seconds()*1000)
		}
	}
	return out
}

// Config controls a ping run.
type Config struct {
	Addr     string        // server address
	Count    int           // probes to send; default 10
	Interval time.Duration // default 200 ms
	Timeout  time.Duration // per-probe timeout; default 2 s

	// Metrics, when non-nil, receives live per-probe progress:
	// udpping.sent, udpping.received and udpping.write_errors counters,
	// plus the udpping.rtt_ms histogram of answered probes.
	Metrics *obs.Registry

	// Clock drives probe pacing, timestamps and the trailing timeout.
	// Nil means the wall clock.
	Clock vclock.Clock
}

// Run performs a ping run. Probes are sent at the configured interval;
// replies are matched by sequence number, so late replies still count
// (within the trailing timeout window).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Count <= 0 {
		cfg.Count = 10
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 200 * time.Millisecond
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	clk := vclock.Or(cfg.Clock)
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	type echo struct {
		seq uint64
		rtt time.Duration
	}
	echoes := make(chan echo, cfg.Count)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64<<10)
		for {
			n, err := conn.Read(buf)
			if err != nil {
				if errors.Is(err, net.ErrClosed) {
					return
				}
				// Transient: ICMP unreachable while the far end is
				// down. Later echoes must still be collected.
				continue
			}
			if n < headerSize || binary.BigEndian.Uint16(buf) != magic {
				continue
			}
			seq := binary.BigEndian.Uint64(buf[4:])
			sent := int64(binary.BigEndian.Uint64(buf[12:]))
			select {
			case echoes <- echo{seq: seq, rtt: time.Duration(clk.Now().UnixNano() - sent)}:
			default:
				// Collector gone or buffer full (duplicate echoes):
				// dropping is safe, blocking would wedge the reader.
			}
		}
	}()

	payload := make([]byte, PayloadSize)
	binary.BigEndian.PutUint16(payload, magic)
	sent := 0
	writeErrs := 0
	sentCtr := cfg.Metrics.Counter("udpping.sent")
	werrCtr := cfg.Metrics.Counter("udpping.write_errors")
	for seq := 0; seq < cfg.Count && ctx.Err() == nil; seq++ {
		binary.BigEndian.PutUint64(payload[4:], uint64(seq))
		binary.BigEndian.PutUint64(payload[12:], uint64(clk.Now().UnixNano()))
		if _, err := conn.Write(payload); err != nil {
			// An unreachable far end (killed relay/server, blackout)
			// surfaces here as ICMP errors on the connected socket.
			// The probe is simply lost; keep probing — the link may
			// come back mid-run, exactly like a drive-test outage.
			writeErrs++
			werrCtr.Inc()
		}
		sent++
		sentCtr.Inc()
		if seq < cfg.Count-1 {
			select {
			case <-clk.After(cfg.Interval):
			case <-ctx.Done():
			}
		}
	}

	// Collect replies until the trailing timeout (or cancellation).
	rtts := make(map[uint64]time.Duration, sent)
	recvCtr := cfg.Metrics.Counter("udpping.received")
	rttHist := cfg.Metrics.Histogram("udpping.rtt_ms", obs.RTTMsBuckets)
	deadline := clk.After(cfg.Timeout)
collect:
	for len(rtts) < sent {
		select {
		case e := <-echoes:
			if _, dup := rtts[e.seq]; !dup && e.seq < uint64(sent) {
				rtts[e.seq] = e.rtt
				recvCtr.Inc()
				rttHist.Observe(e.rtt.Seconds() * 1000)
			}
		case <-deadline:
			break collect
		case <-ctx.Done():
			break collect
		}
	}
	conn.Close()
	wg.Wait()

	res := &Result{Sent: sent, WriteErrors: writeErrs, Interrupted: sent < cfg.Count}
	for seq := uint64(0); seq < uint64(sent); seq++ {
		if rtt, ok := rtts[seq]; ok {
			res.Received++
			res.Probes = append(res.Probes, Probe{Seq: seq, RTT: rtt})
		} else {
			res.Probes = append(res.Probes, Probe{Seq: seq, Lost: true})
		}
	}
	return res, nil
}
