package udpping

import (
	"context"
	"testing"
	"time"

	"satcell/internal/netem"
)

func TestPingLoopback(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := Run(context.Background(), Config{
		Addr: s.Addr().String(), Count: 8, Interval: 20 * time.Millisecond, Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 8 || res.Received != 8 {
		t.Fatalf("sent/received = %d/%d", res.Sent, res.Received)
	}
	for _, ms := range res.RTTsMs() {
		if ms <= 0 || ms > 100 {
			t.Fatalf("loopback RTT %v ms implausible", ms)
		}
	}
	if res.LossRate() != 0 {
		t.Fatalf("loss = %v", res.LossRate())
	}
}

func TestPingThroughShapedRelay(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	relay, err := netem.NewUDPRelay("127.0.0.1:0", s.Addr().String(),
		netem.ConstantShape(100, 30*time.Millisecond, 0),
		netem.ConstantShape(100, 30*time.Millisecond, 0), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	res, err := Run(context.Background(), Config{
		Addr: relay.Addr().String(), Count: 6, Interval: 30 * time.Millisecond, Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatal("no echoes through relay")
	}
	for _, ms := range res.RTTsMs() {
		if ms < 60 {
			t.Fatalf("RTT %v ms below the shaped 60 ms floor", ms)
		}
	}
}

func TestPingLossCounted(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	relay, err := netem.NewUDPRelay("127.0.0.1:0", s.Addr().String(),
		netem.ConstantShape(100, 0, 0.5), netem.ConstantShape(100, 0, 0), 11)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()
	res, err := Run(context.Background(), Config{
		Addr: relay.Addr().String(), Count: 40, Interval: 5 * time.Millisecond, Timeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LossRate() < 0.2 || res.LossRate() > 0.8 {
		t.Fatalf("loss = %v, want ~0.5", res.LossRate())
	}
	lost := 0
	for _, p := range res.Probes {
		if p.Lost {
			lost++
		}
	}
	if lost != res.Sent-res.Received {
		t.Fatal("probe loss bookkeeping inconsistent")
	}
}

func TestEmptyResult(t *testing.T) {
	var r Result
	if r.LossRate() != 0 || len(r.RTTsMs()) != 0 {
		t.Fatal("zero-value Result misbehaves")
	}
}
