package cell

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"satcell/internal/channel"
	"satcell/internal/geo"
	"satcell/internal/stats"
)

// Radio-link constants.
const (
	refDistanceKm  = 0.1  // path-loss reference distance
	noiseFloorDBm  = -104 // thermal noise + receiver figure over ~25 MHz
	maxSINRdB      = 28   // modulation ceiling (256-QAM region)
	minServeSINRdB = -6   // below this the link is unusable
	mimoGain       = 1.9  // effective spatial-multiplexing gain
	maxSpectralEff = 7.0  // bits/s/Hz cap
	handoverHystKm = 0.15 // extra distance beyond break-even before handover
)

// pathLossExp returns the log-distance path-loss exponent per area type:
// urban canyons attenuate fast; rural macro sites on tall towers over
// open terrain propagate much further.
func pathLossExp(a geo.AreaType) float64 {
	switch a {
	case geo.Urban:
		return 3.4
	case geo.Suburban:
		return 3.1
	default:
		return 2.8
	}
}

// Model is the cellular channel sampler for one carrier. It implements
// channel.Model.
type Model struct {
	carrier Carrier
	seed    int64

	rng        *rand.Rand
	serving    servingCell
	loss       stats.GilbertElliott
	load       stats.OrnsteinUhlenbeck
	cellSeq    int
	handover   int // seconds of handover disruption remaining
	shareEpoch int64
	share      float64
	logShare   float64
}

type servingCell struct {
	valid  bool
	pos    geo.LatLon
	tech   Tech
	id     string
	area   geo.AreaType
	shadow float64 // per-cell shadow-fading offset (dB), drawn at attach
	// breakKm is the distance at which a neighbouring site becomes
	// closer and a handover triggers (drawn once per serving cell).
	breakKm float64
}

// NewModel builds a carrier channel model.
func NewModel(carrier Carrier, seed int64) *Model {
	m := &Model{carrier: carrier, seed: seed}
	m.Reset()
	return m
}

// ModelBuilder returns a channel.Builder producing independent Model
// instances for the carrier; every instance starts its random stream
// from the same seed, making a fresh model per drive equivalent to a
// Reset() on a shared one.
func ModelBuilder(carrier Carrier, seed int64) channel.Builder {
	return func() channel.Model { return NewModel(carrier, seed) }
}

// Network implements channel.Model.
func (m *Model) Network() channel.NetworkID { return m.carrier.Network }

// Reset implements channel.Model.
func (m *Model) Reset() {
	m.rng = rand.New(rand.NewSource(m.seed))
	m.serving = servingCell{}
	// Cellular links hide radio loss behind HARQ/RLC retransmission:
	// what TCP sees is nearly loss-free apart from rare bad seconds
	// (cell-edge, handover), which keeps cellular TCP ~= UDP (§4.1).
	m.loss = stats.GilbertElliott{
		PGoodToBad: 0.005, PBadToGood: 0.5,
		LossGood: 0.000002, LossBad: 0.002,
	}
	m.load = stats.OrnsteinUhlenbeck{Mean: 1, Theta: 0.25, Sigma: 0.06}
	m.cellSeq = 0
	m.handover = 0
	m.shareEpoch = -1
	m.share = 0.5
	m.logShare = -0.6539
}

// attach picks a new serving cell near pos for the given area type.
func (m *Model) attach(pos geo.LatLon, area geo.AreaType) {
	p := m.carrier.Deployment[area]
	d := rayleighNearest(m.rng, p.SiteDensityPerKm2)
	if d > p.MaxRangeKm {
		// Nearest site is out of range: dead zone.
		m.serving = servingCell{}
		return
	}
	bearing := m.rng.Float64() * 360
	tech := LTE
	if m.rng.Float64() < p.Prob5G {
		tech = NR5GLow
	}
	m.cellSeq++
	m.serving = servingCell{
		valid:  true,
		pos:    geo.Destination(pos, bearing, d),
		tech:   tech,
		id:     fmt.Sprintf("%s-%s-%04d", m.carrier.Network, tech, m.cellSeq),
		area:   area,
		shadow: 3 * m.rng.NormFloat64(),
		// A neighbour takes over roughly one inter-site distance away.
		breakKm: d + rayleighNearest(m.rng, p.SiteDensityPerKm2) + handoverHystKm,
	}
}

// Sample implements channel.Model.
func (m *Model) Sample(env channel.Env) channel.Sample {
	area := env.Area
	p := m.carrier.Deployment[area]

	// (Re-)attachment: no cell yet, area class changed (deployment
	// density changes), or we drove past the handover break distance.
	if !m.serving.valid {
		m.attach(env.Pos, area)
		// Initial attach does not count as a handover disruption.
	} else {
		d := geo.DistanceKm(env.Pos, m.serving.pos)
		if m.serving.area != area || d > m.serving.breakKm || d > p.MaxRangeKm {
			m.attach(env.Pos, area)
			if m.serving.valid {
				m.handover = 1 // efficient handover: one degraded second
			}
		}
	}

	s := channel.Sample{At: env.At}
	if !m.serving.valid {
		// Dead zone: periodically rescan for coverage.
		if m.rng.Float64() < 0.2 {
			m.attach(env.Pos, area)
		}
		s.Outage = true
		s.DownMbps = 0
		s.UpMbps = 0
		s.LossDown, s.LossUp = 1, 1
		s.SignalDB = -130
		return s
	}

	d := geo.DistanceKm(env.Pos, m.serving.pos)
	rsrp := m.carrier.TxRefDBm - 10*pathLossExp(area)*math.Log10(math.Max(d, 0.02)/refDistanceKm)
	// Shadow fading: a per-cell offset (terrain between us and this
	// site) plus small fast fading. Keeping the large component fixed
	// per cell avoids absurd second-scale coverage flapping.
	rsrp += m.serving.shadow + 1.5*m.rng.NormFloat64()

	interf := 0.0
	if area == geo.Urban {
		interf = 3 // dense reuse raises the interference floor
	}
	sinr := stats.Clamp(rsrp-noiseFloorDBm-interf, minServeSINRdB-8, maxSINRdB)
	if sinr < minServeSINRdB-4 {
		// Deep cell edge: no usable service.
		s.Outage = true
		s.DownMbps = 0
		s.UpMbps = 0
		s.LossDown, s.LossUp = 1, 1
		s.SignalDB = rsrp
		s.Serving = m.serving.id
		return s
	}
	if sinr < minServeSINRdB {
		// Shallow cell edge: the connection survives at a crawl with
		// elevated loss (robust MCS, HARQ retries) — degraded, not dead.
		s.DownMbps = 1 + 2*m.rng.Float64()
		s.UpMbps = 0.3 + 0.5*m.rng.Float64()
		s.LossDown, s.LossUp = 0.01, 0.012
		s.SignalDB = rsrp
		s.Serving = m.serving.id
		s.RTT = m.rtt() + 30*time.Millisecond
		return s
	}

	eff := math.Min(maxSpectralEff, math.Log2(1+math.Pow(10, sinr/10)))
	bw := m.carrier.BWMHz[m.serving.tech]
	// Cell load moves on tens-of-seconds timescales: the lognormal
	// component evolves as an AR(1) process over 20 s epochs (load is
	// correlated — the same users stay attached), the OU process adds
	// gentle second-scale variation on top.
	if epoch := int64(env.At / (20 * time.Second)); epoch != m.shareEpoch {
		const (
			mu    = -0.6539 // ln(0.52)
			sigma = 0.535
			rho   = 0.8
		)
		for m.shareEpoch < epoch {
			m.shareEpoch++
			m.logShare = rho*m.logShare + (1-rho)*mu +
				sigma*math.Sqrt(1-rho*rho)*m.rng.NormFloat64()
		}
		m.share = math.Exp(m.logShare)
	}
	share := stats.Clamp(
		stats.Clamp(m.load.Step(m.rng), 0.55, 1.35)*m.share,
		0.08, 0.95)
	down := bw * eff * mimoGain * share
	up := down * m.carrier.UplinkShare

	lossEvent := m.loss.Step(m.rng)
	lossD := lossBase(m.loss)
	lossU := lossD * 1.2
	if lossEvent {
		lossD += 0.004
		lossU += 0.005
	}
	// Bad-state seconds and handovers are correlated loss events: one
	// TCP recovery episode, not a storm of independent drops (HARQ and
	// make-before-break handover keep transport-visible loss bursty).
	if m.loss.Bad() || lossEvent {
		s.Burst = true
	}
	if m.handover > 0 {
		m.handover--
		down *= 0.45
		up *= 0.45
		lossD += 0.004
		s.Burst = true
	}

	s.DownMbps = math.Max(0, down)
	s.UpMbps = math.Max(0, up)
	s.LossDown = stats.Clamp(lossD, 0, 1)
	s.LossUp = stats.Clamp(lossU, 0, 1)
	s.SignalDB = rsrp
	s.Serving = m.serving.id
	s.RTT = m.rtt()
	return s
}

// lossBase returns the current-state baseline loss probability of the
// Gilbert-Elliott chain.
func lossBase(g stats.GilbertElliott) float64 {
	if g.Bad() {
		return g.LossBad
	}
	return g.LossGood
}

// rtt models the radio access + core network round-trip time.
func (m *Model) rtt() time.Duration {
	jitter := time.Duration(m.rng.ExpFloat64() * float64(9*time.Millisecond))
	return m.carrier.CoreRTT + jitter
}
