// Package cell models the cellular side of the study: carrier-specific
// base-station deployments (dense downtown grids thinning out to sparse
// rural macro sites), a log-distance path-loss / SINR / rate link model
// with LTE and low-band 5G technology caps, handover with hysteresis,
// and a channel sampler implementing channel.Model.
package cell

import (
	"math"
	"math/rand"
	"time"

	"satcell/internal/channel"
	"satcell/internal/geo"
)

// Tech is the serving radio technology.
type Tech int

const (
	LTE     Tech = iota
	NR5GLow      // low-band 5G: broad coverage, modest speed (§1: "either low-band 5G or 4G LTE")
)

// String returns the display name of the technology.
func (t Tech) String() string {
	if t == NR5GLow {
		return "5G-low"
	}
	return "LTE"
}

// AreaParams hold the deployment characteristics of one carrier in one
// area type.
type AreaParams struct {
	SiteDensityPerKm2 float64 // base-station density of a Poisson deployment
	Prob5G            float64 // probability a site serves low-band 5G
	MaxRangeKm        float64 // beyond this distance there is no service
}

// Carrier describes one cellular operator.
type Carrier struct {
	Network channel.NetworkID

	// Deployment per area type, indexed by geo.AreaType.
	Deployment [3]AreaParams

	// EffectiveBWMHz is the usable aggregated bandwidth per technology.
	BWMHz [2]float64

	// TxRefDBm is the received power at the 100 m reference distance.
	TxRefDBm float64

	// CoreRTT is the base round-trip time through the carrier's core
	// network to a nearby server.
	CoreRTT time.Duration

	// UplinkShare is the uplink/downlink capacity ratio.
	UplinkShare float64
}

// Carriers returns the three measured carriers with their synthetic
// deployment parameters. Relative standings follow the paper: Verizon
// and T-Mobile run denser deployments with lower core latency along the
// campaign corridor, while AT&T trails in both coverage and latency
// ("likely due to its relatively low coverage along our trip", §4.1).
func Carriers() []Carrier {
	return []Carrier{
		{
			Network: channel.ATT,
			Deployment: [3]AreaParams{
				geo.Urban:    {SiteDensityPerKm2: 2.2, Prob5G: 0.45, MaxRangeKm: 2.0},
				geo.Suburban: {SiteDensityPerKm2: 0.35, Prob5G: 0.30, MaxRangeKm: 3.5},
				geo.Rural:    {SiteDensityPerKm2: 0.045, Prob5G: 0.20, MaxRangeKm: 4.5},
			},
			BWMHz:       [2]float64{LTE: 20, NR5GLow: 22},
			TxRefDBm:    -70,
			CoreRTT:     68 * time.Millisecond,
			UplinkShare: 0.25,
		},
		{
			Network: channel.TMobile,
			Deployment: [3]AreaParams{
				geo.Urban:    {SiteDensityPerKm2: 3.8, Prob5G: 0.80, MaxRangeKm: 2.0},
				geo.Suburban: {SiteDensityPerKm2: 0.70, Prob5G: 0.65, MaxRangeKm: 3.5},
				geo.Rural:    {SiteDensityPerKm2: 0.085, Prob5G: 0.50, MaxRangeKm: 5.0},
			},
			BWMHz:       [2]float64{LTE: 24, NR5GLow: 30},
			TxRefDBm:    -69,
			CoreRTT:     42 * time.Millisecond,
			UplinkShare: 0.25,
		},
		{
			Network: channel.Verizon,
			Deployment: [3]AreaParams{
				geo.Urban:    {SiteDensityPerKm2: 4.0, Prob5G: 0.60, MaxRangeKm: 2.0},
				geo.Suburban: {SiteDensityPerKm2: 0.75, Prob5G: 0.50, MaxRangeKm: 3.5},
				geo.Rural:    {SiteDensityPerKm2: 0.090, Prob5G: 0.35, MaxRangeKm: 5.0},
			},
			BWMHz:       [2]float64{LTE: 26, NR5GLow: 28},
			TxRefDBm:    -68,
			CoreRTT:     40 * time.Millisecond,
			UplinkShare: 0.25,
		},
	}
}

// CarrierFor returns the carrier parameters for a built-in cellular
// network, or false for anything else. Custom carriers live in the
// network catalog, not here.
func CarrierFor(n channel.NetworkID) (Carrier, bool) {
	for _, c := range Carriers() {
		if c.Network == n {
			return c, true
		}
	}
	return Carrier{}, false
}

// rayleighNearest draws the distance to the nearest point of a Poisson
// point process with the given density (Rayleigh distributed).
func rayleighNearest(r *rand.Rand, densityPerKm2 float64) float64 {
	if densityPerKm2 <= 0 {
		return math.Inf(1)
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return math.Sqrt(-math.Log(u) / (math.Pi * densityPerKm2))
}
