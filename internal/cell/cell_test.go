package cell

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"satcell/internal/channel"
	"satcell/internal/geo"
	"satcell/internal/stats"
)

func TestCarriersRoster(t *testing.T) {
	cs := Carriers()
	if len(cs) != 3 {
		t.Fatalf("want 3 carriers, got %d", len(cs))
	}
	for _, c := range cs {
		if !c.Network.Cellular() {
			t.Fatalf("%v is not cellular", c.Network)
		}
		for _, a := range geo.AreaTypes {
			p := c.Deployment[a]
			if p.SiteDensityPerKm2 <= 0 || p.MaxRangeKm <= 0 {
				t.Fatalf("%v/%v deployment unset", c.Network, a)
			}
		}
		// Urban deployments must always be the densest.
		if !(c.Deployment[geo.Urban].SiteDensityPerKm2 > c.Deployment[geo.Suburban].SiteDensityPerKm2 &&
			c.Deployment[geo.Suburban].SiteDensityPerKm2 > c.Deployment[geo.Rural].SiteDensityPerKm2) {
			t.Fatalf("%v density not monotone", c.Network)
		}
	}
}

func TestCarrierFor(t *testing.T) {
	if _, ok := CarrierFor(channel.StarlinkRoam); ok {
		t.Fatal("RM should not resolve to a carrier")
	}
	c, ok := CarrierFor(channel.Verizon)
	if !ok || c.Network != channel.Verizon {
		t.Fatal("CarrierFor(VZ) broken")
	}
}

func TestATTTrailsInDeploymentAndLatency(t *testing.T) {
	att, _ := CarrierFor(channel.ATT)
	vz, _ := CarrierFor(channel.Verizon)
	tm, _ := CarrierFor(channel.TMobile)
	for _, a := range geo.AreaTypes {
		if att.Deployment[a].SiteDensityPerKm2 >= vz.Deployment[a].SiteDensityPerKm2 {
			t.Fatalf("ATT should trail VZ in %v density", a)
		}
	}
	if att.CoreRTT <= vz.CoreRTT || att.CoreRTT <= tm.CoreRTT {
		t.Fatal("ATT should have the highest core RTT")
	}
}

func TestRayleighNearestDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	lambda := 1.0
	n := 50000
	var w stats.Welford
	for i := 0; i < n; i++ {
		w.Add(rayleighNearest(r, lambda))
	}
	// Mean nearest-neighbour distance of a PPP is 1/(2*sqrt(lambda)).
	want := 0.5
	if math.Abs(w.Mean()-want) > 0.02 {
		t.Fatalf("mean nearest distance = %v, want %v", w.Mean(), want)
	}
	if !math.IsInf(rayleighNearest(r, 0), 1) {
		t.Fatal("zero density should give infinite distance")
	}
}

func TestTechString(t *testing.T) {
	if LTE.String() != "LTE" || NR5GLow.String() != "5G-low" {
		t.Fatal("tech names wrong")
	}
}

// driveSample runs a model along a straight drive in one area type.
func driveSample(network channel.Network, area geo.AreaType, secs int, seed int64) []channel.Sample {
	c, _ := CarrierFor(network)
	m := NewModel(c, seed)
	pos := geo.LatLon{Lat: 44.35, Lon: -90.8}
	out := make([]channel.Sample, 0, secs)
	for i := 0; i < secs; i++ {
		env := channel.Env{
			At:       time.Duration(i) * time.Second,
			Pos:      geo.Destination(pos, 90, float64(i)*0.022), // ~80 km/h
			SpeedKmh: 80,
			Area:     area,
		}
		out = append(out, m.Sample(env))
	}
	return out
}

func meanDown(ss []channel.Sample) float64 {
	var w stats.Welford
	for _, s := range ss {
		w.Add(s.DownMbps)
	}
	return w.Mean()
}

func TestCellularUrbanBeatsRural(t *testing.T) {
	for _, n := range []channel.Network{channel.ATT, channel.TMobile, channel.Verizon} {
		urban := driveSample(n, geo.Urban, 1500, 3)
		rural := driveSample(n, geo.Rural, 1500, 3)
		mu, mr := meanDown(urban), meanDown(rural)
		if mu <= mr {
			t.Fatalf("%v: urban %v <= rural %v", n, mu, mr)
		}
		minUrban := 80.0
		if n == channel.ATT {
			minUrban = 45 // ATT trails everywhere along the corridor
		}
		if mu < minUrban {
			t.Fatalf("%v urban mean %v too low", n, mu)
		}
		if mr > 80 {
			t.Fatalf("%v rural mean %v too high", n, mr)
		}
	}
}

func TestVerizonOutperformsATT(t *testing.T) {
	// Compare over a mixed drive (suburban + rural segments).
	var vzAll, attAll []float64
	for _, area := range []geo.AreaType{geo.Suburban, geo.Rural} {
		vz := driveSample(channel.Verizon, area, 1200, 5)
		att := driveSample(channel.ATT, area, 1200, 5)
		for i := range vz {
			vzAll = append(vzAll, vz[i].DownMbps)
			attAll = append(attAll, att[i].DownMbps)
		}
	}
	if stats.Mean(vzAll) <= 1.3*stats.Mean(attAll) {
		t.Fatalf("VZ %v not clearly above ATT %v", stats.Mean(vzAll), stats.Mean(attAll))
	}
}

func TestATTRuralDeadZones(t *testing.T) {
	samples := driveSample(channel.ATT, geo.Rural, 2500, 7)
	out := 0
	for _, s := range samples {
		if s.Outage {
			out++
		}
	}
	frac := float64(out) / float64(len(samples))
	if frac < 0.05 || frac > 0.7 {
		t.Fatalf("ATT rural outage fraction = %v, want substantial", frac)
	}
	vzSamples := driveSample(channel.Verizon, geo.Rural, 2500, 7)
	vzOut := 0
	for _, s := range vzSamples {
		if s.Outage {
			vzOut++
		}
	}
	if vzOut >= out {
		t.Fatalf("VZ rural outages (%d) should be below ATT (%d)", vzOut, out)
	}
}

func TestCellularLossLow(t *testing.T) {
	samples := driveSample(channel.Verizon, geo.Suburban, 2000, 9)
	var w stats.Welford
	for _, s := range samples {
		if s.Outage {
			continue
		}
		w.Add(s.LossDown)
	}
	// Cellular loss must sit well below Starlink's (paper Fig. 5).
	if w.Mean() > 0.004 {
		t.Fatalf("cellular mean loss = %v, too high", w.Mean())
	}
}

func TestCellularRTTOrdering(t *testing.T) {
	med := func(n channel.Network) float64 {
		ss := driveSample(n, geo.Suburban, 1200, 11)
		var rtts []float64
		for _, s := range ss {
			if !s.Outage {
				rtts = append(rtts, s.RTT.Seconds()*1000)
			}
		}
		return stats.Median(rtts)
	}
	vz, tm, att := med(channel.Verizon), med(channel.TMobile), med(channel.ATT)
	if !(vz < att && tm < att) {
		t.Fatalf("RTT ordering broken: VZ %v TM %v ATT %v", vz, tm, att)
	}
	if vz < 35 || vz > 70 {
		t.Fatalf("VZ median RTT %v outside 35-70ms", vz)
	}
	if att < 60 || att > 110 {
		t.Fatalf("ATT median RTT %v outside 60-110ms", att)
	}
}

func TestHandoversHappenAndAreBrief(t *testing.T) {
	samples := driveSample(channel.Verizon, geo.Suburban, 1800, 13)
	serving := ""
	changes := 0
	for _, s := range samples {
		if s.Serving != "" && serving != "" && s.Serving != serving {
			changes++
		}
		if s.Serving != "" {
			serving = s.Serving
		}
	}
	// 40 km of suburban driving crosses many cells.
	if changes < 5 {
		t.Fatalf("only %d handovers", changes)
	}
}

func TestUplinkShare(t *testing.T) {
	samples := driveSample(channel.Verizon, geo.Urban, 1200, 15)
	var down, up stats.Welford
	for _, s := range samples {
		if s.Outage {
			continue
		}
		down.Add(s.DownMbps)
		up.Add(s.UpMbps)
	}
	ratio := up.Mean() / down.Mean()
	if math.Abs(ratio-0.25) > 0.05 {
		t.Fatalf("uplink share = %v, want ~0.25", ratio)
	}
}

func TestModelResetReproducible(t *testing.T) {
	c, _ := CarrierFor(channel.TMobile)
	m := NewModel(c, 99)
	env := channel.Env{Pos: geo.LatLon{Lat: 43, Lon: -89}, SpeedKmh: 50, Area: geo.Suburban}
	a := make([]channel.Sample, 60)
	for i := range a {
		env.At = time.Duration(i) * time.Second
		a[i] = m.Sample(env)
	}
	m.Reset()
	for i := range a {
		env.At = time.Duration(i) * time.Second
		if got := m.Sample(env); got != a[i] {
			t.Fatalf("sample %d differs after Reset", i)
		}
	}
	if m.Network() != channel.TMobile {
		t.Fatal("Network() wrong")
	}
}
