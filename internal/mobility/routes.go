package mobility

import (
	"fmt"

	"satcell/internal/geo"
)

// leg is a route-building helper pairing a waypoint with the speed limit
// of the leg leading to it.
type leg struct {
	to    geo.LatLon
	limit float64
}

func mustRoute(name, state string, start geo.LatLon, legs []leg) *Route {
	segs := make([]Segment, len(legs))
	for i, l := range legs {
		segs[i] = Segment{To: l.to, SpeedLimitKmh: l.limit}
	}
	r, err := NewRoute(name, state, start, segs)
	if err != nil {
		panic(fmt.Sprintf("mobility: bad built-in route: %v", err))
	}
	return r
}

// cityLoop builds a small urban circuit around a centre point: a square
// loop of the given radius driven at city speeds.
func cityLoop(name, state string, centre geo.LatLon, radiusKm float64) *Route {
	n := geo.Destination(centre, 0, radiusKm)
	e := geo.Destination(centre, 90, radiusKm)
	s := geo.Destination(centre, 180, radiusKm)
	w := geo.Destination(centre, 270, radiusKm)
	return mustRoute(name, state, n, []leg{
		{e, 50}, {s, 45}, {w, 50}, {n, 45},
	})
}

// freeway builds an interstate-style route through the given waypoints at
// freeway speed (capped at the campaign's 100 km/h).
func freeway(name, state string, pts ...geo.LatLon) *Route {
	legs := make([]leg, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		legs[i-1] = leg{pts[i], 100}
	}
	return mustRoute(name, state, pts[0], legs)
}

// Campaign city coordinates (match internal/geo.DefaultGazetteer).
var (
	detroit     = geo.LatLon{Lat: 42.3314, Lon: -83.0458}
	annArbor    = geo.LatLon{Lat: 42.2808, Lon: -83.7430}
	jackson     = geo.LatLon{Lat: 42.2459, Lon: -84.4013}
	battleCreek = geo.LatLon{Lat: 42.3212, Lon: -85.1797}
	kalamazoo   = geo.LatLon{Lat: 42.2917, Lon: -85.5872}
	bentonHbr   = geo.LatLon{Lat: 42.1167, Lon: -86.4542}
	michiganCty = geo.LatLon{Lat: 41.7075, Lon: -86.8950}
	gary        = geo.LatLon{Lat: 41.5934, Lon: -87.3464}
	chicago     = geo.LatLon{Lat: 41.8781, Lon: -87.6298}
	milwaukee   = geo.LatLon{Lat: 43.0389, Lon: -87.9065}
	madison     = geo.LatLon{Lat: 43.0731, Lon: -89.4012}
	wiDells     = geo.LatLon{Lat: 43.6275, Lon: -89.7710}
	tomah       = geo.LatLon{Lat: 43.9786, Lon: -90.5040}
	eauClaire   = geo.LatLon{Lat: 44.8113, Lon: -91.4985}
	menomonie   = geo.LatLon{Lat: 44.8755, Lon: -91.9193}
	minneapolis = geo.LatLon{Lat: 44.9778, Lon: -93.2650}
	stPaul      = geo.LatLon{Lat: 44.9537, Lon: -93.0900}
	rochester   = geo.LatLon{Lat: 44.0121, Lon: -92.4802}
	stCloud     = geo.LatLon{Lat: 45.5579, Lon: -94.1632}
)

// DefaultRoutes returns the synthetic five-state drive corpus: urban
// circuits in the metro cores, mixed suburban connectors, and long rural
// interstate legs, mirroring the paper's Michigan-to-Minnesota campaign.
func DefaultRoutes() []*Route {
	return []*Route{
		cityLoop("detroit-loop", "MI", detroit, 4),
		freeway("i94-west-mi", "MI", annArbor, jackson, battleCreek, kalamazoo),
		freeway("i90-dells", "WI", madison, wiDells, tomah),
		mustRoute("detroit-annarbor", "MI", detroit, []leg{
			{geo.Destination(detroit, 260, 20), 90},
			{annArbor, 100},
		}),
		freeway("i94-eauclaire", "WI", tomah, eauClaire, menomonie),
		cityLoop("chicago-loop", "IL", chicago, 5),
		freeway("i94-north-il", "IL", chicago, milwaukee),
		freeway("us52-rochester", "MN", stPaul, rochester),
		cityLoop("milwaukee-loop", "WI", milwaukee, 4),
		freeway("i94-madison", "WI", milwaukee, madison),
		freeway("i94-lakeshore", "MI", kalamazoo, bentonHbr, michiganCty, gary),
		mustRoute("gary-chicago", "IN", gary, []leg{
			{geo.Destination(chicago, 135, 15), 90},
			{chicago, 70},
		}),
		freeway("i94-twincities", "WI", menomonie, stPaul),
		cityLoop("minneapolis-loop", "MN", minneapolis, 4),
		mustRoute("stpaul-minneapolis", "MN", stPaul, []leg{
			{minneapolis, 80},
			{geo.Destination(minneapolis, 315, 12), 90},
		}),
		freeway("i94-stcloud", "MN", minneapolis, stCloud),
	}
}
