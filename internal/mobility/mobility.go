// Package mobility models the drive campaign: routes with per-segment
// speed limits, a vehicle that follows them with realistic speed
// variation, and GPS fixes sampled along the way.
package mobility

import (
	"fmt"
	"math/rand"
	"time"

	"satcell/internal/geo"
)

// MaxSpeedKmh is the campaign-wide driving speed cap (§3.3: "our driving
// speed is capped at 100 km/h due to speed limits").
const MaxSpeedKmh = 100

// Segment is one leg of a route with a speed limit.
type Segment struct {
	To            geo.LatLon // end point of the segment (start is the previous segment's end)
	SpeedLimitKmh float64
}

// Route is a named drive path.
type Route struct {
	Name  string
	State string // state where the route begins (informational)
	Start geo.LatLon
	Segs  []Segment

	line   *geo.Polyline
	limits []float64
}

// NewRoute assembles a route. At least one segment is required.
func NewRoute(name, state string, start geo.LatLon, segs []Segment) (*Route, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("mobility: route %q has no segments", name)
	}
	pts := make([]geo.LatLon, 0, len(segs)+1)
	pts = append(pts, start)
	limits := make([]float64, 0, len(segs))
	for _, s := range segs {
		pts = append(pts, s.To)
		lim := s.SpeedLimitKmh
		if lim <= 0 || lim > MaxSpeedKmh {
			lim = MaxSpeedKmh
		}
		limits = append(limits, lim)
	}
	line, err := geo.NewPolyline(pts)
	if err != nil {
		return nil, fmt.Errorf("mobility: route %q: %w", name, err)
	}
	return &Route{Name: name, State: state, Start: start, Segs: segs, line: line, limits: limits}, nil
}

// LengthKm returns the total route length.
func (r *Route) LengthKm() float64 { return r.line.LengthKm() }

// PosAt returns the position after travelling distKm along the route.
func (r *Route) PosAt(distKm float64) geo.LatLon { return r.line.At(distKm) }

// LimitAt returns the speed limit in effect distKm along the route.
func (r *Route) LimitAt(distKm float64) float64 {
	return r.limits[r.line.SegmentIndex(distKm)]
}

// Fix is one GPS/odometry sample of the vehicle state.
type Fix struct {
	At       time.Duration
	Pos      geo.LatLon
	DistKm   float64 // odometer distance along the route
	SpeedKmh float64
	Area     geo.AreaType
}

// DriveConfig controls vehicle behaviour during a drive.
type DriveConfig struct {
	SampleEvery  time.Duration // fix interval; default 1s
	SpeedFactor  float64       // fraction of the limit targeted; default 0.92
	SpeedJitter  float64       // relative speed noise (std); default 0.06
	AccelKmhPerS float64       // max speed change per second; default 4
	StopChance   float64       // per-minute probability of a traffic stop in urban areas; default 0.25
	StopDuration time.Duration // mean stop duration; default 35s
}

func (c *DriveConfig) defaults() {
	if c.SampleEvery <= 0 {
		c.SampleEvery = time.Second
	}
	if c.SpeedFactor <= 0 {
		c.SpeedFactor = 0.92
	}
	if c.SpeedJitter <= 0 {
		c.SpeedJitter = 0.06
	}
	if c.AccelKmhPerS <= 0 {
		c.AccelKmhPerS = 4
	}
	if c.StopChance <= 0 {
		c.StopChance = 0.25
	}
	if c.StopDuration <= 0 {
		c.StopDuration = 35 * time.Second
	}
}

// Drive simulates the vehicle along route and returns one Fix per sample
// interval until the route is complete. Area classification uses gaz.
// The drive is deterministic given r's state.
func Drive(route *Route, gaz *geo.Gazetteer, cfg DriveConfig, r *rand.Rand) []Fix {
	cfg.defaults()
	dt := cfg.SampleEvery.Seconds()
	var (
		fixes    []Fix
		dist     float64
		speed    float64
		now      time.Duration
		stopLeft time.Duration
	)
	for dist < route.LengthKm() {
		pos := route.PosAt(dist)
		area := gaz.Classify(pos)

		// Traffic stops only happen where there is traffic control.
		if stopLeft <= 0 && area == geo.Urban {
			perSample := cfg.StopChance * dt / 60
			if r.Float64() < perSample {
				stopLeft = time.Duration((0.5 + r.Float64()) * float64(cfg.StopDuration))
			}
		}

		target := route.LimitAt(dist) * cfg.SpeedFactor
		if area == geo.Urban {
			target *= 0.85 // traffic slows urban driving
		}
		target *= 1 + cfg.SpeedJitter*r.NormFloat64()
		if stopLeft > 0 {
			target = 0
			stopLeft -= cfg.SampleEvery
		}
		if target < 0 {
			target = 0
		}
		if target > MaxSpeedKmh {
			target = MaxSpeedKmh
		}

		// Bounded acceleration toward the target speed.
		maxDelta := cfg.AccelKmhPerS * dt
		switch {
		case target > speed+maxDelta:
			speed += maxDelta
		case target < speed-2*maxDelta: // braking is stronger than accelerating
			speed -= 2 * maxDelta
		default:
			speed = target
		}
		if speed < 0 {
			speed = 0
		}

		fixes = append(fixes, Fix{At: now, Pos: pos, DistKm: dist, SpeedKmh: speed, Area: area})
		dist += speed * dt / 3600
		now += cfg.SampleEvery
	}
	return fixes
}

// TotalDistanceKm sums the odometer distance of a set of drives.
func TotalDistanceKm(drives [][]Fix) float64 {
	total := 0.0
	for _, fixes := range drives {
		if len(fixes) > 0 {
			total += fixes[len(fixes)-1].DistKm
		}
	}
	return total
}

// TotalDuration sums the wall time of a set of drives.
func TotalDuration(drives [][]Fix) time.Duration {
	var total time.Duration
	for _, fixes := range drives {
		if len(fixes) > 0 {
			total += fixes[len(fixes)-1].At
		}
	}
	return total
}
