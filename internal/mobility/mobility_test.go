package mobility

import (
	"math/rand"
	"testing"
	"time"

	"satcell/internal/geo"
)

func testRoute(t *testing.T) *Route {
	t.Helper()
	start := geo.LatLon{Lat: 44.35, Lon: -90.8} // rural WI
	mid := geo.Destination(start, 90, 10)
	end := geo.Destination(mid, 90, 10)
	r, err := NewRoute("test", "WI", start, []Segment{
		{To: mid, SpeedLimitKmh: 100},
		{To: end, SpeedLimitKmh: 60},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRouteErrors(t *testing.T) {
	if _, err := NewRoute("x", "MI", geo.LatLon{}, nil); err == nil {
		t.Fatal("expected error for empty route")
	}
}

func TestRouteGeometry(t *testing.T) {
	r := testRoute(t)
	if l := r.LengthKm(); l < 19.9 || l > 20.1 {
		t.Fatalf("length = %v, want ~20", l)
	}
	if lim := r.LimitAt(5); lim != 100 {
		t.Fatalf("LimitAt(5) = %v", lim)
	}
	if lim := r.LimitAt(15); lim != 60 {
		t.Fatalf("LimitAt(15) = %v", lim)
	}
}

func TestSpeedLimitClamping(t *testing.T) {
	start := geo.LatLon{Lat: 44, Lon: -90}
	r, err := NewRoute("fast", "WI", start, []Segment{
		{To: geo.Destination(start, 0, 5), SpeedLimitKmh: 130}, // above campaign cap
		{To: geo.Destination(start, 0, 10), SpeedLimitKmh: -5}, // invalid
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.LimitAt(1) != MaxSpeedKmh {
		t.Fatalf("limit above cap should clamp to %v, got %v", MaxSpeedKmh, r.LimitAt(1))
	}
	if r.LimitAt(7) != MaxSpeedKmh {
		t.Fatalf("invalid limit should default to cap, got %v", r.LimitAt(7))
	}
}

func TestDriveCompletesRoute(t *testing.T) {
	r := testRoute(t)
	gaz := geo.DefaultGazetteer()
	fixes := Drive(r, gaz, DriveConfig{}, rand.New(rand.NewSource(1)))
	if len(fixes) == 0 {
		t.Fatal("no fixes")
	}
	last := fixes[len(fixes)-1]
	if last.DistKm < r.LengthKm()-0.2 {
		t.Fatalf("drive stopped at %v of %v km", last.DistKm, r.LengthKm())
	}
	// 20 km at <=100 km/h takes at least 12 minutes.
	if last.At < 12*time.Minute {
		t.Fatalf("drive too fast: %v", last.At)
	}
}

func TestDriveSpeedRespectsCapAndAccel(t *testing.T) {
	r := testRoute(t)
	gaz := geo.DefaultGazetteer()
	cfg := DriveConfig{AccelKmhPerS: 4}
	fixes := Drive(r, gaz, cfg, rand.New(rand.NewSource(2)))
	prev := 0.0
	for i, f := range fixes {
		if f.SpeedKmh < 0 || f.SpeedKmh > MaxSpeedKmh {
			t.Fatalf("fix %d speed %v outside [0, %v]", i, f.SpeedKmh, MaxSpeedKmh)
		}
		if f.SpeedKmh > prev+4.0001 {
			t.Fatalf("fix %d accelerated %v -> %v km/h in 1s", i, prev, f.SpeedKmh)
		}
		prev = f.SpeedKmh
	}
}

func TestDriveMonotoneTimeAndDistance(t *testing.T) {
	r := testRoute(t)
	fixes := Drive(r, geo.DefaultGazetteer(), DriveConfig{}, rand.New(rand.NewSource(3)))
	for i := 1; i < len(fixes); i++ {
		if fixes[i].At <= fixes[i-1].At {
			t.Fatalf("time not increasing at %d", i)
		}
		if fixes[i].DistKm < fixes[i-1].DistKm {
			t.Fatalf("odometer went backwards at %d", i)
		}
	}
}

func TestDriveRuralIsRural(t *testing.T) {
	r := testRoute(t)
	fixes := Drive(r, geo.DefaultGazetteer(), DriveConfig{}, rand.New(rand.NewSource(4)))
	for _, f := range fixes {
		if f.Area != geo.Rural {
			t.Fatalf("rural test route classified %v at %v", f.Area, f.Pos)
		}
	}
}

func TestUrbanDrivesSlower(t *testing.T) {
	gaz := geo.DefaultGazetteer()
	rng := rand.New(rand.NewSource(5))
	urban := cityLoop("chi", "IL", geo.LatLon{Lat: 41.8781, Lon: -87.6298}, 5)
	uf := Drive(urban, gaz, DriveConfig{}, rng)
	var sum float64
	for _, f := range uf {
		sum += f.SpeedKmh
	}
	avgUrban := sum / float64(len(uf))
	if avgUrban > 60 {
		t.Fatalf("urban average speed %v too high", avgUrban)
	}
}

func TestDefaultRoutesCoverFiveStatesAndDistance(t *testing.T) {
	routes := DefaultRoutes()
	if len(routes) < 10 {
		t.Fatalf("route corpus too small: %d", len(routes))
	}
	states := map[string]bool{}
	total := 0.0
	for _, r := range routes {
		states[r.State] = true
		total += r.LengthKm()
		if r.LengthKm() <= 0 {
			t.Fatalf("route %s has no length", r.Name)
		}
	}
	for _, s := range []string{"MI", "IN", "IL", "WI", "MN"} {
		if !states[s] {
			t.Fatalf("missing state %s in corpus", s)
		}
	}
	// One full traversal of the corpus should be a substantial fraction
	// of the paper's 3,800 km; the campaign repeats routes to reach it.
	if total < 900 {
		t.Fatalf("corpus total %v km too short", total)
	}
}

func TestTotals(t *testing.T) {
	r := testRoute(t)
	gaz := geo.DefaultGazetteer()
	d1 := Drive(r, gaz, DriveConfig{}, rand.New(rand.NewSource(6)))
	d2 := Drive(r, gaz, DriveConfig{}, rand.New(rand.NewSource(7)))
	drives := [][]Fix{d1, d2, nil}
	if got := TotalDistanceKm(drives); got < 39 || got > 41 {
		t.Fatalf("TotalDistanceKm = %v", got)
	}
	if got := TotalDuration(drives); got < 20*time.Minute {
		t.Fatalf("TotalDuration = %v", got)
	}
}

func TestDriveDeterministicForSeed(t *testing.T) {
	r := testRoute(t)
	gaz := geo.DefaultGazetteer()
	a := Drive(r, gaz, DriveConfig{}, rand.New(rand.NewSource(42)))
	b := Drive(r, gaz, DriveConfig{}, rand.New(rand.NewSource(42)))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fix %d differs", i)
		}
	}
}
