package udp

import (
	"time"

	"satcell/internal/emu"
)

// PingPayload matches the paper's UDP-Ping tool: 1024-byte probes.
const PingPayload = 1024

// pingReq/pingResp are the wire payloads of a ping exchange.
type pingReq struct {
	seq    int64
	sentAt time.Duration
}
type pingResp struct {
	seq    int64
	sentAt time.Duration
}

// PingStats summarises a ping run.
type PingStats struct {
	Sent     int64
	Received int64
	RTTs     []time.Duration
}

// LossRate returns the fraction of unanswered probes.
func (s PingStats) LossRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return 1 - float64(s.Received)/float64(s.Sent)
}

// RTTsMs returns the RTT samples in milliseconds.
func (s PingStats) RTTsMs() []float64 {
	out := make([]float64, len(s.RTTs))
	for i, r := range s.RTTs {
		out[i] = r.Seconds() * 1000
	}
	return out
}

// Pinger emulates the paper's UDP-Ping app: the client sends a 1024-byte
// UDP probe up the path every interval; the echo server returns it down
// the path; the client records per-probe RTTs.
type Pinger struct {
	eng      *emu.Engine
	dp       *emu.DuplexPath
	flow     int
	interval time.Duration
	running  bool
	stats    PingStats
}

// NewPinger wires a pinger on dp under flow, probing every interval
// (default 200 ms).
func NewPinger(eng *emu.Engine, dp *emu.DuplexPath, flow int, interval time.Duration) *Pinger {
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	p := &Pinger{eng: eng, dp: dp, flow: flow, interval: interval}
	// Server side: echo requests arriving on the uplink.
	dp.UpMux.Register(flow, p.serve)
	// Client side: receive echoes from the downlink.
	dp.DownMux.Register(flow, p.receive)
	return p
}

// Start begins probing.
func (p *Pinger) Start() {
	p.running = true
	p.sendNext()
}

// Stop halts probing.
func (p *Pinger) Stop() { p.running = false }

// Stats returns the collected statistics.
func (p *Pinger) Stats() PingStats { return p.stats }

func (p *Pinger) sendNext() {
	if !p.running {
		return
	}
	seq := p.stats.Sent
	p.stats.Sent++
	p.dp.Up.Send(&emu.Packet{
		Flow:    p.flow,
		Seq:     seq,
		Size:    PingPayload + headerSize,
		Payload: pingReq{seq: seq, sentAt: p.eng.Now()},
	})
	p.eng.Schedule(p.interval, p.sendNext)
}

func (p *Pinger) serve(pk *emu.Packet) {
	req, ok := pk.Payload.(pingReq)
	if !ok {
		return
	}
	p.dp.Down.Send(&emu.Packet{
		Flow:    p.flow,
		Seq:     req.seq,
		Size:    PingPayload + headerSize,
		Payload: pingResp{seq: req.seq, sentAt: req.sentAt},
	})
}

func (p *Pinger) receive(pk *emu.Packet) {
	resp, ok := pk.Payload.(pingResp)
	if !ok {
		return
	}
	p.stats.Received++
	p.stats.RTTs = append(p.stats.RTTs, p.eng.Now()-resp.sentAt)
}
