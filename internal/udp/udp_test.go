package udp

import (
	"math"
	"testing"
	"time"

	"satcell/internal/channel"
	"satcell/internal/emu"
)

func flatTrace(down, up float64, rtt time.Duration, lossDown float64, secs int) *channel.Trace {
	tr := &channel.Trace{Network: channel.StarlinkMobility}
	for i := 0; i <= secs; i++ {
		tr.Samples = append(tr.Samples, channel.Sample{
			At:       time.Duration(i) * time.Second,
			DownMbps: down,
			UpMbps:   up,
			RTT:      rtt,
			LossDown: lossDown,
		})
	}
	return tr
}

func TestCBRUnderCapacity(t *testing.T) {
	eng := emu.NewEngine()
	dp := emu.NewDuplexPath(eng, flatTrace(100, 10, 40*time.Millisecond, 0, 20), emu.PathConfig{Seed: 1})
	f := NewDownlinkProbe(eng, dp, 1, 30)
	f.Start()
	eng.RunUntil(10 * time.Second)
	f.Stop()
	eng.Run()
	got := f.MeanGoodputMbps(10 * time.Second)
	if math.Abs(got-30) > 2 {
		t.Fatalf("goodput = %v, want ~30", got)
	}
	if f.Stats().LossRate() > 0.01 {
		t.Fatalf("loss = %v on an under-capacity flow", f.Stats().LossRate())
	}
}

func TestCBRProbeMeasuresCapacity(t *testing.T) {
	// Offer 300 Mbps into a 120 Mbps link: received rate == capacity.
	eng := emu.NewEngine()
	dp := emu.NewDuplexPath(eng, flatTrace(120, 12, 40*time.Millisecond, 0, 20), emu.PathConfig{Seed: 2})
	f := NewDownlinkProbe(eng, dp, 1, 300)
	f.Start()
	eng.RunUntil(10 * time.Second)
	f.Stop()
	got := f.MeanGoodputMbps(10 * time.Second)
	if math.Abs(got-120) > 6 {
		t.Fatalf("probe measured %v, want ~120", got)
	}
	// Offered 300, carried 120: loss ~60%.
	if lr := f.Stats().LossRate(); lr < 0.5 || lr > 0.7 {
		t.Fatalf("loss rate = %v, want ~0.6", lr)
	}
}

func TestUplinkProbe(t *testing.T) {
	eng := emu.NewEngine()
	dp := emu.NewDuplexPath(eng, flatTrace(120, 15, 40*time.Millisecond, 0, 20), emu.PathConfig{Seed: 3})
	f := NewUplinkProbe(eng, dp, 2, 100)
	f.Start()
	eng.RunUntil(8 * time.Second)
	f.Stop()
	got := f.MeanGoodputMbps(8 * time.Second)
	if math.Abs(got-15) > 2 {
		t.Fatalf("uplink probe = %v, want ~15", got)
	}
}

func TestRandomLossMeasured(t *testing.T) {
	eng := emu.NewEngine()
	dp := emu.NewDuplexPath(eng, flatTrace(100, 10, 40*time.Millisecond, 0.05, 30), emu.PathConfig{Seed: 4})
	f := NewDownlinkProbe(eng, dp, 1, 50)
	f.Start()
	eng.RunUntil(20 * time.Second)
	f.Stop()
	lr := f.Stats().LossRate()
	if lr < 0.03 || lr > 0.08 {
		t.Fatalf("measured loss %v, want ~0.05", lr)
	}
}

func TestGoodputSeries(t *testing.T) {
	eng := emu.NewEngine()
	dp := emu.NewDuplexPath(eng, flatTrace(60, 6, 30*time.Millisecond, 0, 20), emu.PathConfig{Seed: 5})
	f := NewDownlinkProbe(eng, dp, 1, 40)
	f.Start()
	eng.RunUntil(10 * time.Second)
	f.Stop()
	pts := f.Goodput().Points
	if len(pts) < 9 {
		t.Fatalf("series too short: %d", len(pts))
	}
	for _, p := range pts[1:9] {
		if math.Abs(p.V-40) > 4 {
			t.Fatalf("interval %v = %v Mbps, want ~40", p.At, p.V)
		}
	}
}

func TestJitterReflectsQueueing(t *testing.T) {
	eng := emu.NewEngine()
	// Saturated link: queue builds and drains, transit varies.
	dp := emu.NewDuplexPath(eng, flatTrace(20, 5, 40*time.Millisecond, 0, 20), emu.PathConfig{Seed: 6})
	sat := NewDownlinkProbe(eng, dp, 1, 40)
	sat.Start()
	eng.RunUntil(10 * time.Second)
	sat.Stop()
	if sat.Stats().JitterMs <= 0 {
		t.Fatal("saturated flow should show positive jitter")
	}
}

func TestPingerRTTAndLoss(t *testing.T) {
	eng := emu.NewEngine()
	dp := emu.NewDuplexPath(eng, flatTrace(100, 10, 60*time.Millisecond, 0, 30), emu.PathConfig{Seed: 7})
	p := NewPinger(eng, dp, 9, 100*time.Millisecond)
	p.Start()
	eng.RunUntil(20 * time.Second)
	p.Stop()
	eng.Run()
	st := p.Stats()
	if st.Sent < 190 {
		t.Fatalf("sent %d probes", st.Sent)
	}
	if st.LossRate() > 0.01 {
		t.Fatalf("loss %v on clean path", st.LossRate())
	}
	for _, ms := range st.RTTsMs() {
		if ms < 59 || ms > 75 {
			t.Fatalf("RTT %v ms outside expected band", ms)
		}
	}
	if len(st.RTTs) != int(st.Received) {
		t.Fatal("RTT sample count mismatch")
	}
}

func TestPingerCountsLosses(t *testing.T) {
	eng := emu.NewEngine()
	tr := flatTrace(100, 10, 50*time.Millisecond, 0.2, 30) // 20% downlink loss
	dp := emu.NewDuplexPath(eng, tr, emu.PathConfig{Seed: 8})
	p := NewPinger(eng, dp, 9, 50*time.Millisecond)
	p.Start()
	eng.RunUntil(25 * time.Second)
	p.Stop()
	eng.Run()
	lr := p.Stats().LossRate()
	if lr < 0.12 || lr > 0.3 {
		t.Fatalf("ping loss %v, want ~0.2", lr)
	}
}

func TestStatsZeroValues(t *testing.T) {
	var s Stats
	if s.LossRate() != 0 {
		t.Fatal("empty stats loss should be 0")
	}
	var ps PingStats
	if ps.LossRate() != 0 {
		t.Fatal("empty ping stats loss should be 0")
	}
}
