// Package udp models iPerf-style UDP tests on the emulator: a paced
// constant-bit-rate sender and a receiver that measures goodput, loss
// (by sequence gaps) and jitter (RFC 3550 smoothed inter-arrival
// variation), matching the semantics of the paper's UDP bulk tests.
package udp

import (
	"time"

	"satcell/internal/emu"
	"satcell/internal/stats"
)

// PayloadSize is the datagram payload used by the UDP tests.
const PayloadSize = 1400

// headerSize is the UDP/IP overhead per datagram.
const headerSize = 28

// datagram is the wire payload of a test packet.
type datagram struct {
	seq    int64
	sentAt time.Duration
}

// Stats summarises one UDP flow at the receiver.
type Stats struct {
	Sent       int64
	Received   int64
	Bytes      int64
	JitterMs   float64
	OutOfOrder int64
}

// LossRate returns 1 - received/sent.
func (s Stats) LossRate() float64 {
	if s.Sent == 0 {
		return 0
	}
	return 1 - float64(s.Received)/float64(s.Sent)
}

// Flow is a one-directional paced UDP test flow over an emulated link.
type Flow struct {
	eng  *emu.Engine
	link *emu.Link
	flow int

	rateMbps float64
	interval time.Duration
	running  bool

	// Receiver side.
	expect     int64
	stats      Stats
	jitter     float64 // RFC 3550 estimator, seconds
	lastTxTime time.Duration
	lastRxTime time.Duration

	goodput        stats.TimeSeries
	window         time.Duration
	curWindowStart time.Duration
	curWindowBytes int64
}

// NewFlow creates a UDP flow sending on link under the given flow id at
// rateMbps. window is the goodput sampling interval (default 1 s).
// Register Deliver on the link's receiving mux before starting.
func NewFlow(eng *emu.Engine, link *emu.Link, flow int, rateMbps float64, window time.Duration) *Flow {
	if window <= 0 {
		window = time.Second
	}
	f := &Flow{
		eng:      eng,
		link:     link,
		flow:     flow,
		rateMbps: rateMbps,
		window:   window,
	}
	f.interval = time.Duration(float64((PayloadSize+headerSize)*8) / (rateMbps * 1e6) * float64(time.Second))
	if f.interval <= 0 {
		f.interval = time.Microsecond
	}
	return f
}

// NewDownlinkProbe builds a downlink capacity probe over dp: a flow that
// offers more than the link can carry (iPerf UDP with a high target
// rate), so received goodput tracks available capacity.
func NewDownlinkProbe(eng *emu.Engine, dp *emu.DuplexPath, flow int, rateMbps float64) *Flow {
	f := NewFlow(eng, dp.Down, flow, rateMbps, 0)
	dp.DownMux.Register(flow, f.Deliver)
	return f
}

// NewUplinkProbe builds an uplink capacity probe over dp.
func NewUplinkProbe(eng *emu.Engine, dp *emu.DuplexPath, flow int, rateMbps float64) *Flow {
	f := NewFlow(eng, dp.Up, flow, rateMbps, 0)
	dp.UpMux.Register(flow, f.Deliver)
	return f
}

// Start begins sending until Stop is called.
func (f *Flow) Start() {
	f.running = true
	f.curWindowStart = f.eng.Now()
	f.sendNext()
}

// Stop halts the sender.
func (f *Flow) Stop() {
	f.running = false
	f.flushWindow(f.eng.Now())
}

// Stats returns the receiver-side statistics.
func (f *Flow) Stats() Stats {
	s := f.stats
	s.JitterMs = f.jitter * 1000
	return s
}

// Goodput returns the received-goodput series.
func (f *Flow) Goodput() *stats.TimeSeries { return &f.goodput }

// MeanGoodputMbps returns mean received rate over elapsed.
func (f *Flow) MeanGoodputMbps(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(f.stats.Bytes*8) / elapsed.Seconds() / 1e6
}

func (f *Flow) sendNext() {
	if !f.running {
		return
	}
	seq := f.stats.Sent
	f.stats.Sent++
	f.link.Send(&emu.Packet{
		Flow:    f.flow,
		Seq:     seq,
		Size:    PayloadSize + headerSize,
		Payload: datagram{seq: seq, sentAt: f.eng.Now()},
	})
	f.eng.Schedule(f.interval, f.sendNext)
}

// Deliver is the receive hook.
func (f *Flow) Deliver(p *emu.Packet) {
	d, ok := p.Payload.(datagram)
	if !ok {
		return
	}
	now := f.eng.Now()
	f.stats.Received++
	f.stats.Bytes += PayloadSize
	if d.seq < f.expect {
		f.stats.OutOfOrder++
	} else {
		f.expect = d.seq + 1
	}
	// RFC 3550 jitter: smoothed |transit time difference|.
	if f.lastRxTime > 0 {
		dTransit := (now - d.sentAt) - (f.lastRxTime - f.lastTxTime)
		if dTransit < 0 {
			dTransit = -dTransit
		}
		f.jitter += (dTransit.Seconds() - f.jitter) / 16
	}
	f.lastTxTime = d.sentAt
	f.lastRxTime = now
	f.recordGoodput(now, PayloadSize)
}

func (f *Flow) recordGoodput(now time.Duration, bytes int64) {
	for now >= f.curWindowStart+f.window {
		f.flushWindow(f.curWindowStart + f.window)
	}
	f.curWindowBytes += bytes
}

func (f *Flow) flushWindow(boundary time.Duration) {
	if boundary <= f.curWindowStart {
		return
	}
	mbps := float64(f.curWindowBytes*8) / f.window.Seconds() / 1e6
	f.goodput.Add(f.curWindowStart, mbps)
	f.curWindowStart = boundary
	f.curWindowBytes = 0
}
