// Package mptcp implements a discrete-event MPTCP model over the tcp
// package's subflows: a connection-level data scheduler (Round-Robin,
// MinRTT, BLEST), LIA coupled congestion control (RFC 6356), and a
// shared connection-level receive buffer whose size reproduces the
// paper's central §6 finding — with default buffers MPTCP over Starlink
// + cellular barely helps (head-of-line blocking), while buffers sized
// past 10x the bandwidth-delay product unlock 30-66 % gains over the
// better single path.
package mptcp

import (
	"fmt"
	"time"

	"satcell/internal/emu"
	"satcell/internal/stats"
	"satcell/internal/tcp"
)

// Config tunes an MPTCP connection.
type Config struct {
	// RcvBuf is the connection-level receive buffer shared by all
	// subflows. Default 6 MB ("untuned" Linux-like default); the paper
	// tunes it above 10x BDP.
	RcvBuf int
	// Scheduler picks the subflow for each chunk; default MinRTT (with
	// BLEST being the kernel default the paper describes, available as
	// NewBLEST).
	Scheduler Scheduler
	// Coupled enables LIA coupled congestion control across subflows;
	// otherwise each subflow runs its own NewReno.
	Coupled bool
	// Subflow is the base configuration applied to every subflow
	// (CC is overridden when Coupled is set; RcvBuf/RwndFunc/OnDeliver
	// are managed by the connection).
	Subflow tcp.Config
	// Window is the goodput sampling interval; default 1 s.
	Window time.Duration
}

// Conn is a multipath connection downloading bulk data over several
// emulated paths at once.
type Conn struct {
	eng      *emu.Engine
	cfg      Config
	subflows []*tcp.Conn
	sched    Scheduler
	group    *liaGroup

	// Connection-level sender state.
	sndNxtDSN int64
	assigned  []map[int64]int // per subflow: outstanding DSN -> length
	reinject  []reinjectEntry // chunks rescued from a failing subflow
	rtoStreak []int           // consecutive RTOs per subflow since last delivery

	// Connection-level receiver state.
	rcvNxtDSN int64
	reasm     map[int64]int // DSN -> length
	reasmByte int

	// Metrics.
	delivered      int64
	goodput        stats.TimeSeries
	curWindowStart time.Duration
	curWindowBytes int64
}

// NewConn builds a multipath download with one subflow per path. Flow
// ids flowBase, flowBase+1, ... are used on the respective paths.
func NewConn(eng *emu.Engine, paths []*emu.DuplexPath, flowBase int, cfg Config) *Conn {
	if len(paths) == 0 {
		panic("mptcp: need at least one path")
	}
	if cfg.RcvBuf <= 0 {
		cfg.RcvBuf = 6 << 20
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = NewMinRTT()
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Second
	}
	c := &Conn{
		eng:   eng,
		cfg:   cfg,
		sched: cfg.Scheduler,
		reasm: make(map[int64]int),
	}
	if cfg.Coupled {
		c.group = &liaGroup{}
	}
	for i, dp := range paths {
		idx := i
		sub := cfg.Subflow
		// Subflow-level flow control is left to the subflow's own
		// buffer; connection-level flow control happens at chunk
		// admission (subflowSource.Next), so a stalled connection
		// window never blocks retransmissions or reinjections.
		sub.RcvBuf = cfg.RcvBuf
		sub.OnDeliver = func(ch tcp.Chunk) { c.onDeliver(idx, ch) }
		sub.OnRTO = func() { c.onSubflowRTO(idx) }
		if cfg.Coupled {
			sub.CC = func() tcp.CongestionControl { return newLIA(c.group) }
		}
		conn := tcp.NewDownload(eng, dp, flowBase+idx, sub)
		conn.SetSource(&subflowSource{c: c, idx: idx})
		if cfg.Coupled {
			c.group.register(conn)
		}
		c.subflows = append(c.subflows, conn)
		c.assigned = append(c.assigned, make(map[int64]int))
		c.rtoStreak = append(c.rtoStreak, 0)
	}
	return c
}

// reinjectEntry is a chunk queued for transmission on a subflow other
// than the one it was originally assigned to.
type reinjectEntry struct {
	ch    tcp.Chunk
	owner int
}

// Subflows returns the underlying TCP subflow connections.
func (c *Conn) Subflows() []*tcp.Conn { return c.subflows }

// Start begins the multipath transfer.
func (c *Conn) Start() {
	c.curWindowStart = c.eng.Now()
	for _, s := range c.subflows {
		s.Start()
	}
}

// Stop halts all subflows.
func (c *Conn) Stop() {
	for _, s := range c.subflows {
		s.Stop()
	}
	c.flushWindow(c.eng.Now())
}

// Goodput returns the connection-level in-order goodput series.
func (c *Conn) Goodput() *stats.TimeSeries { return &c.goodput }

// BytesDelivered returns connection-level in-order bytes delivered.
func (c *Conn) BytesDelivered() int64 { return c.delivered }

// MeanGoodputMbps returns the mean connection goodput over elapsed.
func (c *Conn) MeanGoodputMbps(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.delivered*8) / elapsed.Seconds() / 1e6
}

// String describes the connection setup.
func (c *Conn) String() string {
	return fmt.Sprintf("mptcp(%d subflows, sched=%s, rcvbuf=%d)",
		len(c.subflows), c.sched.Name(), c.cfg.RcvBuf)
}

// rwnd is the connection-level receive window: buffer minus data
// admitted but not yet delivered in order (outstanding + reassembly).
func (c *Conn) rwnd() int {
	w := c.cfg.RcvBuf - int(c.sndNxtDSN-c.rcvNxtDSN)
	if w < 0 {
		w = 0
	}
	return w
}

// connSpace reports how many more bytes the connection window admits.
func (c *Conn) connSpace() int { return c.rwnd() }

// onDeliver reassembles subflow-in-order chunks into the connection
// byte stream.
func (c *Conn) onDeliver(idx int, ch tcp.Chunk) {
	delete(c.assigned[idx], ch.DSN)
	c.rtoStreak[idx] = 0
	switch {
	case ch.DSN == c.rcvNxtDSN:
		c.accept(ch.Len)
		for {
			n, ok := c.reasm[c.rcvNxtDSN]
			if !ok {
				break
			}
			delete(c.reasm, c.rcvNxtDSN)
			c.reasmByte -= n
			c.accept(n)
		}
		// The connection window reopened: give every subflow a chance
		// to pull newly admitted data.
		for _, s := range c.subflows {
			s.Kick()
		}
	case ch.DSN > c.rcvNxtDSN:
		if _, dup := c.reasm[ch.DSN]; !dup {
			c.reasm[ch.DSN] = ch.Len
			c.reasmByte += ch.Len
		}
	default:
		// Duplicate of already-delivered data (a reinjection or subflow
		// retransmission raced the original): ignore.
	}
}

// onSubflowRTO implements opportunistic reinjection: when a subflow
// times out, its outstanding chunks are queued for transmission on the
// other subflows, so a path outage cannot indefinitely head-of-line
// block the connection (Linux MPTCP behaves the same way).
func (c *Conn) onSubflowRTO(idx int) {
	if len(c.subflows) < 2 {
		return
	}
	// A single RTO can be an ordinary congestion event; only a repeated
	// timeout (backed-off, no deliveries in between) marks the subflow
	// as failing and triggers rescue of its outstanding data.
	c.rtoStreak[idx]++
	if c.rtoStreak[idx] < 2 {
		return
	}
	queued := make(map[int64]bool, len(c.reinject))
	for _, e := range c.reinject {
		queued[e.ch.DSN] = true
	}
	for dsn, n := range c.assigned[idx] {
		if dsn < c.rcvNxtDSN {
			delete(c.assigned[idx], dsn) // stale: already delivered elsewhere
			continue
		}
		if !queued[dsn] {
			c.reinject = append(c.reinject, reinjectEntry{ch: tcp.Chunk{DSN: dsn, Len: n}, owner: idx})
		}
	}
	sortChunks(c.reinject)
	for i, s := range c.subflows {
		if i != idx {
			s.Kick()
		}
	}
}

func (c *Conn) accept(n int) {
	c.rcvNxtDSN += int64(n)
	c.delivered += int64(n)
	c.recordGoodput(c.eng.Now(), int64(n))
}

func (c *Conn) recordGoodput(now time.Duration, bytes int64) {
	for now >= c.curWindowStart+c.cfg.Window {
		c.flushWindow(c.curWindowStart + c.cfg.Window)
	}
	c.curWindowBytes += bytes
}

func (c *Conn) flushWindow(boundary time.Duration) {
	if boundary <= c.curWindowStart {
		return
	}
	mbps := float64(c.curWindowBytes*8) / c.cfg.Window.Seconds() / 1e6
	c.goodput.Add(c.curWindowStart, mbps)
	c.curWindowStart = boundary
	c.curWindowBytes = 0
}

// subflowSource feeds connection data to one subflow, mediated by the
// scheduler and the connection-level window.
type subflowSource struct {
	c   *Conn
	idx int
}

// Next implements tcp.DataSource.
func (s *subflowSource) Next(maxBytes int) (tcp.Chunk, bool) {
	c := s.c
	n := min(maxBytes, tcp.MSS)
	if n <= 0 {
		return tcp.Chunk{}, false
	}
	// Reinjected chunks are already inside the connection window and
	// take priority over new data (hole filling after a path failure).
	// A chunk is never handed back to its owning subflow: that subflow
	// retransmits it natively.
	for i := 0; i < len(c.reinject); i++ {
		e := c.reinject[i]
		if e.ch.DSN < c.rcvNxtDSN {
			c.reinject = append(c.reinject[:i], c.reinject[i+1:]...)
			i--
			continue
		}
		if e.owner == s.idx {
			continue
		}
		c.reinject = append(c.reinject[:i], c.reinject[i+1:]...)
		c.assigned[s.idx][e.ch.DSN] = e.ch.Len
		return e.ch, true
	}
	if !c.sched.Allow(c, s.idx) {
		return tcp.Chunk{}, false
	}
	// A redundant scheduler serves owed duplicates before new data;
	// stalled peers pick their copies up on their next ACK-driven pull.
	if red, ok := c.sched.(*Redundant); ok {
		if ch, ok := red.NextDuplicate(c, s.idx); ok {
			c.assigned[s.idx][ch.DSN] = ch.Len
			return ch, true
		}
	}
	if c.connSpace() < n {
		return tcp.Chunk{}, false
	}
	ch := tcp.Chunk{DSN: c.sndNxtDSN, Len: n}
	c.sndNxtDSN += int64(n)
	c.assigned[s.idx][ch.DSN] = n
	if red, ok := c.sched.(*Redundant); ok {
		red.OnOriginate(c, s.idx, ch)
	}
	return ch, true
}

// sortChunks orders reinjection entries by DSN (insertion sort: the
// queue is small and nearly sorted).
func sortChunks(entries []reinjectEntry) {
	for i := 1; i < len(entries); i++ {
		for j := i; j > 0 && entries[j].ch.DSN < entries[j-1].ch.DSN; j-- {
			entries[j], entries[j-1] = entries[j-1], entries[j]
		}
	}
}

// hasSpace reports whether subflow i can place at least one more
// segment in flight.
func hasSpace(s *tcp.Conn) bool {
	return s.Cwnd()-s.BytesInFlight() >= tcp.MSS
}
