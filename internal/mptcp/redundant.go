package mptcp

import (
	"satcell/internal/tcp"
)

// Redundant duplicates every chunk on all subflows: latency-optimal and
// loss-resilient, at the cost of capping goodput at the slowest-path
// rate times the subflow count overhead. Useful as the upper bound on
// reliability in scheduler ablations (the paper's future-work
// discussion of schedulers tailored to LEO+cellular motivates having
// it available for comparison).
type Redundant struct {
	// pending holds, per subflow, the duplicates that this subflow
	// still owes: when any subflow originates a chunk, a copy is queued
	// for every other subflow.
	pending [][]tcp.Chunk
}

// NewRedundant returns a redundant scheduler.
func NewRedundant() *Redundant { return &Redundant{} }

// Name implements Scheduler.
func (r *Redundant) Name() string { return "redundant" }

// Allow implements Scheduler: every subflow with window space may send.
func (r *Redundant) Allow(c *Conn, idx int) bool {
	return hasSpace(c.subflows[idx])
}

// ensure sizes the pending queues to the connection's subflow count.
func (r *Redundant) ensure(n int) {
	for len(r.pending) < n {
		r.pending = append(r.pending, nil)
	}
}

// NextDuplicate pops a duplicate owed by subflow idx, if any. The
// connection's data source consults this before minting new DSNs.
func (r *Redundant) NextDuplicate(c *Conn, idx int) (tcp.Chunk, bool) {
	r.ensure(len(c.subflows))
	q := r.pending[idx]
	for len(q) > 0 {
		ch := q[0]
		q = q[1:]
		if ch.DSN >= c.rcvNxtDSN { // still useful
			r.pending[idx] = q
			return ch, true
		}
	}
	r.pending[idx] = q
	return tcp.Chunk{}, false
}

// OnOriginate records that every other subflow owes a duplicate of ch.
func (r *Redundant) OnOriginate(c *Conn, idx int, ch tcp.Chunk) {
	r.ensure(len(c.subflows))
	for i := range c.subflows {
		if i != idx {
			r.pending[i] = append(r.pending[i], ch)
		}
	}
}
