package mptcp

import (
	"math"
	"time"

	"satcell/internal/tcp"
)

// liaGroup couples the LIA controllers of one MPTCP connection.
type liaGroup struct {
	subflows []*tcp.Conn
}

func (g *liaGroup) register(c *tcp.Conn) { g.subflows = append(g.subflows, c) }

// alpha computes the RFC 6356 aggressiveness parameter:
//
//	alpha = cwnd_total * max_i(cwnd_i/rtt_i^2) / (sum_i cwnd_i/rtt_i)^2
func (g *liaGroup) alpha() float64 {
	var total, maxTerm, sumTerm float64
	for _, s := range g.subflows {
		rtt := s.SRTT().Seconds()
		if rtt <= 0 {
			rtt = 0.1 // not yet measured: assume 100 ms
		}
		w := float64(s.Cwnd())
		total += w
		if t := w / (rtt * rtt); t > maxTerm {
			maxTerm = t
		}
		sumTerm += w / rtt
	}
	if sumTerm == 0 {
		return 1
	}
	a := total * maxTerm / (sumTerm * sumTerm)
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return 1
	}
	return a
}

// totalWindow returns the sum of all coupled congestion windows.
func (g *liaGroup) totalWindow() int {
	t := 0
	for _, s := range g.subflows {
		t += s.Cwnd()
	}
	return t
}

// lia is the per-subflow RFC 6356 "Linked Increases" controller: slow
// start and loss response follow standard NewReno, but congestion-
// avoidance growth is coupled across the connection's subflows so the
// multipath aggregate stays fair to single-path TCP at shared
// bottlenecks while still shifting load to the better path.
type lia struct {
	reno  *tcp.NewReno
	group *liaGroup
	frac  float64 // accumulated sub-byte window growth
}

func newLIA(g *liaGroup) *lia {
	return &lia{reno: tcp.NewNewReno(), group: g}
}

// Name implements tcp.CongestionControl.
func (l *lia) Name() string { return "lia" }

// Reset implements tcp.CongestionControl.
func (l *lia) Reset() { l.reno.Reset(); l.frac = 0 }

// Window implements tcp.CongestionControl.
func (l *lia) Window() int { return l.reno.Window() }

// InSlowStart implements tcp.CongestionControl.
func (l *lia) InSlowStart() bool { return l.reno.InSlowStart() }

// ExitSlowStart implements tcp.CongestionControl.
func (l *lia) ExitSlowStart() { l.reno.ExitSlowStart() }

// OnAck implements tcp.CongestionControl.
func (l *lia) OnAck(acked int, rtt time.Duration) {
	if l.reno.InSlowStart() {
		l.reno.OnAck(acked, rtt)
		return
	}
	// Coupled congestion avoidance (RFC 6356 §3):
	// increase = min(alpha * acked * MSS / cwnd_total, acked * MSS / cwnd_i).
	alpha := l.group.alpha()
	total := float64(l.group.totalWindow())
	own := float64(l.reno.Window())
	if total <= 0 || own <= 0 {
		l.reno.OnAck(acked, rtt)
		return
	}
	coupled := alpha * float64(acked) * tcp.MSS / total
	uncoupled := float64(acked) * tcp.MSS / own
	l.frac += math.Min(coupled, uncoupled)
	if l.frac >= 1 {
		inc := int(l.frac)
		l.frac -= float64(inc)
		l.reno.SetWindow(l.reno.Window() + inc)
	}
}

// OnLoss implements tcp.CongestionControl.
func (l *lia) OnLoss(flight int) int { return l.reno.OnLoss(flight) }

// OnRTO implements tcp.CongestionControl.
func (l *lia) OnRTO(flight int) { l.reno.OnRTO(flight) }

// ExitRecovery implements tcp.CongestionControl.
func (l *lia) ExitRecovery() { l.reno.ExitRecovery() }

// SetWindow allows the sender's recovery logic to adjust the window.
func (l *lia) SetWindow(w int) { l.reno.SetWindow(w) }
