package mptcp

import (
	"satcell/internal/tcp"
)

// Scheduler mediates which subflow may take the next data chunk. The
// transfer model is pull-based: a subflow with congestion-window space
// asks for data, and the scheduler allows or refuses. Refusing a slower
// subflow while a faster one still has room reproduces push-based
// scheduler behaviour.
type Scheduler interface {
	Name() string
	// Allow reports whether subflow idx may send the next chunk now.
	Allow(c *Conn, idx int) bool
}

// RoundRobin spreads chunks evenly over subflows with space.
type RoundRobin struct{ last int }

// NewRoundRobin returns a round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{last: -1} }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "roundrobin" }

// Allow implements Scheduler.
func (r *RoundRobin) Allow(c *Conn, idx int) bool {
	// The next-in-rotation subflow with space gets the chunk; a
	// requesting subflow is allowed if no earlier-in-rotation subflow
	// also has space.
	n := len(c.subflows)
	for off := 1; off <= n; off++ {
		cand := (r.last + off) % n
		if !hasSpace(c.subflows[cand]) {
			continue
		}
		if cand == idx {
			r.last = idx
			return true
		}
		return false
	}
	return false
}

// MinRTT is the Linux default scheduler: always prefer the lowest-SRTT
// subflow that has window space.
type MinRTT struct{}

// NewMinRTT returns a MinRTT scheduler.
func NewMinRTT() *MinRTT { return &MinRTT{} }

// Name implements Scheduler.
func (m *MinRTT) Name() string { return "minrtt" }

// Allow implements Scheduler.
func (m *MinRTT) Allow(c *Conn, idx int) bool {
	if !hasSpace(c.subflows[idx]) {
		return false
	}
	my := c.subflows[idx].SRTT()
	for i, s := range c.subflows {
		if i == idx || !hasSpace(s) {
			continue
		}
		o := s.SRTT()
		// Prefer the other subflow when it is strictly faster (an
		// unmeasured subflow counts as fastest to bootstrap it).
		if o < my || (o == my && i < idx) {
			return false
		}
	}
	return true
}

// BLEST implements the blocking-estimation scheduler of Ferlin et al.
// (IFIP Networking 2016), the kernel v5.19 default the paper describes:
// like MinRTT, but before sending on a slower subflow it estimates
// whether that data would still be in flight when the faster subflow
// could have delivered everything ahead of it — if so, sending on the
// slow subflow would block the connection-level send window
// (transport-layer head-of-line blocking) and BLEST waits instead.
type BLEST struct {
	// Lambda scales the blocking estimate; 1.0 is the paper's default.
	Lambda float64
}

// NewBLEST returns a BLEST scheduler with the default lambda.
func NewBLEST() *BLEST { return &BLEST{Lambda: 1.0} }

// Name implements Scheduler.
func (b *BLEST) Name() string { return "blest" }

// Allow implements Scheduler.
func (b *BLEST) Allow(c *Conn, idx int) bool {
	if !hasSpace(c.subflows[idx]) {
		return false
	}
	me := c.subflows[idx]
	myRTT := me.SRTT()

	fastest := idx
	fastRTT := myRTT
	for i, s := range c.subflows {
		if i == idx {
			continue
		}
		if rtt := s.SRTT(); rtt > 0 && (rtt < fastRTT || fastRTT == 0) {
			fastest, fastRTT = i, rtt
		}
		// Strictly-faster subflow with space wins outright (MinRTT rule).
		if hasSpace(s) && s.SRTT() < myRTT {
			return false
		}
	}
	if fastest == idx || fastRTT <= 0 || myRTT <= 0 {
		return true // we are the fastest (or nothing is measured yet)
	}

	// Blocking estimate: while one chunk spends rttS on the slow
	// subflow, the fast subflow could inject rttS/rttF windows of
	// cwndF bytes (allowing one window of growth). If the connection
	// send window cannot hold both, sending now would block the fast
	// subflow later: wait.
	fast := c.subflows[fastest]
	rttRatio := float64(myRTT) / float64(fastRTT)
	xFast := float64(fast.Cwnd()) * (rttRatio + 1)            // bytes fast could need
	sendWindow := float64(c.connSpace() + me.BytesInFlight()) // window available to this decision
	need := b.Lambda*xFast + float64(me.BytesInFlight()+tcp.MSS)
	return sendWindow >= need
}
