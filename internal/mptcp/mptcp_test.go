package mptcp

import (
	"testing"
	"time"

	"satcell/internal/channel"
	"satcell/internal/emu"
	"satcell/internal/stats"
	"satcell/internal/tcp"
)

func flatTrace(n channel.Network, down, up float64, rtt time.Duration, loss float64, secs int) *channel.Trace {
	tr := &channel.Trace{Network: n}
	for i := 0; i <= secs; i++ {
		tr.Samples = append(tr.Samples, channel.Sample{
			At:       time.Duration(i) * time.Second,
			DownMbps: down,
			UpMbps:   up,
			RTT:      rtt,
			LossDown: loss,
			LossUp:   loss / 2,
		})
	}
	return tr
}

// runMPTCP runs a multipath download over the given traces.
func runMPTCP(traces []*channel.Trace, cfg Config, dur time.Duration) *Conn {
	eng := emu.NewEngine()
	paths := make([]*emu.DuplexPath, len(traces))
	for i, tr := range traces {
		paths[i] = emu.NewDuplexPath(eng, tr, emu.PathConfig{Seed: int64(100 + i), QueueBytes: 1 << 20})
	}
	c := NewConn(eng, paths, 1000, cfg)
	c.Start()
	eng.RunUntil(dur)
	c.Stop()
	return c
}

func runSingle(tr *channel.Trace, dur time.Duration) float64 {
	eng := emu.NewEngine()
	dp := emu.NewDuplexPath(eng, tr, emu.PathConfig{Seed: 100, QueueBytes: 1 << 20})
	c := tcp.NewDownload(eng, dp, 1, tcp.Config{})
	c.Start()
	eng.RunUntil(dur)
	c.Stop()
	return c.MeanGoodputMbps(dur)
}

func TestAggregatesTwoCleanPaths(t *testing.T) {
	traces := []*channel.Trace{
		flatTrace(channel.StarlinkMobility, 100, 20, 60*time.Millisecond, 0, 40),
		flatTrace(channel.Verizon, 60, 15, 40*time.Millisecond, 0, 40),
	}
	c := runMPTCP(traces, Config{RcvBuf: 16 << 20}, 30*time.Second)
	got := c.MeanGoodputMbps(30 * time.Second)
	// Two clean paths of 100+60: expect > 80% of the sum.
	if got < 128 {
		t.Fatalf("aggregate goodput = %v, want > 128 (of 160)", got)
	}
	if got > 165 {
		t.Fatalf("aggregate goodput = %v exceeds capacity", got)
	}
}

func TestBeatsBestSinglePath(t *testing.T) {
	a := flatTrace(channel.StarlinkMobility, 120, 20, 70*time.Millisecond, 0.003, 40)
	b := flatTrace(channel.ATT, 70, 15, 50*time.Millisecond, 0.0005, 40)
	mp := runMPTCP([]*channel.Trace{a, b}, Config{RcvBuf: 16 << 20}, 30*time.Second)
	gA := runSingle(a, 30*time.Second)
	gB := runSingle(b, 30*time.Second)
	best := gA
	if gB > best {
		best = gB
	}
	got := mp.MeanGoodputMbps(30 * time.Second)
	if got < best*1.15 {
		t.Fatalf("MPTCP %v should beat best single path %v by >15%%", got, best)
	}
}

func TestSmallBufferCausesHoLBlocking(t *testing.T) {
	// Heterogeneous paths: fast cellular + slow, lossy satellite.
	// With a tiny connection buffer the slow subflow's in-flight data
	// blocks the fast one (the paper's untuned-buffer effect).
	a := flatTrace(channel.StarlinkMobility, 150, 20, 200*time.Millisecond, 0.01, 40)
	b := flatTrace(channel.Verizon, 80, 15, 35*time.Millisecond, 0, 40)
	small := runMPTCP([]*channel.Trace{a, b}, Config{RcvBuf: 128 << 10}, 30*time.Second)
	large := runMPTCP([]*channel.Trace{a, b}, Config{RcvBuf: 16 << 20}, 30*time.Second)
	gs := small.MeanGoodputMbps(30 * time.Second)
	gl := large.MeanGoodputMbps(30 * time.Second)
	if gl < 1.5*gs {
		t.Fatalf("buffer tuning should matter: small %v vs large %v", gs, gl)
	}
}

func TestReassemblyDeliversInOrder(t *testing.T) {
	a := flatTrace(channel.StarlinkMobility, 100, 20, 90*time.Millisecond, 0.005, 20)
	b := flatTrace(channel.Verizon, 50, 15, 40*time.Millisecond, 0.001, 20)
	eng := emu.NewEngine()
	paths := []*emu.DuplexPath{
		emu.NewDuplexPath(eng, a, emu.PathConfig{Seed: 1, QueueBytes: 1 << 20}),
		emu.NewDuplexPath(eng, b, emu.PathConfig{Seed: 2, QueueBytes: 1 << 20}),
	}
	c := NewConn(eng, paths, 10, Config{RcvBuf: 8 << 20})
	c.Start()
	eng.RunUntil(15 * time.Second)
	c.Stop()
	if c.BytesDelivered() == 0 {
		t.Fatal("nothing delivered")
	}
	// In-order delivery invariant: rcvNxtDSN equals delivered bytes.
	if c.rcvNxtDSN != c.delivered {
		t.Fatalf("rcvNxt %d != delivered %d", c.rcvNxtDSN, c.delivered)
	}
	// Everything handed out must be bounded by the send counter.
	if c.delivered > c.sndNxtDSN {
		t.Fatal("delivered more than sent")
	}
}

func TestSchedulersAllFunction(t *testing.T) {
	a := flatTrace(channel.StarlinkMobility, 100, 20, 80*time.Millisecond, 0.004, 30)
	b := flatTrace(channel.Verizon, 60, 15, 40*time.Millisecond, 0.001, 30)
	for _, sched := range []Scheduler{NewRoundRobin(), NewMinRTT(), NewBLEST()} {
		c := runMPTCP([]*channel.Trace{a, b}, Config{RcvBuf: 16 << 20, Scheduler: sched}, 20*time.Second)
		got := c.MeanGoodputMbps(20 * time.Second)
		// Round-robin couples both paths to the slower one's chunk
		// rate (its well-known weakness on heterogeneous paths), so it
		// gets a lower bar than the RTT-aware schedulers.
		// Absolute numbers are Mathis-bound by the per-packet loss of
		// these synthetic traces; the point is that every scheduler
		// aggregates sensibly (and RR gets a lower bar because it
		// couples both paths to the slower chunk rate).
		minWant := 15.0
		if sched.Name() == "roundrobin" {
			minWant = 8
		}
		if got < minWant {
			t.Fatalf("%s: aggregate %v too low", sched.Name(), got)
		}
	}
}

func TestBLESTBeatsMinRTTWithTightBuffer(t *testing.T) {
	// BLEST's reason to exist: heterogeneous RTTs + limited buffer.
	a := flatTrace(channel.StarlinkMobility, 120, 20, 150*time.Millisecond, 0.008, 40)
	b := flatTrace(channel.Verizon, 90, 15, 30*time.Millisecond, 0, 40)
	traces := []*channel.Trace{a, b}
	buf := 768 << 10
	minrtt := runMPTCP(traces, Config{RcvBuf: buf, Scheduler: NewMinRTT()}, 30*time.Second)
	blest := runMPTCP(traces, Config{RcvBuf: buf, Scheduler: NewBLEST()}, 30*time.Second)
	gm := minrtt.MeanGoodputMbps(30 * time.Second)
	gb := blest.MeanGoodputMbps(30 * time.Second)
	// BLEST should not do worse; typically it does clearly better.
	if gb < gm*0.95 {
		t.Fatalf("BLEST %v worse than MinRTT %v under tight buffer", gb, gm)
	}
}

func TestCoupledCCStaysBelowUncoupled(t *testing.T) {
	// On two independent paths, LIA is less aggressive than two
	// uncoupled NewReno flows but must still aggregate well.
	a := flatTrace(channel.StarlinkMobility, 80, 20, 60*time.Millisecond, 0.002, 40)
	b := flatTrace(channel.Verizon, 80, 15, 60*time.Millisecond, 0.002, 40)
	traces := []*channel.Trace{a, b}
	coupled := runMPTCP(traces, Config{RcvBuf: 16 << 20, Coupled: true}, 30*time.Second)
	uncoupled := runMPTCP(traces, Config{RcvBuf: 16 << 20}, 30*time.Second)
	gc := coupled.MeanGoodputMbps(30 * time.Second)
	gu := uncoupled.MeanGoodputMbps(30 * time.Second)
	if gc > gu*1.1 {
		t.Fatalf("coupled (%v) should not beat uncoupled (%v)", gc, gu)
	}
	if gc < gu*0.4 {
		t.Fatalf("coupled (%v) collapsed vs uncoupled (%v)", gc, gu)
	}
}

func TestRidesTheBetterPathThroughOutage(t *testing.T) {
	// Path A dies from 10-20s; MPTCP should keep most of path B's rate.
	a := &channel.Trace{Network: channel.StarlinkMobility}
	for i := 0; i <= 40; i++ {
		s := channel.Sample{At: time.Duration(i) * time.Second, DownMbps: 100, UpMbps: 20, RTT: 60 * time.Millisecond}
		if i >= 10 && i < 20 {
			s.DownMbps, s.UpMbps, s.LossDown, s.LossUp = 0, 0, 1, 1
		}
		a.Samples = append(a.Samples, s)
	}
	b := flatTrace(channel.Verizon, 60, 15, 40*time.Millisecond, 0, 40)
	c := runMPTCP([]*channel.Trace{a, b}, Config{RcvBuf: 16 << 20}, 35*time.Second)
	// During the outage window, goodput should stay near path B's rate.
	var during []float64
	for _, p := range c.Goodput().Points {
		if p.At >= 12*time.Second && p.At < 19*time.Second {
			during = append(during, p.V)
		}
	}
	if len(during) == 0 {
		t.Fatal("no goodput samples during outage")
	}
	sum := 0.0
	for _, v := range during {
		sum += v
	}
	mean := sum / float64(len(during))
	if mean < 30 {
		t.Fatalf("goodput during path-A outage = %v, want near path B's 60", mean)
	}
}

func TestLIAAlphaProperties(t *testing.T) {
	g := &liaGroup{}
	if a := g.alpha(); a != 1 {
		t.Fatalf("empty group alpha = %v", a)
	}
	l := newLIA(g)
	if l.Name() != "lia" {
		t.Fatal("name")
	}
	if l.Window() <= 0 {
		t.Fatal("window")
	}
	l.OnAck(tcp.MSS, 50*time.Millisecond) // slow start passthrough
	w := l.Window()
	ss := l.OnLoss(w)
	if ss != max(w/2, 2*tcp.MSS) {
		t.Fatalf("ssthresh %d", ss)
	}
	l.ExitRecovery()
	l.OnRTO(l.Window())
	if l.Window() != tcp.MSS {
		t.Fatalf("after RTO: %d", l.Window())
	}
	l.Reset()
	if l.InSlowStart() != true {
		t.Fatal("reset should restore slow start")
	}
}

func TestConnString(t *testing.T) {
	a := flatTrace(channel.StarlinkMobility, 50, 10, 50*time.Millisecond, 0, 5)
	eng := emu.NewEngine()
	paths := []*emu.DuplexPath{emu.NewDuplexPath(eng, a, emu.PathConfig{Seed: 1})}
	c := NewConn(eng, paths, 1, Config{})
	s := c.String()
	if s == "" || c.Subflows()[0] == nil {
		t.Fatal("String/Subflows broken")
	}
}

func TestRedundantSchedulerDuplicatesEverything(t *testing.T) {
	a := flatTrace(channel.StarlinkMobility, 60, 15, 60*time.Millisecond, 0, 30)
	b := flatTrace(channel.Verizon, 60, 15, 40*time.Millisecond, 0, 30)
	c := runMPTCP([]*channel.Trace{a, b}, Config{RcvBuf: 16 << 20, Scheduler: NewRedundant()}, 20*time.Second)
	got := c.MeanGoodputMbps(20 * time.Second)
	// Redundant goodput is bounded by a single path's capacity (every
	// byte crosses both paths) but must still deliver a healthy stream.
	if got > 66 {
		t.Fatalf("redundant goodput %v exceeds single-path capacity", got)
	}
	if got < 25 {
		t.Fatalf("redundant goodput %v too low", got)
	}
}

func TestRedundantSurvivesPathLoss(t *testing.T) {
	// One path drops 30% of packets; redundancy should keep goodput
	// near the clean path's rate without waiting for retransmissions.
	a := flatTrace(channel.StarlinkMobility, 50, 10, 60*time.Millisecond, 0.3, 30)
	b := flatTrace(channel.Verizon, 50, 12, 40*time.Millisecond, 0, 30)
	red := runMPTCP([]*channel.Trace{a, b}, Config{RcvBuf: 16 << 20, Scheduler: NewRedundant()}, 20*time.Second)
	got := red.MeanGoodputMbps(20 * time.Second)
	if got < 20 {
		t.Fatalf("redundant goodput %v under asymmetric loss", got)
	}
}

func TestRedundantName(t *testing.T) {
	if NewRedundant().Name() != "redundant" {
		t.Fatal("name")
	}
}

// epochDipTrace models a Starlink path whose capacity collapses briefly
// after every 15 s reallocation boundary.
func epochDipTrace(secs int) *channel.Trace {
	tr := &channel.Trace{Network: channel.StarlinkMobility}
	for i := 0; i <= secs; i++ {
		s := channel.Sample{
			At:       time.Duration(i) * time.Second,
			DownMbps: 150, UpMbps: 20, RTT: 60 * time.Millisecond,
		}
		if i%15 == 0 && i > 0 {
			s.DownMbps, s.UpMbps = 0, 0
			s.Outage = true
		}
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}

func TestLEOAwareReducesFluctuation(t *testing.T) {
	sat := epochDipTrace(60)
	cellTr := flatTrace(channel.Verizon, 70, 15, 40*time.Millisecond, 0, 60)
	run := func(mk func(eng *emu.Engine) Scheduler) (mean, std float64) {
		eng := emu.NewEngine()
		paths := []*emu.DuplexPath{
			emu.NewDuplexPath(eng, sat, emu.PathConfig{Seed: 1, QueueBytes: 1 << 20}),
			emu.NewDuplexPath(eng, cellTr, emu.PathConfig{Seed: 2, QueueBytes: 1 << 20}),
		}
		c := NewConn(eng, paths, 50, Config{RcvBuf: 16 << 20, Scheduler: mk(eng)})
		c.Start()
		eng.RunUntil(50 * time.Second)
		c.Stop()
		vals := c.Goodput().Values()
		if len(vals) > 5 {
			vals = vals[5:] // skip slow start
		}
		return stats.Mean(vals), stats.StdDev(vals)
	}
	minMean, minStd := run(func(*emu.Engine) Scheduler { return NewMinRTT() })
	leoMean, leoStd := run(func(eng *emu.Engine) Scheduler { return NewLEOAware(0, eng.Now) })
	// The LEO-aware scheduler's goal is smoother goodput at comparable
	// mean: relative fluctuation must not get worse, mean must hold.
	if leoStd/leoMean > minStd/minMean*1.05 {
		t.Fatalf("leo-aware CoV %.3f worse than minrtt %.3f", leoStd/leoMean, minStd/minMean)
	}
	if leoMean < minMean*0.85 {
		t.Fatalf("leo-aware mean %v sacrificed too much vs %v", leoMean, minMean)
	}
}

func TestLEOAwareBoundaryWindow(t *testing.T) {
	l := NewLEOAware(0, nil)
	cases := []struct {
		at   time.Duration
		near bool
	}{
		{0, true}, {500 * time.Millisecond, true}, {time.Second + time.Millisecond, false},
		{7 * time.Second, false}, {14*time.Second + 100*time.Millisecond, true},
		{15 * time.Second, true}, {16 * time.Second, false},
	}
	for _, c := range cases {
		if got := l.nearBoundary(c.at); got != c.near {
			t.Fatalf("nearBoundary(%v) = %v, want %v", c.at, got, c.near)
		}
	}
	if l.Name() != "leo-aware" {
		t.Fatal("name")
	}
}
