package mptcp

import (
	"time"
)

// LEOAware is a Starlink-aware scheduler prototype realising the
// paper's future-work proposal (§6: "considering the specific usage
// scenarios and characteristics of the two network types, further
// improvements can be made to future MPTCP scheduler design, such as
// reducing throughput fluctuations").
//
// It behaves like MinRTT, with one LEO-specific rule: Starlink
// reallocates satellite/beam assignments on a fixed 15-second epoch
// grid, and throughput regularly dips or drops out right after a
// boundary. Inside a guard window around each predicted boundary the
// scheduler declines to place new data on the satellite subflow, so the
// data that would straddle the reallocation gap (and head-of-line block
// the connection) rides the cellular path instead.
type LEOAware struct {
	// SatIdx is the index of the satellite subflow within the
	// connection's path list.
	SatIdx int
	// Epoch is the reallocation interval (15 s for Starlink).
	Epoch time.Duration
	// Guard is the no-schedule window straddling each boundary
	// (Guard/2 before and after). Default 2 s.
	Guard time.Duration
	// Clock supplies the current virtual time (e.g. emu.Engine.Now).
	Clock func() time.Duration
}

// NewLEOAware builds the scheduler for a connection whose satellite
// path is at index satIdx.
func NewLEOAware(satIdx int, clock func() time.Duration) *LEOAware {
	return &LEOAware{
		SatIdx: satIdx,
		Epoch:  15 * time.Second,
		Guard:  2 * time.Second,
		Clock:  clock,
	}
}

// Name implements Scheduler.
func (l *LEOAware) Name() string { return "leo-aware" }

// nearBoundary reports whether now falls inside the guard window of an
// epoch boundary.
func (l *LEOAware) nearBoundary(now time.Duration) bool {
	if l.Epoch <= 0 {
		return false
	}
	phase := now % l.Epoch
	half := l.Guard / 2
	return phase < half || phase > l.Epoch-half
}

// Allow implements Scheduler.
func (l *LEOAware) Allow(c *Conn, idx int) bool {
	if !hasSpace(c.subflows[idx]) {
		return false
	}
	if idx == l.SatIdx && l.Clock != nil && l.nearBoundary(l.Clock()) {
		// Hold satellite traffic across the predicted reallocation;
		// the cellular subflow keeps the connection moving.
		return false
	}
	// MinRTT among the remaining eligible subflows.
	my := c.subflows[idx].SRTT()
	for i, s := range c.subflows {
		if i == idx || !hasSpace(s) {
			continue
		}
		if i == l.SatIdx && l.Clock != nil && l.nearBoundary(l.Clock()) {
			continue // the satellite path is on hold: it cannot outrank us
		}
		o := s.SRTT()
		if o < my || (o == my && i < idx) {
			return false
		}
	}
	return true
}
