package vclock

import "time"

// Wall is the real-time Clock: every method is a thin wrapper over the
// time package, so components built on it behave exactly as if they
// called the time package directly.
var Wall Clock = wallClock{}

type wallClock struct{}

func (wallClock) Now() time.Time                         { return time.Now() }
func (wallClock) Since(t time.Time) time.Duration        { return time.Since(t) }
func (wallClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (wallClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

func (wallClock) AfterFunc(d time.Duration, fn func()) Timer {
	return wallTimer{time.AfterFunc(d, fn)}
}

func (wallClock) NewTimer(d time.Duration) Timer {
	return wallTimer{time.NewTimer(d)}
}

func (wallClock) NewTicker(d time.Duration) Ticker {
	return wallTicker{time.NewTicker(d)}
}

type wallTimer struct{ t *time.Timer }

func (w wallTimer) C() <-chan time.Time        { return w.t.C }
func (w wallTimer) Stop() bool                 { return w.t.Stop() }
func (w wallTimer) Reset(d time.Duration) bool { return w.t.Reset(d) }

type wallTicker struct{ t *time.Ticker }

func (w wallTicker) C() <-chan time.Time { return w.t.C }
func (w wallTicker) Stop()               { w.t.Stop() }
