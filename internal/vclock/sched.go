package vclock

import (
	"container/heap"
	"fmt"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker preserving schedule order
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event scheduler with a
// virtual clock: the event heap that used to live inside emu.Engine,
// promoted so the emulator and SimClock share one ordered event loop.
// It is not safe for concurrent use on its own; all scheduled callbacks
// run inside its event loop. SimClock adds the locking needed for
// cross-goroutine use.
type Scheduler struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	stopped bool
}

// NewScheduler returns a scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Schedule runs fn after delay of virtual time. A negative delay
// panics: the simulation cannot go back in time.
func (s *Scheduler) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("vclock: negative delay %v", delay))
	}
	s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time (>= Now).
func (s *Scheduler) ScheduleAt(at time.Duration, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("vclock: schedule at %v before now %v", at, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: at, seq: s.seq, fn: fn})
}

// pop removes and returns the earliest event. Callers must know the
// heap is non-empty.
func (s *Scheduler) pop() event {
	return heap.Pop(&s.events).(event)
}

// Run processes events until none remain or Stop is called.
func (s *Scheduler) Run() {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		ev := s.pop()
		s.now = ev.at
		ev.fn()
	}
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to the deadline.
func (s *Scheduler) RunUntil(deadline time.Duration) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped && s.events[0].at <= deadline {
		ev := s.pop()
		s.now = ev.at
		ev.fn()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// Stop halts Run/RunUntil after the current event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// Pending returns the number of queued events.
func (s *Scheduler) Pending() int { return len(s.events) }
