package vclock

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestWallSmoke(t *testing.T) {
	c := Or(nil)
	if c != Wall {
		t.Fatalf("Or(nil) = %v, want Wall", c)
	}
	start := c.Now()
	c.Sleep(time.Millisecond)
	if c.Since(start) <= 0 {
		t.Fatal("wall clock did not advance across Sleep")
	}
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(2 * time.Second):
		t.Fatal("wall timer never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire reported armed")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(2 * time.Second):
		t.Fatal("wall ticker never ticked")
	}
}

func TestSchedulerOrderingAndTieBreak(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	s.Schedule(time.Millisecond, func() { got = append(got, 1) })
	// Same timestamp: schedule order must be preserved via seq.
	s.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(3*time.Millisecond, func() { got = append(got, 4) })
	s.Run()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", s.Now())
	}
}

func TestSchedulerNegativeDelayPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("no panic for negative delay")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "negative delay") {
			t.Fatalf("panic = %v, want message about negative delay", r)
		}
	}()
	NewScheduler().Schedule(-time.Second, func() {})
}

func TestSimClockSleepAndNow(t *testing.T) {
	c := NewSim()
	start := c.Now()
	done := make(chan time.Duration, 1)
	c.Go(func() {
		c.Sleep(90 * time.Second)
		done <- c.Since(start)
	})
	c.Run()
	if got := <-done; got != 90*time.Second {
		t.Fatalf("virtual sleep elapsed %v, want exactly 90s", got)
	}
	if c.Elapsed() != 90*time.Second {
		t.Fatalf("Elapsed = %v, want 90s", c.Elapsed())
	}
}

func TestSimClockTimerStopAndReset(t *testing.T) {
	c := NewSim()
	var fired atomic.Int32
	tm := c.AfterFunc(time.Second, func() { fired.Add(1) })
	if !tm.Stop() {
		t.Fatal("Stop on armed timer reported not armed")
	}
	c.Advance(2 * time.Second)
	if fired.Load() != 0 {
		t.Fatal("stopped timer fired")
	}
	if tm.Reset(time.Second) {
		t.Fatal("Reset on stopped timer reported armed")
	}
	c.Advance(2 * time.Second)
	if fired.Load() != 1 {
		t.Fatalf("reset timer fired %d times, want 1", fired.Load())
	}
}

func TestSimClockTimerChannelStampsVirtualTime(t *testing.T) {
	c := NewSim()
	tm := c.NewTimer(5 * time.Second)
	c.Advance(10 * time.Second)
	select {
	case at := <-tm.C():
		if got := at.Sub(simEpoch); got != 5*time.Second {
			t.Fatalf("timer stamped +%v, want +5s", got)
		}
	default:
		t.Fatal("timer channel empty after Advance past deadline")
	}
}

// A worker must never block bare on a ticker/timer channel (the quiesce
// accounting only sees Sleep), but Sleep-then-drain composes fine: the
// tick event at T sorts before the sleep wake-up at T (earlier seq), so
// the channel is always full when the worker resumes.
func TestSimClockTickerDrainAfterSleep(t *testing.T) {
	c := NewSim()
	tk := c.NewTicker(time.Second)
	var ticks []time.Duration
	c.Go(func() {
		for i := 0; i < 3; i++ {
			c.Sleep(time.Second)
			at := <-tk.C()
			ticks = append(ticks, at.Sub(simEpoch))
		}
		tk.Stop()
	})
	c.Run()
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	for i, want := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		if ticks[i] != want {
			t.Fatalf("tick %d at +%v, want +%v", i, ticks[i], want)
		}
	}
}

// Event-mode ticker: a scheduled callback polls the channel without
// blocking, so no worker accounting is involved at all.
func TestSimClockTickerEventMode(t *testing.T) {
	c := NewSim()
	tk := c.NewTicker(time.Second)
	var seen []time.Duration
	var poll func()
	poll = func() {
		select {
		case at := <-tk.C():
			seen = append(seen, at.Sub(simEpoch))
		default:
		}
		if c.Elapsed() < 5*time.Second {
			c.AfterFunc(500*time.Millisecond, poll)
		}
	}
	c.AfterFunc(500*time.Millisecond, poll)
	c.RunUntil(6 * time.Second)
	tk.Stop()
	if len(seen) < 4 {
		t.Fatalf("polled %d ticks, want >= 4 (got %v)", len(seen), seen)
	}
}

func TestSimClockWorkersInterleaveDeterministically(t *testing.T) {
	// Two workers sleeping different intervals plus scheduled events:
	// the merged order must be identical across runs.
	run := func() string {
		c := NewSim()
		var mu strings.Builder
		appendLog := func(tag string) {
			// All appends happen either on the loop goroutine or on a
			// worker that is the only runnable goroutine, so no lock is
			// needed; the order is what we assert on.
			mu.WriteString(tag)
			mu.WriteString(";")
		}
		c.Go(func() {
			for i := 0; i < 3; i++ {
				c.Sleep(2 * time.Second)
				appendLog("a" + c.Elapsed().String())
			}
		})
		c.Go(func() {
			for i := 0; i < 2; i++ {
				c.Sleep(3 * time.Second)
				appendLog("b" + c.Elapsed().String())
			}
		})
		c.AfterFunc(5*time.Second, func() { appendLog("ev" + c.Elapsed().String()) })
		c.Run()
		return mu.String()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d order %q != first %q", i, got, first)
		}
	}
	if !strings.Contains(first, "ev5s") {
		t.Fatalf("event missing from log %q", first)
	}
}

func TestSimClockStopUnblocksRun(t *testing.T) {
	c := NewSim()
	c.AfterFunc(time.Second, func() { c.Stop() })
	c.AfterFunc(time.Hour, func() { t.Error("event after Stop ran") })
	c.Run()
	if c.Elapsed() != time.Second {
		t.Fatalf("Elapsed = %v, want 1s (stopped)", c.Elapsed())
	}
	if c.Scheduler().Pending() != 1 {
		t.Fatalf("Pending = %d, want the 1h event still queued", c.Scheduler().Pending())
	}
}

func TestSimClockSharesEngineScheduler(t *testing.T) {
	s := NewScheduler()
	c := NewSimOn(s)
	var order []string
	s.Schedule(2*time.Second, func() { order = append(order, "sched") })
	c.AfterFunc(time.Second, func() { order = append(order, "clock") })
	c.Run()
	if len(order) != 2 || order[0] != "clock" || order[1] != "sched" {
		t.Fatalf("order = %v, want [clock sched]", order)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("shared scheduler now = %v, want 2s", s.Now())
	}
}

func TestGoOnFallsBackToPlainGoroutine(t *testing.T) {
	done := make(chan struct{})
	GoOn(Wall, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("GoOn(Wall) goroutine never ran")
	}
}
