package vclock

import (
	"sync"
	"time"
)

// simEpoch is the fixed base of every SimClock's absolute time: virtual
// instant zero maps to this wall instant, so UnixNano stamps taken on a
// SimClock are plausible but fully deterministic.
var simEpoch = time.Unix(1_700_000_000, 0).UTC()

// SimClock is a virtual Clock driven by a discrete-event Scheduler.
// Time advances only inside Run/RunUntil/Advance, so a session that
// would take minutes of wall time executes as fast as the CPU allows,
// and every timestamp is deterministic run after run.
//
// Two usage modes compose:
//
//   - Event mode: callbacks scheduled with AfterFunc (and everything an
//     emu.Engine sharing the scheduler does) run inline on the event
//     loop, single-threaded, exactly like the emulator.
//   - Cooperative goroutines: code written against blocking Clock calls
//     (Sleep) can run under the sim if its goroutines are registered
//     with Go — the loop advances time only while every registered
//     worker is blocked in a clock wait, which makes the interleaving
//     of sleeps and events deterministic. Workers must not block on
//     anything the clock cannot see (sockets, unregistered channels)
//     while the loop is running, or virtual time will stall (Run waits)
//     — real file descriptors belong to the wall clock.
//
// All methods are safe for concurrent use. When the scheduler is shared
// with an emu.Engine (NewSimOn), drive the loop from one goroutine —
// either Engine.Run or SimClock.Run, not both.
type SimClock struct {
	mu      sync.Mutex
	cond    *sync.Cond
	s       *Scheduler
	workers int // registered cooperative goroutines
	blocked int // of those, currently blocked in a clock wait
}

// NewSim returns a SimClock owning a fresh Scheduler at virtual zero.
func NewSim() *SimClock { return NewSimOn(NewScheduler()) }

// NewSimOn returns a SimClock sharing s — typically an emu.Engine's
// embedded scheduler, so packet deliveries and clock wake-ups interleave
// on one deterministic event loop.
func NewSimOn(s *Scheduler) *SimClock {
	c := &SimClock{s: s}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Scheduler returns the underlying shared scheduler.
func (c *SimClock) Scheduler() *Scheduler { return c.s }

// Elapsed returns the current virtual time as an offset from zero.
func (c *SimClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s.now
}

// Now returns the fixed epoch plus the virtual elapsed time.
func (c *SimClock) Now() time.Time {
	return simEpoch.Add(c.Elapsed())
}

// Since returns Now().Sub(t).
func (c *SimClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// schedule pushes fn at virtual now+d (clamped to now). Callers hold mu.
func (c *SimClock) scheduleLocked(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.s.ScheduleAt(c.s.now+d, fn)
}

// Sleep blocks the calling goroutine for d of virtual time. The loop
// (Run/RunUntil) delivers the wake-up; a goroutine registered with Go
// is accounted as blocked so the loop may advance time past it.
func (c *SimClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	fired := false
	c.blocked++
	c.cond.Broadcast() // the loop may now be quiescent
	c.scheduleLocked(d, func() {
		c.mu.Lock()
		fired = true
		c.blocked-- // runnable again before the loop pops further events
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	for !fired {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// After returns a channel that receives the virtual time after d.
func (c *SimClock) After(d time.Duration) <-chan time.Time {
	return c.NewTimer(d).C()
}

// AfterFunc schedules fn on the event loop after d of virtual time.
func (c *SimClock) AfterFunc(d time.Duration, fn func()) Timer {
	t := &simTimer{c: c, fn: fn}
	c.mu.Lock()
	t.armLocked(d)
	c.mu.Unlock()
	return t
}

// NewTimer returns a Timer whose channel fires once after d.
func (c *SimClock) NewTimer(d time.Duration) Timer {
	t := &simTimer{c: c, ch: make(chan time.Time, 1)}
	c.mu.Lock()
	t.armLocked(d)
	c.mu.Unlock()
	return t
}

// NewTicker returns a Ticker firing every d of virtual time.
func (c *SimClock) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("vclock: non-positive ticker interval")
	}
	t := &simTicker{c: c, ch: make(chan time.Time, 1), period: d}
	c.mu.Lock()
	t.scheduleLocked()
	c.mu.Unlock()
	return t
}

// Go runs fn as a registered cooperative worker: the event loop only
// advances virtual time while every registered worker is blocked in a
// clock wait, so sleeps in fn interleave deterministically with events.
func (c *SimClock) Go(fn func()) {
	c.mu.Lock()
	c.workers++
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.workers--
			c.cond.Broadcast()
			c.mu.Unlock()
		}()
		fn()
	}()
}

// Run drives the loop until no events remain (and every registered
// worker is blocked or gone) or Stop is called.
func (c *SimClock) Run() { c.run(-1) }

// RunUntil drives the loop through events at or before deadline, then
// advances the clock to the deadline.
func (c *SimClock) RunUntil(deadline time.Duration) { c.run(deadline) }

// Advance drives the loop d of virtual time past the current instant —
// the test idiom for stepping a component without a background loop.
func (c *SimClock) Advance(d time.Duration) {
	c.run(c.Elapsed() + d)
}

// Stop halts a running loop after the current event returns.
func (c *SimClock) Stop() {
	c.mu.Lock()
	c.s.stopped = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *SimClock) run(deadline time.Duration) {
	c.mu.Lock()
	c.s.stopped = false
	for {
		// Quiesce: never advance time while a registered worker is
		// runnable — it may be about to schedule something earlier.
		for c.workers > c.blocked && !c.s.stopped {
			c.cond.Wait()
		}
		if c.s.stopped || len(c.s.events) == 0 {
			break
		}
		if deadline >= 0 && c.s.events[0].at > deadline {
			break
		}
		ev := c.s.pop()
		c.s.now = ev.at
		c.mu.Unlock()
		ev.fn()
		c.mu.Lock()
	}
	if deadline >= 0 && !c.s.stopped && c.s.now < deadline {
		c.s.now = deadline
	}
	c.mu.Unlock()
}

// simTimer is a one-shot virtual timer. Cancellation is generation-
// based: the scheduled closure fires only if its generation is still
// the timer's armed generation (the heap has no random deletion).
type simTimer struct {
	c     *SimClock
	ch    chan time.Time // nil for AfterFunc timers
	fn    func()
	gen   int
	armed bool
}

// armLocked schedules the firing closure; callers hold c.mu.
func (t *simTimer) armLocked(d time.Duration) {
	t.armed = true
	t.gen++
	gen := t.gen
	t.c.scheduleLocked(d, func() { t.fire(gen) })
}

func (t *simTimer) fire(gen int) {
	t.c.mu.Lock()
	live := t.armed && t.gen == gen
	if live {
		t.armed = false
	}
	now := simEpoch.Add(t.c.s.now)
	t.c.mu.Unlock()
	if !live {
		return
	}
	if t.fn != nil {
		t.fn()
		return
	}
	t.ch <- now // cap 1, fires once per arm: never blocks
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

func (t *simTimer) Stop() bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := t.armed
	t.armed = false
	t.gen++
	return was
}

func (t *simTimer) Reset(d time.Duration) bool {
	t.c.mu.Lock()
	defer t.c.mu.Unlock()
	was := t.armed
	t.armLocked(d)
	return was
}

// simTicker fires every period; a full channel drops the tick, exactly
// like time.Ticker.
type simTicker struct {
	c       *SimClock
	ch      chan time.Time
	period  time.Duration
	stopped bool
}

func (t *simTicker) scheduleLocked() {
	t.c.scheduleLocked(t.period, t.tick)
}

func (t *simTicker) tick() {
	t.c.mu.Lock()
	if t.stopped {
		t.c.mu.Unlock()
		return
	}
	now := simEpoch.Add(t.c.s.now)
	t.scheduleLocked()
	t.c.mu.Unlock()
	select {
	case t.ch <- now:
	default: // receiver lagging: drop the tick, like time.Ticker
	}
}

func (t *simTicker) C() <-chan time.Time { return t.ch }

func (t *simTicker) Stop() {
	t.c.mu.Lock()
	t.stopped = true
	t.c.mu.Unlock()
}
