// Package vclock is the clock seam of the live-measurement path. Every
// component that paces, delays, retries or stamps elapsed time — the
// netem relays and pipes, the fault supervisor, the iperf and udpping
// clients, the observability layer — takes a Clock instead of calling
// the time package directly. Two implementations exist:
//
//   - Wall, the default: thin wrappers over the real time package.
//     Components built without an explicit clock behave exactly as they
//     did before the seam existed (same syscalls, same jitter).
//   - SimClock, a virtual clock backed by the same discrete-event
//     Scheduler that drives internal/emu. Time advances only when the
//     scheduler says so, so an entire fault-window session executes as
//     fast as the CPU allows and is deterministic to the timestamp.
//
// The Scheduler type here is the promoted event heap that used to live
// privately inside internal/emu: emu.Engine now embeds it, so the
// emulator's links/transports and any SimClock built with NewSimOn share
// one ordered event loop — a packet delivery, a fault-window edge and a
// pacer wake-up interleave in a single deterministic order.
package vclock

import "time"

// Clock abstracts the subset of the time package the live path uses.
// All implementations are safe for concurrent use.
type Clock interface {
	// Now returns the current time. For SimClock this is a fixed epoch
	// plus the virtual elapsed time.
	Now() time.Time
	// Since returns Now().Sub(t).
	Since(t time.Time) time.Duration
	// Sleep blocks the calling goroutine for d. On a SimClock the
	// goroutine should be a registered worker (SimClock.Go) so the
	// event loop knows when it is safe to advance time.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time after d.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules fn to run after d; the returned Timer can
	// cancel it. On a SimClock fn runs inline on the event loop.
	AfterFunc(d time.Duration, fn func()) Timer
	// NewTimer returns a Timer whose channel fires once after d.
	NewTimer(d time.Duration) Timer
	// NewTicker returns a Ticker whose channel fires every d.
	NewTicker(d time.Duration) Ticker
}

// Timer mirrors *time.Timer behind an interface so virtual timers can
// stand in for real ones.
type Timer interface {
	// C returns the firing channel (nil for AfterFunc timers).
	C() <-chan time.Time
	// Stop cancels the timer; it reports whether the timer was still
	// armed (same contract as time.Timer.Stop).
	Stop() bool
	// Reset re-arms the timer for d, reporting whether it was armed.
	Reset(d time.Duration) bool
}

// Ticker mirrors *time.Ticker behind an interface.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// Or returns c, or Wall when c is nil — the idiom for optional Clock
// config fields: `clk := vclock.Or(cfg.Clock)`.
func Or(c Clock) Clock {
	if c == nil {
		return Wall
	}
	return c
}

// goRunner is implemented by clocks that coordinate worker goroutines
// (SimClock). GoOn uses it so clock-generic code can spawn goroutines
// the virtual clock knows about.
type goRunner interface {
	Go(fn func())
}

// GoOn runs fn in a new goroutine. When c coordinates workers (a
// SimClock), the goroutine is registered with it so virtual time only
// advances while the goroutine is blocked in a clock wait; on a wall
// clock this is a plain `go fn()`.
func GoOn(c Clock, fn func()) {
	if r, ok := c.(goRunner); ok {
		r.Go(fn)
		return
	}
	go fn()
}
