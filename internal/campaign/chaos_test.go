package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/faults"
	"satcell/internal/obs"
	"satcell/internal/store"
	"satcell/internal/testutil"
)

// chaosConfig is the suite's campaign: small scale, two networks, fast
// backoff — large enough for two drives (so a mid-campaign drive can be
// quarantined), small enough to rerun many times under -race.
func chaosConfig(dir string) Config {
	return Config{
		Dir: dir, Seed: 42, Scale: 0.02, Workers: 2,
		Scenario:     &dataset.Scenario{Networks: []channel.NetworkID{channel.StarlinkRoam, channel.ATT}},
		RetryBackoff: 2 * time.Millisecond,
	}
}

// cleanDigests runs one uninterrupted campaign and memoises the golden
// digests of its data and figure directories; every chaos scenario must
// converge on exactly these bytes.
var cleanOnce sync.Once
var cleanData, cleanFigs string

func cleanDigests(t *testing.T) (string, string) {
	t.Helper()
	cleanOnce.Do(func() {
		dir, err := os.MkdirTemp("", "campaign-clean-*")
		if err != nil {
			t.Fatal(err)
		}
		defer os.RemoveAll(dir)
		res, err := Run(context.Background(), chaosConfig(dir))
		if err != nil {
			t.Fatalf("clean run: %v", err)
		}
		if code := res.ExitCode(); code != 0 {
			t.Fatalf("clean run exit code = %d, want 0 (%s)", code, res.Completeness.String())
		}
		cleanData, cleanFigs = digest(t, res.DataDir), digest(t, res.FiguresDir)
	})
	if cleanData == "" || cleanFigs == "" {
		t.Fatalf("clean-run digests unavailable (earlier failure)")
	}
	return cleanData, cleanFigs
}

func digest(t *testing.T, dir string) string {
	t.Helper()
	d, err := store.DigestDir(dir)
	if err != nil {
		t.Fatalf("digest %s: %v", dir, err)
	}
	return d
}

// resumeAndCompare resumes an interrupted run directory and checks the
// converged artifacts against the golden digests.
func resumeAndCompare(t *testing.T, dir string) *Result {
	t.Helper()
	wantData, wantFigs := cleanDigests(t)
	cfg := chaosConfig(dir)
	cfg.Resume = true
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if code := res.ExitCode(); code != 0 {
		t.Fatalf("resumed run exit code = %d, want 0 (%s)", code, res.Completeness.String())
	}
	if got := digest(t, res.DataDir); got != wantData {
		t.Errorf("resumed data digest = %s, want %s (not byte-identical)", got, wantData)
	}
	if got := digest(t, res.FiguresDir); got != wantFigs {
		t.Errorf("resumed figures digest = %s, want %s (not byte-identical)", got, wantFigs)
	}
	return res
}

// TestCampaignCrashAtEveryStageBoundary hard-cancels the run at the
// entry of each pipeline stage in turn — the process-internal twin of
// `kill -9` at the boundary — then resumes and requires byte-identical
// artifacts and figures.
func TestCampaignCrashAtEveryStageBoundary(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	defer testutil.SettleGoroutines(t, baseline)
	cleanDigests(t)

	for _, victim := range Stages {
		victim := victim
		t.Run(string(victim), func(t *testing.T) {
			dir := t.TempDir()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cfg := chaosConfig(dir)
			cfg.beforeStage = func(s Stage) error {
				if s == victim {
					cancel()
					return ctx.Err()
				}
				return nil
			}
			if _, err := Run(ctx, cfg); err == nil {
				t.Fatalf("run survived the crash at stage %s", victim)
			}
			resumeAndCompare(t, dir)
		})
	}
}

// TestCampaignCrashMidGenerate cancels in the middle of the generation
// worker pool (after a few sampling units) and resumes.
func TestCampaignCrashMidGenerate(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	defer testutil.SettleGoroutines(t, baseline)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var units atomic.Int64
	cfg := chaosConfig(dir)
	cfg.beforeUnit = func(drive int, n channel.NetworkID) error {
		if units.Add(1) == 3 {
			cancel()
			return ctx.Err()
		}
		return nil
	}
	if _, err := Run(ctx, cfg); err == nil {
		t.Fatalf("run survived the mid-generate crash")
	}
	resumeAndCompare(t, dir)
}

// TestCampaignCrashMidExport cancels between shard writes — after the
// checkpoint journalled some shards — and requires the resume to adopt
// them (Reused > 0) and still converge byte-identically.
func TestCampaignCrashMidExport(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	defer testutil.SettleGoroutines(t, baseline)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var files atomic.Int64
	cfg := chaosConfig(dir)
	cfg.beforeFile = func(name string) error {
		if files.Add(1) == 3 {
			cancel()
			return ctx.Err()
		}
		return nil
	}
	if _, err := Run(ctx, cfg); err == nil {
		t.Fatalf("run survived the mid-export crash")
	}
	res := resumeAndCompare(t, dir)
	if res.Reused < 2 {
		t.Errorf("resume reused %d shards, want >= 2 (checkpoint not honoured)", res.Reused)
	}
}

// TestCampaignStallWatchdog wedges a shard write with a scripted
// write-stall and requires the watchdog to cancel the stage, the
// supervisor to retry it, and the run to converge on the clean digest
// once the stall rule's budget is exhausted.
func TestCampaignStallWatchdog(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	defer testutil.SettleGoroutines(t, baseline)
	wantData, wantFigs := cleanDigests(t)

	// The stall (2.5s) dwarfs the window (500ms), and the window dwarfs
	// any honest inter-counter gap — even under -race — so the watchdog
	// fires on the injected wedge and only on it. x2 exhausts the rule
	// within the default retry budget.
	sched, err := faults.ParseIOSpec("write-stall:drive001_*:x2:+2500ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := chaosConfig(dir)
	cfg.FS = store.NewFaultFS(nil, sched)
	cfg.StallWindow = 500 * time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("stalled campaign did not converge: %v", err)
	}
	if res.Stalls == 0 {
		t.Errorf("watchdog never fired despite the write-stall rule")
	}
	if res.Retries == 0 {
		t.Errorf("stage was never retried despite the stall")
	}
	if got := digest(t, res.DataDir); got != wantData {
		t.Errorf("post-stall data digest = %s, want %s", got, wantData)
	}
	if got := digest(t, res.FiguresDir); got != wantFigs {
		t.Errorf("post-stall figures digest = %s, want %s", got, wantFigs)
	}
	if got := cfg.Metrics.Counter("campaign.stage_stalls").Value(); got == 0 {
		t.Errorf("campaign.stage_stalls counter = 0, want > 0")
	}
}

// TestCampaignQuarantinedDrive panics one generation unit and requires
// the run to complete degraded: the drive quarantined and itemised, the
// dataset fsck-clean, the analysis certificate complete, and exit 3.
func TestCampaignQuarantinedDrive(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	defer testutil.SettleGoroutines(t, baseline)

	dir := t.TempDir()
	cfg := chaosConfig(dir)
	cfg.beforeUnit = func(drive int, n channel.NetworkID) error {
		if drive == 1 && n == channel.StarlinkRoam {
			panic("injected drive meltdown")
		}
		return nil
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("degraded campaign aborted: %v", err)
	}
	if code := res.ExitCode(); code != 3 {
		t.Fatalf("exit code = %d, want 3 (partial campaign)", code)
	}
	if len(res.Completeness.Gen) != 1 || res.Completeness.Gen[0].Drive != 1 {
		t.Fatalf("quarantine ledger = %+v, want exactly drive 1", res.Completeness.Gen)
	}
	if got := res.Completeness.Gen[0].Class; got != dataset.FailPanic {
		t.Errorf("failure class = %q, want %q", got, dataset.FailPanic)
	}
	cert := res.Certificate()
	if !strings.Contains(cert, "drive001") || !strings.Contains(cert, "meltdown") {
		t.Errorf("certificate does not itemise the quarantined drive:\n%s", cert)
	}
	if res.Completeness.Stream == nil || !res.Completeness.Stream.Complete() {
		t.Errorf("stream certificate = %+v, want complete (the loss happened upstream)", res.Completeness.Stream)
	}
	// The exported directory must be declared-partial, not torn: fsck
	// clean, and the manifest itemises the quarantined drive.
	rep, err := store.Fsck(res.DataDir)
	if err != nil {
		t.Fatalf("fsck: %v", err)
	}
	if !rep.OK() {
		t.Errorf("degraded export is not fsck-clean:\n%s", rep)
	}
	m, err := store.ReadManifest(res.DataDir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Campaign == nil || len(m.Campaign.Quarantined) != 1 {
		t.Errorf("manifest quarantine record = %+v, want 1 entry", m.Campaign)
	}
	for name := range m.Files {
		if strings.HasPrefix(name, "drive001") {
			t.Errorf("quarantined drive's shard %s still exported", name)
		}
	}
}

// TestCampaignLockHeld requires the supervisor to refuse a directory
// another live process holds locked.
func TestCampaignLockHeld(t *testing.T) {
	dir := t.TempDir()
	lock, err := store.AcquireLock(nil, dir, "other-tool")
	if err != nil {
		t.Fatal(err)
	}
	defer lock.Release()
	if _, err := Run(context.Background(), chaosConfig(dir)); err == nil {
		t.Fatalf("Run acquired a directory locked by another tool")
	} else if !strings.Contains(err.Error(), "other-tool") {
		t.Errorf("lock error does not name the holder: %v", err)
	}
}

// TestCampaignResumeSeedMismatch requires a resume with different
// campaign parameters to refuse rather than mix two campaigns.
func TestCampaignResumeSeedMismatch(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), chaosConfig(dir)); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	cfg := chaosConfig(dir)
	cfg.Seed, cfg.Resume = 43, true
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatalf("resume with a different seed succeeded")
	}
}

// TestCampaignVerifyHealsCorruption corrupts an exported shard behind
// the journal's back (analyze/render not yet run), then resumes: the
// verify stage must detect it and the pipeline must heal by re-entering
// generate, converging on the clean digests.
func TestCampaignVerifyHealsCorruption(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	defer testutil.SettleGoroutines(t, baseline)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := chaosConfig(dir)
	cfg.beforeStage = func(s Stage) error {
		if s == StageVerify {
			cancel()
			return ctx.Err()
		}
		return nil
	}
	if _, err := Run(ctx, cfg); err == nil {
		t.Fatalf("run survived the crash before verify")
	}

	// Bit-rot one exported shard while the campaign is down.
	var victim string
	entries, err := os.ReadDir(filepath.Join(dir, "data"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "drive") {
			victim = filepath.Join(dir, "data", e.Name())
			break
		}
	}
	if victim == "" {
		t.Fatalf("no exported shard to corrupt")
	}
	b, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x40
	if err := os.WriteFile(victim, b, 0o644); err != nil {
		t.Fatal(err)
	}

	res := resumeAndCompare(t, dir)
	if res.Retries == 0 {
		t.Errorf("healing left no retry trace (want the verify->generate heal counted)")
	}
}
