package campaign

import (
	"sync"
	"time"
)

// Status is the live health view of a supervised campaign, published on
// /debug/health by the CLI: which stage is running, which attempt, and
// how long ago the watchdog last saw counter progress — the number an
// operator checks to distinguish "slow" from "wedged" before the
// watchdog decides for them. Every method is nil-safe so the runner
// updates it unconditionally.
type Status struct {
	mu           sync.Mutex
	stage        string
	attempt      int
	lastProgress time.Time
}

// setStage records the stage/attempt now executing.
func (s *Status) setStage(stage string, attempt int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stage, s.attempt = stage, attempt
	// A new attempt starts its progress clock fresh; the previous
	// attempt's age is history, not health.
	s.lastProgress = time.Now()
	s.mu.Unlock()
}

// noteProgress records that the watchdog observed the progress counters
// move (called from the watchdog's poll loop).
func (s *Status) noteProgress() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.lastProgress = time.Now()
	s.mu.Unlock()
}

// Snapshot returns the health document: current stage ("idle" before
// the pipeline and after it finishes), attempt number, and milliseconds
// since the watchdog last saw progress (absent while no watchdog-
// supervised stage is running).
func (s *Status) Snapshot() map[string]any {
	if s == nil {
		return map[string]any{"stage": "idle"}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := map[string]any{"stage": s.stage}
	if s.stage == "" {
		out["stage"] = "idle"
	}
	if s.attempt > 0 {
		out["attempt"] = s.attempt
	}
	if !s.lastProgress.IsZero() {
		out["last_progress_age_ms"] = time.Since(s.lastProgress).Milliseconds()
	}
	return out
}
