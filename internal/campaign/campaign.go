// Package campaign runs a full measurement campaign — plan, generate/
// export, verify, analyze, render — as a crash-only supervised state
// machine. Every completed stage is journalled through the store's
// append-only fsynced journal, so a `kill -9` at any instant resumes
// with Resume and converges on the byte-identical artifact set; a
// watchdog fed by the observability counters declares a stage stalled
// when its progress stops, cancels it and retries it under the shared
// capped-jittered backoff policy. Failures degrade instead of aborting:
// generation quarantines panicking drives, the streaming analyzer
// quarantines poison shards, and both ledgers merge into one unified
// completeness certificate at the end.
package campaign

import (
	"fmt"
	"strings"
	"time"

	"satcell/internal/channel"
	"satcell/internal/core"
	"satcell/internal/dataset"
	"satcell/internal/obs"
	"satcell/internal/store"
	"satcell/internal/vclock"
	"satcell/internal/vsession"
)

// Stage names one step of the campaign pipeline.
type Stage string

// The pipeline, in run order. Generation and export are one stage:
// the export checkpoint already makes the pair internally resumable,
// so a coarser stage boundary loses nothing.
const (
	StagePlan     Stage = "plan"
	StageGenerate Stage = "generate"
	StageVerify   Stage = "verify"
	StageAnalyze  Stage = "analyze"
	StageRender   Stage = "render"
	// StageVSession is the optional virtual-session stage: it runs only
	// when Config.VSession is set, after render, and replays a
	// deterministic emulated transport session whose per-second CSV
	// lands next to the figures.
	StageVSession Stage = "vsession"
)

// Stages is the unconditional pipeline in execution order; the
// vsession stage is appended per run when configured, so this list
// stays the stable contract for journal replay of ordinary runs.
var Stages = []Stage{StagePlan, StageGenerate, StageVerify, StageAnalyze, StageRender}

// JournalName is the campaign's stage journal in the run directory.
const JournalName = "CAMPAIGN"

// TelemetryName is the flight recorder's journal in the run directory:
// span records, sampler snapshots and post-mortem pointers, appended
// through the same fsynced store journal as the stage log. It lives at
// the run-dir root, outside data/ and figures/, so telemetry never
// perturbs the byte-identical artifact digests.
const TelemetryName = "TELEMETRY"

// PostmortemDirName is the run-dir subdirectory that receives automatic
// post-mortem captures, one <stage>-<attempt> directory per incident.
const PostmortemDirName = "postmortem"

// Tool tags the campaign journal's meta line.
const Tool = "satcell-campaign"

// Config parameterises one campaign run.
type Config struct {
	// Dir is the run directory: the stage journal and lock live at its
	// root, the dataset in Dir/data, the figure CSVs in Dir/figures.
	Dir string
	// Seed and Scale mirror the generator's knobs; a scenario seed
	// (Scenario.Seed != 0) overrides Seed, as everywhere else.
	Seed  int64
	Scale float64
	// Scenario declares the campaign (nil means the paper's default).
	Scenario *dataset.Scenario
	// Workers bounds generation and streaming-analysis goroutines; 0
	// means one per core. Artifacts are bit-identical for every value.
	Workers int
	// Resume replays the stage journal and re-enters the pipeline after
	// the last durably completed stage, instead of refusing to reuse a
	// dirty directory.
	Resume bool
	// StallWindow is how long a supervised stage may go without counter
	// progress before the watchdog cancels it (default 30s). Stages
	// without progress counters (plan, verify, render) are not
	// watchdog-supervised: they are short and CPU/disk bound.
	StallWindow time.Duration
	// StageRetries bounds retries per failed or stalled stage; 0 means
	// the default (2), negative means none.
	StageRetries int
	// RetryBackoff is the base of the capped-jittered stage retry
	// backoff (default 50ms).
	RetryBackoff time.Duration
	// Metrics receives live progress from every stage (and feeds the
	// watchdog); nil gets an internal registry so supervision still
	// works unobserved.
	Metrics *obs.Registry
	// Events, when non-nil, receives stage transitions (stage-start /
	// stage-end / stage-stall) alongside the analyzer's shard events.
	Events *obs.Tracer
	// SampleInterval is the flight recorder's metrics sampling period:
	// how often the registry snapshot is journalled into TELEMETRY
	// (default 1s; negative disables the sampler).
	SampleInterval time.Duration
	// Status, when non-nil, is kept current with the running stage,
	// attempt and watchdog last-progress time, for /debug/health.
	Status *Status
	// FS routes every disk operation (nil means the real filesystem);
	// the chaos suite injects faults here.
	FS store.FS
	// Log, when non-nil, narrates stage transitions and retries.
	Log *obs.Logger
	// Clock drives the elapsed-time spans, retry backoff waits, stall
	// watchdog and telemetry sampler. Nil means the wall clock.
	Clock vclock.Clock
	// VSession, when non-nil, appends the vsession stage: a virtual
	// emulated transport session (see internal/vsession) whose
	// per-second series is written to figures/vsession.csv and whose
	// digest is journalled. A zero VSession.Seed inherits the
	// campaign's effective seed.
	VSession *vsession.Config

	// Test seams, mirroring ExportOptions.BeforeFile: they run before
	// each stage attempt / generation unit / shard write, and the chaos
	// tests use them to cancel or panic at exact points.
	beforeStage func(Stage) error
	beforeUnit  func(drive int, network channel.NetworkID) error
	beforeFile  func(name string) error
}

// effectiveSeed resolves the scenario-seed override.
func (c *Config) effectiveSeed() int64 {
	if c.Scenario != nil && c.Scenario.Seed != 0 {
		return c.Scenario.Seed
	}
	return c.Seed
}

// Completeness is the campaign's unified degradation ledger: the
// generator's quarantined drives and the streaming analyzer's shard
// certificate, merged because the exit code answers one question — did
// every planned measurement make it into the figures?
type Completeness struct {
	// Gen itemises drives the degrading generator quarantined.
	Gen []dataset.DriveFailure `json:"gen,omitempty"`
	// Stream is the analyzer's shard certificate (nil until the analyze
	// stage has run).
	Stream *core.Completeness `json:"stream,omitempty"`
}

// Complete reports whether nothing was lost anywhere in the pipeline.
func (c *Completeness) Complete() bool {
	return len(c.Gen) == 0 && (c.Stream == nil || c.Stream.Complete())
}

// Err summarises the loss, nil when complete.
func (c *Completeness) Err() error {
	if c.Complete() {
		return nil
	}
	return fmt.Errorf("campaign: %s", c)
}

// String renders the one-line ledger summary.
func (c *Completeness) String() string {
	parts := []string{}
	if len(c.Gen) > 0 {
		parts = append(parts, fmt.Sprintf("%d drive(s) quarantined during generation", len(c.Gen)))
	}
	if c.Stream != nil && !c.Stream.Complete() {
		parts = append(parts, c.Stream.String())
	}
	if len(parts) == 0 {
		return "complete"
	}
	return strings.Join(parts, "; ")
}

// Result is the outcome of one supervised campaign run.
type Result struct {
	// Dir, DataDir and FiguresDir locate the run's artifacts.
	Dir        string
	DataDir    string
	FiguresDir string
	// Figures is the rendered figure set keyed by ID.
	Figures map[string]*core.Figure
	// Completeness is the unified degradation ledger.
	Completeness Completeness
	// Written and Reused count export shards generated vs adopted.
	Written, Reused int
	// Stalls and Retries total the supervisor's interventions.
	Stalls, Retries int
	// VDigest is the vsession stage's series digest ("" when the stage
	// did not run): two runs replayed the same virtual session iff
	// their digests match.
	VDigest string
}

// ExitCode maps the run to the satcell-analyze -stream convention:
// 0 complete, 3 partial (artifacts and figures exist, the certificate
// itemises the loss). Fatal errors never reach a Result and exit 1.
func (r *Result) ExitCode() int {
	if r.Completeness.Complete() {
		return 0
	}
	return 3
}

// Certificate renders the human-readable completeness certificate:
// the analyzer's shard figure plus the generator's quarantine ledger.
func (r *Result) Certificate() string {
	var b strings.Builder
	if r.Completeness.Stream != nil {
		b.WriteString(core.CompletenessFigure(r.Completeness.Stream).Render())
	}
	if len(r.Completeness.Gen) > 0 {
		fmt.Fprintf(&b, "generation quarantined %d drive(s):\n", len(r.Completeness.Gen))
		for _, f := range r.Completeness.Gen {
			fmt.Fprintf(&b, "  %s\n", f)
		}
	}
	if r.Completeness.Complete() {
		fmt.Fprintf(&b, "campaign complete: every planned measurement reached the figures\n")
	}
	return b.String()
}
