package campaign

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"satcell/internal/faults"
	"satcell/internal/netem"
	"satcell/internal/vsession"
)

func vsessionSpec() *vsession.Config {
	return &vsession.Config{
		Paths: []vsession.PathSpec{{
			Name:   "leo",
			Down:   netem.ConstantShape(20, 25*time.Millisecond, 0.001),
			Up:     netem.ConstantShape(5, 25*time.Millisecond, 0.001),
			Faults: &faults.Schedule{Blackouts: []faults.Window{{Start: 2 * time.Second, Dur: 1 * time.Second}}},
		}},
		Duration: 5 * time.Second,
	}
}

// The vsession stage knob: when configured, the campaign appends the
// stage, journals its digest, and writes figures/vsession.csv with
// exactly the bytes the digest covers — reproducibly across fresh runs.
func TestCampaignVSessionStage(t *testing.T) {
	run := func() (*Result, string) {
		dir := t.TempDir()
		cfg := chaosConfig(dir)
		cfg.VSession = vsessionSpec()
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		csv, err := os.ReadFile(filepath.Join(res.FiguresDir, "vsession.csv"))
		if err != nil {
			t.Fatal(err)
		}
		return res, string(csv)
	}
	res, csv := run()
	if res.VDigest == "" {
		t.Fatal("vsession stage ran but Result.VDigest is empty")
	}
	// The artifact must hash to the journalled digest: recompute via
	// the driver with the campaign's inherited seed.
	want := *vsessionSpec()
	want.Seed = 42 // campaign seed, inherited by the zero-seed config
	direct, err := vsession.Run(want)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Digest != res.VDigest {
		t.Fatalf("stage digest %s != direct driver digest %s", res.VDigest, direct.Digest)
	}
	if direct.CSV() != csv {
		t.Fatalf("figures/vsession.csv differs from the driver's series")
	}
	res2, csv2 := run()
	if res2.VDigest != res.VDigest || csv2 != csv {
		t.Fatalf("second campaign replayed a different session: %s vs %s", res2.VDigest, res.VDigest)
	}
}

// A resumed campaign must adopt the journalled vsession stage instead
// of re-running it, and still surface the digest in the result.
func TestCampaignVSessionResumeAdoptsDigest(t *testing.T) {
	dir := t.TempDir()
	cfg := chaosConfig(dir)
	cfg.VSession = vsessionSpec()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Resume = true
	res2, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.VDigest != res.VDigest {
		t.Fatalf("resume adopted digest %q, want %q", res2.VDigest, res.VDigest)
	}
}
