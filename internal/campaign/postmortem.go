package campaign

import (
	"fmt"
	"io"
	"path/filepath"
	"runtime/pprof"

	"satcell/internal/store"
)

// Automatic post-mortems: the moment the watchdog declares a stage
// stalled — or the streaming analyzer quarantines a shard — the process
// still holds the evidence (which goroutine is wedged on what, what the
// heap looks like, what every counter read, what the event ring saw).
// By the time an operator attaches, the stage has been cancelled and
// retried and the evidence is gone. So the supervisor captures the
// state into run/postmortem/<stage>-<attempt>/ *before* cancelling,
// and journals a pointer to the capture into TELEMETRY so the report
// renderer can line it up with the span that caused it.
//
// Capture layout:
//
//	goroutines.txt  full goroutine dump (pprof debug=2)
//	heap.pprof      heap profile (binary pprof proto)
//	metrics.json    final metrics registry snapshot
//	events.jsonl    event-ring flush (the -events export format)
//	reason.txt      why the capture fired
//
// One capture per (stage, attempt): the first incident wins, later ones
// in the same attempt are recorded only as span outcomes. Capture
// failures are logged and counted, never escalated — a post-mortem is
// evidence, not a stage dependency.

// capturePostmortem snapshots process state for the current stage
// attempt. Returns the capture directory ("" when skipped because this
// attempt already captured one).
func (r *runner) capturePostmortem(st Stage, attempt int, reason string) string {
	if !r.pmGuard.CompareAndSwap(false, true) {
		return ""
	}
	dir := filepath.Join(r.cfg.Dir, PostmortemDirName, fmt.Sprintf("%s-%d", st, attempt))
	fsys := r.cfg.FS
	if fsys == nil {
		fsys = store.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		r.cfg.Log.Warnf("postmortem %s: %v", dir, err)
		return ""
	}
	files := map[string]func(io.Writer) error{
		"goroutines.txt": func(w io.Writer) error {
			return pprof.Lookup("goroutine").WriteTo(w, 2)
		},
		"heap.pprof": func(w io.Writer) error {
			return pprof.Lookup("heap").WriteTo(w, 0)
		},
		"metrics.json": func(w io.Writer) error {
			return r.cfg.Metrics.WriteJSON(w)
		},
		"events.jsonl": func(w io.Writer) error {
			return r.cfg.Events.WriteJSONL(w)
		},
		"reason.txt": func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "stage=%s attempt=%d reason=%s\n", st, attempt, reason)
			return err
		},
	}
	for name, write := range files {
		if err := store.WriteFileAtomicFS(fsys, filepath.Join(dir, name), write); err != nil {
			r.cfg.Log.Warnf("postmortem %s: %v", name, err)
		}
	}
	r.cfg.Metrics.Counter("campaign.postmortems").Inc()
	r.rec.RecordPostmortem(string(st), attempt, dir, reason)
	r.cfg.Log.Warnf("stage %s attempt %d: post-mortem captured in %s (%s)", st, attempt, dir, reason)
	return dir
}
