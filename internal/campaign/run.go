package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"satcell/internal/core"
	"satcell/internal/dataset"
	"satcell/internal/faults"
	"satcell/internal/obs"
	"satcell/internal/store"
	"satcell/internal/vclock"
	"satcell/internal/vsession"
)

// stageRecord is one journal line: a stage that completed durably,
// with everything a resume must adopt instead of recompute.
type stageRecord struct {
	Stage    Stage `json:"stage"`
	Attempts int   `json:"attempts"`
	Stalls   int   `json:"stalls,omitempty"`
	// Generate-stage payload.
	Quarantined []dataset.DriveFailure `json:"quarantined,omitempty"`
	Written     int                    `json:"written,omitempty"`
	Reused      int                    `json:"reused,omitempty"`
	// Analyze-stage payload.
	Completeness *core.Completeness `json:"completeness,omitempty"`
	// VSession-stage payload: the per-second series digest.
	VDigest string `json:"vdigest,omitempty"`
}

// runner is the in-flight state of one supervised run.
type runner struct {
	cfg     Config
	workers int
	journal *store.Journal
	stages  []Stage
	done    map[Stage]*stageRecord
	figs    map[string]*core.Figure
	result  *Result
	clk     vclock.Clock
	start   time.Time

	// rec is the flight recorder appending to the TELEMETRY journal
	// (nil-safe: a run without telemetry records nothing); camp is its
	// root span, span the currently executing attempt span.
	rec  *obs.FlightRecorder
	camp *obs.Span
	span *obs.Span
	// pmGuard bounds post-mortem captures to one per stage attempt; it
	// is reset at each attempt start and raced by the watchdog and the
	// analyzer's quarantine callback. curStage/curAttempt name the
	// attempt now executing (written between attempts, read by callbacks
	// the attempt spawned).
	pmGuard    atomic.Bool
	curStage   Stage
	curAttempt int
}

// Run executes (or resumes) the campaign pipeline under supervision.
// It returns a Result for complete and degraded-but-finished runs —
// Result.ExitCode distinguishes them — and an error only for fatal
// conditions: a held lock, a journal mismatch, a cancelled context, or
// a stage that failed beyond its retry budget. On cancellation every
// durably completed stage is already journalled, so rerunning with
// Resume continues where the run stopped.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("campaign: Config.Dir is required")
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	if cfg.StallWindow <= 0 {
		cfg.StallWindow = 30 * time.Second
	}
	if cfg.StageRetries == 0 {
		cfg.StageRetries = 2
	} else if cfg.StageRetries < 0 {
		cfg.StageRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = time.Second
	} else if cfg.SampleInterval < 0 {
		cfg.SampleInterval = 0 // sampler disabled
	}
	if cfg.Metrics == nil {
		// The watchdog reads counters; supervision must work unobserved.
		cfg.Metrics = obs.NewRegistry()
	}
	workers, err := core.ValidateWorkers(cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if cfg.Scenario != nil {
		if err := cfg.Scenario.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}

	lock, err := store.AcquireLock(cfg.FS, cfg.Dir, Tool)
	if err != nil {
		return nil, err
	}
	defer lock.Release()

	meta := store.JournalMeta{Schema: store.SchemaVersion, Tool: Tool, Seed: cfg.effectiveSeed(), Scale: cfg.Scale}
	journal, entries, err := store.OpenJournal(cfg.FS, filepath.Join(cfg.Dir, JournalName), meta, cfg.Resume)
	if err != nil {
		return nil, err
	}
	defer journal.Close()

	// The TELEMETRY journal is the run's black box: span tree, sampler
	// snapshots and post-mortem pointers. On resume it is replayed only
	// to count prior process runs, so the report renderer can stitch
	// every attempt into one timeline; the records themselves stay on
	// disk untouched.
	telemetry, telEntries, err := store.OpenJournal(cfg.FS, filepath.Join(cfg.Dir, TelemetryName), meta, cfg.Resume)
	if err != nil {
		return nil, err
	}
	defer telemetry.Close()
	runNo := 1
	for _, raw := range telEntries {
		var t struct {
			T string `json:"t"`
		}
		if json.Unmarshal(raw, &t) == nil && t.T == obs.RecRun {
			runNo++
		}
	}

	// The stage list is per run: the vsession stage joins the pipeline
	// only when configured, so ordinary runs keep the stable Stages
	// contract.
	stages := Stages
	if cfg.VSession != nil {
		stages = append(append([]Stage{}, Stages...), StageVSession)
	}

	clk := vclock.Or(cfg.Clock)
	r := &runner{
		cfg: cfg, workers: workers, journal: journal,
		stages: stages,
		done:   make(map[Stage]*stageRecord),
		clk:    clk,
		start:  clk.Now(),
		result: &Result{
			Dir:        cfg.Dir,
			DataDir:    filepath.Join(cfg.Dir, "data"),
			FiguresDir: filepath.Join(cfg.Dir, "figures"),
		},
	}
	for _, raw := range entries {
		var rec stageRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("campaign: parse %s entry: %w", JournalName, err)
		}
		// Last record per stage wins: a healed stage supersedes its
		// earlier journal line.
		r.done[rec.Stage] = &rec
	}

	r.rec = obs.NewFlightRecorderClock(telemetry, runNo, clk)
	sampler := obs.StartSamplerClock(r.rec, cfg.Metrics, cfg.SampleInterval, clk)
	defer sampler.Stop()
	r.camp = r.rec.Begin(obs.SpanCampaign, Tool)

	if err := r.runPipeline(ctx); err != nil {
		if ctx.Err() != nil {
			r.camp.End(obs.SpanCancelled, ctx.Err().Error())
		} else {
			r.camp.End(obs.SpanFailed, err.Error())
		}
		return nil, err
	}
	r.camp.End(obs.SpanOK, r.result.Completeness.String())
	return r.result, nil
}

// ReadTelemetry replays a run directory's TELEMETRY journal read-only
// (torn tail dropped) into the flight log the report renderers consume.
// meta is the journal's identity line; log covers every process run the
// directory accumulated.
func ReadTelemetry(fsys store.FS, dir string) (*store.JournalMeta, *obs.FlightLog, error) {
	meta, entries, err := store.ReplayJournal(fsys, filepath.Join(dir, TelemetryName))
	if err != nil {
		return nil, nil, err
	}
	if meta == nil {
		return nil, nil, fmt.Errorf("campaign: no %s journal in %s (not a campaign run directory?)", TelemetryName, dir)
	}
	log, err := obs.ReplayTelemetry(entries)
	if err != nil {
		return nil, nil, err
	}
	return meta, log, nil
}

// runPipeline walks the stages in order, skipping journalled ones and
// healing a failed verify by re-entering generate (the export resume
// path regenerates exactly the corrupt shards).
func (r *runner) runPipeline(ctx context.Context) error {
	heals := 0
	for i := 0; i < len(r.stages); i++ {
		st := r.stages[i]
		if rec, ok := r.done[st]; ok {
			r.adopt(rec)
			r.cfg.Log.Infof("stage %s: journalled as complete, skipping", st)
			continue
		}
		rec, err := r.runStage(ctx, i, st)
		if err != nil {
			if st == StageVerify && heals <= r.cfg.StageRetries && ctx.Err() == nil {
				// A dirty dataset directory is not fatal while generate can
				// still heal it: drop generate's in-memory done mark and
				// re-enter it. Its fresh journal line supersedes the old one
				// on any future replay.
				heals++
				r.result.Retries++
				r.cfg.Metrics.Counter("campaign.stage_retries").Inc()
				r.cfg.Log.Warnf("stage %s: %v; re-entering %s to heal (%d/%d)",
					st, err, StageGenerate, heals, r.cfg.StageRetries+1)
				delete(r.done, StageGenerate)
				for j, s := range r.stages {
					if s == StageGenerate {
						i = j - 1
						break
					}
				}
				continue
			}
			return err
		}
		r.adopt(rec)
		if err := r.journal.Append(rec); err != nil {
			return err
		}
		r.done[st] = rec
	}
	r.result.Figures = r.figs
	return nil
}

// adopt folds a completed (or replayed) stage record into the result.
func (r *runner) adopt(rec *stageRecord) {
	r.result.Stalls += rec.Stalls
	if rec.Attempts > 1 {
		r.result.Retries += rec.Attempts - 1
	}
	switch rec.Stage {
	case StageGenerate:
		r.result.Completeness.Gen = rec.Quarantined
		r.result.Written, r.result.Reused = rec.Written, rec.Reused
	case StageAnalyze:
		r.result.Completeness.Stream = rec.Completeness
	case StageVSession:
		r.result.VDigest = rec.VDigest
	}
}

// runStage runs one stage under the watchdog with the stage retry
// budget. A cancelled parent context aborts immediately — that is the
// checkpoint-then-exit path, not a stage failure.
func (r *runner) runStage(ctx context.Context, idx int, st Stage) (*stageRecord, error) {
	rec := &stageRecord{Stage: st}
	maxAttempts := r.cfg.StageRetries + 1
	stSpan := r.camp.Child(obs.SpanStage, string(st))
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		rec.Attempts = attempt
		if err := ctx.Err(); err != nil {
			stSpan.End(obs.SpanCancelled, err.Error())
			return nil, err
		}
		if r.cfg.beforeStage != nil {
			if err := r.cfg.beforeStage(st); err != nil {
				stSpan.End(obs.SpanCancelled, err.Error())
				return nil, err
			}
		}
		r.cfg.Status.setStage(string(st), attempt)
		r.curStage, r.curAttempt = st, attempt
		r.pmGuard.Store(false)
		r.span = stSpan.Child(obs.SpanAttempt, fmt.Sprintf("%s#%d", st, attempt))
		stageCtx, cancel := context.WithCancel(ctx)
		var dog *watchdog
		if progress := r.progressFunc(st); progress != nil {
			// The watchdog's trip path captures a post-mortem *before*
			// cancelling: once the stage unwinds, the wedged goroutines and
			// the counters they starved are gone.
			attempt := attempt
			trip := func() {
				r.capturePostmortem(st, attempt, fmt.Sprintf("watchdog: no counter progress for %v", r.cfg.StallWindow))
				cancel()
			}
			dog = startWatchdog(trip, progress, r.cfg.StallWindow, r.cfg.Status, r.clk)
		}
		r.cfg.Log.Infof("stage %s: attempt %d/%d", st, attempt, maxAttempts)
		r.cfg.Events.Span(r.clk.Since(r.start), obs.EvStageStart, "campaign", string(st))
		err := r.execStage(stageCtx, st, rec)
		stalled := false
		if dog != nil {
			stalled = dog.stop()
		}
		cancel()
		if err == nil {
			r.cfg.Events.Span(r.clk.Since(r.start), obs.EvStageEnd, "campaign", string(st))
			r.span.End(obs.SpanOK, "")
			if attempt > 1 {
				stSpan.End(obs.SpanRetried, fmt.Sprintf("ok on attempt %d/%d", attempt, maxAttempts))
			} else {
				stSpan.End(obs.SpanOK, "")
			}
			return rec, nil
		}
		if ctx.Err() != nil {
			// The run was cancelled from outside (SIGINT/SIGTERM): every
			// completed stage is journalled, so exit instead of retrying.
			r.span.End(obs.SpanCancelled, ctx.Err().Error())
			stSpan.End(obs.SpanCancelled, ctx.Err().Error())
			return nil, ctx.Err()
		}
		if stalled {
			rec.Stalls++
			r.cfg.Metrics.Counter("campaign.stage_stalls").Inc()
			r.cfg.Events.Span(r.clk.Since(r.start), obs.EvStageStall, "campaign",
				fmt.Sprintf("%s attempt %d", st, attempt))
			err = fmt.Errorf("campaign: stage %s stalled (no counter progress for %v): %w",
				st, r.cfg.StallWindow, err)
			r.span.End(obs.SpanStalled, err.Error())
		} else {
			r.span.End(obs.SpanFailed, err.Error())
		}
		lastErr = err
		if attempt == maxAttempts {
			break
		}
		r.cfg.Metrics.Counter("campaign.stage_retries").Inc()
		delay := faults.BackoffDelay(r.cfg.RetryBackoff, idx, attempt)
		r.cfg.Log.Warnf("stage %s: attempt %d failed (%v), retrying in %v", st, attempt, err, delay)
		select {
		case <-ctx.Done():
			stSpan.End(obs.SpanCancelled, ctx.Err().Error())
			return nil, ctx.Err()
		case <-r.clk.After(delay):
		}
	}
	stSpan.End(obs.SpanFailed, fmt.Sprintf("%d attempt(s) exhausted", maxAttempts))
	return nil, fmt.Errorf("campaign: stage %s failed after %d attempt(s): %w", st, maxAttempts, lastErr)
}

// progressFunc returns the watchdog's progress reading for stages with
// live counters; nil exempts the stage from stall supervision (plan,
// verify and render have no counters to feed a watchdog, and are short).
func (r *runner) progressFunc(st Stage) func() int64 {
	reg := r.cfg.Metrics
	switch st {
	case StageGenerate:
		units := reg.Counter("dataset.drive_units_done")
		samples := reg.Counter("dataset.samples_done")
		tests := reg.Counter("dataset.tests_done")
		written := reg.Counter("store.shards_written")
		reused := reg.Counter("store.shards_reused")
		retries := reg.Counter("dataset.unit_retries")
		return func() int64 {
			return units.Value() + samples.Value() + tests.Value() +
				written.Value() + reused.Value() + retries.Value()
		}
	case StageAnalyze:
		shards := reg.Counter("stream.shards_done")
		rows := reg.Counter("stream.rows_done")
		return func() int64 { return shards.Value() + rows.Value() }
	default:
		return nil
	}
}

// execStage dispatches one stage attempt.
func (r *runner) execStage(ctx context.Context, st Stage, rec *stageRecord) error {
	switch st {
	case StagePlan:
		return r.execPlan()
	case StageGenerate:
		return r.execGenerate(ctx, rec)
	case StageVerify:
		return r.execVerify()
	case StageAnalyze:
		return r.execAnalyze(ctx, rec)
	case StageRender:
		return r.execRender(ctx)
	case StageVSession:
		return r.execVSession(rec)
	default:
		return fmt.Errorf("campaign: unknown stage %q", st)
	}
}

// execPlan lays out the run directory. The config was validated before
// the journal opened; planning is deliberately cheap so the first
// journal line lands within milliseconds of startup.
func (r *runner) execPlan() error {
	fsys := r.cfg.FS
	if fsys == nil {
		fsys = store.OS()
	}
	if err := fsys.MkdirAll(r.result.DataDir, 0o755); err != nil {
		return err
	}
	return fsys.MkdirAll(r.result.FiguresDir, 0o755)
}

// execGenerate regenerates the dataset (deterministic, so a retry or
// resume recomputes the identical campaign) and exports it with Resume
// always on: the export checkpoint makes this stage internally
// resumable at shard granularity.
func (r *runner) execGenerate(ctx context.Context, rec *stageRecord) error {
	ds, err := dataset.GenerateContext(ctx, dataset.Config{
		Seed: r.cfg.Seed, Scale: r.cfg.Scale, Scenario: r.cfg.Scenario,
		Workers: r.workers, Metrics: r.cfg.Metrics,
		Degrade: true, BeforeUnit: r.cfg.beforeUnit,
		Spans: r.span,
	})
	if err != nil {
		return err
	}
	stats, err := store.ExportDatasetContext(ctx, r.result.DataDir, ds, store.ExportOptions{
		Seed: ds.Seed, Scale: r.cfg.Scale, Resume: true,
		BeforeFile: r.cfg.beforeFile, Metrics: r.cfg.Metrics, FS: r.cfg.FS,
	})
	if err != nil {
		return err
	}
	rec.Quarantined = ds.Quarantined
	rec.Written, rec.Reused = stats.Written, stats.Reused
	return nil
}

// execVerify audits the exported directory; any finding is a stage
// error, which the pipeline heals by re-entering generate.
func (r *runner) execVerify() error {
	rep, err := store.FsckFS(r.cfg.FS, r.result.DataDir)
	if err != nil {
		return err
	}
	if !rep.OK() {
		return fmt.Errorf("campaign: verify: %s", strings.TrimSpace(rep.String()))
	}
	r.cfg.Log.Infof("stage %s: %d files, %d rows verified", StageVerify, rep.FilesChecked, rep.RowsChecked)
	return nil
}

// execAnalyze streams the verified directory through the sharded
// figure pipeline (lenient: quarantines degrade the certificate, they
// do not abort the campaign).
func (r *runner) execAnalyze(ctx context.Context, rec *stageRecord) error {
	sa, err := r.analyze(ctx)
	if err != nil {
		return err
	}
	r.figs = sa.Figures()
	rec.Completeness = sa.Completeness()
	return nil
}

// analyze runs the streaming analysis; the render stage reuses it when
// a resume skipped past analyze with no figures in memory.
func (r *runner) analyze(ctx context.Context) (*core.StreamAnalysis, error) {
	src, err := core.OpenStoreSourceFS(r.cfg.FS, r.result.DataDir, store.Lenient)
	if err != nil {
		return nil, err
	}
	return core.StreamAnalyzeContext(ctx, src, core.StreamOptions{
		Workers: r.workers,
		Metrics: r.cfg.Metrics,
		Events:  r.cfg.Events,
		Span:    r.span,
		OnQuarantine: func(f core.ShardFailure) {
			// A quarantined shard is data loss: capture the process state
			// while the poison is still fresh (first incident per attempt).
			r.capturePostmortem(r.curStage, r.curAttempt, fmt.Sprintf("shard quarantined: %s", f))
		},
	})
}

// execVSession replays the configured virtual session on the sim
// stack and writes its per-second series to figures/vsession.csv. The
// series is a pure function of the session config and seed, so a
// retried or resumed stage reproduces the identical bytes — the digest
// in the journal line is the proof.
func (r *runner) execVSession(rec *stageRecord) error {
	vcfg := *r.cfg.VSession
	if vcfg.Seed == 0 {
		vcfg.Seed = r.cfg.effectiveSeed()
	}
	res, err := vsession.Run(vcfg)
	if err != nil {
		return err
	}
	out := filepath.Join(r.result.FiguresDir, "vsession.csv")
	if err := store.WriteFileAtomicFS(r.cfg.FS, out, func(w io.Writer) error {
		_, err := io.WriteString(w, res.CSV())
		return err
	}); err != nil {
		return err
	}
	rec.VDigest = res.Digest
	r.cfg.Log.Infof("stage %s: %s", StageVSession, res.Summary())
	return nil
}

// execRender writes every figure's data as manifested CSV artifacts.
// On a resumed run whose analyze stage completed in an earlier process
// the figures are not in memory; the streaming analysis is re-derived
// from disk — deterministic, so the rendered bytes cannot differ.
func (r *runner) execRender(ctx context.Context) error {
	if r.figs == nil {
		sa, err := r.analyze(ctx)
		if err != nil {
			return err
		}
		r.figs = sa.Figures()
	}
	files := make(map[string]string, len(r.figs))
	for id, f := range r.figs {
		files[id+".csv"] = f.CSV()
	}
	return store.ExportFiguresFS(r.cfg.FS, r.result.FiguresDir, r.cfg.effectiveSeed(), r.cfg.Scale, files)
}
