package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"satcell/internal/core"
	"satcell/internal/dataset"
	"satcell/internal/faults"
	"satcell/internal/obs"
	"satcell/internal/store"
)

// stageRecord is one journal line: a stage that completed durably,
// with everything a resume must adopt instead of recompute.
type stageRecord struct {
	Stage    Stage `json:"stage"`
	Attempts int   `json:"attempts"`
	Stalls   int   `json:"stalls,omitempty"`
	// Generate-stage payload.
	Quarantined []dataset.DriveFailure `json:"quarantined,omitempty"`
	Written     int                    `json:"written,omitempty"`
	Reused      int                    `json:"reused,omitempty"`
	// Analyze-stage payload.
	Completeness *core.Completeness `json:"completeness,omitempty"`
}

// runner is the in-flight state of one supervised run.
type runner struct {
	cfg     Config
	workers int
	journal *store.Journal
	done    map[Stage]*stageRecord
	figs    map[string]*core.Figure
	result  *Result
	start   time.Time
}

// Run executes (or resumes) the campaign pipeline under supervision.
// It returns a Result for complete and degraded-but-finished runs —
// Result.ExitCode distinguishes them — and an error only for fatal
// conditions: a held lock, a journal mismatch, a cancelled context, or
// a stage that failed beyond its retry budget. On cancellation every
// durably completed stage is already journalled, so rerunning with
// Resume continues where the run stopped.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("campaign: Config.Dir is required")
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.1
	}
	if cfg.StallWindow <= 0 {
		cfg.StallWindow = 30 * time.Second
	}
	if cfg.StageRetries == 0 {
		cfg.StageRetries = 2
	} else if cfg.StageRetries < 0 {
		cfg.StageRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.Metrics == nil {
		// The watchdog reads counters; supervision must work unobserved.
		cfg.Metrics = obs.NewRegistry()
	}
	workers, err := core.ValidateWorkers(cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if cfg.Scenario != nil {
		if err := cfg.Scenario.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}

	lock, err := store.AcquireLock(cfg.FS, cfg.Dir, Tool)
	if err != nil {
		return nil, err
	}
	defer lock.Release()

	meta := store.JournalMeta{Schema: store.SchemaVersion, Tool: Tool, Seed: cfg.effectiveSeed(), Scale: cfg.Scale}
	journal, entries, err := store.OpenJournal(cfg.FS, filepath.Join(cfg.Dir, JournalName), meta, cfg.Resume)
	if err != nil {
		return nil, err
	}
	defer journal.Close()

	r := &runner{
		cfg: cfg, workers: workers, journal: journal,
		done:  make(map[Stage]*stageRecord),
		start: time.Now(),
		result: &Result{
			Dir:        cfg.Dir,
			DataDir:    filepath.Join(cfg.Dir, "data"),
			FiguresDir: filepath.Join(cfg.Dir, "figures"),
		},
	}
	for _, raw := range entries {
		var rec stageRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("campaign: parse %s entry: %w", JournalName, err)
		}
		// Last record per stage wins: a healed stage supersedes its
		// earlier journal line.
		r.done[rec.Stage] = &rec
	}
	if err := r.runPipeline(ctx); err != nil {
		return nil, err
	}
	return r.result, nil
}

// runPipeline walks the stages in order, skipping journalled ones and
// healing a failed verify by re-entering generate (the export resume
// path regenerates exactly the corrupt shards).
func (r *runner) runPipeline(ctx context.Context) error {
	heals := 0
	for i := 0; i < len(Stages); i++ {
		st := Stages[i]
		if rec, ok := r.done[st]; ok {
			r.adopt(rec)
			r.cfg.Log.Infof("stage %s: journalled as complete, skipping", st)
			continue
		}
		rec, err := r.runStage(ctx, i, st)
		if err != nil {
			if st == StageVerify && heals <= r.cfg.StageRetries && ctx.Err() == nil {
				// A dirty dataset directory is not fatal while generate can
				// still heal it: drop generate's in-memory done mark and
				// re-enter it. Its fresh journal line supersedes the old one
				// on any future replay.
				heals++
				r.result.Retries++
				r.cfg.Metrics.Counter("campaign.stage_retries").Inc()
				r.cfg.Log.Warnf("stage %s: %v; re-entering %s to heal (%d/%d)",
					st, err, StageGenerate, heals, r.cfg.StageRetries+1)
				delete(r.done, StageGenerate)
				for j, s := range Stages {
					if s == StageGenerate {
						i = j - 1
						break
					}
				}
				continue
			}
			return err
		}
		r.adopt(rec)
		if err := r.journal.Append(rec); err != nil {
			return err
		}
		r.done[st] = rec
	}
	r.result.Figures = r.figs
	return nil
}

// adopt folds a completed (or replayed) stage record into the result.
func (r *runner) adopt(rec *stageRecord) {
	r.result.Stalls += rec.Stalls
	if rec.Attempts > 1 {
		r.result.Retries += rec.Attempts - 1
	}
	switch rec.Stage {
	case StageGenerate:
		r.result.Completeness.Gen = rec.Quarantined
		r.result.Written, r.result.Reused = rec.Written, rec.Reused
	case StageAnalyze:
		r.result.Completeness.Stream = rec.Completeness
	}
}

// runStage runs one stage under the watchdog with the stage retry
// budget. A cancelled parent context aborts immediately — that is the
// checkpoint-then-exit path, not a stage failure.
func (r *runner) runStage(ctx context.Context, idx int, st Stage) (*stageRecord, error) {
	rec := &stageRecord{Stage: st}
	maxAttempts := r.cfg.StageRetries + 1
	var lastErr error
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		rec.Attempts = attempt
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if r.cfg.beforeStage != nil {
			if err := r.cfg.beforeStage(st); err != nil {
				return nil, err
			}
		}
		stageCtx, cancel := context.WithCancel(ctx)
		var dog *watchdog
		if progress := r.progressFunc(st); progress != nil {
			dog = startWatchdog(cancel, progress, r.cfg.StallWindow)
		}
		r.cfg.Log.Infof("stage %s: attempt %d/%d", st, attempt, maxAttempts)
		r.cfg.Events.Span(time.Since(r.start), obs.EvStageStart, "campaign", string(st))
		err := r.execStage(stageCtx, st, rec)
		stalled := false
		if dog != nil {
			stalled = dog.stop()
		}
		cancel()
		if err == nil {
			r.cfg.Events.Span(time.Since(r.start), obs.EvStageEnd, "campaign", string(st))
			return rec, nil
		}
		if ctx.Err() != nil {
			// The run was cancelled from outside (SIGINT/SIGTERM): every
			// completed stage is journalled, so exit instead of retrying.
			return nil, ctx.Err()
		}
		if stalled {
			rec.Stalls++
			r.cfg.Metrics.Counter("campaign.stage_stalls").Inc()
			r.cfg.Events.Span(time.Since(r.start), obs.EvStageStall, "campaign",
				fmt.Sprintf("%s attempt %d", st, attempt))
			err = fmt.Errorf("campaign: stage %s stalled (no counter progress for %v): %w",
				st, r.cfg.StallWindow, err)
		}
		lastErr = err
		if attempt == maxAttempts {
			break
		}
		r.cfg.Metrics.Counter("campaign.stage_retries").Inc()
		delay := faults.BackoffDelay(r.cfg.RetryBackoff, idx, attempt)
		r.cfg.Log.Warnf("stage %s: attempt %d failed (%v), retrying in %v", st, attempt, err, delay)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
	}
	return nil, fmt.Errorf("campaign: stage %s failed after %d attempt(s): %w", st, maxAttempts, lastErr)
}

// progressFunc returns the watchdog's progress reading for stages with
// live counters; nil exempts the stage from stall supervision (plan,
// verify and render have no counters to feed a watchdog, and are short).
func (r *runner) progressFunc(st Stage) func() int64 {
	reg := r.cfg.Metrics
	switch st {
	case StageGenerate:
		units := reg.Counter("dataset.drive_units_done")
		samples := reg.Counter("dataset.samples_done")
		tests := reg.Counter("dataset.tests_done")
		written := reg.Counter("store.shards_written")
		reused := reg.Counter("store.shards_reused")
		retries := reg.Counter("dataset.unit_retries")
		return func() int64 {
			return units.Value() + samples.Value() + tests.Value() +
				written.Value() + reused.Value() + retries.Value()
		}
	case StageAnalyze:
		shards := reg.Counter("stream.shards_done")
		rows := reg.Counter("stream.rows_done")
		return func() int64 { return shards.Value() + rows.Value() }
	default:
		return nil
	}
}

// execStage dispatches one stage attempt.
func (r *runner) execStage(ctx context.Context, st Stage, rec *stageRecord) error {
	switch st {
	case StagePlan:
		return r.execPlan()
	case StageGenerate:
		return r.execGenerate(ctx, rec)
	case StageVerify:
		return r.execVerify()
	case StageAnalyze:
		return r.execAnalyze(ctx, rec)
	case StageRender:
		return r.execRender(ctx)
	default:
		return fmt.Errorf("campaign: unknown stage %q", st)
	}
}

// execPlan lays out the run directory. The config was validated before
// the journal opened; planning is deliberately cheap so the first
// journal line lands within milliseconds of startup.
func (r *runner) execPlan() error {
	fsys := r.cfg.FS
	if fsys == nil {
		fsys = store.OS()
	}
	if err := fsys.MkdirAll(r.result.DataDir, 0o755); err != nil {
		return err
	}
	return fsys.MkdirAll(r.result.FiguresDir, 0o755)
}

// execGenerate regenerates the dataset (deterministic, so a retry or
// resume recomputes the identical campaign) and exports it with Resume
// always on: the export checkpoint makes this stage internally
// resumable at shard granularity.
func (r *runner) execGenerate(ctx context.Context, rec *stageRecord) error {
	ds, err := dataset.GenerateContext(ctx, dataset.Config{
		Seed: r.cfg.Seed, Scale: r.cfg.Scale, Scenario: r.cfg.Scenario,
		Workers: r.workers, Metrics: r.cfg.Metrics,
		Degrade: true, BeforeUnit: r.cfg.beforeUnit,
	})
	if err != nil {
		return err
	}
	stats, err := store.ExportDatasetContext(ctx, r.result.DataDir, ds, store.ExportOptions{
		Seed: ds.Seed, Scale: r.cfg.Scale, Resume: true,
		BeforeFile: r.cfg.beforeFile, Metrics: r.cfg.Metrics, FS: r.cfg.FS,
	})
	if err != nil {
		return err
	}
	rec.Quarantined = ds.Quarantined
	rec.Written, rec.Reused = stats.Written, stats.Reused
	return nil
}

// execVerify audits the exported directory; any finding is a stage
// error, which the pipeline heals by re-entering generate.
func (r *runner) execVerify() error {
	rep, err := store.FsckFS(r.cfg.FS, r.result.DataDir)
	if err != nil {
		return err
	}
	if !rep.OK() {
		return fmt.Errorf("campaign: verify: %s", strings.TrimSpace(rep.String()))
	}
	r.cfg.Log.Infof("stage %s: %d files, %d rows verified", StageVerify, rep.FilesChecked, rep.RowsChecked)
	return nil
}

// execAnalyze streams the verified directory through the sharded
// figure pipeline (lenient: quarantines degrade the certificate, they
// do not abort the campaign).
func (r *runner) execAnalyze(ctx context.Context, rec *stageRecord) error {
	sa, err := r.analyze(ctx)
	if err != nil {
		return err
	}
	r.figs = sa.Figures()
	rec.Completeness = sa.Completeness()
	return nil
}

// analyze runs the streaming analysis; the render stage reuses it when
// a resume skipped past analyze with no figures in memory.
func (r *runner) analyze(ctx context.Context) (*core.StreamAnalysis, error) {
	src, err := core.OpenStoreSourceFS(r.cfg.FS, r.result.DataDir, store.Lenient)
	if err != nil {
		return nil, err
	}
	return core.StreamAnalyzeContext(ctx, src, core.StreamOptions{
		Workers: r.workers,
		Metrics: r.cfg.Metrics,
		Events:  r.cfg.Events,
	})
}

// execRender writes every figure's data as manifested CSV artifacts.
// On a resumed run whose analyze stage completed in an earlier process
// the figures are not in memory; the streaming analysis is re-derived
// from disk — deterministic, so the rendered bytes cannot differ.
func (r *runner) execRender(ctx context.Context) error {
	if r.figs == nil {
		sa, err := r.analyze(ctx)
		if err != nil {
			return err
		}
		r.figs = sa.Figures()
	}
	files := make(map[string]string, len(r.figs))
	for id, f := range r.figs {
		files[id+".csv"] = f.CSV()
	}
	return store.ExportFiguresFS(r.cfg.FS, r.result.FiguresDir, r.cfg.effectiveSeed(), r.cfg.Scale, files)
}
