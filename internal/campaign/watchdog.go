package campaign

import (
	"sync"
	"sync/atomic"
	"time"

	"satcell/internal/vclock"
)

// watchdog watches a monotonically non-decreasing progress reading and
// cancels the stage when it stops moving for a full window. It decides
// on progress deltas only — never on absolute rates — so a slow machine
// is not a stalled machine.
type watchdog struct {
	stalled atomic.Bool
	once    sync.Once
	quit    chan struct{}
	done    chan struct{}
}

// startWatchdog polls progress every window/4 and calls cancel once the
// reading has not moved for >= window (the caller wraps cancel when it
// wants a post-mortem captured first). Each observed move is reported
// to status, so /debug/health can publish the last-progress age the
// watchdog is deciding on. The caller must call stop() — which also
// reports whether the dog fired — before inspecting the stage's error.
func startWatchdog(cancel func(), progress func() int64, window time.Duration, status *Status, clk vclock.Clock) *watchdog {
	w := &watchdog{quit: make(chan struct{}), done: make(chan struct{})}
	clk = vclock.Or(clk)
	poll := window / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	go func() {
		defer close(w.done)
		ticker := clk.NewTicker(poll)
		defer ticker.Stop()
		last := progress()
		lastMove := clk.Now()
		for {
			select {
			case <-w.quit:
				return
			case <-ticker.C():
				if cur := progress(); cur != last {
					last, lastMove = cur, clk.Now()
					status.noteProgress()
					continue
				}
				if clk.Since(lastMove) >= window {
					w.stalled.Store(true)
					cancel()
					return
				}
			}
		}
	}()
	return w
}

// stop halts the watchdog, waits for its goroutine to exit, and reports
// whether it declared a stall. Idempotent.
func (w *watchdog) stop() bool {
	w.once.Do(func() { close(w.quit) })
	<-w.done
	return w.stalled.Load()
}
