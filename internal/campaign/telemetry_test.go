package campaign

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"satcell/internal/faults"
	"satcell/internal/obs"
	"satcell/internal/store"
	"satcell/internal/testutil"
)

// TestCampaignTelemetryCleanRun checks the black box of an
// uninterrupted campaign: one run, a full span tree with every span
// closed ok, sampler snapshots, and both renderers working off it.
func TestCampaignTelemetryCleanRun(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	defer testutil.SettleGoroutines(t, baseline)

	dir := t.TempDir()
	cfg := chaosConfig(dir)
	cfg.SampleInterval = 5 * time.Millisecond
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatalf("clean run: %v", err)
	}

	meta, log, err := ReadTelemetry(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Seed != 42 || meta.Tool != Tool {
		t.Fatalf("telemetry meta = %+v", meta)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	if log.Open() != 0 {
		t.Fatalf("clean run left %d spans open", log.Open())
	}
	// The tree covers the whole pipeline: a campaign root, every stage,
	// an attempt per stage, and unit/shard leaves underneath generate and
	// analyze.
	kinds := map[obs.SpanKind]int{}
	stages := map[string]bool{}
	log.Walk(func(s *obs.ReplaySpan) {
		kinds[s.Kind]++
		if s.Kind == obs.SpanStage {
			stages[s.Name] = true
		}
		if s.Closed && s.Outcome == "" {
			t.Errorf("span %s/%s closed without an outcome", s.Kind, s.Name)
		}
	})
	if kinds[obs.SpanCampaign] != 1 || kinds[obs.SpanStage] != len(Stages) {
		t.Fatalf("kind census = %v, want 1 campaign and %d stages", kinds, len(Stages))
	}
	for _, st := range Stages {
		if !stages[string(st)] {
			t.Errorf("stage %s has no span", st)
		}
	}
	if kinds[obs.SpanUnit] == 0 || kinds[obs.SpanShard] == 0 {
		t.Fatalf("kind census = %v, want unit and shard leaves", kinds)
	}
	if len(log.Runs[0].Samples) == 0 {
		t.Fatal("sampler journalled no metrics snapshots")
	}
	rep := obs.RenderFlightReport(log)
	if !strings.Contains(rep, "incidents: none") {
		t.Errorf("clean run reports incidents:\n%s", rep)
	}
	if !strings.Contains(rep, "per-worker busy time") {
		t.Errorf("report missing worker utilization:\n%s", rep)
	}
	sum := obs.Summarize(log)
	if sum.Open != 0 || sum.Outcomes[obs.SpanOK] == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if _, err := json.Marshal(sum); err != nil {
		t.Fatalf("summary not marshalable: %v", err)
	}
}

// TestCampaignTelemetryKillResume interrupts a campaign mid-export,
// manually tears the TELEMETRY tail the way a kill -9 mid-append would,
// and checks that (a) the torn journal still replays to a consistent
// span tree with the interrupted run's evidence, and (b) a resume
// appends a second run that the report stitches into one timeline.
func TestCampaignTelemetryKillResume(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	defer testutil.SettleGoroutines(t, baseline)

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var files atomic.Int64
	cfg := chaosConfig(dir)
	cfg.SampleInterval = 5 * time.Millisecond
	cfg.beforeFile = func(name string) error {
		if files.Add(1) == 3 {
			cancel()
			return ctx.Err()
		}
		return nil
	}
	if _, err := Run(ctx, cfg); err == nil {
		t.Fatalf("run survived the mid-export crash")
	}

	// Append what a kill -9 leaves behind: one whole span-start record
	// whose End never made it (id far above the run's real allocations),
	// then a torn half-record with no trailing newline.
	tel := filepath.Join(dir, TelemetryName)
	f, err := os.OpenFile(tel, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"span-start","id":9999,"parent":0,"kind":"unit","name":"w00/fake","elapsed_us":123}` + "\n" +
		`{"t":"span-end","id":9999,"outc`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, log, err := ReadTelemetry(nil, dir)
	if err != nil {
		t.Fatalf("torn journal did not replay: %v", err)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1 before resume", len(log.Runs))
	}
	if log.Open() == 0 {
		t.Fatal("injected open span not reported")
	}
	interrupted := 0
	log.Walk(func(s *obs.ReplaySpan) {
		if s.Closed && s.Outcome == "" {
			t.Errorf("span %s/%s closed without an outcome", s.Kind, s.Name)
		}
		if s.Closed && s.Outcome == obs.SpanCancelled {
			interrupted++
		}
	})
	if interrupted == 0 {
		t.Error("interrupt left no cancelled spans")
	}

	// Resume heals the torn tail and appends run 2.
	res := resumeAndCompare(t, dir)
	if res.Written == 0 && res.Reused == 0 {
		t.Fatalf("resume did no work: %+v", res)
	}
	_, log2, err := ReadTelemetry(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(log2.Runs) != 2 {
		t.Fatalf("runs = %d after resume, want 2 stitched", len(log2.Runs))
	}
	if log2.Runs[1].Open != 0 {
		t.Fatalf("resumed run left %d spans open", log2.Runs[1].Open)
	}
	// Run 1's crash evidence survives the resume byte-for-byte: the
	// injected open span is still there, only the torn fragment is gone.
	foundFake := false
	log2.Walk(func(s *obs.ReplaySpan) {
		if s.Run == 1 && s.ID == 9999 && !s.Closed {
			foundFake = true
		}
	})
	if !foundFake {
		t.Fatal("resume did not preserve run 1's open-span evidence")
	}
	rep := obs.RenderFlightReport(log2)
	if !strings.Contains(rep, "== run 1:") || !strings.Contains(rep, "== run 2:") {
		t.Fatalf("report does not stitch both runs:\n%s", rep)
	}
	sum := obs.Summarize(log2)
	if len(sum.Runs) != 2 || sum.Open != log2.Open() {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestCampaignStallPostmortem wedges a shard write so the watchdog
// trips, and requires the automatic post-mortem: a non-empty
// postmortem/<stage>-<attempt>/ directory captured before the stage was
// cancelled, with the goroutine dump and metrics snapshot, plus the
// journalled pointer and stalled span outcome in TELEMETRY.
func TestCampaignStallPostmortem(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	defer testutil.SettleGoroutines(t, baseline)

	sched, err := faults.ParseIOSpec("write-stall:drive001_*:x2:+2500ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := chaosConfig(dir)
	cfg.FS = store.NewFaultFS(nil, sched)
	cfg.StallWindow = 500 * time.Millisecond
	cfg.Metrics = obs.NewRegistry()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("stalled campaign did not converge: %v", err)
	}
	if res.Stalls == 0 {
		t.Fatal("watchdog never fired despite the write-stall rule")
	}

	// The capture directory exists and holds the evidence.
	pmRoot := filepath.Join(dir, PostmortemDirName)
	entries, err := os.ReadDir(pmRoot)
	if err != nil || len(entries) == 0 {
		t.Fatalf("postmortem dir empty or missing (%v): %v", entries, err)
	}
	capDir := filepath.Join(pmRoot, entries[0].Name())
	if !strings.HasPrefix(entries[0].Name(), string(StageGenerate)+"-") {
		t.Errorf("capture dir %q not named <stage>-<attempt>", entries[0].Name())
	}
	for _, name := range []string{"goroutines.txt", "heap.pprof", "metrics.json", "reason.txt"} {
		b, err := os.ReadFile(filepath.Join(capDir, name))
		if err != nil {
			t.Errorf("capture missing %s: %v", name, err)
			continue
		}
		if len(b) == 0 {
			t.Errorf("capture %s is empty", name)
		}
	}
	// The goroutine dump must show the wedged writer (captured *before*
	// the stage was cancelled, or the evidence would be gone).
	g, err := os.ReadFile(filepath.Join(capDir, "goroutines.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(g), "goroutine") {
		t.Errorf("goroutines.txt does not look like a pprof dump")
	}
	reason, err := os.ReadFile(filepath.Join(capDir, "reason.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reason), "watchdog") {
		t.Errorf("reason.txt = %q, want the watchdog trip recorded", reason)
	}
	var snap map[string]any
	m, err := os.ReadFile(filepath.Join(capDir, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(m, &snap); err != nil {
		t.Fatalf("metrics.json not valid JSON: %v", err)
	}
	if got := cfg.Metrics.Counter("campaign.postmortems").Value(); got == 0 {
		t.Error("campaign.postmortems counter = 0, want > 0")
	}

	// TELEMETRY journalled the pointer and the stalled attempt.
	_, log, err := ReadTelemetry(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	sum := obs.Summarize(log)
	if sum.Postmortems == 0 {
		t.Fatal("no postmortem pointer journalled")
	}
	if sum.Outcomes[obs.SpanStalled] == 0 {
		t.Fatal("no span tagged stalled")
	}
	rep := obs.RenderFlightReport(log)
	if !strings.Contains(rep, "postmortem") || !strings.Contains(rep, "stalled") {
		t.Fatalf("report missing the incident:\n%s", rep)
	}
}

// TestCampaignPostmortemCapture unit-tests the capture path: layout,
// content, the one-per-attempt guard, and the per-attempt reset.
func TestCampaignPostmortemCapture(t *testing.T) {
	dir := t.TempDir()
	tr := obs.NewTracer(16)
	tr.Span(time.Second, obs.EvStageStart, "campaign", "generate")
	r := &runner{cfg: Config{Dir: dir, Metrics: obs.NewRegistry(), Events: tr}}

	got := r.capturePostmortem(StageGenerate, 2, "test: injected stall")
	want := filepath.Join(dir, PostmortemDirName, "generate-2")
	if got != want {
		t.Fatalf("capture dir = %q, want %q", got, want)
	}
	for _, name := range []string{"goroutines.txt", "heap.pprof", "metrics.json", "events.jsonl", "reason.txt"} {
		b, err := os.ReadFile(filepath.Join(want, name))
		if err != nil {
			t.Fatalf("capture missing %s: %v", name, err)
		}
		if len(b) == 0 {
			t.Fatalf("capture %s is empty", name)
		}
	}
	reason, err := os.ReadFile(filepath.Join(want, "reason.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(reason), "attempt=2") || !strings.Contains(string(reason), "injected stall") {
		t.Fatalf("reason.txt = %q", reason)
	}
	// The ring flush is the -events export format.
	evs, err := obs.ReadJSONL(strings.NewReader(readFile(t, filepath.Join(want, "events.jsonl"))))
	if err != nil || len(evs) != 1 || evs[0].Kind != obs.EvStageStart {
		t.Fatalf("events.jsonl = %+v (%v)", evs, err)
	}

	// Second incident in the same attempt: guarded, no second capture.
	if again := r.capturePostmortem(StageGenerate, 2, "second incident"); again != "" {
		t.Fatalf("guard failed: second capture landed in %q", again)
	}
	if got := r.cfg.Metrics.Counter("campaign.postmortems").Value(); got != 1 {
		t.Fatalf("postmortems counter = %d, want 1", got)
	}

	// A new attempt resets the guard (runStage does this store).
	r.pmGuard.Store(false)
	if next := r.capturePostmortem(StageGenerate, 3, "next attempt"); next == "" {
		t.Fatal("guard not resettable per attempt")
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
