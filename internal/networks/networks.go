// Package networks wires the channel-model packages (internal/leo,
// internal/cell) onto the open network catalog (channel.Catalog). The
// channel package owns the identity half of the built-in specs (id,
// display name, class, seed offset) but cannot construct models without
// an import cycle; this package attaches the model factories at init
// time and provides the spec constructors custom networks register
// through.
//
// Determinism contract: a BuildFunc derives its model seed as
// campaignSeed + Spec.SeedOffset. The built-in offsets (RM 101, MOB
// 102, ATT 105, TM 106, VZ 107) reproduce the original generator's
// per-network seeds exactly, which is what keeps the default campaign
// bit-identical to the seed dataset. Custom networks should pick
// offsets well clear of the built-ins (e.g. >= 1000) so their streams
// stay independent.
package networks

import (
	"fmt"

	"satcell/internal/cell"
	"satcell/internal/channel"
	"satcell/internal/leo"
)

func init() {
	cat := channel.DefaultCatalog()
	attach := func(id channel.NetworkID, b channel.BuildFunc) {
		if err := cat.SetBuilder(id, b); err != nil {
			panic(err)
		}
	}
	attach(channel.StarlinkRoam, satelliteBuild(leo.RoamPlan()))
	attach(channel.StarlinkMobility, satelliteBuild(leo.MobilityPlan()))
	for _, carrier := range cell.Carriers() {
		attach(carrier.Network, cellularBuild(carrier))
	}
}

// Default returns the process-wide catalog with every built-in model
// factory attached. It exists so generation code can depend on this
// package (forcing the init wiring) instead of remembering to.
func Default() *channel.Catalog { return channel.DefaultCatalog() }

// satelliteBuild returns the campaign factory for one satellite plan.
// Each campaign gets its own constellation instance; the constellation
// is pure deterministic geometry, so separate instances produce
// identical views (the original generator shared one for memory only).
func satelliteBuild(plan leo.Plan) channel.BuildFunc {
	offset := seedOffsetOf(plan.Network)
	return func(campaignSeed int64) channel.Builder {
		cons := leo.NewConstellation(leo.StarlinkShell())
		return leo.ModelBuilder(plan, cons, campaignSeed+offset)
	}
}

// cellularBuild returns the campaign factory for one carrier.
func cellularBuild(carrier cell.Carrier) channel.BuildFunc {
	offset := seedOffsetOf(carrier.Network)
	return func(campaignSeed int64) channel.Builder {
		return cell.ModelBuilder(carrier, campaignSeed+offset)
	}
}

// seedOffsetOf reads the seed offset a spec registered with; factories
// built before registration (the built-ins are registered first, so
// this only defends against misuse) fall back to 0.
func seedOffsetOf(id channel.NetworkID) int64 {
	if spec, ok := channel.DefaultCatalog().Spec(id); ok {
		return spec.SeedOffset
	}
	return 0
}

// SatelliteSpec builds a catalog spec for a custom satellite plan. The
// plan's Network field is the spec id; seedOffset follows the package
// determinism contract.
func SatelliteSpec(name string, plan leo.Plan, seedOffset int64) channel.Spec {
	return channel.Spec{
		ID:         plan.Network,
		Name:       name,
		Class:      channel.ClassSatellite,
		SeedOffset: seedOffset,
		Build: func(campaignSeed int64) channel.Builder {
			cons := leo.NewConstellation(leo.StarlinkShell())
			return leo.ModelBuilder(plan, cons, campaignSeed+seedOffset)
		},
	}
}

// CellularSpec builds a catalog spec for a custom cellular carrier.
func CellularSpec(name string, carrier cell.Carrier, seedOffset int64) channel.Spec {
	return channel.Spec{
		ID:         carrier.Network,
		Name:       name,
		Class:      channel.ClassCellular,
		SeedOffset: seedOffset,
		Build: func(campaignSeed int64) channel.Builder {
			return cell.ModelBuilder(carrier, campaignSeed+seedOffset)
		},
	}
}

// RegisterSatellite registers a custom satellite plan in cat (nil means
// the default catalog).
func RegisterSatellite(cat *channel.Catalog, name string, plan leo.Plan, seedOffset int64) error {
	if !plan.Network.Valid() {
		return fmt.Errorf("networks: satellite plan needs a Network id")
	}
	if cat == nil {
		cat = channel.DefaultCatalog()
	}
	return cat.Register(SatelliteSpec(name, plan, seedOffset))
}

// RegisterCellular registers a custom cellular carrier in cat (nil
// means the default catalog).
func RegisterCellular(cat *channel.Catalog, name string, carrier cell.Carrier, seedOffset int64) error {
	if !carrier.Network.Valid() {
		return fmt.Errorf("networks: carrier needs a Network id")
	}
	if cat == nil {
		cat = channel.DefaultCatalog()
	}
	return cat.Register(CellularSpec(name, carrier, seedOffset))
}
