package networks

import (
	"testing"
	"time"

	"satcell/internal/cell"
	"satcell/internal/channel"
	"satcell/internal/geo"
	"satcell/internal/leo"
)

// TestBuiltinBuildersAttached: every built-in spec must be generatable
// out of the box — the init wiring is the bridge between the identity
// catalog and the model packages.
func TestBuiltinBuildersAttached(t *testing.T) {
	for _, id := range channel.Networks {
		b, err := Default().Builder(id, 42)
		if err != nil {
			t.Fatalf("builtin %q: %v", id, err)
		}
		m := b()
		if m.Network() != id {
			t.Fatalf("builder for %q built a model for %q", id, m.Network())
		}
	}
}

// TestBuiltinBuilderSeedContract: the catalog-built models must emit
// exactly the streams the pre-catalog generator produced, i.e. the same
// as constructing the models directly with the historical seeds
// (campaign seed +101/+102 for the plans, +103+enum for the carriers).
func TestBuiltinBuilderSeedContract(t *testing.T) {
	const campaignSeed = int64(7)
	cons := leo.NewConstellation(leo.StarlinkShell())
	direct := map[channel.NetworkID]channel.Model{
		channel.StarlinkRoam:     leo.NewModel(leo.RoamPlan(), cons, campaignSeed+101),
		channel.StarlinkMobility: leo.NewModel(leo.MobilityPlan(), cons, campaignSeed+102),
	}
	for i, carrier := range cell.Carriers() {
		direct[carrier.Network] = cell.NewModel(carrier, campaignSeed+105+int64(i))
	}
	env := func(at int) channel.Env {
		return channel.Env{
			At:       time.Duration(at) * time.Second,
			Pos:      geo.LatLon{Lat: 44.8, Lon: -91.5},
			SpeedKmh: 90,
			Area:     geo.Rural,
		}
	}
	for id, want := range direct {
		b, err := Default().Builder(id, campaignSeed)
		if err != nil {
			t.Fatalf("%q: %v", id, err)
		}
		got := b()
		for at := 0; at < 120; at++ {
			w, g := want.Sample(env(at)), got.Sample(env(at))
			if w != g {
				t.Fatalf("%q sample %d diverged:\ncatalog %+v\ndirect  %+v", id, at, g, w)
			}
		}
	}
}

// TestRegisterCustomNetworks: a plan and a carrier outside the paper
// must be registrable and generatable through the catalog alone.
func TestRegisterCustomNetworks(t *testing.T) {
	cat := Default().Clone()
	plan := leo.MobilityPlan()
	plan.Network = "SL3"
	plan.PriorityFactor = 1.2
	if err := RegisterSatellite(cat, "Starlink Priority", plan, 1001); err != nil {
		t.Fatal(err)
	}
	carrier := cell.Carriers()[0]
	carrier.Network = "USC"
	if err := RegisterCellular(cat, "US Cellular", carrier, 1002); err != nil {
		t.Fatal(err)
	}
	for _, id := range []channel.NetworkID{"SL3", "USC"} {
		b, err := cat.Builder(id, 9)
		if err != nil {
			t.Fatalf("%q: %v", id, err)
		}
		if got := b().Network(); got != id {
			t.Fatalf("%q model reports %q", id, got)
		}
	}
	if got := cat.ByClass(channel.ClassSatellite); got[len(got)-1] != "SL3" {
		t.Fatalf("satellites = %v", got)
	}
	// Missing ids are rejected before touching the catalog.
	if err := RegisterSatellite(cat, "anon", leo.Plan{}, 1003); err == nil {
		t.Fatal("satellite plan without id accepted")
	}
	if err := RegisterCellular(cat, "anon", cell.Carrier{}, 1004); err == nil {
		t.Fatal("carrier without id accepted")
	}
}
