package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"satcell/internal/report"
)

// faultSpan is one reconstructed fault window from open/close events.
type faultSpan struct {
	kind  string
	start time.Duration
	end   time.Duration
	open  bool // no close event seen (run ended inside the window)
}

// collectFaultSpans pairs fault-open/fault-close events (per window
// kind, in elapsed order) back into windows.
func collectFaultSpans(events []Event) []faultSpan {
	var spans []faultSpan
	open := make(map[string][]int) // kind -> open span indices (FIFO)
	for _, ev := range events {
		switch ev.Kind {
		case EvFaultOpen:
			open[ev.Detail] = append(open[ev.Detail], len(spans))
			spans = append(spans, faultSpan{kind: ev.Detail, start: ev.Elapsed(), open: true})
		case EvFaultClose:
			q := open[ev.Detail]
			if len(q) == 0 {
				continue // close without open: trace started mid-window
			}
			spans[q[0]].end = ev.Elapsed()
			spans[q[0]].open = false
			open[ev.Detail] = q[1:]
		}
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	return spans
}

// RenderTimeline renders an exported event trace as a per-second
// timeline: delivered/dropped traffic rates, a fault-activity strip,
// session and handover markers, and the reconstructed fault windows
// with their scheduled offsets. This is how an emulated run is
// cross-checked against the trace (and fault schedule) it replayed.
func RenderTimeline(events []Event) string {
	var b strings.Builder
	if len(events) == 0 {
		return "event timeline: (no events)\n"
	}

	// Span and per-kind census.
	span := time.Duration(0)
	kinds := make(map[EventKind]int)
	for _, ev := range events {
		kinds[ev.Kind]++
		if e := ev.Elapsed(); e > span {
			span = e
		}
	}
	secs := int(span/time.Second) + 1
	fmt.Fprintf(&b, "event timeline: %d events over %.1fs\n", len(events), span.Seconds())
	kindNames := make([]string, 0, len(kinds))
	for k := range kinds {
		kindNames = append(kindNames, string(k))
	}
	sort.Strings(kindNames)
	for _, k := range kindNames {
		fmt.Fprintf(&b, "  %-14s %d\n", k, kinds[EventKind(k)])
	}
	b.WriteString("\n")

	// Per-second delivered / dropped rates (Mbps from packet sizes).
	delivered := make([]float64, secs)
	dropped := make([]float64, secs)
	havePackets := false
	for _, ev := range events {
		s := int(ev.Elapsed() / time.Second)
		if s < 0 || s >= secs {
			continue
		}
		mbit := float64(ev.Size) * 8 / 1e6
		switch ev.Kind {
		case EvDeliver:
			delivered[s] += mbit
			havePackets = true
		case EvDrop:
			dropped[s] += mbit
			havePackets = true
		}
	}
	if havePackets {
		xs := make([]float64, secs)
		for i := range xs {
			xs[i] = float64(i)
		}
		b.WriteString(report.LinePlot("per-second relay traffic", "seconds", "Mbps", 60, 10,
			[]report.Line{
				{Label: "delivered Mbps", X: xs, Y: delivered},
				{Label: "dropped Mbps", X: xs, Y: dropped},
			}))
		b.WriteString("\n")
	}

	// Fault-activity strip: one column per second, '#' when any fault
	// window is active.
	spans := collectFaultSpans(events)
	if len(spans) > 0 {
		strip := make([]byte, secs)
		for i := range strip {
			strip[i] = '.'
		}
		for _, sp := range spans {
			end := sp.end
			if sp.open {
				end = span + time.Second
			}
			for s := int(sp.start / time.Second); s <= int(end/time.Second) && s < secs; s++ {
				if s >= 0 {
					strip[s] = '#'
				}
			}
		}
		fmt.Fprintf(&b, "faults/s |%s| (# = window active)\n\n", strip)
		b.WriteString("fault windows (scheduled offsets):\n")
		for _, sp := range spans {
			if sp.open {
				fmt.Fprintf(&b, "  %-9s %8.3fs .. (open at end of trace)\n", sp.kind, sp.start.Seconds())
				continue
			}
			fmt.Fprintf(&b, "  %-9s %8.3fs .. %8.3fs (%.0f ms)\n",
				sp.kind, sp.start.Seconds(), sp.end.Seconds(),
				(sp.end-sp.start).Seconds()*1000)
		}
		b.WriteString("\n")
	}

	// Session and handover markers.
	for _, ev := range events {
		switch ev.Kind {
		case EvSessionStart, EvSessionEnd, EvHandover:
			fmt.Fprintf(&b, "  %8.3fs %-13s %s %s\n",
				ev.Elapsed().Seconds(), ev.Kind, ev.Src, ev.Detail)
		}
	}
	return b.String()
}
