package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"satcell/internal/report"
)

// This file renders a replayed TELEMETRY journal (flight.go) into the
// human-facing black-box report: the span waterfall per run, the
// retry/quarantine timeline, per-worker busy-time utilization, and the
// machine-readable run summary consumed by tooling. The renderer only
// reads a FlightLog, so it works identically inside satcell-campaign
// -report and satcell-analyze -telemetry.

// WorkerPrefix formats the worker tag instrumentation prepends to
// shard/unit span names ("w03/shard_000042"), which is how the report
// attributes leaf work to pool workers.
func WorkerPrefix(worker int) string { return fmt.Sprintf("w%02d/", worker) }

// splitWorker strips a WorkerPrefix tag off a span name, returning the
// tag ("" when untagged) and the bare name.
func splitWorker(name string) (worker, bare string) {
	if len(name) >= 4 && name[0] == 'w' && name[3] == '/' &&
		name[1] >= '0' && name[1] <= '9' && name[2] >= '0' && name[2] <= '9' {
		return name[:3], name[4:]
	}
	return "", name
}

// FlightSummary is the machine-readable digest of a replayed journal:
// one element per run plus journal-wide outcome totals. This is the
// -report-json / -telemetry-json output.
type FlightSummary struct {
	Runs     []RunSummary    `json:"runs"`
	Spans    int             `json:"spans"`
	Open     int             `json:"open_spans"`
	Outcomes map[Outcome]int `json:"outcomes"`
	// Postmortems counts captured post-mortem directories across runs.
	Postmortems int `json:"postmortems"`
}

// RunSummary digests one process run.
type RunSummary struct {
	Run      int             `json:"run"`
	WallUS   int64           `json:"wall_us"`
	Spans    int             `json:"spans"`
	Open     int             `json:"open_spans"`
	Outcomes map[Outcome]int `json:"outcomes"`
	Samples  int             `json:"metric_samples"`
	// Stages lists the run's stage spans in start order with their
	// attempt counts and final outcomes — the stitched timeline.
	Stages      []StageSummary  `json:"stages,omitempty"`
	Postmortems []PostmortemRef `json:"postmortems,omitempty"`
}

// StageSummary digests one stage span of a run.
type StageSummary struct {
	Stage      string  `json:"stage"`
	StartUS    int64   `json:"start_us"`
	DurationUS int64   `json:"duration_us"`
	Attempts   int     `json:"attempts"`
	Outcome    Outcome `json:"outcome,omitempty"`
	Open       bool    `json:"open,omitempty"`
}

// Summarize digests a replayed journal into its machine-readable form.
func Summarize(log *FlightLog) *FlightSummary {
	sum := &FlightSummary{Outcomes: make(map[Outcome]int)}
	for _, run := range log.Runs {
		rs := RunSummary{
			Run: run.Run, WallUS: run.LastUS, Spans: run.Spans, Open: run.Open,
			Outcomes: make(map[Outcome]int), Samples: len(run.Samples),
			Postmortems: run.Postmortems,
		}
		var walk func(*ReplaySpan)
		walk = func(s *ReplaySpan) {
			if s.Closed {
				rs.Outcomes[s.Outcome]++
				sum.Outcomes[s.Outcome]++
			}
			if s.Kind == SpanStage {
				st := StageSummary{
					Stage: s.Name, StartUS: s.StartUS,
					DurationUS: int64(s.Duration(run.LastUS) / time.Microsecond),
					Outcome:    s.Outcome, Open: !s.Closed,
				}
				for _, c := range s.Children {
					if c.Kind == SpanAttempt {
						st.Attempts++
					}
				}
				rs.Stages = append(rs.Stages, st)
			}
			for _, c := range s.Children {
				walk(c)
			}
		}
		for _, root := range run.Roots {
			walk(root)
		}
		sum.Spans += run.Spans
		sum.Open += run.Open
		sum.Postmortems += len(run.Postmortems)
		sum.Runs = append(sum.Runs, rs)
	}
	return sum
}

// RenderFlightReport renders the replayed journal as the run's black
// box: per-run span waterfalls on a shared character scale, the
// retry/quarantine/stall timeline, per-worker utilization bars, and the
// post-mortem index.
func RenderFlightReport(log *FlightLog) string {
	var b strings.Builder
	if len(log.Runs) == 0 {
		return "flight report: (no telemetry)\n"
	}
	fmt.Fprintf(&b, "flight report: %d run(s), %d spans (%d left open by crashes)\n",
		len(log.Runs), log.Spans(), log.Open())

	for _, run := range log.Runs {
		fmt.Fprintf(&b, "\n== run %d: %d spans, %d open, %d metric samples, wall %.3fs ==\n",
			run.Run, run.Spans, run.Open, len(run.Samples),
			time.Duration(run.LastUS*int64(time.Microsecond)).Seconds())
		renderWaterfall(&b, run)
		renderIncidents(&b, run)
		renderWorkers(&b, run)
	}
	return b.String()
}

// waterfallWidth is the bar area of the waterfall, in characters.
const waterfallWidth = 48

// renderWaterfall draws the run's span tree as an indented waterfall:
// each span a bar positioned on the run's elapsed axis, annotated with
// duration and outcome. Leaf fan-out (hundreds of shard/unit spans) is
// summarized per parent instead of listed, keeping the waterfall
// readable at fleet scale.
func renderWaterfall(b *strings.Builder, run *RunLog) {
	horizon := run.LastUS
	if horizon <= 0 {
		horizon = 1
	}
	bar := func(s *ReplaySpan) string {
		start := int(s.StartUS * waterfallWidth / horizon)
		endUS := s.EndUS
		if !s.Closed {
			endUS = horizon
		}
		end := int(endUS * waterfallWidth / horizon)
		if start >= waterfallWidth {
			start = waterfallWidth - 1
		}
		if end <= start {
			end = start + 1
		}
		if end > waterfallWidth {
			end = waterfallWidth
		}
		cells := []byte(strings.Repeat(".", waterfallWidth))
		for i := start; i < end; i++ {
			cells[i] = '='
		}
		if !s.Closed {
			cells[end-1] = '>'
		}
		return string(cells)
	}
	var walk func(s *ReplaySpan, depth int)
	walk = func(s *ReplaySpan, depth int) {
		tag := string(s.Outcome)
		if !s.Closed {
			tag = "open"
		}
		_, name := splitWorker(s.Name)
		fmt.Fprintf(b, "  |%s| %s%s/%s %8.3fs %s\n",
			bar(s), strings.Repeat("  ", depth), s.Kind, name,
			s.Duration(run.LastUS).Seconds(), tag)
		leaves := 0
		for _, c := range s.Children {
			if c.Kind == SpanShard || c.Kind == SpanUnit {
				leaves++
				continue
			}
			walk(c, depth+1)
		}
		if leaves > 0 {
			byOutcome := make(map[string]int)
			for _, c := range s.Children {
				if c.Kind != SpanShard && c.Kind != SpanUnit {
					continue
				}
				if c.Closed {
					byOutcome[string(c.Outcome)]++
				} else {
					byOutcome["open"]++
				}
			}
			keys := make([]string, 0, len(byOutcome))
			for k := range byOutcome {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, fmt.Sprintf("%d %s", byOutcome[k], k))
			}
			fmt.Fprintf(b, "  |%s| %s  +- %d leaf spans: %s\n",
				strings.Repeat(" ", waterfallWidth), strings.Repeat("  ", depth),
				leaves, strings.Join(parts, ", "))
		}
	}
	for _, root := range run.Roots {
		walk(root, 0)
	}
}

// renderIncidents lists everything that did not go cleanly, in elapsed
// order: retried/quarantined/stalled/failed spans, still-open spans,
// and the post-mortems captured for them.
func renderIncidents(b *strings.Builder, run *RunLog) {
	type incident struct {
		us   int64
		line string
	}
	var incs []incident
	var walk func(*ReplaySpan)
	walk = func(s *ReplaySpan) {
		_, name := splitWorker(s.Name)
		switch {
		case !s.Closed:
			incs = append(incs, incident{s.StartUS, fmt.Sprintf("%8.3fs  open       %s/%s (no end record: in flight at exit)",
				float64(s.StartUS)/1e6, s.Kind, name)})
		case s.Outcome != SpanOK:
			line := fmt.Sprintf("%8.3fs  %-10s %s/%s", float64(s.EndUS)/1e6, s.Outcome, s.Kind, name)
			if s.Detail != "" {
				line += ": " + s.Detail
			}
			incs = append(incs, incident{s.EndUS, line})
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, root := range run.Roots {
		walk(root)
	}
	for _, pm := range run.Postmortems {
		incs = append(incs, incident{pm.ElapsedUS, fmt.Sprintf("%8.3fs  postmortem %s attempt %d -> %s (%s)",
			float64(pm.ElapsedUS)/1e6, pm.Stage, pm.Attempt, pm.Dir, pm.Reason)})
	}
	if len(incs) == 0 {
		b.WriteString("  incidents: none\n")
		return
	}
	sort.SliceStable(incs, func(i, j int) bool { return incs[i].us < incs[j].us })
	b.WriteString("  incidents:\n")
	for _, in := range incs {
		b.WriteString("    " + in.line + "\n")
	}
}

// renderWorkers charts per-worker busy time from worker-tagged leaf
// spans (WorkerPrefix names), the utilization view of the pool.
func renderWorkers(b *strings.Builder, run *RunLog) {
	busy := make(map[string]time.Duration)
	var walk func(*ReplaySpan)
	walk = func(s *ReplaySpan) {
		if w, _ := splitWorker(s.Name); w != "" {
			busy[w] += s.Duration(run.LastUS)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, root := range run.Roots {
		walk(root)
	}
	if len(busy) == 0 {
		return
	}
	workers := make([]string, 0, len(busy))
	for w := range busy {
		workers = append(workers, w)
	}
	sort.Strings(workers)
	bars := make([]report.Bar, 0, len(workers))
	for _, w := range workers {
		bars = append(bars, report.Bar{Label: w, Value: busy[w].Seconds()})
	}
	b.WriteString("\n" + report.BarChart(
		fmt.Sprintf("run %d per-worker busy time", run.Run), "s", 40, bars))
}
