package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition of the metrics registry, so the
// /debug endpoint can be scraped by stock collectors. The registry's
// dotted metric names ("dataset.worker.03.tests") are sanitized to the
// Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*; when sanitizing changed
// the name, the original is preserved as a `name` label so nothing is
// lost in the round-trip (and label escaping gets exercised on real
// names, not just in tests).

// promName sanitizes a registry metric name to the Prometheus grammar.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format: backslash,
// double quote and newline.
func promEscape(v string) string {
	var b strings.Builder
	b.Grow(len(v))
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// promLabels renders a label set in sorted-key order, "" when empty.
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, k, promEscape(labels[k])))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promFloat formats a sample value; Prometheus accepts Go's shortest
// round-trip float form, and +Inf spells the unbounded bucket.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters as `counter`, gauges and
// sampled funcs as `gauge`, histograms as `histogram` with cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`. Metric families
// are emitted in sorted registry-name order so output is stable for
// golden tests and diffable between scrapes. Nil registries write
// nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		labels := map[string]string{}
		if pn != name {
			labels["name"] = name
		}
		var err error
		switch v := snap[name].(type) {
		case int64:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n",
				pn, pn, promLabels(labels), v)
		case float64:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n",
				pn, pn, promLabels(labels), promFloat(v))
		case HistogramSnapshot:
			err = writePromHistogram(w, pn, labels, v)
		default:
			err = fmt.Errorf("obs: prometheus: %s has unexposable type %T", name, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram family: cumulative buckets
// (the registry stores per-bucket counts), the implicit +Inf bucket,
// then sum and count.
func writePromHistogram(w io.Writer, pn string, labels map[string]string, h HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	cum := int64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		bl := map[string]string{"le": promFloat(bound)}
		for k, v := range labels {
			bl[k] = v
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, promLabels(bl), cum); err != nil {
			return err
		}
	}
	bl := map[string]string{"le": "+Inf"}
	for k, v := range labels {
		bl[k] = v
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", pn, promLabels(bl), h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", pn, promLabels(labels), promFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", pn, promLabels(labels), h.Count)
	return err
}
