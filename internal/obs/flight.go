package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"satcell/internal/vclock"
)

// This file is the flight recorder: hierarchical spans (campaign →
// stage → retry-attempt → shard/drive-unit) on the monotonic elapsed
// clock, persisted as JSONL records through a TelemetrySink — in
// practice the run directory's append-only fsynced TELEMETRY journal
// (store.Journal satisfies the interface). The recorder is the durable
// twin of the in-memory event ring: the ring answers "what is the
// process doing right now", the journal answers "what did the run do"
// after the process is gone, kill -9 included.
//
// Spans live at shard/stage granularity, never per-packet: beginning a
// span costs one fsynced append, which is noise next to loading or
// sampling a shard but would crush the ~93 ns packet path. The per-
// packet relay accounting therefore never touches the recorder (the
// BenchmarkSpanStage guard proves it stays allocation-free with a
// recorder attached).
//
// Everything is nil-safe, like the rest of the package: a nil
// *FlightRecorder hands out nil *Spans whose methods are no-ops, so
// instrumented code carries no conditionals.

// SpanKind classifies one level of the span hierarchy.
type SpanKind string

const (
	// SpanCampaign is the root: one per supervised process run.
	SpanCampaign SpanKind = "campaign"
	// SpanStage covers one pipeline stage (plan/generate/verify/...).
	SpanStage SpanKind = "stage"
	// SpanAttempt covers one supervised attempt of a stage.
	SpanAttempt SpanKind = "attempt"
	// SpanShard covers one streamed analysis shard.
	SpanShard SpanKind = "shard"
	// SpanUnit covers one (drive, network) generation unit.
	SpanUnit SpanKind = "unit"
)

// Outcome tags how a span ended.
type Outcome string

const (
	// SpanOK: the work completed first try.
	SpanOK Outcome = "ok"
	// SpanRetried: the work completed, but needed at least one retry.
	SpanRetried Outcome = "retried"
	// SpanQuarantined: the work was dropped after exhausting its budget.
	SpanQuarantined Outcome = "quarantined"
	// SpanStalled: the watchdog declared the span wedged and cancelled it.
	SpanStalled Outcome = "stalled"
	// SpanFailed: the work errored without a more specific verdict.
	SpanFailed Outcome = "failed"
	// SpanCancelled: the run was cancelled from outside (SIGINT/SIGTERM).
	SpanCancelled Outcome = "cancelled"
)

// Telemetry record types: the "t" discriminator of each journal line.
const (
	// RecRun marks a process (re)entering the journal; its Run number
	// groups every later record until the next RecRun.
	RecRun = "run"
	// RecSpanStart / RecSpanEnd bracket one span. A start without an end
	// is the crash artifact replay tolerates: the work was in flight when
	// the process died.
	RecSpanStart = "span-start"
	RecSpanEnd   = "span-end"
	// RecMetrics is one sampler snapshot of the metrics registry.
	RecMetrics = "metrics"
	// RecPostmortem points at a captured post-mortem directory.
	RecPostmortem = "postmortem"
)

// TelemetryRecord is the JSONL wire format of every journal line after
// the store's meta line. Fields are a union across record types;
// omitempty keeps each line to its type's payload.
type TelemetryRecord struct {
	T string `json:"t"`
	// Run payload (RecRun); also stamped on no other record — the run a
	// record belongs to is positional, everything after a RecRun is its.
	Run int `json:"run,omitempty"`
	// Span payload (RecSpanStart/RecSpanEnd).
	ID      int64    `json:"id,omitempty"`
	Parent  int64    `json:"parent,omitempty"`
	Kind    SpanKind `json:"kind,omitempty"`
	Name    string   `json:"name,omitempty"`
	Outcome Outcome  `json:"outcome,omitempty"`
	Detail  string   `json:"detail,omitempty"`
	// ElapsedUS is the monotonic offset since the recorder started —
	// the same clock the event ring uses.
	ElapsedUS int64 `json:"elapsed_us"`
	// Metrics payload (RecMetrics).
	Vars map[string]any `json:"vars,omitempty"`
	// Postmortem payload (RecPostmortem).
	Stage   string `json:"stage,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Dir     string `json:"dir,omitempty"`
	Reason  string `json:"reason,omitempty"`
}

// TelemetrySink is where the recorder persists records. store.Journal
// satisfies it (append-only, fsync per record); tests use in-memory
// sinks. Append errors never propagate to the instrumented code path —
// telemetry observes the run, it must not be able to fail it — but the
// first error is kept for Err().
type TelemetrySink interface {
	Append(v any) error
}

// FlightRecorder assigns span identities and appends telemetry records
// on the monotonic clock. Safe for concurrent use: generation units and
// analysis shards record from worker pools.
type FlightRecorder struct {
	mu     sync.Mutex
	sink   TelemetrySink
	clk    vclock.Clock
	start  time.Time
	nextID int64
	run    int
	err    error
}

// NewFlightRecorder starts recording into sink as run number run (1 for
// a fresh journal, 1+count of prior runs on a resume). It immediately
// appends the RecRun marker. A nil sink returns a nil recorder, whose
// spans are all no-ops.
func NewFlightRecorder(sink TelemetrySink, run int) *FlightRecorder {
	return NewFlightRecorderClock(sink, run, vclock.Wall)
}

// NewFlightRecorderClock is NewFlightRecorder with an explicit clock,
// so virtual-time runs stamp their spans with virtual offsets.
func NewFlightRecorderClock(sink TelemetrySink, run int, clk vclock.Clock) *FlightRecorder {
	if sink == nil {
		return nil
	}
	if run <= 0 {
		run = 1
	}
	clk = vclock.Or(clk)
	r := &FlightRecorder{sink: sink, clk: clk, start: clk.Now(), run: run}
	r.append(&TelemetryRecord{T: RecRun, Run: run})
	return r
}

// Run returns the recorder's run number (0 on nil).
func (r *FlightRecorder) Run() int {
	if r == nil {
		return 0
	}
	return r.run
}

// Elapsed returns the monotonic offset since recording started.
func (r *FlightRecorder) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return r.clk.Since(r.start)
}

// Err returns the first append error, nil while the journal is healthy.
func (r *FlightRecorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// append persists one record; errors are sticky but swallowed.
func (r *FlightRecorder) append(rec *TelemetryRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.sink.Append(rec); err != nil && r.err == nil {
		r.err = err
	}
}

// Begin opens a root span (no parent). Use Span.Child below it.
func (r *FlightRecorder) Begin(kind SpanKind, name string) *Span {
	return r.begin(0, kind, name)
}

func (r *FlightRecorder) begin(parent int64, kind SpanKind, name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	r.mu.Unlock()
	el := int64(r.Elapsed() / time.Microsecond)
	r.append(&TelemetryRecord{
		T: RecSpanStart, ID: id, Parent: parent, Kind: kind, Name: name, ElapsedUS: el,
	})
	return &Span{r: r, id: id, kind: kind, name: name, startUS: el}
}

// RecordMetrics appends one sampler snapshot of the metrics registry.
func (r *FlightRecorder) RecordMetrics(vars map[string]any) {
	if r == nil {
		return
	}
	r.append(&TelemetryRecord{
		T: RecMetrics, ElapsedUS: int64(r.Elapsed() / time.Microsecond), Vars: vars,
	})
}

// RecordPostmortem appends a pointer to a captured post-mortem dir, so
// the journal replay can line the capture up with the span that caused
// it.
func (r *FlightRecorder) RecordPostmortem(stage string, attempt int, dir, reason string) {
	if r == nil {
		return
	}
	r.append(&TelemetryRecord{
		T: RecPostmortem, ElapsedUS: int64(r.Elapsed() / time.Microsecond),
		Stage: stage, Attempt: attempt, Dir: dir, Reason: reason,
	})
}

// Span is one open span. End it exactly once; End is idempotent and
// nil-safe so error paths can End defensively.
type Span struct {
	r       *FlightRecorder
	id      int64
	kind    SpanKind
	name    string
	startUS int64

	mu    sync.Mutex
	ended bool
}

// ID returns the span's journal identity (0 on nil).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Child opens a span below s. On a nil span it returns nil, so
// instrumentation composes without conditionals.
func (s *Span) Child(kind SpanKind, name string) *Span {
	if s == nil {
		return nil
	}
	return s.r.begin(s.id, kind, name)
}

// End closes the span with its outcome. Only the first End appends; a
// span the crash left open simply has no end record, which replay
// reports as an open span.
func (s *Span) End(outcome Outcome, detail string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.mu.Unlock()
	s.r.append(&TelemetryRecord{
		T: RecSpanEnd, ID: s.id, Outcome: outcome, Detail: detail,
		ElapsedUS: int64(s.r.Elapsed() / time.Microsecond),
	})
}

// --- replay ---

// ReplaySpan is one reconstructed span: the start record merged with
// its end record (if the run lived long enough to write one).
type ReplaySpan struct {
	Run     int      `json:"run"`
	ID      int64    `json:"id"`
	Parent  int64    `json:"parent,omitempty"`
	Kind    SpanKind `json:"kind"`
	Name    string   `json:"name"`
	StartUS int64    `json:"start_us"`
	EndUS   int64    `json:"end_us,omitempty"`
	Outcome Outcome  `json:"outcome,omitempty"`
	Detail  string   `json:"detail,omitempty"`
	// Closed reports whether an end record was replayed; an open span is
	// the signature of a crash (or kill -9) with the work in flight.
	Closed bool `json:"closed"`

	Children []*ReplaySpan `json:"children,omitempty"`
}

// Duration returns the span's recorded duration (to the replay horizon
// for open spans, passed by the caller as the run's last offset).
func (s *ReplaySpan) Duration(horizonUS int64) time.Duration {
	end := s.EndUS
	if !s.Closed {
		end = horizonUS
	}
	if end < s.StartUS {
		end = s.StartUS
	}
	return time.Duration(end-s.StartUS) * time.Microsecond
}

// MetricsSample is one replayed sampler snapshot.
type MetricsSample struct {
	Run       int            `json:"run"`
	ElapsedUS int64          `json:"elapsed_us"`
	Vars      map[string]any `json:"vars"`
}

// PostmortemRef is one replayed post-mortem pointer.
type PostmortemRef struct {
	Run       int    `json:"run"`
	ElapsedUS int64  `json:"elapsed_us"`
	Stage     string `json:"stage"`
	Attempt   int    `json:"attempt"`
	Dir       string `json:"dir"`
	Reason    string `json:"reason"`
}

// RunLog is one process run's reconstructed telemetry.
type RunLog struct {
	Run int `json:"run"`
	// Roots holds the run's root spans (parent 0) with children nested.
	Roots []*ReplaySpan `json:"roots,omitempty"`
	// Spans and Open count the run's spans and how many never closed.
	Spans int `json:"spans"`
	Open  int `json:"open"`
	// LastUS is the run's replay horizon: the largest elapsed offset any
	// of its records carries.
	LastUS      int64           `json:"last_us"`
	Samples     []MetricsSample `json:"-"`
	Postmortems []PostmortemRef `json:"postmortems,omitempty"`
}

// FlightLog is a fully replayed TELEMETRY journal: every run the
// journal accumulated, resumes included, in order.
type FlightLog struct {
	Runs []*RunLog `json:"runs"`
}

// Spans returns the total span count across runs.
func (l *FlightLog) Spans() int {
	n := 0
	for _, r := range l.Runs {
		n += r.Spans
	}
	return n
}

// Open returns the total count of spans no run ever closed.
func (l *FlightLog) Open() int {
	n := 0
	for _, r := range l.Runs {
		n += r.Open
	}
	return n
}

// Walk visits every span of every run, parents before children.
func (l *FlightLog) Walk(fn func(*ReplaySpan)) {
	var rec func(*ReplaySpan)
	rec = func(s *ReplaySpan) {
		fn(s)
		for _, c := range s.Children {
			rec(c)
		}
	}
	for _, r := range l.Runs {
		for _, root := range r.Roots {
			rec(root)
		}
	}
}

// ReplayTelemetry reconstructs the span trees, metric samples and
// post-mortem pointers from a journal's raw entries (the store's
// journal replay already dropped any torn tail). It validates the
// stream's causal consistency: a span may end only after it started,
// ids are unique within a run, and every end record carries an outcome.
// Spans with no end record are tolerated — they are the crash evidence
// — and reported per run as Open.
func ReplayTelemetry(entries []json.RawMessage) (*FlightLog, error) {
	log := &FlightLog{}
	var cur *RunLog
	spans := map[int64]*ReplaySpan{} // current run's spans by id
	ensureRun := func() *RunLog {
		if cur == nil {
			// Records before any run marker: a journal from an older
			// writer; adopt them into an implicit run 1.
			cur = &RunLog{Run: 1}
			log.Runs = append(log.Runs, cur)
		}
		return cur
	}
	for i, raw := range entries {
		var rec TelemetryRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: entry %d: %w", i+1, err)
		}
		if cur != nil && rec.ElapsedUS > cur.LastUS {
			cur.LastUS = rec.ElapsedUS
		}
		switch rec.T {
		case RecRun:
			cur = &RunLog{Run: rec.Run}
			if cur.Run <= 0 {
				cur.Run = len(log.Runs) + 1
			}
			log.Runs = append(log.Runs, cur)
			spans = map[int64]*ReplaySpan{}
		case RecSpanStart:
			r := ensureRun()
			if rec.ID == 0 {
				return nil, fmt.Errorf("telemetry: entry %d: span-start without id", i+1)
			}
			if spans[rec.ID] != nil {
				return nil, fmt.Errorf("telemetry: entry %d: span %d started twice in run %d", i+1, rec.ID, r.Run)
			}
			sp := &ReplaySpan{
				Run: r.Run, ID: rec.ID, Parent: rec.Parent,
				Kind: rec.Kind, Name: rec.Name, StartUS: rec.ElapsedUS,
			}
			spans[rec.ID] = sp
			if rec.Parent == 0 {
				r.Roots = append(r.Roots, sp)
			} else {
				parent := spans[rec.Parent]
				if parent == nil {
					// The journal is append-ordered and fsynced: a child's
					// start cannot be durable before its parent's.
					return nil, fmt.Errorf("telemetry: entry %d: span %d names unknown parent %d", i+1, rec.ID, rec.Parent)
				}
				parent.Children = append(parent.Children, sp)
			}
			r.Spans++
			r.Open++
		case RecSpanEnd:
			r := ensureRun()
			sp := spans[rec.ID]
			if sp == nil {
				return nil, fmt.Errorf("telemetry: entry %d: span-end for unknown span %d in run %d", i+1, rec.ID, r.Run)
			}
			if sp.Closed {
				return nil, fmt.Errorf("telemetry: entry %d: span %d ended twice", i+1, rec.ID)
			}
			if rec.Outcome == "" {
				return nil, fmt.Errorf("telemetry: entry %d: span %d closed without an outcome", i+1, rec.ID)
			}
			if rec.ElapsedUS < sp.StartUS {
				return nil, fmt.Errorf("telemetry: entry %d: span %d ends at %dus before its start %dus", i+1, rec.ID, rec.ElapsedUS, sp.StartUS)
			}
			sp.EndUS, sp.Outcome, sp.Detail, sp.Closed = rec.ElapsedUS, rec.Outcome, rec.Detail, true
			r.Open--
		case RecMetrics:
			r := ensureRun()
			r.Samples = append(r.Samples, MetricsSample{Run: r.Run, ElapsedUS: rec.ElapsedUS, Vars: rec.Vars})
		case RecPostmortem:
			r := ensureRun()
			r.Postmortems = append(r.Postmortems, PostmortemRef{
				Run: r.Run, ElapsedUS: rec.ElapsedUS,
				Stage: rec.Stage, Attempt: rec.Attempt, Dir: rec.Dir, Reason: rec.Reason,
			})
		default:
			return nil, fmt.Errorf("telemetry: entry %d: unknown record type %q", i+1, rec.T)
		}
	}
	// Children arrive in append order, which is also start order on the
	// monotonic clock; sort defensively so rendering never depends on it.
	log.Walk(func(s *ReplaySpan) {
		sort.SliceStable(s.Children, func(i, j int) bool {
			if s.Children[i].StartUS != s.Children[j].StartUS {
				return s.Children[i].StartUS < s.Children[j].StartUS
			}
			return s.Children[i].ID < s.Children[j].ID
		})
	})
	return log, nil
}
