package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// EventKind classifies one traced event on the live path.
type EventKind string

// Event kinds. The set mirrors what the paper's operators watched
// mid-drive: packets moving (or not) through the shaped link, fault
// windows opening and closing, satellite handovers, and measurement
// sessions coming and going.
const (
	// EvEnqueue: a packet entered a relay and was admitted to pacing.
	EvEnqueue EventKind = "enqueue"
	// EvDrop: a packet was dropped (Detail names the cause: loss,
	// droptail, blackout, gate, refused).
	EvDrop EventKind = "drop"
	// EvDeliver: a packet left the relay toward its destination.
	EvDeliver EventKind = "deliver"
	// EvHandover: a satellite reallocation epoch (the 15 s Starlink
	// handover the paper's §5 RTT spikes line up with).
	EvHandover EventKind = "handover"
	// EvFaultOpen / EvFaultClose: a scheduled fault window became
	// active / inactive (Detail names the window kind: blackout,
	// restart, dial-fail).
	EvFaultOpen  EventKind = "fault-open"
	EvFaultClose EventKind = "fault-close"
	// EvSessionStart / EvSessionEnd: a relay session (UDP client flow or
	// TCP connection) began / ended.
	EvSessionStart EventKind = "session-start"
	EvSessionEnd   EventKind = "session-end"
	// EvShardRetry / EvShardQuarantine: the streaming supervisor reloaded
	// a shard after a transient I/O failure / dropped a shard that stayed
	// bad (Detail names the shard and the cause).
	EvShardRetry      EventKind = "shard-retry"
	EvShardQuarantine EventKind = "shard-quarantine"
	// EvStageStart / EvStageEnd / EvStageStall: the campaign supervisor
	// entered / finished a pipeline stage / declared it stalled (Detail
	// names the stage and, for stalls, the attempt).
	EvStageStart EventKind = "stage-start"
	EvStageEnd   EventKind = "stage-end"
	EvStageStall EventKind = "stage-stall"
)

// Event is one traced occurrence, keyed by monotonic elapsed time since
// the traced component started — never wall-clock time, so a replayed
// run exports the same spans at the same offsets.
type Event struct {
	// ElapsedUS is the monotonic offset in microseconds.
	ElapsedUS int64 `json:"elapsed_us"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Src names the emitting component (e.g. "relay.udp", "faults").
	Src string `json:"src,omitempty"`
	// Dir is the traffic direction ("up" or "down") where it applies.
	Dir string `json:"dir,omitempty"`
	// Size is the payload size in bytes for packet events.
	Size int `json:"size,omitempty"`
	// Detail carries the kind-specific qualifier (drop cause, fault
	// window kind, session peer).
	Detail string `json:"detail,omitempty"`
}

// Elapsed returns the event's offset as a duration.
func (e Event) Elapsed() time.Duration { return time.Duration(e.ElapsedUS) * time.Microsecond }

// Tracer is a bounded in-memory event ring. Recording is a mutex plus a
// slot write; once the ring wraps, the oldest events are overwritten
// (and counted), so a long-lived relay keeps the freshest window of
// activity without growing memory. All methods are nil-safe no-ops.
type Tracer struct {
	mu          sync.Mutex
	buf         []Event
	pinned      []Event
	next        int
	wrapped     bool
	total       int64
	overwritten int64
}

// DefaultTracerCapacity is the ring size when NewTracer gets n <= 0.
const DefaultTracerCapacity = 8192

// NewTracer creates a ring holding the last n events.
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultTracerCapacity
	}
	return &Tracer{buf: make([]Event, 0, n)}
}

// Record appends ev to the ring (overwriting the oldest event once
// full). No-op on a nil tracer.
func (t *Tracer) Record(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
		t.wrapped = true
		t.overwritten++
	}
	t.next = (t.next + 1) % cap(t.buf)
	t.total++
	t.mu.Unlock()
}

// Pin records an event outside the ring: pinned events are never
// overwritten by wrap-around. This is for the small set of structural
// events a trace is useless without — the fault schedule's windows,
// recorded at their (deterministic) scheduled offsets — while the
// high-volume packet events cycle through the ring. No-op on nil.
func (t *Tracer) Pin(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.pinned = append(t.pinned, ev)
	t.total++
	t.mu.Unlock()
}

// PinSpan pins a non-packet event at the given elapsed offset.
func (t *Tracer) PinSpan(elapsed time.Duration, kind EventKind, src, detail string) {
	if t == nil {
		return
	}
	t.Pin(Event{ElapsedUS: int64(elapsed / time.Microsecond), Kind: kind, Src: src, Detail: detail})
}

// Packet records a packet-path event (enqueue/drop/deliver) at the
// given monotonic elapsed offset. No-op on a nil tracer, so the relay
// hot path pays one nil check when tracing is off.
func (t *Tracer) Packet(elapsed time.Duration, kind EventKind, src, dir string, size int, detail string) {
	if t == nil {
		return
	}
	t.Record(Event{
		ElapsedUS: int64(elapsed / time.Microsecond),
		Kind:      kind, Src: src, Dir: dir, Size: size, Detail: detail,
	})
}

// Span records a non-packet event (fault window edge, handover,
// session lifecycle). No-op on a nil tracer.
func (t *Tracer) Span(elapsed time.Duration, kind EventKind, src, detail string) {
	if t == nil {
		return
	}
	t.Record(Event{
		ElapsedUS: int64(elapsed / time.Microsecond),
		Kind:      kind, Src: src, Detail: detail,
	})
}

// Total returns how many events were ever recorded (including ones the
// ring has since overwritten).
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many recorded events the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.overwritten
}

// Snapshot returns the ring's events sorted by elapsed offset (stable,
// so same-instant events keep insertion order). Sorting by the
// monotonic key — not by arrival in the ring — keeps exports
// deterministic when concurrent goroutines interleave their records.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.buf), len(t.buf)+len(t.pinned))
	if t.wrapped {
		n := copy(out, t.buf[t.next:])
		copy(out[n:], t.buf[:t.next])
	} else {
		copy(out, t.buf)
	}
	out = append(out, t.pinned...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].ElapsedUS < out[j].ElapsedUS })
	return out
}

// WriteJSONL writes the ring as one JSON object per line, in elapsed
// order — the export format satcell-analyze -events consumes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.Snapshot() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL event trace. Blank lines are skipped; a
// malformed line fails the whole read with its line number, the same
// contract as the trace CSV readers.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("events: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("events: %w", err)
	}
	return out, nil
}
