// Package obs is the stdlib-only observability layer of the toolkit:
// a lock-cheap metrics registry (atomic counters, gauges and
// fixed-bucket histograms), a bounded in-memory event tracer whose ring
// exports as JSONL spans keyed by monotonic elapsed time, a leveled
// logger (SATCELL_LOG=debug|info|warn), and a debug HTTP endpoint
// serving expvar-style metrics, the event ring, pprof profiles and
// component health.
//
// The paper's field toolkit earned its keep because the operators could
// watch the channel mid-drive — per-second throughput, RTT, loss,
// handover events. Our emulation stack needs the same in-flight
// visibility: queue depth, pacing backlog and drop decisions while
// mpshell is shaping traffic, not just the final CSV.
//
// Every instrumentation point is nil-safe: methods on a nil *Registry,
// *Counter, *Gauge, *Histogram or *Tracer are no-ops, so the live path
// carries a single nil check when no observer is attached.
// Observability reads the clock; it never advances it — attaching a
// registry or tracer must not change any deterministic output.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bounds (inclusive); one implicit overflow bucket catches everything
// above the last bound. Observations also accumulate a total count and
// sum, so means survive the bucketing.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is overflow
	total   atomic.Int64
	sumBits atomic.Uint64
}

// Satcell-appropriate bucket presets: throughput in Mbps, RTT in
// milliseconds and queue/backlog depths, matching the bands the paper's
// figures use (coverage levels at 20/50/100 Mbps, RTT medians in the
// tens of ms, sub-second pacing backlogs).
var (
	MbpsBuckets    = []float64{1, 5, 10, 20, 50, 100, 150, 200, 300, 500}
	RTTMsBuckets   = []float64{5, 10, 20, 30, 40, 60, 80, 100, 150, 250, 500, 1000}
	QueueMsBuckets = []float64{1, 5, 10, 25, 50, 100, 200, 400, 800}
	DepthBuckets   = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
)

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough read of a histogram: each
// field is individually atomic; the snapshot is not a single linearized
// point, which is fine for monitoring.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Mean   float64   `json:"mean"`
}

// Snapshot reads the histogram's current state (zero value on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Count:  h.total.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}

// Registry is a named collection of metrics. Handles are get-or-create
// by name, so a component restarted on the same registry (a supervised
// relay brought back after a kill window) keeps accumulating into the
// same counters. Lookup takes a mutex; hot paths hold the returned
// handle and touch only atomics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns the named counter, creating it if needed. A nil
// registry returns a nil handle whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed (nil on a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if needed (nil on a nil registry). Bounds are only used
// at creation; later calls return the existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// RegisterFunc registers a sampled gauge: fn is evaluated at snapshot
// time, so the instrumented hot path pays nothing. Re-registering a
// name replaces the function (a restarted component re-binds its
// depth/backlog probes). No-op on a nil registry.
func (r *Registry) RegisterFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot returns every metric's current value as a JSON-friendly map:
// counters as int64, gauges and funcs as float64, histograms as
// HistogramSnapshot. Nil registries snapshot empty.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	r.mu.Unlock()

	// Funcs run outside the registry lock: they may themselves take
	// locks (a pacer backlog probe) and must not deadlock a concurrent
	// metric lookup.
	for k, c := range counters {
		out[k] = c.Value()
	}
	for k, g := range gauges {
		out[k] = g.Value()
	}
	for k, h := range hists {
		out[k] = h.Snapshot()
	}
	for k, fn := range funcs {
		out[k] = fn()
	}
	return out
}

// WriteJSON writes the snapshot as expvar-style indented JSON with
// sorted keys (encoding/json sorts map keys).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
