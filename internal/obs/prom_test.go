package obs

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPromExpositionGolden locks the exact exposition bytes: family
// ordering, type lines, cumulative histogram buckets, the `name` label
// round-trip for sanitized dotted names, and label-value escaping.
func TestPromExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.shards_written").Add(7)
	h := r.Histogram("lat.ms", []float64{1, 5})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(100)
	r.RegisterFunc("queue_depth", func() float64 { return 4 })
	r.Gauge("speed").Set(1.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE campaign_shards_written counter
campaign_shards_written{name="campaign.shards_written"} 7
# TYPE lat_ms histogram
lat_ms_bucket{le="1",name="lat.ms"} 1
lat_ms_bucket{le="5",name="lat.ms"} 2
lat_ms_bucket{le="+Inf",name="lat.ms"} 3
lat_ms_sum{name="lat.ms"} 103.5
lat_ms_count{name="lat.ms"} 3
# TYPE queue_depth gauge
queue_depth 4
# TYPE speed gauge
speed 1.5
`
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPromLabelEscaping(t *testing.T) {
	// A registry name with every character the exposition format escapes:
	// backslash, double quote and newline. The sanitized metric name
	// replaces them all with '_'; the original survives — escaped — in
	// the name label.
	r := NewRegistry()
	r.Counter("weird\"metric\\with\nnewline").Add(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE weird_metric_with_newline counter\n") {
		t.Fatalf("metric name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `weird_metric_with_newline{name="weird\"metric\\with\nnewline"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
	// The exposition body itself must stay line-structured: no raw
	// newline may leak out of a label value.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("empty line leaked into exposition:\n%q", out)
		}
	}
}

func TestPromNameSanitizing(t *testing.T) {
	cases := map[string]string{
		"relay.udp.up.in_pkts": "relay_udp_up_in_pkts",
		"9starts_with_digit":   "_starts_with_digit",
		"ok:name_1":            "ok:name_1",
		"":                     "_",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestPromNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry wrote %q", buf.String())
	}
}

// TestPromDebugMetricsEndpoint scrapes /debug/metrics the way a
// collector would and checks the content type and exposition body.
func TestPromDebugMetricsEndpoint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits").Add(2)
	srv, err := ServeDebug("127.0.0.1:0", reg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %q, want the 0.0.4 exposition type", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if want := "# TYPE hits counter\nhits 2\n"; string(b) != want {
		t.Fatalf("scrape = %q, want %q", b, want)
	}
}
