package obs

import (
	"sync"
	"time"

	"satcell/internal/vclock"
)

// Sampler periodically snapshots a metrics registry into the flight
// recorder, so a replayed TELEMETRY journal carries the counter curves
// (rows/s, shards done, retries) alongside the span tree. One goroutine
// per sampler; Stop takes a final snapshot and waits for the goroutine
// to exit, so samplers never leak past the run.
type Sampler struct {
	quit chan struct{}
	done chan struct{}
	once sync.Once
}

// StartSampler samples reg into rec every interval. Returns nil (a
// no-op sampler) when either side is missing or the interval is not
// positive — sampling is an observer, never a requirement.
func StartSampler(rec *FlightRecorder, reg *Registry, interval time.Duration) *Sampler {
	return StartSamplerClock(rec, reg, interval, vclock.Wall)
}

// StartSamplerClock is StartSampler with an explicit clock, so a
// virtual-time run samples its registry on virtual ticks.
func StartSamplerClock(rec *FlightRecorder, reg *Registry, interval time.Duration, clk vclock.Clock) *Sampler {
	if rec == nil || reg == nil || interval <= 0 {
		return nil
	}
	clk = vclock.Or(clk)
	s := &Sampler{quit: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := clk.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C():
				rec.RecordMetrics(reg.Snapshot())
			case <-s.quit:
				// Final snapshot on the way out: the journal's last metrics
				// record is the run's closing state.
				rec.RecordMetrics(reg.Snapshot())
				return
			}
		}
	}()
	return s
}

// Stop takes a final snapshot and blocks until the sampler goroutine
// has exited. Safe on nil and idempotent.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.quit) })
	<-s.done
}
