package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is a log severity.
type Level int32

// Log levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps a SATCELL_LOG value to a Level (default info).
func ParseLevel(s string) Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// EnvLevel is the environment variable the default log level is read
// from: SATCELL_LOG=debug|info|warn|error.
const EnvLevel = "SATCELL_LOG"

// Logger is the shared leveled logger of the cmd/ tools. The zero
// value is unusable; construct with NewLogger. A nil logger is safe:
// every method is a no-op (Fatalf still exits).
type Logger struct {
	component string
	level     atomic.Int32
	mu        sync.Mutex
	w         io.Writer
	exit      func(int) // os.Exit, swappable in tests
}

// NewLogger creates a logger for one component (e.g. "mpshell") writing
// to stderr at the level named by SATCELL_LOG (default info).
func NewLogger(component string) *Logger {
	l := &Logger{component: component, w: os.Stderr, exit: os.Exit}
	l.level.Store(int32(ParseLevel(os.Getenv(EnvLevel))))
	return l
}

// SetLevel overrides the logger's level.
func (l *Logger) SetLevel(lv Level) {
	if l == nil {
		return
	}
	l.level.Store(int32(lv))
}

// SetOutput redirects the logger (tests).
func (l *Logger) SetOutput(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

func (l *Logger) logf(lv Level, format string, args ...any) {
	if l == nil || lv < Level(l.level.Load()) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	line := fmt.Sprintf("%s %-5s %s: %s\n",
		time.Now().Format("15:04:05.000"), strings.ToUpper(lv.String()), l.component, msg)
	l.mu.Lock()
	io.WriteString(l.w, line)
	l.mu.Unlock()
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }

// Fatalf logs at error level and exits with status 1.
func (l *Logger) Fatalf(format string, args ...any) {
	if l == nil {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		os.Exit(1)
	}
	l.logf(LevelError, format, args...)
	l.exit(1)
}
