package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObsCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.count")
	g := r.Gauge("test.gauge")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if g.Value() != 999 {
		t.Fatalf("gauge = %v, want 999", g.Value())
	}
	// Get-or-create returns the same handle.
	if r.Counter("test.count") != c {
		t.Fatal("counter handle not reused")
	}
}

func TestObsHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.mbps", MbpsBuckets)
	for _, v := range []float64{0.5, 3, 30, 120, 9999} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if want := 0.5 + 3 + 30 + 120 + 9999; s.Sum != float64(want) {
		t.Fatalf("sum = %v, want %v", s.Sum, want)
	}
	// 9999 exceeds the last bound (500): overflow bucket.
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[len(s.Counts)-1])
	}
	// 0.5 lands in the first bucket (bound 1).
	if s.Counts[0] != 1 {
		t.Fatalf("first bucket = %d, want 1", s.Counts[0])
	}
}

func TestObsNilSafety(t *testing.T) {
	// Every handle from a nil registry must be a usable no-op: this is
	// the contract that lets instrumentation stay unconditionally wired
	// on the live path.
	var r *Registry
	r.Counter("x").Add(5)
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z", MbpsBuckets).Observe(1)
	r.RegisterFunc("f", func() float64 { return 1 })
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 {
		t.Fatal("nil handles must read zero")
	}
	var tr *Tracer
	tr.Record(Event{})
	tr.Packet(time.Second, EvDrop, "relay.udp", "up", 100, "loss")
	tr.Span(time.Second, EvFaultOpen, "faults", "blackout")
	if tr.Snapshot() != nil || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must be empty")
	}
	var lg *Logger
	lg.Infof("no crash")
	lg.Debugf("no crash")
	lg.SetLevel(LevelDebug)
}

func TestObsRegisterFuncSnapshot(t *testing.T) {
	r := NewRegistry()
	depth := 0
	r.RegisterFunc("queue.depth", func() float64 { return float64(depth) })
	depth = 7
	snap := r.Snapshot()
	if snap["queue.depth"] != 7.0 {
		t.Fatalf("func gauge = %v, want 7", snap["queue.depth"])
	}
	// Re-registering replaces (restarted component re-binds its probe).
	r.RegisterFunc("queue.depth", func() float64 { return 42 })
	if r.Snapshot()["queue.depth"] != 42.0 {
		t.Fatal("RegisterFunc did not replace")
	}
}

func TestObsTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(Event{ElapsedUS: int64(i), Kind: EvDeliver})
	}
	evs := tr.Snapshot()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	// The freshest window survives, in elapsed order.
	for i, ev := range evs {
		if ev.ElapsedUS != int64(6+i) {
			t.Fatalf("evs[%d].ElapsedUS = %d, want %d", i, ev.ElapsedUS, 6+i)
		}
	}
	if tr.Total() != 10 || tr.Dropped() != 6 {
		t.Fatalf("total=%d dropped=%d, want 10/6", tr.Total(), tr.Dropped())
	}
}

func TestObsEventJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.Packet(1500*time.Millisecond, EvDeliver, "relay.udp", "down", 1400, "")
	tr.Packet(2*time.Second, EvDrop, "relay.udp", "up", 512, "droptail")
	tr.Span(5*time.Second, EvFaultOpen, "faults", "blackout")
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// Malformed line fails with its line number.
	if _, err := ReadJSONL(strings.NewReader("{\"kind\":\"drop\"}\nnot-json\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestObsTracerConcurrent(t *testing.T) {
	tr := NewTracer(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Packet(time.Duration(i)*time.Millisecond, EvDeliver, "t", "up", w, "")
			}
		}(w)
	}
	wg.Wait()
	if tr.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", tr.Total())
	}
	evs := tr.Snapshot()
	if len(evs) != 256 {
		t.Fatalf("ring = %d, want 256", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].ElapsedUS < evs[i-1].ElapsedUS {
			t.Fatal("snapshot not sorted by elapsed")
		}
	}
}

func TestObsLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	lg := NewLogger("test")
	lg.SetOutput(&buf)
	lg.SetLevel(LevelWarn)
	lg.Debugf("hidden debug")
	lg.Infof("hidden info")
	lg.Warnf("visible warn")
	lg.Errorf("visible error")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("below-level lines leaked: %q", out)
	}
	if !strings.Contains(out, "WARN  test: visible warn") ||
		!strings.Contains(out, "ERROR test: visible error") {
		t.Fatalf("missing leveled lines: %q", out)
	}

	// Fatalf exits 1 through the injected exit hook.
	code := -1
	lg.exit = func(c int) { code = c }
	lg.Fatalf("boom")
	if code != 1 {
		t.Fatalf("Fatalf exit code = %d, want 1", code)
	}
	if !strings.Contains(buf.String(), "boom") {
		t.Fatal("Fatalf message missing")
	}
}

func TestObsParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "DEBUG": LevelDebug,
		"info": LevelInfo, "": LevelInfo, "bogus": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn,
		"error": LevelError,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestObsDebugServer(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("relay.udp.up.in_pkts").Add(12)
	reg.RegisterFunc("relay.udp.timers.pending", func() float64 { return 3 })
	tr := NewTracer(16)
	tr.Span(time.Second, EvFaultOpen, "faults", "blackout")
	srv, err := ServeDebug("127.0.0.1:0", reg, tr, map[string]func() any{
		"schedule": func() any { return map[string]any{"digest": "abc123"} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	var vars map[string]any
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Fatal(err)
	}
	if vars["relay.udp.up.in_pkts"] != 12.0 || vars["relay.udp.timers.pending"] != 3.0 {
		t.Fatalf("vars = %v", vars)
	}

	evs, err := ReadJSONL(strings.NewReader(get("/debug/events")))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != EvFaultOpen {
		t.Fatalf("events = %+v", evs)
	}

	if h := get("/debug/health"); !strings.Contains(h, "abc123") {
		t.Fatalf("health = %q", h)
	}
	// pprof index answers (profiles actually work).
	if p := get("/debug/pprof/"); !strings.Contains(p, "goroutine") {
		t.Fatalf("pprof index = %q", p)
	}
}

func TestObsTimelineRender(t *testing.T) {
	tr := NewTracer(0)
	// A faulted run: packets flow, a blackout window [5s, 5.8s) drops
	// traffic, a session starts and ends.
	tr.Span(0, EvSessionStart, "relay.udp", "client 127.0.0.1:9999")
	for s := 0; s < 10; s++ {
		at := time.Duration(s)*time.Second + 100*time.Millisecond
		if s == 5 {
			tr.Packet(at, EvDrop, "relay.udp", "up", 1400, "blackout")
			continue
		}
		tr.Packet(at, EvDeliver, "relay.udp", "up", 1400, "")
	}
	tr.Span(5*time.Second, EvFaultOpen, "faults", "blackout")
	tr.Span(5*time.Second+800*time.Millisecond, EvFaultClose, "faults", "blackout")
	tr.Span(9*time.Second, EvSessionEnd, "relay.udp", "client 127.0.0.1:9999")

	out := RenderTimeline(tr.Snapshot())
	for _, want := range []string{
		"per-second relay traffic",
		"fault windows (scheduled offsets):",
		"blackout     5.000s ..    5.800s (800 ms)",
		"session-start",
		"session-end",
		"# = window active",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
	// The strip marks second 5 as faulted and second 0 as clean.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "faults/s |") {
			strip := line[len("faults/s |"):]
			if strip[0] != '.' || strip[5] != '#' {
				t.Fatalf("fault strip wrong: %q", line)
			}
		}
	}

	if got := RenderTimeline(nil); !strings.Contains(got, "no events") {
		t.Fatalf("empty render = %q", got)
	}
}

func TestObsTimelineOpenWindow(t *testing.T) {
	// A run killed inside a fault window: the open span renders without
	// a close offset instead of being dropped.
	tr := NewTracer(0)
	tr.Packet(time.Second, EvDeliver, "relay.udp", "down", 100, "")
	tr.Span(2*time.Second, EvFaultOpen, "faults", "restart")
	out := RenderTimeline(tr.Snapshot())
	if !strings.Contains(out, "open at end of trace") {
		t.Fatalf("open window not rendered:\n%s", out)
	}
}

func BenchmarkObsCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkObsHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench", MbpsBuckets)
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 300))
	}
}

func BenchmarkObsTracerRecord(b *testing.B) {
	tr := NewTracer(8192)
	for i := 0; i < b.N; i++ {
		tr.Packet(time.Duration(i), EvDeliver, "relay.udp", "up", 1400, "")
	}
}

func ExampleRegistry_WriteJSON() {
	r := NewRegistry()
	r.Counter("pkts").Add(3)
	var buf bytes.Buffer
	r.WriteJSON(&buf)
	fmt.Print(buf.String())
	// Output:
	// {
	//   "pkts": 3
	// }
}
