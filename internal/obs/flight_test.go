package obs

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"satcell/internal/testutil"
)

// memSink is the test TelemetrySink: it marshals each record the way the
// store journal would, so replaying its entries exercises the same JSON
// round-trip as a real TELEMETRY file.
type memSink struct {
	mu  sync.Mutex
	raw []json.RawMessage
	err error
}

func (s *memSink) Append(v any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	s.raw = append(s.raw, json.RawMessage(b))
	return nil
}

func (s *memSink) entries() []json.RawMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]json.RawMessage(nil), s.raw...)
}

// rawRecords marshals hand-authored records for replay-validation tests.
func rawRecords(t *testing.T, recs ...TelemetryRecord) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, 0, len(recs))
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b)
	}
	return out
}

func TestFlightRecorderReplayTree(t *testing.T) {
	sink := &memSink{}
	rec := NewFlightRecorder(sink, 1)
	camp := rec.Begin(SpanCampaign, "satcell-campaign")
	st := camp.Child(SpanStage, "generate")
	att := st.Child(SpanAttempt, "generate#1")
	u1 := att.Child(SpanUnit, WorkerPrefix(0)+"drive000:RM")
	u1.End(SpanOK, "")
	u2 := att.Child(SpanUnit, WorkerPrefix(1)+"drive001:RM")
	u2.End(SpanQuarantined, "injected meltdown")
	att.End(SpanOK, "")
	st.End(SpanOK, "")
	camp.End(SpanOK, "complete")
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder error: %v", err)
	}

	log, err := ReplayTelemetry(sink.entries())
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Run != 1 {
		t.Fatalf("runs = %+v, want one run numbered 1", log.Runs)
	}
	run := log.Runs[0]
	if run.Spans != 5 || run.Open != 0 {
		t.Fatalf("spans=%d open=%d, want 5/0", run.Spans, run.Open)
	}
	if len(run.Roots) != 1 || run.Roots[0].Kind != SpanCampaign {
		t.Fatalf("roots = %+v, want one campaign root", run.Roots)
	}
	// The hierarchy survives the round-trip: campaign -> stage ->
	// attempt -> two units, each with its recorded outcome.
	stage := run.Roots[0].Children[0]
	if stage.Kind != SpanStage || stage.Name != "generate" {
		t.Fatalf("stage span = %+v", stage)
	}
	attempt := stage.Children[0]
	if attempt.Kind != SpanAttempt || len(attempt.Children) != 2 {
		t.Fatalf("attempt span = %+v", attempt)
	}
	if got := attempt.Children[1]; got.Outcome != SpanQuarantined || got.Detail != "injected meltdown" {
		t.Fatalf("unit outcome = %q detail %q, want quarantined", got.Outcome, got.Detail)
	}
	log.Walk(func(s *ReplaySpan) {
		if !s.Closed {
			t.Errorf("span %d (%s) left open by a clean run", s.ID, s.Name)
		}
		if s.Closed && s.Outcome == "" {
			t.Errorf("span %d closed without an outcome", s.ID)
		}
	})
	if log.Spans() != 5 || log.Open() != 0 {
		t.Fatalf("totals = %d/%d, want 5/0", log.Spans(), log.Open())
	}
}

func TestFlightReplayOpenSpans(t *testing.T) {
	// A kill -9 leaves start records with no end: replay must tolerate
	// them and report them per run, and Duration must extend the open
	// span to the replay horizon.
	entries := rawRecords(t,
		TelemetryRecord{T: RecRun, Run: 1},
		TelemetryRecord{T: RecSpanStart, ID: 1, Kind: SpanCampaign, Name: "c", ElapsedUS: 0},
		TelemetryRecord{T: RecSpanStart, ID: 2, Parent: 1, Kind: SpanStage, Name: "generate", ElapsedUS: 10},
		TelemetryRecord{T: RecMetrics, ElapsedUS: 5000, Vars: map[string]any{"x": 1}},
	)
	log, err := ReplayTelemetry(entries)
	if err != nil {
		t.Fatal(err)
	}
	run := log.Runs[0]
	if run.Spans != 2 || run.Open != 2 {
		t.Fatalf("spans=%d open=%d, want 2 open spans", run.Spans, run.Open)
	}
	if run.LastUS != 5000 {
		t.Fatalf("horizon = %d, want 5000 (largest elapsed offset)", run.LastUS)
	}
	st := run.Roots[0].Children[0]
	if st.Closed {
		t.Fatal("crashed span reported closed")
	}
	if got := st.Duration(run.LastUS); got != 4990*time.Microsecond {
		t.Fatalf("open span duration = %v, want 4.99ms (to horizon)", got)
	}
}

func TestFlightReplayImplicitRun(t *testing.T) {
	// Records before any run marker (an older writer) are adopted into
	// an implicit run 1.
	entries := rawRecords(t,
		TelemetryRecord{T: RecSpanStart, ID: 1, Kind: SpanStage, Name: "s"},
		TelemetryRecord{T: RecSpanEnd, ID: 1, Outcome: SpanOK, ElapsedUS: 3},
	)
	log, err := ReplayTelemetry(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Run != 1 || log.Runs[0].Spans != 1 {
		t.Fatalf("implicit run = %+v", log.Runs)
	}
}

func TestFlightReplayResumeStitching(t *testing.T) {
	// Two process runs appending to one journal (crash + resume): replay
	// groups records positionally, one RunLog per RecRun marker, and span
	// ids may repeat across runs without clashing.
	sink := &memSink{}
	r1 := NewFlightRecorder(sink, 1)
	c1 := r1.Begin(SpanCampaign, "satcell-campaign")
	s1 := c1.Child(SpanStage, "generate")
	_ = s1 // killed mid-stage: neither span ends
	r2 := NewFlightRecorder(sink, 2)
	c2 := r2.Begin(SpanCampaign, "satcell-campaign")
	s2 := c2.Child(SpanStage, "generate")
	s2.End(SpanOK, "")
	c2.End(SpanOK, "complete")

	log, err := ReplayTelemetry(sink.entries())
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(log.Runs))
	}
	if log.Runs[0].Run != 1 || log.Runs[1].Run != 2 {
		t.Fatalf("run numbers = %d,%d want 1,2", log.Runs[0].Run, log.Runs[1].Run)
	}
	if log.Runs[0].Open != 2 || log.Runs[1].Open != 0 {
		t.Fatalf("open = %d,%d: crash evidence must stay in run 1 only",
			log.Runs[0].Open, log.Runs[1].Open)
	}
	if log.Spans() != 4 || log.Open() != 2 {
		t.Fatalf("totals = %d spans %d open, want 4/2", log.Spans(), log.Open())
	}
}

func TestFlightReplayConsistencyErrors(t *testing.T) {
	cases := []struct {
		name string
		recs []TelemetryRecord
		want string
	}{
		{"start without id",
			[]TelemetryRecord{{T: RecSpanStart, Kind: SpanStage}},
			"span-start without id"},
		{"started twice",
			[]TelemetryRecord{
				{T: RecSpanStart, ID: 1, Kind: SpanStage},
				{T: RecSpanStart, ID: 1, Kind: SpanStage}},
			"started twice"},
		{"unknown parent",
			[]TelemetryRecord{{T: RecSpanStart, ID: 2, Parent: 7, Kind: SpanUnit}},
			"unknown parent 7"},
		{"end for unknown span",
			[]TelemetryRecord{{T: RecSpanEnd, ID: 9, Outcome: SpanOK}},
			"unknown span 9"},
		{"ended twice",
			[]TelemetryRecord{
				{T: RecSpanStart, ID: 1, Kind: SpanStage},
				{T: RecSpanEnd, ID: 1, Outcome: SpanOK},
				{T: RecSpanEnd, ID: 1, Outcome: SpanOK}},
			"ended twice"},
		{"end without outcome",
			[]TelemetryRecord{
				{T: RecSpanStart, ID: 1, Kind: SpanStage},
				{T: RecSpanEnd, ID: 1}},
			"without an outcome"},
		{"end before start",
			[]TelemetryRecord{
				{T: RecSpanStart, ID: 1, Kind: SpanStage, ElapsedUS: 100},
				{T: RecSpanEnd, ID: 1, Outcome: SpanOK, ElapsedUS: 50}},
			"before its start"},
		{"unknown record type",
			[]TelemetryRecord{{T: "bogus"}},
			`unknown record type "bogus"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReplayTelemetry(rawRecords(t, tc.recs...))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
	// Malformed JSON fails with the entry number.
	if _, err := ReplayTelemetry([]json.RawMessage{json.RawMessage("not-json")}); err == nil ||
		!strings.Contains(err.Error(), "entry 1") {
		t.Fatalf("malformed entry error = %v", err)
	}
}

func TestFlightNilSafety(t *testing.T) {
	// The whole recorder API must be a usable no-op on nil, the same
	// contract the registry and tracer honour: instrumented code carries
	// no conditionals.
	if NewFlightRecorder(nil, 1) != nil {
		t.Fatal("nil sink must yield a nil recorder")
	}
	var r *FlightRecorder
	if r.Run() != 0 || r.Elapsed() != 0 || r.Err() != nil {
		t.Fatal("nil recorder getters must read zero")
	}
	r.RecordMetrics(map[string]any{"x": 1})
	r.RecordPostmortem("generate", 1, "dir", "reason")
	s := r.Begin(SpanCampaign, "c")
	if s != nil {
		t.Fatal("nil recorder must hand out nil spans")
	}
	if s.ID() != 0 {
		t.Fatal("nil span ID must be 0")
	}
	if c := s.Child(SpanStage, "st"); c != nil {
		t.Fatal("nil span must yield nil children")
	}
	s.End(SpanOK, "no crash")
}

func TestFlightSinkErrorSticky(t *testing.T) {
	boom := errors.New("disk full")
	sink := &memSink{err: boom}
	rec := NewFlightRecorder(sink, 1)
	if rec == nil {
		t.Fatal("a failing sink is still a sink: recorder must exist")
	}
	sp := rec.Begin(SpanStage, "s")
	sp.End(SpanFailed, "x")
	if !errors.Is(rec.Err(), boom) {
		t.Fatalf("Err() = %v, want the first sink error", rec.Err())
	}
}

func TestFlightSpanEndIdempotent(t *testing.T) {
	sink := &memSink{}
	rec := NewFlightRecorder(sink, 1)
	sp := rec.Begin(SpanStage, "s")
	sp.End(SpanOK, "")
	sp.End(SpanFailed, "late defensive End must not double-append")
	log, err := ReplayTelemetry(sink.entries())
	if err != nil {
		t.Fatalf("double End corrupted the journal: %v", err)
	}
	if got := log.Runs[0].Roots[0].Outcome; got != SpanOK {
		t.Fatalf("outcome = %q, want the first End to win", got)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	// Worker pools begin/end spans concurrently; ids must stay unique
	// and the journal replayable. Run under -race this also exercises
	// the locking.
	sink := &memSink{}
	rec := NewFlightRecorder(sink, 1)
	root := rec.Begin(SpanAttempt, "generate#1")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := root.Child(SpanUnit, WorkerPrefix(w)+"unit")
				sp.End(SpanOK, "")
			}
		}(w)
	}
	wg.Wait()
	root.End(SpanOK, "")
	log, err := ReplayTelemetry(sink.entries())
	if err != nil {
		t.Fatal(err)
	}
	if log.Spans() != 401 || log.Open() != 0 {
		t.Fatalf("spans=%d open=%d, want 401/0", log.Spans(), log.Open())
	}
}

func TestFlightSamplerSnapshotsAndStops(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	sink := &memSink{}
	rec := NewFlightRecorder(sink, 1)
	reg := NewRegistry()
	reg.Counter("stream.rows_done").Add(42)
	s := StartSampler(rec, reg, 2*time.Millisecond)
	if s == nil {
		t.Fatal("sampler did not start")
	}
	time.Sleep(15 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent
	testutil.SettleGoroutines(t, baseline)

	log, err := ReplayTelemetry(sink.entries())
	if err != nil {
		t.Fatal(err)
	}
	samples := log.Runs[0].Samples
	if len(samples) == 0 {
		t.Fatal("sampler journalled no metrics snapshots")
	}
	// Stop takes a final snapshot; JSON round-trips int64 counters as
	// float64, which is what dashboards read anyway.
	last := samples[len(samples)-1]
	if got := last.Vars["stream.rows_done"]; got != 42.0 {
		t.Fatalf("final snapshot rows_done = %v, want 42", got)
	}
}

func TestFlightSamplerNilCases(t *testing.T) {
	baseline := testutil.GoroutineBaseline()
	reg := NewRegistry()
	rec := NewFlightRecorder(&memSink{}, 1)
	if StartSampler(nil, reg, time.Second) != nil {
		t.Fatal("nil recorder must not start a sampler")
	}
	if StartSampler(rec, nil, time.Second) != nil {
		t.Fatal("nil registry must not start a sampler")
	}
	if StartSampler(rec, reg, 0) != nil {
		t.Fatal("non-positive interval must not start a sampler")
	}
	var s *Sampler
	s.Stop() // no crash
	testutil.SettleGoroutines(t, baseline)
}

func TestFlightWorkerPrefix(t *testing.T) {
	if got := WorkerPrefix(3); got != "w03/" {
		t.Fatalf("WorkerPrefix(3) = %q", got)
	}
	for name, want := range map[string][2]string{
		"w07/drive001:RM": {"w07", "drive001:RM"},
		"drive001:RM":     {"", "drive001:RM"},
		"wxy/no":          {"", "wxy/no"},
		"w1/short":        {"", "w1/short"},
	} {
		w, bare := splitWorker(name)
		if w != want[0] || bare != want[1] {
			t.Errorf("splitWorker(%q) = %q,%q want %q,%q", name, w, bare, want[0], want[1])
		}
	}
}

// buildIncidentLog records a crashed-then-resumed campaign with a
// retry, a quarantine and a post-mortem pointer — the report renderer's
// worst case.
func buildIncidentLog(t *testing.T) *FlightLog {
	t.Helper()
	sink := &memSink{}
	r1 := NewFlightRecorder(sink, 1)
	c1 := r1.Begin(SpanCampaign, "satcell-campaign")
	st1 := c1.Child(SpanStage, "generate")
	at1 := st1.Child(SpanAttempt, "generate#1")
	u := at1.Child(SpanUnit, WorkerPrefix(0)+"drive000:RM")
	u.End(SpanOK, "")
	// killed here: c1/st1/at1 never end

	r2 := NewFlightRecorder(sink, 2)
	c2 := r2.Begin(SpanCampaign, "satcell-campaign")
	st2 := c2.Child(SpanStage, "generate")
	at2 := st2.Child(SpanAttempt, "generate#1")
	at2.End(SpanStalled, "no counter progress for 500ms")
	r2.RecordPostmortem("generate", 1, "run/postmortem/generate-1", "watchdog")
	at3 := st2.Child(SpanAttempt, "generate#2")
	sh := at3.Child(SpanShard, WorkerPrefix(1)+"drive001_RM_shard")
	sh.End(SpanQuarantined, "poison shard")
	at3.End(SpanOK, "")
	st2.End(SpanRetried, "ok on attempt 2/3")
	c2.End(SpanOK, "complete")
	r2.RecordMetrics(map[string]any{"stream.rows_done": 10})

	log, err := ReplayTelemetry(sink.entries())
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestFlightReportRender(t *testing.T) {
	log := buildIncidentLog(t)
	out := RenderFlightReport(log)
	for _, want := range []string{
		"flight report: 2 run(s)",
		"== run 1:",
		"== run 2:",
		"campaign/satcell-campaign",
		"stage/generate",
		"attempt/generate#1",
		"+- 1 leaf spans: 1 ok",          // run 1's unit fan-out summary
		"+- 1 leaf spans: 1 quarantined", // run 2's shard fan-out summary
		"open",                           // crash evidence tagged in the waterfall
		"no end record: in flight at exit",
		"stalled",
		"postmortem generate attempt 1 -> run/postmortem/generate-1 (watchdog)",
		"per-worker busy time",
		"w00",
		"w01",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if got := RenderFlightReport(&FlightLog{}); !strings.Contains(got, "no telemetry") {
		t.Fatalf("empty report = %q", got)
	}
}

// benchSink marshals records the way the store journal would but skips
// the fsync, isolating the recorder's CPU cost (the journal's fsync
// dominates the real append and is bounded separately).
type benchSink struct{}

func (benchSink) Append(v any) error {
	_, err := json.Marshal(v)
	return err
}

func BenchmarkFlightSpan(b *testing.B) {
	rec := NewFlightRecorder(benchSink{}, 1)
	root := rec.Begin(SpanAttempt, "bench#1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := root.Child(SpanUnit, "w00/drive000:RM")
		sp.End(SpanOK, "")
	}
}

func BenchmarkFlightSample(b *testing.B) {
	reg := NewRegistry()
	for i := 0; i < 32; i++ {
		reg.Counter(WorkerPrefix(i) + "counter").Add(int64(i))
	}
	rec := NewFlightRecorder(benchSink{}, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.RecordMetrics(reg.Snapshot())
	}
}

func TestFlightSummarize(t *testing.T) {
	log := buildIncidentLog(t)
	sum := Summarize(log)
	if len(sum.Runs) != 2 {
		t.Fatalf("summary runs = %d, want 2", len(sum.Runs))
	}
	if sum.Spans != log.Spans() || sum.Open != log.Open() {
		t.Fatalf("summary totals %d/%d != log totals %d/%d",
			sum.Spans, sum.Open, log.Spans(), log.Open())
	}
	if sum.Postmortems != 1 {
		t.Fatalf("postmortems = %d, want 1", sum.Postmortems)
	}
	for _, o := range []Outcome{SpanOK, SpanStalled, SpanQuarantined, SpanRetried} {
		if sum.Outcomes[o] == 0 {
			t.Errorf("journal-wide outcome %q not counted", o)
		}
	}
	// Run 2's stage timeline: one generate stage, two attempts, final
	// outcome retried.
	r2 := sum.Runs[1]
	if len(r2.Stages) != 1 {
		t.Fatalf("run 2 stages = %+v, want 1", r2.Stages)
	}
	st := r2.Stages[0]
	if st.Stage != "generate" || st.Attempts != 2 || st.Outcome != SpanRetried || st.Open {
		t.Fatalf("stage summary = %+v", st)
	}
	if r2.Samples != 1 {
		t.Fatalf("run 2 samples = %d, want 1", r2.Samples)
	}
	// The summary is the -report-json payload: it must marshal.
	if _, err := json.Marshal(sum); err != nil {
		t.Fatalf("summary not marshalable: %v", err)
	}
}
