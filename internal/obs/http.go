package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the runtime introspection endpoint (-debug-addr on
// mpshell and drivegen). It serves:
//
//	/debug/vars     expvar-style JSON snapshot of the metrics registry
//	/debug/metrics  the same snapshot in Prometheus text exposition format
//	/debug/events   the event ring as JSONL (the -events export format)
//	/debug/health   component-provided health/status values as JSON
//	/debug/pprof/   the standard net/http/pprof profile family
//
// Everything is read-only; hitting the endpoint observes the process
// without perturbing the emulation clock.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts the endpoint on addr ("127.0.0.1:0" for an
// ephemeral port). reg and tr may be nil (the routes then serve empty
// documents); health maps a status name to a snapshot function
// evaluated per request.
func ServeDebug(addr string, reg *Registry, tr *Tracer, health map[string]func() any) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		tr.WriteJSONL(w)
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		out := make(map[string]any, len(health))
		for name, fn := range health {
			out[name] = fn()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go d.srv.Serve(ln)
	return d, nil
}

// Addr returns the endpoint's bound address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the endpoint.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}
