// Package vsession runs a complete measurement session — shaped paths,
// fault windows, a bulk download and an RTT prober — entirely in
// virtual time on the discrete-event emulator, as fast as the CPU can
// drain the event heap. It is the -vtime driver behind mpshell and the
// campaign's vsession stage.
//
// Fidelity caveat: a virtual session replays the *model* stack (emu
// links + simulated TCP/MPTCP/UDP), not the live relay stack. Real
// sockets carry wall-clock deadlines inside the kernel, so they cannot
// be driven by a vclock.SimClock; what virtual mode buys instead is a
// bit-exact, repeatable session — the same seed always yields the same
// per-second series, byte for byte — which is exactly what the live
// path can never promise (Hypatia makes the same trade for LEO
// constellation studies). Fault windows map onto the channel: a
// blackout or component-restart window forces the path into outage
// (zero rate), approximating the relay's fault gate.
package vsession

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"satcell/internal/channel"
	"satcell/internal/emu"
	"satcell/internal/faults"
	"satcell/internal/mptcp"
	"satcell/internal/netem"
	"satcell/internal/tcp"
	"satcell/internal/udp"
)

// traceStep is the sampling granularity when freezing a netem.Shape
// (plus its fault schedule) into a channel trace for the emulator.
// Fault-window edges land on this grid.
const traceStep = 100 * time.Millisecond

// Flow numbering inside the session's muxes: data subflows start at
// flowData (one per path, flowData+i), the prober uses flowPing on the
// primary path.
const (
	flowData = 1
	flowPing = 100
)

// PathSpec declares one emulated path of the session.
type PathSpec struct {
	// Name labels the path in summaries ("starlink", "cell", ...).
	Name string
	// Down and Up shape the two directions (netem semantics: nil
	// functions default to 100 Mbps / no delay / no loss).
	Down, Up netem.Shape
	// Faults, when non-nil, forces the path into outage during every
	// blackout and component-restart window.
	Faults *faults.Schedule
	// QueueBytes is the droptail buffer per direction (0 = emu default).
	QueueBytes int
}

// Config parameterises one virtual session.
type Config struct {
	// Paths is the emulated path set: one entry runs a plain TCP
	// download, two or more run an MPTCP connection with one subflow
	// per path. At least one path is required.
	Paths []PathSpec
	// Duration is the virtual session length (default 30s, rounded up
	// to a whole second so the per-second series is complete).
	Duration time.Duration
	// Seed drives every stochastic choice (loss gates); same seed,
	// same series.
	Seed int64
	// PingInterval spaces the UDP RTT probes (default 200ms).
	PingInterval time.Duration
	// RcvBuf is the transport receive buffer (0 = transport default).
	RcvBuf int
	// Coupled enables LIA coupled congestion control across MPTCP
	// subflows (ignored for single-path sessions).
	Coupled bool
}

func (c *Config) defaults() {
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if r := c.Duration % time.Second; r != 0 {
		c.Duration += time.Second - r
	}
	if c.PingInterval <= 0 {
		c.PingInterval = 200 * time.Millisecond
	}
}

// Second is one row of the per-second series.
type Second struct {
	// T is the second index, 1-based: row T covers (T-1)s .. Ts.
	T int
	// Mbps is the goodput delivered during the second.
	Mbps float64
	// RTTms is the mean RTT of probes answered during the second, or
	// -1 when no probe came back.
	RTTms float64
	// Probes and Lost count RTT probes sent during the second and how
	// many of the probes sent so far are still unanswered.
	Probes, Lost int64
	// DownFrac is the fraction of the second the paths spent in a
	// fault window, averaged across paths.
	DownFrac float64
}

// Result is the outcome of one virtual session.
type Result struct {
	// Seconds is the per-second series, rows 1..Duration.
	Seconds []Second
	// Bytes is the total goodput delivered.
	Bytes int64
	// MeanMbps is the session-mean goodput.
	MeanMbps float64
	// MeanRTTms is the mean over all answered probes (-1 if none).
	MeanRTTms float64
	// Probes and Lost total the prober's counters.
	Probes, Lost int64
	// Duration is the virtual session length.
	Duration time.Duration
	// Digest is the sha256 of CSV(): two runs replayed the same
	// session iff their digests match.
	Digest string
}

// CSV renders the per-second series deterministically; the digest is
// computed over exactly these bytes.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("t,mbps,rtt_ms,probes,lost,down_frac\n")
	for _, s := range r.Seconds {
		fmt.Fprintf(&b, "%d,%.4f,%.2f,%d,%d,%.3f\n",
			s.T, s.Mbps, s.RTTms, s.Probes, s.Lost, s.DownFrac)
	}
	return b.String()
}

// Summary renders a one-line human summary.
func (r *Result) Summary() string {
	return fmt.Sprintf("%ds virtual: %.2f Mbps mean, rtt %.1f ms, %d/%d probes lost, digest %s",
		int(r.Duration/time.Second), r.MeanMbps, r.MeanRTTms, r.Lost, r.Probes, r.Digest[:12])
}

// downAt reports whether the path's fault schedule has it down at t.
func (p *PathSpec) downAt(t time.Duration) bool {
	return p.Faults != nil && (p.Faults.BlackoutAt(t) || p.Faults.ComponentDownAt(t))
}

// Shape accessors mirroring netem's unexported defaults, so a partially
// specified Shape means the same thing here and in the live relays.
func rateAt(s netem.Shape, t time.Duration) float64 {
	if s.RateMbps == nil {
		return 100
	}
	return s.RateMbps(t)
}

func delayAt(s netem.Shape, t time.Duration) time.Duration {
	if s.Delay == nil {
		return 0
	}
	return s.Delay(t)
}

func lossAt(s netem.Shape, t time.Duration) float64 {
	if s.LossProb == nil {
		return 0
	}
	return s.LossProb(t)
}

// buildTrace freezes a PathSpec into a channel trace on the traceStep
// grid: the emulator replays traces, so the shape functions (and the
// fault mask) are sampled once up front. Sampling is what makes the
// session hermetic — every stochastic input is fixed before the first
// event fires.
func buildTrace(spec PathSpec, duration time.Duration) *channel.Trace {
	tr := &channel.Trace{Network: channel.NetworkID("vsession:" + spec.Name)}
	for t := time.Duration(0); t <= duration; t += traceStep {
		s := channel.Sample{
			At:       t,
			DownMbps: rateAt(spec.Down, t),
			UpMbps:   rateAt(spec.Up, t),
			RTT:      delayAt(spec.Down, t) + delayAt(spec.Up, t),
			LossDown: lossAt(spec.Down, t),
			LossUp:   lossAt(spec.Up, t),
		}
		if spec.downAt(t) {
			s.DownMbps, s.UpMbps = 0, 0
			s.LossDown, s.LossUp = 1, 1
			s.Outage = true
		}
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}

// downFrac returns the fraction of [from, to) the spec spends in a
// fault window, on the trace grid.
func downFrac(specs []PathSpec, from, to time.Duration) float64 {
	if len(specs) == 0 {
		return 0
	}
	var sum float64
	for _, spec := range specs {
		var down, total int
		for t := from; t < to; t += traceStep {
			total++
			if spec.downAt(t) {
				down++
			}
		}
		if total > 0 {
			sum += float64(down) / float64(total)
		}
	}
	return sum / float64(len(specs))
}

// transport abstracts the single-path and multipath downloads.
type transport interface {
	Start()
	Stop()
	BytesDelivered() int64
}

type tcpTransport struct{ c *tcp.Conn }

func (t tcpTransport) Start()                { t.c.Start() }
func (t tcpTransport) Stop()                 { t.c.Stop() }
func (t tcpTransport) BytesDelivered() int64 { return t.c.Stats().BytesDelivered }

// Run executes the session and returns its per-second series. The only
// wall time spent is the CPU time to drain the event heap.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Paths) == 0 {
		return nil, fmt.Errorf("vsession: at least one path required")
	}
	cfg.defaults()

	eng := emu.NewEngine()
	dps := make([]*emu.DuplexPath, len(cfg.Paths))
	for i, spec := range cfg.Paths {
		tr := buildTrace(spec, cfg.Duration)
		dps[i] = emu.NewDuplexPath(eng, tr, emu.PathConfig{
			QueueBytes: spec.QueueBytes,
			Seed:       cfg.Seed + int64(i)*101,
		})
	}

	var conn transport
	if len(dps) == 1 {
		conn = tcpTransport{tcp.NewDownload(eng, dps[0], flowData, tcp.Config{RcvBuf: cfg.RcvBuf})}
	} else {
		conn = mptcp.NewConn(eng, dps, flowData, mptcp.Config{
			RcvBuf:  cfg.RcvBuf,
			Coupled: cfg.Coupled,
		})
	}
	pinger := udp.NewPinger(eng, dps[0], flowPing, cfg.PingInterval)

	res := &Result{Duration: cfg.Duration}
	seconds := int(cfg.Duration / time.Second)
	res.Seconds = make([]Second, 0, seconds)

	var prevBytes int64
	var prevSent, prevRTTs int
	for s := 1; s <= seconds; s++ {
		sec := s
		eng.Schedule(time.Duration(sec)*time.Second, func() {
			bytes := conn.BytesDelivered()
			st := pinger.Stats()
			row := Second{
				T:        sec,
				Mbps:     float64(bytes-prevBytes) * 8 / 1e6,
				RTTms:    -1,
				Probes:   st.Sent - int64(prevSent),
				Lost:     st.Sent - st.Received,
				DownFrac: downFrac(cfg.Paths, time.Duration(sec-1)*time.Second, time.Duration(sec)*time.Second),
			}
			if fresh := st.RTTs[prevRTTs:]; len(fresh) > 0 {
				var sum time.Duration
				for _, rtt := range fresh {
					sum += rtt
				}
				row.RTTms = float64(sum) / float64(len(fresh)) / float64(time.Millisecond)
			}
			prevBytes = bytes
			prevSent = int(st.Sent)
			prevRTTs = len(st.RTTs)
			res.Seconds = append(res.Seconds, row)
		})
	}

	conn.Start()
	pinger.Start()
	eng.RunUntil(cfg.Duration)
	pinger.Stop()
	conn.Stop()

	res.Bytes = conn.BytesDelivered()
	res.MeanMbps = float64(res.Bytes) * 8 / 1e6 / cfg.Duration.Seconds()
	st := pinger.Stats()
	res.Probes, res.Lost = st.Sent, st.Sent-st.Received
	res.MeanRTTms = -1
	if len(st.RTTs) > 0 {
		var sum time.Duration
		for _, rtt := range st.RTTs {
			sum += rtt
		}
		res.MeanRTTms = float64(sum) / float64(len(st.RTTs)) / float64(time.Millisecond)
	}
	h := sha256.Sum256([]byte(res.CSV()))
	res.Digest = hex.EncodeToString(h[:])
	return res, nil
}
