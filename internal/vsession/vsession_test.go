package vsession

import (
	"strings"
	"testing"
	"time"

	"satcell/internal/faults"
	"satcell/internal/netem"
)

func faultedConfig() Config {
	sched := &faults.Schedule{
		Blackouts: []faults.Window{{Start: 5 * time.Second, Dur: 2 * time.Second}},
		Restarts:  []faults.Window{{Start: 12 * time.Second, Dur: 1 * time.Second}},
	}
	return Config{
		Paths: []PathSpec{{
			Name:   "leo",
			Down:   netem.ConstantShape(20, 25*time.Millisecond, 0.001),
			Up:     netem.ConstantShape(5, 25*time.Millisecond, 0.001),
			Faults: sched,
		}},
		Duration: 30 * time.Second,
		Seed:     42,
	}
}

// The tentpole acceptance: a full session with fault windows completes
// in well under a second of wall time, and three runs produce
// byte-identical per-second series (same digest, same CSV).
func TestRunDeterministicAcrossRepeats(t *testing.T) {
	start := time.Now()
	first, err := Run(faultedConfig())
	if err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > time.Second {
		t.Fatalf("30s virtual session took %v wall, want < 1s", wall)
	}
	for i := 0; i < 2; i++ {
		again, err := Run(faultedConfig())
		if err != nil {
			t.Fatal(err)
		}
		if again.Digest != first.Digest {
			t.Fatalf("run %d digest %s != first %s\nfirst:\n%s\nagain:\n%s",
				i+2, again.Digest, first.Digest, first.CSV(), again.CSV())
		}
		if again.CSV() != first.CSV() {
			t.Fatalf("run %d CSV differs with equal digests (hash collision?)", i+2)
		}
	}
	if len(first.Seconds) != 30 {
		t.Fatalf("got %d rows, want 30", len(first.Seconds))
	}
	if first.Bytes == 0 {
		t.Fatal("session delivered no bytes")
	}
}

// A different seed must replay a different session — the digest is a
// session identity, not a constant.
func TestRunSeedChangesDigest(t *testing.T) {
	a, err := Run(faultedConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := faultedConfig()
	cfg.Seed = 43
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatalf("seeds 42 and 43 produced the same digest %s", a.Digest)
	}
}

// Fault windows must bite: the blackout seconds carry (near) zero
// goodput and a DownFrac of 1, while clear seconds flow.
func TestRunBlackoutStallsGoodput(t *testing.T) {
	res, err := Run(faultedConfig())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[int]Second{}
	for _, s := range res.Seconds {
		rows[s.T] = s
	}
	// Second 7 covers 6s..7s, fully inside the 5s..7s blackout.
	if got := rows[7].DownFrac; got < 0.99 {
		t.Fatalf("second 7 DownFrac = %.3f, want ~1 (blackout 5s..7s)", got)
	}
	if rows[7].Mbps > 1 {
		t.Fatalf("second 7 goodput %.2f Mbps during blackout, want ~0", rows[7].Mbps)
	}
	// Second 13 covers 12s..13s, inside the restart window.
	if got := rows[13].DownFrac; got < 0.99 {
		t.Fatalf("second 13 DownFrac = %.3f, want ~1 (restart 12s..13s)", got)
	}
	// Steady state well clear of both windows must actually flow.
	if rows[25].Mbps < 5 {
		t.Fatalf("second 25 goodput %.2f Mbps in the clear, want > 5", rows[25].Mbps)
	}
	if rows[25].DownFrac != 0 {
		t.Fatalf("second 25 DownFrac = %.3f, want 0", rows[25].DownFrac)
	}
}

// MPTCP replay: two paths with disjoint fault windows run an MPTCP
// session that is deterministic across runs and outperforms the faulty
// single path, because the scheduler shifts load to the surviving
// subflow during each window.
func TestRunMPTCPReplayDeterministic(t *testing.T) {
	two := func() Config {
		return Config{
			Paths: []PathSpec{
				{
					Name:   "leo",
					Down:   netem.ConstantShape(20, 25*time.Millisecond, 0.001),
					Up:     netem.ConstantShape(5, 25*time.Millisecond, 0.001),
					Faults: &faults.Schedule{Blackouts: []faults.Window{{Start: 5 * time.Second, Dur: 3 * time.Second}}},
				},
				{
					Name: "cell",
					Down: netem.ConstantShape(10, 40*time.Millisecond, 0.002),
					Up:   netem.ConstantShape(3, 40*time.Millisecond, 0.002),
				},
			},
			Duration: 20 * time.Second,
			Seed:     7,
		}
	}
	a, err := Run(two())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(two())
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("MPTCP replay diverged:\n%s\nvs\n%s", a.CSV(), b.CSV())
	}
	rows := map[int]Second{}
	for _, s := range a.Seconds {
		rows[s.T] = s
	}
	// During the leo blackout (second 7 covers 6s..7s) the cell subflow
	// keeps the connection moving.
	if rows[7].Mbps < 1 {
		t.Fatalf("second 7 goodput %.2f Mbps; cell subflow should carry through the leo blackout", rows[7].Mbps)
	}
	// DownFrac averages across paths: one of two paths down = 0.5.
	if got := rows[7].DownFrac; got < 0.49 || got > 0.51 {
		t.Fatalf("second 7 DownFrac = %.3f, want 0.5", got)
	}
}

func TestRunRequiresAPath(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("Run with no paths succeeded")
	}
}

func TestCSVShape(t *testing.T) {
	cfg := faultedConfig()
	cfg.Duration = 3 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(res.CSV(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines, want header + 3 rows:\n%s", len(lines), res.CSV())
	}
	if lines[0] != "t,mbps,rtt_ms,probes,lost,down_frac" {
		t.Fatalf("unexpected header %q", lines[0])
	}
}
