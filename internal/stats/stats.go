// Package stats provides the small statistical toolkit used throughout
// satcell: descriptive statistics, empirical CDFs, histograms, box-plot
// summaries, time-series bucketing and a handful of deterministic random
// processes (lognormal draws, Gilbert-Elliott loss chains) used by the
// channel models.
//
// Everything in this package is purely computational and deterministic
// given its inputs; random processes take an explicit *rand.Rand so that
// experiments are reproducible from a seed.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot operate on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// sortedCopy returns xs sorted ascending without mutating the input.
// It is the single copy-and-sort site shared by Quantile, Summarize,
// Box and NewCDF; callers needing several quantile-family statistics
// of one sample should build a CDF once and query it, rather than
// paying a fresh copy+sort per call.
func sortedCopy(xs []float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks (the same rule as numpy's default).
// It returns 0 for an empty sample. The input need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return quantileSorted(sortedCopy(xs), q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary is a compact descriptive-statistics record for one sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary of xs in a single pass over the sorted data.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return summarySorted(sortedCopy(xs), Mean(xs), StdDev(xs))
}

func summarySorted(sorted []float64, mean, std float64) Summary {
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		P25:    quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		P75:    quantileSorted(sorted, 0.75),
		P90:    quantileSorted(sorted, 0.90),
		P95:    quantileSorted(sorted, 0.95),
		Max:    sorted[len(sorted)-1],
	}
}

// BoxStats is the five-number summary drawn by a box plot, with whiskers
// at the most extreme points within 1.5×IQR of the quartiles (Tukey).
type BoxStats struct {
	Mean        float64
	Q1          float64
	Median      float64
	Q3          float64
	WhiskerLow  float64
	WhiskerHigh float64
	Outliers    int
}

// Box computes Tukey box-plot statistics for xs.
func Box(xs []float64) BoxStats {
	if len(xs) == 0 {
		return BoxStats{}
	}
	return boxSorted(sortedCopy(xs), Mean(xs))
}

func boxSorted(sorted []float64, mean float64) BoxStats {
	b := BoxStats{
		Mean:   mean,
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLow = b.Q3
	b.WhiskerHigh = b.Q1
	for _, x := range sorted {
		if x < loFence || x > hiFence {
			b.Outliers++
			continue
		}
		if x < b.WhiskerLow {
			b.WhiskerLow = x
		}
		if x > b.WhiskerHigh {
			b.WhiskerHigh = x
		}
	}
	return b
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied. Beyond
// plotting, a CDF doubles as a sorted-once view of the sample: Median,
// Quantile, Box and Summary all reuse the same sorted backing instead
// of re-copying and re-sorting per call.
func NewCDF(xs []float64) *CDF {
	return &CDF{sorted: sortedCopy(xs)}
}

// N returns the number of underlying samples.
func (c *CDF) N() int { return len(c.sorted) }

// Eval returns P(X <= x).
func (c *CDF) Eval(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the underlying sample.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	return quantileSorted(c.sorted, q)
}

// Median returns the 50th percentile of the underlying sample.
func (c *CDF) Median() float64 { return c.Quantile(0.5) }

// Box computes Tukey box-plot statistics over the underlying sample,
// reusing the already-sorted backing.
func (c *CDF) Box() BoxStats {
	if len(c.sorted) == 0 {
		return BoxStats{}
	}
	return boxSorted(c.sorted, Mean(c.sorted))
}

// Summary computes descriptive statistics over the underlying sample,
// reusing the already-sorted backing.
func (c *CDF) Summary() Summary {
	if len(c.sorted) == 0 {
		return Summary{}
	}
	return summarySorted(c.sorted, Mean(c.sorted), StdDev(c.sorted))
}

// Points returns n (x, F(x)) pairs evenly spaced in probability, suitable
// for plotting the CDF curve.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if n < 2 || len(c.sorted) == 0 {
		return nil, nil
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		ps[i] = p
		xs[i] = quantileSorted(c.sorted, p)
	}
	return xs, ps
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// Total returns the number of observations added, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Welford is an online mean/variance accumulator (Welford's algorithm).
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations recorded.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
