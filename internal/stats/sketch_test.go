package stats

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randomSamples draws n samples with repeated values and signed zeros
// mixed in, so the run representation is actually exercised.
func randomSamples(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(10) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = math.Copysign(0, -1) // -0.0 must normalize
		case 2:
			out[i] = float64(rng.Intn(5)) // force duplicate runs
		default:
			out[i] = rng.NormFloat64() * 50
		}
	}
	return out
}

func sketchOf(vs []float64) *Sketch {
	s := NewSketch()
	s.AddSlice(vs)
	return s
}

// equalSketch compares two sketches structurally (runs + counts).
func equalSketch(t *testing.T, label string, a, b *Sketch) {
	t.Helper()
	a.compact()
	b.compact()
	if a.n != b.n {
		t.Fatalf("%s: n %d != %d", label, a.n, b.n)
	}
	if !reflect.DeepEqual(a.vals, b.vals) || !reflect.DeepEqual(a.counts, b.counts) {
		t.Fatalf("%s: run representation differs", label)
	}
}

// TestSketchMergeLaws property-tests the merge algebra the streaming
// analyzer's exactness argument rests on: identity, commutativity and
// associativity must hold *structurally* (identical runs), so every
// derived statistic is bit-identical under any merge tree.
func TestSketchMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		xs := randomSamples(rng, rng.Intn(200))
		ys := randomSamples(rng, rng.Intn(200))
		zs := randomSamples(rng, rng.Intn(200))

		// Identity: s ⊕ empty == s.
		id := sketchOf(xs)
		id.Merge(NewSketch())
		equalSketch(t, "identity", id, sketchOf(xs))

		// Commutativity: x ⊕ y == y ⊕ x.
		xy := sketchOf(xs)
		xy.Merge(sketchOf(ys))
		yx := sketchOf(ys)
		yx.Merge(sketchOf(xs))
		equalSketch(t, "commutativity", xy, yx)

		// Associativity: (x ⊕ y) ⊕ z == x ⊕ (y ⊕ z).
		left := sketchOf(xs)
		left.Merge(sketchOf(ys))
		left.Merge(sketchOf(zs))
		right := sketchOf(ys)
		right.Merge(sketchOf(zs))
		rightTotal := sketchOf(xs)
		rightTotal.Merge(right)
		equalSketch(t, "associativity", left, rightTotal)

		// Partition invariance: merging per-element singletons in a
		// shuffled order reproduces the bulk sketch exactly.
		all := append(append(append([]float64(nil), xs...), ys...), zs...)
		perm := rng.Perm(len(all))
		shuffled := NewSketch()
		for _, i := range perm {
			shuffled.Add(all[i])
		}
		equalSketch(t, "partition invariance", shuffled, sketchOf(all))
	}
}

// TestSketchMatchesCDF pins every Sketch statistic against the
// slice-based stats implementations it replicates.
func TestSketchMatchesCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		xs := randomSamples(rng, 1+rng.Intn(300))
		s := sketchOf(xs)
		c := NewCDF(xs)
		if int64(c.N()) != s.N() {
			t.Fatalf("N: %d != %d", s.N(), c.N())
		}
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			if got, want := s.Quantile(q), c.Quantile(q); got != want {
				t.Fatalf("Quantile(%g): %v != %v", q, got, want)
			}
		}
		sx, sp := s.Points(101)
		cx, cp := c.Points(101)
		if !reflect.DeepEqual(sx, cx) || !reflect.DeepEqual(sp, cp) {
			t.Fatalf("Points(101) differ")
		}
		// Box replicates the fences/whiskers/outlier logic; the mean is
		// canonical (ascending-run order) so compare it to the sorted sum.
		sb, cb := s.Box(), c.Box()
		if sb.Q1 != cb.Q1 || sb.Median != cb.Median || sb.Q3 != cb.Q3 ||
			sb.WhiskerLow != cb.WhiskerLow || sb.WhiskerHigh != cb.WhiskerHigh ||
			sb.Outliers != cb.Outliers {
			t.Fatalf("Box: %+v != %+v", sb, cb)
		}
		if math.Abs(sb.Mean-cb.Mean) > 1e-9*(1+math.Abs(cb.Mean)) {
			t.Fatalf("Box mean: %v vs %v", sb.Mean, cb.Mean)
		}
		if got, want := s.Min(), Min(xs); got != want {
			t.Fatalf("Min: %v != %v", got, want)
		}
		if got, want := s.Max(), Max(xs); got != want {
			t.Fatalf("Max: %v != %v", got, want)
		}
		if got, want := s.Mean(), Mean(xs); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("Mean: %v vs %v", got, want)
		}
	}
}

func TestSketchEmptyAndSingle(t *testing.T) {
	e := NewSketch()
	if e.Mean() != 0 || e.Median() != 0 || e.Sum() != 0 || e.Min() != 0 || e.Max() != 0 {
		t.Fatal("empty sketch statistics must be 0")
	}
	if xs, ps := e.Points(101); xs != nil || ps != nil {
		t.Fatal("empty sketch Points must be nil")
	}
	one := sketchOf([]float64{3.5})
	for _, q := range []float64{0, 0.5, 1} {
		if one.Quantile(q) != 3.5 {
			t.Fatalf("single-sample quantile(%g) = %v", q, one.Quantile(q))
		}
	}
}

func TestSketchAddN(t *testing.T) {
	a := NewSketch()
	a.AddN(2, 3)
	a.AddN(1, 1)
	a.AddN(2, 0) // no-op
	b := sketchOf([]float64{2, 2, 1, 2})
	equalSketch(t, "AddN", a, b)
}

// TestMomentsMergeLaws checks the exact laws on Count/Min/Max and the
// documented up-to-rounding laws on Sum.
func TestMomentsMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	acc := func(vs []float64) Moments {
		var m Moments
		for _, v := range vs {
			m.Add(v)
		}
		return m
	}
	for trial := 0; trial < 50; trial++ {
		xs := randomSamples(rng, rng.Intn(100))
		ys := randomSamples(rng, rng.Intn(100))
		zs := randomSamples(rng, rng.Intn(100))

		id := acc(xs)
		id.Merge(Moments{})
		if id != acc(xs) {
			t.Fatal("Moments identity violated")
		}

		xy := acc(xs)
		xy.Merge(acc(ys))
		yx := acc(ys)
		yx.Merge(acc(xs))
		left := acc(xs)
		left.Merge(acc(ys))
		left.Merge(acc(zs))
		right := acc(ys)
		right.Merge(acc(zs))
		rightTotal := acc(xs)
		rightTotal.Merge(right)
		for _, pair := range [][2]Moments{{xy, yx}, {left, rightTotal}} {
			a, b := pair[0], pair[1]
			if a.Count != b.Count || a.MinV != b.MinV || a.MaxV != b.MaxV {
				t.Fatalf("Moments exact laws violated: %+v vs %+v", a, b)
			}
			if math.Abs(a.Sum-b.Sum) > 1e-9*(1+math.Abs(b.Sum)) {
				t.Fatalf("Moments sum drifted: %v vs %v", a.Sum, b.Sum)
			}
		}
	}
}

// TestHistogramMergeLaws checks the integer-count merge algebra and the
// geometry guard.
func TestHistogramMergeLaws(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	build := func(vs []float64) *Histogram {
		h := NewHistogram(-100, 100, 20)
		for _, v := range vs {
			h.Add(v)
		}
		return h
	}
	hEq := func(a, b *Histogram) bool {
		return a.Under == b.Under && a.Over == b.Over && a.total == b.total &&
			reflect.DeepEqual(a.Counts, b.Counts)
	}
	for trial := 0; trial < 30; trial++ {
		xs := randomSamples(rng, rng.Intn(200))
		ys := randomSamples(rng, rng.Intn(200))
		zs := randomSamples(rng, rng.Intn(200))

		id := build(xs)
		if err := id.Merge(NewHistogram(-100, 100, 20)); err != nil {
			t.Fatal(err)
		}
		if !hEq(id, build(xs)) {
			t.Fatal("histogram identity violated")
		}

		xy := build(xs)
		_ = xy.Merge(build(ys))
		yx := build(ys)
		_ = yx.Merge(build(xs))
		if !hEq(xy, yx) {
			t.Fatal("histogram commutativity violated")
		}

		left := build(xs)
		_ = left.Merge(build(ys))
		_ = left.Merge(build(zs))
		right := build(ys)
		_ = right.Merge(build(zs))
		rightTotal := build(xs)
		_ = rightTotal.Merge(right)
		if !hEq(left, rightTotal) {
			t.Fatal("histogram associativity violated")
		}
	}
	if err := NewHistogram(0, 1, 4).Merge(NewHistogram(0, 2, 4)); err == nil {
		t.Fatal("geometry mismatch must refuse to merge")
	}
}
