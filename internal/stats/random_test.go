package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestLognormalMedian(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Lognormal(r, math.Log(100), 0.5)
	}
	med := Median(xs)
	if med < 95 || med > 105 {
		t.Fatalf("lognormal median = %v, want ~100", med)
	}
}

func TestLognormalMeanMedian(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	n := 50000
	var sum float64
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = LognormalMeanMedian(r, 93, 130)
		sum += xs[i]
	}
	med := Median(xs)
	mean := sum / float64(n)
	if med < 88 || med > 98 {
		t.Fatalf("median = %v, want ~93", med)
	}
	if mean < 120 || mean > 140 {
		t.Fatalf("mean = %v, want ~130", mean)
	}
	// Degenerate parameters fall back to the median.
	if got := LognormalMeanMedian(r, 50, 40); got != 50 {
		t.Fatalf("degenerate draw = %v, want 50", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestGilbertElliottStationaryLoss(t *testing.T) {
	g := &GilbertElliott{
		PGoodToBad: 0.01,
		PBadToGood: 0.09,
		LossGood:   0.001,
		LossBad:    0.2,
	}
	want := g.StationaryLoss()
	r := rand.New(rand.NewSource(3))
	n := 400000
	losses := 0
	for i := 0; i < n; i++ {
		if g.Step(r) {
			losses++
		}
	}
	got := float64(losses) / float64(n)
	if math.Abs(got-want) > 0.15*want+0.001 {
		t.Fatalf("empirical loss %v, stationary %v", got, want)
	}
}

func TestGilbertElliottForceBad(t *testing.T) {
	g := &GilbertElliott{PBadToGood: 0, LossBad: 1}
	g.ForceBad()
	if !g.Bad() {
		t.Fatal("ForceBad did not enter bad state")
	}
	r := rand.New(rand.NewSource(0))
	for i := 0; i < 10; i++ {
		if !g.Step(r) {
			t.Fatal("bad state with LossBad=1 must lose every packet")
		}
	}
}

func TestGilbertElliottZeroTransitions(t *testing.T) {
	g := &GilbertElliott{LossGood: 0.5}
	if got := g.StationaryLoss(); got != 0.5 {
		t.Fatalf("StationaryLoss = %v, want 0.5 (good-state loss)", got)
	}
}

func TestOrnsteinUhlenbeckMeanReversion(t *testing.T) {
	o := &OrnsteinUhlenbeck{Mean: 100, Theta: 0.2, Sigma: 5}
	r := rand.New(rand.NewSource(9))
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(o.Step(r))
	}
	if math.Abs(w.Mean()-100) > 2 {
		t.Fatalf("OU mean = %v, want ~100", w.Mean())
	}
	// Stationary std of OU in discrete form ~ sigma/sqrt(2*theta - theta^2).
	wantStd := 5 / math.Sqrt(2*0.2-0.04)
	if math.Abs(w.StdDev()-wantStd) > 0.2*wantStd {
		t.Fatalf("OU std = %v, want ~%v", w.StdDev(), wantStd)
	}
}

func TestOrnsteinUhlenbeckReset(t *testing.T) {
	o := &OrnsteinUhlenbeck{Mean: 100, Theta: 0.3, Sigma: 0}
	r := rand.New(rand.NewSource(1))
	o.Step(r)
	o.Reset(200)
	if o.Mean != 200 {
		t.Fatalf("Mean after reset = %v", o.Mean)
	}
	// With sigma 0 and x == mean before reset, value scales proportionally.
	if math.Abs(o.Value()-200) > 1e-9 {
		t.Fatalf("Value after reset = %v, want 200", o.Value())
	}
	// Reset on a fresh process initialises directly.
	var o2 OrnsteinUhlenbeck
	o2.Reset(50)
	if o2.Value() != 50 {
		t.Fatalf("fresh Reset value = %v", o2.Value())
	}
}

func TestTimeSeriesAddAndValues(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 1)
	ts.Add(time.Second, 2)
	ts.Add(2*time.Second, 3)
	if ts.Len() != 3 || ts.Duration() != 2*time.Second {
		t.Fatalf("Len/Duration = %d/%v", ts.Len(), ts.Duration())
	}
	vs := ts.Values()
	if vs[0] != 1 || vs[2] != 3 {
		t.Fatalf("Values = %v", vs)
	}
}

func TestTimeSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-order Add")
		}
	}()
	var ts TimeSeries
	ts.Add(time.Second, 1)
	ts.Add(0, 2)
}

func TestTimeSeriesResample(t *testing.T) {
	var ts TimeSeries
	for i := 0; i < 10; i++ {
		ts.Add(time.Duration(i)*100*time.Millisecond, float64(i))
	}
	rs := ts.Resample(500 * time.Millisecond)
	if rs.Len() != 2 {
		t.Fatalf("resampled len = %d, want 2", rs.Len())
	}
	if rs.Points[0].V != 2 { // mean of 0..4
		t.Fatalf("window0 = %v, want 2", rs.Points[0].V)
	}
	if rs.Points[1].V != 7 { // mean of 5..9
		t.Fatalf("window1 = %v, want 7", rs.Points[1].V)
	}
}

func TestTimeSeriesResampleEmptyWindows(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 10)
	ts.Add(3*time.Second, 20)
	rs := ts.Resample(time.Second)
	if rs.Len() != 4 {
		t.Fatalf("len = %d, want 4", rs.Len())
	}
	if rs.Points[1].V != 0 || rs.Points[2].V != 0 {
		t.Fatalf("empty windows should be 0: %+v", rs.Points)
	}
}

func TestTimeSeriesMovingAverage(t *testing.T) {
	var ts TimeSeries
	ts.Add(0, 0)
	ts.Add(time.Second, 10)
	ts.Add(2*time.Second, 20)
	ma := ts.MovingAverage(time.Second)
	if ma.Points[2].V != 15 { // mean of points at t=1s and t=2s
		t.Fatalf("moving average = %v, want 15", ma.Points[2].V)
	}
}

func TestBucketed(t *testing.T) {
	b := NewBucketed()
	b.Add("urban", 10)
	b.Add("urban", 20)
	b.Add("rural", 5)
	keys := b.Keys()
	if len(keys) != 2 || keys[0] != "rural" || keys[1] != "urban" {
		t.Fatalf("Keys = %v", keys)
	}
	if got := b.Summary("urban").Mean; got != 15 {
		t.Fatalf("urban mean = %v", got)
	}
	if got := len(b.Values("rural")); got != 1 {
		t.Fatalf("rural n = %d", got)
	}
}
