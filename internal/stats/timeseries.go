package stats

import (
	"fmt"
	"sort"
	"time"
)

// Point is one observation in a time series.
type Point struct {
	At time.Duration // offset from the start of the series
	V  float64
}

// TimeSeries is an ordered sequence of timestamped observations.
type TimeSeries struct {
	Points []Point
}

// Add appends an observation. Points must be added in non-decreasing
// time order; Add panics otherwise, because every producer in this
// code base is a simulator with a monotonic clock and an out-of-order
// append indicates a bug.
func (ts *TimeSeries) Add(at time.Duration, v float64) {
	if n := len(ts.Points); n > 0 && at < ts.Points[n-1].At {
		panic(fmt.Sprintf("stats: out-of-order TimeSeries.Add: %v after %v", at, ts.Points[n-1].At))
	}
	ts.Points = append(ts.Points, Point{At: at, V: v})
}

// Len returns the number of points.
func (ts *TimeSeries) Len() int { return len(ts.Points) }

// Values returns the observation values in order.
func (ts *TimeSeries) Values() []float64 {
	vs := make([]float64, len(ts.Points))
	for i, p := range ts.Points {
		vs[i] = p.V
	}
	return vs
}

// Duration returns the time span from zero to the last point.
func (ts *TimeSeries) Duration() time.Duration {
	if len(ts.Points) == 0 {
		return 0
	}
	return ts.Points[len(ts.Points)-1].At
}

// Resample buckets the series into fixed-width windows and returns one
// point per window holding the mean of the window's observations. Empty
// windows yield a zero-valued point, which matches how a throughput
// series should read (no bytes delivered = 0 Mbps).
func (ts *TimeSeries) Resample(window time.Duration) *TimeSeries {
	if window <= 0 || len(ts.Points) == 0 {
		return &TimeSeries{}
	}
	end := ts.Duration()
	n := int(end/window) + 1
	sums := make([]float64, n)
	counts := make([]int, n)
	for _, p := range ts.Points {
		i := int(p.At / window)
		if i >= n {
			i = n - 1
		}
		sums[i] += p.V
		counts[i]++
	}
	out := &TimeSeries{}
	for i := 0; i < n; i++ {
		v := 0.0
		if counts[i] > 0 {
			v = sums[i] / float64(counts[i])
		}
		out.Add(time.Duration(i)*window, v)
	}
	return out
}

// MovingAverage returns a new series where each point is the mean of the
// trailing window ending at that point.
func (ts *TimeSeries) MovingAverage(window time.Duration) *TimeSeries {
	out := &TimeSeries{}
	start := 0
	sum := 0.0
	for i, p := range ts.Points {
		sum += p.V
		for ts.Points[start].At < p.At-window {
			sum -= ts.Points[start].V
			start++
		}
		out.Add(p.At, sum/float64(i-start+1))
	}
	return out
}

// Bucketed groups float values by an arbitrary ordered key, used for
// "throughput by speed bucket" style analyses.
type Bucketed struct {
	byKey map[string][]float64
}

// NewBucketed returns an empty bucket collection.
func NewBucketed() *Bucketed {
	return &Bucketed{byKey: make(map[string][]float64)}
}

// Add records v under key.
func (b *Bucketed) Add(key string, v float64) {
	b.byKey[key] = append(b.byKey[key], v)
}

// Keys returns the bucket keys in lexicographic order.
func (b *Bucketed) Keys() []string {
	keys := make([]string, 0, len(b.byKey))
	for k := range b.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Values returns the sample recorded under key.
func (b *Bucketed) Values(key string) []float64 { return b.byKey[key] }

// Summary returns the descriptive statistics of the bucket under key.
func (b *Bucketed) Summary(key string) Summary { return Summarize(b.byKey[key]) }
