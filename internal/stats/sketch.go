package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sketch is an exact, mergeable empirical distribution: the multiset of
// added samples stored as ascending (value, count) runs. It is the
// unit of the streaming analyzer's two-tier aggregation — each shard
// worker accumulates one Sketch per tracked KPI distribution, and
// merged sketches are *canonical*: two sketches holding the same
// multiset are structurally identical no matter how the samples were
// partitioned, which order the partitions merged in, or how the merges
// were grouped. Every derived statistic (Mean, Quantile, Box, Points)
// is computed from the runs in ascending order, so it is bit-identical
// across worker counts and shard interleavings.
//
// Unlike a compressing quantile sketch (t-digest, KLL), a Sketch is
// exact: memory is O(distinct values). For the campaign's KPI
// distributions that is bounded by the campaign's measured seconds —
// far below the full record/test structures the in-memory path holds —
// and it is what makes the streaming figures bit-reproducible rather
// than approximate.
type Sketch struct {
	vals   []float64 // ascending distinct values
	counts []int64   // counts[i] > 0 is the multiplicity of vals[i]
	cum    []int64   // cum[i] = counts[0] + ... + counts[i]; built lazily
	pend   []float64 // samples added since the last compaction
	n      int64
}

// NewSketch returns an empty sketch. The zero value is also ready to use.
func NewSketch() *Sketch { return &Sketch{} }

// Add records one sample. Negative zero is normalized to positive zero:
// the two compare equal, so keeping both as distinct runs would make
// the run layout depend on insertion order and break canonicality.
func (s *Sketch) Add(v float64) {
	if v == 0 {
		v = 0 // collapses -0.0 into +0.0
	}
	s.pend = append(s.pend, v)
	s.n++
	if len(s.pend) >= 1024 && len(s.pend) >= len(s.vals)/4 {
		s.compact()
	}
}

// AddSlice records every sample of vs.
func (s *Sketch) AddSlice(vs []float64) {
	for _, v := range vs {
		s.Add(v)
	}
}

// AddN records v with multiplicity c (no-op for c <= 0).
func (s *Sketch) AddN(v float64, c int64) {
	if c <= 0 {
		return
	}
	if v == 0 {
		v = 0
	}
	s.compact()
	s.merge([]float64{v}, []int64{c})
	s.n += c
}

// compact folds the pending samples into the run representation.
func (s *Sketch) compact() {
	if len(s.pend) == 0 {
		return
	}
	sort.Float64s(s.pend)
	vals := make([]float64, 0, len(s.pend))
	counts := make([]int64, 0, len(s.pend))
	for _, v := range s.pend {
		if k := len(vals); k > 0 && vals[k-1] == v {
			counts[k-1]++
			continue
		}
		vals = append(vals, v)
		counts = append(counts, 1)
	}
	s.pend = s.pend[:0]
	s.merge(vals, counts)
}

// merge folds ascending runs (vals, counts) into the sketch's runs.
// It merges in place, reusing the run arrays' spare capacity: the
// streaming workers merge one small shard sketch into a large partial
// per shard, and rewriting fresh full-size arrays there would put the
// whole distribution on the heap twice per merge.
func (s *Sketch) merge(vals []float64, counts []int64) {
	s.cum = nil
	if len(vals) == 0 {
		return
	}
	if len(s.vals) == 0 {
		s.vals = append(s.vals[:0], vals...)
		s.counts = append(s.counts[:0], counts...)
		return
	}
	ls := len(s.vals)
	s.vals = append(s.vals, vals...)
	s.counts = append(s.counts, counts...)
	// Backward merge into the grown tail. The write cursor k stays at
	// least j+1 ahead of both read cursors (each step writes one slot
	// and consumes at least one input), so nothing unread is clobbered
	// even when vals aliases the old backing array.
	i, j, k := ls-1, len(vals)-1, len(s.vals)-1
	for j >= 0 {
		switch {
		case i >= 0 && s.vals[i] > vals[j]:
			s.vals[k], s.counts[k] = s.vals[i], s.counts[i]
			i--
		case i >= 0 && s.vals[i] == vals[j]:
			s.vals[k] = vals[j]
			s.counts[k] = s.counts[i] + counts[j]
			i--
			j--
		default:
			s.vals[k], s.counts[k] = vals[j], counts[j]
			j--
		}
		k--
	}
	// Equal values collapsed into single runs leave a gap (i, k]
	// between the untouched prefix and the merged tail; close it.
	if k > i {
		n := copy(s.vals[i+1:], s.vals[k+1:])
		copy(s.counts[i+1:], s.counts[k+1:])
		s.vals = s.vals[:i+1+n]
		s.counts = s.counts[:i+1+n]
	}
}

// Merge folds every sample of o into s. o is unchanged (its pending
// buffer may be compacted in place, which does not alter its multiset).
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.n == 0 {
		return
	}
	o.compact()
	s.compact()
	s.merge(o.vals, o.counts)
	s.n += o.n
}

// Clone returns an independent copy of s.
func (s *Sketch) Clone() *Sketch {
	s.compact()
	return &Sketch{
		vals:   append([]float64(nil), s.vals...),
		counts: append([]int64(nil), s.counts...),
		n:      s.n,
	}
}

// N returns the number of samples recorded.
func (s *Sketch) N() int64 { return s.n }

// Runs returns the number of distinct values held.
func (s *Sketch) Runs() int {
	s.compact()
	return len(s.vals)
}

// Min returns the smallest sample, or 0 when empty.
func (s *Sketch) Min() float64 {
	s.compact()
	if len(s.vals) == 0 {
		return 0
	}
	return s.vals[0]
}

// Max returns the largest sample, or 0 when empty.
func (s *Sketch) Max() float64 {
	s.compact()
	if len(s.vals) == 0 {
		return 0
	}
	return s.vals[len(s.vals)-1]
}

// Sum returns the canonical sample sum: Σ value×count over the runs in
// ascending order. Because the runs are a pure function of the
// multiset, the sum is bit-identical however the samples were
// partitioned — the property the streaming/in-memory equivalence rests
// on. (It may differ by ulps from naively summing the samples in
// insertion order; both analysis paths therefore use this form.)
func (s *Sketch) Sum() float64 {
	s.compact()
	sum := 0.0
	for i, v := range s.vals {
		sum += v * float64(s.counts[i])
	}
	return sum
}

// Mean returns Sum()/N(), or 0 when empty.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Sum() / float64(s.n)
}

// rank returns the i-th smallest sample (0-based).
func (s *Sketch) rank(i int64) float64 {
	if s.cum == nil {
		s.cum = make([]int64, len(s.counts))
		run := int64(0)
		for k, c := range s.counts {
			run += c
			s.cum[k] = run
		}
	}
	k := sort.Search(len(s.cum), func(k int) bool { return s.cum[k] > i })
	return s.vals[k]
}

// Quantile returns the q-quantile using the same linear interpolation
// between closest ranks as stats.Quantile, computed over the runs. It
// returns 0 when empty.
func (s *Sketch) Quantile(q float64) float64 {
	s.compact()
	if s.n == 0 {
		return 0
	}
	if s.n == 1 {
		return s.vals[0]
	}
	if q <= 0 {
		return s.vals[0]
	}
	if q >= 1 {
		return s.vals[len(s.vals)-1]
	}
	pos := q * float64(s.n-1)
	lo := int64(math.Floor(pos))
	frac := pos - float64(lo)
	a := s.rank(lo)
	b := s.rank(lo + 1)
	return a*(1-frac) + b*frac
}

// Median returns the 50th percentile.
func (s *Sketch) Median() float64 { return s.Quantile(0.5) }

// Box computes Tukey box-plot statistics, replicating stats.Box over
// the run representation (with the mean in canonical run order).
func (s *Sketch) Box() BoxStats {
	s.compact()
	if s.n == 0 {
		return BoxStats{}
	}
	b := BoxStats{
		Mean:   s.Mean(),
		Q1:     s.Quantile(0.25),
		Median: s.Quantile(0.5),
		Q3:     s.Quantile(0.75),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLow = b.Q3
	b.WhiskerHigh = b.Q1
	for i, v := range s.vals {
		if v < loFence || v > hiFence {
			b.Outliers += int(s.counts[i])
			continue
		}
		if v < b.WhiskerLow {
			b.WhiskerLow = v
		}
		if v > b.WhiskerHigh {
			b.WhiskerHigh = v
		}
	}
	return b
}

// Points returns n (x, F(x)) pairs evenly spaced in probability, the
// same curve CDF.Points draws.
func (s *Sketch) Points(n int) (xs, ps []float64) {
	s.compact()
	if n < 2 || s.n == 0 {
		return nil, nil
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		ps[i] = p
		xs[i] = s.Quantile(p)
	}
	return xs, ps
}

// Moments is a mergeable count/sum/min/max accumulator — the cheap
// companion to Sketch for KPIs that need no quantiles. Count, Min and
// Max merge exactly (associative and commutative); Sum is a float
// accumulation whose merge is associative/commutative only up to
// rounding, so bit-critical reductions use Sketch.Sum instead.
type Moments struct {
	Count int64
	Sum   float64
	MinV  float64
	MaxV  float64
}

// Add records one observation.
func (m *Moments) Add(v float64) {
	if m.Count == 0 || v < m.MinV {
		m.MinV = v
	}
	if m.Count == 0 || v > m.MaxV {
		m.MaxV = v
	}
	m.Count++
	m.Sum += v
}

// Merge folds o into m.
func (m *Moments) Merge(o Moments) {
	if o.Count == 0 {
		return
	}
	if m.Count == 0 {
		*m = o
		return
	}
	if o.MinV < m.MinV {
		m.MinV = o.MinV
	}
	if o.MaxV > m.MaxV {
		m.MaxV = o.MaxV
	}
	m.Count += o.Count
	m.Sum += o.Sum
}

// Mean returns Sum/Count, or 0 when empty.
func (m Moments) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Merge folds o's counts into h. The histograms must share bucket
// geometry ([Lo, Hi) and bin count); integer counts make the merge
// exactly associative and commutative.
func (h *Histogram) Merge(o *Histogram) error {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("stats: histogram merge geometry mismatch: [%g,%g)x%d vs [%g,%g)x%d",
			h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Under += o.Under
	h.Over += o.Over
	h.total += o.total
	return nil
}
