package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("Variance of single sample should be 0")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Fatalf("Min/Max/Sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Min/Max should be 0")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3.0, 2.0},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{42}, 0.9); got != 42 {
		t.Fatalf("Quantile of singleton = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Fatalf("Quantile(nil) = %v", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

// Property: for any sample, quantiles are monotone in q and bounded by
// min/max of the sample.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		return qa <= qb && qa >= Min(xs) && qb <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("bad summary: %+v", s)
	}
	if !almostEqual(s.Median, 50, 1e-9) || !almostEqual(s.P25, 25, 1e-9) || !almostEqual(s.P75, 75, 1e-9) {
		t.Fatalf("bad quartiles: %+v", s)
	}
	if !almostEqual(s.Mean, 50, 1e-9) {
		t.Fatalf("bad mean: %v", s.Mean)
	}
}

func TestBoxStats(t *testing.T) {
	// 1..12 plus one far outlier.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 100}
	b := Box(xs)
	if b.Outliers != 1 {
		t.Fatalf("Outliers = %d, want 1", b.Outliers)
	}
	if b.WhiskerHigh != 12 || b.WhiskerLow != 1 {
		t.Fatalf("whiskers = [%v, %v], want [1, 12]", b.WhiskerLow, b.WhiskerHigh)
	}
	if b.Q1 >= b.Median || b.Median >= b.Q3 {
		t.Fatalf("quartile ordering violated: %+v", b)
	}
}

func TestBoxEmpty(t *testing.T) {
	if b := Box(nil); b.Mean != 0 || b.Outliers != 0 {
		t.Fatalf("Box(nil) = %+v", b)
	}
}

func TestCDFEvalAndQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.Eval(0); got != 0 {
		t.Fatalf("Eval(0) = %v", got)
	}
	if got := c.Eval(2); got != 0.5 {
		t.Fatalf("Eval(2) = %v, want 0.5", got)
	}
	if got := c.Eval(10); got != 1 {
		t.Fatalf("Eval(10) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); !almostEqual(got, 2.5, 1e-9) {
		t.Fatalf("Quantile(0.5) = %v", got)
	}
	if c.N() != 4 {
		t.Fatalf("N = %d", c.N())
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3})
	xs, ps := c.Points(5)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("Points lengths %d/%d", len(xs), len(ps))
	}
	if ps[0] != 0 || ps[4] != 1 {
		t.Fatalf("probability endpoints %v", ps)
	}
	if !sort.Float64sAreSorted(xs) {
		t.Fatalf("CDF x-points not sorted: %v", xs)
	}
	if xs[0] != 1 || xs[4] != 5 {
		t.Fatalf("x endpoints %v", xs)
	}
}

// Property: an empirical CDF is monotone non-decreasing.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		c := NewCDF(xs)
		if a > b {
			a, b = b, a
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return c.Eval(a) <= c.Eval(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin1 = %d", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Fatalf("bin4 = %d", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-9) {
		t.Fatalf("BinCenter(0) = %v", got)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		w.Add(xs[i])
	}
	if !almostEqual(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("Welford mean %v vs batch %v", w.Mean(), Mean(xs))
	}
	if !almostEqual(w.Variance(), Variance(xs), 1e-6) {
		t.Fatalf("Welford var %v vs batch %v", w.Variance(), Variance(xs))
	}
	if w.N() != 1000 {
		t.Fatalf("N = %d", w.N())
	}
}
