package stats

import (
	"math"
	"math/rand"
)

// Lognormal draws a lognormally distributed value whose underlying normal
// has the given mu and sigma (i.e. median = exp(mu)).
func Lognormal(r *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// LognormalMeanMedian draws a lognormal value parameterised by its median
// and mean (mean must be >= median). It solves for sigma from
// mean = median * exp(sigma^2/2).
func LognormalMeanMedian(r *rand.Rand, median, mean float64) float64 {
	if median <= 0 || mean <= median {
		return median
	}
	sigma := math.Sqrt(2 * math.Log(mean/median))
	return Lognormal(r, math.Log(median), sigma)
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// GilbertElliott is a two-state Markov packet-loss process. In the Good
// state packets are lost with probability LossGood; in the Bad state with
// probability LossBad. Transitions happen per step (typically per packet
// or per sample tick).
type GilbertElliott struct {
	PGoodToBad float64 // transition probability Good -> Bad per step
	PBadToGood float64 // transition probability Bad -> Good per step
	LossGood   float64
	LossBad    float64

	bad bool
}

// Step advances the chain one step and reports whether this step is a loss.
func (g *GilbertElliott) Step(r *rand.Rand) bool {
	if g.bad {
		if r.Float64() < g.PBadToGood {
			g.bad = false
		}
	} else {
		if r.Float64() < g.PGoodToBad {
			g.bad = true
		}
	}
	p := g.LossGood
	if g.bad {
		p = g.LossBad
	}
	return r.Float64() < p
}

// Bad reports whether the chain is currently in the bad state.
func (g *GilbertElliott) Bad() bool { return g.bad }

// ForceBad forces the chain into the bad state (used to model handover
// disruption bursts).
func (g *GilbertElliott) ForceBad() { g.bad = true }

// StationaryLoss returns the long-run loss probability of the chain.
func (g *GilbertElliott) StationaryLoss() float64 {
	denom := g.PGoodToBad + g.PBadToGood
	if denom == 0 {
		return g.LossGood
	}
	pBad := g.PGoodToBad / denom
	return (1-pBad)*g.LossGood + pBad*g.LossBad
}

// OrnsteinUhlenbeck is a mean-reverting random walk used to give channel
// capacity realistic short-term temporal correlation.
type OrnsteinUhlenbeck struct {
	Mean  float64 // long-run mean
	Theta float64 // mean-reversion rate per step
	Sigma float64 // per-step noise scale

	x           float64
	initialized bool
}

// Step advances the process one step and returns the new value.
func (o *OrnsteinUhlenbeck) Step(r *rand.Rand) float64 {
	if !o.initialized {
		o.x = o.Mean
		o.initialized = true
	}
	o.x += o.Theta*(o.Mean-o.x) + o.Sigma*r.NormFloat64()
	return o.x
}

// Value returns the current value without advancing the process.
func (o *OrnsteinUhlenbeck) Value() float64 {
	if !o.initialized {
		return o.Mean
	}
	return o.x
}

// Reset re-centres the process on a new mean, keeping the current
// deviation proportionally (used when the channel's base capacity shifts,
// e.g. at a satellite handover).
func (o *OrnsteinUhlenbeck) Reset(mean float64) {
	if o.initialized && o.Mean > 0 {
		o.x = mean * (o.x / o.Mean)
	} else {
		o.x = mean
		o.initialized = true
	}
	o.Mean = mean
}
