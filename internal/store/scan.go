package store

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"satcell/internal/channel"
	"satcell/internal/trace"
)

// This file is the incremental read side of the store: row-streaming
// readers and shard enumeration for consumers (the streaming analyzer)
// that must never hold a whole campaign in memory. The batch loaders in
// load.go are thin wrappers over the same scanners.

// ScanTests streams the tests.csv at path through fn in file order.
// Malformed rows follow mode (Strict aborts, Lenient skips into rep);
// an error returned by fn aborts the scan in both modes. A file with a
// header but no data rows at all is an error in both modes: a
// zero-test campaign file is a truncation artifact, not a campaign.
func ScanTests(path string, mode Mode, rep *LoadReport, fn func(TestRow) error) error {
	return ScanTestsFS(nil, path, mode, rep, fn)
}

// ScanTestsFS is ScanTests through an explicit filesystem (nil means
// the real one).
func ScanTestsFS(fsys FS, path string, mode Mode, rep *LoadReport, fn func(TestRow) error) error {
	f, err := orOS(fsys).Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	before := rep.Rows + rep.Skipped
	if err := scanTestRows(f, path, mode, rep, fn); err != nil {
		return err
	}
	if rep.Rows+rep.Skipped == before {
		return fmt.Errorf("store: %s: no data rows (header-only file)", path)
	}
	return nil
}

// ScanTrace streams one trace shard through fn in file order without
// materialising the trace. Malformed rows follow mode; an error
// returned by fn aborts the scan in both modes. rep accumulates row
// and skip counts. Like ScanTests, a header-only shard is an error in
// both modes.
func ScanTrace(path string, mode Mode, rep *LoadReport, fn func(channel.NetworkID, channel.Record) error) error {
	return ScanTraceFS(nil, path, mode, rep, fn)
}

// ScanTraceFS is ScanTrace through an explicit filesystem (nil means
// the real one).
func ScanTraceFS(fsys FS, path string, mode Mode, rep *LoadReport, fn func(channel.NetworkID, channel.Record) error) error {
	f, err := orOS(fsys).Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep.Files++
	before := rep.Rows + rep.Skipped
	// The trace scanner treats fn errors as row errors (lenient mode
	// would skip them), so consumer aborts are stashed and re-raised.
	var abort error
	wrapped := func(n channel.NetworkID, rec channel.Record) error {
		if abort != nil {
			return abort
		}
		if err := fn(n, rec); err != nil {
			abort = err
			return err
		}
		rep.Rows++
		return nil
	}
	var err2 error
	if mode == Strict {
		err2 = trace.ScanRecordsCSV(f, false, nil, wrapped)
	} else {
		err2 = trace.ScanRecordsCSV(f, true, func(line int, rowErr error) {
			if abort == nil {
				rep.note(path, line, rowErr)
			}
		}, wrapped)
	}
	if abort != nil {
		return abort
	}
	if err2 != nil {
		return fmt.Errorf("store: %s: %w", path, err2)
	}
	if rep.Rows+rep.Skipped == before {
		return fmt.Errorf("store: %s: no data rows (header-only file)", path)
	}
	return nil
}

// TraceShard locates one drive/network trace file of a dataset
// directory, recovered from its canonical ShardName.
type TraceShard struct {
	Name    string
	Drive   int
	Route   string
	Network channel.NetworkID
	// Rows echoes the manifest's data-row count for the file.
	Rows int
}

// ParseShardName inverts ShardName. Network ids may themselves contain
// underscores, so when the manifest names the campaign's networks the
// longest matching suffix wins; otherwise the split is at the last
// underscore (correct for every built-in id).
func ParseShardName(name string, networks []string) (TraceShard, bool) {
	var sh TraceShard
	base, ok := strings.CutSuffix(name, ".csv")
	if !ok {
		return sh, false
	}
	rest, ok := strings.CutPrefix(base, "drive")
	if !ok || len(rest) < 4 || rest[3] != '_' {
		return sh, false
	}
	drive, err := strconv.Atoi(rest[:3])
	if err != nil {
		return sh, false
	}
	rest = rest[4:] // "<route>_<network>"
	var route, net string
	for _, id := range networks {
		if r, ok := strings.CutSuffix(rest, "_"+id); ok && len(id) > len(net) {
			route, net = r, id
		}
	}
	if net == "" {
		i := strings.LastIndexByte(rest, '_')
		if i <= 0 || i == len(rest)-1 {
			return sh, false
		}
		route, net = rest[:i], rest[i+1:]
	}
	sh.Name = name
	sh.Drive = drive
	sh.Route = route
	sh.Network = channel.NetworkID(net)
	return sh, true
}

// ListTraceShards enumerates the manifest's trace shards in export
// order: drive-major, networks in campaign order within a drive (name
// order for manifests predating Campaign). Non-shard files (tests.csv)
// are skipped; a name that looks like a shard but does not parse is an
// error, since silently dropping it would understate the campaign.
func ListTraceShards(m *Manifest) ([]TraceShard, error) {
	var networks []string
	if m.Campaign != nil {
		networks = m.Campaign.Networks
	}
	netOrder := make(map[channel.NetworkID]int, len(networks))
	for i, id := range networks {
		netOrder[channel.NetworkID(id)] = i
	}
	shards := make([]TraceShard, 0, len(m.Files))
	for name, fi := range m.Files {
		if !strings.HasPrefix(name, "drive") || !strings.HasSuffix(name, ".csv") {
			continue
		}
		sh, ok := ParseShardName(name, networks)
		if !ok {
			return nil, fmt.Errorf("store: unparseable shard name %q in %s", name, ManifestName)
		}
		sh.Rows = fi.Rows
		shards = append(shards, sh)
	}
	sort.Slice(shards, func(i, j int) bool {
		a, b := shards[i], shards[j]
		if a.Drive != b.Drive {
			return a.Drive < b.Drive
		}
		ai, aok := netOrder[a.Network]
		bi, bok := netOrder[b.Network]
		if aok && bok && ai != bi {
			return ai < bi
		}
		if aok != bok {
			return aok // campaign networks before strangers
		}
		return a.Name < b.Name
	})
	return shards, nil
}
