package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// corruptionRNG seeds every corruption draw so the suite replays
// identically, in the style of internal/faults.
const corruptionSeed = 1

// shardNames returns the manifest's artifact names in sorted order.
func shardNames(t *testing.T, dir string) []string {
	t.Helper()
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(m.Files))
	for name := range m.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// truncateFile chops n bytes off the end of path.
func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// flipBit flips one random bit of one random byte of path.
func flipBit(t *testing.T, path string, rng *rand.Rand) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	i := rng.Intn(len(b))
	b[i] ^= 1 << uint(rng.Intn(8))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// tearRename simulates a crash between temp write and rename: a stale
// atomic-write temp file left in the directory.
func tearRename(t *testing.T, dir string) string {
	t.Helper()
	name := tmpPrefix + "shard.csv-12345"
	if err := os.WriteFile(filepath.Join(dir, name), []byte("half a shard"), 0o644); err != nil {
		t.Fatal(err)
	}
	return name
}

// problemFor returns the findings mentioning file.
func problemsFor(rep *FsckReport, file string) []Problem {
	var out []Problem
	for _, p := range rep.Problems {
		if p.File == file {
			out = append(out, p)
		}
	}
	return out
}

// TestFsckDetectsSeededCorruption seeds one instance of every
// corruption class into a verified export and checks each is flagged
// with a finding naming the damaged file.
func TestFsckDetectsSeededCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(corruptionSeed))
	dir := exportClean(t)
	names := shardNames(t, dir)
	truncated, flipped := names[0], names[1]

	truncateFile(t, filepath.Join(dir, truncated), 1+int64(rng.Intn(64)))
	flipBit(t, filepath.Join(dir, flipped), rng)
	torn := tearRename(t, dir)
	unknown := "stray.csv"
	if err := os.WriteFile(filepath.Join(dir, unknown), []byte("x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	missing := names[2]
	if err := os.Remove(filepath.Join(dir, missing)); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("fsck passed a corrupted directory")
	}
	for file, wantWord := range map[string]string{
		truncated: "bytes",
		flipped:   "checksum",
		torn:      "torn",
		unknown:   "unknown",
		missing:   "missing",
	} {
		probs := problemsFor(rep, file)
		if len(probs) == 0 {
			t.Fatalf("no finding for %s (want %q); report:\n%s", file, wantWord, rep)
		}
		if !strings.Contains(strings.ToLower(probs[0].Desc), wantWord) {
			t.Fatalf("finding for %s = %q, want mention of %q", file, probs[0].Desc, wantWord)
		}
	}
	if got := len(rep.Problems); got != 5 {
		t.Fatalf("found %d problems, want exactly 5:\n%s", got, rep)
	}
}

// TestResumeRepairsSeededCorruption corrupts a complete export three
// ways and proves a resumed export regenerates exactly the damaged
// shards, restoring the golden directory digest.
func TestResumeRepairsSeededCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(corruptionSeed))
	dir := exportClean(t)
	golden, err := DigestDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := shardNames(t, dir)

	truncateFile(t, filepath.Join(dir, names[0]), 1+int64(rng.Intn(64)))
	flipBit(t, filepath.Join(dir, names[1]), rng)
	tearRename(t, dir)
	if err := os.Remove(filepath.Join(dir, names[2])); err != nil {
		t.Fatal(err)
	}

	opts := exportOpts()
	opts.Resume = true
	stats, err := ExportDataset(dir, testDataset(), opts)
	if err != nil {
		t.Fatalf("repair resume: %v", err)
	}
	if stats.Written != 3 {
		t.Fatalf("repair rewrote %d shards, want exactly the 3 damaged ones", stats.Written)
	}
	if stats.Reused != len(names)-3 {
		t.Fatalf("repair reused %d shards, want %d", stats.Reused, len(names)-3)
	}
	got, err := DigestDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != golden {
		t.Fatalf("repaired digest %s != golden %s", got, golden)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("repaired directory fails fsck:\n%s", rep)
	}
}

// TestFsckFlagsNonMonotonicTimestamps exercises the content-level check
// that checksums alone cannot: a shard whose manifest entry was
// regenerated around out-of-order timestamps (a writer bug, not disk
// corruption).
func TestFsckFlagsNonMonotonicTimestamps(t *testing.T) {
	dir := exportClean(t)
	names := shardNames(t, dir)
	var shardName string
	for _, n := range names {
		if n != "tests.csv" {
			shardName = n
			break
		}
	}
	path := filepath.Join(dir, shardName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	lines[2], lines[3] = lines[3], lines[2] // swap two samples out of order
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Re-manifest the mangled file so only the content check can object.
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	sum, size, err := HashFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fi := m.Files[shardName]
	fi.SHA256, fi.Bytes = sum, size
	m.Files[shardName] = fi
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	probs := problemsFor(rep, shardName)
	if len(probs) == 0 || !strings.Contains(probs[0].Desc, "timestamps") {
		t.Fatalf("non-monotonic timestamps not flagged:\n%s", rep)
	}
}
