package store

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestLockContention(t *testing.T) {
	dir := t.TempDir()
	l1, err := AcquireLock(nil, dir, "holder-tool")
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	defer l1.Release()

	_, err = AcquireLock(nil, dir, "intruder")
	if err == nil {
		t.Fatalf("second acquire succeeded while the lock is held")
	}
	msg := err.Error()
	if !strings.Contains(msg, "holder-tool") {
		t.Errorf("contention error does not name the holding tool: %v", err)
	}
	if !strings.Contains(msg, fmt.Sprint(os.Getpid())) {
		t.Errorf("contention error does not name the holding pid: %v", err)
	}
}

func TestLockReleaseReacquire(t *testing.T) {
	dir := t.TempDir()
	l1, err := AcquireLock(nil, dir, "a")
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := l1.Release(); err != nil {
		t.Fatalf("double release: %v", err)
	}
	l2, err := AcquireLock(nil, dir, "b")
	if err != nil {
		t.Fatalf("re-acquire after release: %v", err)
	}
	l2.Release()
}

// TestLockStaleDeadPid plants a lockfile naming a pid that is certainly
// dead (a just-reaped child), and expects a silent takeover.
func TestLockStaleDeadPid(t *testing.T) {
	cmd := exec.Command("true")
	if err := cmd.Run(); err != nil {
		t.Skipf("cannot spawn probe child: %v", err)
	}
	deadPID := cmd.Process.Pid

	dir := t.TempDir()
	info := lockInfo{PID: deadPID, Start: time.Now().UTC().Format(time.RFC3339), Tool: "crashed-tool"}
	b, _ := json.Marshal(info)
	if err := os.WriteFile(filepath.Join(dir, LockName), append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := AcquireLock(nil, dir, "taker")
	if err != nil {
		t.Fatalf("takeover of dead pid %d failed: %v", deadPID, err)
	}
	defer l.Release()
	got, err := readLockInfo(orOS(nil), filepath.Join(dir, LockName))
	if err != nil {
		t.Fatalf("read lock after takeover: %v", err)
	}
	if got.PID != os.Getpid() || got.Tool != "taker" {
		t.Errorf("lock after takeover = %+v, want pid %d tool taker", got, os.Getpid())
	}
}

// TestLockTornContent treats an unparseable lockfile (crash mid-write)
// as stale.
func TestLockTornContent(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, LockName), []byte(`{"pid": 123`), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := AcquireLock(nil, dir, "taker")
	if err != nil {
		t.Fatalf("takeover of torn lockfile failed: %v", err)
	}
	l.Release()
}

func TestJournalAppendReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "J")
	meta := JournalMeta{Schema: SchemaVersion, Tool: "t", Seed: 7, Scale: 0.5}

	j, entries, err := OpenJournal(nil, path, meta, false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	type rec struct {
		N int `json:"n"`
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(rec{N: i}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	j.Close()

	// Simulate a torn final line: the crash landed mid-append.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"n": 99`)
	f.Close()

	j2, entries, err := OpenJournal(nil, path, meta, true)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer j2.Close()
	if len(entries) != 3 {
		t.Fatalf("resume replayed %d entries, want 3 (torn tail dropped)", len(entries))
	}
	var last rec
	if err := json.Unmarshal(entries[2], &last); err != nil || last.N != 2 {
		t.Fatalf("entry 2 = %s (err %v), want n=2", entries[2], err)
	}

	// A resume with different campaign parameters must refuse.
	j2.Close()
	other := meta
	other.Seed = 8
	if _, _, err := OpenJournal(nil, path, other, true); err == nil {
		t.Fatalf("resume with mismatched meta succeeded")
	}
}
