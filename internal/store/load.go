package store

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/trace"
)

// Mode selects how the loaders treat malformed rows.
type Mode int

const (
	// Strict aborts the load on the first malformed row (the right
	// default for fsck and golden comparisons).
	Strict Mode = iota
	// Lenient skips malformed rows and counts them into the LoadReport
	// (the right default for analysis: one truncated line must not
	// discard a 1,000-test campaign).
	Lenient
)

// maxRowErrors caps the per-report error detail; skips beyond the cap
// are still counted, just not itemised.
const maxRowErrors = 20

// RowError locates one malformed row.
type RowError struct {
	File string
	Line int
	Err  string
}

// LoadReport is the structured outcome of a validating load: how much
// data arrived and how much was skipped, surfaced by the analyzer as
// KPIs the way test outcomes are.
type LoadReport struct {
	Files   int
	Rows    int
	Skipped int
	// Errors itemises the first maxRowErrors skipped rows.
	Errors []RowError
}

// note counts one skipped row.
func (r *LoadReport) note(file string, line int, err error) {
	r.Skipped++
	if len(r.Errors) < maxRowErrors {
		r.Errors = append(r.Errors, RowError{File: file, Line: line, Err: err.Error()})
	}
}

// String renders the report as a one-line KPI summary.
func (r *LoadReport) String() string {
	return fmt.Sprintf("%d files, %d rows loaded, %d rows skipped", r.Files, r.Rows, r.Skipped)
}

// Merge folds o into r, keeping the itemised-error cap. Concurrent
// scanners accumulate into per-shard reports and publish here only
// when a shard succeeds, so retried attempts never double-count.
func (r *LoadReport) Merge(o *LoadReport) {
	r.Files += o.Files
	r.Rows += o.Rows
	r.Skipped += o.Skipped
	for _, e := range o.Errors {
		if len(r.Errors) >= maxRowErrors {
			break
		}
		r.Errors = append(r.Errors, e)
	}
}

// TestRow is one parsed tests.csv record. String-typed columns stay
// strings so the loader accepts field campaigns with networks or areas
// the simulator does not model.
type TestRow struct {
	ID int
	// Drive is the drive index the test window was carved from, or -1
	// for artifacts predating the drive column (the scanner falls back
	// to a route/start heuristic for those).
	Drive                        int
	Network, Kind, Route, State  string
	StartS, DurationS            float64
	Area                         string
	MeanSpeedKmh, ThroughputMbps float64
	LossRate, RetransRate        float64
	Outcome                      string
}

// requiredTestColumns must be present in a tests.csv header; the
// remaining dataset.TestsCSVHeader columns are optional so older (or
// foreign) artifacts still load.
var requiredTestColumns = []string{
	"network", "kind", "area", "throughput_mbps", "loss_rate", "retrans_rate",
}

// LoadTests opens and parses a tests.csv file.
func LoadTests(path string, mode Mode) ([]TestRow, *LoadReport, error) {
	return LoadTestsFS(nil, path, mode)
}

// LoadTestsFS is LoadTests through an explicit filesystem (nil means
// the real one).
func LoadTestsFS(fsys FS, path string, mode Mode) ([]TestRow, *LoadReport, error) {
	f, err := orOS(fsys).Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rep := &LoadReport{}
	rows, err := ReadTests(f, path, mode, rep)
	return rows, rep, err
}

// ReadTests parses tests.csv records from r, accumulating into rep.
// Structural problems (empty input, missing required columns) fail in
// both modes; per-row problems fail in Strict mode and skip-and-count
// in Lenient mode.
func ReadTests(r io.Reader, name string, mode Mode, rep *LoadReport) ([]TestRow, error) {
	var rows []TestRow
	err := scanTestRows(r, name, mode, rep, func(row TestRow) error {
		rows = append(rows, row)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// scanTestRows is the incremental core of ReadTests: each valid row is
// handed to fn in file order instead of being accumulated. An error
// from fn aborts the scan in both modes (it is the consumer speaking,
// not the data).
func scanTestRows(r io.Reader, name string, mode Mode, rep *LoadReport, fn func(TestRow) error) error {
	cr := csv.NewReader(stripBOMReader(r))
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = true
	header, err := cr.Read()
	if err == io.EOF {
		return fmt.Errorf("store: %s: empty tests file (no header)", name)
	}
	if err != nil {
		return fmt.Errorf("store: %s: read header: %w", name, err)
	}
	col := make(map[string]int, len(header))
	for i, h := range header {
		col[strings.TrimSpace(h)] = i
	}
	for _, need := range requiredTestColumns {
		if _, ok := col[need]; !ok {
			return fmt.Errorf("store: %s: missing column %q", name, need)
		}
	}
	rep.Files++

	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line := 0
		if err != nil {
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				line = pe.Line
			}
			if ferr := failOrSkip(mode, rep, name, line, err); ferr != nil {
				return ferr
			}
			continue
		}
		if len(rec) == 1 && strings.TrimSpace(rec[0]) == "" {
			continue // trailing blank / whitespace-only lines are not data
		}
		line, _ = cr.FieldPos(0)
		row, err := parseTestRow(rec, header, col)
		if err != nil {
			if ferr := failOrSkip(mode, rep, name, line, err); ferr != nil {
				return ferr
			}
			continue
		}
		rep.Rows++
		if err := fn(row); err != nil {
			return err
		}
	}
	return nil
}

// failOrSkip applies the mode to one malformed row.
func failOrSkip(mode Mode, rep *LoadReport, name string, line int, err error) error {
	if mode == Strict {
		return fmt.Errorf("store: %s: line %d: %w", name, line, err)
	}
	rep.note(name, line, err)
	return nil
}

// parseTestRow validates one tests.csv record against the header.
func parseTestRow(rec, header []string, col map[string]int) (TestRow, error) {
	var row TestRow
	if len(rec) != len(header) {
		return row, fmt.Errorf("%d fields, want %d", len(rec), len(header))
	}
	get := func(name string) (string, bool) {
		i, ok := col[name]
		if !ok || i >= len(rec) {
			return "", false
		}
		return strings.TrimSpace(rec[i]), true
	}
	num := func(name string, dst *float64) error {
		s, ok := get(name)
		if !ok {
			return nil // optional column absent
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("bad %s %q", name, s)
		}
		*dst = v
		return nil
	}
	row.Network, _ = get("network")
	row.Kind, _ = get("kind")
	row.Area, _ = get("area")
	row.Route, _ = get("route")
	row.State, _ = get("state")
	if row.Network == "" || row.Kind == "" || row.Area == "" {
		return row, errors.New("empty network/kind/area")
	}
	if s, ok := get("id"); ok {
		id, err := strconv.Atoi(s)
		if err != nil {
			return row, fmt.Errorf("bad id %q", s)
		}
		row.ID = id
	}
	row.Drive = -1
	if s, ok := get("drive"); ok {
		d, err := strconv.Atoi(s)
		if err != nil {
			return row, fmt.Errorf("bad drive %q", s)
		}
		row.Drive = d
	}
	for _, f := range []struct {
		name string
		dst  *float64
	}{
		{"start_s", &row.StartS}, {"duration_s", &row.DurationS},
		{"mean_speed_kmh", &row.MeanSpeedKmh}, {"throughput_mbps", &row.ThroughputMbps},
		{"loss_rate", &row.LossRate}, {"retrans_rate", &row.RetransRate},
	} {
		if err := num(f.name, f.dst); err != nil {
			return row, err
		}
	}
	if s, ok := get("outcome"); ok {
		if _, known := dataset.ParseOutcome(s); !known {
			return row, fmt.Errorf("bad outcome %q", s)
		}
		row.Outcome = s
	} else {
		// Pre-outcome artifacts carry only completed measurements.
		row.Outcome = dataset.OutcomeComplete.String()
	}
	return row, nil
}

// LoadTrace opens and parses one trace CSV shard through the strict or
// lenient trace reader, feeding skips into a LoadReport.
func LoadTrace(path string, mode Mode) (*channel.Trace, *LoadReport, error) {
	return LoadTraceFS(nil, path, mode)
}

// LoadTraceFS is LoadTrace through an explicit filesystem (nil means
// the real one).
func LoadTraceFS(fsys FS, path string, mode Mode) (*channel.Trace, *LoadReport, error) {
	f, err := orOS(fsys).Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rep := &LoadReport{Files: 1}
	var tr *channel.Trace
	if mode == Strict {
		tr, err = trace.ReadCSV(f)
	} else {
		tr, err = trace.ReadCSVLenient(f, func(line int, rowErr error) {
			rep.note(path, line, rowErr)
		})
	}
	if err != nil {
		return nil, rep, fmt.Errorf("store: %s: %w", path, err)
	}
	rep.Rows = len(tr.Samples)
	return tr, rep, nil
}
