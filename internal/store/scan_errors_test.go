package store

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"satcell/internal/channel"
)

// The streaming readers meet truncated and mangled artifacts in the
// wild (interrupted copies, full disks, fault-injected chaos runs).
// These tests pin the contract the supervisor's quarantine logic relies
// on: every corruption class surfaces as a file:line-itemized error,
// never a panic, and lenient mode itemizes skips instead of aborting.

var lineItemized = regexp.MustCompile(`line [1-9][0-9]*`)

// mutateCopy writes a mutated copy of src into its own temp dir and
// returns the new path.
func mutateCopy(t *testing.T, src string, mutate func([]byte) []byte) string {
	t.Helper()
	b, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), filepath.Base(src))
	if err := os.WriteFile(dst, mutate(b), 0o644); err != nil {
		t.Fatal(err)
	}
	return dst
}

// truncateMidRow cuts the file a few bytes into its final data row,
// leaving a partial line with no trailing newline — the shape a torn
// copy or out-of-space write leaves behind.
func truncateMidRow(b []byte) []byte {
	trimmed := bytes.TrimRight(b, "\n")
	last := bytes.LastIndexByte(trimmed, '\n')
	return trimmed[:last+4]
}

// cutLastField drops the final field of the last data row (cut exactly
// at a comma), keeping the trailing newline: a row with too few fields.
func cutLastField(b []byte) []byte {
	trimmed := bytes.TrimRight(b, "\n")
	comma := bytes.LastIndexByte(trimmed, ',')
	return append(append([]byte{}, trimmed[:comma]...), '\n')
}

// headerOnly keeps just the first line.
func headerOnly(b []byte) []byte {
	nl := bytes.IndexByte(b, '\n')
	return b[:nl+1]
}

func exportedShardPath(t *testing.T, dir string) string {
	t.Helper()
	ds := testDataset()
	return filepath.Join(dir, ShardName(0, ds.Drives[0].Route, channel.Networks[0]))
}

func wantItemized(t *testing.T, err error, path string) {
	t.Helper()
	if err == nil {
		t.Fatal("scan accepted the corrupted file")
	}
	if !strings.Contains(err.Error(), filepath.Base(path)) {
		t.Errorf("error does not name the file: %v", err)
	}
	if !lineItemized.MatchString(err.Error()) {
		t.Errorf("error does not name the line: %v", err)
	}
}

func TestScanTestsTruncatedMidRow(t *testing.T) {
	dir := exportClean(t)
	path := mutateCopy(t, filepath.Join(dir, "tests.csv"), truncateMidRow)
	err := ScanTests(path, Strict, &LoadReport{}, func(TestRow) error { return nil })
	wantItemized(t, err, path)

	// Lenient mode skips the torn row, itemizes it, and keeps the rest.
	rep := &LoadReport{}
	if err := ScanTests(path, Lenient, rep, func(TestRow) error { return nil }); err != nil {
		t.Fatalf("lenient scan aborted: %v", err)
	}
	if rep.Skipped != 1 || len(rep.Errors) != 1 {
		t.Fatalf("lenient scan skipped %d rows with %d errors, want 1/1", rep.Skipped, len(rep.Errors))
	}
	if e := rep.Errors[0]; e.File != path || e.Line == 0 {
		t.Errorf("itemized skip %+v lacks file:line", e)
	}
	if rep.Rows == 0 {
		t.Error("lenient scan delivered no intact rows")
	}
}

func TestScanTestsRowMissingFields(t *testing.T) {
	dir := exportClean(t)
	path := mutateCopy(t, filepath.Join(dir, "tests.csv"), cutLastField)
	err := ScanTests(path, Strict, &LoadReport{}, func(TestRow) error { return nil })
	wantItemized(t, err, path)
	if !strings.Contains(err.Error(), "fields") {
		t.Errorf("short row not diagnosed as a field-count problem: %v", err)
	}
}

// TestScanTestsNoTrailingNewlineIntactRow: an artifact whose final row
// is complete but unterminated is valid CSV, not corruption — the
// scanners must not confuse it with truncation.
func TestScanTestsNoTrailingNewlineIntactRow(t *testing.T) {
	dir := exportClean(t)
	path := mutateCopy(t, filepath.Join(dir, "tests.csv"), func(b []byte) []byte {
		return bytes.TrimRight(b, "\n")
	})
	rep := &LoadReport{}
	if err := ScanTests(path, Strict, rep, func(TestRow) error { return nil }); err != nil {
		t.Fatalf("unterminated final row rejected: %v", err)
	}
	if rep.Rows != len(testDataset().Tests) {
		t.Errorf("scanned %d rows, want %d", rep.Rows, len(testDataset().Tests))
	}
}

func TestScanTestsEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tests.csv")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Strict, Lenient} {
		err := ScanTests(path, mode, &LoadReport{}, func(TestRow) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "empty tests file") {
			t.Errorf("mode %v: empty file gave %v", mode, err)
		}
	}
}

func TestScanTestsHeaderOnly(t *testing.T) {
	dir := exportClean(t)
	path := mutateCopy(t, filepath.Join(dir, "tests.csv"), headerOnly)
	for _, mode := range []Mode{Strict, Lenient} {
		err := ScanTests(path, mode, &LoadReport{}, func(TestRow) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "header-only") {
			t.Errorf("mode %v: header-only file gave %v", mode, err)
		}
	}
}

func TestScanTraceTruncatedMidRow(t *testing.T) {
	dir := exportClean(t)
	path := mutateCopy(t, exportedShardPath(t, dir), truncateMidRow)
	err := ScanTrace(path, Strict, &LoadReport{}, func(channel.NetworkID, channel.Record) error { return nil })
	wantItemized(t, err, path)

	rep := &LoadReport{}
	if err := ScanTrace(path, Lenient, rep, func(channel.NetworkID, channel.Record) error { return nil }); err != nil {
		t.Fatalf("lenient scan aborted: %v", err)
	}
	if rep.Skipped != 1 || len(rep.Errors) != 1 {
		t.Fatalf("lenient scan skipped %d rows with %d errors, want 1/1", rep.Skipped, len(rep.Errors))
	}
	if e := rep.Errors[0]; e.File != path || e.Line == 0 {
		t.Errorf("itemized skip %+v lacks file:line", e)
	}
	if rep.Rows == 0 {
		t.Error("lenient scan delivered no intact records")
	}
}

func TestScanTraceRowMissingFields(t *testing.T) {
	dir := exportClean(t)
	path := mutateCopy(t, exportedShardPath(t, dir), cutLastField)
	err := ScanTrace(path, Strict, &LoadReport{}, func(channel.NetworkID, channel.Record) error { return nil })
	wantItemized(t, err, path)
}

func TestScanTraceEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drive000_r_RM.csv")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{Strict, Lenient} {
		err := ScanTrace(path, mode, &LoadReport{}, func(channel.NetworkID, channel.Record) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "empty trace file") {
			t.Errorf("mode %v: empty shard gave %v", mode, err)
		}
		if err != nil && !strings.Contains(err.Error(), filepath.Base(path)) {
			t.Errorf("mode %v: error does not name the file: %v", mode, err)
		}
	}
}

func TestScanTraceHeaderOnly(t *testing.T) {
	dir := exportClean(t)
	path := mutateCopy(t, exportedShardPath(t, dir), headerOnly)
	for _, mode := range []Mode{Strict, Lenient} {
		err := ScanTrace(path, mode, &LoadReport{}, func(channel.NetworkID, channel.Record) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "header-only") {
			t.Errorf("mode %v: header-only shard gave %v", mode, err)
		}
	}
}
