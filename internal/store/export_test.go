package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// errKilled simulates the process dying at a shard boundary.
var errKilled = errors.New("simulated kill")

// exportClean runs an uninterrupted export and returns the directory.
func exportClean(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	stats, err := ExportDataset(dir, testDataset(), exportOpts())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reused != 0 || stats.Written == 0 {
		t.Fatalf("clean export stats %+v", stats)
	}
	return dir
}

func TestExportProducesVerifiableDirectory(t *testing.T) {
	dir := exportClean(t)
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("fresh export fails fsck:\n%s", rep)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	ds := testDataset()
	wantFiles := len(ds.Drives)*5 + 1
	if len(m.Files) != wantFiles {
		t.Fatalf("manifest lists %d files, want %d", len(m.Files), wantFiles)
	}
	if fi := m.Files["tests.csv"]; fi.Rows != len(ds.Tests) {
		t.Fatalf("tests.csv manifest rows %d, want %d", fi.Rows, len(ds.Tests))
	}
	if _, err := os.Stat(filepath.Join(dir, CheckpointName)); !os.IsNotExist(err) {
		t.Fatal("checkpoint journal should be retired after a complete export")
	}
}

// TestExportDeterministic pins that two exports of the same campaign
// are bit-identical at the directory level — the property resume
// depends on.
func TestExportDeterministic(t *testing.T) {
	a := exportClean(t)
	b := exportClean(t)
	da, err := DigestDir(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := DigestDir(b)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatalf("same campaign exported twice differs: %s vs %s", da, db)
	}
}

// TestKillAndResumeBitIdentical is the acceptance gate: interrupting the
// export after N shards and resuming must produce a directory whose
// golden digest is bit-identical to an uninterrupted run — at every
// possible interruption point class (first shard, mid-campaign, just
// before tests.csv).
func TestKillAndResumeBitIdentical(t *testing.T) {
	golden, err := DigestDir(exportClean(t))
	if err != nil {
		t.Fatal(err)
	}
	ds := testDataset()
	shardCount := len(ds.Drives)*5 + 1
	for _, killAt := range []int{0, 1, shardCount / 2, shardCount - 1} {
		killAt := killAt
		t.Run(fmt.Sprintf("killAt=%d", killAt), func(t *testing.T) {
			dir := t.TempDir()
			n := 0
			opts := exportOpts()
			opts.BeforeFile = func(name string) error {
				if n == killAt {
					return fmt.Errorf("%w before %s", errKilled, name)
				}
				n++
				return nil
			}
			if _, err := ExportDataset(dir, ds, opts); !errors.Is(err, errKilled) {
				t.Fatalf("interrupted export: err=%v", err)
			}
			// The partial directory must be detectable as such.
			if _, err := ReadManifest(dir); !os.IsNotExist(err) {
				t.Fatalf("partial export has a manifest (err=%v)", err)
			}
			rep, err := Fsck(dir)
			if err != nil {
				t.Fatal(err)
			}
			if rep.OK() {
				t.Fatal("fsck passed a partial campaign")
			}

			stats, err := ExportDataset(dir, ds, ExportOptions{Seed: 7, Scale: 0.02, Resume: true})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if stats.Reused != killAt || stats.Reused+stats.Written != shardCount {
				t.Fatalf("resume stats %+v, want %d reused of %d", stats, killAt, shardCount)
			}
			got, err := DigestDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got != golden {
				t.Fatalf("resumed dataset digest %s != uninterrupted %s", got, golden)
			}
			rep, err = Fsck(dir)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("resumed dataset fails fsck:\n%s", rep)
			}
		})
	}
}

// TestResumeOfCompleteExportIsNoop re-running with -resume over a
// finished directory must rewrite nothing.
func TestResumeOfCompleteExportIsNoop(t *testing.T) {
	dir := exportClean(t)
	before, _ := DigestDir(dir)
	opts := exportOpts()
	opts.Resume = true
	opts.BeforeFile = func(name string) error {
		return fmt.Errorf("resume of a complete export tried to rewrite %s", name)
	}
	stats, err := ExportDataset(dir, testDataset(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Written != 0 || stats.Reused == 0 {
		t.Fatalf("noop resume stats %+v", stats)
	}
	after, _ := DigestDir(dir)
	if after != before {
		t.Fatal("noop resume changed the directory")
	}
}

func TestResumeRefusesMismatchedCampaign(t *testing.T) {
	dir := t.TempDir()
	opts := exportOpts()
	n := 0
	opts.BeforeFile = func(string) error {
		if n == 2 {
			return errKilled
		}
		n++
		return nil
	}
	if _, err := ExportDataset(dir, testDataset(), opts); !errors.Is(err, errKilled) {
		t.Fatal("setup interrupt failed")
	}
	_, err := ExportDataset(dir, testDataset(), ExportOptions{Seed: 8, Scale: 0.02, Resume: true})
	if err == nil {
		t.Fatal("resume with a different seed must be refused")
	}
}

func TestExportFiguresManifested(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"fig3a.csv": "series,x,y\nMOB-TCP,1,0.5\nMOB-TCP,2,0.9\n",
		"fig9.csv":  "series,x,y\nRM,0,0.1\n",
	}
	if err := ExportFigures(dir, 7, 0.25, files); err != nil {
		t.Fatal(err)
	}
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "figures" || len(m.Files) != 2 {
		t.Fatalf("figures manifest %+v", m)
	}
	if m.Files["fig3a.csv"].Rows != 2 || m.Files["fig9.csv"].Rows != 1 {
		t.Fatalf("figure row counts wrong: %+v", m.Files)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("figures dir fails fsck:\n%s", rep)
	}
}
