package store

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Artifact-directory control files. MANIFEST is written last, after
// every shard: its presence certifies a complete campaign. CHECKPOINT
// exists only while an export is in flight (or after a crash); it is
// the shard journal a resumed export verifies against.
const (
	ManifestName   = "MANIFEST"
	CheckpointName = "CHECKPOINT"
)

// SchemaVersion is the manifest/checkpoint schema this build writes.
// Readers accept any version up to it and refuse newer ones.
const SchemaVersion = 1

// FileInfo records the identity of one artifact file.
type FileInfo struct {
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
	// Rows counts the file's data rows (trace samples, tests) excluding
	// the header, so Fsck can cross-check content against identity.
	Rows int `json:"rows"`
}

// CampaignInfo records campaign-level totals that cannot be recovered
// from the artifact rows alone (distance covers gaps between test
// windows; drives without tests still count). The streaming analyzer
// reads it to reproduce the dataset-summary bookkeeping figure from a
// directory scan.
type CampaignInfo struct {
	Km       float64  `json:"km"`
	TestMin  float64  `json:"test_min"`
	Drives   int      `json:"drives"`
	States   int      `json:"states"`
	Networks []string `json:"networks,omitempty"`
	// Quarantined itemises drives the degrading generator gave up on
	// (one rendered dataset.DriveFailure per line): their shards are
	// deliberately absent, and completeness certificates downstream
	// carry the records forward instead of calling the export torn.
	Quarantined []string `json:"quarantined,omitempty"`
}

// Manifest describes one complete artifact directory.
type Manifest struct {
	Schema int     `json:"schema"`
	Tool   string  `json:"tool"`
	Seed   int64   `json:"seed"`
	Scale  float64 `json:"scale"`
	// Campaign holds dataset-level provenance totals; nil for figure
	// directories and for artifacts written before the field existed.
	Campaign *CampaignInfo       `json:"campaign,omitempty"`
	Files    map[string]FileInfo `json:"files"`
}

// NewManifest starts an empty manifest for the given provenance.
func NewManifest(tool string, seed int64, scale float64) *Manifest {
	return &Manifest{Schema: SchemaVersion, Tool: tool, Seed: seed, Scale: scale,
		Files: make(map[string]FileInfo)}
}

// Add records one artifact file.
func (m *Manifest) Add(name string, fi FileInfo) { m.Files[name] = fi }

// Write persists the manifest atomically into dir. Callers must write
// it last: its arrival is what marks the directory complete.
func (m *Manifest) Write(dir string) error {
	return m.WriteFS(nil, dir)
}

// WriteFS is Write through an explicit filesystem (nil means the real
// one).
func (m *Manifest) WriteFS(fsys FS, dir string) error {
	return WriteFileAtomicFS(fsys, filepath.Join(dir, ManifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// ReadManifest loads and validates dir's MANIFEST.
func ReadManifest(dir string) (*Manifest, error) {
	return ReadManifestFS(nil, dir)
}

// ReadManifestFS is ReadManifest through an explicit filesystem (nil
// means the real one).
func ReadManifestFS(fsys FS, dir string) (*Manifest, error) {
	f, err := orOS(fsys).Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	b, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("store: read %s: %w", ManifestName, err)
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: parse %s: %w", ManifestName, err)
	}
	if m.Schema < 1 || m.Schema > SchemaVersion {
		return nil, fmt.Errorf("store: %s schema %d not supported (this build reads <= %d)",
			ManifestName, m.Schema, SchemaVersion)
	}
	for name := range m.Files {
		if !safeArtifactName(name) {
			return nil, fmt.Errorf("store: %s lists unsafe file name %q", ManifestName, name)
		}
	}
	return &m, nil
}

// safeArtifactName rejects manifest entries that could escape the
// dataset directory (path separators, "..", control files).
func safeArtifactName(name string) bool {
	if name == "" || name == ManifestName || name == CheckpointName {
		return false
	}
	if strings.ContainsAny(name, `/\`) || name == "." || name == ".." {
		return false
	}
	return filepath.Base(name) == name
}

// VerifyFile checks one manifest entry against the file on disk,
// distinguishing missing, truncated/resized and bit-corrupted files.
func (m *Manifest) VerifyFile(dir, name string) error {
	return m.VerifyFileFS(nil, dir, name)
}

// VerifyFileFS is VerifyFile through an explicit filesystem (nil means
// the real one).
func (m *Manifest) VerifyFileFS(fsys FS, dir, name string) error {
	fi, ok := m.Files[name]
	if !ok {
		return fmt.Errorf("store: %s not in manifest", name)
	}
	sum, size, err := hashFile(fsys, filepath.Join(dir, name))
	if os.IsNotExist(err) {
		return fmt.Errorf("store: %s missing", name)
	}
	if err != nil {
		return err
	}
	if size != fi.Bytes {
		return fmt.Errorf("store: %s is %d bytes, manifest says %d (truncated or resized)",
			name, size, fi.Bytes)
	}
	if sum != fi.SHA256 {
		return fmt.Errorf("store: %s checksum mismatch (bit corruption)", name)
	}
	return nil
}
