package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// JournalMeta is the first line of every append-only journal: the
// campaign parameters the journal belongs to. A resume with different
// parameters would silently mix two campaigns, so it is refused.
type JournalMeta struct {
	Schema int     `json:"schema"`
	Tool   string  `json:"tool"`
	Seed   int64   `json:"seed"`
	Scale  float64 `json:"scale"`
}

// Journal is the crash-only append-only journal primitive behind the
// export CHECKPOINT and the campaign supervisor's stage log: one JSON
// object per line, each append fsynced before it is acknowledged, so
// after a `kill -9` the file names exactly the work that was durably
// completed. The first line is the JournalMeta; a torn final line (the
// crash landed mid-append) is ignored on replay — everything journalled
// after it cannot have been acknowledged.
type Journal struct {
	f File
}

// OpenJournal opens path's journal through fsys (nil means the real
// filesystem). With resume=false any previous journal is discarded and
// a fresh one started (the meta line is appended durably before
// OpenJournal returns). With resume=true an existing journal is
// replayed: its meta line must match meta, the surviving entries are
// returned as raw JSON for the caller to decode, and subsequent appends
// extend the same file.
func OpenJournal(fsys FS, path string, meta JournalMeta, resume bool) (*Journal, []json.RawMessage, error) {
	fsys = orOS(fsys)
	if resume {
		prevMeta, entries, err := replayJournal(fsys, path)
		if err != nil {
			return nil, nil, err
		}
		if prevMeta != nil {
			if *prevMeta != meta {
				return nil, nil, fmt.Errorf(
					"store: resume mismatch: %s was written by tool=%s seed=%d scale=%g, asked to resume tool=%s seed=%d scale=%g",
					filepath.Base(path), prevMeta.Tool, prevMeta.Seed, prevMeta.Scale,
					meta.Tool, meta.Seed, meta.Scale)
			}
			f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, err
			}
			return &Journal{f: f}, entries, nil
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{f: f}
	if err := j.Append(meta); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, nil, nil
}

// replayJournal reads a journal's meta line and surviving entries; a
// missing or empty file (crashed before the meta line landed) returns
// (nil, nil, nil) so the caller starts fresh.
func replayJournal(fsys FS, path string) (*JournalMeta, []json.RawMessage, error) {
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	name := filepath.Base(path)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, nil, sc.Err()
	}
	var meta JournalMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return nil, nil, fmt.Errorf("store: parse %s meta: %w", name, err)
	}
	if meta.Schema < 1 || meta.Schema > SchemaVersion {
		return nil, nil, fmt.Errorf("store: %s schema %d not supported (this build reads <= %d)",
			name, meta.Schema, SchemaVersion)
	}
	var entries []json.RawMessage
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			// A torn final line is the expected crash artifact; anything
			// journalled after it cannot exist, so stop replaying here.
			break
		}
		entries = append(entries, json.RawMessage(append([]byte(nil), sc.Bytes()...)))
	}
	return &meta, entries, sc.Err()
}

// Append journals v durably: marshal, write one line, fsync. The entry
// exists for every replay after Append returns.
func (j *Journal) Append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("store: append %s: %w", filepath.Base(j.f.Name()), err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", filepath.Base(j.f.Name()), err)
	}
	return nil
}

// Close closes the journal file. The journal itself stays on disk: it
// is the durable run record until the owner retires it.
func (j *Journal) Close() error { return j.f.Close() }
