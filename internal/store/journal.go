package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// JournalMeta is the first line of every append-only journal: the
// campaign parameters the journal belongs to. A resume with different
// parameters would silently mix two campaigns, so it is refused.
type JournalMeta struct {
	Schema int     `json:"schema"`
	Tool   string  `json:"tool"`
	Seed   int64   `json:"seed"`
	Scale  float64 `json:"scale"`
}

// Journal is the crash-only append-only journal primitive behind the
// export CHECKPOINT, the campaign supervisor's stage log and the
// flight recorder's TELEMETRY stream: one JSON object per line, each
// append fsynced before it is acknowledged, so after a `kill -9` the
// file names exactly the work that was durably completed. The first
// line is the JournalMeta; a torn final line (the crash landed
// mid-append) is dropped on replay — everything journalled after it
// cannot have been acknowledged — and the file is healed back to its
// valid prefix before a resume appends again, so the new records never
// glue onto the torn fragment.
type Journal struct {
	f File
}

// journalReplay is one parsed journal: the meta line, the surviving
// entries, the newline-terminated byte prefix they came from, and
// whether the file extends past that prefix (a torn tail).
type journalReplay struct {
	meta    *JournalMeta
	entries []json.RawMessage
	valid   []byte
	torn    bool
}

// OpenJournal opens path's journal through fsys (nil means the real
// filesystem). With resume=false any previous journal is discarded and
// a fresh one started (the meta line is appended durably before
// OpenJournal returns). With resume=true an existing journal is
// replayed: its meta line must match meta, the surviving entries are
// returned as raw JSON for the caller to decode, and subsequent appends
// extend the same file. If the previous process died mid-append, the
// torn tail is first healed away with an atomic rewrite of the valid
// prefix — appending through O_APPEND directly would concatenate the
// next record onto the partial line, making both invisible to every
// later replay.
func OpenJournal(fsys FS, path string, meta JournalMeta, resume bool) (*Journal, []json.RawMessage, error) {
	fsys = orOS(fsys)
	if resume {
		rep, err := replayJournal(fsys, path)
		if err != nil {
			return nil, nil, err
		}
		if rep.meta != nil {
			if *rep.meta != meta {
				return nil, nil, fmt.Errorf(
					"store: resume mismatch: %s was written by tool=%s seed=%d scale=%g, asked to resume tool=%s seed=%d scale=%g",
					filepath.Base(path), rep.meta.Tool, rep.meta.Seed, rep.meta.Scale,
					meta.Tool, meta.Seed, meta.Scale)
			}
			if rep.torn {
				if err := WriteFileAtomicFS(fsys, path, func(w io.Writer) error {
					_, werr := w.Write(rep.valid)
					return werr
				}); err != nil {
					return nil, nil, fmt.Errorf("store: heal torn tail of %s: %w", filepath.Base(path), err)
				}
			}
			f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, err
			}
			return &Journal{f: f}, rep.entries, nil
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j := &Journal{f: f}
	if err := j.Append(meta); err != nil {
		f.Close()
		return nil, nil, err
	}
	return j, nil, nil
}

// ReplayJournal reads a journal without opening it for append: the meta
// line (nil if the file is missing or died before the meta line landed)
// and the surviving entries, torn tail dropped. This is the read-only
// view report renderers use on a run directory that may still be owned
// by a live campaign.
func ReplayJournal(fsys FS, path string) (*JournalMeta, []json.RawMessage, error) {
	rep, err := replayJournal(orOS(fsys), path)
	if err != nil {
		return nil, nil, err
	}
	return rep.meta, rep.entries, nil
}

// replayJournal reads a journal's meta line and surviving entries while
// tracking the exact byte prefix they occupy, so a resume can heal a
// torn tail. Only a '\n'-terminated line counts as journalled: Append
// writes record+newline in one write, so a line without its newline is
// a torn append regardless of whether its bytes happen to parse. A
// missing or empty file — or one that died inside the meta line —
// replays as meta==nil and the caller starts fresh.
func replayJournal(fsys FS, path string) (*journalReplay, error) {
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return &journalReplay{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	name := filepath.Base(path)
	rep := &journalReplay{}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			rep.torn = true
			break
		}
		line := data[off : off+nl]
		if rep.meta == nil {
			var meta JournalMeta
			if err := json.Unmarshal(line, &meta); err != nil {
				return nil, fmt.Errorf("store: parse %s meta: %w", name, err)
			}
			if meta.Schema < 1 || meta.Schema > SchemaVersion {
				return nil, fmt.Errorf("store: %s schema %d not supported (this build reads <= %d)",
					name, meta.Schema, SchemaVersion)
			}
			rep.meta = &meta
		} else {
			if !json.Valid(line) {
				// A torn or corrupt line: nothing after it can have been
				// acknowledged, so stop replaying here.
				rep.torn = true
				break
			}
			rep.entries = append(rep.entries, json.RawMessage(append([]byte(nil), line...)))
		}
		off += nl + 1
	}
	if off < len(data) {
		rep.torn = true
	}
	rep.valid = data[:off]
	return rep, nil
}

// Append journals v durably: marshal, write one line, fsync. The entry
// exists for every replay after Append returns.
func (j *Journal) Append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("store: append %s: %w", filepath.Base(j.f.Name()), err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", filepath.Base(j.f.Name()), err)
	}
	return nil
}

// Close closes the journal file. The journal itself stays on disk: it
// is the durable run record until the owner retires it.
func (j *Journal) Close() error { return j.f.Close() }
