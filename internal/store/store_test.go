package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"satcell/internal/dataset"
)

// testDataset generates the shared small campaign once; every suite
// reads it, none mutates it.
var testDataset = sync.OnceValue(func() *dataset.Dataset {
	return dataset.Generate(dataset.Config{Seed: 7, Scale: 0.02})
})

// exportOpts are the matching provenance options for testDataset.
func exportOpts() ExportOptions { return ExportOptions{Seed: 7, Scale: 0.02} }

func writeString(s string) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := io.WriteString(w, s)
		return err
	}
}

func listTempFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var tmps []string
	for _, e := range entries {
		if IsTempFile(e.Name()) {
			tmps = append(tmps, e.Name())
		}
	}
	return tmps
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	if err := WriteFileAtomic(path, writeString("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, writeString("two")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "two" {
		t.Fatalf("read %q, %v", b, err)
	}
	if tmps := listTempFiles(t, dir); len(tmps) != 0 {
		t.Fatalf("leftover temp files: %v", tmps)
	}
}

func TestWriteFileAtomicKeepsOldOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.txt")
	if err := WriteFileAtomic(path, writeString("good")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk on fire")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "partial garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped write error, got %v", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "good" {
		t.Fatalf("failed write clobbered the old file: %q", b)
	}
	if tmps := listTempFiles(t, dir); len(tmps) != 0 {
		t.Fatalf("leftover temp files after aborted write: %v", tmps)
	}
}

func TestManifestRoundTripAndVerify(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard.csv")
	if err := WriteFileAtomic(path, writeString("hdr\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	sum, size, err := HashFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManifest(DatasetTool, 7, 0.02)
	m.Add("shard.csv", FileInfo{SHA256: sum, Bytes: size, Rows: 1})
	if err := m.Write(dir); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || got.Seed != 7 || got.Scale != 0.02 ||
		got.Files["shard.csv"] != m.Files["shard.csv"] {
		t.Fatalf("manifest round trip mangled: %+v", got)
	}
	if err := got.VerifyFile(dir, "shard.csv"); err != nil {
		t.Fatalf("intact file should verify: %v", err)
	}
	if err := os.WriteFile(path, []byte("hdr\n9,9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := got.VerifyFile(dir, "shard.csv"); err == nil {
		t.Fatal("modified file should fail verification")
	}
	if err := got.VerifyFile(dir, "ghost.csv"); err == nil {
		t.Fatal("unlisted file should fail verification")
	}
}

func TestReadManifestRejectsUnsafeNamesAndNewSchema(t *testing.T) {
	dir := t.TempDir()
	evil := `{"schema":1,"tool":"drivegen","seed":1,"scale":1,"files":{"../escape.csv":{"sha256":"x","bytes":1,"rows":1}}}`
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(evil), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("path-escaping manifest entry should be rejected, got %v", err)
	}
	future := `{"schema":99,"tool":"drivegen","seed":1,"scale":1,"files":{}}`
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte(future), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("future schema should be rejected, got %v", err)
	}
}

func TestDigestDirDetectsAnyChange(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{"a": "1", "b": "2"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	before, err := DigestDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	again, _ := DigestDir(dir)
	if again != before {
		t.Fatal("digest not stable")
	}
	os.WriteFile(filepath.Join(dir, "b"), []byte("3"), 0o644)
	after, _ := DigestDir(dir)
	if after == before {
		t.Fatal("content change not reflected in digest")
	}
}
