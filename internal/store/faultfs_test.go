package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"satcell/internal/faults"
)

func writeTestFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func faultSched(t *testing.T, spec string) faults.IOSchedule {
	t.Helper()
	s, err := faults.ParseIOSpec(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFaultFSReadErr(t *testing.T) {
	dir := t.TempDir()
	writeTestFile(t, dir, "data.csv", "hello")
	fsys := NewFaultFS(nil, faultSched(t, "read-err:data.csv:x1"))
	f, err := fsys.Open(filepath.Join(dir, "data.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("first read: %v, want ErrInjected", err)
	}
	var pe *fs.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("injected read error is %T, not *fs.PathError (streaming retry classifies on that)", err)
	}
	// x1 is transient: the next read (a retry reopening would also do)
	// succeeds.
	n, err := f.Read(buf)
	if err != nil && err != io.EOF {
		t.Fatalf("second read: %v", err)
	}
	if string(buf[:n]) != "hello" {
		t.Errorf("second read got %q", buf[:n])
	}
	if got := fsys.Stats().ReadErrs; got != 1 {
		t.Errorf("ReadErrs = %d, want 1", got)
	}
}

func TestFaultFSShortReadThenEOF(t *testing.T) {
	dir := t.TempDir()
	writeTestFile(t, dir, "data.csv", "0123456789")
	fsys := NewFaultFS(nil, faultSched(t, "short-read:data.csv:x1"))
	f, err := fsys.Open(filepath.Join(dir, "data.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) >= 10 {
		t.Fatalf("short read returned all %d bytes", len(b))
	}
	if string(b) != "01234"[:len(b)] {
		t.Errorf("short read returned %q, not a prefix", b)
	}
}

func TestFaultFSBitFlip(t *testing.T) {
	dir := t.TempDir()
	const content = "the quick brown fox"
	writeTestFile(t, dir, "data.csv", content)
	fsys := NewFaultFS(nil, faultSched(t, "bitflip:data.csv:x1"))
	f, err := fsys.Open(filepath.Join(dir, "data.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) == content {
		t.Fatal("bit flip left the content intact")
	}
	diff := 0
	for i := range b {
		if b[i] != content[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("%d bytes differ, want exactly 1", diff)
	}
}

func TestFaultFSWriteErrENOSPC(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(nil, faultSched(t, "enospc:out.csv"))
	err := WriteFileAtomicFS(fsys, filepath.Join(dir, "out.csv"), func(w io.Writer) error {
		_, err := io.WriteString(w, strings.Repeat("x", 1<<16))
		return err
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("atomic write: %v, want ErrInjected", err)
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("atomic write: %v, want ENOSPC in the chain", err)
	}
	// The atomic writer must have cleaned up: no destination, no temp.
	entries, err2 := os.ReadDir(dir)
	if err2 != nil {
		t.Fatal(err2)
	}
	for _, e := range entries {
		t.Errorf("leftover file %q after failed atomic write", e.Name())
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	writeTestFile(t, dir, "out.csv", "")
	fsys := NewFaultFS(nil, faultSched(t, "short-write:out.csv:x1"))
	f, err := fsys.OpenFile(filepath.Join(dir, "out.csv"), os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("0123456789"))
	f.Close()
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("short write: n=%d err=%v, want ENOSPC", n, err)
	}
	if n != 5 {
		t.Errorf("short write wrote %d bytes, want 5", n)
	}
	b, err := os.ReadFile(filepath.Join(dir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "01234" {
		t.Errorf("on-disk content %q, want the first half", b)
	}
}

func TestFaultFSTornRename(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(nil, faultSched(t, "torn-rename:out.csv:x1"))
	content := strings.Repeat("y", 100)
	err := WriteFileAtomicFS(fsys, filepath.Join(dir, "out.csv"), func(w io.Writer) error {
		_, err := io.WriteString(w, content)
		return err
	})
	// The rename itself succeeds: a torn rename is silent at write time.
	if err != nil {
		t.Fatalf("torn rename surfaced at write time: %v", err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "out.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 50 {
		t.Errorf("torn file is %d bytes, want 50 (half of %d)", len(b), len(content))
	}
}

func TestFaultFSStall(t *testing.T) {
	dir := t.TempDir()
	writeTestFile(t, dir, "data.csv", "z")
	fsys := NewFaultFS(nil, faultSched(t, "stall:data.csv:x1:+50ms"))
	f, err := fsys.Open(filepath.Join(dir, "data.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if _, err := io.ReadAll(f); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Errorf("stalled read took %v, want >= 50ms", d)
	}
	if got := fsys.Stats().Stalls; got != 1 {
		t.Errorf("Stalls = %d, want 1", got)
	}
}

// TestFaultFSTempTargetMatching locks the atomic-write ergonomics: a
// write rule scripted against the destination name fires on the temp
// file the atomic writer actually streams into.
func TestFaultFSTempTargetMatching(t *testing.T) {
	dir := t.TempDir()
	fsys := NewFaultFS(nil, faultSched(t, "enospc:tests.csv:x1"))
	err := WriteFileAtomicFS(fsys, filepath.Join(dir, "tests.csv"), func(w io.Writer) error {
		_, err := io.WriteString(w, strings.Repeat("x", 1<<16))
		return err
	})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write rule on destination name did not fire through the temp file: %v", err)
	}
	// Unrelated destinations stay healthy.
	if err := WriteFileAtomicFS(fsys, filepath.Join(dir, "other.csv"), func(w io.Writer) error {
		_, err := io.WriteString(w, "fine")
		return err
	}); err != nil {
		t.Fatalf("unrelated write failed: %v", err)
	}
}

func TestTempTarget(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{tmpPrefix + "tests.csv-12345", "tests.csv"},
		{tmpPrefix + "drive000_I5_ATT.csv-98", "drive000_I5_ATT.csv"},
		{"tests.csv", "tests.csv"},
	} {
		if got := tempTarget(tc.in); got != tc.want {
			t.Errorf("tempTarget(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestExportDatasetSurvivesTransientWriteFault drives a full export
// through a FaultFS whose first shard write fails: the export surfaces
// the error, and a clean re-run (same FS, fault exhausted) produces a
// complete, verifiable directory.
func TestExportDatasetSurvivesTransientWriteFault(t *testing.T) {
	ds := testDataset()
	dir := t.TempDir()
	fsys := NewFaultFS(nil, faultSched(t, "enospc:tests.csv:x1"))
	opts := exportOpts()
	opts.FS = fsys
	_, err := ExportDataset(dir, ds, opts)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("export with scripted ENOSPC: %v, want ErrInjected", err)
	}
	opts.Resume = true
	if _, err := ExportDataset(dir, ds, opts); err != nil {
		t.Fatalf("resumed export after fault: %v", err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatalf("fsck after recovered export: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("recovered export fails fsck:\n%s", rep)
	}
}
