package store

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"satcell/internal/faults"
)

// ErrInjected marks an error as coming from a FaultFS rather than the
// real disk. Injected read/write errors wrap it (inside an
// *fs.PathError, like the genuine article), so tests can tell scripted
// faults from real ones while production code classifies both
// identically.
var ErrInjected = fmt.Errorf("injected I/O fault")

// FaultFS wraps an FS and injects disk faults per a seeded
// faults.IOSchedule: read errors, short reads, bit flips and stalls on
// the read path; ENOSPC and short writes on the write path; torn
// renames between them. It is the disk-side sibling of the PR-2
// network injector — same determinism contract (decisions derive from
// (seed, rule, file, per-file op index), never from wall clock or
// global ordering), same replay gate (IOSchedule.Digest).
type FaultFS struct {
	inner FS
	inj   *faults.IOInjector
}

// NewFaultFS wraps inner with the given fault schedule.
func NewFaultFS(inner FS, sched faults.IOSchedule) *FaultFS {
	return &FaultFS{inner: orOS(inner), inj: faults.NewIOInjector(sched)}
}

// Stats snapshots the faults fired so far.
func (f *FaultFS) Stats() faults.IOStats { return f.inj.Stats() }

// Schedule returns the executing schedule (log its Digest to pin the
// scenario for replay).
func (f *FaultFS) Schedule() faults.IOSchedule { return f.inj.Schedule() }

// Open opens for reading; the returned file applies read-path faults.
func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, base: filepath.Base(name)}, nil
}

// OpenFile opens with flags; the returned file applies faults on both
// paths.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, base: filepath.Base(name)}, nil
}

// CreateTemp creates a temp file whose writes are fault-checked. Fault
// rules match against the destination name embedded in the temp name
// (the atomic writer's ".satcell-tmp-<dest>-<rand>" pattern), so a
// write rule for "tests.csv" fires on the temp file it streams into.
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, base: tempTarget(filepath.Base(file.Name()))}, nil
}

// tempTarget recovers the destination base name from an atomic-write
// temp name; non-temp names pass through unchanged.
func tempTarget(base string) string {
	rest, ok := strings.CutPrefix(base, tmpPrefix)
	if !ok {
		return base
	}
	if i := strings.LastIndexByte(rest, '-'); i > 0 {
		return rest[:i]
	}
	return rest
}

// Rename applies torn-rename faults: the source is truncated to half
// its size, then renamed anyway — the crash artifact of a rename that
// raced a partial flush. The rename itself succeeds, so the torn file
// is only detectable by content checks (manifest hashes, fsck, strict
// parses), which is the point.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	d := f.inj.Decide(faults.IOOpRename, filepath.Base(newpath))
	if d.Kind == faults.IOTornRename {
		if err := truncateHalf(f.inner, oldpath); err != nil {
			return err
		}
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove passes through.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// ReadDir passes through.
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) { return f.inner.ReadDir(name) }

// MkdirAll passes through.
func (f *FaultFS) MkdirAll(name string, perm os.FileMode) error {
	return f.inner.MkdirAll(name, perm)
}

// truncateHalf rewrites path with only the first half of its bytes,
// through the inner FS (no fault recursion).
func truncateHalf(fsys FS, path string) error {
	src, err := fsys.Open(path)
	if err != nil {
		return err
	}
	b, err := io.ReadAll(src)
	src.Close()
	if err != nil {
		return err
	}
	dst, err := fsys.OpenFile(path, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := dst.Write(b[:len(b)/2]); err != nil {
		dst.Close()
		return err
	}
	return dst.Close()
}

// faultFile intercepts reads and writes per the injector's decisions.
type faultFile struct {
	File
	fs   *FaultFS
	base string
	// eof forces EOF after a short read truncated the stream.
	eof bool
}

func (f *faultFile) Read(p []byte) (int, error) {
	if f.eof {
		return 0, io.EOF
	}
	d := f.fs.inj.Decide(faults.IOOpRead, f.base)
	switch d.Kind {
	case faults.IOReadErr:
		return 0, &fs.PathError{Op: "read", Path: f.base, Err: ErrInjected}
	case faults.IOStall:
		time.Sleep(d.Stall)
	}
	n, err := f.File.Read(p)
	switch d.Kind {
	case faults.IOShortRead:
		f.eof = true
		if n > 1 {
			n = n / 2
		}
		return n, err
	case faults.IOBitFlip:
		if n > 0 {
			i := int(d.Salt % uint64(n))
			p[i] ^= 1 << ((d.Salt >> 32) % 8)
		}
	}
	return n, err
}

func (f *faultFile) Write(p []byte) (int, error) {
	d := f.fs.inj.Decide(faults.IOOpWrite, f.base)
	switch d.Kind {
	case faults.IOWriteStall:
		time.Sleep(d.Stall)
	case faults.IOWriteErr:
		return 0, &fs.PathError{Op: "write", Path: f.base, Err: fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)}
	case faults.IOShortWrite:
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, &fs.PathError{Op: "write", Path: f.base, Err: fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)}
	}
	return f.File.Write(p)
}
