package store

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Problem is one integrity finding of Fsck.
type Problem struct {
	// File names the artifact (or control file) at fault; empty for
	// directory-level findings.
	File string
	Desc string
}

// FsckReport is the outcome of one dataset-directory audit.
type FsckReport struct {
	Dir          string
	FilesChecked int
	RowsChecked  int
	Problems     []Problem
}

// OK reports whether the directory passed every check.
func (r *FsckReport) OK() bool { return len(r.Problems) == 0 }

// String renders the report, one finding per line.
func (r *FsckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fsck %s: %d files, %d rows checked\n", r.Dir, r.FilesChecked, r.RowsChecked)
	if r.OK() {
		b.WriteString("  ok: manifest, checksums, schema and timestamps all verify\n")
		return b.String()
	}
	for _, p := range r.Problems {
		name := p.File
		if name == "" {
			name = "."
		}
		fmt.Fprintf(&b, "  BAD %-32s %s\n", name, p.Desc)
	}
	return b.String()
}

func (r *FsckReport) problem(file, format string, args ...any) {
	r.Problems = append(r.Problems, Problem{File: file, Desc: fmt.Sprintf(format, args...)})
}

// Fsck audits a dataset directory: manifest presence and schema,
// per-file sha256 and sizes, leftover torn-rename temp files, unknown
// files, an unretired checkpoint, tests.csv/trace schema validity, row
// counts and trace timestamp monotonicity. It returns an error only
// when the directory itself cannot be read; integrity findings land in
// the report.
func Fsck(dir string) (*FsckReport, error) {
	return FsckFS(nil, dir)
}

// FsckFS is Fsck through an explicit FS (nil means the real
// filesystem), so the campaign supervisor's verify stage audits the
// same — possibly fault-injected — filesystem the export wrote.
func FsckFS(fsys FS, dir string) (*FsckReport, error) {
	fsys = orOS(fsys)
	rep := &FsckReport{Dir: dir}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	onDisk := make(map[string]bool, len(entries))
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		name := e.Name()
		onDisk[name] = true
		if IsTempFile(name) {
			rep.problem(name, "torn rename: leftover atomic-write temp file")
		}
	}
	if onDisk[CheckpointName] {
		rep.problem(CheckpointName,
			"incomplete campaign: checkpoint journal present (resume with drivegen -resume)")
	}
	if !onDisk[ManifestName] {
		rep.problem(ManifestName, "missing manifest: directory was never completed")
		return rep, nil
	}

	m, err := ReadManifestFS(fsys, dir)
	if err != nil {
		rep.problem(ManifestName, "%v", err)
		return rep, nil
	}
	names := make([]string, 0, len(m.Files))
	for name := range m.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rep.FilesChecked++
		if err := m.VerifyFileFS(fsys, dir, name); err != nil {
			rep.problem(name, "%v", err)
			continue
		}
		fsckContent(fsys, dir, name, m.Files[name], rep)
	}
	for name := range onDisk {
		if name == ManifestName || name == CheckpointName || name == LockName || IsTempFile(name) {
			continue
		}
		if _, ok := m.Files[name]; !ok {
			rep.problem(name, "unknown file: not listed in the manifest")
		}
	}
	return rep, nil
}

// fsckContent runs format-level checks on a checksum-verified artifact:
// strict parse, manifest row count, and — for traces — strictly
// increasing timestamps. The checksum already rules out disk
// corruption; these checks catch writer bugs and hand-edited files
// whose manifest was regenerated around them.
func fsckContent(fsys FS, dir, name string, fi FileInfo, rep *FsckReport) {
	path := filepath.Join(dir, name)
	switch {
	case name == "tests.csv":
		rows, loadRep, err := LoadTestsFS(fsys, path, Strict)
		if err != nil {
			rep.problem(name, "%v", err)
			return
		}
		rep.RowsChecked += loadRep.Rows
		if len(rows) != fi.Rows {
			rep.problem(name, "row count %d, manifest says %d", len(rows), fi.Rows)
		}
	case strings.HasPrefix(name, "drive") && strings.HasSuffix(name, ".csv"):
		tr, loadRep, err := LoadTraceFS(fsys, path, Strict)
		if err != nil {
			rep.problem(name, "%v", err)
			return
		}
		rep.RowsChecked += loadRep.Rows
		if len(tr.Samples) != fi.Rows {
			rep.problem(name, "row count %d, manifest says %d", len(tr.Samples), fi.Rows)
		}
		last := time.Duration(-1)
		for i, s := range tr.Samples {
			if s.At <= last {
				rep.problem(name, "timestamps not strictly increasing at sample %d (%v after %v)",
					i, s.At, last)
				break
			}
			last = s.At
		}
	}
}
