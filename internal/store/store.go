// Package store is the crash-safe, self-validating dataset store behind
// the offline pipeline (drivegen -> trace/tests CSVs -> satcell-analyze
// / figures). The paper's value is its 1,239-test driving dataset; this
// package makes our regenerated equivalent a verifiable artifact rather
// than a pile of best-effort files:
//
//   - Atomic persistence: every artifact write goes through temp file +
//     fsync + rename with a checked Close (WriteFileAtomic), and each
//     dataset directory gains a MANIFEST — schema version, per-file
//     sha256, byte size and row count — written last, so a partially
//     written campaign is always detectable.
//
//   - Resumable generation: ExportDataset journals completed shards
//     into an append-only CHECKPOINT; an interrupted export restarted
//     with Resume verifies existing shards against the journal and
//     regenerates only the missing or corrupt ones. Generation is
//     deterministic (internal/dataset's planning pass), so a resumed
//     campaign is bit-identical to an uninterrupted one.
//
//   - Validating ingestion: LoadTests / LoadTrace layer a strict or
//     lenient loader over the CSV readers; lenient mode skips and
//     counts malformed rows into a LoadReport instead of aborting a
//     1,000-test load on one bad line.
//
//   - Fsck audits a dataset directory: manifest checksums, torn
//     renames, schema, row counts and timestamp monotonicity.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// tmpPrefix marks in-progress atomic writes. A leftover file with this
// prefix is a torn rename: the process died between writing the temp
// file and renaming it into place. Fsck flags such files; ExportDataset
// removes them before writing.
const tmpPrefix = ".satcell-tmp-"

// IsTempFile reports whether name is an in-progress atomic-write file.
func IsTempFile(name string) bool { return strings.HasPrefix(name, tmpPrefix) }

// WriteFileAtomic writes path by streaming write's output into a temp
// file in the same directory, then fsync + checked Close + rename +
// directory fsync. On any error the temp file is removed and the
// previous contents of path (if any) are untouched: readers never see a
// torn or truncated file, and an ENOSPC surfaces as an error instead of
// a silently short artifact.
func WriteFileAtomic(path string, write func(w io.Writer) error) (err error) {
	return WriteFileAtomicFS(nil, path, write)
}

// WriteFileAtomicFS is WriteFileAtomic through an explicit filesystem
// (nil means the real one).
func WriteFileAtomicFS(fsys FS, path string, write func(w io.Writer) error) (err error) {
	fsys = orOS(fsys)
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, tmpPrefix+filepath.Base(path)+"-")
	if err != nil {
		return fmt.Errorf("store: create temp for %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			fsys.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if err = write(bw); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("store: flush %s: %w", path, err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	return syncDir(fsys, dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(fsys FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("store: open dir %s: %w", dir, err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("store: fsync dir %s: %w", dir, serr)
	}
	return cerr
}

// HashFile returns the hex sha256 and byte size of the file at path.
func HashFile(path string) (sum string, size int64, err error) {
	return hashFile(nil, path)
}

func hashFile(fsys FS, path string) (sum string, size int64, err error) {
	f, err := orOS(fsys).Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err := io.Copy(h, f)
	if err != nil {
		return "", 0, fmt.Errorf("store: hash %s: %w", path, err)
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}

// DigestDir hashes every regular file under dir — names and contents,
// in sorted name order — into one hex sha256. Two directories share a
// digest iff they hold bit-identical artifact sets; the kill-and-resume
// tests pin golden values of this.
func DigestDir(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.Type().IsRegular() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	h := sha256.New()
	for _, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %s\n", name)
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return "", fmt.Errorf("store: digest %s: %w", name, err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// stripBOMReader removes a leading UTF-8 byte-order mark (spreadsheet
// tools prepend one when re-saving CSV artifacts).
func stripBOMReader(r io.Reader) io.Reader {
	br := bufio.NewReader(r)
	if b, err := br.Peek(3); err == nil && b[0] == 0xEF && b[1] == 0xBB && b[2] == 0xBF {
		br.Discard(3)
	}
	return br
}

// removeTempFiles deletes leftover atomic-write temp files (torn
// renames from a crashed export) under dir.
func removeTempFiles(fsys FS, dir string) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Type().IsRegular() && IsTempFile(e.Name()) {
			if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}
