package store

import (
	"encoding/json"
	"fmt"
	"path/filepath"
)

// checkpointEntry journals one completed shard.
type checkpointEntry struct {
	Name string `json:"name"`
	FileInfo
}

// checkpoint is the append-only shard journal of an in-flight export,
// built on the shared Journal primitive. Each completed shard appends
// one fsynced JSON line, so after a crash the journal names every shard
// that was durably renamed into place; a torn final line (crash
// mid-append) is ignored on replay.
type checkpoint struct {
	j *Journal
}

// openCheckpoint opens dir's journal through fsys. With resume=false
// any previous journal is discarded and a fresh one started. With
// resume=true the existing journal is replayed: its meta line must
// match meta, and the claimed entries are returned for the caller to
// verify against disk.
func openCheckpoint(fsys FS, dir string, meta JournalMeta, resume bool) (*checkpoint, map[string]FileInfo, error) {
	j, raw, err := OpenJournal(fsys, filepath.Join(dir, CheckpointName), meta, resume)
	if err != nil {
		return nil, nil, err
	}
	claimed := make(map[string]FileInfo)
	for _, line := range raw {
		var e checkpointEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// Replay already dropped the torn tail; a line that parses as
			// JSON but not as an entry is corruption, not a crash artifact.
			j.Close()
			return nil, nil, fmt.Errorf("store: parse %s entry: %w", CheckpointName, err)
		}
		if !safeArtifactName(e.Name) {
			j.Close()
			return nil, nil, fmt.Errorf("store: %s journals unsafe file name %q", CheckpointName, e.Name)
		}
		claimed[e.Name] = e.FileInfo
	}
	return &checkpoint{j: j}, claimed, nil
}

// record journals one completed shard durably.
func (c *checkpoint) record(name string, fi FileInfo) error {
	return c.j.Append(checkpointEntry{Name: name, FileInfo: fi})
}

// close closes the journal file (the journal itself stays on disk until
// the export finishes and removes it).
func (c *checkpoint) close() error { return c.j.Close() }
