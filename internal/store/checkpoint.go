package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// checkpointMeta is the first line of the CHECKPOINT journal: the
// campaign parameters the journal belongs to. A resume with different
// parameters would silently mix two campaigns, so it is refused.
type checkpointMeta struct {
	Schema int     `json:"schema"`
	Tool   string  `json:"tool"`
	Seed   int64   `json:"seed"`
	Scale  float64 `json:"scale"`
}

// checkpointEntry journals one completed shard.
type checkpointEntry struct {
	Name string `json:"name"`
	FileInfo
}

// checkpoint is the append-only shard journal of an in-flight export.
// Each completed shard appends one fsynced JSON line, so after a crash
// the journal names every shard that was durably renamed into place; a
// torn final line (crash mid-append) is ignored on replay.
type checkpoint struct {
	f File
}

// openCheckpoint opens dir's journal through fsys. With resume=false
// any previous journal is discarded and a fresh one started. With
// resume=true the existing journal is replayed: its meta line must
// match meta, and the claimed entries are returned for the caller to
// verify against disk.
func openCheckpoint(fsys FS, dir string, meta checkpointMeta, resume bool) (*checkpoint, map[string]FileInfo, error) {
	fsys = orOS(fsys)
	path := filepath.Join(dir, CheckpointName)
	claimed := make(map[string]FileInfo)
	if resume {
		prev, err := readCheckpoint(fsys, path)
		if err != nil {
			return nil, nil, err
		}
		if prev != nil {
			if prev.meta != meta {
				return nil, nil, fmt.Errorf(
					"store: resume mismatch: %s was generating tool=%s seed=%d scale=%g, asked to resume tool=%s seed=%d scale=%g",
					CheckpointName, prev.meta.Tool, prev.meta.Seed, prev.meta.Scale,
					meta.Tool, meta.Seed, meta.Scale)
			}
			claimed = prev.entries
			f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, nil, err
			}
			return &checkpoint{f: f}, claimed, nil
		}
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, nil, err
	}
	cp := &checkpoint{f: f}
	if err := cp.append(meta); err != nil {
		f.Close()
		return nil, nil, err
	}
	return cp, claimed, nil
}

// readCheckpoint replays a journal; a missing file returns (nil, nil).
type replayedCheckpoint struct {
	meta    checkpointMeta
	entries map[string]FileInfo
}

func readCheckpoint(fsys FS, path string) (*replayedCheckpoint, error) {
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		// Empty journal (crashed before the meta line landed): treat as
		// absent so the export starts a fresh one.
		return nil, sc.Err()
	}
	var meta checkpointMeta
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		return nil, fmt.Errorf("store: parse %s meta: %w", CheckpointName, err)
	}
	if meta.Schema < 1 || meta.Schema > SchemaVersion {
		return nil, fmt.Errorf("store: %s schema %d not supported (this build reads <= %d)",
			CheckpointName, meta.Schema, SchemaVersion)
	}
	out := &replayedCheckpoint{meta: meta, entries: make(map[string]FileInfo)}
	for sc.Scan() {
		var e checkpointEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			// A torn final line is the expected crash artifact; anything
			// journalled after it cannot exist, so stop replaying here.
			break
		}
		if !safeArtifactName(e.Name) {
			return nil, fmt.Errorf("store: %s journals unsafe file name %q", CheckpointName, e.Name)
		}
		out.entries[e.Name] = e.FileInfo
	}
	return out, sc.Err()
}

// record journals one completed shard durably.
func (c *checkpoint) record(name string, fi FileInfo) error {
	return c.append(checkpointEntry{Name: name, FileInfo: fi})
}

func (c *checkpoint) append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := c.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("store: append %s: %w", CheckpointName, err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync %s: %w", CheckpointName, err)
	}
	return nil
}

// close closes the journal file (the journal itself stays on disk until
// the export finishes and removes it).
func (c *checkpoint) close() error { return c.f.Close() }
