package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadTestsStrictRoundTrip(t *testing.T) {
	dir := exportClean(t)
	ds := testDataset()
	rows, rep, err := LoadTests(filepath.Join(dir, "tests.csv"), Strict)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ds.Tests) || rep.Skipped != 0 || rep.Rows != len(ds.Tests) {
		t.Fatalf("loaded %d rows (%s), want %d", len(rows), rep, len(ds.Tests))
	}
	for i := range ds.Tests {
		want := &ds.Tests[i]
		got := rows[i]
		if got.ID != want.ID || got.Network != want.Network.String() ||
			got.Kind != want.Kind.String() || got.Area != want.Area.String() ||
			got.Outcome != want.Outcome.String() {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, got, want)
		}
	}
}

func TestLoadTestsLenientSkipsAndCounts(t *testing.T) {
	dir := exportClean(t)
	path := filepath.Join(dir, "tests.csv")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) < 8 {
		t.Fatalf("campaign too small for the corruption plan: %d lines", len(lines))
	}
	total := len(lines) - 1
	// Inject four classes of malformed rows plus harmless blank noise.
	fields := strings.Split(lines[1], ",")
	fields[9] = "not-a-number"
	lines[1] = strings.Join(fields, ",") // bad throughput_mbps
	lines[3] = "short,row"               // wrong field count
	fields = strings.Split(lines[5], ",")
	fields[12] = "exploded"
	lines[5] = strings.Join(fields, ",") // unknown outcome
	fields = strings.Split(lines[7], ",")
	fields[0] = "id?"
	lines[7] = strings.Join(fields, ",") // bad id
	mangled := strings.Join(lines, "\r\n") + "\r\n\n   \n"
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	rows, rep, err := LoadTests(path, Lenient)
	if err != nil {
		t.Fatalf("lenient load aborted: %v", err)
	}
	const injected = 4
	if rep.Skipped != injected {
		t.Fatalf("skip count %d, want %d (report: %s, errors: %v)",
			rep.Skipped, injected, rep, rep.Errors)
	}
	if len(rows) != total-injected || rep.Rows != len(rows) {
		t.Fatalf("kept %d rows, want %d", len(rows), total-injected)
	}
	if len(rep.Errors) != injected {
		t.Fatalf("itemised %d errors, want %d", len(rep.Errors), injected)
	}
	for _, re := range rep.Errors {
		if re.Line == 0 || re.Err == "" {
			t.Fatalf("error without location: %+v", re)
		}
	}
	if _, _, err := LoadTests(path, Strict); err == nil {
		t.Fatal("strict load of a corrupted tests.csv must fail")
	}
}

func TestReadTestsStructuralErrors(t *testing.T) {
	rep := &LoadReport{}
	if _, err := ReadTests(strings.NewReader(""), "x.csv", Lenient, rep); err == nil {
		t.Fatal("empty tests file must fail even in lenient mode")
	}
	if _, err := ReadTests(strings.NewReader("id,network,kind\n"), "x.csv", Lenient, rep); err == nil {
		t.Fatal("missing required columns must fail even in lenient mode")
	}
}

func TestReadTestsOptionalColumns(t *testing.T) {
	// A minimal pre-outcome artifact: only the required columns.
	in := "network,kind,area,throughput_mbps,loss_rate,retrans_rate\n" +
		"MOB,udp-down,urban,93.50,0.01,0\n"
	rep := &LoadReport{}
	rows, err := ReadTests(strings.NewReader(in), "old.csv", Strict, rep)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].ThroughputMbps != 93.5 || rows[0].Outcome != "complete" {
		t.Fatalf("optional-column row mangled: %+v", rows)
	}
}

func TestLoadTraceLenient(t *testing.T) {
	dir := exportClean(t)
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	var shardName string
	for name := range m.Files {
		if name != "tests.csv" {
			shardName = name
			break
		}
	}
	path := filepath.Join(dir, shardName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	total := len(lines) - 1
	lines[2] = "garbage line that is not csv-ish,at all"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	tr, rep, err := LoadTrace(path, Lenient)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || len(tr.Samples) != total-1 || rep.Rows != total-1 {
		t.Fatalf("lenient trace load: %s, %d samples, want %d", rep, len(tr.Samples), total-1)
	}
	if _, _, err := LoadTrace(path, Strict); err == nil {
		t.Fatal("strict trace load of a corrupted shard must fail")
	}
}
