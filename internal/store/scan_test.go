package store

import (
	"errors"
	"path/filepath"
	"testing"

	"satcell/internal/channel"
)

func TestParseShardName(t *testing.T) {
	nets := []string{"RM", "MOB", "my_net"}
	cases := []struct {
		name  string
		ok    bool
		drive int
		route string
		net   channel.NetworkID
	}{
		{"drive003_gary-chicago_RM.csv", true, 3, "gary-chicago", "RM"},
		{"drive000_a_b_MOB.csv", true, 0, "a_b", "MOB"},
		{"drive012_route_my_net.csv", true, 12, "route", "my_net"},
		{"drive001_r_XX.csv", true, 1, "r", "XX"}, // unknown net: last-underscore split
		{"tests.csv", false, 0, "", ""},
		{"drive1_r_RM.csv", false, 0, "", ""},
		{"drive001_RM.txt", false, 0, "", ""},
	}
	for _, c := range cases {
		sh, ok := ParseShardName(c.name, nets)
		if ok != c.ok {
			t.Errorf("%s: ok=%v, want %v", c.name, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if sh.Drive != c.drive || sh.Route != c.route || sh.Network != c.net {
			t.Errorf("%s: parsed %+v", c.name, sh)
		}
	}
}

// TestParseShardNameInvertsShardName round-trips every (drive, route,
// network) combination through the writer-side name builder.
func TestParseShardNameInvertsShardName(t *testing.T) {
	for _, n := range channel.Networks {
		name := ShardName(41, "stpaul-minneapolis", n)
		sh, ok := ParseShardName(name, nil)
		if !ok || sh.Drive != 41 || sh.Route != "stpaul-minneapolis" || sh.Network != n {
			t.Fatalf("%s: parsed %+v ok=%v", name, sh, ok)
		}
	}
}

func TestListTraceShardsExportOrder(t *testing.T) {
	dir := exportClean(t)
	m, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m.Campaign == nil {
		t.Fatal("export wrote no campaign info")
	}
	ds := testDataset()
	if m.Campaign.Drives != len(ds.Drives) || m.Campaign.Km != ds.TotalKm {
		t.Fatalf("campaign info %+v disagrees with dataset (%d drives, %g km)",
			m.Campaign, len(ds.Drives), ds.TotalKm)
	}
	shards, err := ListTraceShards(m)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(ds.Drives) * len(channel.Networks); len(shards) != want {
		t.Fatalf("%d shards, want %d", len(shards), want)
	}
	for i, sh := range shards {
		wantDrive, wantNet := i/len(channel.Networks), channel.Networks[i%len(channel.Networks)]
		if sh.Drive != wantDrive || sh.Network != wantNet {
			t.Fatalf("shard %d is drive %d net %s, want drive %d net %s",
				i, sh.Drive, sh.Network, wantDrive, wantNet)
		}
		if sh.Name != ShardName(sh.Drive, sh.Route, sh.Network) {
			t.Fatalf("shard %d name %q does not rebuild from parts", i, sh.Name)
		}
	}
}

func TestScanTestsMatchesLoadTests(t *testing.T) {
	dir := exportClean(t)
	path := filepath.Join(dir, "tests.csv")
	rows, _, err := LoadTests(path, Strict)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []TestRow
	rep := &LoadReport{}
	if err := ScanTests(path, Strict, rep, func(row TestRow) error {
		streamed = append(streamed, row)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(rows) || rep.Rows != len(rows) {
		t.Fatalf("streamed %d rows (report %d), loader saw %d", len(streamed), rep.Rows, len(rows))
	}
	for i := range rows {
		if rows[i] != streamed[i] {
			t.Fatalf("row %d differs:\n load %+v\n scan %+v", i, rows[i], streamed[i])
		}
		if streamed[i].Drive < 0 {
			t.Fatalf("row %d: drive column missing from fresh export", i)
		}
	}
}

func TestScanTestsConsumerErrorAborts(t *testing.T) {
	dir := exportClean(t)
	boom := errors.New("boom")
	calls := 0
	err := ScanTests(filepath.Join(dir, "tests.csv"), Lenient, &LoadReport{}, func(TestRow) error {
		if calls++; calls == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 3 {
		t.Fatalf("err=%v after %d calls, want boom after 3", err, calls)
	}
}

func TestScanTraceMatchesLoadTrace(t *testing.T) {
	dir := exportClean(t)
	ds := testDataset()
	sh, ok := ParseShardName(ShardName(0, ds.Drives[0].Route, channel.Networks[0]), nil)
	if !ok {
		t.Fatal("canonical shard name failed to parse")
	}
	path := filepath.Join(dir, sh.Name)
	tr, _, err := LoadTrace(path, Strict)
	if err != nil {
		t.Fatal(err)
	}
	var recs []channel.Record
	rep := &LoadReport{}
	if err := ScanTrace(path, Strict, rep, func(n channel.NetworkID, r channel.Record) error {
		if n != sh.Network {
			t.Fatalf("record network %s, shard says %s", n, sh.Network)
		}
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(tr.Samples) || rep.Rows != len(recs) {
		t.Fatalf("scanned %d records (report %d), loader saw %d samples",
			len(recs), rep.Rows, len(tr.Samples))
	}
	for i := range recs {
		if recs[i].Sample != tr.Samples[i] {
			t.Fatalf("record %d sample differs", i)
		}
		if recs[i].Env.Area.String() == "unknown" {
			t.Fatalf("record %d: extended layout lost the area column", i)
		}
	}
}

func TestScanTraceConsumerErrorAborts(t *testing.T) {
	dir := exportClean(t)
	ds := testDataset()
	path := filepath.Join(dir, ShardName(0, ds.Drives[0].Route, channel.Networks[0]))
	boom := errors.New("boom")
	calls := 0
	err := ScanTrace(path, Lenient, &LoadReport{}, func(channel.NetworkID, channel.Record) error {
		if calls++; calls == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || calls != 5 {
		t.Fatalf("err=%v after %d calls, want boom after 5", err, calls)
	}
}

// TestExportedShardRoundTripsEnv locks the writer/reader pair: the
// extended trace layout written by the export preserves every record's
// environment, so a directory scan can rebuild figure inputs that need
// area, speed or burst state.
func TestExportedShardRoundTripsEnv(t *testing.T) {
	dir := exportClean(t)
	ds := testDataset()
	n := channel.Networks[1]
	di := len(ds.Drives) - 1
	want := ds.Drives[di].Observed[n]
	var got []channel.Record
	rep := &LoadReport{}
	path := filepath.Join(dir, ShardName(di, ds.Drives[di].Route, n))
	if err := ScanTrace(path, Strict, rep, func(_ channel.NetworkID, r channel.Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, drive holds %d", len(got), len(want))
	}
	for i := range got {
		w := want[i]
		g := got[i]
		if g.Env.Area != w.Env.Area || g.Sample.Burst != w.Sample.Burst ||
			g.Env.At != w.Env.At || g.Sample.At != w.Sample.At {
			t.Fatalf("record %d: got area=%v burst=%v at=%v, want area=%v burst=%v at=%v",
				i, g.Env.Area, g.Sample.Burst, g.Env.At, w.Env.Area, w.Sample.Burst, w.Env.At)
		}
	}
}
