package store

import (
	"io"
	"os"
)

// FS is the filesystem surface the store reads and writes through.
// Every scan, load and export path threads one of these instead of
// calling the os package directly, so disk-level faults are injectable
// (FaultFS) the same way network faults are on the live path: the
// crash-safety guarantees of this package are only worth trusting if
// they can be exercised against a misbehaving disk.
//
// The interface is deliberately small — exactly the calls the store
// makes — rather than a general VFS.
type FS interface {
	// Open opens the named file for reading.
	Open(name string) (File, error)
	// OpenFile is the generalised open (the checkpoint journal appends).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a new temp file in dir (os.CreateTemp pattern
	// semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically renames a finished temp file into place.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(name string, perm os.FileMode) error
}

// File is the open-file surface the store uses: reads, writes, fsync
// and a checked close. *os.File implements it.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Name() string
	Sync() error
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) MkdirAll(name string, perm os.FileMode) error { return os.MkdirAll(name, perm) }

// OS returns the real-filesystem implementation of FS. It is what every
// store entry point without an explicit FS uses.
func OS() FS { return osFS{} }

// orOS resolves a possibly-nil FS option to the real filesystem.
func orOS(fsys FS) FS {
	if fsys == nil {
		return OS()
	}
	return fsys
}
