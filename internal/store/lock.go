package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"time"
)

// LockName is the advisory lockfile guarding an artifact directory.
const LockName = "LOCK"

// lockInfo is the lockfile's content: enough to name the holder in an
// error and to detect that it is dead.
type lockInfo struct {
	PID   int    `json:"pid"`
	Start string `json:"start"`
	Tool  string `json:"tool"`
}

// Lock is a held advisory directory lock.
type Lock struct {
	fsys FS
	path string
}

// AcquireLock takes the advisory lock on dir (creating LockName with
// O_EXCL), so two writers — say a drivegen -resume and a campaign
// supervisor — cannot interleave atomic renames and checkpoint appends
// in one directory. A lockfile whose recorded pid is dead (or whose
// content is torn) is a crash leftover: it is taken over, not obeyed.
// A live holder yields an error naming its pid, tool and start time.
func AcquireLock(fsys FS, dir, tool string) (*Lock, error) {
	fsys = orOS(fsys)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	path := filepath.Join(dir, LockName)
	info := lockInfo{PID: os.Getpid(), Start: time.Now().UTC().Format(time.RFC3339), Tool: tool}
	b, err := json.Marshal(info)
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < 3; attempt++ {
		f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			if _, werr := f.Write(append(b, '\n')); werr != nil {
				f.Close()
				fsys.Remove(path)
				return nil, fmt.Errorf("store: write %s: %w", LockName, werr)
			}
			if serr := f.Sync(); serr != nil {
				f.Close()
				fsys.Remove(path)
				return nil, fmt.Errorf("store: fsync %s: %w", LockName, serr)
			}
			if cerr := f.Close(); cerr != nil {
				fsys.Remove(path)
				return nil, cerr
			}
			return &Lock{fsys: fsys, path: path}, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("store: %w", err)
		}
		holder, herr := readLockInfo(fsys, path)
		if herr == nil && holder.PID > 0 && pidAlive(holder.PID) {
			return nil, fmt.Errorf(
				"store: %s is locked by %s (pid %d, started %s); if that process is gone, remove %s",
				dir, holder.Tool, holder.PID, holder.Start, path)
		}
		// Dead pid, unreadable or torn lockfile: a crash left it behind.
		// Remove and retry the exclusive create — losing the race to
		// another taker is fine, the next attempt sees their live lock.
		if rerr := fsys.Remove(path); rerr != nil && !os.IsNotExist(rerr) {
			return nil, fmt.Errorf("store: take over stale %s: %w", LockName, rerr)
		}
	}
	return nil, fmt.Errorf("store: could not acquire %s after stale-lock takeovers", path)
}

// readLockInfo parses the lockfile; any unreadable content is an error
// (the caller treats it as stale).
func readLockInfo(fsys FS, path string) (lockInfo, error) {
	var info lockInfo
	f, err := fsys.Open(path)
	if err != nil {
		return info, err
	}
	defer f.Close()
	b, err := io.ReadAll(io.LimitReader(f, 4096))
	if err != nil {
		return info, err
	}
	if err := json.Unmarshal(b, &info); err != nil {
		return info, err
	}
	return info, nil
}

// pidAlive reports whether pid exists (signal 0 probe). EPERM means it
// exists under another uid — still alive for locking purposes.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}

// Release drops the lock. Safe to call more than once.
func (l *Lock) Release() error {
	if l == nil || l.path == "" {
		return nil
	}
	path := l.path
	l.path = ""
	if err := l.fsys.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
