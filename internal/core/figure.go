// Package core turns the generated driving dataset into the paper's
// evaluation artifacts: one analysis function per figure (Fig. 1 through
// Fig. 11), each returning a Figure holding the plotted series plus the
// headline statistics (KPIs) that the calibration tests and
// EXPERIMENTS.md compare against the paper's reported values.
package core

import (
	"fmt"
	"sort"
	"strings"

	"satcell/internal/report"
)

// SeriesKind describes how a figure's data would be plotted.
type SeriesKind int

// Figure data kinds.
const (
	CDF SeriesKind = iota
	TimeSeries
	Bars
	BoxPlot
	StackedBars
)

// Series is one labelled data series of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is the reproduction of one paper figure.
type Figure struct {
	ID    string
	Title string
	Kind  SeriesKind
	// XLabel/YLabel document the axes.
	XLabel, YLabel string
	Series         []Series
	// KPIs are the figure's headline numbers (e.g. "mob_udp_mean_mbps").
	KPIs map[string]float64
	// Notes records free-form observations.
	Notes []string
}

// KPI returns a KPI value (0 if absent).
func (f *Figure) KPI(name string) float64 { return f.KPIs[name] }

func (f *Figure) addKPI(name string, v float64) {
	if f.KPIs == nil {
		f.KPIs = make(map[string]float64)
	}
	f.KPIs[name] = v
}

// Render produces a plain-text rendition of the figure: headline KPIs
// followed by an ASCII plot of the series.
func (f *Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", f.ID, f.Title)
	if len(f.KPIs) > 0 {
		keys := make([]string, 0, len(f.KPIs))
		for k := range f.KPIs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-38s %10.3f\n", k, f.KPIs[k])
		}
	}
	b.WriteString(f.renderPlot())
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// renderPlot draws the figure's series with the ASCII plot toolkit.
func (f *Figure) renderPlot() string {
	if len(f.Series) == 0 {
		return ""
	}
	switch f.Kind {
	case CDF, TimeSeries:
		lines := make([]report.Line, 0, len(f.Series))
		for _, s := range f.Series {
			if len(s.X) == 0 {
				continue
			}
			lines = append(lines, report.Line{Label: s.Label, X: s.X, Y: s.Y})
		}
		return report.LinePlot("", f.XLabel, f.YLabel, 72, 16, lines)
	case StackedBars:
		cols := make([]report.Stacked, 0, len(f.Series))
		for _, s := range f.Series {
			cols = append(cols, report.Stacked{Label: s.Label, Shares: s.Y})
		}
		return report.StackedChart("", PerfLevelNames, 60, cols)
	default: // Bars, BoxPlot
		var b strings.Builder
		for _, s := range f.Series {
			bars := make([]report.Bar, 0, len(s.X))
			for i := range s.X {
				bars = append(bars, report.Bar{Label: fmt.Sprintf("%.4g", s.X[i]), Value: s.Y[i]})
			}
			b.WriteString(report.BarChart("  -- "+s.Label, f.YLabel, 40, bars))
		}
		return b.String()
	}
}

// CSV renders the figure's series as CSV (long format:
// series,x,y — one row per point).
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Label, s.X[i], s.Y[i])
		}
	}
	return b.String()
}
