package core

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/store"
)

// StoreSource streams a PR-3 artifact directory (MANIFEST + per-drive
// per-network trace shards + tests.csv) through the analysis pipeline
// without ever holding more than one drive in memory. Planning reads
// the control files (MANIFEST, tests.csv — structural, fatal in every
// mode); loading scans one drive's trace shards, concurrently and
// repeatably, so the supervisor can retry or quarantine drives
// individually.
//
// The trace CSVs round samples to fixed decimals, so a directory scan
// is not bit-identical to analyzing the generating dataset in memory —
// but it IS bit-identical across worker counts, and every measured
// value is within CSV rounding of the in-memory result.
type StoreSource struct {
	dir      string
	mode     store.Mode
	fsys     store.FS
	manifest *store.Manifest
	shards   []store.TraceShard
	networks []channel.NetworkID
	// groups and tests are the per-drive plan, fixed by Plan.
	groups [][]store.TraceShard
	tests  map[int][]store.TestRow

	// mu guards Report: shard loads run concurrently, and a load's
	// row/skip counts are published only when the whole shard succeeds,
	// so a retried or quarantined attempt never double-counts.
	mu sync.Mutex
	// Report accumulates row/skip counts across the scan (meaningful
	// after the analysis returns; Lenient mode counts skipped rows
	// here).
	Report store.LoadReport
}

// OpenStoreSource validates dir's manifest and prepares the shard scan.
func OpenStoreSource(dir string, mode store.Mode) (*StoreSource, error) {
	return OpenStoreSourceFS(nil, dir, mode)
}

// OpenStoreSourceFS is OpenStoreSource through an explicit filesystem
// (nil means the real one); the disk-fault chaos suite opens sources
// over a store.FaultFS.
func OpenStoreSourceFS(fsys store.FS, dir string, mode store.Mode) (*StoreSource, error) {
	m, err := store.ReadManifestFS(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("core: open store source: %w", err)
	}
	shards, err := store.ListTraceShards(m)
	if err != nil {
		return nil, err
	}
	s := &StoreSource{dir: dir, mode: mode, fsys: fsys, manifest: m, shards: shards}
	s.networks = s.campaignNetworks()
	return s, nil
}

// campaignNetworks resolves the campaign's network order: the
// manifest's recorded list when present, else the distinct networks of
// the first drive's shards in name order (an older artifact's best
// available approximation).
func (s *StoreSource) campaignNetworks() []channel.NetworkID {
	if c := s.manifest.Campaign; c != nil && len(c.Networks) > 0 {
		out := make([]channel.NetworkID, len(c.Networks))
		for i, id := range c.Networks {
			out[i] = channel.NetworkID(id)
		}
		return out
	}
	var out []channel.NetworkID
	seen := make(map[channel.NetworkID]bool)
	for _, sh := range s.shards {
		if sh.Drive != s.shards[0].Drive {
			break
		}
		if !seen[sh.Network] {
			seen[sh.Network] = true
			out = append(out, sh.Network)
		}
	}
	return out
}

// Info implements ShardSource.
func (s *StoreSource) Info() (SourceInfo, error) {
	info := SourceInfo{Networks: s.networks, Seed: s.manifest.Seed}
	if c := s.manifest.Campaign; c != nil {
		info.TotalKm, info.TotalTestMin = c.Km, c.TestMin
	}
	return info, nil
}

// Plan implements ShardSource: scan tests.csv once (a control file —
// an unreadable one fails the run in every mode) and group the trace
// shards by drive, in MANIFEST (export) order: drive-major, networks
// in campaign order within a drive.
func (s *StoreSource) Plan() ([]ShardRef, error) {
	tests, err := s.groupTests()
	if err != nil {
		return nil, err
	}
	s.tests = tests
	s.groups = nil
	var refs []ShardRef
	for i := 0; i < len(s.shards); {
		drive := s.shards[i].Drive
		j := i
		for ; j < len(s.shards) && s.shards[j].Drive == drive; j++ {
		}
		refs = append(refs, ShardRef{Index: len(refs), Drive: drive,
			Label: fmt.Sprintf("drive%03d_%s", drive, s.shards[i].Route)})
		s.groups = append(s.groups, s.shards[i:j])
		i = j
	}
	return refs, nil
}

// Load implements ShardSource: stream one drive's trace shards and
// rebuild its tests. Peak memory is one drive's records; the load is
// self-contained, so the supervisor can run it concurrently with other
// drives and repeat it after a transient I/O failure.
func (s *StoreSource) Load(ref ShardRef) (*Shard, error) {
	group := s.groups[ref.Index]
	var local store.LoadReport
	sh := &Shard{Drive: ref.Drive, Route: group[0].Route,
		Records: make(map[channel.NetworkID][]channel.Record, len(group))}
	for _, ts := range group {
		recs := make([]channel.Record, 0, ts.Rows)
		err := store.ScanTraceFS(s.fsys, filepath.Join(s.dir, ts.Name), s.mode, &local,
			func(n channel.NetworkID, r channel.Record) error {
				recs = append(recs, r)
				return nil
			})
		if err != nil {
			return nil, err
		}
		sh.Records[ts.Network] = recs
	}
	rows := s.tests[ref.Drive]
	sh.Tests = make([]*dataset.Test, 0, len(rows))
	for _, row := range rows {
		t, err := rebuildTest(row, ref.Drive, sh)
		if err != nil {
			return nil, err
		}
		t.Reevaluate(s.manifest.Seed)
		sh.Tests = append(sh.Tests, t)
		if sh.State == "" {
			sh.State = t.State
		}
	}
	s.mu.Lock()
	s.Report.Merge(&local)
	s.mu.Unlock()
	return sh, nil
}

// groupTests scans tests.csv once and buckets rows by drive. Rows from
// artifacts predating the drive column (Drive == -1) fall back to a
// boundary heuristic: tests.csv is written in dataset order (drive-
// major, start ascending within a drive), so a route change or a start
// regression marks the next drive.
func (s *StoreSource) groupTests() (map[int][]store.TestRow, error) {
	out := make(map[int][]store.TestRow)
	heuristicDrive := 0
	var prev *store.TestRow
	var local store.LoadReport
	// The grouped rows live for the whole scan, and each row's string
	// fields pin the CSV line they were sliced from; interning the few
	// distinct values drops those lines as soon as they are parsed.
	interned := make(map[string]string)
	intern := func(v string) string {
		if c, ok := interned[v]; ok {
			return c
		}
		c := strings.Clone(v)
		interned[c] = c
		return c
	}
	err := store.ScanTestsFS(s.fsys, filepath.Join(s.dir, "tests.csv"), s.mode, &local,
		func(row store.TestRow) error {
			drive := row.Drive
			if drive < 0 {
				if prev != nil && (row.Route != prev.Route || row.StartS < prev.StartS) {
					heuristicDrive++
				}
				drive = heuristicDrive
			}
			r := row
			prev = &r
			row.Network, row.Kind, row.Route = intern(row.Network), intern(row.Kind), intern(row.Route)
			row.State, row.Area, row.Outcome = intern(row.State), intern(row.Area), intern(row.Outcome)
			out[drive] = append(out[drive], row)
			return nil
		})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.Report.Merge(&local)
	s.mu.Unlock()
	return out, nil
}

// rebuildTest reconstructs one dataset.Test from its tests.csv row and
// the drive's scanned records; the caller re-evaluates it to recompute
// the measured values deterministically.
func rebuildTest(row store.TestRow, drive int, sh *Shard) (*dataset.Test, error) {
	n := channel.NetworkID(row.Network)
	recs, ok := sh.Records[n]
	if !ok {
		return nil, fmt.Errorf("core: test %d names network %q with no trace shard in drive %d",
			row.ID, row.Network, drive)
	}
	kind, err := dataset.ParseKind(row.Kind)
	if err != nil {
		return nil, fmt.Errorf("core: test %d has unknown kind %q", row.ID, row.Kind)
	}
	start := time.Duration(row.StartS * float64(time.Second))
	dur := time.Duration(row.DurationS * float64(time.Second))
	t := &dataset.Test{
		ID: row.ID, Network: n, Kind: kind, Drive: drive,
		Route: row.Route, State: row.State,
		Start: start, Duration: dur,
		Records: windowRecords(recs, start, start+dur),
	}
	return t, nil
}

// windowRecords selects the records with start <= Env.At < end,
// replicating the dataset generator's test-window carve. Trace shards
// are written (and therefore scanned) in ascending Env.At order, so the
// window is a contiguous range and can alias the drive's record slice:
// copying it would put most of the drive on the heap a second time,
// once per overlapping test.
func windowRecords(recs []channel.Record, from, to time.Duration) []channel.Record {
	lo := sort.Search(len(recs), func(i int) bool { return recs[i].Env.At >= from })
	hi := lo + sort.Search(len(recs)-lo, func(i int) bool { return recs[lo+i].Env.At >= to })
	return recs[lo:hi:hi]
}
