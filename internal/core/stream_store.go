package core

import (
	"fmt"
	"path/filepath"
	"time"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/store"
)

// StoreSource streams a PR-3 artifact directory (MANIFEST + per-drive
// per-network trace shards + tests.csv) through the analysis pipeline
// without ever holding more than one drive in memory. Shards are
// scanned in MANIFEST (export) order: drive-major, networks in campaign
// order.
//
// The trace CSVs round samples to fixed decimals, so a directory scan
// is not bit-identical to analyzing the generating dataset in memory —
// but it IS bit-identical across worker counts, and every measured
// value is within CSV rounding of the in-memory result.
type StoreSource struct {
	dir      string
	mode     store.Mode
	manifest *store.Manifest
	shards   []store.TraceShard
	networks []channel.NetworkID
	// Report accumulates row/skip counts across the scan (meaningful
	// after Shards returns; Lenient mode counts skipped rows here).
	Report store.LoadReport
}

// OpenStoreSource validates dir's manifest and plans the shard scan.
func OpenStoreSource(dir string, mode store.Mode) (*StoreSource, error) {
	m, err := store.ReadManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("core: open store source: %w", err)
	}
	shards, err := store.ListTraceShards(m)
	if err != nil {
		return nil, err
	}
	s := &StoreSource{dir: dir, mode: mode, manifest: m, shards: shards}
	s.networks = s.campaignNetworks()
	return s, nil
}

// campaignNetworks resolves the campaign's network order: the
// manifest's recorded list when present, else the distinct networks of
// the first drive's shards in name order (an older artifact's best
// available approximation).
func (s *StoreSource) campaignNetworks() []channel.NetworkID {
	if c := s.manifest.Campaign; c != nil && len(c.Networks) > 0 {
		out := make([]channel.NetworkID, len(c.Networks))
		for i, id := range c.Networks {
			out[i] = channel.NetworkID(id)
		}
		return out
	}
	var out []channel.NetworkID
	seen := make(map[channel.NetworkID]bool)
	for _, sh := range s.shards {
		if sh.Drive != s.shards[0].Drive {
			break
		}
		if !seen[sh.Network] {
			seen[sh.Network] = true
			out = append(out, sh.Network)
		}
	}
	return out
}

// Info implements ShardSource.
func (s *StoreSource) Info() (SourceInfo, error) {
	info := SourceInfo{Networks: s.networks, Seed: s.manifest.Seed}
	if c := s.manifest.Campaign; c != nil {
		info.TotalKm, info.TotalTestMin = c.Km, c.TestMin
	}
	return info, nil
}

// Shards implements ShardSource: for each drive, stream its trace
// shards and tests.csv rows into one Shard, then release it before the
// next. Peak memory is one drive's records plus the accumulated
// sketches.
func (s *StoreSource) Shards(yield func(*Shard) error) error {
	testsByDrive, err := s.groupTests()
	if err != nil {
		return err
	}
	for i := 0; i < len(s.shards); {
		drive := s.shards[i].Drive
		sh := &Shard{Drive: drive, Route: s.shards[i].Route, Records: make(map[channel.NetworkID][]channel.Record)}
		for ; i < len(s.shards) && s.shards[i].Drive == drive; i++ {
			ts := s.shards[i]
			recs := make([]channel.Record, 0, ts.Rows)
			err := store.ScanTrace(filepath.Join(s.dir, ts.Name), s.mode, &s.Report,
				func(n channel.NetworkID, r channel.Record) error {
					recs = append(recs, r)
					return nil
				})
			if err != nil {
				return err
			}
			sh.Records[ts.Network] = recs
		}
		rows := testsByDrive[drive]
		sh.Tests = make([]*dataset.Test, 0, len(rows))
		for _, row := range rows {
			t, err := rebuildTest(row, drive, sh)
			if err != nil {
				return err
			}
			t.Reevaluate(s.manifest.Seed)
			sh.Tests = append(sh.Tests, t)
			if sh.State == "" {
				sh.State = t.State
			}
		}
		if err := yield(sh); err != nil {
			return err
		}
	}
	return nil
}

// groupTests scans tests.csv once and buckets rows by drive. Rows from
// artifacts predating the drive column (Drive == -1) fall back to a
// boundary heuristic: tests.csv is written in dataset order (drive-
// major, start ascending within a drive), so a route change or a start
// regression marks the next drive.
func (s *StoreSource) groupTests() (map[int][]store.TestRow, error) {
	out := make(map[int][]store.TestRow)
	heuristicDrive := 0
	var prev *store.TestRow
	err := store.ScanTests(filepath.Join(s.dir, "tests.csv"), s.mode, &s.Report,
		func(row store.TestRow) error {
			drive := row.Drive
			if drive < 0 {
				if prev != nil && (row.Route != prev.Route || row.StartS < prev.StartS) {
					heuristicDrive++
				}
				drive = heuristicDrive
			}
			r := row
			prev = &r
			out[drive] = append(out[drive], row)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// rebuildTest reconstructs one dataset.Test from its tests.csv row and
// the drive's scanned records; the caller re-evaluates it to recompute
// the measured values deterministically.
func rebuildTest(row store.TestRow, drive int, sh *Shard) (*dataset.Test, error) {
	n := channel.NetworkID(row.Network)
	recs, ok := sh.Records[n]
	if !ok {
		return nil, fmt.Errorf("core: test %d names network %q with no trace shard in drive %d",
			row.ID, row.Network, drive)
	}
	kind, err := dataset.ParseKind(row.Kind)
	if err != nil {
		return nil, fmt.Errorf("core: test %d has unknown kind %q", row.ID, row.Kind)
	}
	start := time.Duration(row.StartS * float64(time.Second))
	dur := time.Duration(row.DurationS * float64(time.Second))
	t := &dataset.Test{
		ID: row.ID, Network: n, Kind: kind, Drive: drive,
		Route: row.Route, State: row.State,
		Start: start, Duration: dur,
		Records: windowRecords(recs, start, start+dur),
	}
	return t, nil
}

// windowRecords selects the records with start <= Env.At < end,
// replicating the dataset generator's test-window carve.
func windowRecords(recs []channel.Record, from, to time.Duration) []channel.Record {
	out := make([]channel.Record, 0, int((to-from)/time.Second)+1)
	for _, r := range recs {
		if r.Env.At >= from && r.Env.At < to {
			out = append(out, r)
		}
	}
	return out
}
