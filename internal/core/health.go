package core

import (
	"fmt"
	"sort"
)

// DataHealthFigure summarises ingestion health as a Figure: how many
// rows the validating loader kept versus skipped, and the campaign's
// outcome mix — the same skip-and-count surface the analyzer gives
// failed tests, extended to malformed artifact rows. The analysis CLI
// renders it ahead of the per-network summaries so dirty inputs are
// visible next to the numbers they could have distorted.
func DataHealthFigure(files, rows, skipped int, outcomes map[string]int) *Figure {
	f := &Figure{
		ID:     "health",
		Title:  "Dataset ingestion health",
		Kind:   Bars,
		YLabel: "tests",
	}
	f.addKPI("files_loaded", float64(files))
	f.addKPI("rows_loaded", float64(rows))
	f.addKPI("rows_skipped", float64(skipped))
	if rows+skipped > 0 {
		f.addKPI("rows_skipped_share", float64(skipped)/float64(rows+skipped))
	}
	names := make([]string, 0, len(outcomes))
	for name := range outcomes {
		names = append(names, name)
	}
	sort.Strings(names)
	s := Series{Label: "outcomes"}
	for i, name := range names {
		f.addKPI("outcome_"+name, float64(outcomes[name]))
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, float64(outcomes[name]))
	}
	if len(names) > 0 {
		f.Series = append(f.Series, s)
		f.Notes = append(f.Notes, fmt.Sprintf("outcome order: %v", names))
	}
	if skipped > 0 {
		f.Notes = append(f.Notes,
			fmt.Sprintf("%d malformed rows skipped by the lenient loader (rerun with -strict to fail fast, or satcell-analyze -fsck to audit the artifact)", skipped))
	}
	return f
}

// CompletenessFigure renders a streamed run's ingestion certificate as
// a Figure, next to the numbers a partial scan could have distorted:
// shards planned/scanned/retried/quarantined as KPIs, plus one note
// per quarantined shard naming the failure class and cause.
func CompletenessFigure(c *Completeness) *Figure {
	f := &Figure{
		ID:     "completeness",
		Title:  "Streamed scan completeness certificate",
		Kind:   Bars,
		YLabel: "shards",
	}
	f.addKPI("shards_planned", float64(c.ShardsPlanned))
	f.addKPI("shards_scanned", float64(c.ShardsScanned))
	f.addKPI("shards_retried", float64(c.ShardsRetried))
	f.addKPI("retries", float64(c.Retries))
	f.addKPI("shards_quarantined", float64(c.ShardsQuarantined))
	f.addKPI("recovered_panics", float64(c.RecoveredPanics))
	complete := 0.0
	if c.Complete() {
		complete = 1
	}
	f.addKPI("complete", complete)
	f.Series = append(f.Series, Series{
		Label: "shards",
		X:     []float64{0, 1, 2},
		Y: []float64{float64(c.ShardsPlanned), float64(c.ShardsScanned),
			float64(c.ShardsQuarantined)},
	})
	f.Notes = append(f.Notes, c.String())
	for _, q := range c.Quarantined {
		f.Notes = append(f.Notes, "quarantined "+q.String())
	}
	return f
}
