package core

import (
	"fmt"
	"sort"
)

// DataHealthFigure summarises ingestion health as a Figure: how many
// rows the validating loader kept versus skipped, and the campaign's
// outcome mix — the same skip-and-count surface the analyzer gives
// failed tests, extended to malformed artifact rows. The analysis CLI
// renders it ahead of the per-network summaries so dirty inputs are
// visible next to the numbers they could have distorted.
func DataHealthFigure(files, rows, skipped int, outcomes map[string]int) *Figure {
	f := &Figure{
		ID:     "health",
		Title:  "Dataset ingestion health",
		Kind:   Bars,
		YLabel: "tests",
	}
	f.addKPI("files_loaded", float64(files))
	f.addKPI("rows_loaded", float64(rows))
	f.addKPI("rows_skipped", float64(skipped))
	if rows+skipped > 0 {
		f.addKPI("rows_skipped_share", float64(skipped)/float64(rows+skipped))
	}
	names := make([]string, 0, len(outcomes))
	for name := range outcomes {
		names = append(names, name)
	}
	sort.Strings(names)
	s := Series{Label: "outcomes"}
	for i, name := range names {
		f.addKPI("outcome_"+name, float64(outcomes[name]))
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, float64(outcomes[name]))
	}
	if len(names) > 0 {
		f.Series = append(f.Series, s)
		f.Notes = append(f.Notes, fmt.Sprintf("outcome order: %v", names))
	}
	if skipped > 0 {
		f.Notes = append(f.Notes,
			fmt.Sprintf("%d malformed rows skipped by the lenient loader (rerun with -strict to fail fast, or satcell-analyze -fsck to audit the artifact)", skipped))
	}
	return f
}
