package core

import (
	"fmt"
	"time"

	"satcell/internal/channel"
	"satcell/internal/emu"
	"satcell/internal/mptcp"
	"satcell/internal/stats"
	"satcell/internal/tcp"
	"satcell/internal/trace"
)

// MultipathConfig tunes the §6 emulation pipeline.
type MultipathConfig struct {
	// WindowSeconds is the length of each replayed download (the paper
	// uses 5-minute tests). Default 300.
	WindowSeconds int
	// Windows is how many aligned trace windows to replay. Default 3.
	Windows int
	// TunedBuf / UntunedBuf are the connection receive buffers compared
	// by Fig. 10. Untuned defaults to 2 MB (OS default autotuning
	// reach); tuned defaults to 10x a 200 Mbps x 80 ms BDP (§6: "we
	// increase the buffer size to exceed 10x the link's BDP").
	TunedBuf   int
	UntunedBuf int
	// Scheduler defaults to BLEST (the kernel v5.19 default, §6).
	Scheduler func() mptcp.Scheduler
	// QueueBytes is the emulated bottleneck buffer per direction.
	QueueBytes int
}

func (c *MultipathConfig) defaults() {
	if c.WindowSeconds <= 0 {
		c.WindowSeconds = 300
	}
	if c.Windows <= 0 {
		c.Windows = 3
	}
	if c.TunedBuf <= 0 {
		c.TunedBuf = 20 << 20
	}
	if c.UntunedBuf <= 0 {
		c.UntunedBuf = 2 << 20
	}
	if c.Scheduler == nil {
		c.Scheduler = func() mptcp.Scheduler { return mptcp.NewBLEST() }
	}
	if c.QueueBytes <= 0 {
		// Starlink user terminals are deeply buffered (bufferbloat to
		// hundreds of ms is well documented); a deep queue also lets
		// the replay absorb the 15 s capacity reallocation steps.
		c.QueueBytes = 3 << 20 / 2
	}
}

// MultipathRun is the outcome of one replay window for one setup.
type MultipathRun struct {
	Label    string
	Mbps     float64
	Series   []float64 // per-second goodput
	Capacity float64   // mean combined path capacity over the window
}

// runSingleTCP replays one single-path TCP download over a trace window.
func runSingleTCP(tr *channel.Trace, dur time.Duration, queue int, seed int64) MultipathRun {
	eng := emu.NewEngine()
	dp := emu.NewDuplexPath(eng, tr, emu.PathConfig{Seed: seed, QueueBytes: queue})
	conn := tcp.NewDownload(eng, dp, 1, tcp.Config{})
	conn.Start()
	eng.RunUntil(dur)
	conn.Stop()
	return MultipathRun{
		Label:    tr.Network.String(),
		Mbps:     conn.MeanGoodputMbps(dur),
		Series:   conn.Goodput().Values(),
		Capacity: stats.Mean(tr.DownSeries()),
	}
}

// runMPTCP replays one multipath download over aligned trace windows.
func runMPTCP(traces []*channel.Trace, dur time.Duration, rcvBuf, queue int, sched mptcp.Scheduler, seed int64) MultipathRun {
	eng := emu.NewEngine()
	paths := make([]*emu.DuplexPath, len(traces))
	label := ""
	capacity := 0.0
	for i, tr := range traces {
		paths[i] = emu.NewDuplexPath(eng, tr, emu.PathConfig{Seed: seed + int64(i), QueueBytes: queue})
		if label != "" {
			label += "+"
		}
		label += tr.Network.String()
		capacity += stats.Mean(tr.DownSeries())
	}
	conn := mptcp.NewConn(eng, paths, 100, mptcp.Config{RcvBuf: rcvBuf, Scheduler: sched})
	conn.Start()
	eng.RunUntil(dur)
	conn.Stop()
	return MultipathRun{
		Label:    label,
		Mbps:     conn.MeanGoodputMbps(dur),
		Series:   conn.Goodput().Values(),
		Capacity: capacity,
	}
}

// alignedWindows extracts n aligned trace windows of the given length
// for the networks of interest, spread across the dataset's drives.
// Matching the paper's MpShell methodology (§6), the windows replay the
// *UDP capacity* traces: rate and latency vary, outages become zero
// delivery opportunities, but no random wire loss is injected — loss
// emerges from droptail queues, exactly as in Mahimahi.
func (a *Analyzer) alignedWindows(winDur time.Duration, n int) [][]*channel.Trace {
	var out [][]*channel.Trace
	need := []channel.NetworkID{channel.StarlinkMobility, channel.ATT, channel.Verizon}
	// The §6 replays pair Starlink Mobility with AT&T and Verizon; a
	// scenario that did not measure all three has no aligned windows and
	// the multipath figures degrade to their "no windows" note.
	for _, n := range need {
		if !a.has(n) {
			return nil
		}
	}
	var fallback [][]*channel.Trace
	for di := 0; di < len(a.DS.Drives) && len(out) < n; di++ {
		d := &a.DS.Drives[di]
		dur := time.Duration(len(d.Fixes)) * time.Second
		for off := time.Duration(0); off+winDur <= dur && len(out) < n; off += winDur + 60*time.Second {
			var ws []*channel.Trace
			for _, net := range need {
				full := d.Trace(net)
				ws = append(ws, replayTrace(full.Slice(off, off+winDur)))
			}
			aligned := trace.Align(ws...)
			// The paper's MPTCP experiments replay windows where both
			// network types are usable (its Fig. 11 shows healthy
			// single-path throughput); skip dead-urban windows.
			if windowUsable(aligned) {
				out = append(out, aligned)
			} else {
				fallback = append(fallback, aligned)
			}
		}
	}
	for len(out) < n && len(fallback) > 0 {
		out = append(out, fallback[0])
		fallback = fallback[1:]
	}
	return out
}

// windowUsable requires decent Starlink capacity and bounded outage on
// every path in the window.
func windowUsable(ws []*channel.Trace) bool {
	for i, tr := range ws {
		outage := 0
		for _, s := range tr.Samples {
			if s.Outage || s.DownMbps < 1 {
				outage++
			}
		}
		if len(tr.Samples) == 0 || float64(outage)/float64(len(tr.Samples)) > 0.2 {
			return false
		}
		if i == 0 {
			mean := stats.Mean(tr.DownSeries())
			// Keep the Starlink path in its typical band: too weak and
			// the window is an urban outage stretch; extreme highs are
			// unrepresentative single-user bursts.
			if mean < 50 || mean > 250 {
				return false
			}
		}
	}
	return true
}

// replayTrace converts a measured channel trace into its MpShell replay
// form: capacity and RTT preserved, random loss stripped.
func replayTrace(tr *channel.Trace) *channel.Trace {
	out := &channel.Trace{Network: tr.Network}
	lastRTT := 50 * time.Millisecond
	for _, s := range tr.Samples {
		s.LossDown, s.LossUp = 0, 0
		s.Burst = false
		if s.RTT == 0 {
			s.RTT = lastRTT // outage seconds keep the last known latency
		}
		lastRTT = s.RTT
		out.Samples = append(out.Samples, s)
	}
	return out
}

// Figure10 reproduces the single-path vs MPTCP comparison: 5-minute
// downloads over aligned Starlink/cellular traces, tuned vs untuned
// connection buffers.
func (a *Analyzer) Figure10(cfg MultipathConfig) *Figure {
	cfg.defaults()
	f := &Figure{
		ID: "fig10", Title: "Single-path TCP vs MPTCP download performance",
		Kind: BoxPlot, XLabel: "setup", YLabel: "throughput (Mbps)",
	}
	winDur := time.Duration(cfg.WindowSeconds) * time.Second
	windows := a.alignedWindows(winDur, cfg.Windows)
	if len(windows) == 0 {
		f.Notes = append(f.Notes, "no aligned windows available")
		return f
	}

	collect := map[string][]float64{}
	var utilSum, utilN float64
	var gainATT, gainVZ []float64
	var gainATTUntuned, gainVZUntuned []float64
	for wi, ws := range windows {
		mobTr, attTr, vzTr := ws[0], ws[1], ws[2]
		seed := a.Seed + int64(wi*100)
		att := runSingleTCP(attTr, winDur, cfg.QueueBytes, seed+1)
		vz := runSingleTCP(vzTr, winDur, cfg.QueueBytes, seed+2)
		mob := runSingleTCP(mobTr, winDur, cfg.QueueBytes, seed+3)
		mpATT := runMPTCP([]*channel.Trace{mobTr, attTr}, winDur, cfg.TunedBuf, cfg.QueueBytes, cfg.Scheduler(), seed+4)
		mpVZ := runMPTCP([]*channel.Trace{mobTr, vzTr}, winDur, cfg.TunedBuf, cfg.QueueBytes, cfg.Scheduler(), seed+6)
		mpATTu := runMPTCP([]*channel.Trace{mobTr, attTr}, winDur, cfg.UntunedBuf, cfg.QueueBytes, cfg.Scheduler(), seed+8)
		mpVZu := runMPTCP([]*channel.Trace{mobTr, vzTr}, winDur, cfg.UntunedBuf, cfg.QueueBytes, cfg.Scheduler(), seed+10)

		collect["ATT"] = append(collect["ATT"], att.Mbps)
		collect["VZ"] = append(collect["VZ"], vz.Mbps)
		collect["MOB"] = append(collect["MOB"], mob.Mbps)
		collect["MOB+ATT"] = append(collect["MOB+ATT"], mpATT.Mbps)
		collect["MOB+VZ"] = append(collect["MOB+VZ"], mpVZ.Mbps)
		collect["MOB+ATT-untuned"] = append(collect["MOB+ATT-untuned"], mpATTu.Mbps)
		collect["MOB+VZ-untuned"] = append(collect["MOB+VZ-untuned"], mpVZu.Mbps)

		if mpATT.Capacity > 0 {
			utilSum += mpATT.Mbps / mpATT.Capacity
			utilN++
		}
		if mpVZ.Capacity > 0 {
			utilSum += mpVZ.Mbps / mpVZ.Capacity
			utilN++
		}
		gainATT = append(gainATT, gainOverBest(mpATT.Mbps, att.Mbps, mob.Mbps))
		gainVZ = append(gainVZ, gainOverBest(mpVZ.Mbps, vz.Mbps, mob.Mbps))
		gainATTUntuned = append(gainATTUntuned, gainOverBest(mpATTu.Mbps, att.Mbps, mob.Mbps))
		gainVZUntuned = append(gainVZUntuned, gainOverBest(mpVZu.Mbps, vz.Mbps, mob.Mbps))
	}

	order := []string{"ATT", "VZ", "MOB", "MOB+ATT", "MOB+VZ", "MOB+ATT-untuned", "MOB+VZ-untuned"}
	for i, label := range order {
		xs := collect[label]
		box := stats.Box(xs)
		f.Series = append(f.Series, Series{
			Label: label,
			X:     []float64{float64(i)},
			Y:     []float64{box.Median},
		})
		f.addKPI("mean_"+label, stats.Mean(xs))
	}
	f.addKPI("gain_over_best_mob_att_pct", stats.Mean(gainATT)*100)
	f.addKPI("gain_over_best_mob_vz_pct", stats.Mean(gainVZ)*100)
	f.addKPI("gain_untuned_mob_att_pct", stats.Mean(gainATTUntuned)*100)
	f.addKPI("gain_untuned_mob_vz_pct", stats.Mean(gainVZUntuned)*100)
	if utilN > 0 {
		f.addKPI("bandwidth_utilization_pct", utilSum/utilN*100)
	}
	f.Notes = append(f.Notes, fmt.Sprintf("%d windows of %ds", len(windows), cfg.WindowSeconds))
	return f
}

// gainOverBest returns mp/(best single path) - 1.
func gainOverBest(mp float64, singles ...float64) float64 {
	best := 0.0
	for _, s := range singles {
		if s > best {
			best = s
		}
	}
	if best <= 0 {
		return 0
	}
	return mp/best - 1
}

// Figure11 reproduces the throughput-over-time traces: single-path TCP
// and MPTCP goodput per second over one representative window, for
// Mobility+AT&T (a) and Mobility+Verizon (b).
func (a *Analyzer) Figure11(cfg MultipathConfig) *Figure {
	cfg.defaults()
	f := &Figure{
		ID: "fig11", Title: "Throughput over time: single-path TCP vs MPTCP",
		Kind: TimeSeries, XLabel: "time (s)", YLabel: "throughput (Mbps)",
	}
	winDur := time.Duration(cfg.WindowSeconds) * time.Second
	windows := a.alignedWindows(winDur, 1)
	if len(windows) == 0 {
		f.Notes = append(f.Notes, "no aligned windows available")
		return f
	}
	ws := windows[0]
	mobTr, attTr, vzTr := ws[0], ws[1], ws[2]
	seed := a.Seed + 7000

	runs := []MultipathRun{
		runSingleTCP(mobTr, winDur, cfg.QueueBytes, seed+1),
		runSingleTCP(attTr, winDur, cfg.QueueBytes, seed+2),
		runMPTCP([]*channel.Trace{mobTr, attTr}, winDur, cfg.TunedBuf, cfg.QueueBytes, cfg.Scheduler(), seed+3),
		runSingleTCP(vzTr, winDur, cfg.QueueBytes, seed+5),
		runMPTCP([]*channel.Trace{mobTr, vzTr}, winDur, cfg.TunedBuf, cfg.QueueBytes, cfg.Scheduler(), seed+6),
	}
	labels := []string{"MOB(a)", "ATT(a)", "MPTCP(a)", "VZ(b)", "MPTCP(b)"}
	for i, r := range runs {
		s := Series{Label: labels[i]}
		for sec, v := range r.Series {
			s.X = append(s.X, float64(sec))
			s.Y = append(s.Y, v)
		}
		f.Series = append(f.Series, s)
		f.addKPI("mean_"+labels[i], r.Mbps)
	}
	f.addKPI("peak_mptcp_b", stats.Max(runs[4].Series))
	return f
}

// MultipathAblation compares MPTCP schedulers and coupled congestion
// control over the same aligned windows (the DESIGN.md ablations).
func (a *Analyzer) MultipathAblation(cfg MultipathConfig) *Figure {
	cfg.defaults()
	f := &Figure{
		ID: "ablation-mptcp", Title: "MPTCP scheduler and CC ablation",
		Kind: Bars, XLabel: "variant", YLabel: "mean throughput (Mbps)",
	}
	winDur := time.Duration(cfg.WindowSeconds) * time.Second
	windows := a.alignedWindows(winDur, cfg.Windows)
	if len(windows) == 0 {
		return f
	}
	variants := []struct {
		name  string
		sched func(eng *emu.Engine) mptcp.Scheduler
		coupl bool
		buf   int
	}{
		{"blest-tuned", func(*emu.Engine) mptcp.Scheduler { return mptcp.NewBLEST() }, false, cfg.TunedBuf},
		{"minrtt-tuned", func(*emu.Engine) mptcp.Scheduler { return mptcp.NewMinRTT() }, false, cfg.TunedBuf},
		{"rr-tuned", func(*emu.Engine) mptcp.Scheduler { return mptcp.NewRoundRobin() }, false, cfg.TunedBuf},
		{"redundant-tuned", func(*emu.Engine) mptcp.Scheduler { return mptcp.NewRedundant() }, false, cfg.TunedBuf},
		{"leoaware-tuned", func(eng *emu.Engine) mptcp.Scheduler { return mptcp.NewLEOAware(0, eng.Now) }, false, cfg.TunedBuf},
		{"blest-untuned", func(*emu.Engine) mptcp.Scheduler { return mptcp.NewBLEST() }, false, cfg.UntunedBuf},
		{"blest-lia", func(*emu.Engine) mptcp.Scheduler { return mptcp.NewBLEST() }, true, cfg.TunedBuf},
	}
	for vi, v := range variants {
		var sum float64
		for wi, ws := range windows {
			mobTr, attTr := ws[0], ws[1]
			eng := emu.NewEngine()
			paths := []*emu.DuplexPath{
				emu.NewDuplexPath(eng, mobTr, emu.PathConfig{Seed: a.Seed + int64(wi*10+1), QueueBytes: cfg.QueueBytes}),
				emu.NewDuplexPath(eng, attTr, emu.PathConfig{Seed: a.Seed + int64(wi*10+2), QueueBytes: cfg.QueueBytes}),
			}
			conn := mptcp.NewConn(eng, paths, 100, mptcp.Config{
				RcvBuf: v.buf, Scheduler: v.sched(eng), Coupled: v.coupl,
			})
			conn.Start()
			eng.RunUntil(winDur)
			conn.Stop()
			sum += conn.MeanGoodputMbps(winDur)
		}
		mean := sum / float64(len(windows))
		f.Series = append(f.Series, Series{Label: v.name, X: []float64{float64(vi)}, Y: []float64{mean}})
		f.addKPI(v.name, mean)
	}
	return f
}
