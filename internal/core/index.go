package core

import (
	"sync"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/geo"
	"satcell/internal/stats"
)

// bucketKey identifies one (network, kind) test bucket of the index.
type bucketKey struct {
	net  channel.NetworkID
	kind dataset.Kind
}

// areaKey identifies one (network, kind, area) test bucket.
type areaKey struct {
	net  channel.NetworkID
	kind dataset.Kind
	area geo.AreaType
}

// queryIndex memoizes the dataset lookups the figure analyses repeat:
// per-(network, kind) test buckets in dataset order, the same buckets
// split by majority area type, and per-bucket aggregates (pooled
// per-second slices and canonical sketches). The test buckets are built
// in one pass over the dataset the first time any figure asks; the
// aggregates are built lazily per bucket on first query — a figure run
// that only touches three kinds never pools the other five, and an
// Analyzer used for a single figure pays for exactly that figure's
// buckets.
type queryIndex struct {
	once   sync.Once
	tests  map[bucketKey][]*dataset.Test
	byArea map[areaKey][]*dataset.Test
	// skipped counts failed tests excluded from the buckets: a test
	// whose whole window was dead measured nothing, and folding its
	// zero series into the CDFs would pollute every distribution with
	// artifacts of the outage, not of the network. Truncated tests
	// stay in — their surviving seconds are real measurements.
	skipped int

	// mu guards the lazily built per-bucket aggregates below.
	mu      sync.Mutex
	pooled  map[bucketKey][]float64
	perSec  map[bucketKey]*stats.Sketch
	rtt     map[channel.NetworkID]*stats.Sketch
	retrans map[bucketKey]*stats.Sketch
	fluid   map[fluidKey]*stats.Sketch
	speed   map[channel.NetworkID]map[int]*stats.Sketch
	area    map[channel.NetworkID]map[geo.AreaType]*stats.Sketch
}

func (ix *queryIndex) build(ds *dataset.Dataset) {
	ix.tests = make(map[bucketKey][]*dataset.Test)
	ix.byArea = make(map[areaKey][]*dataset.Test)
	for i := range ds.Tests {
		t := &ds.Tests[i]
		if t.Outcome == dataset.OutcomeFailed {
			ix.skipped++
			continue
		}
		k := bucketKey{t.Network, t.Kind}
		ix.tests[k] = append(ix.tests[k], t)
		ak := areaKey{t.Network, t.Kind, t.Area}
		ix.byArea[ak] = append(ix.byArea[ak], t)
	}
	ix.pooled = make(map[bucketKey][]float64)
	ix.perSec = make(map[bucketKey]*stats.Sketch)
	ix.rtt = make(map[channel.NetworkID]*stats.Sketch)
	ix.retrans = make(map[bucketKey]*stats.Sketch)
	ix.fluid = make(map[fluidKey]*stats.Sketch)
	ix.speed = make(map[channel.NetworkID]map[int]*stats.Sketch)
	ix.area = make(map[channel.NetworkID]map[geo.AreaType]*stats.Sketch)
}

// index returns the analyzer's query index, building it on first use.
func (a *Analyzer) index() *queryIndex {
	a.idx.once.Do(func() { a.idx.build(a.DS) })
	return &a.idx
}

// SkippedTests reports how many failed tests the figure analyses
// skipped (and counted) rather than folding into the distributions.
func (a *Analyzer) SkippedTests() int { return a.index().skipped }

// Tests returns the tests of one network matching any of the kinds, in
// dataset order — the same tests, in the same order, Filter(ByNetwork,
// ByKind) would return. The slice is shared index state: callers must
// not modify it.
func (a *Analyzer) Tests(n channel.NetworkID, kinds ...dataset.Kind) []*dataset.Test {
	ix := a.index()
	if len(kinds) == 1 {
		return ix.tests[bucketKey{n, kinds[0]}]
	}
	return mergeByID(bucketsOf(ix, n, kinds))
}

// TestsInArea is Tests restricted to one majority area type.
func (a *Analyzer) TestsInArea(n channel.NetworkID, area geo.AreaType, kinds ...dataset.Kind) []*dataset.Test {
	ix := a.index()
	if len(kinds) == 1 {
		return ix.byArea[areaKey{n, kinds[0], area}]
	}
	buckets := make([][]*dataset.Test, 0, len(kinds))
	for _, k := range kinds {
		if b := ix.byArea[areaKey{n, k, area}]; len(b) > 0 {
			buckets = append(buckets, b)
		}
	}
	return mergeByID(buckets)
}

// PerSecond returns the pooled per-second goodput samples of one
// network's tests of the given kinds, memoized per bucket for the
// single-kind queries. The slice is shared index state for single-kind
// queries: callers must not modify it.
func (a *Analyzer) PerSecond(n channel.NetworkID, kinds ...dataset.Kind) []float64 {
	ix := a.index()
	if len(kinds) == 1 {
		key := bucketKey{n, kinds[0]}
		ix.mu.Lock()
		defer ix.mu.Unlock()
		if p, ok := ix.pooled[key]; ok {
			return p
		}
		p := perSecond(ix.tests[key])
		ix.pooled[key] = p
		return p
	}
	return perSecond(mergeByID(bucketsOf(ix, n, kinds)))
}

func bucketsOf(ix *queryIndex, n channel.NetworkID, kinds []dataset.Kind) [][]*dataset.Test {
	buckets := make([][]*dataset.Test, 0, len(kinds))
	for _, k := range kinds {
		if b := ix.tests[bucketKey{n, k}]; len(b) > 0 {
			buckets = append(buckets, b)
		}
	}
	return buckets
}

// mergeByID merges ID-ascending test buckets into one ID-ascending
// slice, reproducing dataset order exactly (test IDs ascend with the
// dataset's append order).
func mergeByID(buckets [][]*dataset.Test) []*dataset.Test {
	switch len(buckets) {
	case 0:
		return nil
	case 1:
		return buckets[0]
	}
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	out := make([]*dataset.Test, 0, total)
	heads := make([]int, len(buckets))
	for len(out) < total {
		best := -1
		for bi, b := range buckets {
			if heads[bi] >= len(b) {
				continue
			}
			if best < 0 || b[heads[bi]].ID < buckets[best][heads[best]].ID {
				best = bi
			}
		}
		out = append(out, buckets[best][heads[best]])
		heads[best]++
	}
	return out
}

// --- aggSource: the in-memory path ---
//
// The methods below let the figure builders (figbuild.go) consume the
// Analyzer through the same interface as the streaming pipeline. Every
// sketch is built lazily per bucket and memoized under ix.mu; callers
// receive shared state and must not mutate sample content (Merge-ing a
// returned sketch into another is fine — it only compacts, never alters
// the multiset).

func (a *Analyzer) networks() []channel.NetworkID   { return a.Networks() }
func (a *Analyzer) cellulars() []channel.NetworkID  { return a.Cellulars() }
func (a *Analyzer) satellites() []channel.NetworkID { return a.Satellites() }

func (a *Analyzer) perSecondSketch(n channel.NetworkID, k dataset.Kind) *stats.Sketch {
	ix := a.index()
	key := bucketKey{n, k}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if s, ok := ix.perSec[key]; ok {
		return s
	}
	s := stats.NewSketch()
	for _, t := range ix.tests[key] {
		s.AddSlice(t.Series)
	}
	ix.perSec[key] = s
	return s
}

func (a *Analyzer) rttSketch(n channel.NetworkID) *stats.Sketch {
	ix := a.index()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if s, ok := ix.rtt[n]; ok {
		return s
	}
	s := stats.NewSketch()
	for _, t := range ix.tests[bucketKey{n, dataset.Ping}] {
		s.AddSlice(t.RTTsMs)
	}
	ix.rtt[n] = s
	return s
}

func (a *Analyzer) retransSketch(n channel.NetworkID, k dataset.Kind) *stats.Sketch {
	ix := a.index()
	key := bucketKey{n, k}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if s, ok := ix.retrans[key]; ok {
		return s
	}
	s := stats.NewSketch()
	for _, t := range ix.tests[key] {
		s.Add(t.RetransRate)
	}
	ix.retrans[key] = s
	return s
}

func (a *Analyzer) fluidSketch(n channel.NetworkID, flows int) *stats.Sketch {
	ix := a.index()
	key := fluidKey{n, flows}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if s, ok := ix.fluid[key]; ok {
		return s
	}
	s := stats.NewSketch()
	for _, t := range mergeByID(bucketsOf(ix, n, fluidKinds)) {
		tr := testTrace(t)
		s.Add(dataset.FluidTCP{Flows: flows}.Run(tr, rngFor(a.Seed, t.ID, flows)).MeanGoodputMbps)
	}
	ix.fluid[key] = s
	return s
}

func (a *Analyzer) speedSketches(n channel.NetworkID) map[int]*stats.Sketch {
	ix := a.index()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if m, ok := ix.speed[n]; ok {
		return m
	}
	m := make(map[int]*stats.Sketch)
	for _, d := range a.DS.Drives {
		for _, r := range d.Observed[n] {
			if r.Env.Area != geo.Rural || r.Env.SpeedKmh < 1 {
				continue
			}
			b := int(r.Env.SpeedKmh) / 10 * 10
			s := m[b]
			if s == nil {
				s = stats.NewSketch()
				m[b] = s
			}
			s.Add(r.Sample.DownMbps)
		}
	}
	ix.speed[n] = m
	return m
}

func (a *Analyzer) areaSketch(n channel.NetworkID, area geo.AreaType) *stats.Sketch {
	ix := a.index()
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if m, ok := ix.area[n]; ok {
		return m[area]
	}
	m := make(map[geo.AreaType]*stats.Sketch, len(geo.AreaTypes))
	for _, at := range geo.AreaTypes {
		m[at] = stats.NewSketch()
	}
	for _, d := range a.DS.Drives {
		for _, r := range d.Observed[n] {
			m[r.Env.Area].Add(r.Sample.DownMbps)
		}
	}
	ix.area[n] = m
	return m[area]
}

func (a *Analyzer) areaCounts() map[geo.AreaType]int { return a.DS.SampleCountByArea() }

func (a *Analyzer) perfCounts() ([][4]int, int) {
	cols := fig9Columns(a.Cellulars(), a.Satellites())
	counts := make([][4]int, len(cols))
	total := 0
	for di := range a.DS.Drives {
		d := &a.DS.Drives[di]
		n := len(d.Fixes)
		for i := 0; i < n; i++ {
			for ci := range cols {
				best := 0.0
				for _, net := range cols[ci].nets {
					if v := d.Observed[net][i].Sample.DownMbps; v > best {
						best = v
					}
				}
				counts[ci][perfLevel(best)]++
			}
			total++
		}
	}
	return counts, total
}

func (a *Analyzer) timeline() timelineData {
	// Pick the longest drive for the most interesting timeline.
	best := 0
	for i := range a.DS.Drives {
		if len(a.DS.Drives[i].Fixes) > len(a.DS.Drives[best].Fixes) {
			best = i
		}
	}
	d := &a.DS.Drives[best]
	tl := timelineData{
		Drive: best, Route: d.Route, State: d.State, Seconds: len(d.Fixes),
		X: make(map[channel.NetworkID][]float64),
		Y: make(map[channel.NetworkID][]float64),
	}
	for _, n := range a.Networks() {
		recs := d.Observed[n]
		xs := make([]float64, len(recs))
		ys := make([]float64, len(recs))
		for i, r := range recs {
			xs[i] = r.Sample.At.Seconds()
			ys[i] = r.Sample.DownMbps
		}
		tl.X[n], tl.Y[n] = xs, ys
	}
	return tl
}

func (a *Analyzer) summary() summaryData {
	states := map[string]bool{}
	for _, d := range a.DS.Drives {
		states[d.State] = true
	}
	return summaryData{
		Tests:        len(a.DS.Tests),
		Outcomes:     a.DS.OutcomeCounts(),
		Skipped:      a.SkippedTests(),
		TraceMinutes: a.DS.TotalTestMin,
		DistanceKm:   a.DS.TotalKm,
		Drives:       len(a.DS.Drives),
		States:       len(states),
	}
}
