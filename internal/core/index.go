package core

import (
	"sync"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/geo"
)

// bucketKey identifies one (network, kind) test bucket of the index.
type bucketKey struct {
	net  channel.NetworkID
	kind dataset.Kind
}

// areaKey identifies one (network, kind, area) test bucket.
type areaKey struct {
	net  channel.NetworkID
	kind dataset.Kind
	area geo.AreaType
}

// queryIndex memoizes the dataset lookups the figure analyses repeat:
// per-(network, kind) test buckets in dataset order, the same buckets
// split by majority area type, and the pooled per-second goodput
// samples of each bucket. It is built in one pass over the dataset the
// first time any figure asks, replacing Filter's O(tests × predicates)
// scan per query — Figure3a alone used to run eight full scans.
type queryIndex struct {
	once   sync.Once
	tests  map[bucketKey][]*dataset.Test
	byArea map[areaKey][]*dataset.Test
	pooled map[bucketKey][]float64
	// skipped counts failed tests excluded from the buckets: a test
	// whose whole window was dead measured nothing, and folding its
	// zero series into the CDFs would pollute every distribution with
	// artifacts of the outage, not of the network. Truncated tests
	// stay in — their surviving seconds are real measurements.
	skipped int
}

func (ix *queryIndex) build(ds *dataset.Dataset) {
	ix.tests = make(map[bucketKey][]*dataset.Test)
	ix.byArea = make(map[areaKey][]*dataset.Test)
	for i := range ds.Tests {
		t := &ds.Tests[i]
		if t.Outcome == dataset.OutcomeFailed {
			ix.skipped++
			continue
		}
		k := bucketKey{t.Network, t.Kind}
		ix.tests[k] = append(ix.tests[k], t)
		ak := areaKey{t.Network, t.Kind, t.Area}
		ix.byArea[ak] = append(ix.byArea[ak], t)
	}
	ix.pooled = make(map[bucketKey][]float64, len(ix.tests))
	for k, ts := range ix.tests {
		ix.pooled[k] = perSecond(ts)
	}
}

// index returns the analyzer's query index, building it on first use.
func (a *Analyzer) index() *queryIndex {
	a.idx.once.Do(func() { a.idx.build(a.DS) })
	return &a.idx
}

// SkippedTests reports how many failed tests the figure analyses
// skipped (and counted) rather than folding into the distributions.
func (a *Analyzer) SkippedTests() int { return a.index().skipped }

// Tests returns the tests of one network matching any of the kinds, in
// dataset order — the same tests, in the same order, Filter(ByNetwork,
// ByKind) would return. The slice is shared index state: callers must
// not modify it.
func (a *Analyzer) Tests(n channel.NetworkID, kinds ...dataset.Kind) []*dataset.Test {
	ix := a.index()
	if len(kinds) == 1 {
		return ix.tests[bucketKey{n, kinds[0]}]
	}
	return mergeByID(bucketsOf(ix, n, kinds))
}

// TestsInArea is Tests restricted to one majority area type.
func (a *Analyzer) TestsInArea(n channel.NetworkID, area geo.AreaType, kinds ...dataset.Kind) []*dataset.Test {
	ix := a.index()
	if len(kinds) == 1 {
		return ix.byArea[areaKey{n, kinds[0], area}]
	}
	buckets := make([][]*dataset.Test, 0, len(kinds))
	for _, k := range kinds {
		if b := ix.byArea[areaKey{n, k, area}]; len(b) > 0 {
			buckets = append(buckets, b)
		}
	}
	return mergeByID(buckets)
}

// PerSecond returns the pooled per-second goodput samples of one
// network's tests of the given kinds, memoized for the single-kind
// queries every CDF figure makes. The slice is shared index state for
// single-kind queries: callers must not modify it.
func (a *Analyzer) PerSecond(n channel.NetworkID, kinds ...dataset.Kind) []float64 {
	ix := a.index()
	if len(kinds) == 1 {
		return ix.pooled[bucketKey{n, kinds[0]}]
	}
	return perSecond(mergeByID(bucketsOf(ix, n, kinds)))
}

func bucketsOf(ix *queryIndex, n channel.NetworkID, kinds []dataset.Kind) [][]*dataset.Test {
	buckets := make([][]*dataset.Test, 0, len(kinds))
	for _, k := range kinds {
		if b := ix.tests[bucketKey{n, k}]; len(b) > 0 {
			buckets = append(buckets, b)
		}
	}
	return buckets
}

// mergeByID merges ID-ascending test buckets into one ID-ascending
// slice, reproducing dataset order exactly (test IDs ascend with the
// dataset's append order).
func mergeByID(buckets [][]*dataset.Test) []*dataset.Test {
	switch len(buckets) {
	case 0:
		return nil
	case 1:
		return buckets[0]
	}
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	out := make([]*dataset.Test, 0, total)
	heads := make([]int, len(buckets))
	for len(out) < total {
		best := -1
		for bi, b := range buckets {
			if heads[bi] >= len(b) {
				continue
			}
			if best < 0 || b[heads[bi]].ID < buckets[best][heads[best]].ID {
				best = bi
			}
		}
		out = append(out, buckets[best][heads[best]])
		heads[best]++
	}
	return out
}
