package core

import (
	"math/rand"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/stats"
)

// Analyzer runs the paper's analyses over a generated dataset. It
// carries a lazily built query index (see index.go) so the ~12 figure
// analyses share memoized per-(network, kind) test buckets and pooled
// per-second sample slices instead of re-scanning the whole dataset.
type Analyzer struct {
	DS   *dataset.Dataset
	Seed int64

	// Catalog classifies the dataset's networks (satellite vs cellular)
	// and resolves display names. Nil means the default catalog, which
	// covers the built-in five plus everything registered through the
	// public API; set it when analyzing a dataset generated from a
	// cloned catalog.
	Catalog *channel.Catalog

	idx queryIndex
}

// NewAnalyzer wraps a dataset.
func NewAnalyzer(ds *dataset.Dataset) *Analyzer {
	return &Analyzer{DS: ds, Seed: ds.Seed}
}

// cellularNetworks lists the paper's three carriers (used as preferred
// orderings; scenario-aware analyses go through Analyzer.Cellulars).
var cellularNetworks = []channel.NetworkID{channel.ATT, channel.TMobile, channel.Verizon}

// Networks returns the dataset's measured networks in campaign order,
// falling back to the built-in five for datasets predating scenarios.
func (a *Analyzer) Networks() []channel.NetworkID {
	if len(a.DS.Networks) > 0 {
		return a.DS.Networks
	}
	return channel.Networks
}

func (a *Analyzer) catalog() *channel.Catalog {
	if a.Catalog != nil {
		return a.Catalog
	}
	return channel.DefaultCatalog()
}

// Cellulars returns the dataset's cellular networks in campaign order.
func (a *Analyzer) Cellulars() []channel.NetworkID { return a.byClass(channel.ClassCellular) }

// Satellites returns the dataset's satellite networks in campaign order.
func (a *Analyzer) Satellites() []channel.NetworkID { return a.byClass(channel.ClassSatellite) }

func (a *Analyzer) byClass(c channel.Class) []channel.NetworkID {
	cat := a.catalog()
	var out []channel.NetworkID
	for _, n := range a.Networks() {
		if s, ok := cat.Spec(n); ok && s.Class == c {
			out = append(out, n)
		}
	}
	return out
}

// has reports whether the dataset measured network n.
func (a *Analyzer) has(n channel.NetworkID) bool {
	for _, m := range a.Networks() {
		if m == n {
			return true
		}
	}
	return false
}

// perSecond pools the per-second goodput samples of the given tests.
func perSecond(tests []*dataset.Test) []float64 {
	total := 0
	for _, t := range tests {
		total += len(t.Series)
	}
	out := make([]float64, 0, total)
	for _, t := range tests {
		out = append(out, t.Series...)
	}
	return out
}

// cdfSeries converts an already-built CDF into a plottable series; the
// caller keeps the CDF around for quantile KPIs so the sample is sorted
// exactly once.
func cdfSeries(label string, c *stats.CDF) Series {
	px, py := c.Points(101)
	return Series{Label: label, X: px, Y: py}
}

// Figure1 reproduces the motivation timeline: download throughput of
// MOB, VZ, TM and ATT over one continuous mixed-area drive.
func (a *Analyzer) Figure1() *Figure { return buildFigure1(a) }

// Figure3a reproduces the TCP-vs-UDP downlink CDFs for Starlink
// Mobility vs the pooled cellular carriers.
func (a *Analyzer) Figure3a() *Figure { return buildFigure3a(a) }

// Figure3b reproduces the Roam-vs-Mobility UDP downlink comparison.
func (a *Analyzer) Figure3b() *Figure { return buildFigure3b(a) }

// Figure3c reproduces the Starlink uplink/downlink asymmetry.
func (a *Analyzer) Figure3c() *Figure { return buildFigure3c(a) }

// Figure4 reproduces the UDP-Ping latency CDFs of all five networks.
func (a *Analyzer) Figure4() *Figure { return buildFigure4(a) }

// Figure5 reproduces the TCP retransmission-rate comparison (up and
// down) across all networks.
func (a *Analyzer) Figure5() *Figure { return buildFigure5(a) }

// Figure6 reproduces the speed-impact analysis: mean throughput per
// 10 km/h bucket, rural samples only, for MOB and the carriers.
func (a *Analyzer) Figure6() *Figure { return buildFigure6(a) }

// Figure7 reproduces the TCP-parallelism improvement: throughput gain
// of 4 and 8 parallel connections over a single connection, for
// Starlink Roam vs the pooled cellular carriers.
func (a *Analyzer) Figure7() *Figure { return buildFigure7(a) }

// Figure8 reproduces the area-type analysis: UDP downlink throughput
// distribution per area type for pooled cellular vs Starlink Mobility.
func (a *Analyzer) Figure8() *Figure { return buildFigure8(a) }

// perfLevel buckets a throughput sample into the paper's performance
// levels: very low (<20), low (20-50), medium (50-100), high (>100).
func perfLevel(mbps float64) int {
	switch {
	case mbps < 20:
		return 0
	case mbps < 50:
		return 1
	case mbps < 100:
		return 2
	default:
		return 3
	}
}

// PerfLevelNames names the Figure 9 levels in order.
var PerfLevelNames = []string{"very-low", "low", "medium", "high"}

// Figure9 reproduces the performance-coverage comparison: the share of
// time each network (and combination) spends in each performance level,
// using time-aligned per-second UDP downlink samples.
func (a *Analyzer) Figure9() *Figure { return buildFigure9(a) }

// Equation1 reproduces Eq. (1): the one-way propagation latency of a
// 550 km overhead satellite hop.
func (a *Analyzer) Equation1() *Figure { return buildEquation1() }

// testTrace rebuilds the channel trace of one test window.
func testTrace(t *dataset.Test) *channel.Trace {
	tr := &channel.Trace{Network: t.Network}
	for _, r := range t.Records {
		s := r.Sample
		s.At -= t.Start
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}

// rngFor derives a deterministic RNG for one (test, variant) pair.
func rngFor(seed int64, testID, variant int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(testID)*1_000_003 ^ int64(variant)*7_777_777))
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// DatasetSummary reports the §3.3 bookkeeping numbers.
func (a *Analyzer) DatasetSummary() *Figure { return buildDatasetSummary(a) }
