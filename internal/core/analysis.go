package core

import (
	"fmt"
	"math/rand"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/geo"
	"satcell/internal/leo"
	"satcell/internal/stats"
)

// Analyzer runs the paper's analyses over a generated dataset. It
// carries a lazily built query index (see index.go) so the ~12 figure
// analyses share memoized per-(network, kind) test buckets and pooled
// per-second sample slices instead of re-scanning the whole dataset.
type Analyzer struct {
	DS   *dataset.Dataset
	Seed int64

	// Catalog classifies the dataset's networks (satellite vs cellular)
	// and resolves display names. Nil means the default catalog, which
	// covers the built-in five plus everything registered through the
	// public API; set it when analyzing a dataset generated from a
	// cloned catalog.
	Catalog *channel.Catalog

	idx queryIndex
}

// NewAnalyzer wraps a dataset.
func NewAnalyzer(ds *dataset.Dataset) *Analyzer {
	return &Analyzer{DS: ds, Seed: ds.Seed}
}

// cellularNetworks lists the paper's three carriers (used as preferred
// orderings; scenario-aware analyses go through Analyzer.Cellulars).
var cellularNetworks = []channel.NetworkID{channel.ATT, channel.TMobile, channel.Verizon}

// Networks returns the dataset's measured networks in campaign order,
// falling back to the built-in five for datasets predating scenarios.
func (a *Analyzer) Networks() []channel.NetworkID {
	if len(a.DS.Networks) > 0 {
		return a.DS.Networks
	}
	return channel.Networks
}

func (a *Analyzer) catalog() *channel.Catalog {
	if a.Catalog != nil {
		return a.Catalog
	}
	return channel.DefaultCatalog()
}

// Cellulars returns the dataset's cellular networks in campaign order.
func (a *Analyzer) Cellulars() []channel.NetworkID { return a.byClass(channel.ClassCellular) }

// Satellites returns the dataset's satellite networks in campaign order.
func (a *Analyzer) Satellites() []channel.NetworkID { return a.byClass(channel.ClassSatellite) }

func (a *Analyzer) byClass(c channel.Class) []channel.NetworkID {
	cat := a.catalog()
	var out []channel.NetworkID
	for _, n := range a.Networks() {
		if s, ok := cat.Spec(n); ok && s.Class == c {
			out = append(out, n)
		}
	}
	return out
}

// has reports whether the dataset measured network n.
func (a *Analyzer) has(n channel.NetworkID) bool {
	for _, m := range a.Networks() {
		if m == n {
			return true
		}
	}
	return false
}

// orderPreferred returns the dataset's networks with the paper's
// preferred ids (those present) first and every remaining network in
// campaign order after them — so default-scenario figures keep the
// paper's series order and custom networks still appear.
func (a *Analyzer) orderPreferred(preferred ...channel.NetworkID) []channel.NetworkID {
	var out []channel.NetworkID
	taken := make(map[channel.NetworkID]bool, len(preferred))
	for _, n := range preferred {
		if a.has(n) {
			out = append(out, n)
			taken[n] = true
		}
	}
	for _, n := range a.Networks() {
		if !taken[n] {
			out = append(out, n)
		}
	}
	return out
}

// perSecond pools the per-second goodput samples of the given tests.
func perSecond(tests []*dataset.Test) []float64 {
	total := 0
	for _, t := range tests {
		total += len(t.Series)
	}
	out := make([]float64, 0, total)
	for _, t := range tests {
		out = append(out, t.Series...)
	}
	return out
}

// cdfSeries converts an already-built CDF into a plottable series; the
// caller keeps the CDF around for quantile KPIs so the sample is sorted
// exactly once.
func cdfSeries(label string, c *stats.CDF) Series {
	px, py := c.Points(101)
	return Series{Label: label, X: px, Y: py}
}

// Figure1 reproduces the motivation timeline: download throughput of
// MOB, VZ, TM and ATT over one continuous mixed-area drive.
func (a *Analyzer) Figure1() *Figure {
	f := &Figure{
		ID: "fig1", Title: "Download throughput of different networks over one drive",
		Kind: TimeSeries, XLabel: "time (s)", YLabel: "throughput (Mbps)",
	}
	// Pick the longest drive for the most interesting timeline.
	best := 0
	for i := range a.DS.Drives {
		if len(a.DS.Drives[i].Fixes) > len(a.DS.Drives[best].Fixes) {
			best = i
		}
	}
	d := &a.DS.Drives[best]
	for _, n := range a.figure1Networks() {
		tr := d.Trace(n)
		s := Series{Label: n.String()}
		for _, smp := range tr.Samples {
			s.X = append(s.X, smp.At.Seconds())
			s.Y = append(s.Y, smp.DownMbps)
		}
		f.Series = append(f.Series, s)
		f.addKPI("mean_"+n.String(), stats.Mean(s.Y))
	}
	f.Notes = append(f.Notes, fmt.Sprintf("drive %s (%s), %d s", d.Route, d.State, len(d.Fixes)))
	return f
}

// figure1Networks picks the motivation timeline's series: the paper's
// four (MOB and the carriers) when present, every measured network for
// scenarios that share none of them.
func (a *Analyzer) figure1Networks() []channel.NetworkID {
	var out []channel.NetworkID
	for _, n := range []channel.NetworkID{channel.StarlinkMobility, channel.Verizon, channel.TMobile, channel.ATT} {
		if a.has(n) {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return a.Networks()
	}
	return out
}

// Figure3a reproduces the TCP-vs-UDP downlink CDFs for Starlink
// Mobility vs the pooled cellular carriers.
func (a *Analyzer) Figure3a() *Figure {
	f := &Figure{
		ID: "fig3a", Title: "TCP vs UDP downlink throughput CDFs",
		Kind: CDF, XLabel: "throughput (Mbps)", YLabel: "CDF",
	}
	mobTCP := a.PerSecond(channel.StarlinkMobility, dataset.TCPDown)
	mobUDP := a.PerSecond(channel.StarlinkMobility, dataset.UDPDown)
	var cellTCP, cellUDP []float64
	for _, n := range a.Cellulars() {
		cellTCP = append(cellTCP, a.PerSecond(n, dataset.TCPDown)...)
		cellUDP = append(cellUDP, a.PerSecond(n, dataset.UDPDown)...)
	}
	f.Series = []Series{
		cdfSeries("MOB-TCP", stats.NewCDF(mobTCP)),
		cdfSeries("Cellular-TCP", stats.NewCDF(cellTCP)),
		cdfSeries("MOB-UDP", stats.NewCDF(mobUDP)),
		cdfSeries("Cellular-UDP", stats.NewCDF(cellUDP)),
	}
	f.addKPI("mob_udp_mean_mbps", stats.Mean(mobUDP))
	f.addKPI("mob_tcp_mean_mbps", stats.Mean(mobTCP))
	f.addKPI("mob_udp_tcp_ratio", safeRatio(stats.Mean(mobUDP), stats.Mean(mobTCP)))
	f.addKPI("cell_udp_mean_mbps", stats.Mean(cellUDP))
	f.addKPI("cell_tcp_mean_mbps", stats.Mean(cellTCP))
	f.addKPI("cell_udp_tcp_ratio", safeRatio(stats.Mean(cellUDP), stats.Mean(cellTCP)))
	return f
}

// Figure3b reproduces the Roam-vs-Mobility UDP downlink comparison.
func (a *Analyzer) Figure3b() *Figure {
	f := &Figure{
		ID: "fig3b", Title: "Roam vs Mobility UDP downlink throughput CDFs",
		Kind: CDF, XLabel: "throughput (Mbps)", YLabel: "CDF",
	}
	rm := a.PerSecond(channel.StarlinkRoam, dataset.UDPDown)
	mob := a.PerSecond(channel.StarlinkMobility, dataset.UDPDown)
	rmC, mobC := stats.NewCDF(rm), stats.NewCDF(mob)
	f.Series = []Series{cdfSeries("RM", rmC), cdfSeries("MOB", mobC)}
	f.addKPI("mob_median_mbps", mobC.Median())
	f.addKPI("mob_mean_mbps", stats.Mean(mob))
	f.addKPI("rm_median_mbps", rmC.Median())
	f.addKPI("rm_mean_mbps", stats.Mean(rm))
	f.addKPI("rm_p75_mbps", rmC.Quantile(0.75))
	return f
}

// Figure3c reproduces the Starlink uplink/downlink asymmetry.
func (a *Analyzer) Figure3c() *Figure {
	f := &Figure{
		ID: "fig3c", Title: "Starlink uplink vs downlink UDP throughput CDFs",
		Kind: CDF, XLabel: "throughput (Mbps)", YLabel: "CDF",
	}
	down := a.PerSecond(channel.StarlinkMobility, dataset.UDPDown)
	up := a.PerSecond(channel.StarlinkMobility, dataset.UDPUp)
	f.Series = []Series{cdfSeries("Uplink", stats.NewCDF(up)), cdfSeries("Downlink", stats.NewCDF(down))}
	f.addKPI("down_mean_mbps", stats.Mean(down))
	f.addKPI("up_mean_mbps", stats.Mean(up))
	f.addKPI("down_up_ratio", safeRatio(stats.Mean(down), stats.Mean(up)))
	return f
}

// Figure4 reproduces the UDP-Ping latency CDFs of all five networks.
func (a *Analyzer) Figure4() *Figure {
	f := &Figure{
		ID: "fig4", Title: "UDP-Ping round-trip latency CDFs",
		Kind: CDF, XLabel: "RTT (ms)", YLabel: "CDF",
	}
	for _, n := range a.Networks() {
		var rtts []float64
		for _, t := range a.Tests(n, dataset.Ping) {
			rtts = append(rtts, t.RTTsMs...)
		}
		c := stats.NewCDF(rtts)
		f.Series = append(f.Series, cdfSeries(n.String(), c))
		f.addKPI("median_ms_"+n.String(), c.Median())
		f.addKPI("p90_ms_"+n.String(), c.Quantile(0.9))
	}
	return f
}

// Figure5 reproduces the TCP retransmission-rate comparison (up and
// down) across all networks.
func (a *Analyzer) Figure5() *Figure {
	f := &Figure{
		ID: "fig5", Title: "TCP retransmission rate per network",
		Kind: Bars, XLabel: "network", YLabel: "retransmission fraction",
	}
	downS := Series{Label: "downlink"}
	upS := Series{Label: "uplink"}
	for i, n := range a.Networks() {
		down := meanRetrans(a.Tests(n, dataset.TCPDown))
		up := meanRetrans(a.Tests(n, dataset.TCPUp))
		downS.X = append(downS.X, float64(i))
		downS.Y = append(downS.Y, down)
		upS.X = append(upS.X, float64(i))
		upS.Y = append(upS.Y, up)
		f.addKPI("retrans_down_"+n.String(), down)
		f.addKPI("retrans_up_"+n.String(), up)
	}
	f.Series = []Series{downS, upS}
	return f
}

func meanRetrans(tests []*dataset.Test) float64 {
	if len(tests) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range tests {
		sum += t.RetransRate
	}
	return sum / float64(len(tests))
}

// Figure6 reproduces the speed-impact analysis: mean throughput per
// 10 km/h bucket, rural samples only, for MOB and the carriers.
func (a *Analyzer) Figure6() *Figure {
	f := &Figure{
		ID: "fig6", Title: "Throughput vs moving speed (rural only)",
		Kind: Bars, XLabel: "speed bucket (km/h)", YLabel: "mean throughput (Mbps)",
	}
	for _, n := range a.orderPreferred(channel.StarlinkMobility, channel.StarlinkRoam, channel.ATT, channel.TMobile, channel.Verizon) {
		buckets := stats.NewBucketed()
		for _, d := range a.DS.Drives {
			for _, r := range d.Observed[n] {
				if r.Env.Area != geo.Rural || r.Env.SpeedKmh < 1 {
					continue
				}
				b := int(r.Env.SpeedKmh) / 10 * 10
				buckets.Add(fmt.Sprintf("%02d", b), r.Sample.DownMbps)
			}
		}
		s := Series{Label: n.String()}
		var devMax, overall float64
		var all []float64
		for _, key := range buckets.Keys() {
			vals := buckets.Values(key)
			if len(vals) < 30 {
				continue // too few samples for a stable bucket mean
			}
			var b float64
			fmt.Sscanf(key, "%f", &b)
			s.X = append(s.X, b)
			s.Y = append(s.Y, stats.Mean(vals))
			all = append(all, vals...)
		}
		overall = stats.Mean(all)
		for _, y := range s.Y {
			if dev := absFloat(y-overall) / overall; dev > devMax {
				devMax = dev
			}
		}
		f.Series = append(f.Series, s)
		f.addKPI("speed_dev_"+n.String(), devMax)
	}
	return f
}

// Figure7 reproduces the TCP-parallelism improvement: throughput gain
// of 4 and 8 parallel connections over a single connection, for
// Starlink Roam vs the pooled cellular carriers.
func (a *Analyzer) Figure7() *Figure {
	f := &Figure{
		ID: "fig7", Title: "Downlink throughput improvement from TCP parallelism",
		Kind: Bars, XLabel: "scheme", YLabel: "improvement (%)",
	}
	// For an apples-to-apples comparison the 1/4/8-parallel transfers
	// are evaluated over the *same* test windows (the paper ran its
	// parallelism schemes back-to-back on the same road segments).
	gains := func(tests []*dataset.Test) (g4, g8 float64) {
		var m1, m4, m8 float64
		for _, t := range tests {
			tr := testTrace(t)
			m1 += dataset.FluidTCP{Flows: 1}.Run(tr, rngFor(a.Seed, t.ID, 1)).MeanGoodputMbps
			m4 += dataset.FluidTCP{Flows: 4}.Run(tr, rngFor(a.Seed, t.ID, 4)).MeanGoodputMbps
			m8 += dataset.FluidTCP{Flows: 8}.Run(tr, rngFor(a.Seed, t.ID, 8)).MeanGoodputMbps
		}
		if m1 <= 0 {
			return 0, 0
		}
		return (m4/m1 - 1) * 100, (m8/m1 - 1) * 100
	}
	rm1 := a.Tests(channel.StarlinkRoam, dataset.TCPDown, dataset.TCPDown4P, dataset.TCPDown8P)
	var c1 []*dataset.Test
	for _, n := range a.Cellulars() {
		c1 = append(c1, a.Tests(n, dataset.TCPDown, dataset.TCPDown4P, dataset.TCPDown8P)...)
	}
	rm4g, rm8g := gains(rm1)
	c4g, c8g := gains(c1)
	f.Series = []Series{
		{Label: "Roam", X: []float64{4, 8}, Y: []float64{rm4g, rm8g}},
		{Label: "Cellular", X: []float64{4, 8}, Y: []float64{c4g, c8g}},
	}
	f.addKPI("rm_4p_gain_pct", rm4g)
	f.addKPI("rm_8p_gain_pct", rm8g)
	f.addKPI("cell_4p_gain_pct", c4g)
	f.addKPI("cell_8p_gain_pct", c8g)
	return f
}

// Figure8 reproduces the area-type analysis: UDP downlink throughput
// distribution per area type for pooled cellular vs Starlink Mobility.
func (a *Analyzer) Figure8() *Figure {
	f := &Figure{
		ID: "fig8", Title: "UDP downlink throughput by area type",
		Kind: BoxPlot, XLabel: "area type", YLabel: "throughput (Mbps)",
	}
	areaSamples := func(nets []channel.NetworkID, area geo.AreaType) []float64 {
		var out []float64
		for _, d := range a.DS.Drives {
			for _, n := range nets {
				for _, r := range d.Observed[n] {
					if r.Env.Area == area {
						out = append(out, r.Sample.DownMbps)
					}
				}
			}
		}
		return out
	}
	for gi, group := range []struct {
		label string
		nets  []channel.NetworkID
	}{
		{"Cellular", a.Cellulars()},
		{"MOB", []channel.NetworkID{channel.StarlinkMobility}},
	} {
		s := Series{Label: group.label}
		for ai, area := range geo.AreaTypes {
			xs := areaSamples(group.nets, area)
			box := stats.Box(xs)
			s.X = append(s.X, float64(gi*3+ai))
			s.Y = append(s.Y, box.Median)
			f.addKPI(fmt.Sprintf("mean_%s_%s", group.label, area), stats.Mean(xs))
			f.addKPI(fmt.Sprintf("median_%s_%s", group.label, area), box.Median)
		}
		f.Series = append(f.Series, s)
	}
	// Data share per area (the paper's 29.78/34.30/35.91 split).
	counts := a.DS.SampleCountByArea()
	total := 0
	for _, c := range counts {
		total += c
	}
	for _, area := range geo.AreaTypes {
		f.addKPI("share_"+area.String(), 100*float64(counts[area])/float64(total))
	}
	return f
}

// perfLevel buckets a throughput sample into the paper's performance
// levels: very low (<20), low (20-50), medium (50-100), high (>100).
func perfLevel(mbps float64) int {
	switch {
	case mbps < 20:
		return 0
	case mbps < 50:
		return 1
	case mbps < 100:
		return 2
	default:
		return 3
	}
}

// PerfLevelNames names the Figure 9 levels in order.
var PerfLevelNames = []string{"very-low", "low", "medium", "high"}

// Figure9 reproduces the performance-coverage comparison: the share of
// time each network (and combination) spends in each performance level,
// using time-aligned per-second UDP downlink samples.
func (a *Analyzer) Figure9() *Figure {
	f := &Figure{
		ID: "fig9", Title: "Coverage share per performance level",
		Kind: StackedBars, XLabel: "network", YLabel: "fraction",
	}
	// Column order follows the paper, generalized over the scenario:
	// each cellular carrier, the best-of-cellular combination, then each
	// satellite network alone and paired with the cellular ensemble. For
	// the default scenario this reproduces the paper's eight columns
	// (ATT, TM, VZ, BestCL, RM, RM+CL, MOB, MOB+CL) exactly.
	type column struct {
		label string
		pick  func(sec map[channel.NetworkID]float64) float64
	}
	maxOf := func(nets ...channel.NetworkID) func(map[channel.NetworkID]float64) float64 {
		return func(sec map[channel.NetworkID]float64) float64 {
			best := 0.0
			for _, n := range nets {
				if v := sec[n]; v > best {
					best = v
				}
			}
			return best
		}
	}
	cellulars := a.Cellulars()
	var cols []column
	for _, n := range cellulars {
		cols = append(cols, column{n.String(), maxOf(n)})
	}
	if len(cellulars) > 1 {
		cols = append(cols, column{"BestCL", maxOf(cellulars...)})
	}
	for _, n := range a.Satellites() {
		cols = append(cols, column{n.String(), maxOf(n)})
		if len(cellulars) > 0 {
			cols = append(cols, column{n.String() + "+CL",
				maxOf(append([]channel.NetworkID{n}, cellulars...)...)})
		}
	}
	nets := a.Networks()
	counts := make([][4]int, len(cols))
	total := 0
	for _, d := range a.DS.Drives {
		n := len(d.Fixes)
		for i := 0; i < n; i++ {
			sec := make(map[channel.NetworkID]float64, len(nets))
			for _, net := range nets {
				sec[net] = d.Observed[net][i].Sample.DownMbps
			}
			for ci, c := range cols {
				counts[ci][perfLevel(c.pick(sec))]++
			}
			total++
		}
	}
	for ci, c := range cols {
		s := Series{Label: c.label}
		for lvl := 0; lvl < 4; lvl++ {
			frac := float64(counts[ci][lvl]) / float64(total)
			s.X = append(s.X, float64(lvl))
			s.Y = append(s.Y, frac)
			f.addKPI(fmt.Sprintf("%s_%s", c.label, PerfLevelNames[lvl]), frac)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// Equation1 reproduces Eq. (1): the one-way propagation latency of a
// 550 km overhead satellite hop.
func (a *Analyzer) Equation1() *Figure {
	f := &Figure{
		ID: "eq1", Title: "One-way satellite propagation latency (Eq. 1)",
		Kind: Bars, XLabel: "altitude (km)", YLabel: "latency (ms)",
	}
	s := Series{Label: "one-way latency"}
	for _, alt := range []float64{340, 550, 1150} {
		s.X = append(s.X, alt)
		s.Y = append(s.Y, leo.OneWayPropagation(alt).Seconds()*1000)
	}
	f.Series = []Series{s}
	f.addKPI("latency_550km_ms", leo.OneWayPropagation(550).Seconds()*1000)
	return f
}

// testTrace rebuilds the channel trace of one test window.
func testTrace(t *dataset.Test) *channel.Trace {
	tr := &channel.Trace{Network: t.Network}
	for _, r := range t.Records {
		s := r.Sample
		s.At -= t.Start
		tr.Samples = append(tr.Samples, s)
	}
	return tr
}

// rngFor derives a deterministic RNG for one (test, variant) pair.
func rngFor(seed int64, testID, variant int) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ int64(testID)*1_000_003 ^ int64(variant)*7_777_777))
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// DatasetSummary reports the §3.3 bookkeeping numbers.
func (a *Analyzer) DatasetSummary() *Figure {
	f := &Figure{ID: "dataset", Title: "Driving dataset summary (§3.3)", Kind: Bars}
	f.addKPI("tests", float64(len(a.DS.Tests)))
	outcomes := a.DS.OutcomeCounts()
	f.addKPI("tests_complete", float64(outcomes[dataset.OutcomeComplete]))
	f.addKPI("tests_truncated", float64(outcomes[dataset.OutcomeTruncated]))
	f.addKPI("tests_failed", float64(outcomes[dataset.OutcomeFailed]))
	f.addKPI("tests_skipped_by_figures", float64(a.SkippedTests()))
	f.addKPI("trace_minutes", a.DS.TotalTestMin)
	f.addKPI("distance_km", a.DS.TotalKm)
	f.addKPI("drives", float64(len(a.DS.Drives)))
	states := map[string]bool{}
	for _, d := range a.DS.Drives {
		states[d.State] = true
	}
	f.addKPI("states", float64(len(states)))
	return f
}
