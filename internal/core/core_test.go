package core

import (
	"strings"
	"sync"
	"testing"

	"satcell/internal/dataset"
)

// The calibration dataset is expensive enough to share across tests.
var (
	calOnce sync.Once
	calFigs map[string]*Figure
)

func calibration(t *testing.T) map[string]*Figure {
	t.Helper()
	calOnce.Do(func() {
		ds := dataset.Generate(dataset.Config{Seed: 42, Scale: 0.30})
		mp := MultipathConfig{WindowSeconds: 150, Windows: 2}
		calFigs = AllFigures(ds, mp)
	})
	return calFigs
}

// TestPaperTargets is the reproduction gate: every scalar claim tracked
// from the paper must land inside its acceptance band.
func TestPaperTargets(t *testing.T) {
	figs := calibration(t)
	for _, row := range Experiments(figs) {
		if row.Relation {
			continue
		}
		if !row.OK {
			t.Errorf("%s: %s = %.4g outside [%.4g, %.4g] (paper: %.4g)",
				row.FigureID, row.Name, row.Measured, row.Lo, row.Hi, row.Paper)
		}
	}
}

// TestPaperOrderings checks the relational claims (who wins where).
func TestPaperOrderings(t *testing.T) {
	figs := calibration(t)
	for _, row := range Experiments(figs) {
		if !row.Relation {
			continue
		}
		if !row.OK {
			t.Errorf("%s: ordering claim failed: %s (measured %.4g)",
				row.FigureID, row.Name, row.Measured)
		}
	}
}

func TestAllFiguresPresent(t *testing.T) {
	figs := calibration(t)
	want := []string{
		"fig1", "fig3a", "fig3b", "fig3c", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "fig11", "eq1", "dataset",
	}
	for _, id := range want {
		f, ok := figs[id]
		if !ok {
			t.Fatalf("missing figure %s", id)
		}
		if f.Title == "" {
			t.Fatalf("figure %s has no title", id)
		}
	}
	ids := FigureIDs(figs)
	if len(ids) != len(want) {
		t.Fatalf("figure count %d != %d", len(ids), len(want))
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	figs := calibration(t)
	for _, id := range FigureIDs(figs) {
		f := figs[id]
		text := f.Render()
		if !strings.Contains(text, f.Title) {
			t.Fatalf("%s render missing title", id)
		}
		csv := f.CSV()
		if !strings.HasPrefix(csv, "series,x,y\n") {
			t.Fatalf("%s CSV header wrong", id)
		}
	}
}

func TestExperimentsTableRenders(t *testing.T) {
	figs := calibration(t)
	rows := Experiments(figs)
	if len(rows) < 20 {
		t.Fatalf("only %d experiment rows", len(rows))
	}
	md := RenderExperiments(rows)
	if !strings.Contains(md, "| Figure | Claim |") {
		t.Fatal("markdown header missing")
	}
	if strings.Count(md, "\n") < len(rows) {
		t.Fatal("markdown row count wrong")
	}
}

func TestDatasetSummaryKPIs(t *testing.T) {
	figs := calibration(t)
	ds := figs["dataset"]
	if ds.KPI("states") != 5 {
		t.Fatalf("states = %v, want 5", ds.KPI("states"))
	}
	if ds.KPI("tests") <= 0 || ds.KPI("distance_km") <= 0 {
		t.Fatal("empty dataset summary")
	}
}

func TestEquation1Exact(t *testing.T) {
	figs := calibration(t)
	got := figs["eq1"].KPI("latency_550km_ms")
	if got < 1.83 || got > 1.84 {
		t.Fatalf("Eq.(1) latency = %v ms, want 1.835", got)
	}
}
