package core

import (
	"fmt"
	"sort"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/geo"
	"satcell/internal/leo"
	"satcell/internal/stats"
)

// This file holds the figure builders shared by the two analysis paths:
// the in-memory Analyzer (index.go) and the streaming sharded pipeline
// (stream.go). Each builder consumes only the aggSource interface, and
// every non-trivially-associative reduction goes through stats.Sketch —
// a canonical mergeable representation for which the same multiset of
// samples produces bit-identical statistics no matter how the input was
// partitioned. That shared arithmetic is the exactness argument: both
// paths render byte-identical figures for identical inputs, and the
// streaming path renders byte-identical figures for every worker count.

// aggSource is the aggregate view a figure builder consumes. Sketch
// accessors may return nil for empty buckets; builders pool through
// pooledSketch, which treats nil as empty.
type aggSource interface {
	// networks lists the measured networks in campaign order;
	// cellulars/satellites are its class-filtered subsets.
	networks() []channel.NetworkID
	cellulars() []channel.NetworkID
	satellites() []channel.NetworkID
	// perSecondSketch holds the pooled per-second goodput samples of
	// one (network, kind) test bucket, failed tests excluded.
	perSecondSketch(n channel.NetworkID, k dataset.Kind) *stats.Sketch
	// rttSketch holds the pooled UDP-Ping RTT samples of one network.
	rttSketch(n channel.NetworkID) *stats.Sketch
	// retransSketch holds the per-test retransmission rates of one
	// (network, kind) bucket.
	retransSketch(n channel.NetworkID, k dataset.Kind) *stats.Sketch
	// fluidSketch holds the per-test mean goodput of the fluid TCP
	// model with the given parallelism, over the network's TCP-downlink
	// parallelism test windows.
	fluidSketch(n channel.NetworkID, flows int) *stats.Sketch
	// speedSketches holds rural downlink samples per 10 km/h speed
	// bucket (keyed by the bucket's lower edge).
	speedSketches(n channel.NetworkID) map[int]*stats.Sketch
	// areaSketch holds one network's downlink samples in one area type.
	areaSketch(n channel.NetworkID, area geo.AreaType) *stats.Sketch
	// areaCounts counts per-second data points per area type.
	areaCounts() map[geo.AreaType]int
	// perfCounts returns the Figure 9 performance-level tallies, one
	// row per fig9Columns entry, plus the total second count.
	perfCounts() ([][4]int, int)
	// timeline returns the Figure 1 motivation drive.
	timeline() timelineData
	// summary returns the §3.3 bookkeeping numbers.
	summary() summaryData
}

// timelineData is the Figure 1 input: the campaign's longest drive and
// its per-network downlink time series.
type timelineData struct {
	Drive        int
	Route, State string
	Seconds      int
	X, Y         map[channel.NetworkID][]float64
}

// betterThan orders timeline candidates: most seconds wins, ties go to
// the lowest drive index (= the first maximum in dataset order, which
// is what the sequential scan picks).
func (t *timelineData) betterThan(o *timelineData) bool {
	if o == nil {
		return true
	}
	if t.Seconds != o.Seconds {
		return t.Seconds > o.Seconds
	}
	return t.Drive < o.Drive
}

// summaryData is the DatasetSummary input.
type summaryData struct {
	Tests        int
	Outcomes     map[dataset.Outcome]int
	Skipped      int
	TraceMinutes float64
	DistanceKm   float64
	Drives       int
	States       int
}

// fluidKey identifies one (network, parallelism) fluid-TCP bucket.
type fluidKey struct {
	net   channel.NetworkID
	flows int
}

// netArea identifies one (network, area type) sample bucket.
type netArea struct {
	net  channel.NetworkID
	area geo.AreaType
}

// fluidFlowCounts are the parallelism variants Figure 7 compares, and
// fluidKinds the test windows it evaluates them over.
var (
	fluidFlowCounts = []int{1, 4, 8}
	fluidKinds      = []dataset.Kind{dataset.TCPDown, dataset.TCPDown4P, dataset.TCPDown8P}
)

// perSecondKinds are the only test kinds whose per-second series any
// figure queries; accumulators keep sketches for exactly these.
var perSecondKinds = []dataset.Kind{dataset.UDPDown, dataset.UDPUp, dataset.TCPDown}

// retransKinds are the test kinds Figure 5 reads retransmission rates
// from.
var retransKinds = []dataset.Kind{dataset.TCPDown, dataset.TCPUp}

// pooledSketch merges the given sketches (nil entries are empty) into a
// fresh one.
func pooledSketch(parts ...*stats.Sketch) *stats.Sketch {
	out := stats.NewSketch()
	for _, p := range parts {
		if p != nil {
			out.Merge(p)
		}
	}
	return out
}

// sketchSeries renders a sketch as a 101-point CDF series, the same
// curve cdfSeries draws from a stats.CDF.
func sketchSeries(label string, s *stats.Sketch) Series {
	xs, ys := s.Points(101)
	return Series{Label: label, X: xs, Y: ys}
}

// hasNetwork reports membership of n in networks.
func hasNetwork(networks []channel.NetworkID, n channel.NetworkID) bool {
	for _, m := range networks {
		if m == n {
			return true
		}
	}
	return false
}

// orderPreferredNetworks returns networks with the preferred ids (those
// present) first and every remaining network in campaign order after
// them.
func orderPreferredNetworks(networks []channel.NetworkID, preferred ...channel.NetworkID) []channel.NetworkID {
	var out []channel.NetworkID
	taken := make(map[channel.NetworkID]bool, len(preferred))
	for _, n := range preferred {
		if hasNetwork(networks, n) {
			out = append(out, n)
			taken[n] = true
		}
	}
	for _, n := range networks {
		if !taken[n] {
			out = append(out, n)
		}
	}
	return out
}

// figure1Networks picks the motivation timeline's series: the paper's
// four (MOB and the carriers) when present, every measured network for
// scenarios that share none of them.
func figure1Networks(networks []channel.NetworkID) []channel.NetworkID {
	var out []channel.NetworkID
	for _, n := range []channel.NetworkID{channel.StarlinkMobility, channel.Verizon, channel.TMobile, channel.ATT} {
		if hasNetwork(networks, n) {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return networks
	}
	return out
}

func buildFigure1(src aggSource) *Figure {
	f := &Figure{
		ID: "fig1", Title: "Download throughput of different networks over one drive",
		Kind: TimeSeries, XLabel: "time (s)", YLabel: "throughput (Mbps)",
	}
	tl := src.timeline()
	for _, n := range figure1Networks(src.networks()) {
		s := Series{Label: n.String(), X: tl.X[n], Y: tl.Y[n]}
		f.Series = append(f.Series, s)
		f.addKPI("mean_"+n.String(), stats.Mean(s.Y))
	}
	f.Notes = append(f.Notes, fmt.Sprintf("drive %s (%s), %d s", tl.Route, tl.State, tl.Seconds))
	return f
}

func buildFigure3a(src aggSource) *Figure {
	f := &Figure{
		ID: "fig3a", Title: "TCP vs UDP downlink throughput CDFs",
		Kind: CDF, XLabel: "throughput (Mbps)", YLabel: "CDF",
	}
	mobTCP := pooledSketch(src.perSecondSketch(channel.StarlinkMobility, dataset.TCPDown))
	mobUDP := pooledSketch(src.perSecondSketch(channel.StarlinkMobility, dataset.UDPDown))
	cellTCP, cellUDP := stats.NewSketch(), stats.NewSketch()
	for _, n := range src.cellulars() {
		if s := src.perSecondSketch(n, dataset.TCPDown); s != nil {
			cellTCP.Merge(s)
		}
		if s := src.perSecondSketch(n, dataset.UDPDown); s != nil {
			cellUDP.Merge(s)
		}
	}
	f.Series = []Series{
		sketchSeries("MOB-TCP", mobTCP),
		sketchSeries("Cellular-TCP", cellTCP),
		sketchSeries("MOB-UDP", mobUDP),
		sketchSeries("Cellular-UDP", cellUDP),
	}
	f.addKPI("mob_udp_mean_mbps", mobUDP.Mean())
	f.addKPI("mob_tcp_mean_mbps", mobTCP.Mean())
	f.addKPI("mob_udp_tcp_ratio", safeRatio(mobUDP.Mean(), mobTCP.Mean()))
	f.addKPI("cell_udp_mean_mbps", cellUDP.Mean())
	f.addKPI("cell_tcp_mean_mbps", cellTCP.Mean())
	f.addKPI("cell_udp_tcp_ratio", safeRatio(cellUDP.Mean(), cellTCP.Mean()))
	return f
}

func buildFigure3b(src aggSource) *Figure {
	f := &Figure{
		ID: "fig3b", Title: "Roam vs Mobility UDP downlink throughput CDFs",
		Kind: CDF, XLabel: "throughput (Mbps)", YLabel: "CDF",
	}
	rm := pooledSketch(src.perSecondSketch(channel.StarlinkRoam, dataset.UDPDown))
	mob := pooledSketch(src.perSecondSketch(channel.StarlinkMobility, dataset.UDPDown))
	f.Series = []Series{sketchSeries("RM", rm), sketchSeries("MOB", mob)}
	f.addKPI("mob_median_mbps", mob.Median())
	f.addKPI("mob_mean_mbps", mob.Mean())
	f.addKPI("rm_median_mbps", rm.Median())
	f.addKPI("rm_mean_mbps", rm.Mean())
	f.addKPI("rm_p75_mbps", rm.Quantile(0.75))
	return f
}

func buildFigure3c(src aggSource) *Figure {
	f := &Figure{
		ID: "fig3c", Title: "Starlink uplink vs downlink UDP throughput CDFs",
		Kind: CDF, XLabel: "throughput (Mbps)", YLabel: "CDF",
	}
	down := pooledSketch(src.perSecondSketch(channel.StarlinkMobility, dataset.UDPDown))
	up := pooledSketch(src.perSecondSketch(channel.StarlinkMobility, dataset.UDPUp))
	f.Series = []Series{sketchSeries("Uplink", up), sketchSeries("Downlink", down)}
	f.addKPI("down_mean_mbps", down.Mean())
	f.addKPI("up_mean_mbps", up.Mean())
	f.addKPI("down_up_ratio", safeRatio(down.Mean(), up.Mean()))
	return f
}

func buildFigure4(src aggSource) *Figure {
	f := &Figure{
		ID: "fig4", Title: "UDP-Ping round-trip latency CDFs",
		Kind: CDF, XLabel: "RTT (ms)", YLabel: "CDF",
	}
	for _, n := range src.networks() {
		c := pooledSketch(src.rttSketch(n))
		f.Series = append(f.Series, sketchSeries(n.String(), c))
		f.addKPI("median_ms_"+n.String(), c.Median())
		f.addKPI("p90_ms_"+n.String(), c.Quantile(0.9))
	}
	return f
}

func buildFigure5(src aggSource) *Figure {
	f := &Figure{
		ID: "fig5", Title: "TCP retransmission rate per network",
		Kind: Bars, XLabel: "network", YLabel: "retransmission fraction",
	}
	downS := Series{Label: "downlink"}
	upS := Series{Label: "uplink"}
	for i, n := range src.networks() {
		down := pooledSketch(src.retransSketch(n, dataset.TCPDown)).Mean()
		up := pooledSketch(src.retransSketch(n, dataset.TCPUp)).Mean()
		downS.X = append(downS.X, float64(i))
		downS.Y = append(downS.Y, down)
		upS.X = append(upS.X, float64(i))
		upS.Y = append(upS.Y, up)
		f.addKPI("retrans_down_"+n.String(), down)
		f.addKPI("retrans_up_"+n.String(), up)
	}
	f.Series = []Series{downS, upS}
	return f
}

// minSpeedBucketSamples is the Figure 6 stability floor: speed buckets
// with fewer rural samples than this are dropped.
const minSpeedBucketSamples = 30

func buildFigure6(src aggSource) *Figure {
	f := &Figure{
		ID: "fig6", Title: "Throughput vs moving speed (rural only)",
		Kind: Bars, XLabel: "speed bucket (km/h)", YLabel: "mean throughput (Mbps)",
	}
	for _, n := range orderPreferredNetworks(src.networks(),
		channel.StarlinkMobility, channel.StarlinkRoam, channel.ATT, channel.TMobile, channel.Verizon) {
		byBucket := src.speedSketches(n)
		// Bucket order replicates stats.Bucketed.Keys(): a lexical sort
		// of the "%02d"-formatted lower edges ("100" sorts between "10"
		// and "20"), which the calibration KPIs were measured under.
		keys := make([]string, 0, len(byBucket))
		edges := make(map[string]int, len(byBucket))
		for b := range byBucket {
			k := fmt.Sprintf("%02d", b)
			keys = append(keys, k)
			edges[k] = b
		}
		sort.Strings(keys)
		s := Series{Label: n.String()}
		all := stats.NewSketch()
		for _, key := range keys {
			bs := byBucket[edges[key]]
			if bs.N() < minSpeedBucketSamples {
				continue // too few samples for a stable bucket mean
			}
			s.X = append(s.X, float64(edges[key]))
			s.Y = append(s.Y, bs.Mean())
			all.Merge(bs)
		}
		overall := all.Mean()
		var devMax float64
		for _, y := range s.Y {
			if dev := absFloat(y-overall) / overall; dev > devMax {
				devMax = dev
			}
		}
		f.Series = append(f.Series, s)
		f.addKPI("speed_dev_"+n.String(), devMax)
	}
	return f
}

func buildFigure7(src aggSource) *Figure {
	f := &Figure{
		ID: "fig7", Title: "Downlink throughput improvement from TCP parallelism",
		Kind: Bars, XLabel: "scheme", YLabel: "improvement (%)",
	}
	// For an apples-to-apples comparison the 1/4/8-parallel transfers
	// are evaluated over the *same* test windows (the paper ran its
	// parallelism schemes back-to-back on the same road segments).
	gains := func(nets []channel.NetworkID) (g4, g8 float64) {
		var sums [3]float64
		for fi, flows := range fluidFlowCounts {
			pool := stats.NewSketch()
			for _, n := range nets {
				if s := src.fluidSketch(n, flows); s != nil {
					pool.Merge(s)
				}
			}
			sums[fi] = pool.Sum()
		}
		m1, m4, m8 := sums[0], sums[1], sums[2]
		if m1 <= 0 {
			return 0, 0
		}
		return (m4/m1 - 1) * 100, (m8/m1 - 1) * 100
	}
	rm4g, rm8g := gains([]channel.NetworkID{channel.StarlinkRoam})
	c4g, c8g := gains(src.cellulars())
	f.Series = []Series{
		{Label: "Roam", X: []float64{4, 8}, Y: []float64{rm4g, rm8g}},
		{Label: "Cellular", X: []float64{4, 8}, Y: []float64{c4g, c8g}},
	}
	f.addKPI("rm_4p_gain_pct", rm4g)
	f.addKPI("rm_8p_gain_pct", rm8g)
	f.addKPI("cell_4p_gain_pct", c4g)
	f.addKPI("cell_8p_gain_pct", c8g)
	return f
}

func buildFigure8(src aggSource) *Figure {
	f := &Figure{
		ID: "fig8", Title: "UDP downlink throughput by area type",
		Kind: BoxPlot, XLabel: "area type", YLabel: "throughput (Mbps)",
	}
	for gi, group := range []struct {
		label string
		nets  []channel.NetworkID
	}{
		{"Cellular", src.cellulars()},
		{"MOB", []channel.NetworkID{channel.StarlinkMobility}},
	} {
		s := Series{Label: group.label}
		for ai, area := range geo.AreaTypes {
			xs := stats.NewSketch()
			for _, n := range group.nets {
				if sk := src.areaSketch(n, area); sk != nil {
					xs.Merge(sk)
				}
			}
			box := xs.Box()
			s.X = append(s.X, float64(gi*3+ai))
			s.Y = append(s.Y, box.Median)
			f.addKPI(fmt.Sprintf("mean_%s_%s", group.label, area), xs.Mean())
			f.addKPI(fmt.Sprintf("median_%s_%s", group.label, area), box.Median)
		}
		f.Series = append(f.Series, s)
	}
	// Data share per area (the paper's 29.78/34.30/35.91 split).
	counts := src.areaCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	for _, area := range geo.AreaTypes {
		f.addKPI("share_"+area.String(), 100*float64(counts[area])/float64(total))
	}
	return f
}

// fig9Column is one Figure 9 bar: the best-of per-second downlink of
// its networks, bucketed into performance levels.
type fig9Column struct {
	label string
	nets  []channel.NetworkID
}

// fig9Columns builds the Figure 9 column set from the campaign's
// network classes. Order follows the paper, generalized over the
// scenario: each cellular carrier, the best-of-cellular combination,
// then each satellite network alone and paired with the cellular
// ensemble. For the default scenario this reproduces the paper's eight
// columns (ATT, TM, VZ, BestCL, RM, RM+CL, MOB, MOB+CL) exactly.
func fig9Columns(cellulars, satellites []channel.NetworkID) []fig9Column {
	var cols []fig9Column
	for _, n := range cellulars {
		cols = append(cols, fig9Column{n.String(), []channel.NetworkID{n}})
	}
	if len(cellulars) > 1 {
		cols = append(cols, fig9Column{"BestCL", cellulars})
	}
	for _, n := range satellites {
		cols = append(cols, fig9Column{n.String(), []channel.NetworkID{n}})
		if len(cellulars) > 0 {
			cols = append(cols, fig9Column{n.String() + "+CL",
				append([]channel.NetworkID{n}, cellulars...)})
		}
	}
	return cols
}

func buildFigure9(src aggSource) *Figure {
	f := &Figure{
		ID: "fig9", Title: "Coverage share per performance level",
		Kind: StackedBars, XLabel: "network", YLabel: "fraction",
	}
	cols := fig9Columns(src.cellulars(), src.satellites())
	counts, total := src.perfCounts()
	for ci, c := range cols {
		s := Series{Label: c.label}
		for lvl := 0; lvl < 4; lvl++ {
			frac := float64(counts[ci][lvl]) / float64(total)
			s.X = append(s.X, float64(lvl))
			s.Y = append(s.Y, frac)
			f.addKPI(fmt.Sprintf("%s_%s", c.label, PerfLevelNames[lvl]), frac)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

func buildEquation1() *Figure {
	f := &Figure{
		ID: "eq1", Title: "One-way satellite propagation latency (Eq. 1)",
		Kind: Bars, XLabel: "altitude (km)", YLabel: "latency (ms)",
	}
	s := Series{Label: "one-way latency"}
	for _, alt := range []float64{340, 550, 1150} {
		s.X = append(s.X, alt)
		s.Y = append(s.Y, leo.OneWayPropagation(alt).Seconds()*1000)
	}
	f.Series = []Series{s}
	f.addKPI("latency_550km_ms", leo.OneWayPropagation(550).Seconds()*1000)
	return f
}

func buildDatasetSummary(src aggSource) *Figure {
	sum := src.summary()
	f := &Figure{ID: "dataset", Title: "Driving dataset summary (§3.3)", Kind: Bars}
	f.addKPI("tests", float64(sum.Tests))
	f.addKPI("tests_complete", float64(sum.Outcomes[dataset.OutcomeComplete]))
	f.addKPI("tests_truncated", float64(sum.Outcomes[dataset.OutcomeTruncated]))
	f.addKPI("tests_failed", float64(sum.Outcomes[dataset.OutcomeFailed]))
	f.addKPI("tests_skipped_by_figures", float64(sum.Skipped))
	f.addKPI("trace_minutes", sum.TraceMinutes)
	f.addKPI("distance_km", sum.DistanceKm)
	f.addKPI("drives", float64(sum.Drives))
	f.addKPI("states", float64(sum.States))
	return f
}
