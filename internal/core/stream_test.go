package core

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"unsafe"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/obs"
	"satcell/internal/store"
)

// streamWorkerCounts are the pool sizes the equivalence suites sweep.
var streamWorkerCounts = []int{1, 2, 4, 8}

// The streaming suites share one small campaign (and one exported
// artifact directory) across tests.
var (
	streamOnce sync.Once
	streamDS   *dataset.Dataset
	streamDir  string
	streamErr  error
)

func streamFixture(t *testing.T) (*dataset.Dataset, string) {
	t.Helper()
	streamOnce.Do(func() {
		streamDS = dataset.Generate(dataset.Config{Seed: 11, Scale: 0.05})
		dir, err := os.MkdirTemp("", "satcell-stream-*")
		if err != nil {
			streamErr = err
			return
		}
		streamDir = dir
		_, streamErr = store.ExportDataset(dir, streamDS, store.ExportOptions{Seed: 11, Scale: 0.05})
	})
	if streamErr != nil {
		t.Fatal(streamErr)
	}
	return streamDS, streamDir
}

// renderAll renders a figure map to one deterministic string (IDs
// sorted), the byte-level identity the equivalence tests compare.
func renderAll(figs map[string]*Figure) string {
	out := ""
	for _, id := range FigureIDs(figs) {
		out += figs[id].Render() + "\n" + figs[id].CSV() + "\n"
	}
	return out
}

// TestStreamingMatchesAnalyzerGolden is the tentpole equivalence gate:
// the streaming pipeline over the in-memory dataset renders every
// streaming figure byte-identically to the classic Analyzer, for every
// worker count.
func TestStreamingMatchesAnalyzerGolden(t *testing.T) {
	ds, _ := streamFixture(t)
	a := NewAnalyzer(ds)
	want := map[string]string{}
	for _, f := range []*Figure{
		a.Figure1(), a.Figure3a(), a.Figure3b(), a.Figure3c(), a.Figure4(),
		a.Figure5(), a.Figure6(), a.Figure7(), a.Figure8(), a.Figure9(),
		a.Equation1(), a.DatasetSummary(),
	} {
		want[f.ID] = f.Render() + "\n" + f.CSV()
	}
	for _, workers := range streamWorkerCounts {
		sa, err := StreamAnalyze(&DatasetSource{DS: ds}, StreamOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		figs := sa.Figures()
		if len(figs) != len(want) {
			t.Fatalf("workers=%d: %d figures, want %d", workers, len(figs), len(want))
		}
		for id, f := range figs {
			got := f.Render() + "\n" + f.CSV()
			if got != want[id] {
				t.Errorf("workers=%d: %s differs from Analyzer:\n--- analyzer ---\n%s\n--- streaming ---\n%s",
					workers, id, clip(want[id]), clip(got))
			}
		}
	}
}

func clip(s string) string {
	if len(s) > 2000 {
		return s[:2000] + "…"
	}
	return s
}

// TestStreamingStoreDeterministicAcrossWorkers locks the directory-scan
// path: every worker count renders byte-identical output (the store
// path is CSV-rounded, so it is compared against itself, not against
// the in-memory analyzer).
func TestStreamingStoreDeterministicAcrossWorkers(t *testing.T) {
	_, dir := streamFixture(t)
	var want string
	for _, workers := range streamWorkerCounts {
		src, err := OpenStoreSource(dir, store.Strict)
		if err != nil {
			t.Fatal(err)
		}
		sa, err := StreamAnalyze(src, StreamOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := renderAll(sa.Figures())
		if workers == streamWorkerCounts[0] {
			want = got
			continue
		}
		if got != want {
			t.Errorf("workers=%d renders differently from workers=%d", workers, streamWorkerCounts[0])
		}
	}
}

// TestStreamingStoreCloseToAnalyzer sanity-checks that the store path
// measures the same campaign: headline KPIs agree with the in-memory
// analyzer within CSV-rounding slack.
func TestStreamingStoreCloseToAnalyzer(t *testing.T) {
	ds, dir := streamFixture(t)
	src, err := OpenStoreSource(dir, store.Strict)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := StreamAnalyze(src, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	figs := sa.Figures()
	a := NewAnalyzer(ds)
	for _, probe := range []struct {
		id, kpi string
		mem     float64
		tol     float64
	}{
		{"fig3a", "mob_udp_mean_mbps", a.Figure3a().KPI("mob_udp_mean_mbps"), 0.05},
		{"fig4", "median_ms_RM", a.Figure4().KPI("median_ms_RM"), 0.05},
		{"fig8", "share_rural", a.Figure8().KPI("share_rural"), 0.01},
		{"dataset", "tests", a.DatasetSummary().KPI("tests"), 0},
		{"dataset", "distance_km", a.DatasetSummary().KPI("distance_km"), 1e-9},
	} {
		got := figs[probe.id].KPI(probe.kpi)
		if diff := absFloat(got - probe.mem); diff > probe.tol {
			t.Errorf("%s %s: store %.6f vs memory %.6f (|Δ|=%.6f > %.6f)",
				probe.id, probe.kpi, got, probe.mem, diff, probe.tol)
		}
	}
	if sa.summary().Outcomes[dataset.OutcomeFailed] != ds.OutcomeCounts()[dataset.OutcomeFailed] {
		t.Errorf("store path reconstructed %d failed tests, dataset has %d",
			sa.summary().Outcomes[dataset.OutcomeFailed], ds.OutcomeCounts()[dataset.OutcomeFailed])
	}
}

// TestStreamMetrics checks the pipeline's observability: shard/row
// counters and per-worker attribution.
func TestStreamMetrics(t *testing.T) {
	ds, _ := streamFixture(t)
	reg := obs.NewRegistry()
	_, err := StreamAnalyze(&DatasetSource{DS: ds}, StreamOptions{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := reg.Counter("stream.shards_done").Value(), int64(len(ds.Drives)); got != want {
		t.Errorf("shards_done = %d, want %d", got, want)
	}
	if got := reg.Gauge("stream.shards_total").Value(); got != float64(len(ds.Drives)) {
		t.Errorf("shards_total = %g, want %d", got, len(ds.Drives))
	}
	if got := reg.Gauge("stream.progress").Value(); got != 1 {
		t.Errorf("progress = %g, want 1", got)
	}
	var perWorker int64
	for w := 0; w < 2; w++ {
		perWorker += reg.Counter(fmt.Sprintf("stream.worker.%02d.shards", w)).Value()
	}
	if perWorker != int64(len(ds.Drives)) {
		t.Errorf("per-worker shard counters sum to %d, want %d", perWorker, len(ds.Drives))
	}
	if reg.Counter("stream.rows_done").Value() == 0 {
		t.Error("rows_done stayed zero")
	}
}

// TestStreamingTenXCorpusBoundedMemory is the scale gate: a synthetic
// corpus ~10× the fixture campaign streams through the pipeline with
// peak heap growth far below the corpus's in-memory footprint.
func TestStreamingTenXCorpusBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10x corpus test skipped in -short mode")
	}
	ds, _ := streamFixture(t)
	const copies = 10
	big := tileDataset(ds, copies)
	dir := t.TempDir()
	if _, err := store.ExportDataset(dir, big, store.ExportOptions{Seed: 11, Scale: 0.05}); err != nil {
		t.Fatal(err)
	}
	// Estimate the corpus's in-memory record footprint before releasing
	// it: this is (a lower bound on) what the non-streaming path holds.
	var totalRecords int
	for i := range big.Drives {
		for _, recs := range big.Drives[i].Observed {
			totalRecords += len(recs)
		}
	}
	corpusBytes := uint64(totalRecords) * uint64(unsafe.Sizeof(channel.Record{}))
	big = nil // the streaming scan must not need it

	src, err := OpenStoreSource(dir, store.Strict)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	sampled := &memSamplingSource{inner: src}
	sa, err := StreamAnalyze(sampled, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	figs := sa.Figures()
	if got := figs["dataset"].KPI("drives"); got != float64(copies*len(ds.Drives)) {
		t.Fatalf("10x corpus reports %g drives, want %d", got, copies*len(ds.Drives))
	}
	var growth uint64
	if peak := sampled.peak.Load(); peak > base.HeapAlloc {
		growth = peak - base.HeapAlloc
	}
	// The bound: half the corpus footprint. A non-streaming load holds
	// every record (plus tests and series) at once; the pipeline holds
	// a few shards plus the sketches.
	if growth > corpusBytes/2 {
		t.Errorf("peak heap growth %d bytes exceeds half the %d-byte corpus footprint (not streaming?)",
			growth, corpusBytes)
	}
	t.Logf("10x corpus: %d records (%d bytes in memory), peak heap growth %d bytes",
		totalRecords, corpusBytes, growth)
}

// memSamplingSource decorates a ShardSource with a HeapAlloc probe
// after each shard load. Loads run concurrently in workers, so the
// peak is tracked atomically.
type memSamplingSource struct {
	inner ShardSource
	peak  atomic.Uint64
}

func (m *memSamplingSource) Info() (SourceInfo, error) { return m.inner.Info() }

func (m *memSamplingSource) Plan() ([]ShardRef, error) { return m.inner.Plan() }

func (m *memSamplingSource) Load(ref ShardRef) (*Shard, error) {
	sh, err := m.inner.Load(ref)
	// Collect before reading so the probe measures live heap
	// (shards in flight + sketches), not GC-lag garbage.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		old := m.peak.Load()
		if ms.HeapAlloc <= old || m.peak.CompareAndSwap(old, ms.HeapAlloc) {
			break
		}
	}
	return sh, err
}

// tileDataset builds a campaign ~n times the input by replicating its
// drives and tests with fresh indices. Records are shared (the export
// re-serializes them per shard), tests are re-identified so every copy
// evaluates as a distinct drive.
func tileDataset(ds *dataset.Dataset, n int) *dataset.Dataset {
	out := &dataset.Dataset{
		Seed: ds.Seed, Networks: ds.Networks,
		TotalKm: ds.TotalKm * float64(n), TotalTestMin: ds.TotalTestMin * float64(n),
	}
	for c := 0; c < n; c++ {
		out.Drives = append(out.Drives, ds.Drives...)
		for i := range ds.Tests {
			t := ds.Tests[i]
			t.ID = c*len(ds.Tests) + t.ID
			t.Drive = c*len(ds.Drives) + t.Drive
			out.Tests = append(out.Tests, t)
		}
	}
	return out
}

// TestFig9ColumnsDefaultScenario pins the paper's eight-column layout.
func TestFig9ColumnsDefaultScenario(t *testing.T) {
	cols := fig9Columns(
		[]channel.NetworkID{channel.ATT, channel.TMobile, channel.Verizon},
		[]channel.NetworkID{channel.StarlinkRoam, channel.StarlinkMobility})
	want := []string{"ATT", "TM", "VZ", "BestCL", "RM", "RM+CL", "MOB", "MOB+CL"}
	if len(cols) != len(want) {
		t.Fatalf("%d columns, want %d", len(cols), len(want))
	}
	for i, c := range cols {
		if c.label != want[i] {
			t.Errorf("column %d is %q, want %q", i, c.label, want[i])
		}
	}
}
