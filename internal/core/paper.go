package core

import (
	"fmt"
	"strings"
)

// Target is one paper-reported number and the tolerance band within
// which the reproduction is considered to preserve the paper's finding
// (shape and rough factor, not exact value — the substrate is a
// simulator, not the authors' testbed).
type Target struct {
	FigureID string
	KPI      string
	Name     string
	Paper    float64 // the value the paper reports
	Lo, Hi   float64 // acceptance band for the reproduction
}

// PaperTargets enumerates every quantitative claim the reproduction
// tracks, figure by figure.
func PaperTargets() []Target {
	return []Target{
		// §4.1 / Fig. 3a — TCP suffers on Starlink, not on cellular.
		{"fig3a", "mob_udp_mean_mbps", "Starlink MOB UDP downlink mean (Mbps)", 128, 90, 185},
		{"fig3a", "mob_tcp_mean_mbps", "Starlink MOB TCP downlink mean (Mbps)", 29, 12, 62},
		{"fig3a", "mob_udp_tcp_ratio", "Starlink UDP/TCP throughput ratio", 4.4, 2.0, 9.0},
		{"fig3a", "cell_udp_tcp_ratio", "Cellular UDP/TCP throughput ratio (minimal gap)", 1.1, 0.9, 2.2},

		// §4.1 / Fig. 3b — Roam vs Mobility.
		{"fig3b", "mob_median_mbps", "MOB UDP downlink median (Mbps)", 197, 140, 265},
		{"fig3b", "mob_mean_mbps", "MOB UDP downlink mean (Mbps)", 128, 90, 185},
		{"fig3b", "rm_median_mbps", "RM UDP downlink median (Mbps)", 93, 55, 135},
		{"fig3b", "rm_mean_mbps", "RM UDP downlink mean (Mbps)", 63, 40, 100},

		// §4.1 / Fig. 3c — FDD asymmetry.
		{"fig3c", "down_up_ratio", "Starlink downlink/uplink ratio", 10, 6, 14},

		// §4.1 / Fig. 4 — latency bands.
		{"fig4", "median_ms_MOB", "MOB median RTT (ms)", 75, 50, 100},
		{"fig4", "median_ms_RM", "RM median RTT (ms)", 75, 50, 100},
		{"fig4", "median_ms_VZ", "VZ median RTT (ms)", 55, 35, 75},
		{"fig4", "median_ms_TM", "TM median RTT (ms)", 57, 35, 80},
		{"fig4", "median_ms_ATT", "ATT median RTT (ms)", 90, 60, 115},

		// §4.1 / Fig. 5 — retransmission rates (0.3-1.3% on Starlink).
		{"fig5", "retrans_down_MOB", "MOB downlink retransmission rate", 0.006, 0.002, 0.02},
		{"fig5", "retrans_down_RM", "RM downlink retransmission rate", 0.009, 0.002, 0.035},
		{"fig5", "retrans_down_VZ", "VZ downlink retransmission rate", 0.001, 0, 0.004},

		// §4.2 / Fig. 7 — parallelism gains.
		// The paper reports these as lower bounds ("over 50%", "over
		// 130%"), so the acceptance bands extend well above them.
		{"fig7", "rm_4p_gain_pct", "Roam 4-parallel TCP gain (%)", 50, 25, 220},
		{"fig7", "rm_8p_gain_pct", "Roam 8-parallel TCP gain (%)", 130, 55, 300},

		// §5.1 / Fig. 8 — area shares.
		{"fig8", "share_urban", "Urban share of data points (%)", 29.78, 22, 40},
		{"fig8", "share_suburban", "Suburban share of data points (%)", 34.30, 25, 42},
		{"fig8", "share_rural", "Rural share of data points (%)", 35.91, 27, 45},

		// §5.2 / Fig. 9 — coverage shares.
		{"fig9", "MOB_high", "MOB high-performance share", 0.6061, 0.45, 0.75},
		{"fig9", "VZ_high", "VZ high-performance share", 0.4439, 0.28, 0.60},
		{"fig9", "TM_high", "TM high-performance share", 0.4247, 0.26, 0.58},

		// §6 / Fig. 10 — multipath gains (tuned buffers).
		{"fig10", "gain_over_best_mob_att_pct", "MPTCP MOB+ATT gain over better path (%)", 30, 8, 90},
		{"fig10", "gain_over_best_mob_vz_pct", "MPTCP MOB+VZ gain over better path (%)", 66, 15, 130},
		{"fig10", "bandwidth_utilization_pct", "MPTCP bandwidth utilization (%)", 82.5, 55, 97},

		// Eq. (1).
		{"eq1", "latency_550km_ms", "One-way 550 km propagation (ms)", 1.835, 1.83, 1.84},
	}
}

// CompositeTargets are paper claims computed from multiple KPIs of one
// figure rather than a single KPI.
type CompositeTarget struct {
	FigureID string
	Name     string
	Check    func(f *Figure) (measured float64, ok bool)
}

// PaperCompositeTargets lists the ordering/relational claims.
func PaperCompositeTargets() []CompositeTarget {
	return []CompositeTarget{
		{"fig4", "ATT has the highest median latency", func(f *Figure) (float64, bool) {
			att := f.KPI("median_ms_ATT")
			ok := att > f.KPI("median_ms_VZ") && att > f.KPI("median_ms_TM") &&
				att > f.KPI("median_ms_MOB") && att > f.KPI("median_ms_RM")
			return att, ok
		}},
		{"fig5", "Starlink loses more packets than cellular (both dirs)", func(f *Figure) (float64, bool) {
			minSat := minF(f.KPI("retrans_down_MOB"), f.KPI("retrans_down_RM"))
			maxCell := maxF(f.KPI("retrans_down_ATT"), f.KPI("retrans_down_TM"), f.KPI("retrans_down_VZ"))
			return minSat / maxF(maxCell, 1e-9), minSat > maxCell
		}},
		{"fig6", "Throughput varies little with speed (<35% deviation)", func(f *Figure) (float64, bool) {
			worst := 0.0
			for k, v := range f.KPIs {
				if strings.HasPrefix(k, "speed_dev_") && v > worst {
					worst = v
				}
			}
			return worst, worst < 0.35
		}},
		{"fig7", "Parallelism helps Starlink more than cellular", func(f *Figure) (float64, bool) {
			return f.KPI("rm_8p_gain_pct") - f.KPI("cell_8p_gain_pct"),
				f.KPI("rm_8p_gain_pct") > f.KPI("cell_8p_gain_pct") &&
					f.KPI("rm_4p_gain_pct") > f.KPI("cell_4p_gain_pct")
		}},
		{"fig8", "Cellular wins urban; Starlink wins suburban+rural", func(f *Figure) (float64, bool) {
			ok := f.KPI("mean_Cellular_urban") > f.KPI("mean_MOB_urban") &&
				f.KPI("mean_MOB_suburban") > f.KPI("mean_Cellular_suburban") &&
				f.KPI("mean_MOB_rural") > f.KPI("mean_Cellular_rural")
			return f.KPI("mean_MOB_rural") - f.KPI("mean_Cellular_rural"), ok
		}},
		{"fig8", "Cellular degrades toward rural; Starlink improves", func(f *Figure) (float64, bool) {
			ok := f.KPI("mean_Cellular_urban") > f.KPI("mean_Cellular_rural") &&
				f.KPI("mean_MOB_rural") > f.KPI("mean_MOB_urban")
			return f.KPI("mean_MOB_rural") / maxF(f.KPI("mean_MOB_urban"), 1e-9), ok
		}},
		{"fig9", "ATT and RM trail (low+very-low shares largest)", func(f *Figure) (float64, bool) {
			attLow := f.KPI("ATT_low") + f.KPI("ATT_very-low")
			rmLow := f.KPI("RM_low") + f.KPI("RM_very-low")
			vzLow := f.KPI("VZ_low") + f.KPI("VZ_very-low")
			mobLow := f.KPI("MOB_low") + f.KPI("MOB_very-low")
			return attLow, attLow > vzLow && rmLow > mobLow
		}},
		{"fig9", "Combining networks improves high-performance coverage", func(f *Figure) (float64, bool) {
			ok := f.KPI("RM+CL_high") > f.KPI("BestCL_high")-0.001 &&
				f.KPI("MOB+CL_high") > f.KPI("MOB_high") &&
				f.KPI("MOB+CL_high") > f.KPI("BestCL_high")
			return f.KPI("MOB+CL_high"), ok
		}},
		{"fig10", "Buffer tuning unlocks the multipath gain", func(f *Figure) (float64, bool) {
			tuned := f.KPI("gain_over_best_mob_att_pct") + f.KPI("gain_over_best_mob_vz_pct")
			untuned := f.KPI("gain_untuned_mob_att_pct") + f.KPI("gain_untuned_mob_vz_pct")
			return tuned - untuned, tuned > untuned
		}},
		{"fig11", "MPTCP rides the better path", func(f *Figure) (float64, bool) {
			a := f.KPI("mean_MPTCP(a)")
			ok := a > f.KPI("mean_MOB(a)")*0.9 && a > f.KPI("mean_ATT(a)")*0.9 &&
				f.KPI("mean_MPTCP(b)") > f.KPI("mean_VZ(b)")*0.9
			return a, ok
		}},
	}
}

func minF(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func maxF(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ExperimentRow is one line of the paper-vs-measured record.
type ExperimentRow struct {
	FigureID string
	Name     string
	Paper    float64
	Measured float64
	Lo, Hi   float64
	OK       bool
	Relation bool // true for composite (ordering) targets
}

// Experiments evaluates every target against the given figures (keyed
// by figure ID) and returns the record for EXPERIMENTS.md.
func Experiments(figs map[string]*Figure) []ExperimentRow {
	var rows []ExperimentRow
	for _, t := range PaperTargets() {
		f, ok := figs[t.FigureID]
		if !ok {
			continue
		}
		m := f.KPI(t.KPI)
		rows = append(rows, ExperimentRow{
			FigureID: t.FigureID, Name: t.Name, Paper: t.Paper,
			Measured: m, Lo: t.Lo, Hi: t.Hi,
			OK: m >= t.Lo && m <= t.Hi,
		})
	}
	for _, ct := range PaperCompositeTargets() {
		f, ok := figs[ct.FigureID]
		if !ok {
			continue
		}
		m, pass := ct.Check(f)
		rows = append(rows, ExperimentRow{
			FigureID: ct.FigureID, Name: ct.Name, Measured: m,
			OK: pass, Relation: true,
		})
	}
	return rows
}

// RenderExperiments formats the record as a markdown table.
func RenderExperiments(rows []ExperimentRow) string {
	var b strings.Builder
	b.WriteString("| Figure | Claim | Paper | Measured | Band | OK |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range rows {
		status := "PASS"
		if !r.OK {
			status = "FAIL"
		}
		if r.Relation {
			fmt.Fprintf(&b, "| %s | %s | (ordering) | %.4g | — | %s |\n",
				r.FigureID, r.Name, r.Measured, status)
		} else {
			fmt.Fprintf(&b, "| %s | %s | %.4g | %.4g | [%.4g, %.4g] | %s |\n",
				r.FigureID, r.Name, r.Paper, r.Measured, r.Lo, r.Hi, status)
		}
	}
	return b.String()
}
