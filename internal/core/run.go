package core

import (
	"sort"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/obs"
)

// RunConfig bundles everything needed to regenerate the evaluation.
type RunConfig struct {
	Dataset   dataset.Config
	Multipath MultipathConfig
}

// AllFigures generates the dataset (unless ds is provided) and produces
// every figure keyed by ID.
func AllFigures(ds *dataset.Dataset, mp MultipathConfig) map[string]*Figure {
	return AllFiguresCatalog(ds, mp, nil)
}

// AllFiguresCatalog is AllFigures with an explicit network catalog (nil
// means the default) classifying the dataset's networks — needed when
// the dataset was generated from a cloned catalog with custom networks.
func AllFiguresCatalog(ds *dataset.Dataset, mp MultipathConfig, cat *channel.Catalog) map[string]*Figure {
	a := NewAnalyzer(ds)
	a.Catalog = cat
	figs := []*Figure{
		a.Figure1(),
		a.Figure3a(), a.Figure3b(), a.Figure3c(),
		a.Figure4(), a.Figure5(), a.Figure6(), a.Figure7(),
		a.Figure8(), a.Figure9(),
		a.Figure10(mp), a.Figure11(mp),
		a.Equation1(),
		a.DatasetSummary(),
	}
	out := make(map[string]*Figure, len(figs))
	for _, f := range figs {
		out[f.ID] = f
	}
	return out
}

// AllFiguresStreaming produces the same figure map as AllFiguresCatalog
// but computes the streamable analyses (everything except the
// packet-level fig10/fig11 replays) through the sharded worker-pool
// pipeline, and returns the run's completeness certificate alongside.
// Output is bit-identical to AllFiguresCatalog for every worker count;
// only peak memory and wall-clock change. The in-memory source cannot
// fail a shard, so the certificate is complete by construction — it is
// returned anyway so every streamed figure set carries one.
func AllFiguresStreaming(ds *dataset.Dataset, mp MultipathConfig, cat *channel.Catalog, workers int, metrics *obs.Registry) (map[string]*Figure, *Completeness, error) {
	sa, err := StreamAnalyze(&DatasetSource{DS: ds},
		StreamOptions{Workers: workers, Catalog: cat, Metrics: metrics, Strict: true})
	if err != nil {
		return nil, nil, err
	}
	out := sa.Figures()
	a := NewAnalyzer(ds)
	a.Catalog = cat
	for _, f := range []*Figure{a.Figure10(mp), a.Figure11(mp)} {
		out[f.ID] = f
	}
	return out, sa.Completeness(), nil
}

// FigureIDs returns the sorted figure identifiers of a figure map.
func FigureIDs(figs map[string]*Figure) []string {
	ids := make([]string, 0, len(figs))
	for id := range figs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
