package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/faults"
	"satcell/internal/geo"
	"satcell/internal/obs"
	"satcell/internal/stats"
)

// This file is the streaming analysis path: a supervisor feeds planned
// shard refs to a worker pool, each worker loads and folds its shard
// (one drive per shard) into mergeable partial aggregates, an exact
// merge combines the partials, and the shared figure builders
// (figbuild.go) render from the merged state. Because every
// floating-point reduction lives in a canonical stats.Sketch and every
// other aggregate is an integer counter or a set, the merged state —
// and therefore every rendered byte — is identical for any worker
// count and any shard-to-worker interleaving. Peak memory is
// O(largest shard + sketches), never O(dataset).
//
// The supervisor degrades instead of aborting: a shard whose load hits
// a transient I/O error is retried with capped backoff, a shard that
// stays bad (or panics the accumulator) is quarantined, and every run
// carries a Completeness certificate itemising exactly what was lost.
// Strict mode keeps the original abort-on-first-error contract.

// Shard is one unit of streaming work: a single drive's records (per
// network, in drive order) and the tests carved from it.
type Shard struct {
	Drive        int
	Route, State string
	// Records holds each network's per-second observations; all
	// networks of a drive have equal length (one record per GPS fix).
	Records map[channel.NetworkID][]channel.Record
	// Tests lists the drive's evaluated test windows, failed ones
	// included (the accumulator counts and skips them).
	Tests []*dataset.Test
}

// SourceInfo describes the campaign a ShardSource scans: facts that are
// not recoverable from the shards themselves.
type SourceInfo struct {
	// Networks lists the measured networks in campaign order.
	Networks []channel.NetworkID
	// Seed is the campaign's generation seed (drives the fluid-TCP
	// variant RNGs, matching the in-memory analyzer).
	Seed int64
	// TotalKm and TotalTestMin are the §3.3 campaign totals (distance
	// covers gaps between test windows, so summing shards undercounts).
	TotalKm, TotalTestMin float64
}

// ShardRef identifies one planned unit of streaming work before it is
// loaded. Plan produces the full list up front so the supervisor can
// retry, quarantine and certify shards individually.
type ShardRef struct {
	// Index is the ref's position in Plan order; it doubles as the
	// shard's deterministic identity for retry jitter.
	Index int
	// Drive is the drive the shard covers.
	Drive int
	// Label names the shard in certificates and error messages.
	Label string
}

// ShardSource is the streaming pipeline's data contract, split so the
// cheap structural part (Plan: manifests, control files — fatal in
// every mode) is separate from the heavy per-shard I/O (Load), which
// the supervisor runs in workers with retry and quarantine. Plan is
// called once, before any Load; Load must be safe for concurrent calls
// with distinct refs and for repeated calls with the same ref
// (retries).
type ShardSource interface {
	Info() (SourceInfo, error)
	Plan() ([]ShardRef, error)
	Load(ref ShardRef) (*Shard, error)
}

// DatasetSource adapts an in-memory dataset to the streaming pipeline,
// sharding the campaign on the Test.Drive index. It shares the
// dataset's memory (no copies), so it proves path equivalence rather
// than memory bounds; StoreSource is the bounded-memory scan.
type DatasetSource struct {
	DS *dataset.Dataset

	byDrive [][]*dataset.Test
}

// Info implements ShardSource.
func (s *DatasetSource) Info() (SourceInfo, error) {
	nets := s.DS.Networks
	if len(nets) == 0 {
		nets = channel.Networks
	}
	return SourceInfo{
		Networks: nets, Seed: s.DS.Seed,
		TotalKm: s.DS.TotalKm, TotalTestMin: s.DS.TotalTestMin,
	}, nil
}

// Plan implements ShardSource: one shard per drive, in drive order.
func (s *DatasetSource) Plan() ([]ShardRef, error) {
	ds := s.DS
	byDrive := make([][]*dataset.Test, len(ds.Drives))
	for i := range ds.Tests {
		t := &ds.Tests[i]
		if t.Drive < 0 || t.Drive >= len(ds.Drives) {
			return nil, fmt.Errorf("core: test %d claims drive %d of %d", t.ID, t.Drive, len(ds.Drives))
		}
		byDrive[t.Drive] = append(byDrive[t.Drive], t)
	}
	s.byDrive = byDrive
	refs := make([]ShardRef, len(ds.Drives))
	for i := range ds.Drives {
		refs[i] = ShardRef{Index: i, Drive: i,
			Label: fmt.Sprintf("drive%03d_%s", i, ds.Drives[i].Route)}
	}
	return refs, nil
}

// Load implements ShardSource. In-memory loads cannot fail.
func (s *DatasetSource) Load(ref ShardRef) (*Shard, error) {
	d := &s.DS.Drives[ref.Drive]
	return &Shard{
		Drive: ref.Drive, Route: d.Route, State: d.State,
		Records: d.Observed, Tests: s.byDrive[ref.Drive],
	}, nil
}

// partial is one worker's mergeable aggregate state. Every field is
// either a canonical sketch (order-invariant by construction), an
// integer counter (exactly associative), a set, or a max-candidate
// (timeline), so merging partials in any grouping produces identical
// state.
type partial struct {
	cols []fig9Column

	drives   int
	states   map[string]bool
	tests    int
	outcomes map[dataset.Outcome]int
	skipped  int

	perSec  map[bucketKey]*stats.Sketch
	rtt     map[channel.NetworkID]*stats.Sketch
	retrans map[bucketKey]*stats.Sketch
	fluid   map[fluidKey]*stats.Sketch
	speed   map[channel.NetworkID]map[int]*stats.Sketch
	area    map[netArea]*stats.Sketch

	areaCounts map[geo.AreaType]int
	perfCounts [][4]int
	perfTotal  int

	timeline *timelineData
}

func newPartial(cols []fig9Column) *partial {
	return &partial{
		cols:       cols,
		states:     make(map[string]bool),
		outcomes:   make(map[dataset.Outcome]int),
		perSec:     make(map[bucketKey]*stats.Sketch),
		rtt:        make(map[channel.NetworkID]*stats.Sketch),
		retrans:    make(map[bucketKey]*stats.Sketch),
		fluid:      make(map[fluidKey]*stats.Sketch),
		speed:      make(map[channel.NetworkID]map[int]*stats.Sketch),
		area:       make(map[netArea]*stats.Sketch),
		areaCounts: make(map[geo.AreaType]int),
		perfCounts: make([][4]int, len(cols)),
	}
}

func sketchAt[K comparable](m map[K]*stats.Sketch, k K) *stats.Sketch {
	s := m[k]
	if s == nil {
		s = stats.NewSketch()
		m[k] = s
	}
	return s
}

// kindIn reports membership of k in kinds.
func kindIn(kinds []dataset.Kind, k dataset.Kind) bool {
	for _, x := range kinds {
		if x == k {
			return true
		}
	}
	return false
}

// accumulate folds one shard into the partial. rows counts the records
// and test windows consumed (for throughput metrics). incumbent is the
// best timeline candidate already held outside p (the worker partial's,
// when p is a per-shard local): a shard that cannot beat it skips the
// expensive X/Y series copy. betterThan is a strict total order, so the
// skip can never drop the campaign-wide winner.
func (p *partial) accumulate(sh *Shard, info SourceInfo, nets []channel.NetworkID, incumbent *timelineData) (rows int) {
	p.drives++
	p.states[sh.State] = true

	// Per-second campaign scans: area shares and the Figure 9
	// performance levels use the fix sequence (the first network's
	// record count — all networks observe every fix).
	var fixes []channel.Record
	if len(nets) > 0 {
		fixes = sh.Records[nets[0]]
	}
	for i := range fixes {
		p.areaCounts[fixes[i].Env.Area]++
		for ci := range p.cols {
			best := 0.0
			for _, net := range p.cols[ci].nets {
				if recs := sh.Records[net]; i < len(recs) {
					if v := recs[i].Sample.DownMbps; v > best {
						best = v
					}
				}
			}
			p.perfCounts[ci][perfLevel(best)]++
		}
		p.perfTotal++
	}

	// Per-record per-network scans: Figure 6 speed buckets and
	// Figure 8 area distributions.
	for _, n := range nets {
		recs := sh.Records[n]
		rows += len(recs)
		for i := range recs {
			r := &recs[i]
			sketchAt(p.area, netArea{n, r.Env.Area}).Add(r.Sample.DownMbps)
			if r.Env.Area == geo.Rural && r.Env.SpeedKmh >= 1 {
				m := p.speed[n]
				if m == nil {
					m = make(map[int]*stats.Sketch)
					p.speed[n] = m
				}
				sketchAt(m, int(r.Env.SpeedKmh)/10*10).Add(r.Sample.DownMbps)
			}
		}
	}

	// Timeline candidate: keep only the best seen so far.
	cand := &timelineData{Drive: sh.Drive, Route: sh.Route, State: sh.State, Seconds: len(fixes)}
	if cand.betterThan(p.timeline) && cand.betterThan(incumbent) {
		cand.X = make(map[channel.NetworkID][]float64, len(nets))
		cand.Y = make(map[channel.NetworkID][]float64, len(nets))
		for _, n := range nets {
			recs := sh.Records[n]
			xs := make([]float64, len(recs))
			ys := make([]float64, len(recs))
			for i, r := range recs {
				xs[i] = r.Sample.At.Seconds()
				ys[i] = r.Sample.DownMbps
			}
			cand.X[n], cand.Y[n] = xs, ys
		}
		p.timeline = cand
	}

	// Test windows.
	for _, t := range sh.Tests {
		rows++
		p.tests++
		p.outcomes[t.Outcome]++
		if t.Outcome == dataset.OutcomeFailed {
			p.skipped++
			continue
		}
		if kindIn(perSecondKinds, t.Kind) {
			sketchAt(p.perSec, bucketKey{t.Network, t.Kind}).AddSlice(t.Series)
		}
		if t.Kind == dataset.Ping {
			sketchAt(p.rtt, t.Network).AddSlice(t.RTTsMs)
		}
		if kindIn(retransKinds, t.Kind) {
			sketchAt(p.retrans, bucketKey{t.Network, t.Kind}).Add(t.RetransRate)
		}
		if kindIn(fluidKinds, t.Kind) {
			tr := testTrace(t)
			for _, flows := range fluidFlowCounts {
				got := dataset.FluidTCP{Flows: flows}.Run(tr, rngFor(info.Seed, t.ID, flows))
				sketchAt(p.fluid, fluidKey{t.Network, flows}).Add(got.MeanGoodputMbps)
			}
		}
	}
	return rows
}

// merge folds o into p. Merging is associative and commutative for
// every field, so the reduction order cannot affect the result; the
// pipeline still merges in fixed worker order for determinism-by-
// construction rather than determinism-by-proof.
func (p *partial) merge(o *partial) {
	p.drives += o.drives
	for s := range o.states {
		p.states[s] = true
	}
	p.tests += o.tests
	for k, v := range o.outcomes {
		p.outcomes[k] += v
	}
	p.skipped += o.skipped
	for k, s := range o.perSec {
		sketchAt(p.perSec, k).Merge(s)
	}
	for k, s := range o.rtt {
		sketchAt(p.rtt, k).Merge(s)
	}
	for k, s := range o.retrans {
		sketchAt(p.retrans, k).Merge(s)
	}
	for k, s := range o.fluid {
		sketchAt(p.fluid, k).Merge(s)
	}
	for n, m := range o.speed {
		pm := p.speed[n]
		if pm == nil {
			pm = make(map[int]*stats.Sketch)
			p.speed[n] = pm
		}
		for b, s := range m {
			sketchAt(pm, b).Merge(s)
		}
	}
	for k, s := range o.area {
		sketchAt(p.area, k).Merge(s)
	}
	for k, v := range o.areaCounts {
		p.areaCounts[k] += v
	}
	for ci := range p.perfCounts {
		for lvl := 0; lvl < 4; lvl++ {
			p.perfCounts[ci][lvl] += o.perfCounts[ci][lvl]
		}
	}
	p.perfTotal += o.perfTotal
	if o.timeline != nil && o.timeline.betterThan(p.timeline) {
		p.timeline = o.timeline
	}
}

// StreamOptions configures a streaming analysis run.
type StreamOptions struct {
	// Workers sets the pool size; 0 (or below) means one per core
	// (GOMAXPROCS).
	Workers int
	// Catalog classifies the campaign's networks (nil = default).
	Catalog *channel.Catalog
	// Strict aborts the run on the first shard failure (the original
	// contract — right for golden comparisons and CI gates). The default
	// lenient mode retries transient failures and quarantines shards
	// that stay bad, recording them in the Completeness certificate.
	Strict bool
	// MaxRetries caps per-shard reloads after a transient failure;
	// 0 means the default (2), negative means no retries.
	MaxRetries int
	// RetryBackoff is the delay before the first retry, doubled each
	// attempt and capped at 20x, plus a deterministic jitter hashed from
	// (shard, attempt) — never a shared RNG, so a replay backs off
	// identically. 0 means the default (25ms).
	RetryBackoff time.Duration
	// Metrics, when non-nil, instruments the run live:
	// stream.shards_total (gauge), stream.shards_done, stream.rows_done,
	// stream.worker.NN.shards, stream.retries, stream.quarantined,
	// stream.recovered_panics (counters) and stream.progress (gauge,
	// fraction of shards settled).
	Metrics *obs.Registry
	// Events, when non-nil, records one shard-retry event per reload and
	// one shard-quarantine event per dropped shard.
	Events *obs.Tracer
	// Span, when non-nil, is the flight-recorder parent under which the
	// supervisor opens one child span per shard (worker-tagged, outcome
	// ok/retried/quarantined/cancelled). Spans are per-shard, never
	// per-record: the accumulate hot path stays untouched.
	Span *obs.Span
	// OnQuarantine, when non-nil, is called once per quarantined shard
	// (lenient mode only), from the worker that dropped it — the
	// campaign supervisor hooks its post-mortem capture here. It must
	// not block for long: the worker holds no locks but its shard slot.
	OnQuarantine func(ShardFailure)
}

const (
	defaultMaxRetries   = 2
	defaultRetryBackoff = 25 * time.Millisecond
)

func (o *StreamOptions) maxRetries() int {
	if o.MaxRetries < 0 {
		return 0
	}
	if o.MaxRetries == 0 {
		return defaultMaxRetries
	}
	return o.MaxRetries
}

func (o *StreamOptions) retryBackoff() time.Duration {
	if o.RetryBackoff <= 0 {
		return defaultRetryBackoff
	}
	return o.RetryBackoff
}

// ValidateWorkers normalises a -workers flag value: negative is an
// error, 0 means one worker per core (GOMAXPROCS), positive passes
// through unchanged.
func ValidateWorkers(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("workers must be >= 0 (0 means one per core), got %d", n)
	}
	if n == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return n, nil
}

// Shard-failure classes: the degradation taxonomy. Transient failures
// (I/O: the disk may answer differently next time) are retried;
// permanent ones (the bytes parse wrong and will keep parsing wrong)
// and poison shards (they panic the pipeline) are quarantined at once.
const (
	FailTransient = "transient"
	FailPermanent = "permanent"
	FailPanic     = "panic"
)

// classifyShardErr assigns a shard error to the degradation taxonomy.
// Anything wrapping an *fs.PathError came from the disk and is worth a
// retry; everything else is a content problem that retrying cannot fix.
func classifyShardErr(err error) string {
	var pe *fs.PathError
	if errors.As(err, &pe) {
		return FailTransient
	}
	return FailPermanent
}

// ShardFailure itemises one shard the pipeline could not ingest.
type ShardFailure struct {
	// Index and Drive locate the shard in plan order; Shard is its label.
	Index int
	Drive int
	Shard string
	// Attempts counts loads tried (1 + retries); Class is the failure's
	// taxonomy class (FailTransient exhausted its retries).
	Attempts int
	Class    string
	Err      string
}

func (f ShardFailure) String() string {
	return fmt.Sprintf("%s: %s after %d attempt(s): %s", f.Shard, f.Class, f.Attempts, f.Err)
}

// Completeness is the certificate attached to every streamed analysis:
// exactly how much of the planned campaign reached the figures and
// what was lost to which errors. A lenient run that quarantined shards
// still renders figures — this is the itemised record that they are
// partial.
type Completeness struct {
	// ShardsPlanned is the plan size; ShardsScanned the shards folded
	// into the result.
	ShardsPlanned int
	ShardsScanned int
	// ShardsRetried counts shards that needed at least one reload;
	// Retries counts the reloads themselves.
	ShardsRetried int
	Retries       int
	// ShardsQuarantined counts dropped shards, itemised in Quarantined;
	// RecoveredPanics counts worker panics converted to quarantines.
	ShardsQuarantined int
	RecoveredPanics   int
	Quarantined       []ShardFailure
}

// Complete reports whether every planned shard was ingested.
func (c *Completeness) Complete() bool {
	return c.ShardsScanned == c.ShardsPlanned && c.ShardsQuarantined == 0
}

// String renders the one-line certificate summary.
func (c *Completeness) String() string {
	s := fmt.Sprintf("%d/%d shards scanned", c.ShardsScanned, c.ShardsPlanned)
	if c.Retries > 0 {
		s += fmt.Sprintf(", %d retried (%d reloads)", c.ShardsRetried, c.Retries)
	}
	if c.ShardsQuarantined > 0 {
		s += fmt.Sprintf(", %d quarantined", c.ShardsQuarantined)
	}
	if c.RecoveredPanics > 0 {
		s += fmt.Sprintf(", %d recovered panics", c.RecoveredPanics)
	}
	return s
}

// Err returns nil for a complete run, else one error itemising every
// quarantined shard.
func (c *Completeness) Err() error {
	if c.Complete() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "core: partial analysis: %s", c.String())
	for _, f := range c.Quarantined {
		fmt.Fprintf(&b, "\n  %s", f)
	}
	return errors.New(b.String())
}

// StreamAnalysis is the merged result of a sharded campaign scan. It
// renders the streaming figure set through the same builders as the
// in-memory Analyzer.
type StreamAnalysis struct {
	info    SourceInfo
	catalog *channel.Catalog
	p       *partial
	comp    Completeness
}

// Completeness returns the run's ingestion certificate.
func (sa *StreamAnalysis) Completeness() *Completeness { return &sa.comp }

// streamFigureIDs lists the figures the streaming path produces.
// Figure 10/11 (multipath scheduling) replay traces window by window
// and stay on the in-memory path.
var streamFigureIDs = []string{
	"fig1", "fig3a", "fig3b", "fig3c", "fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9", "eq1", "dataset",
}

// StreamFigureIDs returns the figure ids the streaming path renders.
func StreamFigureIDs() []string { return append([]string(nil), streamFigureIDs...) }

// StreamAnalyze scans src's shards with a worker pool and returns the
// merged analysis. The result is bit-identical for every worker count:
// all float reductions flow through canonical sketches, everything else
// is exact integer arithmetic.
func StreamAnalyze(src ShardSource, opts StreamOptions) (*StreamAnalysis, error) {
	return StreamAnalyzeContext(context.Background(), src, opts)
}

// shardOutcome is the supervisor's record of one processed shard.
type shardOutcome struct {
	local    *partial
	rows     int
	attempts int
	class    string
	err      error
}

// loadShard calls src.Load with a panic fence: a source that panics
// poisons only its shard, not the worker.
func loadShard(src ShardSource, ref ShardRef) (sh *Shard, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			sh, err, panicked = nil, fmt.Errorf("core: load %s: panic: %v", ref.Label, r), true
		}
	}()
	sh, err = src.Load(ref)
	return
}

// accumulateShard folds sh into p behind the same panic fence. p is a
// fresh local partial, so a mid-fold panic cannot half-poison worker
// state; incumbent is the worker partial's current timeline best.
func accumulateShard(p *partial, sh *Shard, info SourceInfo, incumbent *timelineData) (rows int, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			rows, err, panicked = 0, fmt.Errorf("core: accumulate drive %d: panic: %v", sh.Drive, r), true
		}
	}()
	rows = p.accumulate(sh, info, info.Networks, incumbent)
	return
}

// processShard loads and folds one shard, retrying transient load
// failures with capped deterministic backoff. Panics (in the source or
// the accumulator) become poison outcomes instead of killing the
// worker. A context cancellation mid-backoff surfaces as a
// context.Canceled outcome the supervisor discards.
func processShard(ctx context.Context, src ShardSource, ref ShardRef, info SourceInfo,
	cols []fig9Column, incumbent *timelineData, opts *StreamOptions,
	onRetry func(ShardRef, int, error)) shardOutcome {

	out := shardOutcome{}
	for {
		out.attempts++
		sh, err, panicked := loadShard(src, ref)
		if err == nil {
			local := newPartial(cols)
			var rows int
			rows, err, panicked = accumulateShard(local, sh, info, incumbent)
			if err == nil {
				// A healed retry must not carry the previous attempt's
				// verdict out of the loop.
				out.local, out.rows = local, rows
				out.class, out.err = "", nil
				return out
			}
		}
		out.class, out.err = classifyShardErr(err), err
		if panicked {
			out.class = FailPanic
		}
		if out.class != FailTransient || out.attempts > opts.maxRetries() {
			return out
		}
		onRetry(ref, out.attempts, err)
		select {
		case <-ctx.Done():
			out.class, out.err = FailTransient, ctx.Err()
			return out
		case <-time.After(faults.BackoffDelay(opts.retryBackoff(), ref.Index, out.attempts)):
		}
	}
}

// StreamAnalyzeContext is StreamAnalyze under a context: cancellation
// stops the supervisor promptly (no shard hand-off outlives ctx) and
// every worker goroutine exits before the call returns, so a SIGINT
// mid-campaign leaks nothing.
func StreamAnalyzeContext(ctx context.Context, src ShardSource, opts StreamOptions) (*StreamAnalysis, error) {
	info, err := src.Info()
	if err != nil {
		return nil, err
	}
	refs, err := src.Plan()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	sa := &StreamAnalysis{info: info, catalog: opts.Catalog}
	cols := fig9Columns(sa.cellulars(), sa.satellites())

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	start := time.Now()

	shardsDone := opts.Metrics.Counter("stream.shards_done")
	rowsDone := opts.Metrics.Counter("stream.rows_done")
	retriesC := opts.Metrics.Counter("stream.retries")
	quarantinedC := opts.Metrics.Counter("stream.quarantined")
	panicsC := opts.Metrics.Counter("stream.recovered_panics")
	progress := opts.Metrics.Gauge("stream.progress")
	opts.Metrics.Gauge("stream.shards_total").Set(float64(len(refs)))

	var (
		mu       sync.Mutex
		comp     = Completeness{ShardsPlanned: len(refs)}
		firstErr error
		settled  int
	)
	onRetry := func(ref ShardRef, attempt int, cause error) {
		retriesC.Inc()
		opts.Events.Span(time.Since(start), obs.EvShardRetry, "stream",
			fmt.Sprintf("%s attempt %d: %v", ref.Label, attempt, cause))
		mu.Lock()
		comp.Retries++
		mu.Unlock()
	}
	settle := func(n int) {
		mu.Lock()
		settled += n
		frac := float64(settled) / float64(max(len(refs), 1))
		mu.Unlock()
		progress.Set(frac)
	}

	// Shard-locals merge into one shared partial under mu, in arrival
	// order. Arrival order varies with scheduling, but every partial
	// field merges commutatively and associatively (sketches are
	// canonical, the rest is integer arithmetic, set union and a
	// total-order max), so the merged state — and every rendered byte —
	// is identical for any order; the cross-worker-count equivalence
	// tests lock that. One shared partial instead of one per worker also
	// keeps sketch memory flat in the worker count: each per-worker
	// partial would converge to nearly the full distinct-value space.
	ch := make(chan ShardRef)
	merged := newPartial(cols)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		workerShards := opts.Metrics.Counter(fmt.Sprintf("stream.worker.%02d.shards", w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ref := range ch {
				mu.Lock()
				incumbent := merged.timeline
				mu.Unlock()
				// One flight-recorder span per shard, tagged with the worker
				// that ran it so the report can chart pool utilization.
				span := opts.Span.Child(obs.SpanShard, obs.WorkerPrefix(w)+ref.Label)
				out := processShard(ctx, src, ref, info, cols, incumbent, &opts, onRetry)
				if out.err != nil {
					if ctx.Err() != nil {
						span.End(obs.SpanCancelled, ctx.Err().Error())
						return // run is aborting; not a shard verdict
					}
					mu.Lock()
					if out.attempts > 1 {
						comp.ShardsRetried++
					}
					if opts.Strict {
						if firstErr == nil {
							firstErr = fmt.Errorf("core: shard %s: %w", ref.Label, out.err)
						}
						mu.Unlock()
						span.End(obs.SpanFailed, out.err.Error())
						cancel()
						return
					}
					comp.ShardsQuarantined++
					if out.class == FailPanic {
						comp.RecoveredPanics++
						panicsC.Inc()
					}
					failure := ShardFailure{
						Index: ref.Index, Drive: ref.Drive, Shard: ref.Label,
						Attempts: out.attempts, Class: out.class, Err: out.err.Error(),
					}
					comp.Quarantined = append(comp.Quarantined, failure)
					mu.Unlock()
					quarantinedC.Inc()
					opts.Events.Span(time.Since(start), obs.EvShardQuarantine, "stream",
						fmt.Sprintf("%s: %s: %v", ref.Label, out.class, out.err))
					span.End(obs.SpanQuarantined, failure.String())
					if opts.OnQuarantine != nil {
						opts.OnQuarantine(failure)
					}
					settle(1)
					continue
				}
				mu.Lock()
				merged.merge(out.local)
				comp.ShardsScanned++
				if out.attempts > 1 {
					comp.ShardsRetried++
				}
				mu.Unlock()
				if out.attempts > 1 {
					span.End(obs.SpanRetried, fmt.Sprintf("ok after %d attempts", out.attempts))
				} else {
					span.End(obs.SpanOK, "")
				}
				workerShards.Inc()
				shardsDone.Inc()
				rowsDone.Add(int64(out.rows))
				settle(1)
			}
		}()
	}

	go func() {
		defer close(ch)
		for _, ref := range refs {
			select {
			case <-ctx.Done():
				return
			case ch <- ref:
			}
		}
	}()
	wg.Wait()

	mu.Lock()
	fe := firstErr
	mu.Unlock()
	if fe != nil {
		return nil, fe
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	progress.Set(1)
	sa.p = merged
	sort.Slice(comp.Quarantined, func(i, j int) bool {
		return comp.Quarantined[i].Index < comp.Quarantined[j].Index
	})
	sa.comp = comp
	return sa, nil
}

// Figures renders the streaming figure set keyed by ID.
func (sa *StreamAnalysis) Figures() map[string]*Figure {
	figs := []*Figure{
		buildFigure1(sa),
		buildFigure3a(sa), buildFigure3b(sa), buildFigure3c(sa),
		buildFigure4(sa), buildFigure5(sa), buildFigure6(sa), buildFigure7(sa),
		buildFigure8(sa), buildFigure9(sa),
		buildEquation1(),
		buildDatasetSummary(sa),
	}
	out := make(map[string]*Figure, len(figs))
	for _, f := range figs {
		out[f.ID] = f
	}
	return out
}

// --- aggSource: the streaming path ---

func (sa *StreamAnalysis) networks() []channel.NetworkID {
	if len(sa.info.Networks) > 0 {
		return sa.info.Networks
	}
	return channel.Networks
}

func (sa *StreamAnalysis) cat() *channel.Catalog {
	if sa.catalog != nil {
		return sa.catalog
	}
	return channel.DefaultCatalog()
}

func (sa *StreamAnalysis) byClass(c channel.Class) []channel.NetworkID {
	cat := sa.cat()
	var out []channel.NetworkID
	for _, n := range sa.networks() {
		if s, ok := cat.Spec(n); ok && s.Class == c {
			out = append(out, n)
		}
	}
	return out
}

func (sa *StreamAnalysis) cellulars() []channel.NetworkID {
	return sa.byClass(channel.ClassCellular)
}

func (sa *StreamAnalysis) satellites() []channel.NetworkID {
	return sa.byClass(channel.ClassSatellite)
}

func (sa *StreamAnalysis) perSecondSketch(n channel.NetworkID, k dataset.Kind) *stats.Sketch {
	return sa.p.perSec[bucketKey{n, k}]
}

func (sa *StreamAnalysis) rttSketch(n channel.NetworkID) *stats.Sketch { return sa.p.rtt[n] }

func (sa *StreamAnalysis) retransSketch(n channel.NetworkID, k dataset.Kind) *stats.Sketch {
	return sa.p.retrans[bucketKey{n, k}]
}

func (sa *StreamAnalysis) fluidSketch(n channel.NetworkID, flows int) *stats.Sketch {
	return sa.p.fluid[fluidKey{n, flows}]
}

func (sa *StreamAnalysis) speedSketches(n channel.NetworkID) map[int]*stats.Sketch {
	m := sa.p.speed[n]
	if m == nil {
		m = map[int]*stats.Sketch{}
	}
	return m
}

func (sa *StreamAnalysis) areaSketch(n channel.NetworkID, area geo.AreaType) *stats.Sketch {
	return sa.p.area[netArea{n, area}]
}

func (sa *StreamAnalysis) areaCounts() map[geo.AreaType]int { return sa.p.areaCounts }

func (sa *StreamAnalysis) perfCounts() ([][4]int, int) { return sa.p.perfCounts, sa.p.perfTotal }

func (sa *StreamAnalysis) timeline() timelineData {
	if sa.p.timeline == nil {
		return timelineData{X: map[channel.NetworkID][]float64{}, Y: map[channel.NetworkID][]float64{}}
	}
	return *sa.p.timeline
}

func (sa *StreamAnalysis) summary() summaryData {
	return summaryData{
		Tests:        sa.p.tests,
		Outcomes:     sa.p.outcomes,
		Skipped:      sa.p.skipped,
		TraceMinutes: sa.info.TotalTestMin,
		DistanceKm:   sa.info.TotalKm,
		Drives:       sa.p.drives,
		States:       len(sa.p.states),
	}
}
