package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"satcell/internal/channel"
	"satcell/internal/dataset"
	"satcell/internal/geo"
	"satcell/internal/obs"
	"satcell/internal/stats"
)

// This file is the streaming analysis path: a worker pool folds the
// campaign shard by shard (one drive per shard) into mergeable partial
// aggregates, an exact merge combines the partials, and the shared
// figure builders (figbuild.go) render from the merged state. Because
// every floating-point reduction lives in a canonical stats.Sketch and
// every other aggregate is an integer counter or a set, the merged
// state — and therefore every rendered byte — is identical for any
// worker count and any shard-to-worker interleaving. Peak memory is
// O(largest shard + sketches), never O(dataset).

// Shard is one unit of streaming work: a single drive's records (per
// network, in drive order) and the tests carved from it.
type Shard struct {
	Drive        int
	Route, State string
	// Records holds each network's per-second observations; all
	// networks of a drive have equal length (one record per GPS fix).
	Records map[channel.NetworkID][]channel.Record
	// Tests lists the drive's evaluated test windows, failed ones
	// included (the accumulator counts and skips them).
	Tests []*dataset.Test
}

// SourceInfo describes the campaign a ShardSource scans: facts that are
// not recoverable from the shards themselves.
type SourceInfo struct {
	// Networks lists the measured networks in campaign order.
	Networks []channel.NetworkID
	// Seed is the campaign's generation seed (drives the fluid-TCP
	// variant RNGs, matching the in-memory analyzer).
	Seed int64
	// TotalKm and TotalTestMin are the §3.3 campaign totals (distance
	// covers gaps between test windows, so summing shards undercounts).
	TotalKm, TotalTestMin float64
}

// ShardSource yields a campaign's shards sequentially. Shards must
// arrive in a deterministic order; the pipeline's result is provably
// independent of that order, but deterministic production keeps
// progress reporting and debugging sane.
type ShardSource interface {
	Info() (SourceInfo, error)
	Shards(yield func(*Shard) error) error
}

// DatasetSource adapts an in-memory dataset to the streaming pipeline,
// sharding the campaign on the Test.Drive index. It shares the
// dataset's memory (no copies), so it proves path equivalence rather
// than memory bounds; StoreSource is the bounded-memory scan.
type DatasetSource struct {
	DS *dataset.Dataset
}

// Info implements ShardSource.
func (s *DatasetSource) Info() (SourceInfo, error) {
	nets := s.DS.Networks
	if len(nets) == 0 {
		nets = channel.Networks
	}
	return SourceInfo{
		Networks: nets, Seed: s.DS.Seed,
		TotalKm: s.DS.TotalKm, TotalTestMin: s.DS.TotalTestMin,
	}, nil
}

// Shards implements ShardSource: one shard per drive, in drive order.
func (s *DatasetSource) Shards(yield func(*Shard) error) error {
	ds := s.DS
	byDrive := make([][]*dataset.Test, len(ds.Drives))
	for i := range ds.Tests {
		t := &ds.Tests[i]
		if t.Drive < 0 || t.Drive >= len(ds.Drives) {
			return fmt.Errorf("core: test %d claims drive %d of %d", t.ID, t.Drive, len(ds.Drives))
		}
		byDrive[t.Drive] = append(byDrive[t.Drive], t)
	}
	for di := range ds.Drives {
		d := &ds.Drives[di]
		sh := &Shard{
			Drive: di, Route: d.Route, State: d.State,
			Records: d.Observed, Tests: byDrive[di],
		}
		if err := yield(sh); err != nil {
			return err
		}
	}
	return nil
}

// partial is one worker's mergeable aggregate state. Every field is
// either a canonical sketch (order-invariant by construction), an
// integer counter (exactly associative), a set, or a max-candidate
// (timeline), so merging partials in any grouping produces identical
// state.
type partial struct {
	cols []fig9Column

	drives   int
	states   map[string]bool
	tests    int
	outcomes map[dataset.Outcome]int
	skipped  int

	perSec  map[bucketKey]*stats.Sketch
	rtt     map[channel.NetworkID]*stats.Sketch
	retrans map[bucketKey]*stats.Sketch
	fluid   map[fluidKey]*stats.Sketch
	speed   map[channel.NetworkID]map[int]*stats.Sketch
	area    map[netArea]*stats.Sketch

	areaCounts map[geo.AreaType]int
	perfCounts [][4]int
	perfTotal  int

	timeline *timelineData
}

func newPartial(cols []fig9Column) *partial {
	return &partial{
		cols:       cols,
		states:     make(map[string]bool),
		outcomes:   make(map[dataset.Outcome]int),
		perSec:     make(map[bucketKey]*stats.Sketch),
		rtt:        make(map[channel.NetworkID]*stats.Sketch),
		retrans:    make(map[bucketKey]*stats.Sketch),
		fluid:      make(map[fluidKey]*stats.Sketch),
		speed:      make(map[channel.NetworkID]map[int]*stats.Sketch),
		area:       make(map[netArea]*stats.Sketch),
		areaCounts: make(map[geo.AreaType]int),
		perfCounts: make([][4]int, len(cols)),
	}
}

func sketchAt[K comparable](m map[K]*stats.Sketch, k K) *stats.Sketch {
	s := m[k]
	if s == nil {
		s = stats.NewSketch()
		m[k] = s
	}
	return s
}

// kindIn reports membership of k in kinds.
func kindIn(kinds []dataset.Kind, k dataset.Kind) bool {
	for _, x := range kinds {
		if x == k {
			return true
		}
	}
	return false
}

// accumulate folds one shard into the partial. rows counts the records
// and test windows consumed (for throughput metrics).
func (p *partial) accumulate(sh *Shard, info SourceInfo, nets []channel.NetworkID) (rows int) {
	p.drives++
	p.states[sh.State] = true

	// Per-second campaign scans: area shares and the Figure 9
	// performance levels use the fix sequence (the first network's
	// record count — all networks observe every fix).
	var fixes []channel.Record
	if len(nets) > 0 {
		fixes = sh.Records[nets[0]]
	}
	for i := range fixes {
		p.areaCounts[fixes[i].Env.Area]++
		for ci := range p.cols {
			best := 0.0
			for _, net := range p.cols[ci].nets {
				if recs := sh.Records[net]; i < len(recs) {
					if v := recs[i].Sample.DownMbps; v > best {
						best = v
					}
				}
			}
			p.perfCounts[ci][perfLevel(best)]++
		}
		p.perfTotal++
	}

	// Per-record per-network scans: Figure 6 speed buckets and
	// Figure 8 area distributions.
	for _, n := range nets {
		recs := sh.Records[n]
		rows += len(recs)
		for i := range recs {
			r := &recs[i]
			sketchAt(p.area, netArea{n, r.Env.Area}).Add(r.Sample.DownMbps)
			if r.Env.Area == geo.Rural && r.Env.SpeedKmh >= 1 {
				m := p.speed[n]
				if m == nil {
					m = make(map[int]*stats.Sketch)
					p.speed[n] = m
				}
				sketchAt(m, int(r.Env.SpeedKmh)/10*10).Add(r.Sample.DownMbps)
			}
		}
	}

	// Timeline candidate: keep only the best seen so far.
	cand := &timelineData{Drive: sh.Drive, Route: sh.Route, State: sh.State, Seconds: len(fixes)}
	if cand.betterThan(p.timeline) {
		cand.X = make(map[channel.NetworkID][]float64, len(nets))
		cand.Y = make(map[channel.NetworkID][]float64, len(nets))
		for _, n := range nets {
			recs := sh.Records[n]
			xs := make([]float64, len(recs))
			ys := make([]float64, len(recs))
			for i, r := range recs {
				xs[i] = r.Sample.At.Seconds()
				ys[i] = r.Sample.DownMbps
			}
			cand.X[n], cand.Y[n] = xs, ys
		}
		p.timeline = cand
	}

	// Test windows.
	for _, t := range sh.Tests {
		rows++
		p.tests++
		p.outcomes[t.Outcome]++
		if t.Outcome == dataset.OutcomeFailed {
			p.skipped++
			continue
		}
		if kindIn(perSecondKinds, t.Kind) {
			sketchAt(p.perSec, bucketKey{t.Network, t.Kind}).AddSlice(t.Series)
		}
		if t.Kind == dataset.Ping {
			sketchAt(p.rtt, t.Network).AddSlice(t.RTTsMs)
		}
		if kindIn(retransKinds, t.Kind) {
			sketchAt(p.retrans, bucketKey{t.Network, t.Kind}).Add(t.RetransRate)
		}
		if kindIn(fluidKinds, t.Kind) {
			tr := testTrace(t)
			for _, flows := range fluidFlowCounts {
				got := dataset.FluidTCP{Flows: flows}.Run(tr, rngFor(info.Seed, t.ID, flows))
				sketchAt(p.fluid, fluidKey{t.Network, flows}).Add(got.MeanGoodputMbps)
			}
		}
	}
	return rows
}

// merge folds o into p. Merging is associative and commutative for
// every field, so the reduction order cannot affect the result; the
// pipeline still merges in fixed worker order for determinism-by-
// construction rather than determinism-by-proof.
func (p *partial) merge(o *partial) {
	p.drives += o.drives
	for s := range o.states {
		p.states[s] = true
	}
	p.tests += o.tests
	for k, v := range o.outcomes {
		p.outcomes[k] += v
	}
	p.skipped += o.skipped
	for k, s := range o.perSec {
		sketchAt(p.perSec, k).Merge(s)
	}
	for k, s := range o.rtt {
		sketchAt(p.rtt, k).Merge(s)
	}
	for k, s := range o.retrans {
		sketchAt(p.retrans, k).Merge(s)
	}
	for k, s := range o.fluid {
		sketchAt(p.fluid, k).Merge(s)
	}
	for n, m := range o.speed {
		pm := p.speed[n]
		if pm == nil {
			pm = make(map[int]*stats.Sketch)
			p.speed[n] = pm
		}
		for b, s := range m {
			sketchAt(pm, b).Merge(s)
		}
	}
	for k, s := range o.area {
		sketchAt(p.area, k).Merge(s)
	}
	for k, v := range o.areaCounts {
		p.areaCounts[k] += v
	}
	for ci := range p.perfCounts {
		for lvl := 0; lvl < 4; lvl++ {
			p.perfCounts[ci][lvl] += o.perfCounts[ci][lvl]
		}
	}
	p.perfTotal += o.perfTotal
	if o.timeline != nil && o.timeline.betterThan(p.timeline) {
		p.timeline = o.timeline
	}
}

// StreamOptions configures a streaming analysis run.
type StreamOptions struct {
	// Workers sets the pool size; values below 1 mean 1.
	Workers int
	// Catalog classifies the campaign's networks (nil = default).
	Catalog *channel.Catalog
	// Metrics, when non-nil, instruments the run live:
	// stream.shards_total (gauge), stream.shards_done, stream.rows_done,
	// stream.worker.NN.shards (counters) and stream.progress (gauge,
	// fraction of shards done).
	Metrics *obs.Registry
}

// StreamAnalysis is the merged result of a sharded campaign scan. It
// renders the streaming figure set through the same builders as the
// in-memory Analyzer.
type StreamAnalysis struct {
	info    SourceInfo
	catalog *channel.Catalog
	p       *partial
}

// streamFigureIDs lists the figures the streaming path produces.
// Figure 10/11 (multipath scheduling) replay traces window by window
// and stay on the in-memory path.
var streamFigureIDs = []string{
	"fig1", "fig3a", "fig3b", "fig3c", "fig4", "fig5", "fig6", "fig7",
	"fig8", "fig9", "eq1", "dataset",
}

// StreamFigureIDs returns the figure ids the streaming path renders.
func StreamFigureIDs() []string { return append([]string(nil), streamFigureIDs...) }

// StreamAnalyze scans src's shards with a worker pool and returns the
// merged analysis. The result is bit-identical for every worker count:
// all float reductions flow through canonical sketches, everything else
// is exact integer arithmetic.
func StreamAnalyze(src ShardSource, opts StreamOptions) (*StreamAnalysis, error) {
	info, err := src.Info()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	sa := &StreamAnalysis{info: info, catalog: opts.Catalog}
	cols := fig9Columns(sa.cellulars(), sa.satellites())

	shardsDone := opts.Metrics.Counter("stream.shards_done")
	rowsDone := opts.Metrics.Counter("stream.rows_done")
	progress := opts.Metrics.Gauge("stream.progress")
	var shardsTotal atomic.Int64

	ch := make(chan *Shard, workers)
	partials := make([]*partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		p := newPartial(cols)
		partials[w] = p
		workerShards := opts.Metrics.Counter(fmt.Sprintf("stream.worker.%02d.shards", w))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range ch {
				rows := p.accumulate(sh, info, info.Networks)
				workerShards.Inc()
				shardsDone.Inc()
				rowsDone.Add(int64(rows))
				if total := shardsTotal.Load(); total > 0 {
					progress.Set(float64(shardsDone.Value()) / float64(total))
				}
			}
		}()
	}

	produceErr := src.Shards(func(sh *Shard) error {
		opts.Metrics.Gauge("stream.shards_total").Set(float64(shardsTotal.Add(1)))
		ch <- sh
		return nil
	})
	close(ch)
	wg.Wait()
	if produceErr != nil {
		return nil, produceErr
	}
	progress.Set(1)

	// Exact deterministic merge: fixed worker order. (Canonicality
	// makes the order irrelevant; fixing it anyway means the claim
	// never has to be trusted.)
	merged := partials[0]
	for _, o := range partials[1:] {
		merged.merge(o)
	}
	sa.p = merged
	return sa, nil
}

// Figures renders the streaming figure set keyed by ID.
func (sa *StreamAnalysis) Figures() map[string]*Figure {
	figs := []*Figure{
		buildFigure1(sa),
		buildFigure3a(sa), buildFigure3b(sa), buildFigure3c(sa),
		buildFigure4(sa), buildFigure5(sa), buildFigure6(sa), buildFigure7(sa),
		buildFigure8(sa), buildFigure9(sa),
		buildEquation1(),
		buildDatasetSummary(sa),
	}
	out := make(map[string]*Figure, len(figs))
	for _, f := range figs {
		out[f.ID] = f
	}
	return out
}

// --- aggSource: the streaming path ---

func (sa *StreamAnalysis) networks() []channel.NetworkID {
	if len(sa.info.Networks) > 0 {
		return sa.info.Networks
	}
	return channel.Networks
}

func (sa *StreamAnalysis) cat() *channel.Catalog {
	if sa.catalog != nil {
		return sa.catalog
	}
	return channel.DefaultCatalog()
}

func (sa *StreamAnalysis) byClass(c channel.Class) []channel.NetworkID {
	cat := sa.cat()
	var out []channel.NetworkID
	for _, n := range sa.networks() {
		if s, ok := cat.Spec(n); ok && s.Class == c {
			out = append(out, n)
		}
	}
	return out
}

func (sa *StreamAnalysis) cellulars() []channel.NetworkID {
	return sa.byClass(channel.ClassCellular)
}

func (sa *StreamAnalysis) satellites() []channel.NetworkID {
	return sa.byClass(channel.ClassSatellite)
}

func (sa *StreamAnalysis) perSecondSketch(n channel.NetworkID, k dataset.Kind) *stats.Sketch {
	return sa.p.perSec[bucketKey{n, k}]
}

func (sa *StreamAnalysis) rttSketch(n channel.NetworkID) *stats.Sketch { return sa.p.rtt[n] }

func (sa *StreamAnalysis) retransSketch(n channel.NetworkID, k dataset.Kind) *stats.Sketch {
	return sa.p.retrans[bucketKey{n, k}]
}

func (sa *StreamAnalysis) fluidSketch(n channel.NetworkID, flows int) *stats.Sketch {
	return sa.p.fluid[fluidKey{n, flows}]
}

func (sa *StreamAnalysis) speedSketches(n channel.NetworkID) map[int]*stats.Sketch {
	m := sa.p.speed[n]
	if m == nil {
		m = map[int]*stats.Sketch{}
	}
	return m
}

func (sa *StreamAnalysis) areaSketch(n channel.NetworkID, area geo.AreaType) *stats.Sketch {
	return sa.p.area[netArea{n, area}]
}

func (sa *StreamAnalysis) areaCounts() map[geo.AreaType]int { return sa.p.areaCounts }

func (sa *StreamAnalysis) perfCounts() ([][4]int, int) { return sa.p.perfCounts, sa.p.perfTotal }

func (sa *StreamAnalysis) timeline() timelineData {
	if sa.p.timeline == nil {
		return timelineData{X: map[channel.NetworkID][]float64{}, Y: map[channel.NetworkID][]float64{}}
	}
	return *sa.p.timeline
}

func (sa *StreamAnalysis) summary() summaryData {
	return summaryData{
		Tests:        sa.p.tests,
		Outcomes:     sa.p.outcomes,
		Skipped:      sa.p.skipped,
		TraceMinutes: sa.info.TotalTestMin,
		DistanceKm:   sa.info.TotalKm,
		Drives:       sa.p.drives,
		States:       len(sa.p.states),
	}
}
