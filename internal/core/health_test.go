package core

import (
	"strings"
	"testing"
)

func TestDataHealthFigureKPIs(t *testing.T) {
	f := DataHealthFigure(3, 620, 4, map[string]int{
		"complete": 590, "truncated": 22, "failed": 8,
	})
	for kpi, want := range map[string]float64{
		"files_loaded":      3,
		"rows_loaded":       620,
		"rows_skipped":      4,
		"outcome_complete":  590,
		"outcome_truncated": 22,
		"outcome_failed":    8,
	} {
		if got := f.KPI(kpi); got != want {
			t.Errorf("%s = %v, want %v", kpi, got, want)
		}
	}
	share := f.KPI("rows_skipped_share")
	if share <= 0 || share >= 0.01 {
		t.Errorf("rows_skipped_share = %v", share)
	}
	text := f.Render()
	if !strings.Contains(text, "rows_skipped") || !strings.Contains(text, "malformed rows skipped") {
		t.Errorf("render missing health surface:\n%s", text)
	}
}

func TestDataHealthFigureCleanLoad(t *testing.T) {
	f := DataHealthFigure(1, 100, 0, map[string]int{"complete": 100})
	if f.KPI("rows_skipped") != 0 {
		t.Fatal("clean load should report zero skips")
	}
	if strings.Contains(f.Render(), "malformed") {
		t.Fatal("clean load should not warn about malformed rows")
	}
}
