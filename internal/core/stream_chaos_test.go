package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"satcell/internal/faults"
	"satcell/internal/obs"
	"satcell/internal/store"
	"satcell/internal/testutil"
)

// The disk-fault chaos suite: streaming runs over a store.FaultFS with
// scripted I/O failures. The locked invariant is that a lenient run
// quarantines exactly the injected-bad shards and renders every figure
// byte-identically to a clean run over the same corpus minus those
// drives — at every worker count, under the race detector.

// chaosWorkerCounts returns the pool sizes to sweep; the CI chaos job
// narrows the default sweep via SATCELL_STREAM_WORKERS=1,4.
func chaosWorkerCounts(t *testing.T) []int {
	env := os.Getenv("SATCELL_STREAM_WORKERS")
	if env == "" {
		return streamWorkerCounts
	}
	var out []int
	for _, s := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			t.Fatalf("SATCELL_STREAM_WORKERS=%q: bad worker count %q", env, s)
		}
		out = append(out, n)
	}
	return out
}

// chaosVictims picks the drives the fault schedule poisons.
func chaosVictims(t *testing.T, drives int) []int {
	if drives < 3 {
		t.Fatalf("fixture has %d drives; chaos suite needs >= 3", drives)
	}
	return []int{1, drives - 1}
}

// permanentReadErrSpec scripts unlimited read errors on every trace
// shard of the victim drives (an unlimited rule never exhausts, so
// retries cannot heal it: the shard must be quarantined).
func permanentReadErrSpec(victims []int) string {
	rules := make([]string, len(victims))
	for i, d := range victims {
		rules[i] = fmt.Sprintf("read-err:drive%03d_*", d)
	}
	return strings.Join(rules, ";")
}

// dropDrives filters a ShardSource's plan down to the refs whose drive
// is not listed — the "clean corpus minus those drives" baseline.
type dropDrives struct {
	inner ShardSource
	drop  map[int]bool
}

func (f *dropDrives) Info() (SourceInfo, error) { return f.inner.Info() }

func (f *dropDrives) Load(ref ShardRef) (*Shard, error) { return f.inner.Load(ref) }

func (f *dropDrives) Plan() ([]ShardRef, error) {
	refs, err := f.inner.Plan()
	if err != nil {
		return nil, err
	}
	kept := refs[:0]
	for _, ref := range refs {
		if !f.drop[ref.Drive] {
			kept = append(kept, ref)
		}
	}
	return kept, nil
}

// TestChaosLenientQuarantinesExactlyInjectedShards is the acceptance
// invariant: permanent read errors on two drives' shards quarantine
// exactly those drives (itemised, transient class, retries exhausted)
// and the figures match a clean scan of the corpus minus those drives,
// byte for byte, at every worker count.
func TestChaosLenientQuarantinesExactlyInjectedShards(t *testing.T) {
	ds, dir := streamFixture(t)
	victims := chaosVictims(t, len(ds.Drives))
	sched, err := faults.ParseIOSpec(permanentReadErrSpec(victims), 17)
	if err != nil {
		t.Fatal(err)
	}
	drop := map[int]bool{}
	for _, d := range victims {
		drop[d] = true
	}

	// Baseline: clean FS, plan filtered to the surviving drives.
	cleanSrc, err := OpenStoreSource(dir, store.Lenient)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := StreamAnalyze(&dropDrives{inner: cleanSrc, drop: drop}, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(baseline.Figures())

	for _, workers := range chaosWorkerCounts(t) {
		reg := obs.NewRegistry()
		src, err := OpenStoreSourceFS(store.NewFaultFS(nil, sched), dir, store.Lenient)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		sa, err := StreamAnalyze(src, StreamOptions{
			Workers: workers, RetryBackoff: time.Millisecond, Metrics: reg,
		})
		if err != nil {
			t.Fatalf("workers=%d: lenient run aborted: %v", workers, err)
		}
		comp := sa.Completeness()
		if comp.Complete() {
			t.Fatalf("workers=%d: run claims completeness despite injected faults", workers)
		}
		if comp.ShardsQuarantined != len(victims) || len(comp.Quarantined) != len(victims) {
			t.Fatalf("workers=%d: quarantined %d shards (%d itemised), want %d:\n%v",
				workers, comp.ShardsQuarantined, len(comp.Quarantined), len(victims), comp.Err())
		}
		for i, f := range comp.Quarantined {
			if f.Drive != victims[i] {
				t.Errorf("workers=%d: quarantine %d is drive %d, want %d", workers, i, f.Drive, victims[i])
			}
			if f.Class != FailTransient {
				t.Errorf("workers=%d: drive %d classed %q, want %q (read errors come from the disk)",
					workers, f.Drive, f.Class, FailTransient)
			}
			if want := 1 + (&StreamOptions{}).maxRetries(); f.Attempts != want {
				t.Errorf("workers=%d: drive %d took %d attempts, want %d (retries exhausted)",
					workers, f.Drive, f.Attempts, want)
			}
			if !strings.Contains(f.Err, "injected") {
				t.Errorf("workers=%d: quarantine error %q does not surface the injected fault", workers, f.Err)
			}
		}
		if comp.ShardsScanned != len(ds.Drives)-len(victims) {
			t.Errorf("workers=%d: scanned %d shards, want %d", workers, comp.ShardsScanned, len(ds.Drives)-len(victims))
		}
		if comp.Retries == 0 || comp.ShardsRetried != len(victims) {
			t.Errorf("workers=%d: retried %d shards (%d reloads); transient faults should be retried before quarantine",
				workers, comp.ShardsRetried, comp.Retries)
		}
		if got := reg.Counter("stream.quarantined").Value(); got != int64(len(victims)) {
			t.Errorf("workers=%d: stream.quarantined = %d, want %d", workers, got, len(victims))
		}
		if got := reg.Counter("stream.retries").Value(); got != int64(comp.Retries) {
			t.Errorf("workers=%d: stream.retries = %d, certificate says %d", workers, got, comp.Retries)
		}
		if got := renderAll(sa.Figures()); got != want {
			t.Errorf("workers=%d: degraded figures differ from clean corpus minus quarantined drives", workers)
		}
	}
}

// TestChaosTransientFaultHealsViaRetry: a count-limited fault (each
// victim file's first read fails, then the file behaves) must be
// absorbed by the retry loop — the run completes, certifies the
// retries, and renders byte-identically to an undisturbed run.
func TestChaosTransientFaultHealsViaRetry(t *testing.T) {
	ds, dir := streamFixture(t)
	cleanSrc, err := OpenStoreSource(dir, store.Lenient)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := StreamAnalyze(cleanSrc, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(clean.Figures())

	// x2 on one shard file: the store's BOM-sniffing Peek absorbs a
	// single leading read error inside bufio, so two are needed to fail
	// the first Load attempt; the retry then finds the budget exhausted.
	sched, err := faults.ParseIOSpec("read-err:drive001_*_RM.csv:x2", 23)
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenStoreSourceFS(store.NewFaultFS(nil, sched), dir, store.Lenient)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := StreamAnalyze(src, StreamOptions{Workers: 2, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	comp := sa.Completeness()
	if !comp.Complete() {
		t.Fatalf("transient fault was not healed: %v", comp.Err())
	}
	if comp.ShardsRetried != 1 || comp.Retries == 0 {
		t.Errorf("certificate: %d shards retried (%d reloads), want the one faulted drive", comp.ShardsRetried, comp.Retries)
	}
	if comp.ShardsScanned != len(ds.Drives) {
		t.Errorf("scanned %d shards, want all %d", comp.ShardsScanned, len(ds.Drives))
	}
	if got := renderAll(sa.Figures()); got != want {
		t.Error("healed run renders differently from an undisturbed run")
	}
}

// TestChaosStrictAbortsWithItemizedError keeps the original contract:
// in strict mode the first failing shard aborts the whole run with an
// error naming the shard and the injected fault.
func TestChaosStrictAbortsWithItemizedError(t *testing.T) {
	_, dir := streamFixture(t)
	sched, err := faults.ParseIOSpec("read-err:drive001_*", 29)
	if err != nil {
		t.Fatal(err)
	}
	src, err := OpenStoreSourceFS(store.NewFaultFS(nil, sched), dir, store.Strict)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := StreamAnalyze(src, StreamOptions{Workers: 4, Strict: true, RetryBackoff: time.Millisecond})
	if err == nil {
		t.Fatalf("strict run over faulted corpus succeeded: %v", sa.Completeness())
	}
	if !errors.Is(err, store.ErrInjected) {
		t.Errorf("strict error does not wrap the injected fault: %v", err)
	}
	if !strings.Contains(err.Error(), "drive001") {
		t.Errorf("strict error does not name the failing shard: %v", err)
	}
}

// cancelAfterSource cancels a context once n shards have loaded —
// a SIGINT landing mid-campaign.
type cancelAfterSource struct {
	inner  ShardSource
	cancel context.CancelFunc
	after  int32
	loads  atomic.Int32
}

func (c *cancelAfterSource) Info() (SourceInfo, error) { return c.inner.Info() }

func (c *cancelAfterSource) Plan() ([]ShardRef, error) { return c.inner.Plan() }

func (c *cancelAfterSource) Load(ref ShardRef) (*Shard, error) {
	if c.loads.Add(1) == c.after {
		c.cancel()
	}
	return c.inner.Load(ref)
}

// TestChaosMidStreamCancellationLeaksNothing: cancelling the context
// mid-campaign surfaces context.Canceled and every supervisor goroutine
// (producer and workers) exits.
func TestChaosMidStreamCancellationLeaksNothing(t *testing.T) {
	_, dir := streamFixture(t)
	baseline := testutil.GoroutineBaseline()
	for _, workers := range chaosWorkerCounts(t) {
		src, err := OpenStoreSource(dir, store.Lenient)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		wrapped := &cancelAfterSource{inner: src, cancel: cancel, after: 2}
		_, err = StreamAnalyzeContext(ctx, wrapped, StreamOptions{Workers: workers})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: cancelled run returned %v, want context.Canceled", workers, err)
		}
	}
	testutil.SettleGoroutines(t, baseline)
}

// poisonSource panics while loading one shard — a poison shard must be
// quarantined by the worker's panic fence, not kill the process.
type poisonSource struct {
	inner ShardSource
	drive int
}

func (p *poisonSource) Info() (SourceInfo, error) { return p.inner.Info() }

func (p *poisonSource) Plan() ([]ShardRef, error) { return p.inner.Plan() }

func (p *poisonSource) Load(ref ShardRef) (*Shard, error) {
	if ref.Drive == p.drive {
		panic(fmt.Sprintf("poison shard drive %d", ref.Drive))
	}
	return p.inner.Load(ref)
}

func TestChaosPoisonShardIsQuarantined(t *testing.T) {
	ds, _ := streamFixture(t)
	reg := obs.NewRegistry()
	sa, err := StreamAnalyze(&poisonSource{inner: &DatasetSource{DS: ds}, drive: 2},
		StreamOptions{Workers: 2, Metrics: reg})
	if err != nil {
		t.Fatalf("lenient run died on a poison shard: %v", err)
	}
	comp := sa.Completeness()
	if comp.ShardsQuarantined != 1 || comp.RecoveredPanics != 1 {
		t.Fatalf("poison shard: %d quarantined, %d recovered panics, want 1/1:\n%v",
			comp.ShardsQuarantined, comp.RecoveredPanics, comp.Err())
	}
	q := comp.Quarantined[0]
	if q.Drive != 2 || q.Class != FailPanic || q.Attempts != 1 {
		t.Errorf("poison quarantine %+v, want drive 2, class %q, 1 attempt (panics are not retried)", q, FailPanic)
	}
	if got := reg.Counter("stream.recovered_panics").Value(); got != 1 {
		t.Errorf("stream.recovered_panics = %d, want 1", got)
	}
	if comp.Err() == nil || !strings.Contains(comp.Err().Error(), "poison shard drive 2") {
		t.Errorf("certificate error does not carry the panic message: %v", comp.Err())
	}
}

// TestChaosStrictPoisonAborts: in strict mode a poison shard is fatal,
// but still an error — never an escaped panic.
func TestChaosStrictPoisonAborts(t *testing.T) {
	ds, _ := streamFixture(t)
	_, err := StreamAnalyze(&poisonSource{inner: &DatasetSource{DS: ds}, drive: 0},
		StreamOptions{Workers: 2, Strict: true})
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("strict poison run returned %v, want a panic-converted error", err)
	}
}
