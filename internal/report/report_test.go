package report

import (
	"strings"
	"testing"

	"satcell/internal/channel"
)

// Chart labels in these tests are real network ids pulled from the
// catalog constants, matching how the analyses label their series.
var (
	labelMOB = channel.StarlinkMobility.String()
	labelVZ  = channel.Verizon.String()
	labelATT = channel.ATT.String()
)

func TestCanvasSetAndBounds(t *testing.T) {
	c := NewCanvas(10, 4)
	c.Set(0, 0, '*')  // bottom-left
	c.Set(9, 3, 'o')  // top-right
	c.Set(-1, 0, 'x') // out of bounds: ignored
	c.Set(0, 99, 'x')
	rows := c.Rows()
	if rows[3][0] != '*' {
		t.Fatalf("bottom-left not set: %q", rows[3])
	}
	if rows[0][9] != 'o' {
		t.Fatalf("top-right not set: %q", rows[0])
	}
	for _, r := range rows {
		if strings.ContainsRune(r, 'x') {
			t.Fatal("out-of-bounds write leaked onto canvas")
		}
	}
}

func TestLinePlotBasics(t *testing.T) {
	out := LinePlot("cdf", "Mbps", "P", 40, 10, []Line{
		{Label: labelMOB, X: []float64{0, 50, 100}, Y: []float64{0, 0.5, 1}},
		{Label: labelVZ, X: []float64{0, 50, 100}, Y: []float64{0.2, 0.6, 1}},
	})
	for _, want := range []string{"cdf", labelMOB, labelVZ, "x: Mbps", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	// The axis labels include the data range.
	if !strings.Contains(out, "100") {
		t.Fatalf("x max missing:\n%s", out)
	}
}

func TestLinePlotEmptyAndDegenerate(t *testing.T) {
	if out := LinePlot("t", "x", "y", 30, 8, nil); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot: %q", out)
	}
	// A single point (degenerate ranges) must not panic or divide by 0.
	out := LinePlot("t", "x", "y", 30, 8, []Line{{Label: "p", X: []float64{5}, Y: []float64{7}}})
	if !strings.Contains(out, "p") {
		t.Fatal("single-point plot broken")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("throughput", "Mbps", 20, []Bar{
		{Label: labelMOB, Value: 200},
		{Label: labelATT, Value: 50},
		{Label: "zero", Value: 0},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want title+3 bars, got %d lines", len(lines))
	}
	mob := strings.Count(lines[1], "=")
	att := strings.Count(lines[2], "=")
	if mob != 20 {
		t.Fatalf("max bar should fill width: %d", mob)
	}
	if att != 5 {
		t.Fatalf("ATT bar = %d, want 5 (50/200 of 20)", att)
	}
	if strings.Count(lines[3], "=") != 0 {
		t.Fatal("zero bar should be empty")
	}
}

func TestStackedChart(t *testing.T) {
	out := StackedChart("coverage", []string{"very-low", "low", "medium", "high"}, 40, []Stacked{
		{Label: labelMOB, Shares: []float64{0.1, 0.1, 0.2, 0.6}},
		{Label: labelATT, Shares: []float64{0.4, 0.2, 0.2, 0.2}},
	})
	for _, want := range []string{labelMOB, labelATT, "60.0%", "layers:", "high"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stacked chart missing %q:\n%s", want, out)
		}
	}
	// MOB's high layer (glyph 'x', index 3) should dominate its row.
	mobRow := strings.Split(out, "\n")[1]
	if strings.Count(mobRow, "x") < 20 {
		t.Fatalf("high layer underdrawn: %q", mobRow)
	}
}
