// Package report renders figures as ASCII plots: CDF and time-series
// line charts, horizontal bar charts and stacked coverage bars, so the
// evaluation is readable straight from a terminal without a plotting
// stack.
package report

import (
	"fmt"
	"math"
	"strings"
)

// plot glyphs, one per series (cycled).
var glyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Canvas is a fixed-size character grid for line plots.
type Canvas struct {
	w, h  int
	cells [][]byte
}

// NewCanvas allocates a w x h canvas filled with spaces.
func NewCanvas(w, h int) *Canvas {
	cells := make([][]byte, h)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(" ", w))
	}
	return &Canvas{w: w, h: h, cells: cells}
}

// Set marks cell (x, y) with glyph; y counts from the bottom.
func (c *Canvas) Set(x, y int, glyph byte) {
	if x < 0 || x >= c.w || y < 0 || y >= c.h {
		return
	}
	c.cells[c.h-1-y][x] = glyph
}

// Rows returns the canvas rows top-to-bottom.
func (c *Canvas) Rows() []string {
	out := make([]string, c.h)
	for i, row := range c.cells {
		out[i] = string(row)
	}
	return out
}

// Line is one named series for a line plot.
type Line struct {
	Label string
	X, Y  []float64
}

// LinePlot renders series as an ASCII line chart with axes and a legend.
func LinePlot(title, xLabel, yLabel string, width, height int, lines []Line) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, l := range lines {
		for i := range l.X {
			xMin = math.Min(xMin, l.X[i])
			xMax = math.Max(xMax, l.X[i])
			yMin = math.Min(yMin, l.Y[i])
			yMax = math.Max(yMax, l.Y[i])
		}
	}
	if math.IsInf(xMin, 1) {
		return title + ": (no data)\n"
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	cv := NewCanvas(width, height)
	for si, l := range lines {
		g := glyphs[si%len(glyphs)]
		for i := range l.X {
			px := int((l.X[i] - xMin) / (xMax - xMin) * float64(width-1))
			py := int((l.Y[i] - yMin) / (yMax - yMin) * float64(height-1))
			cv.Set(px, py, g)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yHi := fmt.Sprintf("%.4g", yMax)
	yLo := fmt.Sprintf("%.4g", yMin)
	pad := len(yHi)
	if len(yLo) > pad {
		pad = len(yLo)
	}
	rows := cv.Rows()
	for i, row := range rows {
		label := strings.Repeat(" ", pad)
		switch i {
		case 0:
			label = fmt.Sprintf("%*s", pad, yHi)
		case len(rows) - 1:
			label = fmt.Sprintf("%*s", pad, yLo)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, row)
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", pad), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*.4g%*.4g\n", strings.Repeat(" ", pad), width/2, xMin, width-width/2, xMax)
	fmt.Fprintf(&b, "%s  x: %s, y: %s\n", strings.Repeat(" ", pad), xLabel, yLabel)
	for si, l := range lines {
		fmt.Fprintf(&b, "%s  %c %s\n", strings.Repeat(" ", pad), glyphs[si%len(glyphs)], l.Label)
	}
	return b.String()
}

// Bar is one labelled value for a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width characters.
func BarChart(title, unit string, width int, bars []Bar) string {
	if width < 10 {
		width = 10
	}
	maxV := 0.0
	maxLabel := 0
	for _, bar := range bars {
		if bar.Value > maxV {
			maxV = bar.Value
		}
		if len(bar.Label) > maxLabel {
			maxLabel = len(bar.Label)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for _, bar := range bars {
		n := 0
		if maxV > 0 {
			n = int(bar.Value / maxV * float64(width))
		}
		fmt.Fprintf(&b, "  %-*s |%s %.4g %s\n",
			maxLabel, bar.Label, strings.Repeat("=", n), bar.Value, unit)
	}
	return b.String()
}

// Stacked is one column of a stacked-fraction chart (values sum ~1).
type Stacked struct {
	Label  string
	Shares []float64
}

// StackedChart renders columns of stacked fractions using one glyph per
// layer, e.g. the Fig. 9 performance-level coverage bars.
func StackedChart(title string, layerNames []string, width int, cols []Stacked) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxLabel := 0
	for _, c := range cols {
		if len(c.Label) > maxLabel {
			maxLabel = len(c.Label)
		}
	}
	for _, c := range cols {
		fmt.Fprintf(&b, "  %-*s |", maxLabel, c.Label)
		for li, share := range c.Shares {
			n := int(share * float64(width))
			b.WriteString(strings.Repeat(string(glyphs[li%len(glyphs)]), n))
		}
		b.WriteString("|")
		for li, share := range c.Shares {
			fmt.Fprintf(&b, " %.1f%%", share*100)
			_ = li
		}
		b.WriteString("\n")
	}
	b.WriteString("  layers:")
	for li, name := range layerNames {
		fmt.Fprintf(&b, " %c=%s", glyphs[li%len(glyphs)], name)
	}
	b.WriteString("\n")
	return b.String()
}
