package emu

import (
	"math/rand"
	"time"
)

// MTU is the maximum packet size carried by emulated links, matching the
// Ethernet MTU the field tools observe.
const MTU = 1500

// Packet is the unit of transfer on emulated links. Handler is carried
// opaquely to the receiver; links never inspect it.
type Packet struct {
	Flow    int           // flow identifier, chosen by the transport
	Seq     int64         // transport-assigned sequence number
	Size    int           // bytes on the wire
	SentAt  time.Duration // set by the link when the packet enters the queue
	Payload any           // transport-specific contents
}

// RateFunc returns the instantaneous link capacity in Mbps at virtual
// time t. Returning 0 means the link is in outage.
type RateFunc func(t time.Duration) float64

// ConstantRate returns a RateFunc with a fixed capacity.
func ConstantRate(mbps float64) RateFunc {
	return func(time.Duration) float64 { return mbps }
}

// DelayFunc returns the one-way propagation delay at virtual time t.
type DelayFunc func(t time.Duration) time.Duration

// ConstantDelay returns a fixed propagation delay.
func ConstantDelay(d time.Duration) DelayFunc {
	return func(time.Duration) time.Duration { return d }
}

// LossFunc decides whether a packet is randomly lost on the wire at
// virtual time t (after surviving the queue).
type LossFunc func(t time.Duration, p *Packet) bool

// NoLoss never drops packets.
func NoLoss(time.Duration, *Packet) bool { return false }

// ProbLoss drops packets with probability probAt(t), using r.
func ProbLoss(r *rand.Rand, probAt func(t time.Duration) float64) LossFunc {
	return func(t time.Duration, _ *Packet) bool {
		p := probAt(t)
		return p > 0 && r.Float64() < p
	}
}

// LinkStats counts what happened on a link.
type LinkStats struct {
	Enqueued       int64
	QueueDrops     int64 // droptail discards
	RandomLosses   int64 // wire losses
	Delivered      int64
	DeliveredBytes int64
}

// LinkConfig configures one unidirectional link.
type LinkConfig struct {
	Rate  RateFunc
	Delay DelayFunc
	Loss  LossFunc
	// QueueBytes is the droptail buffer limit. Zero means the default
	// (a generous 400 kB, in line with the deep buffers of real access
	// links).
	QueueBytes int
}

// outagePollInterval is how long a link waits before re-checking the
// rate when capacity is (near) zero.
const outagePollInterval = 20 * time.Millisecond

// minRateMbps guards the serialization-time computation against a zero
// rate; anything below this is treated as outage.
const minRateMbps = 0.01

// Link is a unidirectional trace-shaped pipe: droptail queue -> variable
// rate serializer -> random loss gate -> propagation delay -> receiver.
type Link struct {
	eng     *Engine
	cfg     LinkConfig
	deliver func(*Packet)

	queue        []*Packet
	queueBytes   int
	busy         bool
	lastDelivery time.Duration // enforces FIFO across varying delay
	stats        LinkStats
}

// NewLink creates a link inside eng delivering packets to deliver.
func NewLink(eng *Engine, cfg LinkConfig, deliver func(*Packet)) *Link {
	if cfg.Rate == nil {
		cfg.Rate = ConstantRate(100)
	}
	if cfg.Delay == nil {
		cfg.Delay = ConstantDelay(0)
	}
	if cfg.Loss == nil {
		cfg.Loss = NoLoss
	}
	if cfg.QueueBytes <= 0 {
		cfg.QueueBytes = 400 * 1024
	}
	return &Link{eng: eng, cfg: cfg, deliver: deliver}
}

// Stats returns the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// QueueBytes returns the bytes currently waiting in the buffer.
func (l *Link) QueueBytes() int { return l.queueBytes }

// Send enqueues a packet, applying droptail when the buffer is full.
// It reports whether the packet was accepted.
func (l *Link) Send(p *Packet) bool {
	if l.queueBytes+p.Size > l.cfg.QueueBytes {
		l.stats.QueueDrops++
		return false
	}
	p.SentAt = l.eng.Now()
	l.queue = append(l.queue, p)
	l.queueBytes += p.Size
	l.stats.Enqueued++
	if !l.busy {
		l.busy = true
		l.serveNext()
	}
	return true
}

// serveNext begins transmitting the head-of-line packet.
func (l *Link) serveNext() {
	if len(l.queue) == 0 {
		l.busy = false
		return
	}
	rate := l.cfg.Rate(l.eng.Now())
	if rate < minRateMbps {
		// Outage: hold the queue and poll for capacity to return.
		l.eng.Schedule(outagePollInterval, l.serveNext)
		return
	}
	p := l.queue[0]
	txTime := time.Duration(float64(p.Size*8) / (rate * 1e6) * float64(time.Second))
	l.eng.Schedule(txTime, func() { l.finishTx(p) })
}

// finishTx completes the serialization of p, applies the loss gate, and
// hands the packet to the propagation delay stage.
func (l *Link) finishTx(p *Packet) {
	l.queue = l.queue[1:]
	l.queueBytes -= p.Size
	if l.cfg.Loss(l.eng.Now(), p) {
		l.stats.RandomLosses++
	} else {
		// A shrinking delay must not reorder packets: deliver no
		// earlier than the previous delivery (FIFO pipe semantics).
		at := l.eng.Now() + l.cfg.Delay(l.eng.Now())
		if at < l.lastDelivery {
			at = l.lastDelivery
		}
		l.lastDelivery = at
		l.eng.ScheduleAt(at, func() {
			l.stats.Delivered++
			l.stats.DeliveredBytes += int64(p.Size)
			l.deliver(p)
		})
	}
	l.serveNext()
}
