package emu

import (
	"math/rand"
	"time"

	"satcell/internal/channel"
)

// Path is a bidirectional emulated network path built from a channel
// trace: the downlink and uplink are independently shaped links whose
// rate, delay and loss follow the replayed samples, exactly as MpShell
// replays the paper's driving traces (§6).
type Path struct {
	Trace *channel.Trace
	Down  *Link
	Up    *Link
}

// PathConfig tunes the trace replay.
type PathConfig struct {
	// QueueBytes is the droptail buffer of each direction (0 = default).
	QueueBytes int
	// Seed drives the stochastic loss gates.
	Seed int64
	// Loop repeats the trace when the simulation runs past its end;
	// otherwise conditions freeze at the final sample.
	Loop bool
}

// NewPath builds a Path inside eng replaying tr. deliverDown receives
// packets sent through the downlink (server -> client), deliverUp those
// sent through the uplink (client -> server).
func NewPath(eng *Engine, tr *channel.Trace, cfg PathConfig, deliverDown, deliverUp func(*Packet)) *Path {
	at := func(t time.Duration) channel.Sample {
		if cfg.Loop {
			if d := tr.Duration(); d > 0 {
				t = t % d
			}
		}
		return tr.At(t)
	}
	rngDown := rand.New(rand.NewSource(cfg.Seed*2 + 1))
	rngUp := rand.New(rand.NewSource(cfg.Seed*2 + 2))

	down := NewLink(eng, LinkConfig{
		Rate:  func(t time.Duration) float64 { return at(t).DownMbps },
		Delay: func(t time.Duration) time.Duration { return at(t).RTT / 2 },
		Loss: ProbLoss(rngDown, func(t time.Duration) float64 {
			return at(t).LossDown
		}),
		QueueBytes: cfg.QueueBytes,
	}, deliverDown)

	up := NewLink(eng, LinkConfig{
		Rate:  func(t time.Duration) float64 { return at(t).UpMbps },
		Delay: func(t time.Duration) time.Duration { return at(t).RTT / 2 },
		Loss: ProbLoss(rngUp, func(t time.Duration) float64 {
			return at(t).LossUp
		}),
		QueueBytes: cfg.QueueBytes,
	}, deliverUp)

	return &Path{Trace: tr, Down: down, Up: up}
}

// BaseRTTAt returns the unloaded round-trip time of the path at t.
func (p *Path) BaseRTTAt(t time.Duration) time.Duration { return p.Trace.At(t).RTT }
