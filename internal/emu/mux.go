package emu

import (
	"satcell/internal/channel"
)

// FlowMux routes delivered packets to per-flow handlers, so multiple
// transport connections can share one emulated link (parallel iPerf
// streams, MPTCP subflows, data + ACK traffic).
type FlowMux struct {
	handlers map[int]func(*Packet)
}

// NewFlowMux returns an empty mux.
func NewFlowMux() *FlowMux {
	return &FlowMux{handlers: make(map[int]func(*Packet))}
}

// Register installs the handler for a flow, replacing any previous one.
func (m *FlowMux) Register(flow int, h func(*Packet)) { m.handlers[flow] = h }

// Unregister removes a flow's handler.
func (m *FlowMux) Unregister(flow int) { delete(m.handlers, flow) }

// Deliver dispatches p to its flow handler; packets for unknown flows
// are dropped silently (like traffic to a closed port).
func (m *FlowMux) Deliver(p *Packet) {
	if h, ok := m.handlers[p.Flow]; ok {
		h(p)
	}
}

// DuplexPath bundles a trace-driven Path with flow muxes on both
// directions; transports register their receive hooks per flow.
type DuplexPath struct {
	*Path
	DownMux *FlowMux // receives what the downlink delivers (client side)
	UpMux   *FlowMux // receives what the uplink delivers (server side)
}

// NewDuplexPath builds a muxed bidirectional path replaying tr.
func NewDuplexPath(eng *Engine, tr *channel.Trace, cfg PathConfig) *DuplexPath {
	down := NewFlowMux()
	up := NewFlowMux()
	p := NewPath(eng, tr, cfg, down.Deliver, up.Deliver)
	return &DuplexPath{Path: p, DownMux: down, UpMux: up}
}
