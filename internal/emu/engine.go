// Package emu is a discrete-event network emulator in the spirit of
// Mahimahi/MpShell: packets flow through links whose capacity is driven
// by replayed traces (or constant rates), with droptail buffers,
// propagation delay and stochastic loss. The transport simulations
// (internal/tcp, internal/udp, internal/mptcp) run on top of it.
package emu

import "satcell/internal/vclock"

// Engine is a single-threaded discrete-event simulator with a virtual
// clock. The event heap itself lives in vclock.Scheduler so the
// emulator and a vclock.SimClock can share one ordered event loop
// (vclock.NewSimOn(&eng.Scheduler)). It is not safe for concurrent use
// on its own; all simulated components run inside its event loop.
type Engine struct {
	vclock.Scheduler
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }
