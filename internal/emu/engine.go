// Package emu is a discrete-event network emulator in the spirit of
// Mahimahi/MpShell: packets flow through links whose capacity is driven
// by replayed traces (or constant rates), with droptail buffers,
// propagation delay and stochastic loss. The transport simulations
// (internal/tcp, internal/udp, internal/mptcp) run on top of it.
package emu

import (
	"container/heap"
	"fmt"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // tie-breaker preserving schedule order
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator with a virtual
// clock. It is not safe for concurrent use; all simulated components
// run inside its event loop.
type Engine struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	stopped bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Schedule runs fn after delay of virtual time. A negative delay panics:
// the simulation cannot go back in time.
func (e *Engine) Schedule(delay time.Duration, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("emu: negative delay %v", delay))
	}
	e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at the given absolute virtual time (>= Now).
func (e *Engine) ScheduleAt(at time.Duration, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("emu: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, fn: fn})
}

// Run processes events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
}

// RunUntil processes events with timestamps <= deadline, then advances
// the clock to the deadline.
func (e *Engine) RunUntil(deadline time.Duration) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped && e.events[0].at <= deadline {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.fn()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// Stop halts Run/RunUntil after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.events) }
