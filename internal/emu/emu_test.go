package emu

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"satcell/internal/channel"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Schedule(time.Second, func() { order = append(order, 1) })
	e.Schedule(time.Second, func() { order = append(order, 11) }) // same time: FIFO
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Run()
	want := []int{1, 11, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(time.Second, func() {
		e.Schedule(time.Second, func() { fired++ })
	})
	e.Run()
	if fired != 1 {
		t.Fatal("nested event did not fire")
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(time.Second, func() { fired++ })
	e.Schedule(5*time.Second, func() { fired++ })
	e.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.RunUntil(10 * time.Second)
	if fired != 2 {
		t.Fatal("second event not fired")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.Schedule(time.Second, func() { fired++; e.Stop() })
	e.Schedule(2*time.Second, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after Stop", fired)
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEngine().Schedule(-time.Second, func() {})
}

func TestLinkThroughputMatchesRate(t *testing.T) {
	e := NewEngine()
	var got int64
	l := NewLink(e, LinkConfig{Rate: ConstantRate(12)}, func(p *Packet) { got += int64(p.Size) })
	// Offer 10 seconds of packets at 12 Mbps = 15 MB... offer more than
	// capacity and let droptail shed the rest; feed 1 packet per ms.
	var feed func()
	sent := 0
	feed = func() {
		if e.Now() >= 10*time.Second {
			return
		}
		l.Send(&Packet{Seq: int64(sent), Size: MTU})
		sent++
		e.Schedule(time.Millisecond, feed)
	}
	e.Schedule(0, feed)
	e.RunUntil(10 * time.Second)
	e.Run() // drain
	// 12 Mbps for 10 s = 15,000,000 bytes. Allow 5% tolerance.
	want := int64(15e6)
	if got < want*95/100 || got > want*105/100 {
		t.Fatalf("delivered %d bytes, want ~%d", got, want)
	}
}

func TestLinkDroptail(t *testing.T) {
	e := NewEngine()
	l := NewLink(e, LinkConfig{Rate: ConstantRate(1), QueueBytes: 3 * MTU}, func(*Packet) {})
	accepted := 0
	for i := 0; i < 10; i++ {
		if l.Send(&Packet{Seq: int64(i), Size: MTU}) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted %d, want 3 (queue limit)", accepted)
	}
	if l.Stats().QueueDrops != 7 {
		t.Fatalf("drops = %d", l.Stats().QueueDrops)
	}
	if l.QueueBytes() != 3*MTU {
		t.Fatalf("queued bytes = %d", l.QueueBytes())
	}
}

func TestLinkPropagationDelay(t *testing.T) {
	e := NewEngine()
	var deliveredAt time.Duration
	l := NewLink(e, LinkConfig{
		Rate:  ConstantRate(1000),
		Delay: ConstantDelay(30 * time.Millisecond),
	}, func(*Packet) { deliveredAt = e.Now() })
	l.Send(&Packet{Size: MTU})
	e.Run()
	tx := time.Duration(float64(MTU*8) / 1000e6 * float64(time.Second))
	want := 30*time.Millisecond + tx
	if diff := deliveredAt - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestLinkRandomLoss(t *testing.T) {
	e := NewEngine()
	delivered := 0
	r := rand.New(rand.NewSource(5))
	l := NewLink(e, LinkConfig{
		Rate:       ConstantRate(10000),
		Loss:       ProbLoss(r, func(time.Duration) float64 { return 0.3 }),
		QueueBytes: 100 << 20,
	}, func(*Packet) { delivered++ })
	n := 20000
	for i := 0; i < n; i++ {
		l.Send(&Packet{Seq: int64(i), Size: 200})
	}
	e.Run()
	frac := float64(delivered) / float64(n)
	if frac < 0.67 || frac > 0.73 {
		t.Fatalf("delivery fraction %v, want ~0.7", frac)
	}
	if int(l.Stats().RandomLosses)+delivered != n {
		t.Fatal("loss + delivered != sent")
	}
}

func TestLinkOutageHoldsPackets(t *testing.T) {
	e := NewEngine()
	delivered := 0
	// Rate is 0 for the first second, then 100 Mbps.
	rate := func(t time.Duration) float64 {
		if t < time.Second {
			return 0
		}
		return 100
	}
	l := NewLink(e, LinkConfig{Rate: rate}, func(*Packet) { delivered++ })
	l.Send(&Packet{Size: MTU})
	e.RunUntil(900 * time.Millisecond)
	if delivered != 0 {
		t.Fatal("packet delivered during outage")
	}
	e.Run()
	if delivered != 1 {
		t.Fatal("packet lost across outage")
	}
}

func TestLinkFIFOUnderShrinkingDelay(t *testing.T) {
	e := NewEngine()
	// Delay drops sharply after 50ms; FIFO must still hold.
	delay := func(t time.Duration) time.Duration {
		if t < 50*time.Millisecond {
			return 100 * time.Millisecond
		}
		return time.Millisecond
	}
	var seqs []int64
	l := NewLink(e, LinkConfig{Rate: ConstantRate(0.5), Delay: delay}, func(p *Packet) {
		seqs = append(seqs, p.Seq)
	})
	for i := 0; i < 5; i++ {
		l.Send(&Packet{Seq: int64(i), Size: MTU})
	}
	e.Run()
	for i := 1; i < len(seqs); i++ {
		if seqs[i] < seqs[i-1] {
			t.Fatalf("reordering: %v", seqs)
		}
	}
	if len(seqs) != 5 {
		t.Fatalf("delivered %d of 5", len(seqs))
	}
}

func tracedPath() *channel.Trace {
	tr := &channel.Trace{Network: channel.StarlinkMobility}
	for i := 0; i < 30; i++ {
		tr.Samples = append(tr.Samples, channel.Sample{
			At:       time.Duration(i) * time.Second,
			DownMbps: 100,
			UpMbps:   10,
			RTT:      50 * time.Millisecond,
		})
	}
	return tr
}

func TestPathReplaysTrace(t *testing.T) {
	e := NewEngine()
	var downBytes, upBytes int64
	p := NewPath(e, tracedPath(), PathConfig{Seed: 1},
		func(pk *Packet) { downBytes += int64(pk.Size) },
		func(pk *Packet) { upBytes += int64(pk.Size) })

	var feed func()
	feed = func() {
		if e.Now() >= 5*time.Second {
			return
		}
		p.Down.Send(&Packet{Size: MTU})
		p.Up.Send(&Packet{Size: MTU})
		e.Schedule(500*time.Microsecond, feed) // offered: 24 Mbps each way
	}
	e.Schedule(0, feed)
	e.RunUntil(6 * time.Second)
	e.Run()
	// Downlink should carry all offered load (24 < 100 Mbps);
	// uplink saturates at 10 Mbps * 5 s = 6.25 MB.
	if downBytes < int64(14e6) {
		t.Fatalf("downlink carried %d bytes", downBytes)
	}
	upWant := int64(10e6 / 8 * 5)
	if upBytes < upWant*90/100 || upBytes > upWant*110/100 {
		t.Fatalf("uplink carried %d bytes, want ~%d", upBytes, upWant)
	}
	if p.BaseRTTAt(time.Second) != 50*time.Millisecond {
		t.Fatal("BaseRTTAt wrong")
	}
}

func TestPathLoopWraps(t *testing.T) {
	tr := &channel.Trace{Network: channel.ATT}
	tr.Samples = []channel.Sample{
		{At: 0, DownMbps: 50, UpMbps: 5, RTT: 40 * time.Millisecond},
		{At: time.Second, DownMbps: 50, UpMbps: 5, RTT: 40 * time.Millisecond},
	}
	e := NewEngine()
	got := 0
	p := NewPath(e, tr, PathConfig{Seed: 2, Loop: true}, func(*Packet) { got++ }, func(*Packet) {})
	// Send a packet well past the end of the 1s trace.
	e.Schedule(10*time.Second, func() { p.Down.Send(&Packet{Size: MTU}) })
	e.Run()
	if got != 1 {
		t.Fatal("looped path did not deliver")
	}
}

// TestEngineMonotonicTimeProperty: regardless of the (possibly
// unsorted) schedule order, callbacks always observe non-decreasing
// virtual time.
func TestEngineMonotonicTimeProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		e := NewEngine()
		last := time.Duration(-1)
		okOrder := true
		for _, d := range delaysMs {
			e.Schedule(time.Duration(d)*time.Millisecond, func() {
				if e.Now() < last {
					okOrder = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return okOrder
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLinkConservationProperty: enqueued = delivered + queue drops +
// random losses + still queued, for arbitrary offered loads.
func TestLinkConservationProperty(t *testing.T) {
	f := func(sizes []uint16, rate8 uint8) bool {
		e := NewEngine()
		delivered := 0
		rate := 1 + float64(rate8)
		r := rand.New(rand.NewSource(int64(len(sizes))))
		l := NewLink(e, LinkConfig{
			Rate:       ConstantRate(rate),
			Loss:       ProbLoss(r, func(time.Duration) float64 { return 0.1 }),
			QueueBytes: 64 << 10,
		}, func(*Packet) { delivered++ })
		sent := 0
		for _, sz := range sizes {
			size := int(sz%1400) + 100
			l.Send(&Packet{Size: size})
			sent++
		}
		e.Run()
		st := l.Stats()
		return int(st.Enqueued) == sent-int(st.QueueDrops) &&
			delivered == int(st.Delivered) &&
			int(st.Delivered+st.RandomLosses+st.QueueDrops) == sent
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
