package emu

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// Stop mid-loop must leave the remaining events queued and the clock at
// the stopping event's timestamp; a later Run resumes from there.
func TestEngineStopMidLoopResumes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 1; i <= 5; i++ {
		i := i
		e.Schedule(time.Duration(i)*time.Second, func() {
			order = append(order, i)
			if i == 2 {
				e.Stop()
			}
		})
	}
	e.Run()
	if len(order) != 2 || e.Now() != 2*time.Second {
		t.Fatalf("after Stop: order=%v now=%v, want [1 2] at 2s", order, e.Now())
	}
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3 events surviving Stop", e.Pending())
	}
	e.Run() // resumes: Run clears the stopped flag
	if len(order) != 5 || e.Now() != 5*time.Second {
		t.Fatalf("after resume: order=%v now=%v, want [1..5] at 5s", order, e.Now())
	}
}

// A binary heap alone does not preserve insertion order for equal keys;
// the seq tie-breaker must. Stress it well past the point where sibling
// swaps would reorder a naive heap.
func TestEngineSameTimestampTieBreakStress(t *testing.T) {
	e := NewEngine()
	const n = 1000
	var got []int
	for i := 0; i < n; i++ {
		i := i
		// Interleave two timestamps so the heap actually rebalances.
		at := time.Second
		if i%3 == 0 {
			at = 2 * time.Second
		}
		e.Schedule(at, func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != n {
		t.Fatalf("ran %d events, want %d", len(got), n)
	}
	// Within each timestamp class, schedule order must be preserved.
	lastEarly, lastLate := -1, -1
	for idx, i := range got {
		if i%3 == 0 {
			if idx < n-n/3-1 && lastEarly >= 0 && got[idx] < lastEarly {
				t.Fatalf("2s-class out of order at %d: %v", idx, got[idx])
			}
			if i < lastLate {
				t.Fatalf("2s event %d ran before earlier 2s event %d", i, lastLate)
			}
			lastLate = i
		} else {
			if i < lastEarly {
				t.Fatalf("1s event %d ran before earlier 1s event %d", i, lastEarly)
			}
			lastEarly = i
		}
	}
	// And the 1s class must fully precede the 2s class.
	seenLate := false
	for _, i := range got {
		if i%3 == 0 {
			seenLate = true
		} else if seenLate {
			t.Fatal("1s event ran after a 2s event")
		}
	}
}

func TestEngineNegativeDelayPanicMessage(t *testing.T) {
	defer func() {
		r := recover()
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T %v, want string", r, r)
		}
		if !strings.Contains(msg, "negative delay") || !strings.Contains(msg, "-1s") {
			t.Fatalf("panic %q, want the offending delay named", msg)
		}
	}()
	NewEngine().Schedule(-time.Second, func() {})
}

func TestEngineScheduleAtPastPanicMessage(t *testing.T) {
	e := NewEngine()
	e.Schedule(2*time.Second, func() {
		defer func() {
			r := recover()
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "before now") {
				t.Errorf("panic %v, want 'before now' message", r)
			}
		}()
		e.ScheduleAt(time.Second, func() {})
	})
	e.Run()
}

// Scheduling from inside a callback at the *current* timestamp must run
// after everything already queued for that timestamp (seq order), and
// zero-delay cascades must run before time advances.
func TestEngineScheduleFromCallbackOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	log := func(s string) { order = append(order, s) }
	e.Schedule(time.Second, func() {
		log("a")
		e.Schedule(0, func() {
			log("a.child")
			e.Schedule(0, func() { log("a.grandchild") })
		})
	})
	e.Schedule(time.Second, func() { log("b") })
	e.Schedule(2*time.Second, func() { log("c") })
	e.Run()
	want := "a,b,a.child,a.grandchild,c"
	if got := strings.Join(order, ","); got != want {
		t.Fatalf("order %q, want %q", got, want)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now = %v, want 2s", e.Now())
	}
}

// RunUntil must execute events scheduled exactly at the deadline and
// land the clock on the deadline even when no event sits there.
func TestEngineRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(time.Second, func() { order = append(order, "at") })
	e.Schedule(time.Second+time.Nanosecond, func() { order = append(order, "past") })
	e.RunUntil(time.Second)
	if fmt.Sprint(order) != "[at]" {
		t.Fatalf("order = %v, want only the deadline event", order)
	}
	e.RunUntil(5 * time.Second)
	if e.Now() != 5*time.Second || len(order) != 2 {
		t.Fatalf("now=%v order=%v, want 5s with both events", e.Now(), order)
	}
}
