// Package channel defines the common abstraction shared by the LEO
// satellite and cellular radio models: a time-sampled description of the
// instantaneous network conditions a device observes (available
// capacity, base RTT, loss probability, signal, serving element).
//
// Channel models are *generative*: given the drive environment at time t
// (position, speed, area type) they produce the next Sample. The emulator
// (internal/emu) and the trace tooling (internal/trace) both consume
// sequences of Samples.
package channel

import (
	"fmt"
	"time"

	"satcell/internal/geo"
)

// Network identifies one of the five measured services.
type Network int

const (
	StarlinkRoam Network = iota
	StarlinkMobility
	ATT
	TMobile
	Verizon
)

// Networks lists all five services in the paper's canonical order.
var Networks = []Network{StarlinkRoam, StarlinkMobility, ATT, TMobile, Verizon}

// Cellular reports whether n is a cellular carrier.
func (n Network) Cellular() bool { return n == ATT || n == TMobile || n == Verizon }

// Satellite reports whether n is a Starlink plan.
func (n Network) Satellite() bool { return n == StarlinkRoam || n == StarlinkMobility }

// String returns the short name used in the paper's figures.
func (n Network) String() string {
	switch n {
	case StarlinkRoam:
		return "RM"
	case StarlinkMobility:
		return "MOB"
	case ATT:
		return "ATT"
	case TMobile:
		return "TM"
	case Verizon:
		return "VZ"
	default:
		return fmt.Sprintf("Network(%d)", int(n))
	}
}

// ParseNetwork converts a short name back to a Network.
func ParseNetwork(s string) (Network, error) {
	for _, n := range Networks {
		if n.String() == s {
			return n, nil
		}
	}
	return 0, fmt.Errorf("channel: unknown network %q", s)
}

// Env is the drive environment a channel model samples under.
type Env struct {
	At       time.Duration // offset from the start of the drive
	Pos      geo.LatLon
	SpeedKmh float64
	Area     geo.AreaType
}

// Sample is one observation of instantaneous channel conditions.
// Capacities are the achievable UDP-level rates (what an unlimited CBR
// flow could push through); the transport simulations degrade from
// there (TCP reacts to LossDown/LossUp, queueing adds delay).
type Sample struct {
	At       time.Duration
	DownMbps float64       // downlink available capacity
	UpMbps   float64       // uplink available capacity
	RTT      time.Duration // base (unloaded) round-trip time
	LossDown float64       // random packet-loss probability, downlink
	LossUp   float64       // random packet-loss probability, uplink
	SignalDB float64       // RSRP-style signal indicator (dBm, cellular) or SNR proxy (satellite)
	Serving  string        // serving satellite or cell identifier
	Outage   bool          // true when the link is effectively down (obstruction / no coverage)
	// Burst marks seconds whose losses are one correlated burst (e.g.
	// a satellite handover gap) rather than independent random drops;
	// TCP coalesces such a burst into a single recovery episode.
	Burst bool
}

// Model generates channel samples for one network service.
type Model interface {
	// Network identifies the service this model describes.
	Network() Network
	// Sample returns the channel conditions under env. Implementations
	// advance internal state (fading processes, serving element) and
	// must be called with non-decreasing env.At.
	Sample(env Env) Sample
	// Reset returns the model to its initial state so a new independent
	// drive can be generated.
	Reset()
}

// Builder constructs a fresh, independent Model instance. Parallel
// campaign generation builds one model per unit of work (one network
// over one drive) instead of sharing a Reset() model across drives, so
// a Builder must return instances whose random streams start exactly
// where Reset() would leave them.
type Builder func() Model

// Trace is an ordered sequence of samples from one model.
type Trace struct {
	Network Network
	Samples []Sample
}

// Duration returns the time covered by the trace.
func (tr *Trace) Duration() time.Duration {
	if len(tr.Samples) == 0 {
		return 0
	}
	return tr.Samples[len(tr.Samples)-1].At
}

// DownSeries returns the downlink capacity in Mbps per sample.
func (tr *Trace) DownSeries() []float64 {
	out := make([]float64, len(tr.Samples))
	for i, s := range tr.Samples {
		out[i] = s.DownMbps
	}
	return out
}

// UpSeries returns the uplink capacity in Mbps per sample.
func (tr *Trace) UpSeries() []float64 {
	out := make([]float64, len(tr.Samples))
	for i, s := range tr.Samples {
		out[i] = s.UpMbps
	}
	return out
}

// At returns the sample in effect at time t (the last sample with
// Sample.At <= t), or the first sample for t before the trace start.
func (tr *Trace) At(t time.Duration) Sample {
	if len(tr.Samples) == 0 {
		return Sample{}
	}
	lo, hi := 0, len(tr.Samples)-1
	if t <= tr.Samples[0].At {
		return tr.Samples[0]
	}
	if t >= tr.Samples[hi].At {
		return tr.Samples[hi]
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if tr.Samples[mid].At <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	return tr.Samples[lo]
}

// Slice returns the sub-trace covering [from, to).
func (tr *Trace) Slice(from, to time.Duration) *Trace {
	out := &Trace{Network: tr.Network}
	for _, s := range tr.Samples {
		if s.At >= from && s.At < to {
			shifted := s
			shifted.At -= from
			out.Samples = append(out.Samples, shifted)
		}
	}
	return out
}

// Record couples a channel sample with the drive environment it was
// observed under; the dataset layer stores these.
type Record struct {
	Env    Env
	Sample Sample
}
