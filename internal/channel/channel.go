// Package channel defines the common abstraction shared by the LEO
// satellite and cellular radio models: a time-sampled description of the
// instantaneous network conditions a device observes (available
// capacity, base RTT, loss probability, signal, serving element).
//
// Channel models are *generative*: given the drive environment at time t
// (position, speed, area type) they produce the next Sample. The emulator
// (internal/emu) and the trace tooling (internal/trace) both consume
// sequences of Samples.
package channel

import (
	"time"

	"satcell/internal/geo"
)

// NetworkID identifies one network service by its short id (the label
// used in the paper's figures for the built-in five). It is an open,
// string-backed identity: any id registered in a Catalog is valid, so
// new carriers, plans or constellations can be added without touching
// this package. The zero value is NetworkInvalid.
type NetworkID string

// Network is the historical name of NetworkID, kept as an alias so
// pre-catalog code and tests keep compiling.
//
// Deprecated: use NetworkID.
type Network = NetworkID

// The paper's five measured services, registered in the default
// catalog. Their ids double as their short display labels.
const (
	StarlinkRoam     NetworkID = "RM"
	StarlinkMobility NetworkID = "MOB"
	ATT              NetworkID = "ATT"
	TMobile          NetworkID = "TM"
	Verizon          NetworkID = "VZ"
)

// NetworkInvalid is the explicit not-a-network sentinel returned by
// failed parses. It is never registered in a catalog, so it can always
// be distinguished from a valid id (the old int enum returned 0 on
// error, which aliased StarlinkRoam).
const NetworkInvalid NetworkID = ""

// Networks lists the paper's five built-in services in canonical order.
// Campaign code should iterate a Scenario's networks (or a Catalog)
// instead; this list exists for the paper-specific analyses and tests.
var Networks = []NetworkID{StarlinkRoam, StarlinkMobility, ATT, TMobile, Verizon}

// Valid reports whether n is a usable id (not the invalid sentinel).
// It does not check catalog membership; see Catalog.Has for that.
func (n NetworkID) Valid() bool { return n != NetworkInvalid }

// Cellular reports whether n is registered as a cellular carrier in the
// default catalog. Unregistered ids report false.
func (n NetworkID) Cellular() bool { return n.Class() == ClassCellular }

// Satellite reports whether n is registered as a satellite service in
// the default catalog. Unregistered ids report false.
func (n NetworkID) Satellite() bool { return n.Class() == ClassSatellite }

// Class returns n's class per the default catalog (ClassUnknown for
// unregistered ids).
func (n NetworkID) Class() Class {
	if spec, ok := DefaultCatalog().Spec(n); ok {
		return spec.Class
	}
	return ClassUnknown
}

// String returns the short id used in figures and CSV schemas.
func (n NetworkID) String() string {
	if n == NetworkInvalid {
		return "invalid"
	}
	return string(n)
}

// DisplayName returns the human-readable name from the default catalog,
// falling back to the short id for unregistered networks.
func (n NetworkID) DisplayName() string {
	if spec, ok := DefaultCatalog().Spec(n); ok && spec.Name != "" {
		return spec.Name
	}
	return n.String()
}

// ParseNetwork converts a short id back to a NetworkID via the default
// catalog. On failure it returns the explicit NetworkInvalid sentinel
// (never a valid id) alongside the error.
func ParseNetwork(s string) (NetworkID, error) {
	return DefaultCatalog().Parse(s)
}

// Env is the drive environment a channel model samples under.
type Env struct {
	At       time.Duration // offset from the start of the drive
	Pos      geo.LatLon
	SpeedKmh float64
	Area     geo.AreaType
}

// Sample is one observation of instantaneous channel conditions.
// Capacities are the achievable UDP-level rates (what an unlimited CBR
// flow could push through); the transport simulations degrade from
// there (TCP reacts to LossDown/LossUp, queueing adds delay).
type Sample struct {
	At       time.Duration
	DownMbps float64       // downlink available capacity
	UpMbps   float64       // uplink available capacity
	RTT      time.Duration // base (unloaded) round-trip time
	LossDown float64       // random packet-loss probability, downlink
	LossUp   float64       // random packet-loss probability, uplink
	SignalDB float64       // RSRP-style signal indicator (dBm, cellular) or SNR proxy (satellite)
	Serving  string        // serving satellite or cell identifier
	Outage   bool          // true when the link is effectively down (obstruction / no coverage)
	// Burst marks seconds whose losses are one correlated burst (e.g.
	// a satellite handover gap) rather than independent random drops;
	// TCP coalesces such a burst into a single recovery episode.
	Burst bool
}

// Model generates channel samples for one network service.
type Model interface {
	// Network identifies the service this model describes.
	Network() NetworkID
	// Sample returns the channel conditions under env. Implementations
	// advance internal state (fading processes, serving element) and
	// must be called with non-decreasing env.At.
	Sample(env Env) Sample
	// Reset returns the model to its initial state so a new independent
	// drive can be generated.
	Reset()
}

// Builder constructs a fresh, independent Model instance. Parallel
// campaign generation builds one model per unit of work (one network
// over one drive) instead of sharing a Reset() model across drives, so
// a Builder must return instances whose random streams start exactly
// where Reset() would leave them.
type Builder func() Model

// Trace is an ordered sequence of samples from one model.
type Trace struct {
	Network NetworkID
	Samples []Sample
}

// Duration returns the time covered by the trace.
func (tr *Trace) Duration() time.Duration {
	if len(tr.Samples) == 0 {
		return 0
	}
	return tr.Samples[len(tr.Samples)-1].At
}

// DownSeries returns the downlink capacity in Mbps per sample.
func (tr *Trace) DownSeries() []float64 {
	out := make([]float64, len(tr.Samples))
	for i, s := range tr.Samples {
		out[i] = s.DownMbps
	}
	return out
}

// UpSeries returns the uplink capacity in Mbps per sample.
func (tr *Trace) UpSeries() []float64 {
	out := make([]float64, len(tr.Samples))
	for i, s := range tr.Samples {
		out[i] = s.UpMbps
	}
	return out
}

// At returns the sample in effect at time t (the last sample with
// Sample.At <= t), or the first sample for t before the trace start.
func (tr *Trace) At(t time.Duration) Sample {
	if len(tr.Samples) == 0 {
		return Sample{}
	}
	lo, hi := 0, len(tr.Samples)-1
	if t <= tr.Samples[0].At {
		return tr.Samples[0]
	}
	if t >= tr.Samples[hi].At {
		return tr.Samples[hi]
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if tr.Samples[mid].At <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	return tr.Samples[lo]
}

// Slice returns the sub-trace covering [from, to).
func (tr *Trace) Slice(from, to time.Duration) *Trace {
	out := &Trace{Network: tr.Network}
	for _, s := range tr.Samples {
		if s.At >= from && s.At < to {
			shifted := s
			shifted.At -= from
			out.Samples = append(out.Samples, shifted)
		}
	}
	return out
}

// Record couples a channel sample with the drive environment it was
// observed under; the dataset layer stores these.
type Record struct {
	Env    Env
	Sample Sample
}
