package channel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Class partitions networks into the two service families the study
// compares. Analyses pool networks by class (e.g. "best cellular"), so
// every registered network must declare one.
type Class int

const (
	// ClassUnknown is the zero value; Register rejects it.
	ClassUnknown Class = iota
	// ClassSatellite marks LEO satellite services (Starlink plans and
	// any custom constellation).
	ClassSatellite
	// ClassCellular marks terrestrial cellular carriers.
	ClassCellular
)

// String names the class (used for tracker net_type fields and docs).
func (c Class) String() string {
	switch c {
	case ClassSatellite:
		return "satellite"
	case ClassCellular:
		return "cellular"
	default:
		return "unknown"
	}
}

// BuildFunc constructs the channel.Builder for one campaign. It
// receives the campaign seed (dataset Config.Seed) and must derive the
// model's own seed deterministically from it — the built-ins use
// campaignSeed + Spec.SeedOffset — so the same campaign seed always
// reproduces the same channel streams regardless of worker count or
// generation order.
type BuildFunc func(campaignSeed int64) Builder

// Spec describes one network in a Catalog: its identity (id, display
// name, class), the determinism contract (seed offset) and the model
// factory. The paper's five networks ship as built-in specs; new
// carriers, plans or constellations register additional ones without
// any edits to the model or campaign packages.
type Spec struct {
	// ID is the short identifier used in figures, CSV schemas and flag
	// grammars. It must be non-empty and free of whitespace and the
	// scenario-grammar separators (",", ";", "=").
	ID NetworkID
	// Name is the human-readable display name ("Starlink Roam").
	Name string
	// Class declares the service family; Register rejects ClassUnknown.
	Class Class
	// SeedOffset is added to the campaign seed to derive the model
	// seed. Distinct offsets keep per-network random streams
	// independent; the built-ins pin the offsets the original
	// generator used (101, 102, 105, 106, 107), which is what keeps
	// the default campaign bit-identical to the seed dataset.
	SeedOffset int64
	// Build is the model factory. It may be nil for identity-only
	// specs (parsing, classification); generation requires it.
	Build BuildFunc
}

// validateID rejects ids that would be ambiguous in CSV schemas or the
// scenario flag grammar.
func validateID(id NetworkID) error {
	if id == NetworkInvalid {
		return fmt.Errorf("channel: empty network id")
	}
	if len(id) > 32 {
		return fmt.Errorf("channel: network id %q longer than 32 bytes", id)
	}
	if strings.ContainsAny(string(id), ",;= \t\r\n\"") {
		return fmt.Errorf("channel: network id %q contains a separator or whitespace", id)
	}
	return nil
}

// Catalog is an ordered, concurrency-safe registry of network specs.
// Registration order is significant: campaigns iterate networks in
// catalog order, so the order is part of the determinism contract.
type Catalog struct {
	mu    sync.RWMutex
	order []NetworkID
	specs map[NetworkID]Spec
}

// NewCatalog builds a catalog from the given specs, in order.
func NewCatalog(specs ...Spec) (*Catalog, error) {
	c := &Catalog{specs: make(map[NetworkID]Spec, len(specs))}
	for _, s := range specs {
		if err := c.Register(s); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Register adds a spec to the catalog. Duplicate ids, empty or
// malformed ids, and ClassUnknown are rejected.
func (c *Catalog) Register(s Spec) error {
	if err := validateID(s.ID); err != nil {
		return err
	}
	if s.Class != ClassSatellite && s.Class != ClassCellular {
		return fmt.Errorf("channel: network %q must declare ClassSatellite or ClassCellular", s.ID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.specs == nil {
		c.specs = make(map[NetworkID]Spec)
	}
	if _, dup := c.specs[s.ID]; dup {
		return fmt.Errorf("channel: network %q already registered", s.ID)
	}
	c.specs[s.ID] = s
	c.order = append(c.order, s.ID)
	return nil
}

// MustRegister is Register for static initialisation; it panics on error.
func (c *Catalog) MustRegister(s Spec) {
	if err := c.Register(s); err != nil {
		panic(err)
	}
}

// SetBuilder attaches (or replaces) the model factory of an already
// registered spec. It exists so the model packages can wire factories
// onto the identity-only built-in specs without an import cycle.
func (c *Catalog) SetBuilder(id NetworkID, b BuildFunc) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.specs[id]
	if !ok {
		return fmt.Errorf("channel: cannot attach builder: network %q not registered", id)
	}
	s.Build = b
	c.specs[id] = s
	return nil
}

// Spec returns the spec of one network.
func (c *Catalog) Spec(id NetworkID) (Spec, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.specs[id]
	return s, ok
}

// Has reports whether id is registered.
func (c *Catalog) Has(id NetworkID) bool {
	_, ok := c.Spec(id)
	return ok
}

// Len returns the number of registered networks.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.order)
}

// IDs returns every registered network id in registration order.
func (c *Catalog) IDs() []NetworkID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]NetworkID, len(c.order))
	copy(out, c.order)
	return out
}

// ByClass returns the registered ids of one class, in registration order.
func (c *Catalog) ByClass(cl Class) []NetworkID {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []NetworkID
	for _, id := range c.order {
		if c.specs[id].Class == cl {
			out = append(out, id)
		}
	}
	return out
}

// Parse converts a short id string to a registered NetworkID. On
// failure it returns the explicit NetworkInvalid sentinel and an error
// naming the known ids.
func (c *Catalog) Parse(s string) (NetworkID, error) {
	id := NetworkID(strings.TrimSpace(s))
	if c.Has(id) {
		return id, nil
	}
	known := c.IDs()
	sort.Slice(known, func(i, j int) bool { return known[i] < known[j] })
	return NetworkInvalid, fmt.Errorf("channel: unknown network %q (catalog has %v)", s, known)
}

// Builder resolves the model factory of one network for a campaign
// seed. Identity-only specs (nil Build) are a hard error: they can be
// parsed and classified but not simulated.
func (c *Catalog) Builder(id NetworkID, campaignSeed int64) (Builder, error) {
	s, ok := c.Spec(id)
	if !ok {
		return nil, fmt.Errorf("channel: network %q not registered", id)
	}
	if s.Build == nil {
		return nil, fmt.Errorf("channel: network %q has no model factory attached", id)
	}
	return s.Build(campaignSeed), nil
}

// Clone returns an independent copy of the catalog. Scenario authors
// clone the default catalog to add experiment-local networks without
// mutating global state.
func (c *Catalog) Clone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := &Catalog{
		order: make([]NetworkID, len(c.order)),
		specs: make(map[NetworkID]Spec, len(c.specs)),
	}
	copy(out.order, c.order)
	for id, s := range c.specs {
		out.specs[id] = s
	}
	return out
}

// defaultCatalog holds the paper's five networks as identity specs.
// Their model factories are attached by internal/networks at init time
// (the channel package cannot import the leo/cell model packages), and
// custom networks registered through the public API land here too.
var defaultCatalog = func() *Catalog {
	c, err := NewCatalog(
		Spec{ID: StarlinkRoam, Name: "Starlink Roam", Class: ClassSatellite, SeedOffset: 101},
		Spec{ID: StarlinkMobility, Name: "Starlink Mobility", Class: ClassSatellite, SeedOffset: 102},
		Spec{ID: ATT, Name: "AT&T", Class: ClassCellular, SeedOffset: 105},
		Spec{ID: TMobile, Name: "T-Mobile", Class: ClassCellular, SeedOffset: 106},
		Spec{ID: Verizon, Name: "Verizon", Class: ClassCellular, SeedOffset: 107},
	)
	if err != nil {
		panic(err)
	}
	return c
}()

// DefaultCatalog returns the process-wide catalog: the paper's five
// built-in networks plus everything registered through it. Scenarios
// default to it; ParseNetwork and the NetworkID class helpers consult
// it.
func DefaultCatalog() *Catalog { return defaultCatalog }
