package channel

import (
	"strings"
	"testing"
)

// TestParseNetworkRoundTrip is the whole-catalog round-trip gate:
// every registered id must parse back to itself, and the error path
// must return the explicit invalid sentinel — never a valid network
// (the old int enum returned 0, which aliased StarlinkRoam).
func TestParseNetworkRoundTrip(t *testing.T) {
	for _, id := range DefaultCatalog().IDs() {
		got, err := ParseNetwork(id.String())
		if err != nil {
			t.Fatalf("ParseNetwork(%q): %v", id, err)
		}
		if got != id {
			t.Fatalf("ParseNetwork(%q) = %q", id, got)
		}
	}
	for _, bad := range []string{"", "bogus", "rm", "Network(0)", "RM,MOB"} {
		got, err := ParseNetwork(bad)
		if err == nil {
			t.Fatalf("ParseNetwork(%q) accepted", bad)
		}
		if got != NetworkInvalid {
			t.Fatalf("ParseNetwork(%q) error path returned %q, want the invalid sentinel", bad, got)
		}
		if got.Valid() || got == StarlinkRoam {
			t.Fatalf("error sentinel %q is mistakable for a valid network", got)
		}
	}
}

func TestDefaultCatalogBuiltins(t *testing.T) {
	ids := DefaultCatalog().IDs()
	if len(ids) < len(Networks) {
		t.Fatalf("default catalog has %d networks, want at least %d", len(ids), len(Networks))
	}
	// The built-in five must come first, in the paper's canonical
	// order — campaign iteration order is part of the determinism
	// contract with the seed dataset.
	for i, n := range Networks {
		if ids[i] != n {
			t.Fatalf("catalog order[%d] = %q, want %q", i, ids[i], n)
		}
	}
	wantOffsets := map[NetworkID]int64{
		StarlinkRoam: 101, StarlinkMobility: 102, ATT: 105, TMobile: 106, Verizon: 107,
	}
	for id, off := range wantOffsets {
		spec, ok := DefaultCatalog().Spec(id)
		if !ok {
			t.Fatalf("builtin %q missing", id)
		}
		if spec.SeedOffset != off {
			t.Fatalf("%q seed offset = %d, want %d (determinism contract)", id, spec.SeedOffset, off)
		}
	}
	sats := DefaultCatalog().ByClass(ClassSatellite)
	if len(sats) < 2 || sats[0] != StarlinkRoam || sats[1] != StarlinkMobility {
		t.Fatalf("satellite class = %v", sats)
	}
}

func TestCatalogRegisterValidation(t *testing.T) {
	c, err := NewCatalog()
	if err != nil {
		t.Fatal(err)
	}
	ok := Spec{ID: "X1", Name: "Example", Class: ClassCellular, SeedOffset: 900}
	if err := c.Register(ok); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := c.Register(ok); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration: %v", err)
	}
	for _, bad := range []Spec{
		{ID: "", Class: ClassCellular},
		{ID: "has space", Class: ClassCellular},
		{ID: "a,b", Class: ClassSatellite},
		{ID: "a;b", Class: ClassSatellite},
		{ID: "a=b", Class: ClassSatellite},
		{ID: NetworkID(strings.Repeat("x", 33)), Class: ClassCellular},
		{ID: "noclass"},
	} {
		if err := c.Register(bad); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("catalog len = %d after rejected registrations", c.Len())
	}
}

func TestCatalogCloneIsolation(t *testing.T) {
	base := DefaultCatalog().Clone()
	n := base.Len()
	if err := base.Register(Spec{ID: "CLONE1", Name: "c", Class: ClassSatellite, SeedOffset: 901}); err != nil {
		t.Fatal(err)
	}
	if base.Len() != n+1 {
		t.Fatal("clone registration lost")
	}
	if DefaultCatalog().Has("CLONE1") {
		t.Fatal("clone registration leaked into the default catalog")
	}
}

func TestCatalogBuilderResolution(t *testing.T) {
	c := DefaultCatalog().Clone()
	c.MustRegister(Spec{ID: "NOBUILD", Name: "identity only", Class: ClassCellular, SeedOffset: 902})
	if _, err := c.Builder("NOBUILD", 7); err == nil {
		t.Fatal("identity-only spec produced a builder")
	}
	if _, err := c.Builder("missing", 7); err == nil {
		t.Fatal("unregistered id produced a builder")
	}
	if err := c.SetBuilder("missing", nil); err == nil {
		t.Fatal("SetBuilder accepted an unregistered id")
	}
}
