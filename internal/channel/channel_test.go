package channel

import (
	"testing"
	"time"

	"satcell/internal/geo"
)

func TestNetworksCanonicalOrder(t *testing.T) {
	want := []Network{StarlinkRoam, StarlinkMobility, ATT, TMobile, Verizon}
	if len(Networks) != len(want) {
		t.Fatalf("Networks = %v", Networks)
	}
	for i, n := range want {
		if Networks[i] != n {
			t.Fatalf("Networks[%d] = %v, want %v", i, Networks[i], n)
		}
	}
}

func TestNetworkClassification(t *testing.T) {
	for _, n := range Networks {
		if n.Cellular() == n.Satellite() {
			t.Fatalf("%v must be exactly one of cellular/satellite", n)
		}
	}
	if NetworkInvalid.String() != "invalid" {
		t.Fatal("invalid network String()")
	}
	if NetworkInvalid.Cellular() || NetworkInvalid.Satellite() || NetworkInvalid.Valid() {
		t.Fatal("invalid sentinel must classify as nothing")
	}
	if n := NetworkID("no-such-net"); n.Class() != ClassUnknown {
		t.Fatalf("unregistered id class = %v", n.Class())
	}
}

func TestTraceDurationAndSeries(t *testing.T) {
	tr := &Trace{Network: StarlinkMobility}
	if tr.Duration() != 0 {
		t.Fatal("empty trace duration")
	}
	for i := 0; i < 5; i++ {
		tr.Samples = append(tr.Samples, Sample{
			At:       time.Duration(i) * time.Second,
			DownMbps: float64(10 * i),
			UpMbps:   float64(i),
		})
	}
	if tr.Duration() != 4*time.Second {
		t.Fatalf("duration = %v", tr.Duration())
	}
	ds, us := tr.DownSeries(), tr.UpSeries()
	if len(ds) != 5 || ds[3] != 30 || us[2] != 2 {
		t.Fatalf("series wrong: %v %v", ds, us)
	}
}

func TestTraceAtBinarySearch(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 100; i++ {
		tr.Samples = append(tr.Samples, Sample{
			At: time.Duration(i) * time.Second, DownMbps: float64(i),
		})
	}
	for _, c := range []struct {
		t    time.Duration
		want float64
	}{
		{0, 0}, {500 * time.Millisecond, 0}, {1 * time.Second, 1},
		{50*time.Second + 999*time.Millisecond, 50}, {99 * time.Second, 99},
		{time.Hour, 99}, {-time.Second, 0},
	} {
		if got := tr.At(c.t).DownMbps; got != c.want {
			t.Fatalf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestTraceSliceRebasing(t *testing.T) {
	tr := &Trace{Network: Verizon}
	for i := 0; i < 10; i++ {
		tr.Samples = append(tr.Samples, Sample{At: time.Duration(i) * time.Second, DownMbps: float64(i)})
	}
	sl := tr.Slice(3*time.Second, 7*time.Second)
	if len(sl.Samples) != 4 || sl.Samples[0].At != 0 || sl.Samples[0].DownMbps != 3 {
		t.Fatalf("slice wrong: %+v", sl.Samples)
	}
	if sl.Network != Verizon {
		t.Fatal("slice lost network")
	}
}

func TestEnvAndRecordComposition(t *testing.T) {
	env := Env{
		At:       time.Minute,
		Pos:      geo.LatLon{Lat: 44, Lon: -90},
		SpeedKmh: 88,
		Area:     geo.Rural,
	}
	rec := Record{Env: env, Sample: Sample{DownMbps: 120, Burst: true}}
	if rec.Env.Area != geo.Rural || rec.Sample.DownMbps != 120 || !rec.Sample.Burst {
		t.Fatal("record composition broken")
	}
}
