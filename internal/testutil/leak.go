// Package testutil holds helpers shared across the repo's test suites.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// GoroutineBaseline snapshots the current goroutine count. Call it
// before starting the machinery under test and hand the result to
// SettleGoroutines afterwards.
func GoroutineBaseline() int { return runtime.NumGoroutine() }

// SettleGoroutines polls until the goroutine count drops back to (near)
// baseline, failing the test if it never does. Shutdown is asynchronous
// — closed relays, cancelled stream workers and expiring timers take a
// few scheduler rounds to unwind — so the check tolerates baseline+2
// and waits up to 3s before declaring a leak.
func SettleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	var n int
	for i := 0; i < 150; i++ {
		n = runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", baseline, n)
}
